// Benchmark harness: one benchmark per table and figure of the paper
// (Tables I–VI, Figures 3–5), plus operator-level and substrate benchmarks
// that characterise the implementation at scale.
//
//	go test -bench=. -benchmem
package sheetmusiq

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"sheetmusiq/internal/core"
	"sheetmusiq/internal/dataset"
	"sheetmusiq/internal/relation"
	"sheetmusiq/internal/server"
	"sheetmusiq/internal/sql"
	"sheetmusiq/internal/sqlgen"
	"sheetmusiq/internal/stats"
	"sheetmusiq/internal/theorem1"
	"sheetmusiq/internal/tpch"
	"sheetmusiq/internal/uistudy"
	"sheetmusiq/internal/value"
)

func evaluate(b *testing.B, s *core.Spreadsheet) *core.Result {
	b.Helper()
	res, err := s.Evaluate()
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkTableI_BaseSpreadsheet prices presenting a base relation
// unchanged (paper Table I).
func BenchmarkTableI_BaseSpreadsheet(b *testing.B) {
	cars := dataset.UsedCars()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		evaluate(b, core.New(cars))
	}
}

// paperSheet builds the Sec. III configuration shared by Tables II and III.
func paperSheet(b *testing.B) *core.Spreadsheet {
	b.Helper()
	s := core.New(dataset.UsedCars())
	if err := s.GroupBy(core.Desc, "Model"); err != nil {
		b.Fatal(err)
	}
	if err := s.GroupBy(core.Asc, "Year"); err != nil {
		b.Fatal(err)
	}
	if err := s.Sort("Price", core.Asc); err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkTableII_Grouping prices adding a grouping level and re-rendering
// (paper Table II / Example 1).
func BenchmarkTableII_Grouping(b *testing.B) {
	base := paperSheet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := base.Clone()
		if err := s.GroupBy(core.Asc, "Condition"); err != nil {
			b.Fatal(err)
		}
		evaluate(b, s)
	}
}

// BenchmarkTableIII_Aggregation prices η(avg, Price, level 3) with its
// repeated-per-group computed column (paper Table III).
func BenchmarkTableIII_Aggregation(b *testing.B) {
	base := paperSheet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := base.Clone()
		if _, err := s.Aggregate(relation.AggAvg, "Price", 3); err != nil {
			b.Fatal(err)
		}
		evaluate(b, s)
	}
}

// BenchmarkTableIV_QueryState prices Sam's three-selection grouped query
// (paper Table IV).
func BenchmarkTableIV_QueryState(b *testing.B) {
	cars := dataset.UsedCars()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := core.New(cars)
		for _, p := range []string{"Year = 2005", "Model = 'Jetta'", "Mileage < 80000"} {
			if _, err := s.Select(p); err != nil {
				b.Fatal(err)
			}
		}
		if err := s.GroupBy(core.Asc, "Condition"); err != nil {
			b.Fatal(err)
		}
		if err := s.Sort("Price", core.Asc); err != nil {
			b.Fatal(err)
		}
		evaluate(b, s)
	}
}

// BenchmarkTableV_QueryModification prices the Sec. V replace-and-replay
// cycle (paper Table V): one predicate modification plus re-evaluation.
func BenchmarkTableV_QueryModification(b *testing.B) {
	s := core.New(dataset.UsedCars())
	yearID, err := s.Select("Year = 2005")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Select("Model = 'Jetta'"); err != nil {
		b.Fatal(err)
	}
	if err := s.GroupBy(core.Asc, "Condition"); err != nil {
		b.Fatal(err)
	}
	years := []string{"Year = 2006", "Year = 2005"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.ReplaceSelection(yearID, years[i%2]); err != nil {
			b.Fatal(err)
		}
		evaluate(b, s)
	}
}

// BenchmarkFig3_SpeedResult regenerates Figure 3: the full simulated
// 10-subject × 10-task × 2-interface study with per-task Mann-Whitney
// tests.
func BenchmarkFig3_SpeedResult(b *testing.B) {
	cfg := uistudy.DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st, err := uistudy.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(st.Tasks) != 10 {
			b.Fatal("study shape wrong")
		}
	}
}

// BenchmarkFig4_SpeedStdDev regenerates Figure 4 (per-task standard
// deviations over the study trials).
func BenchmarkFig4_SpeedStdDev(b *testing.B) {
	st, err := uistudy.Run(uistudy.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	times := make(map[int][]float64)
	for _, tr := range st.Trials {
		if tr.Iface == uistudy.SheetMusiq {
			times[tr.Task] = append(times[tr.Task], tr.Seconds)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, xs := range times {
			stats.StdDev(xs)
		}
	}
}

// BenchmarkFig5_Correctness regenerates Figure 5's correctness totals and
// the Fisher exact test the paper applies to them.
func BenchmarkFig5_Correctness(b *testing.B) {
	st, err := uistudy.Run(uistudy.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	n := len(st.Panel) * len(st.Tasks)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.FisherExact(st.TotalSM, n-st.TotalSM, st.TotalNav, n-st.TotalNav); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableVI_Subjective regenerates Table VI (the questionnaire is
// derived from the measured outcomes, so this re-runs the study).
func BenchmarkTableVI_Subjective(b *testing.B) {
	cfg := uistudy.DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st, err := uistudy.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if st.Survey.PreferSheetMusiq[0]+st.Survey.PreferSheetMusiq[1] != len(st.Panel) {
			b.Fatal("survey shape wrong")
		}
	}
}

// --- operator benchmarks at scale -----------------------------------------

func scaleSheet(b *testing.B, n int) *core.Spreadsheet {
	b.Helper()
	return core.New(dataset.RandomCars(n, 42))
}

func BenchmarkSelection10k(b *testing.B) {
	base := scaleSheet(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := base.Clone()
		if _, err := s.Select("Price < 20000 AND Condition IN ('Good','Excellent')"); err != nil {
			b.Fatal(err)
		}
		evaluate(b, s)
	}
}

func BenchmarkGroupAggregate10k(b *testing.B) {
	base := scaleSheet(b, 10000)
	if err := base.GroupBy(core.Asc, "Model"); err != nil {
		b.Fatal(err)
	}
	if err := base.GroupBy(core.Asc, "Year"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := base.Clone()
		if _, err := s.Aggregate(relation.AggAvg, "Price", 3); err != nil {
			b.Fatal(err)
		}
		evaluate(b, s)
	}
}

func BenchmarkSortEvaluate10k(b *testing.B) {
	base := scaleSheet(b, 10000)
	if err := base.Sort("Price", core.Desc); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Clone drops the memoisation cache, so every iteration prices a
		// real re-evaluation rather than a cache hit.
		evaluate(b, base.Clone())
	}
}

func BenchmarkFormulaEvaluate10k(b *testing.B) {
	base := scaleSheet(b, 10000)
	if _, err := base.Formula("PerMile", "Price * 1000 / (Mileage + 1)"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		evaluate(b, base.Clone())
	}
}

// The 100k variants characterise the compiled, data-parallel evaluation
// pipeline well above the parallel row threshold.

func BenchmarkSelection100k(b *testing.B) {
	base := scaleSheet(b, 100000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := base.Clone()
		if _, err := s.Select("Price < 20000 AND Condition IN ('Good','Excellent')"); err != nil {
			b.Fatal(err)
		}
		evaluate(b, s)
	}
}

func BenchmarkGroupAggregate100k(b *testing.B) {
	base := scaleSheet(b, 100000)
	if err := base.GroupBy(core.Asc, "Model"); err != nil {
		b.Fatal(err)
	}
	if err := base.GroupBy(core.Asc, "Year"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := base.Clone()
		if _, err := s.Aggregate(relation.AggAvg, "Price", 3); err != nil {
			b.Fatal(err)
		}
		evaluate(b, s)
	}
}

func BenchmarkFormulaEvaluate100k(b *testing.B) {
	base := scaleSheet(b, 100000)
	if _, err := base.Formula("PerMile", "Price * 1000 / (Mileage + 1)"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		evaluate(b, base.Clone())
	}
}

// BenchmarkWindowRank100k prices the ω ranking kernel end-to-end: a
// per-model price rank over 100k rows, re-evaluated cold each iteration
// (Clone drops the stage snapshots).
func BenchmarkWindowRank100k(b *testing.B) {
	base := scaleSheet(b, 100000)
	if _, err := base.WindowAs("R", relation.WinRank, "",
		[]string{"Model"}, []core.SortKey{{Column: "Price", Dir: core.Asc}}, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		evaluate(b, base.Clone())
	}
}

// BenchmarkMovingSum100k prices an explicit ROWS frame: a 100-row moving
// sum of Price per model in mileage order over 100k rows.
func BenchmarkMovingSum100k(b *testing.B) {
	base := scaleSheet(b, 100000)
	frame := &relation.Frame{
		Lo: relation.FrameBound{Kind: relation.BoundPreceding, Offset: 99},
		Hi: relation.FrameBound{Kind: relation.BoundCurrentRow},
	}
	if _, err := base.WindowAs("MovSum", relation.WinSum, "Price",
		[]string{"Model"}, []core.SortKey{{Column: "Mileage", Dir: core.Asc}}, frame); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		evaluate(b, base.Clone())
	}
}

// BenchmarkModifyEvaluate100k prices the paper's Sec. V interaction loop at
// scale: a 100k-row sheet carrying a selection, a grouping level, an
// aggregate and an ordering, where every iteration applies exactly one
// modification — replace the predicate, flip the ordering, add a predicate,
// remove it again — and re-evaluates. This is the workload the incremental
// stage pipeline exists for: each gesture invalidates one stage and reuses
// every snapshot upstream of it.
func BenchmarkModifyEvaluate100k(b *testing.B) {
	s := scaleSheet(b, 100000)
	yearID, err := s.Select("Year >= 2003")
	if err != nil {
		b.Fatal(err)
	}
	if err := s.GroupBy(core.Asc, "Model"); err != nil {
		b.Fatal(err)
	}
	if _, err := s.AggregateAs("AvgP", relation.AggAvg, "Price", 2); err != nil {
		b.Fatal(err)
	}
	if err := s.Sort("Price", core.Asc); err != nil {
		b.Fatal(err)
	}
	evaluate(b, s)
	extraID := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		switch i % 4 {
		case 0:
			if err := s.ReplaceSelection(yearID, "Year >= 2004"); err != nil {
				b.Fatal(err)
			}
		case 1:
			if err := s.Sort("Price", core.Desc); err != nil {
				b.Fatal(err)
			}
		case 2:
			extraID, err = s.Select("Mileage < 180000")
			if err != nil {
				b.Fatal(err)
			}
		case 3:
			if err := s.RemoveSelection(extraID); err != nil {
				b.Fatal(err)
			}
			if err := s.ReplaceSelection(yearID, "Year >= 2003"); err != nil {
				b.Fatal(err)
			}
			if err := s.Sort("Price", core.Asc); err != nil {
				b.Fatal(err)
			}
		}
		evaluate(b, s)
	}
}

// BenchmarkEvalColdVsWarm100k contrasts a cold full replay (Clone drops
// every cache) with a warm single-gesture re-evaluation of the same state
// (flip the finest ordering, re-evaluate); their ratio is the incremental
// pipeline's reuse win on a 100k-row sheet.
func BenchmarkEvalColdVsWarm100k(b *testing.B) {
	build := func() *core.Spreadsheet {
		s := scaleSheet(b, 100000)
		if _, err := s.Select("Year >= 2003"); err != nil {
			b.Fatal(err)
		}
		if err := s.GroupBy(core.Asc, "Model"); err != nil {
			b.Fatal(err)
		}
		if _, err := s.AggregateAs("AvgP", relation.AggAvg, "Price", 2); err != nil {
			b.Fatal(err)
		}
		if err := s.Sort("Price", core.Asc); err != nil {
			b.Fatal(err)
		}
		return s
	}
	b.Run("cold", func(b *testing.B) {
		s := build()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			evaluate(b, s.Clone())
		}
	})
	b.Run("warm", func(b *testing.B) {
		s := build()
		evaluate(b, s)
		dirs := []core.Dir{core.Desc, core.Asc}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.Sort("Price", dirs[i%2]); err != nil {
				b.Fatal(err)
			}
			evaluate(b, s)
		}
	})
}

// BenchmarkInvalidationPrecision100k prices the tentpole of graph-exact
// invalidation: a warm 100k-row sheet carrying four same-depth predicates
// plus an ordering, where each iteration edits exactly one predicate and
// re-evaluates. Graph reachability recomputes only the edited σ part, the
// depth's ∧ conjunction and the ordering — the three sibling predicates are
// served from cache, where the superseded rank table recomputed the whole
// suffix from the edited stage onward.
func BenchmarkInvalidationPrecision100k(b *testing.B) {
	s := scaleSheet(b, 100000)
	var editID int
	for i, p := range []string{
		"Year >= 2003",
		"Price < 30000",
		"Mileage < 90000",
		"Condition = 'Good' OR Condition = 'Excellent'",
	} {
		id, err := s.Select(p)
		if err != nil {
			b.Fatal(err)
		}
		if i == 1 {
			editID = id
		}
	}
	if err := s.Sort("Price", core.Asc); err != nil {
		b.Fatal(err)
	}
	evaluate(b, s)
	preds := []string{"Price < 25000", "Price < 30000"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.ReplaceSelection(editID, preds[i%2]); err != nil {
			b.Fatal(err)
		}
		evaluate(b, s)
	}
}

// --- relation-kernel benchmarks --------------------------------------------
//
// These isolate the grouping, duplicate-elimination and sort kernels at the
// relation layer, without the surrounding evaluate pipeline, so BENCH_eval.json
// tracks the kernels themselves across optimisation steps.

func BenchmarkAggregate10k(b *testing.B) {
	r := dataset.RandomCars(10000, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Aggregate([]string{"Model", "Year"}, relation.AggAvg, "Price"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAggregate100k(b *testing.B) {
	r := dataset.RandomCars(100000, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Aggregate([]string{"Model", "Year"}, relation.AggAvg, "Price"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistinct100k(b *testing.B) {
	r := dataset.RandomCars(100000, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := r.Distinct(); out.Len() == 0 {
			b.Fatal("empty distinct")
		}
	}
}

func BenchmarkDistinctOn100k(b *testing.B) {
	r := dataset.RandomCars(100000, 42)
	idx, err := r.ColumnIndexes([]string{"Model", "Year", "Condition"})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := r.DistinctOn(idx); out.Len() == 0 {
			b.Fatal("empty distinct")
		}
	}
}

func BenchmarkSort100k(b *testing.B) {
	r := dataset.RandomCars(100000, 42)
	keys := []relation.SortKey{{Column: "Model"}, {Column: "Price", Desc: true}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.SortedClone(keys); err != nil {
			b.Fatal(err)
		}
	}
}

// onIDEqual returns an equi-predicate over the join's product layout: left
// ID (column 0) equals right ID (column w). RandomCars assigns IDs 1000..n,
// so two same-sized relations join one-to-one.
func onIDEqual(w int) func(relation.Tuple) (bool, error) {
	return func(t relation.Tuple) (bool, error) {
		return value.Equal(t[0], t[w]), nil
	}
}

// BenchmarkHashJoin10kx10k prices the equi-hash-join kernel at scale: build
// on one 10k side, probe the other, 10k one-to-one matches out.
func BenchmarkHashJoin10kx10k(b *testing.B) {
	l := dataset.RandomCars(10000, 42)
	r := dataset.RandomCars(10000, 43)
	on := onIDEqual(len(l.Schema))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := l.HashJoin(r, []int{0}, []int{0}, on)
		if err != nil {
			b.Fatal(err)
		}
		if j.Len() != 10000 {
			b.Fatalf("join rows = %d", j.Len())
		}
	}
}

// BenchmarkHashJoin1kx1k and BenchmarkJoinProductFilter1kx1k run the same
// one-to-one equi-join through the hash kernel and the theta pair scan at a
// scale where the quadratic baseline is still feasible; their ratio is the
// kernel's speedup over the product-then-filter path.
func BenchmarkHashJoin1kx1k(b *testing.B) {
	l := dataset.RandomCars(1000, 42)
	r := dataset.RandomCars(1000, 43)
	on := onIDEqual(len(l.Schema))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := l.HashJoin(r, []int{0}, []int{0}, on)
		if err != nil {
			b.Fatal(err)
		}
		if j.Len() != 1000 {
			b.Fatalf("join rows = %d", j.Len())
		}
	}
}

func BenchmarkJoinProductFilter1kx1k(b *testing.B) {
	l := dataset.RandomCars(1000, 42)
	r := dataset.RandomCars(1000, 43)
	on := onIDEqual(len(l.Schema))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := l.Join(r, on)
		if err != nil {
			b.Fatal(err)
		}
		if j.Len() != 1000 {
			b.Fatalf("join rows = %d", j.Len())
		}
	}
}

// --- SQL substrate benchmarks ----------------------------------------------

func BenchmarkSQLGenerate(b *testing.B) {
	s := core.New(dataset.UsedCars())
	if _, err := s.Select("Year = 2005"); err != nil {
		b.Fatal(err)
	}
	if err := s.GroupBy(core.Asc, "Model"); err != nil {
		b.Fatal(err)
	}
	if _, err := s.AggregateAs("AvgP", relation.AggAvg, "Price", 2); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sqlgen.Generate(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSQLExecuteGenerated10k(b *testing.B) {
	base := dataset.RandomCars(10000, 42)
	s := core.New(base)
	if _, err := s.Select("Year >= 2003"); err != nil {
		b.Fatal(err)
	}
	if err := s.GroupBy(core.Asc, "Model"); err != nil {
		b.Fatal(err)
	}
	if _, err := s.AggregateAs("AvgP", relation.AggAvg, "Price", 2); err != nil {
		b.Fatal(err)
	}
	stmt, err := sqlgen.Generate(s)
	if err != nil {
		b.Fatal(err)
	}
	db := sql.NewDB()
	db.Register(base)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(stmt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSQLParse(b *testing.B) {
	const q = "SELECT Model, AVG(Price) AS ap FROM cars WHERE Year = 2005 GROUP BY Model HAVING AVG(Price) > 1 ORDER BY ap DESC LIMIT 5"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sql.Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

// --- TPC-H study-task benchmarks --------------------------------------------

var (
	tpchOnce sync.Once
	tpchDB   *sql.DB
)

func studyDB(b *testing.B) *sql.DB {
	b.Helper()
	tpchOnce.Do(func() {
		tables := tpch.Generate(tpch.DefaultConfig())
		tpchDB = tpch.BuildDB(tables)
		if err := tpch.BuildViews(tpchDB); err != nil {
			b.Fatal(err)
		}
	})
	return tpchDB
}

// BenchmarkTPCHGenerate prices the dbgen substitute at the default scale.
func BenchmarkTPCHGenerate(b *testing.B) {
	cfg := tpch.DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tpch.Generate(cfg)
	}
}

// BenchmarkStudyTasks runs every study task through both routes: the
// spreadsheet-algebra program and the reference SQL.
func BenchmarkStudyTasks(b *testing.B) {
	db := studyDB(b)
	for _, task := range tpch.Tasks() {
		task := task
		b.Run(task.Name+"/algebra", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s, err := task.Run(db)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.Evaluate(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(task.Name+"/sql", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(task.Query); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

var (
	tpchSF1Once sync.Once
	tpchSF1DB   *sql.DB
)

// BenchmarkTPCHQ1SF1 runs TPC-H Q1 (the pricing-summary report) at scale
// factor 1 — ~6M lineitem rows — through the algebra program. The dataset
// generates once outside the timer (about a minute); each iteration replays
// the task and evaluates it cold.
func BenchmarkTPCHQ1SF1(b *testing.B) {
	tpchSF1Once.Do(func() {
		tables := tpch.Generate(tpch.Config{ScaleFactor: 1, Seed: 19920101})
		tpchSF1DB = tpch.BuildDB(tables)
		if err := tpch.BuildViews(tpchSF1DB); err != nil {
			b.Fatal(err)
		}
	})
	var q1 tpch.Task
	for _, task := range tpch.Tasks() {
		if task.TpchQuery == "Q1" {
			q1 = task
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := q1.Run(tpchSF1DB)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Evaluate(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- HTTP service benchmarks -------------------------------------------------

// benchRequest fires one request and drains the body; non-2xx fails the
// benchmark.
func benchRequest(b *testing.B, method, url, body string) {
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		b.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode >= 300 {
		b.Fatalf("%s %s: status %d", method, url, resp.StatusCode)
	}
}

// BenchmarkServerSessionThroughput measures end-to-end requests/sec against
// the HTTP service under 1, 4, and 16 concurrent sessions, each cycling a
// mixed workload (predicate modification, render, state) over its own
// engine while sharing the one manager.
func BenchmarkServerSessionThroughput(b *testing.B) {
	for _, sessions := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			m := server.NewManager(server.Config{MaxSessions: -1})
			ts := httptest.NewServer(server.NewHandler(m))
			defer ts.Close()

			ids := make([]string, sessions)
			for i := range ids {
				s, err := m.Create(fmt.Sprintf("bench%d", i))
				if err != nil {
					b.Fatal(err)
				}
				ids[i] = s.ID()
				base := ts.URL + "/v1/sessions/" + s.ID() + "/op"
				benchRequest(b, "POST", base, `{"op":"demo","table":"cars"}`)
				benchRequest(b, "POST", base, `{"op":"select","predicate":"Year = 2005"}`)
				benchRequest(b, "POST", base, `{"op":"group","dir":"asc","columns":["Model"]}`)
			}

			var next atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for _, id := range ids {
				wg.Add(1)
				go func(id string) {
					defer wg.Done()
					opURL := ts.URL + "/v1/sessions/" + id + "/op"
					renderURL := ts.URL + "/v1/sessions/" + id + "/render?limit=5"
					stateURL := ts.URL + "/v1/sessions/" + id + "/state"
					for {
						i := next.Add(1)
						if i > int64(b.N) {
							return
						}
						switch i % 3 {
						case 0:
							year := 2005 + int(i%2)
							benchRequest(b, "POST", opURL,
								fmt.Sprintf(`{"op":"modify","id":1,"predicate":"Year = %d"}`, year))
						case 1:
							benchRequest(b, "GET", renderURL, "")
						default:
							benchRequest(b, "GET", stateURL, "")
						}
					}
				}(id)
			}
			wg.Wait()
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(b.N)/secs, "req/s")
			}
		})
	}
}

// BenchmarkTheorem1Compile prices the mechanised Theorem 1 construction:
// SQL text to a ready spreadsheet program.
func BenchmarkTheorem1Compile(b *testing.B) {
	base := dataset.UsedCars()
	stmt := sql.MustParse("SELECT Model, AVG(Price) AS ap, COUNT(*) AS n FROM cars " +
		"WHERE Year >= 2005 GROUP BY Model HAVING AVG(Price) > 14000 ORDER BY ap DESC")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog, err := theorem1.Compile(base, stmt)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := prog.Collapse(); err != nil {
			b.Fatal(err)
		}
	}
}
