// Benchmark harness: one benchmark per table and figure of the paper
// (Tables I–VI, Figures 3–5), plus operator-level and substrate benchmarks
// that characterise the implementation at scale.
//
//	go test -bench=. -benchmem
package sheetmusiq

import (
	"sync"
	"testing"

	"sheetmusiq/internal/core"
	"sheetmusiq/internal/dataset"
	"sheetmusiq/internal/relation"
	"sheetmusiq/internal/sql"
	"sheetmusiq/internal/sqlgen"
	"sheetmusiq/internal/stats"
	"sheetmusiq/internal/theorem1"
	"sheetmusiq/internal/tpch"
	"sheetmusiq/internal/uistudy"
)

func evaluate(b *testing.B, s *core.Spreadsheet) *core.Result {
	b.Helper()
	res, err := s.Evaluate()
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkTableI_BaseSpreadsheet prices presenting a base relation
// unchanged (paper Table I).
func BenchmarkTableI_BaseSpreadsheet(b *testing.B) {
	cars := dataset.UsedCars()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		evaluate(b, core.New(cars))
	}
}

// paperSheet builds the Sec. III configuration shared by Tables II and III.
func paperSheet(b *testing.B) *core.Spreadsheet {
	b.Helper()
	s := core.New(dataset.UsedCars())
	if err := s.GroupBy(core.Desc, "Model"); err != nil {
		b.Fatal(err)
	}
	if err := s.GroupBy(core.Asc, "Year"); err != nil {
		b.Fatal(err)
	}
	if err := s.Sort("Price", core.Asc); err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkTableII_Grouping prices adding a grouping level and re-rendering
// (paper Table II / Example 1).
func BenchmarkTableII_Grouping(b *testing.B) {
	base := paperSheet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := base.Clone()
		if err := s.GroupBy(core.Asc, "Condition"); err != nil {
			b.Fatal(err)
		}
		evaluate(b, s)
	}
}

// BenchmarkTableIII_Aggregation prices η(avg, Price, level 3) with its
// repeated-per-group computed column (paper Table III).
func BenchmarkTableIII_Aggregation(b *testing.B) {
	base := paperSheet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := base.Clone()
		if _, err := s.Aggregate(relation.AggAvg, "Price", 3); err != nil {
			b.Fatal(err)
		}
		evaluate(b, s)
	}
}

// BenchmarkTableIV_QueryState prices Sam's three-selection grouped query
// (paper Table IV).
func BenchmarkTableIV_QueryState(b *testing.B) {
	cars := dataset.UsedCars()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := core.New(cars)
		for _, p := range []string{"Year = 2005", "Model = 'Jetta'", "Mileage < 80000"} {
			if _, err := s.Select(p); err != nil {
				b.Fatal(err)
			}
		}
		if err := s.GroupBy(core.Asc, "Condition"); err != nil {
			b.Fatal(err)
		}
		if err := s.Sort("Price", core.Asc); err != nil {
			b.Fatal(err)
		}
		evaluate(b, s)
	}
}

// BenchmarkTableV_QueryModification prices the Sec. V replace-and-replay
// cycle (paper Table V): one predicate modification plus re-evaluation.
func BenchmarkTableV_QueryModification(b *testing.B) {
	s := core.New(dataset.UsedCars())
	yearID, err := s.Select("Year = 2005")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Select("Model = 'Jetta'"); err != nil {
		b.Fatal(err)
	}
	if err := s.GroupBy(core.Asc, "Condition"); err != nil {
		b.Fatal(err)
	}
	years := []string{"Year = 2006", "Year = 2005"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.ReplaceSelection(yearID, years[i%2]); err != nil {
			b.Fatal(err)
		}
		evaluate(b, s)
	}
}

// BenchmarkFig3_SpeedResult regenerates Figure 3: the full simulated
// 10-subject × 10-task × 2-interface study with per-task Mann-Whitney
// tests.
func BenchmarkFig3_SpeedResult(b *testing.B) {
	cfg := uistudy.DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st, err := uistudy.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(st.Tasks) != 10 {
			b.Fatal("study shape wrong")
		}
	}
}

// BenchmarkFig4_SpeedStdDev regenerates Figure 4 (per-task standard
// deviations over the study trials).
func BenchmarkFig4_SpeedStdDev(b *testing.B) {
	st, err := uistudy.Run(uistudy.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	times := make(map[int][]float64)
	for _, tr := range st.Trials {
		if tr.Iface == uistudy.SheetMusiq {
			times[tr.Task] = append(times[tr.Task], tr.Seconds)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, xs := range times {
			stats.StdDev(xs)
		}
	}
}

// BenchmarkFig5_Correctness regenerates Figure 5's correctness totals and
// the Fisher exact test the paper applies to them.
func BenchmarkFig5_Correctness(b *testing.B) {
	st, err := uistudy.Run(uistudy.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	n := len(st.Panel) * len(st.Tasks)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.FisherExact(st.TotalSM, n-st.TotalSM, st.TotalNav, n-st.TotalNav); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableVI_Subjective regenerates Table VI (the questionnaire is
// derived from the measured outcomes, so this re-runs the study).
func BenchmarkTableVI_Subjective(b *testing.B) {
	cfg := uistudy.DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st, err := uistudy.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if st.Survey.PreferSheetMusiq[0]+st.Survey.PreferSheetMusiq[1] != len(st.Panel) {
			b.Fatal("survey shape wrong")
		}
	}
}

// --- operator benchmarks at scale -----------------------------------------

func scaleSheet(b *testing.B, n int) *core.Spreadsheet {
	b.Helper()
	return core.New(dataset.RandomCars(n, 42))
}

func BenchmarkSelection10k(b *testing.B) {
	base := scaleSheet(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := base.Clone()
		if _, err := s.Select("Price < 20000 AND Condition IN ('Good','Excellent')"); err != nil {
			b.Fatal(err)
		}
		evaluate(b, s)
	}
}

func BenchmarkGroupAggregate10k(b *testing.B) {
	base := scaleSheet(b, 10000)
	if err := base.GroupBy(core.Asc, "Model"); err != nil {
		b.Fatal(err)
	}
	if err := base.GroupBy(core.Asc, "Year"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := base.Clone()
		if _, err := s.Aggregate(relation.AggAvg, "Price", 3); err != nil {
			b.Fatal(err)
		}
		evaluate(b, s)
	}
}

func BenchmarkSortEvaluate10k(b *testing.B) {
	base := scaleSheet(b, 10000)
	if err := base.Sort("Price", core.Desc); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		evaluate(b, base)
	}
}

func BenchmarkFormulaEvaluate10k(b *testing.B) {
	base := scaleSheet(b, 10000)
	if _, err := base.Formula("PerMile", "Price * 1000 / (Mileage + 1)"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		evaluate(b, base)
	}
}

// --- SQL substrate benchmarks ----------------------------------------------

func BenchmarkSQLGenerate(b *testing.B) {
	s := core.New(dataset.UsedCars())
	if _, err := s.Select("Year = 2005"); err != nil {
		b.Fatal(err)
	}
	if err := s.GroupBy(core.Asc, "Model"); err != nil {
		b.Fatal(err)
	}
	if _, err := s.AggregateAs("AvgP", relation.AggAvg, "Price", 2); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sqlgen.Generate(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSQLExecuteGenerated10k(b *testing.B) {
	base := dataset.RandomCars(10000, 42)
	s := core.New(base)
	if _, err := s.Select("Year >= 2003"); err != nil {
		b.Fatal(err)
	}
	if err := s.GroupBy(core.Asc, "Model"); err != nil {
		b.Fatal(err)
	}
	if _, err := s.AggregateAs("AvgP", relation.AggAvg, "Price", 2); err != nil {
		b.Fatal(err)
	}
	stmt, err := sqlgen.Generate(s)
	if err != nil {
		b.Fatal(err)
	}
	db := sql.NewDB()
	db.Register(base)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(stmt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSQLParse(b *testing.B) {
	const q = "SELECT Model, AVG(Price) AS ap FROM cars WHERE Year = 2005 GROUP BY Model HAVING AVG(Price) > 1 ORDER BY ap DESC LIMIT 5"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sql.Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

// --- TPC-H study-task benchmarks --------------------------------------------

var (
	tpchOnce sync.Once
	tpchDB   *sql.DB
)

func studyDB(b *testing.B) *sql.DB {
	b.Helper()
	tpchOnce.Do(func() {
		tables := tpch.Generate(tpch.DefaultConfig())
		tpchDB = tpch.BuildDB(tables)
		if err := tpch.BuildViews(tpchDB); err != nil {
			b.Fatal(err)
		}
	})
	return tpchDB
}

// BenchmarkTPCHGenerate prices the dbgen substitute at the default scale.
func BenchmarkTPCHGenerate(b *testing.B) {
	cfg := tpch.DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tpch.Generate(cfg)
	}
}

// BenchmarkStudyTasks runs every study task through both routes: the
// spreadsheet-algebra program and the reference SQL.
func BenchmarkStudyTasks(b *testing.B) {
	db := studyDB(b)
	for _, task := range tpch.Tasks() {
		task := task
		b.Run(task.Name+"/algebra", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s, err := task.Run(db)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.Evaluate(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(task.Name+"/sql", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(task.Query); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTheorem1Compile prices the mechanised Theorem 1 construction:
// SQL text to a ready spreadsheet program.
func BenchmarkTheorem1Compile(b *testing.B) {
	base := dataset.UsedCars()
	stmt := sql.MustParse("SELECT Model, AVG(Price) AS ap, COUNT(*) AS n FROM cars " +
		"WHERE Year >= 2005 GROUP BY Model HAVING AVG(Price) > 14000 ORDER BY ap DESC")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog, err := theorem1.Compile(base, stmt)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := prog.Collapse(); err != nil {
			b.Fatal(err)
		}
	}
}
