GO ?= go

.PHONY: build test race vet lint bench bench-json bench-gate loadgen-smoke clean

build:
	$(GO) build ./...

# The obs registry, the instrumented server, and the packages with parallel
# kernels (grouping/join/sort chunk fan-out) are the most
# concurrency-sensitive, so test always re-runs them under the race detector
# (full-tree race stays available as `make race`). internal/core additionally
# races with the parallel threshold forced low, so the chunk fan-out in every
# evaluation stage fires even on the small test relations.
test: lint
	$(GO) test ./...
	$(GO) test -race ./internal/obs ./internal/server ./internal/relation ./internal/core ./internal/sql ./internal/wal ./internal/engine ./internal/sqlgen ./internal/graph
	SHEETMUSIQ_PARALLEL_THRESHOLD=4 $(GO) test -race ./internal/core ./internal/relation

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint prefers staticcheck when it is on PATH and falls back to go vet, so
# `make test` needs no network access or extra tooling to run.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck ./...; \
	else \
		echo "$(GO) vet ./... (staticcheck not installed)"; $(GO) vet ./...; \
	fi

# bench-gate re-runs the tracked headline workloads and fails when any of
# them falls below 0.9x of the ns/op recorded in BENCH_eval.json — the perf
# counterpart of lint, cheap enough to run before every merge.
bench-gate:
	bash scripts/bench_gate.sh

# The suite includes BenchmarkTPCHQ1SF1, whose SF-1 dataset takes about a
# minute to generate; the widened -timeout keeps the full run inside it.
bench:
	$(GO) test -run='^$$' -bench=. -benchmem -timeout=60m .

# bench-json records the benchmark suite into BENCH_eval.json: the file's
# previous "after" snapshot becomes "before", and this run becomes "after".
# BenchmarkInstrumentedEval/{bare,instrumented}/* pairs land in the same
# file; their ratio is the observability layer's overhead (budget <5%).
# The tracked gate workloads then re-run -count=$(BENCH_JSON_COUNT) times in
# a fresh process and benchjson's min-of-runs selection keeps each
# benchmark's fastest line — a full-suite process accumulates a large live
# heap by the time the heavyweights run, and a single contended iteration
# would be recorded as the baseline the gate holds future work to.
BENCH_JSON_COUNT ?= 3
BENCH_GATE_PATTERN ?= ^(BenchmarkSelection100k|BenchmarkFormulaEvaluate100k|BenchmarkAggregate100k|BenchmarkGroupAggregate100k|BenchmarkSort100k|BenchmarkHashJoin1kx1k|BenchmarkWindowRank100k|BenchmarkMovingSum100k|BenchmarkInvalidationPrecision100k|BenchmarkTPCHQ1SF1)$$
bench-json:
	( $(GO) test -run='^$$' -bench=. -benchmem -timeout=60m . ; \
	  $(GO) test -run='^$$' -bench='$(BENCH_GATE_PATTERN)' -benchmem -count=$(BENCH_JSON_COUNT) -timeout=60m . ) \
	  | $(GO) run ./cmd/benchjson -update BENCH_eval.json

# loadgen-smoke is the end-to-end durability check: durable server, loadgen
# burst, kill -9, restart, verify every session renders identical state.
loadgen-smoke:
	bash scripts/loadgen_smoke.sh

clean:
	$(GO) clean ./...
