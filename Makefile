GO ?= go

.PHONY: build test race vet bench bench-json clean

build:
	$(GO) build ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchmem .

# bench-json records the benchmark suite into BENCH_eval.json: the file's
# previous "after" snapshot becomes "before", and this run becomes "after".
bench-json:
	$(GO) test -run='^$$' -bench=. -benchmem . | $(GO) run ./cmd/benchjson -update BENCH_eval.json

clean:
	$(GO) clean ./...
