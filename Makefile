GO ?= go

.PHONY: build test race vet bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem .

clean:
	$(GO) clean ./...
