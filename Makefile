GO ?= go

.PHONY: build test race vet bench bench-json clean

build:
	$(GO) build ./...

# The obs registry, the instrumented server, and the packages with parallel
# kernels (grouping/join/sort chunk fan-out) are the most
# concurrency-sensitive, so test always re-runs them under the race detector
# (full-tree race stays available as `make race`).
test: vet
	$(GO) test ./...
	$(GO) test -race ./internal/obs ./internal/server ./internal/relation ./internal/core ./internal/sql

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchmem .

# bench-json records the benchmark suite into BENCH_eval.json: the file's
# previous "after" snapshot becomes "before", and this run becomes "after".
# BenchmarkInstrumentedEval/{bare,instrumented}/* pairs land in the same
# file; their ratio is the observability layer's overhead (budget <5%).
bench-json:
	$(GO) test -run='^$$' -bench=. -benchmem . | $(GO) run ./cmd/benchjson -update BENCH_eval.json

clean:
	$(GO) clean ./...
