#!/usr/bin/env bash
# loadgen_smoke.sh — end-to-end durability smoke test.
#
# Starts a durable sheetserver, fires a loadgen burst at it, snapshots every
# session's rendered grid, kills the server with SIGKILL (no shutdown hook
# runs, exactly like a crash), restarts it over the same data directory, and
# verifies that every session renders the identical grid after recovery.
#
# Usage: scripts/loadgen_smoke.sh   (from the repo root; see `make loadgen-smoke`)
set -euo pipefail

ADDR=127.0.0.1:18097
SESSIONS=4
OPS=120

work=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/sheetserver" ./cmd/sheetserver
go build -o "$work/loadgen" ./cmd/loadgen

wait_up() {
    for _ in $(seq 1 100); do
        if curl -fsS "http://$ADDR/v1/healthz" >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "server did not come up on $ADDR" >&2
    exit 1
}

echo "== start durable server"
"$work/sheetserver" -addr "$ADDR" -data-dir "$work/data" -snapshot-every 16 \
    >"$work/server1.log" 2>&1 &
pid=$!
wait_up

echo "== loadgen burst: $SESSIONS sessions x $OPS ops"
"$work/loadgen" -addr "http://$ADDR" -sessions "$SESSIONS" -ops "$OPS" \
    -workers "$SESSIONS" -label smoke -out ""

echo "== snapshot session state"
for i in $(seq 1 "$SESSIONS"); do
    curl -fsS "http://$ADDR/v1/sessions/s$i/render" >"$work/before-s$i.json"
    curl -fsS "http://$ADDR/v1/sessions/s$i/state" >>"$work/before-s$i.json"
done

echo "== kill -9 the server"
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""

echo "== restart over the same data dir"
"$work/sheetserver" -addr "$ADDR" -data-dir "$work/data" -snapshot-every 16 \
    >"$work/server2.log" 2>&1 &
pid=$!
wait_up

echo "== verify recovered sessions"
for i in $(seq 1 "$SESSIONS"); do
    curl -fsS "http://$ADDR/v1/sessions/s$i/render" >"$work/after-s$i.json"
    curl -fsS "http://$ADDR/v1/sessions/s$i/state" >>"$work/after-s$i.json"
    if ! diff -q "$work/before-s$i.json" "$work/after-s$i.json" >/dev/null; then
        echo "FAIL: session s$i diverged after crash recovery" >&2
        diff "$work/before-s$i.json" "$work/after-s$i.json" >&2 || true
        exit 1
    fi
done

echo "PASS: $SESSIONS sessions recovered bit-identical state after kill -9"
