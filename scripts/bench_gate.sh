#!/usr/bin/env bash
# bench_gate.sh — perf regression gate. Re-runs the tracked benchmark
# workloads and fails if any of them regresses below the threshold ratio
# (baseline ns/op divided by current ns/op, default 0.9x) against the
# recorded snapshot in BENCH_eval.json. `make bench-gate` wraps this.
#
# Environment overrides:
#   BENCH_GATE_PATTERN    -bench regex selecting the tracked workloads
#   BENCH_GATE_BASELINE   baseline history file (default BENCH_eval.json)
#   BENCH_GATE_THRESHOLD  minimum accepted ratio (default 0.9)
#   BENCH_GATE_COUNT      benchmark repetitions; best run is gated (default 1)
set -euo pipefail
cd "$(dirname "$0")/.."

PATTERN="${BENCH_GATE_PATTERN:-^(BenchmarkSelection100k|BenchmarkFormulaEvaluate100k|BenchmarkAggregate100k|BenchmarkGroupAggregate100k|BenchmarkSort100k|BenchmarkHashJoin1kx1k)$}"
BASELINE="${BENCH_GATE_BASELINE:-BENCH_eval.json}"
THRESHOLD="${BENCH_GATE_THRESHOLD:-0.9}"
COUNT="${BENCH_GATE_COUNT:-1}"

go test -run='^$' -bench="$PATTERN" -benchmem -count="$COUNT" . \
  | go run ./cmd/benchjson -gate "$BASELINE" -threshold "$THRESHOLD"
