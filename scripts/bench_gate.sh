#!/usr/bin/env bash
# bench_gate.sh — perf regression gate. Re-runs the tracked benchmark
# workloads and fails if any of them regresses below the threshold ratio
# (baseline ns/op divided by current ns/op, default 0.9x) against the
# recorded snapshot in BENCH_eval.json, or grows its allocs/op past the
# alloc limit (default 1.25x baseline — boxing creeping back shows up in
# allocation counts before it shows up in time). `make bench-gate` wraps
# this.
#
# Single-iteration heavyweights (BenchmarkTPCHQ1SF1) are gated like
# everything else: the run repeats BENCH_GATE_COUNT times and benchjson
# keeps each benchmark's fastest run (min-of-runs), which absorbs the
# allocator/GC swings that a lone 6M-row iteration shows. TPC-H SF-1
# generation happens once per test binary, so the repeats only add the
# query's own runtime.
#
# Environment overrides:
#   BENCH_GATE_PATTERN      -bench regex selecting the tracked workloads
#   BENCH_GATE_BASELINE     baseline history file (default BENCH_eval.json)
#   BENCH_GATE_THRESHOLD    minimum accepted time ratio (default 0.9)
#   BENCH_GATE_ALLOC_LIMIT  maximum accepted allocs ratio (default 1.25)
#   BENCH_GATE_COUNT        benchmark repetitions; best run is gated (default 3)
set -euo pipefail
cd "$(dirname "$0")/.."

PATTERN="${BENCH_GATE_PATTERN:-^(BenchmarkSelection100k|BenchmarkFormulaEvaluate100k|BenchmarkAggregate100k|BenchmarkGroupAggregate100k|BenchmarkSort100k|BenchmarkHashJoin1kx1k|BenchmarkWindowRank100k|BenchmarkMovingSum100k|BenchmarkInvalidationPrecision100k|BenchmarkTPCHQ1SF1)$}"
BASELINE="${BENCH_GATE_BASELINE:-BENCH_eval.json}"
THRESHOLD="${BENCH_GATE_THRESHOLD:-0.9}"
ALLOC_LIMIT="${BENCH_GATE_ALLOC_LIMIT:-1.25}"
COUNT="${BENCH_GATE_COUNT:-3}"

go test -run='^$' -bench="$PATTERN" -benchmem -count="$COUNT" -timeout=60m . \
  | go run ./cmd/benchjson -gate "$BASELINE" -threshold "$THRESHOLD" -alloc-limit "$ALLOC_LIMIT"
