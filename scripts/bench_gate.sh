#!/usr/bin/env bash
# bench_gate.sh — perf regression gate. Re-runs the tracked benchmark
# workloads and fails if any of them regresses below the threshold ratio
# (baseline ns/op divided by current ns/op, default 0.9x) against the
# recorded snapshot in BENCH_eval.json. `make bench-gate` wraps this.
# BenchmarkTPCHQ1SF1 is recorded by `make bench-json` but not gated by
# default: the single-iteration 6M-row run swings well past the 0.9x
# threshold with allocator/GC state, and its SF-1 generation alone adds
# many minutes per gate run. Opt it in with
#   BENCH_GATE_PATTERN='^BenchmarkTPCHQ1SF1$' BENCH_GATE_THRESHOLD=0.5 make bench-gate
# when a change targets the TPC-H path specifically.
#
# Environment overrides:
#   BENCH_GATE_PATTERN    -bench regex selecting the tracked workloads
#   BENCH_GATE_BASELINE   baseline history file (default BENCH_eval.json)
#   BENCH_GATE_THRESHOLD  minimum accepted ratio (default 0.9)
#   BENCH_GATE_COUNT      benchmark repetitions; best run is gated (default 1)
set -euo pipefail
cd "$(dirname "$0")/.."

PATTERN="${BENCH_GATE_PATTERN:-^(BenchmarkSelection100k|BenchmarkFormulaEvaluate100k|BenchmarkAggregate100k|BenchmarkGroupAggregate100k|BenchmarkSort100k|BenchmarkHashJoin1kx1k|BenchmarkWindowRank100k|BenchmarkMovingSum100k)$}"
BASELINE="${BENCH_GATE_BASELINE:-BENCH_eval.json}"
THRESHOLD="${BENCH_GATE_THRESHOLD:-0.9}"
COUNT="${BENCH_GATE_COUNT:-1}"

go test -run='^$' -bench="$PATTERN" -benchmem -count="$COUNT" -timeout=60m . \
  | go run ./cmd/benchjson -gate "$BASELINE" -threshold "$THRESHOLD"
