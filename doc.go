// Package sheetmusiq reproduces "A Spreadsheet Algebra for a Direct Data
// Manipulation Query Interface" (Liu & Jagadish, ICDE 2009): a query
// algebra over recursively grouped ordered multi-sets whose unary operators
// commute, enabling a spreadsheet-style interface where queries are
// composed one small step at a time and any earlier step can be modified in
// place.
//
// The algebra lives in internal/core; internal/sql and internal/sqlgen form
// the SQL substrate the paper's prototype compiled to; internal/tpch and
// internal/uistudy reproduce the Sec. VII evaluation. See README.md for the
// tour and DESIGN.md for the system inventory. This root package holds the
// benchmark harness (bench_test.go) that regenerates every table and figure
// of the paper.
package sheetmusiq
