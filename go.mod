module sheetmusiq

go 1.22
