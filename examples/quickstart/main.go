// Quickstart: build a spreadsheet over a small relation and compose a query
// one direct-manipulation operator at a time.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sheetmusiq/internal/core"
	"sheetmusiq/internal/relation"
	"sheetmusiq/internal/value"
)

func main() {
	// 1. A base relation (normally loaded from CSV or generated).
	books := relation.New("books", relation.Schema{
		{Name: "Title", Kind: value.KindString},
		{Name: "Genre", Kind: value.KindString},
		{Name: "Pages", Kind: value.KindInt},
		{Name: "Price", Kind: value.KindFloat},
	})
	add := func(title, genre string, pages int64, price float64) {
		books.MustAppend(value.NewString(title), value.NewString(genre),
			value.NewInt(pages), value.NewFloat(price))
	}
	add("The Pragmatic Programmer", "software", 352, 39.99)
	add("A Pattern Language", "architecture", 1171, 65.00)
	add("The Art of Computer Programming", "software", 650, 79.99)
	add("Structure and Interpretation", "software", 657, 42.00)
	add("Invisible Cities", "fiction", 165, 12.99)
	add("The Dispossessed", "fiction", 387, 15.99)

	// 2. The base spreadsheet S⁰ (paper Def. 2).
	sheet := core.New(books)

	// 3. Manipulate it step by step; each call edits the query state and
	//    Evaluate replays it.
	if _, err := sheet.Select("Price < 70"); err != nil {
		log.Fatal(err)
	}
	if err := sheet.GroupBy(core.Asc, "Genre"); err != nil {
		log.Fatal(err)
	}
	if err := sheet.Sort("Price", core.Asc); err != nil {
		log.Fatal(err)
	}
	if _, err := sheet.AggregateAs("AvgPages", relation.AggAvg, "Pages", 2); err != nil {
		log.Fatal(err)
	}
	if _, err := sheet.Formula("PerPage", "Price / Pages"); err != nil {
		log.Fatal(err)
	}

	res, err := sheet.Evaluate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Books under $70, grouped by genre, with the genre's average page count:")
	fmt.Println(res.RenderGrouped())

	// 4. Query modification (paper Sec. V): change the price cap without
	//    redoing anything else.
	sel := sheet.Selections("Price")[0]
	if err := sheet.ReplaceSelection(sel.ID, "Price < 45"); err != nil {
		log.Fatal(err)
	}
	res, err = sheet.Evaluate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Same sheet after tightening the price filter to $45:")
	fmt.Println(res.RenderGrouped())

	fmt.Println("Operation history:")
	for i, h := range sheet.History() {
		fmt.Printf("  %d. %s\n", i+1, h)
	}
}
