// Querymod demonstrates the interactive facilities around the algebra:
// undo/redo, stored spreadsheets, binary operators, and the query-state
// modification API — including the point of non-commutativity a binary
// operator creates (paper Secs. IV-B and V).
//
//	go run ./examples/querymod
package main

import (
	"fmt"
	"log"

	"sheetmusiq/internal/core"
	"sheetmusiq/internal/dataset"
)

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func rows(s *core.Spreadsheet) int {
	res, err := s.Evaluate()
	must(err)
	return res.Table.Len()
}

func main() {
	catalog := core.NewCatalog()

	// Build and store a sheet of excellent-condition cars.
	excellent := core.New(dataset.UsedCars())
	_, err := excellent.Select("Condition = 'Excellent'")
	must(err)
	must(catalog.Save("excellent", excellent))
	fmt.Printf("stored sheet %q with %d rows\n", "excellent", rows(excellent))

	// Current sheet: cheap cars.
	sheet := core.New(dataset.UsedCars())
	cheapID, err := sheet.Select("Price < 17000")
	must(err)
	fmt.Printf("cheap cars: %d rows\n", rows(sheet))

	// Undo and redo are one call each.
	entry, err := sheet.Undo()
	must(err)
	fmt.Printf("undid %q -> %d rows\n", entry, rows(sheet))
	_, err = sheet.Redo()
	must(err)
	fmt.Printf("redone -> %d rows\n", rows(sheet))

	// Loosen the predicate in place: history is rewritten, not replayed.
	must(sheet.ReplaceSelection(cheapID, "Price < 18000"))
	fmt.Printf("after modifying the price cap: %d rows\n", rows(sheet))

	// A binary operator folds the current state into a new base relation —
	// the point of non-commutativity.
	stored, err := catalog.Stored("excellent")
	must(err)
	must(sheet.Difference(stored))
	fmt.Printf("cheap − excellent: %d rows; live selections now: %d\n",
		rows(sheet), len(sheet.Selections("")))

	// The query state is rewritable again after the fold.
	_, err = sheet.Select("Model = 'Civic'")
	must(err)
	fmt.Printf("cheap − excellent, Civics only: %d rows\n", rows(sheet))

	// Reinstating a projected column rewrites history as if π never ran.
	must(sheet.Hide("Mileage"))
	fmt.Printf("columns with Mileage hidden: %v\n", sheet.VisibleSchema().Names())
	must(sheet.Reinstate("Mileage"))
	fmt.Printf("columns after reinstate:     %v\n", sheet.VisibleSchema().Names())

	fmt.Println("\nfull history:")
	for i, h := range sheet.History() {
		fmt.Printf("  %d. %s\n", i+1, h)
	}
}
