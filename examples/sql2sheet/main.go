// Sql2sheet demonstrates the mechanised Theorem 1: a single-block SQL query
// compiles into the exact spreadsheet-algebra program the paper's
// constructive proof describes, producing a live sheet the user can keep
// manipulating — the bridge between "type the query once" and "refine it by
// direct manipulation".
//
//	go run ./examples/sql2sheet
package main

import (
	"fmt"
	"log"

	"sheetmusiq/internal/dataset"
	"sheetmusiq/internal/sql"
	"sheetmusiq/internal/sqlgen"
	"sheetmusiq/internal/theorem1"
)

func main() {
	base := dataset.UsedCars()
	query := "SELECT Model, AVG(Price) AS avg_price, COUNT(*) AS n FROM cars " +
		"WHERE Year >= 2005 GROUP BY Model HAVING COUNT(*) > 2 ORDER BY avg_price DESC"
	fmt.Println("input SQL:")
	fmt.Println(" ", query)

	stmt, err := sql.Parse(query)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := theorem1.Compile(base, stmt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nthe Theorem 1 construction, step by step:")
	for _, step := range prog.Log {
		fmt.Println(" ", step)
	}

	res, err := prog.Sheet.Evaluate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthe live spreadsheet (grouped view, aggregates repeated per row):")
	fmt.Println(res.RenderTree())

	collapsed, err := prog.Collapse()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("collapsed to SQL's one-row-per-group form:")
	fmt.Println(collapsed.String())

	// The two routes agree: run the same SQL through the engine.
	db := sql.NewDB()
	db.Register(dataset.UsedCars())
	ref, err := db.Exec(stmt)
	if err != nil {
		log.Fatal(err)
	}
	match := collapsed.String() == ref.String()
	fmt.Printf("algebra result == SQL engine result: %v\n\n", match)

	// And the compiled sheet is a normal sheet: modify it, regenerate SQL.
	sels := prog.Sheet.Selections("Year")
	if err := prog.Sheet.ReplaceSelection(sels[0].ID, "Year = 2006"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("after modifying the Year filter in place (paper Sec. V):")
	res, err = prog.Sheet.Evaluate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.RenderTree())

	back, err := sqlgen.Generate(prog.Sheet)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("and the modified state compiles back to SQL:")
	fmt.Println(" ", back)
}
