// Tpch runs two of the user study's TPC-H tasks through the spreadsheet
// algebra and cross-checks each against the reference SQL on the same
// generated data — the integrity check behind the Sec. VII evaluation.
//
//	go run ./examples/tpch [-sf 0.002]
package main

import (
	"flag"
	"fmt"
	"log"

	"sheetmusiq/internal/sqlgen"
	"sheetmusiq/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.002, "TPC-H scale factor")
	flag.Parse()

	fmt.Printf("generating TPC-H data at SF %g ...\n", *sf)
	tables := tpch.Generate(tpch.Config{ScaleFactor: *sf, Seed: 19920101})
	db := tpch.BuildDB(tables)
	if err := tpch.BuildViews(db); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lineitem has %d rows; study views are materialised\n\n", tables.LineItem.Len())

	for _, id := range []int{1, 9} {
		task := tpch.Tasks()[id-1]
		fmt.Printf("=== Task %d (%s, from TPC-H %s) ===\n%s\n\n", task.ID, task.Name,
			task.TpchQuery, task.Description)

		// The direct-manipulation route: one algebra operator per step.
		sheet, err := task.Run(db)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("SheetMusiq steps:")
		for i, h := range sheet.History() {
			fmt.Printf("  %d. %s\n", i+1, h)
		}
		res, err := sheet.Evaluate()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("spreadsheet result: %d rows across the groups\n", res.Table.Len())

		stmt, err := sqlgen.Generate(sheet)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("compiled SQL (truncated): %.120s...\n\n", stmt)

		// The SQL route a query builder would take.
		ref, err := db.Query(task.Query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("reference SQL result (%d groups):\n%s\n", ref.Len(), ref.String())
	}
}
