// Usedcars replays the paper's running example end to end: Sam explores the
// Table I used-car database, reproducing Tables I–V and the Fig. 1/Fig. 2
// interactions (aggregate under grouping, then compare Price with
// Avg_Price).
//
//	go run ./examples/usedcars
package main

import (
	"fmt"
	"log"

	"sheetmusiq/internal/core"
	"sheetmusiq/internal/dataset"
	"sheetmusiq/internal/relation"
	"sheetmusiq/internal/sqlgen"
)

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func show(title string, s *core.Spreadsheet) {
	res, err := s.Evaluate()
	must(err)
	fmt.Printf("— %s —\n%s\n", title, res.RenderGrouped())
}

func main() {
	// Table I: the base spreadsheet.
	sheet := core.New(dataset.UsedCars())
	show("Table I: the used car database", sheet)

	// Sec. III running configuration: grouped by Model (DESC) then Year
	// (ASC), ordered by Price within the finest groups.
	must(sheet.GroupBy(core.Desc, "Model"))
	must(sheet.GroupBy(core.Asc, "Year"))
	must(sheet.Sort("Price", core.Asc))

	// Example 1 / Table II: a further grouping level by Condition.
	t2 := sheet.Clone()
	must(t2.GroupBy(core.Asc, "Condition"))
	show("Table II: after grouping by Condition", t2)

	// Fig. 1 + Table III: average price over cars of the same Model and
	// Year, stored as a computed column repeated per group.
	name, err := sheet.Aggregate(relation.AggAvg, "Price", 3)
	must(err)
	must(sheet.Hide("Condition"))
	show("Table III: computed column "+name, sheet)

	// Fig. 2: filter out cars more expensive than their group average.
	_, err = sheet.Select("Price < " + name)
	must(err)
	show("Fig. 2 flow: cars cheaper than their (Model, Year) average", sheet)

	// The spreadsheet state always compiles to a single SQL statement.
	stmt, err := sqlgen.Generate(sheet)
	must(err)
	fmt.Printf("The state above compiles to:\n%s\n\n", stmt)

	// Sec. V / Tables IV and V: query modification. Sam starts over with a
	// fresh sheet, then changes his mind about the year.
	sam := core.New(dataset.UsedCars())
	yearID, err := sam.Select("Year = 2005")
	must(err)
	_, err = sam.Select("Model = 'Jetta'")
	must(err)
	_, err = sam.Select("Mileage < 80000")
	must(err)
	must(sam.GroupBy(core.Asc, "Condition"))
	must(sam.Sort("Price", core.Asc))
	show("Table IV: 2005 Jettas under 80k miles", sam)

	// "Sam can now simply choose the Year column, and change the previous
	// condition" — one state edit re-derives everything (Theorem 3).
	must(sam.ReplaceSelection(yearID, "Year = 2006"))
	show("Table V: the same query with Year = 2006", sam)

	fmt.Println("Sam's history (note the modification is one entry, not a replay):")
	for i, h := range sam.History() {
		fmt.Printf("  %d. %s\n", i+1, h)
	}
}
