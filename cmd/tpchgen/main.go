// Command tpchgen generates the TPC-H dataset used by the study
// reproduction and writes each table (and optionally each predefined study
// view) as CSV.
//
// Usage:
//
//	tpchgen -sf 0.01 -out ./data [-views] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"sheetmusiq/internal/tpch"
)

func main() {
	var (
		sf    = flag.Float64("sf", 0.002, "TPC-H scale factor")
		out   = flag.String("out", ".", "output directory")
		seed  = flag.Int64("seed", 19920101, "generator seed")
		views = flag.Bool("views", false, "also materialise the study views")
	)
	flag.Parse()
	if err := run(*sf, *out, *seed, *views); err != nil {
		fmt.Fprintln(os.Stderr, "tpchgen:", err)
		os.Exit(1)
	}
}

func run(sf float64, out string, seed int64, views bool) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	tables := tpch.Generate(tpch.Config{ScaleFactor: sf, Seed: seed})
	db := tpch.BuildDB(tables)
	names := make([]string, 0, 8)
	for _, r := range tables.All() {
		names = append(names, r.Name)
	}
	if views {
		if err := tpch.BuildViews(db); err != nil {
			return err
		}
		for _, task := range tpch.Tasks() {
			if task.ViewSQL != "" {
				names = append(names, task.ViewName)
			}
		}
	}
	written := map[string]bool{}
	for _, name := range names {
		if written[name] {
			continue
		}
		written[name] = true
		rel, ok := db.Table(name)
		if !ok {
			return fmt.Errorf("table %q missing", name)
		}
		path := filepath.Join(out, name+".csv")
		if err := rel.SaveCSV(path); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d rows)\n", path, rel.Len())
	}
	return nil
}
