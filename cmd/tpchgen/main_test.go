package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sheetmusiq/internal/relation"
)

func TestRunWritesTables(t *testing.T) {
	dir := t.TempDir()
	if err := run(0.001, dir, 7, false); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"region", "nation", "supplier", "customer",
		"part", "partsupp", "orders", "lineitem"} {
		path := filepath.Join(dir, name+".csv")
		rel, err := relation.LoadCSV(name, path, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rel.Len() == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "v_stock.csv")); err == nil {
		t.Fatal("views must not be written without -views")
	}
}

func TestRunWritesViews(t *testing.T) {
	dir := t.TempDir()
	if err := run(0.001, dir, 7, true); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	views := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "v_") {
			views++
		}
	}
	if views < 5 {
		t.Fatalf("expected the study views, found %d v_* files", views)
	}
}

func TestRunBadDirectory(t *testing.T) {
	if err := run(0.001, "/proc/definitely/not/writable", 7, false); err == nil {
		t.Fatal("unwritable output directory must error")
	}
}
