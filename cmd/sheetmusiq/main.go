// Command sheetmusiq is the interactive direct-manipulation query
// interface: a textual rendition of the paper's SheetMusiq prototype
// (Sec. VI). Start it, type "demo cars" (the paper's running example) or
// "demo tpch" (the user-study dataset), and manipulate the sheet one
// algebra operator at a time; "help" lists every command.
package main

import (
	"flag"
	"fmt"
	"os"

	"sheetmusiq/internal/repl"
)

func main() {
	script := flag.String("script", "", "run commands from a file instead of stdin")
	flag.Parse()
	in := os.Stdin
	if *script != "" {
		f, err := os.Open(*script)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sheetmusiq:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	if err := repl.New(os.Stdout).Run(in); err != nil {
		fmt.Fprintln(os.Stderr, "sheetmusiq:", err)
		os.Exit(1)
	}
}
