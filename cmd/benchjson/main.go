// Command benchjson converts `go test -bench` output into a JSON metrics
// snapshot, so benchmark history can be checked in and diffed. It reads the
// benchmark text from stdin and emits, per benchmark, the ns/op, allocs/op,
// B/op and any custom metrics (req/s and friends).
//
// With -update FILE it maintains a before/after pair: the file's current
// "after" snapshot (the last recorded run) becomes "before", and the new
// run becomes "after". `make bench-json` uses this to keep BENCH_eval.json
// tracking the latest optimisation step against its predecessor.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// snapshot maps benchmark name to metric name to value.
type snapshot map[string]map[string]float64

// history is the on-disk shape of BENCH_eval.json. Speedup holds, per
// benchmark present in both snapshots, before-ns/op divided by after-ns/op —
// >1 means the recorded run got faster than its predecessor.
type history struct {
	Before  snapshot           `json:"before,omitempty"`
	After   snapshot           `json:"after"`
	Speedup map[string]float64 `json:"speedup,omitempty"`
}

// speedups computes the before/after ns-per-op ratio for every benchmark
// recorded in both snapshots, rounded to two decimals.
func speedups(before, after snapshot) map[string]float64 {
	out := map[string]float64{}
	for name, am := range after {
		bm, ok := before[name]
		if !ok {
			continue
		}
		b, a := bm["ns_per_op"], am["ns_per_op"]
		if b > 0 && a > 0 {
			out[name] = float64(int(b/a*100+0.5)) / 100
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

var procSuffix = regexp.MustCompile(`-\d+$`)

// metricKey maps a go-test unit ("ns/op", "req/s") to a JSON-friendly key.
func metricKey(unit string) string {
	switch unit {
	case "ns/op":
		return "ns_per_op"
	case "B/op":
		return "bytes_per_op"
	case "allocs/op":
		return "allocs_per_op"
	case "req/s":
		return "req_per_s"
	}
	return strings.NewReplacer("/", "_per_", "-", "_").Replace(unit)
}

// parse extracts one snapshot from `go test -bench` output.
func parse(lines *bufio.Scanner) (snapshot, error) {
	snap := snapshot{}
	for lines.Scan() {
		fields := strings.Fields(lines.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := procSuffix.ReplaceAllString(fields[0], "")
		metrics := map[string]float64{}
		// fields[1] is the iteration count; the rest are value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: %s: bad value %q", name, fields[i])
			}
			metrics[metricKey(fields[i+1])] = v
		}
		snap[name] = metrics
	}
	if err := lines.Err(); err != nil {
		return nil, err
	}
	if len(snap) == 0 {
		return nil, fmt.Errorf("benchjson: no benchmark lines on stdin")
	}
	return snap, nil
}

func run() error {
	update := flag.String("update", "", "maintain a before/after history file instead of printing the snapshot")
	flag.Parse()
	snap, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		return err
	}
	if *update == "" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(snap)
	}
	var h history
	if data, err := os.ReadFile(*update); err == nil {
		if err := json.Unmarshal(data, &h); err != nil {
			return fmt.Errorf("benchjson: %s: %w", *update, err)
		}
	}
	if h.After != nil {
		h.Before = h.After
	}
	h.After = snap
	h.Speedup = speedups(h.Before, h.After)
	data, err := json.MarshalIndent(&h, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(*update, append(data, '\n'), 0o644)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
