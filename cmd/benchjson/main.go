// Command benchjson converts `go test -bench` output into a JSON metrics
// snapshot, so benchmark history can be checked in and diffed. It reads the
// benchmark text from stdin and emits, per benchmark, the ns/op, allocs/op,
// B/op and any custom metrics (req/s and friends).
//
// A benchmark appearing more than once on stdin — `go test -count=N` emits
// one line per run — records its fastest run (minimum ns/op): the minimum is
// the standard noise-robust selector, so single-iteration heavyweights can
// be gated by running them a few times instead of being carved out for
// variance.
//
// With -update FILE it maintains a before/after pair: the file's current
// "after" snapshot (the last recorded run) becomes "before", and the new
// run becomes "after". `make bench-json` uses this to keep BENCH_eval.json
// tracking the latest optimisation step against its predecessor.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// snapshot maps benchmark name to metric name to value.
type snapshot map[string]map[string]float64

// history is the on-disk shape of BENCH_eval.json. Speedup holds, per
// benchmark present in both snapshots, before-ns/op divided by after-ns/op —
// >1 means the recorded run got faster than its predecessor.
type history struct {
	Before  snapshot           `json:"before,omitempty"`
	After   snapshot           `json:"after"`
	Speedup map[string]float64 `json:"speedup,omitempty"`
}

// speedups computes the before/after ns-per-op ratio for every benchmark
// recorded in both snapshots, rounded to two decimals.
func speedups(before, after snapshot) map[string]float64 {
	out := map[string]float64{}
	for name, am := range after {
		bm, ok := before[name]
		if !ok {
			continue
		}
		b, a := bm["ns_per_op"], am["ns_per_op"]
		if b > 0 && a > 0 {
			out[name] = float64(int(b/a*100+0.5)) / 100
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

var procSuffix = regexp.MustCompile(`-\d+$`)

// metricKey maps a go-test unit ("ns/op", "req/s") to a JSON-friendly key.
func metricKey(unit string) string {
	switch unit {
	case "ns/op":
		return "ns_per_op"
	case "B/op":
		return "bytes_per_op"
	case "allocs/op":
		return "allocs_per_op"
	case "req/s":
		return "req_per_s"
	}
	return strings.NewReplacer("/", "_per_", "-", "_").Replace(unit)
}

// parse extracts one snapshot from `go test -bench` output. Repeated lines
// for the same benchmark (`go test -count=N`) keep the fastest run — the one
// with minimum ns/op — so multi-run output gates on the least-noisy sample.
func parse(lines *bufio.Scanner) (snapshot, error) {
	snap := snapshot{}
	for lines.Scan() {
		fields := strings.Fields(lines.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := procSuffix.ReplaceAllString(fields[0], "")
		metrics := map[string]float64{}
		// fields[1] is the iteration count; the rest are value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: %s: bad value %q", name, fields[i])
			}
			metrics[metricKey(fields[i+1])] = v
		}
		if prev, ok := snap[name]; ok && prev["ns_per_op"] <= metrics["ns_per_op"] {
			continue // an earlier run was faster: min-of-runs selection
		}
		snap[name] = metrics
	}
	if err := lines.Err(); err != nil {
		return nil, err
	}
	if len(snap) == 0 {
		return nil, fmt.Errorf("benchjson: no benchmark lines on stdin")
	}
	return snap, nil
}

// gate compares a fresh run against the recorded baseline: every benchmark
// present in both must keep baseline-ns/current-ns at or above threshold,
// and its allocs/op must not grow past allocLimit times the baseline (boxing
// creeping back shows up in allocation counts before it shows up in time).
// Either violation fails the gate.
func gate(current snapshot, baselineFile string, threshold, allocLimit float64) error {
	data, err := os.ReadFile(baselineFile)
	if err != nil {
		return fmt.Errorf("benchjson: gate baseline: %w", err)
	}
	var h history
	if err := json.Unmarshal(data, &h); err != nil {
		return fmt.Errorf("benchjson: %s: %w", baselineFile, err)
	}
	if h.After == nil {
		return fmt.Errorf("benchjson: %s has no recorded run to gate against", baselineFile)
	}
	checked, failed := 0, 0
	for name, cm := range current {
		bm, ok := h.After[name]
		if !ok {
			continue
		}
		base, cur := bm["ns_per_op"], cm["ns_per_op"]
		if base <= 0 || cur <= 0 {
			continue
		}
		checked++
		ratio := base / cur
		status := "ok"
		if ratio < threshold {
			status = "REGRESSED"
			failed++
		}
		note := ""
		if baseAllocs, curAllocs := bm["allocs_per_op"], cm["allocs_per_op"]; baseAllocs > 0 && curAllocs > baseAllocs*allocLimit {
			note = fmt.Sprintf("  allocs %0.f -> %0.f (limit %.2fx)", baseAllocs, curAllocs, allocLimit)
			if status == "ok" {
				status = "ALLOCS REGRESSED"
				failed++
			}
		}
		fmt.Printf("%-44s baseline %12.0f ns/op  now %12.0f ns/op  ratio %.2fx  %s%s\n",
			name, base, cur, ratio, status, note)
	}
	if checked == 0 {
		return fmt.Errorf("benchjson: no benchmark on stdin matches the baseline in %s", baselineFile)
	}
	if failed > 0 {
		return fmt.Errorf("benchjson: %d of %d tracked workloads regressed (time below %.2fx of baseline or allocs above %.2fx)", failed, checked, threshold, allocLimit)
	}
	fmt.Printf("bench gate passed: %d workloads within %.2fx of baseline time and %.2fx of baseline allocs\n", checked, threshold, allocLimit)
	return nil
}

func run() error {
	update := flag.String("update", "", "maintain a before/after history file instead of printing the snapshot")
	gateFile := flag.String("gate", "", "compare the run on stdin against FILE's recorded snapshot and fail on regression")
	threshold := flag.Float64("threshold", 0.9, "minimum baseline/current ns-per-op ratio the gate accepts")
	allocLimit := flag.Float64("alloc-limit", 1.25, "maximum current/baseline allocs-per-op ratio the gate accepts")
	flag.Parse()
	snap, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		return err
	}
	if *gateFile != "" {
		return gate(snap, *gateFile, *threshold, *allocLimit)
	}
	if *update == "" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(snap)
	}
	var h history
	if data, err := os.ReadFile(*update); err == nil {
		if err := json.Unmarshal(data, &h); err != nil {
			return fmt.Errorf("benchjson: %s: %w", *update, err)
		}
	}
	if h.After != nil {
		h.Before = h.After
	}
	h.After = snap
	h.Speedup = speedups(h.Before, h.After)
	data, err := json.MarshalIndent(&h, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(*update, append(data, '\n'), 0o644)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
