// Command sheetserver serves the spreadsheet algebra over HTTP/JSON: a
// multi-session service where each session is an independent engine (its
// own sheet, query state, undo history, and raw tables) and all sessions
// share one stored-sheet catalog, so a sheet saved by one user is a
// binary-operator operand for every other.
//
// Quick start:
//
//	sheetserver -addr :8080
//	curl -s -X POST localhost:8080/v1/sessions -d '{"name":"sam"}'
//	curl -s -X POST localhost:8080/v1/sessions/s1/op -d '{"op":"demo","table":"cars"}'
//	curl -s -X POST localhost:8080/v1/sessions/s1/op -d '{"op":"select","predicate":"Year = 2005"}'
//	curl -s localhost:8080/v1/sessions/s1/render
//
// Each POST …/op applies exactly one algebra step — the paper's
// one-operation-at-a-time interaction model, preserved over the wire.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sheetmusiq/internal/server"
	"sheetmusiq/internal/sql"
	"sheetmusiq/internal/tpch"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxSessions := flag.Int("max-sessions", server.DefaultMaxSessions,
		"live-session cap; past it the least-recently-used session is evicted (negative = unlimited)")
	idleTTL := flag.Duration("idle-ttl", 30*time.Minute,
		"evict sessions idle this long (0 disables)")
	tpchScale := flag.Float64("tpch", 0,
		"pre-generate TPC-H tables at this scale factor and register them in every session (0 disables)")
	allowFS := flag.Bool("allow-fs", false,
		"permit ops that read/write server-local files (load, savestate, loadstate, export)")
	flag.Parse()

	cfg := server.Config{
		MaxSessions:     *maxSessions,
		IdleTTL:         *idleTTL,
		AllowFilesystem: *allowFS,
	}
	if sf := *tpchScale; sf > 0 {
		// Generate once; every session's private registry gets the same
		// relations (they are read-only, so sharing the backing data is safe).
		log.Printf("generating TPC-H tables at scale factor %v", sf)
		tb := tpch.Generate(tpch.Config{ScaleFactor: sf, Seed: 1})
		rels := tb.All()
		cfg.Seed = func(db *sql.DB) error {
			for _, r := range rels {
				db.Register(r)
			}
			return tpch.BuildViews(db)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	m := server.NewManager(cfg)
	log.Printf("sheetserver listening on %s (max sessions %d, idle TTL %s)",
		*addr, *maxSessions, *idleTTL)
	if err := server.ListenAndServe(ctx, *addr, m); err != nil {
		fmt.Fprintln(os.Stderr, "sheetserver:", err)
		os.Exit(1)
	}
	log.Print("sheetserver: drained and stopped")
}
