// Command sheetserver serves the spreadsheet algebra over HTTP/JSON: a
// multi-session service where each session is an independent engine (its
// own sheet, query state, undo history, and raw tables) and all sessions
// share one stored-sheet catalog, so a sheet saved by one user is a
// binary-operator operand for every other.
//
// Quick start:
//
//	sheetserver -addr :8080
//	curl -s -X POST localhost:8080/v1/sessions -d '{"name":"sam"}'
//	curl -s -X POST localhost:8080/v1/sessions/s1/op -d '{"op":"demo","table":"cars"}'
//	curl -s -X POST localhost:8080/v1/sessions/s1/op -d '{"op":"select","predicate":"Year = 2005"}'
//	curl -s localhost:8080/v1/sessions/s1/render
//	curl -s localhost:8080/v1/metrics
//
// Each POST …/op applies exactly one algebra step — the paper's
// one-operation-at-a-time interaction model, preserved over the wire.
//
// Observability: GET /v1/metrics returns the live metrics snapshot
// (DESIGN.md §8 documents the series), -pprof mounts net/http/pprof under
// /debug/pprof/, and -log-level debug logs one structured line per request
// with its request ID and engine span timings.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sheetmusiq/internal/server"
	"sheetmusiq/internal/sql"
	"sheetmusiq/internal/tpch"
	"sheetmusiq/internal/wal"
)

// newLogger builds the process logger from the -log-level/-log-json flags.
func newLogger(level string, jsonOut bool) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (debug, info, warn, error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	if jsonOut {
		h = slog.NewJSONHandler(os.Stderr, opts)
	} else {
		h = slog.NewTextHandler(os.Stderr, opts)
	}
	return slog.New(h), nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxSessions := flag.Int("max-sessions", server.DefaultMaxSessions,
		"live-session cap; past it the least-recently-used session is evicted (negative = unlimited)")
	idleTTL := flag.Duration("idle-ttl", 30*time.Minute,
		"evict sessions idle this long (0 disables)")
	tpchScale := flag.Float64("tpch", 0,
		"pre-generate TPC-H tables at this scale factor and register them in every session (0 disables)")
	allowFS := flag.Bool("allow-fs", false,
		"permit ops that read/write server-local files (load, savestate, loadstate, export)")
	enablePprof := flag.Bool("pprof", false,
		"mount net/http/pprof under /debug/pprof/ on the API listener")
	logLevel := flag.String("log-level", "info",
		"log verbosity: debug (per-request lines with span timings), info, warn, error")
	logJSON := flag.Bool("log-json", false,
		"emit logs as JSON instead of text")
	dataDir := flag.String("data-dir", "",
		"persist sessions under this directory: per-session op WAL + snapshot checkpoints,\ncrash recovery by snapshot + log-suffix replay (empty disables durability)")
	fsyncPolicy := flag.String("fsync", "batch",
		"WAL fsync policy: batch (group fsync on -fsync-interval), always (per record), none")
	fsyncInterval := flag.Duration("fsync-interval", 25*time.Millisecond,
		"group-fsync period for -fsync=batch")
	snapshotEvery := flag.Int("snapshot-every", wal.DefaultSnapshotEvery,
		"write a snapshot checkpoint every N logged ops per session")
	segmentBytes := flag.Int64("wal-segment-bytes", 4<<20,
		"roll WAL segment files past this size")
	flag.Parse()

	logger, err := newLogger(strings.ToUpper(*logLevel), *logJSON)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sheetserver:", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)

	cfg := server.Config{
		MaxSessions:     *maxSessions,
		IdleTTL:         *idleTTL,
		AllowFilesystem: *allowFS,
		EnablePprof:     *enablePprof,
		Logger:          logger,
	}
	if *dataDir != "" {
		policy, err := wal.ParseSyncPolicy(*fsyncPolicy)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sheetserver:", err)
			os.Exit(2)
		}
		store, err := wal.NewStore(*dataDir, wal.Options{
			Sync:          policy,
			BatchInterval: *fsyncInterval,
			SegmentBytes:  *segmentBytes,
		}, *snapshotEvery)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sheetserver:", err)
			os.Exit(2)
		}
		cfg.Durability = store
		logger.Info("durability enabled",
			"data_dir", *dataDir, "fsync", policy.String(),
			"fsync_interval", *fsyncInterval, "snapshot_every", *snapshotEvery)
	}
	if sf := *tpchScale; sf > 0 {
		// Generate once; every session's private registry gets the same
		// relations (they are read-only, so sharing the backing data is safe).
		logger.Info("generating TPC-H tables", "scale_factor", sf)
		tb := tpch.Generate(tpch.Config{ScaleFactor: sf, Seed: 1})
		rels := tb.All()
		cfg.Seed = func(db *sql.DB) error {
			for _, r := range rels {
				db.Register(r)
			}
			return tpch.BuildViews(db)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	m := server.NewManager(cfg)
	logger.Info("sheetserver listening",
		"addr", *addr, "max_sessions", *maxSessions, "idle_ttl", *idleTTL,
		"pprof", *enablePprof)
	if err := server.ListenAndServe(ctx, *addr, m); err != nil {
		logger.Error("sheetserver failed", "err", err)
		os.Exit(1)
	}
	logger.Info("sheetserver drained and stopped")
}
