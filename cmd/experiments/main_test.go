package main

import (
	"os"
	"testing"

	"sheetmusiq/internal/uistudy"
)

// TestRunAllArtifacts smoke-runs every artifact path (output goes to the
// test's stdout; content is covered by internal/report's tests and the
// golden table tests in internal/core).
func TestRunAllArtifacts(t *testing.T) {
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	defer func() {
		os.Stdout = old
		null.Close()
	}()
	if err := run(true, 0, 0, 10, uistudy.DefaultConfig().Seed); err != nil {
		t.Fatal(err)
	}
	for table := 1; table <= 6; table++ {
		if err := run(false, table, 0, 10, 1); err != nil {
			t.Fatalf("table %d: %v", table, err)
		}
	}
	for fig := 3; fig <= 5; fig++ {
		if err := run(false, 0, fig, 10, 1); err != nil {
			t.Fatalf("fig %d: %v", fig, err)
		}
	}
}
