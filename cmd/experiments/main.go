// Command experiments regenerates every table and figure of the paper's
// evaluation (Sec. VII) plus the running-example tables of Secs. I–V.
//
// Usage:
//
//	experiments -all
//	experiments -table 1|2|3|4|5|6
//	experiments -fig 3|4|5
//	experiments -seed 42 -subjects 10
//	experiments -sweep 100    # robustness across 100 simulated panels
//
// Absolute numbers differ from the paper (the subjects are simulated; see
// DESIGN.md), but the shapes — who wins, by what factor, where the
// comparable queries fall — reproduce the published results.
package main

import (
	"flag"
	"fmt"
	"os"

	"sheetmusiq/internal/core"
	"sheetmusiq/internal/dataset"
	"sheetmusiq/internal/relation"
	"sheetmusiq/internal/report"
	"sheetmusiq/internal/tpch"
	"sheetmusiq/internal/uistudy"
)

func main() {
	var (
		table    = flag.Int("table", 0, "regenerate paper table 1-6")
		fig      = flag.Int("fig", 0, "regenerate paper figure 3-5")
		all      = flag.Bool("all", false, "regenerate everything")
		subjects = flag.Int("subjects", 10, "simulated panel size")
		seed     = flag.Int64("seed", uistudy.DefaultConfig().Seed, "simulation seed")
		sweep    = flag.Int("sweep", 0, "robustness sweep: re-run the study N times over fresh panels")
	)
	flag.Parse()
	if *sweep > 0 {
		res, err := uistudy.Sweep(*sweep, *seed, *subjects)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Print(res.String())
		return
	}
	if !*all && *table == 0 && *fig == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*all, *table, *fig, *subjects, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(all bool, table, fig, subjects int, seed int64) error {
	if all || table >= 1 && table <= 5 {
		if err := paperTables(table, all); err != nil {
			return err
		}
	}
	if all || fig != 0 || table == 6 {
		study, err := uistudy.Run(uistudy.Config{
			Subjects: subjects, Seed: seed, Tasks: tpch.Tasks(),
		})
		if err != nil {
			return err
		}
		if all || fig == 3 {
			report.Fig3(os.Stdout, study)
		}
		if all || fig == 4 {
			report.Fig4(os.Stdout, study)
		}
		if all || fig == 5 {
			report.Fig5(os.Stdout, study)
		}
		if all || table == 6 {
			report.TableVI(os.Stdout, study)
		}
		if all {
			report.Analysis(os.Stdout, study)
		}
	}
	return nil
}

// paperTables replays the used-car walkthrough of Secs. I–V.
func paperTables(which int, all bool) error {
	show := func(n int, title string, res *core.Result) {
		if !all && which != n {
			return
		}
		fmt.Printf("== Table %s — %s ==\n%s\n", roman(n), title, res.RenderGrouped())
	}

	base := core.New(dataset.UsedCars())
	res, err := base.Evaluate()
	if err != nil {
		return err
	}
	show(1, "sample used car database", res)

	// Table II: grouped by Model DESC, Year ASC, Condition ASC; Price ASC.
	s := core.New(dataset.UsedCars())
	if err := s.GroupBy(core.Desc, "Model"); err != nil {
		return err
	}
	if err := s.GroupBy(core.Asc, "Year"); err != nil {
		return err
	}
	if err := s.Sort("Price", core.Asc); err != nil {
		return err
	}
	t2 := s.Clone()
	if err := t2.GroupBy(core.Asc, "Condition"); err != nil {
		return err
	}
	if res, err = t2.Evaluate(); err != nil {
		return err
	}
	show(2, "car database after grouping by condition", res)

	// Table III: average price per (Model, Year).
	t3 := s.Clone()
	if _, err := t3.Aggregate(relation.AggAvg, "Price", 3); err != nil {
		return err
	}
	if err := t3.Hide("Condition"); err != nil {
		return err
	}
	if res, err = t3.Evaluate(); err != nil {
		return err
	}
	show(3, "car database with computed column Avg_Price", res)

	// Tables IV and V: Sam's query, then the Year modification.
	t4 := core.New(dataset.UsedCars())
	yearID, err := t4.Select("Year = 2005")
	if err != nil {
		return err
	}
	if _, err := t4.Select("Model = 'Jetta'"); err != nil {
		return err
	}
	if _, err := t4.Select("Mileage < 80000"); err != nil {
		return err
	}
	if err := t4.GroupBy(core.Asc, "Condition"); err != nil {
		return err
	}
	if err := t4.Sort("Price", core.Asc); err != nil {
		return err
	}
	if res, err = t4.Evaluate(); err != nil {
		return err
	}
	show(4, "results before query modification", res)

	if err := t4.ReplaceSelection(yearID, "Year = 2006"); err != nil {
		return err
	}
	if res, err = t4.Evaluate(); err != nil {
		return err
	}
	show(5, "results after query modification", res)
	return nil
}

func roman(n int) string {
	return [...]string{"", "I", "II", "III", "IV", "V", "VI"}[n]
}
