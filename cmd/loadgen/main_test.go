package main

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"sheetmusiq/internal/server"
	"sheetmusiq/internal/wal"
)

// TestRunAgainstServer drives the generator at an in-process durable
// server: every generated op must succeed (the workload is designed to be
// valid at any length) and the results file must merge across labels.
func TestRunAgainstServer(t *testing.T) {
	st, err := wal.NewStore(t.TempDir(), wal.Options{Sync: wal.SyncNone}, 8)
	if err != nil {
		t.Fatal(err)
	}
	m := server.NewManager(server.Config{Durability: st})
	ts := httptest.NewServer(server.NewHandler(m))
	defer ts.Close()

	res, err := run(config{Addr: ts.URL, Sessions: 3, Ops: 25, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("workload produced %d errors", res.Errors)
	}
	if want := 3 * 26; res.TotalOps != want { // demo + 25 steps per session
		t.Fatalf("measured %d ops, want %d", res.TotalOps, want)
	}
	if res.Throughput <= 0 || res.LatencyMS.P50 <= 0 || res.LatencyMS.P99 < res.LatencyMS.P50 {
		t.Fatalf("implausible stats: %+v", res)
	}

	out := filepath.Join(t.TempDir(), "bench.json")
	if err := merge(out, "first", res); err != nil {
		t.Fatal(err)
	}
	if err := merge(out, "second", res); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var entries map[string]result
	if err := json.Unmarshal(raw, &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries["first"].TotalOps != res.TotalOps {
		t.Fatalf("merge lost entries: %v", entries)
	}
	m.Shutdown()
}

// TestWorkloadLength pins the generator's contract: n steps after the demo
// load, for any n.
func TestWorkloadLength(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100} {
		ops := workload(n)
		if len(ops) != n+1 {
			t.Fatalf("workload(%d) has %d ops", n, len(ops))
		}
		if ops[0].Op != "demo" {
			t.Fatalf("workload(%d) does not start with demo", n)
		}
	}
}
