// Command loadgen drives a running sheetserver with a concurrent mixed
// op workload and records latency/throughput into a JSON results file,
// so durability configurations can be compared:
//
//	sheetserver -addr :8080 -data-dir /tmp/sheets &
//	loadgen -addr http://localhost:8080 -sessions 8 -ops 500 \
//	        -label durable-batch -out BENCH_server.json
//
// Each worker owns whole sessions: it creates one, applies the op
// sequence, then takes the next session. The workload cycles through the
// algebra — selections, formulas, aggregates, sorts, grouping, hide — and
// undoes most steps so session state stays bounded no matter how many ops
// run; every op is timed individually. Results merge into the -out file
// keyed by -label (read-modify-write), so successive runs against
// different server configurations accumulate side by side.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"sheetmusiq/internal/engine"
)

// config is one load run.
type config struct {
	Addr     string
	Sessions int
	Ops      int
	Workers  int
}

// result is what lands in the output file under the run's label.
type result struct {
	Sessions   int     `json:"sessions"`
	OpsPerSess int     `json:"ops_per_session"`
	Workers    int     `json:"workers"`
	TotalOps   int     `json:"total_ops"`
	Errors     int     `json:"errors"`
	DurationS  float64 `json:"duration_seconds"`
	Throughput float64 `json:"throughput_ops_per_sec"`
	LatencyMS  latency `json:"latency_ms"`
	RecordedAt string  `json:"recorded_at"`
}

type latency struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
}

// workload returns the deterministic op sequence for one session: a demo
// load followed by n mixed steps. Most mutations are undone right after,
// so the query state stays small and the sequence is valid at any length.
func workload(n int) []engine.Op {
	ops := make([]engine.Op, 0, n+1)
	ops = append(ops, engine.Op{Op: "demo", Table: "cars"})
	for i := 0; len(ops) < n+1; i++ {
		switch i % 6 {
		case 0:
			ops = append(ops,
				engine.Op{Op: "select", Predicate: fmt.Sprintf("Price > %d", 8000+1000*(i%7))},
				engine.Op{Op: "undo"})
		case 1:
			ops = append(ops,
				engine.Op{Op: "formula", Name: fmt.Sprintf("PerMile%d", i), Formula: "Price / Mileage"},
				engine.Op{Op: "undo"})
		case 2:
			ops = append(ops,
				engine.Op{Op: "agg", Fn: "avg", Column: "Price", Level: 1, Name: fmt.Sprintf("Avg%d", i)},
				engine.Op{Op: "undo"})
		case 3:
			ops = append(ops,
				engine.Op{Op: "sort", Column: "Price", Dir: "asc"},
				engine.Op{Op: "undo"})
		case 4:
			ops = append(ops,
				engine.Op{Op: "group", Columns: []string{"Model"}, Dir: "asc"},
				engine.Op{Op: "ungroup"})
		case 5:
			ops = append(ops,
				engine.Op{Op: "hide", Column: "Mileage"},
				engine.Op{Op: "unhide", Column: "Mileage"})
		}
	}
	return ops[:n+1]
}

// run executes the load and aggregates the measurements.
func run(cfg config) (result, error) {
	hc := &http.Client{Timeout: 30 * time.Second}
	var (
		mu      sync.Mutex
		samples []time.Duration
		errs    int
	)
	ops := workload(cfg.Ops)

	post := func(path string, body, out any) error {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		resp, err := hc.Post(cfg.Addr+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		if resp.StatusCode >= 300 {
			return fmt.Errorf("%s: status %d: %s", path, resp.StatusCode, raw)
		}
		if out != nil {
			return json.Unmarshal(raw, out)
		}
		return nil
	}

	// Each worker drives whole sessions off a shared counter.
	next := make(chan int)
	go func() {
		for i := 0; i < cfg.Sessions; i++ {
			next <- i
		}
		close(next)
	}()
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			local := make([]time.Duration, 0, cfg.Ops+1)
			localErrs := 0
			for i := range next {
				var created struct {
					ID string `json:"id"`
				}
				if err := post("/v1/sessions",
					map[string]string{"name": fmt.Sprintf("loadgen-%d", i)}, &created); err != nil {
					localErrs++
					continue
				}
				for _, op := range ops {
					t0 := time.Now()
					err := post("/v1/sessions/"+created.ID+"/op", op, nil)
					local = append(local, time.Since(t0))
					if err != nil {
						localErrs++
					}
				}
			}
			mu.Lock()
			samples = append(samples, local...)
			errs += localErrs
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if len(samples) == 0 {
		return result{}, fmt.Errorf("no ops completed (%d errors)", errs)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	pct := func(q float64) float64 {
		idx := int(q * float64(len(samples)))
		if idx >= len(samples) {
			idx = len(samples) - 1
		}
		return float64(samples[idx].Microseconds()) / 1000
	}
	var total time.Duration
	for _, d := range samples {
		total += d
	}
	return result{
		Sessions:   cfg.Sessions,
		OpsPerSess: cfg.Ops,
		Workers:    cfg.Workers,
		TotalOps:   len(samples),
		Errors:     errs,
		DurationS:  elapsed.Seconds(),
		Throughput: float64(len(samples)) / elapsed.Seconds(),
		LatencyMS: latency{
			P50:  pct(0.50),
			P90:  pct(0.90),
			P99:  pct(0.99),
			Max:  float64(samples[len(samples)-1].Microseconds()) / 1000,
			Mean: float64((total / time.Duration(len(samples))).Microseconds()) / 1000,
		},
		RecordedAt: time.Now().UTC().Format(time.RFC3339),
	}, nil
}

// merge folds the result into the output file under label, preserving
// other labels already recorded there.
func merge(path, label string, res result) error {
	entries := map[string]json.RawMessage{}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &entries); err != nil {
			return fmt.Errorf("existing %s is not a JSON object: %w", path, err)
		}
	}
	raw, err := json.Marshal(res)
	if err != nil {
		return err
	}
	entries[label] = raw
	out, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "server base URL")
	sessions := flag.Int("sessions", 8, "number of sessions to drive")
	opsN := flag.Int("ops", 200, "algebra ops per session")
	workers := flag.Int("workers", 8, "concurrent workers (each owns whole sessions)")
	label := flag.String("label", "run", "result key in the output file")
	out := flag.String("out", "BENCH_server.json", "results file to merge into (empty = stdout only)")
	flag.Parse()

	res, err := run(config{Addr: *addr, Sessions: *sessions, Ops: *opsN, Workers: *workers})
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d ops in %.2fs — %.0f ops/s, p50 %.2fms p90 %.2fms p99 %.2fms, %d errors\n",
		*label, res.TotalOps, res.DurationS, res.Throughput,
		res.LatencyMS.P50, res.LatencyMS.P90, res.LatencyMS.P99, res.Errors)
	if *out != "" {
		if err := merge(*out, *label, res); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
	}
}
