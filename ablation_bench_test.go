// Ablation benchmarks for the design choices DESIGN.md calls out: query
// modification through the query state vs. naive replay, the hash-join fast
// path vs. nested loops, and the cost of direct manipulation's
// evaluate-after-every-step discipline.
package sheetmusiq

import (
	"fmt"
	"testing"

	"sheetmusiq/internal/core"
	"sheetmusiq/internal/dataset"
	"sheetmusiq/internal/relation"
	"sheetmusiq/internal/sql"
	"sheetmusiq/internal/tpch"
)

// buildSamQuery applies Sam's Sec. V query to a sheet over n synthetic cars.
func buildSamQuery(b *testing.B, base *relation.Relation, yearPred string) (*core.Spreadsheet, int) {
	b.Helper()
	s := core.New(base)
	yearID, err := s.Select(yearPred)
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range []string{"Model = 'Jetta'", "Mileage < 80000"} {
		if _, err := s.Select(p); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.GroupBy(core.Asc, "Condition"); err != nil {
		b.Fatal(err)
	}
	if err := s.Sort("Price", core.Asc); err != nil {
		b.Fatal(err)
	}
	if _, err := s.AggregateAs("AvgP", relation.AggAvg, "Price", 2); err != nil {
		b.Fatal(err)
	}
	return s, yearID
}

// BenchmarkAblationModifyViaState measures Theorem 3's payoff: one
// ReplaceSelection plus re-evaluation.
func BenchmarkAblationModifyViaState(b *testing.B) {
	base := dataset.RandomCars(5000, 7)
	s, yearID := buildSamQuery(b, base, "Year = 2005")
	years := []string{"Year = 2006", "Year = 2005"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.ReplaceSelection(yearID, years[i%2]); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Evaluate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationModifyViaReplay is the naive alternative the paper
// rejects: rebuild the whole program from scratch, re-specifying every
// operator, then evaluate.
func BenchmarkAblationModifyViaReplay(b *testing.B) {
	base := dataset.RandomCars(5000, 7)
	years := []string{"Year = 2006", "Year = 2005"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, _ := buildSamQuery(b, base, years[i%2])
		if _, err := s.Evaluate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationJoinHash exercises the SQL engine's equality fast path.
func BenchmarkAblationJoinHash(b *testing.B) {
	benchJoin(b, "SELECT c.ID, d.ID FROM cars c JOIN cars2 d ON c.ID = d.ID")
}

// BenchmarkAblationJoinNestedLoop forces the quadratic path with a
// condition the key extractor cannot use. The gap against the hash variant
// quantifies why the extractor exists.
func BenchmarkAblationJoinNestedLoop(b *testing.B) {
	benchJoin(b, "SELECT c.ID, d.ID FROM cars c JOIN cars2 d ON (c.ID = d.ID OR c.ID < 0)")
}

func benchJoin(b *testing.B, query string) {
	b.Helper()
	db := sql.NewDB()
	left := dataset.RandomCars(1000, 1)
	right := dataset.RandomCars(1000, 2)
	right.Name = "cars2"
	db.Register(left)
	db.Register(right)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(query); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationEvaluatePerStep measures the direct-manipulation
// discipline: the sheet re-evaluates after every one of the six operators
// (what an interactive session pays), against evaluating once at the end.
func BenchmarkAblationEvaluatePerStep(b *testing.B) {
	for _, mode := range []string{"after-every-step", "once-at-end"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			base := dataset.RandomCars(5000, 7)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := core.New(base)
				step := func(err error) {
					if err != nil {
						b.Fatal(err)
					}
					if mode == "after-every-step" {
						if _, err := s.Evaluate(); err != nil {
							b.Fatal(err)
						}
					}
				}
				_, err := s.Select("Year >= 2003")
				step(err)
				step(s.GroupBy(core.Asc, "Model"))
				step(s.Sort("Price", core.Asc))
				_, err = s.AggregateAs("AvgP", relation.AggAvg, "Price", 2)
				step(err)
				_, err = s.Formula("Delta", "Price - AvgP")
				step(err)
				_, err = s.Select("Delta < 0")
				step(err)
				if mode == "once-at-end" {
					if _, err := s.Evaluate(); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkAblationAggregateBucketing compares N aggregates sharing one
// grouping basis (one pass per Evaluate) against N aggregates over N
// distinct bases (N passes) — the cost model behind storing aggregates as
// repeated computed columns.
func BenchmarkAblationAggregateBucketing(b *testing.B) {
	funcs := []relation.AggFunc{relation.AggAvg, relation.AggSum, relation.AggMin, relation.AggMax}
	b.Run("shared-basis", func(b *testing.B) {
		base := dataset.RandomCars(5000, 7)
		s := core.New(base)
		if err := s.GroupBy(core.Asc, "Model"); err != nil {
			b.Fatal(err)
		}
		for i, fn := range funcs {
			if _, err := s.AggregateAs(fmt.Sprintf("A%d", i), fn, "Price", 2); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Evaluate(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("distinct-bases", func(b *testing.B) {
		base := dataset.RandomCars(5000, 7)
		s := core.New(base)
		for _, col := range []string{"Model", "Year", "Condition"} {
			if err := s.GroupBy(core.Asc, col); err != nil {
				b.Fatal(err)
			}
		}
		for i, fn := range funcs {
			if _, err := s.AggregateAs(fmt.Sprintf("A%d", i), fn, "Price", 1+i%4); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.Evaluate(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationSubqueryCache quantifies the correlated-subquery
// memoisation: the Q17-style query re-executes its inner aggregate once per
// distinct part rather than once per outer row.
func BenchmarkAblationSubqueryCache(b *testing.B) {
	base := dataset.RandomCars(3000, 3)
	db := sql.NewDB()
	db.Register(base)
	const q = "SELECT c.ID FROM cars c WHERE c.Price < " +
		"(SELECT AVG(b.Price) FROM cars b WHERE b.Model = c.Model)"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPushdown measures predicate pushdown on a three-way
// join with selective single-source filters.
func BenchmarkAblationPushdown(b *testing.B) {
	tables := tpch.Generate(tpch.Config{ScaleFactor: 0.002, Seed: 5})
	const q = "SELECT c_name, SUM(l_extendedprice) AS rev FROM customer " +
		"JOIN orders ON c_custkey = o_custkey JOIN lineitem ON o_orderkey = l_orderkey " +
		"WHERE c_mktsegment = 'BUILDING' AND o_orderdate < DATE '1994-01-01' " +
		"GROUP BY c_name ORDER BY c_name"
	for _, mode := range []string{"on", "off"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			db := tpch.BuildDB(tables)
			db.DisablePushdown = mode == "off"
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
