// Instrumentation-overhead benchmarks: the same eval-pipeline workloads
// as the operator benchmarks, run once with the obs registry recording
// (the default) and once with recording disabled. Comparing the
// bare/instrumented pairs in BENCH_eval.json prices the observability
// layer itself; the budget is <5% on every workload.
package sheetmusiq

import (
	"testing"

	"sheetmusiq/internal/core"
	"sheetmusiq/internal/obs"
	"sheetmusiq/internal/relation"
)

// obsWorkloads are the eval-pipeline shapes that cross every instrumented
// layer: predicate compile + chunked filter, compiled formula fill, and
// grouped aggregation (including the chunk merge path).
var obsWorkloads = []struct {
	name string
	run  func(b *testing.B, base *core.Spreadsheet)
}{
	{"Selection10k", func(b *testing.B, base *core.Spreadsheet) {
		s := base.Clone()
		if _, err := s.Select("Price < 20000 AND Condition IN ('Good','Excellent')"); err != nil {
			b.Fatal(err)
		}
		evaluate(b, s)
	}},
	{"Formula10k", func(b *testing.B, base *core.Spreadsheet) {
		s := base.Clone()
		if _, err := s.Formula("PerMile", "Price * 1000 / (Mileage + 1)"); err != nil {
			b.Fatal(err)
		}
		evaluate(b, s)
	}},
	{"GroupAggregate10k", func(b *testing.B, base *core.Spreadsheet) {
		s := base.Clone()
		if err := s.GroupBy(core.Asc, "Model"); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Aggregate(relation.AggAvg, "Price", 2); err != nil {
			b.Fatal(err)
		}
		evaluate(b, s)
	}},
}

// BenchmarkInstrumentedEval runs each workload under bare (recording off)
// and instrumented (recording on) modes. The instrumentation contract —
// per-stage and per-op recording only, never per-row — holds when the
// instrumented/bare ratio stays under 1.05.
func BenchmarkInstrumentedEval(b *testing.B) {
	wasEnabled := obs.Enabled()
	defer obs.SetEnabled(wasEnabled)

	for _, mode := range []struct {
		name    string
		enabled bool
	}{{"bare", false}, {"instrumented", true}} {
		b.Run(mode.name, func(b *testing.B) {
			obs.SetEnabled(mode.enabled)
			for _, w := range obsWorkloads {
				b.Run(w.name, func(b *testing.B) {
					base := scaleSheet(b, 10000)
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						w.run(b, base)
					}
				})
			}
		})
	}
}
