package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, name string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestMean(t *testing.T) {
	approx(t, Mean([]float64{1, 2, 3, 4}), 2.5, 1e-12, "mean")
	if !math.IsNaN(Mean(nil)) {
		t.Error("mean of empty input should be NaN")
	}
}

func TestStdDev(t *testing.T) {
	// Sample stddev of {2,4,4,4,5,5,7,9} is sqrt(32/7).
	approx(t, StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}), math.Sqrt(32.0/7), 1e-12, "stddev")
	if StdDev([]float64{5}) != 0 {
		t.Error("stddev of a single observation should be 0")
	}
}

func TestMannWhitneyKnownCase(t *testing.T) {
	// Classic worked example: clearly separated samples.
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{10, 11, 12, 13, 14}
	r, err := MannWhitney(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.U != 0 {
		t.Errorf("U = %v, want 0 for perfectly separated samples", r.U)
	}
	if r.P > 0.02 {
		t.Errorf("p = %v, want strong significance", r.P)
	}
}

func TestMannWhitneyIdenticalSamples(t *testing.T) {
	a := []float64{5, 5, 5}
	r, err := MannWhitney(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if r.P != 1 {
		t.Errorf("identical samples p = %v, want 1", r.P)
	}
}

func TestMannWhitneySymmetric(t *testing.T) {
	a := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	b := []float64{2, 7, 1, 8, 2, 8, 1, 8}
	r1, err := MannWhitney(a, b)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := MannWhitney(b, a)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, r1.P, r2.P, 1e-12, "p symmetry")
	approx(t, r1.U, r2.U, 1e-12, "U symmetry")
}

func TestMannWhitneyAgainstReference(t *testing.T) {
	// Values cross-checked with scipy.stats.mannwhitneyu
	// (two-sided, continuity correction, normal approximation).
	a := []float64{540, 480, 600, 590, 605}
	b := []float64{760, 890, 865, 770, 800}
	r, err := MannWhitney(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.U != 0 {
		t.Errorf("U = %v, want 0", r.U)
	}
	approx(t, r.P, 0.01193, 5e-4, "p vs scipy")
}

func TestMannWhitneyErrors(t *testing.T) {
	if _, err := MannWhitney(nil, []float64{1}); err == nil {
		t.Error("empty sample must error")
	}
}

// Property: p is in [0, 1] and adding a constant shift to one group only
// decreases the p-value when the groups were identical.
func TestQuickMannWhitneyBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		r, err := MannWhitney(a, b)
		if err != nil {
			return false
		}
		return r.P >= 0 && r.P <= 1 && r.U >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFisherExactKnownCases(t *testing.T) {
	// Tea-tasting: [[3,1],[1,3]] → p = 0.4857...
	p, err := FisherExact(3, 1, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, p, 0.485714285714, 1e-9, "tea tasting")

	// Strong association: [[10,0],[0,10]] → p = 2/C(20,10) ≈ 1.0825e-5.
	p, _ = FisherExact(10, 0, 0, 10)
	approx(t, p, 2/184756.0, 1e-12, "perfect split")

	// No association at all.
	p, _ = FisherExact(5, 5, 5, 5)
	if p < 0.99 {
		t.Errorf("balanced table p = %v, want ~1", p)
	}
}

func TestFisherExactPaperNumbers(t *testing.T) {
	// The paper's correctness totals: SheetMusiq 95/100 vs Navicat 81/100,
	// reported significant with p < 0.004.
	p, err := FisherExact(95, 5, 81, 19)
	if err != nil {
		t.Fatal(err)
	}
	if p >= 0.004 {
		t.Errorf("p = %v, paper reports < 0.004", p)
	}
	if p < 0.0001 {
		t.Errorf("p = %v suspiciously small for these counts", p)
	}
}

func TestFisherExactErrors(t *testing.T) {
	if _, err := FisherExact(-1, 0, 0, 0); err == nil {
		t.Error("negative counts must error")
	}
	if _, err := FisherExact(0, 0, 0, 0); err == nil {
		t.Error("empty table must error")
	}
}

// Property: Fisher p is within [0,1] and symmetric under row swap.
func TestQuickFisherBoundsAndSymmetry(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		x := int(a % 30)
		y := int(b % 30)
		z := int(c % 30)
		w := int(d % 30)
		if x+y+z+w == 0 {
			return true
		}
		p1, err := FisherExact(x, y, z, w)
		if err != nil {
			return false
		}
		p2, err := FisherExact(z, w, x, y)
		if err != nil {
			return false
		}
		return p1 >= 0 && p1 <= 1 && math.Abs(p1-p2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNormalCDF(t *testing.T) {
	approx(t, normalCDF(0), 0.5, 1e-12, "Φ(0)")
	approx(t, normalCDF(1.96), 0.975, 1e-3, "Φ(1.96)")
	approx(t, normalCDF(-1.96), 0.025, 1e-3, "Φ(-1.96)")
}
