// Package stats implements the descriptive and inferential statistics the
// paper's evaluation uses: per-query means and standard deviations
// (Figs. 3–4), the Mann-Whitney U test for the speed comparison
// ("p-value < 0.002 for all queries except query 5, 7, and 10", Sec. VII-A2)
// and Fisher's exact test for the correctness totals ("p value < 0.004",
// Sec. VII-A3).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean; NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (n−1 denominator); 0 for
// fewer than two observations.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// MannWhitneyResult reports the two-sided Mann-Whitney U test.
type MannWhitneyResult struct {
	U float64 // the smaller of U1, U2
	Z float64 // normal approximation with tie correction
	P float64 // two-sided p-value
}

// MannWhitney runs the two-sided Mann-Whitney U test (a.k.a. Wilcoxon
// rank-sum) on two independent samples, using the normal approximation with
// tie correction and continuity correction — appropriate for the paper's
// n = 10 per group.
func MannWhitney(a, b []float64) (MannWhitneyResult, error) {
	n1, n2 := len(a), len(b)
	if n1 == 0 || n2 == 0 {
		return MannWhitneyResult{}, fmt.Errorf("stats: MannWhitney needs non-empty samples")
	}
	type obs struct {
		v     float64
		group int
	}
	all := make([]obs, 0, n1+n2)
	for _, v := range a {
		all = append(all, obs{v, 0})
	}
	for _, v := range b {
		all = append(all, obs{v, 1})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Midranks with tie bookkeeping.
	ranks := make([]float64, len(all))
	tieTerm := 0.0
	for i := 0; i < len(all); {
		j := i + 1
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		r := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = r
		}
		t := float64(j - i)
		tieTerm += t*t*t - t
		i = j
	}
	r1 := 0.0
	for i, o := range all {
		if o.group == 0 {
			r1 += ranks[i]
		}
	}
	fn1, fn2 := float64(n1), float64(n2)
	u1 := r1 - fn1*(fn1+1)/2
	u2 := fn1*fn2 - u1
	u := math.Min(u1, u2)

	mu := fn1 * fn2 / 2
	n := fn1 + fn2
	sigma2 := fn1 * fn2 / 12 * ((n + 1) - tieTerm/(n*(n-1)))
	if sigma2 <= 0 {
		// All observations identical: no evidence of difference.
		return MannWhitneyResult{U: u, Z: 0, P: 1}, nil
	}
	sigma := math.Sqrt(sigma2)
	z := (math.Abs(u-mu) - 0.5) / sigma // continuity correction
	if z < 0 {
		z = 0
	}
	p := 2 * (1 - normalCDF(z))
	if p > 1 {
		p = 1
	}
	return MannWhitneyResult{U: u, Z: z, P: p}, nil
}

// normalCDF is Φ(x) for the standard normal distribution.
func normalCDF(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}

// FisherExact runs the two-sided Fisher exact test on the 2×2 table
//
//	[ a b ]
//	[ c d ]
//
// summing the probabilities of all tables with the same margins that are no
// more probable than the observed one.
func FisherExact(a, b, c, d int) (float64, error) {
	if a < 0 || b < 0 || c < 0 || d < 0 {
		return 0, fmt.Errorf("stats: FisherExact needs non-negative counts")
	}
	r1 := a + b
	r2 := c + d
	c1 := a + c
	n := a + b + c + d
	if n == 0 {
		return 0, fmt.Errorf("stats: FisherExact needs a non-empty table")
	}
	// Hypergeometric probability of a table with top-left cell x.
	prob := func(x int) float64 {
		return math.Exp(lnChoose(r1, x) + lnChoose(r2, c1-x) - lnChoose(n, c1))
	}
	pObs := prob(a)
	lo := c1 - r2
	if lo < 0 {
		lo = 0
	}
	hi := c1
	if hi > r1 {
		hi = r1
	}
	const eps = 1e-9
	p := 0.0
	for x := lo; x <= hi; x++ {
		if px := prob(x); px <= pObs*(1+eps) {
			p += px
		}
	}
	if p > 1 {
		p = 1
	}
	return p, nil
}

// lnChoose returns ln C(n, k), and -Inf outside the valid range.
func lnChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	lg, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return lg - lk - lnk
}
