package stats_test

import (
	"fmt"
	"log"

	"sheetmusiq/internal/stats"
)

// Example applies the paper's two significance tests: Mann-Whitney on the
// per-query time samples, Fisher's exact test on the correctness totals.
func Example() {
	sheetMusiq := []float64{92, 105, 88, 131, 99, 120, 84, 101, 95, 110}
	navicat := []float64{260, 310, 195, 280, 240, 330, 205, 290, 250, 300}
	mw, err := stats.MannWhitney(sheetMusiq, navicat)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Mann-Whitney U = %.0f, significant at 0.002: %v\n", mw.U, mw.P < 0.002)

	// The paper's Fig. 5 totals: 95/100 vs 81/100 correct.
	p, err := stats.FisherExact(95, 5, 81, 19)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fisher exact p < 0.004: %v\n", p < 0.004)
	// Output:
	// Mann-Whitney U = 0, significant at 0.002: true
	// Fisher exact p < 0.004: true
}
