package relation

import (
	"math/rand"
	"sort"
	"testing"

	"sheetmusiq/internal/value"
)

// genRows builds random tuples over (int, float, string) columns with small
// value ranges, so duplicate keys and cross-kind numeric coincidences (int 3
// in one row, float 3.0 in another) occur constantly.
func genRows(rng *rand.Rand, n int) []Tuple {
	rows := make([]Tuple, n)
	for i := range rows {
		var a value.Value
		switch rng.Intn(4) {
		case 0:
			a = value.NewInt(int64(rng.Intn(6)))
		case 1:
			a = value.NewFloat(float64(rng.Intn(6)))
		case 2:
			a = value.Null
		default:
			a = value.NewString(string(rune('a' + rng.Intn(4))))
		}
		rows[i] = Tuple{a, value.NewInt(int64(rng.Intn(4))), value.NewFloat(rng.Float64() * 3)}
	}
	return rows
}

func genSchema() Schema {
	return Schema{
		{Name: "a", Kind: value.KindString},
		{Name: "b", Kind: value.KindInt},
		{Name: "c", Kind: value.KindFloat},
	}
}

// refGroupIDs is the string-key reference grouping: dense IDs in
// first-occurrence order via Tuple.KeyOn, the retired implementation.
func refGroupIDs(rows []Tuple, cols []int) ([]int32, []int32) {
	ids := make([]int32, len(rows))
	var first []int32
	pos := map[string]int32{}
	for i, t := range rows {
		k := t.KeyOn(cols)
		g, ok := pos[k]
		if !ok {
			g = int32(len(first))
			pos[k] = g
			first = append(first, int32(i))
		}
		ids[i] = g
	}
	return ids, first
}

func eqInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestGroupRowsOnMatchesStringKeys: the hash grouping must reproduce the
// string-key grouping exactly — same dense IDs, same first-occurrence
// order — for values where the two equality notions agree (the generator
// avoids -0, whose string key diverged from Compare; see DESIGN.md §9).
func TestGroupRowsOnMatchesStringKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		rows := genRows(rng, 1+rng.Intn(400))
		for _, cols := range [][]int{{0}, {0, 1}, {1, 2}, nil} {
			gr := GroupRowsOn(rows, cols)
			refCols := cols
			if refCols == nil {
				refCols = []int{0, 1, 2}
			}
			wantIDs, wantFirst := refGroupIDs(rows, refCols)
			if !eqInt32(gr.IDs, wantIDs) || !eqInt32(gr.First, wantFirst) {
				t.Fatalf("cols %v: grouper IDs/First diverge from string-key reference", cols)
			}
		}
	}
}

// TestGroupRowsOnParallelMatchesSequential: the chunked build with ordered
// merge must be bit-identical to the single-chunk build.
func TestGroupRowsOnParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	rows := genRows(rng, 5000)
	old := ParallelThreshold
	ParallelThreshold = 1 << 30
	seq := GroupRowsOn(rows, []int{0, 1})
	ParallelThreshold = old
	forceParallel(t)
	par := GroupRowsOn(rows, []int{0, 1})
	if !eqInt32(seq.IDs, par.IDs) || !eqInt32(seq.First, par.First) {
		t.Fatalf("parallel grouping diverges from sequential")
	}
}

// TestGrouperFindOnCrossLayout: FindOn with probe-side columns must locate
// groups built from build-side columns (the hash-join probe).
func TestGrouperFindOnCrossLayout(t *testing.T) {
	g := NewGrouper([]int{1}, 4)
	b1, _ := g.Add(Tuple{value.NewString("x"), value.NewInt(7)})
	b2, _ := g.Add(Tuple{value.NewString("y"), value.NewInt(8)})
	if got := g.FindOn(Tuple{value.NewFloat(7), value.NewString("z")}, []int{0}); got != b1 {
		t.Fatalf("FindOn(float 7) = %d, want %d (int/float coincidence)", got, b1)
	}
	if got := g.FindOn(Tuple{value.NewInt(8), value.Null}, []int{0}); got != b2 {
		t.Fatalf("FindOn(8) = %d, want %d", got, b2)
	}
	if got := g.FindOn(Tuple{value.NewInt(9)}, []int{0}); got != -1 {
		t.Fatalf("FindOn(9) = %d, want -1", got)
	}
}

// relEqual compares two relations row by row under bit-identity (kind and
// payload via MustCompare==0 plus same kind).
func relEqual(a, b *Relation) bool {
	if len(a.Rows) != len(b.Rows) || len(a.Schema) != len(b.Schema) {
		return false
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			x, y := a.Rows[i][j], b.Rows[i][j]
			if x.Kind() != y.Kind() || !value.Equal(x, y) {
				return false
			}
		}
	}
	return true
}

func makeRel(name string, rows []Tuple) *Relation {
	r := New(name, genSchema())
	r.Rows = rows
	return r
}

// TestHashJoinMatchesThetaJoin: for a predicate carrying an equality
// conjunct plus a residual theta condition, the hash kernel must produce
// exactly the product-filter result — same rows, same order — on both the
// build-left and build-right side choices.
func TestHashJoinMatchesThetaJoin(t *testing.T) {
	forceParallel(t)
	rng := rand.New(rand.NewSource(17))
	on := func(tp Tuple) (bool, error) {
		// r.b = s.b AND r.c < s.c over the product layout (r: 0..2, s: 3..5).
		if !value.Equal(tp[1], tp[4]) || tp[1].IsNull() || tp[4].IsNull() {
			return false, nil
		}
		return value.MustCompare(tp[2], tp[5]) < 0, nil
	}
	for trial := 0; trial < 30; trial++ {
		left := makeRel("l", genRows(rng, rng.Intn(120)))
		right := makeRel("r", genRows(rng, rng.Intn(240)))
		want, err := left.Join(right, on)
		if err != nil {
			t.Fatal(err)
		}
		got, err := left.HashJoin(right, []int{1}, []int{1}, on)
		if err != nil {
			t.Fatal(err)
		}
		if !relEqual(want, got) {
			t.Fatalf("trial %d: hash join (%d rows) != theta join (%d rows)", trial, got.Len(), want.Len())
		}
		if !got.Schema.Equal(want.Schema) {
			t.Fatalf("trial %d: schema mismatch", trial)
		}
	}
}

// TestHashJoinErrorParity: an error raised by the predicate on a candidate
// pair surfaces from the hash path exactly as from the product path.
func TestHashJoinErrorParity(t *testing.T) {
	forceParallel(t)
	rng := rand.New(rand.NewSource(19))
	left := makeRel("l", genRows(rng, 300))
	right := makeRel("r", genRows(rng, 300))
	boom := func(tp Tuple) (bool, error) {
		if value.Equal(tp[1], tp[4]) {
			return false, errBoom{}
		}
		return false, nil
	}
	_, errTheta := left.Join(right, boom)
	_, errHash := left.HashJoin(right, []int{1}, []int{1}, boom)
	if errTheta == nil || errHash == nil {
		t.Fatalf("expected both paths to error (theta %v, hash %v)", errTheta, errHash)
	}
}

type errBoom struct{}

func (errBoom) Error() string { return "boom" }

// TestSortMatchesSliceStableReference: the keyed merge sort must reproduce
// the stable closure sort bit-identically, sequentially and in parallel.
func TestSortMatchesSliceStableReference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	keys := []SortKey{{Column: "b"}, {Column: "c", Desc: true}}
	for trial := 0; trial < 20; trial++ {
		rows := genRows(rng, 1+rng.Intn(3000))
		want := makeRel("w", rows).Clone()
		idx := []int{1, 2}
		sort.SliceStable(want.Rows, func(a, b int) bool {
			for ki, j := range idx {
				c := value.MustCompare(want.Rows[a][j], want.Rows[b][j])
				if c == 0 {
					continue
				}
				if keys[ki].Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		got := makeRel("g", rows).Clone()
		if err := got.Sort(keys); err != nil {
			t.Fatal(err)
		}
		if !relEqual(want, got) {
			t.Fatalf("trial %d: keyed sort diverges from SliceStable reference", trial)
		}
	}
}

func TestSortParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	rows := genRows(rng, 6000)
	keys := []SortKey{{Column: "a"}, {Column: "b", Desc: true}, {Column: "c"}}
	old := ParallelThreshold
	ParallelThreshold = 1 << 30
	seq := makeRel("s", rows).Clone()
	err1 := seq.Sort(keys)
	ParallelThreshold = old
	forceParallel(t)
	par := makeRel("p", rows).Clone()
	err2 := par.Sort(keys)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !relEqual(seq, par) {
		t.Fatalf("parallel sort diverges from sequential")
	}
}

// TestSortStability: rows with equal keys must keep their original order; a
// payload column tags the original positions.
func TestSortStability(t *testing.T) {
	forceParallel(t)
	r := New("t", genSchema())
	for i := 0; i < 4000; i++ {
		r.MustAppend(value.NewString("k"), value.NewInt(int64(i%3)), value.NewFloat(float64(i)))
	}
	if err := r.Sort([]SortKey{{Column: "b"}}); err != nil {
		t.Fatal(err)
	}
	last := map[int64]float64{0: -1, 1: -1, 2: -1}
	for _, row := range r.Rows {
		b, c := row[1].Int(), row[2].Float()
		if c <= last[b] {
			t.Fatalf("stability violated within key %d: %v after %v", b, c, last[b])
		}
		last[b] = c
	}
}

// TestSortedCloneColumnarMatchesRowSort: above the columnar threshold
// SortedClone builds its copy column-wise through SortPermCols; the result
// must match the row-path sort bit for bit (the "a" column is mixed-kind and
// stays boxed, covering the boxed comparator arm), stay stable, and leave
// the receiver untouched.
func TestSortedCloneColumnarMatchesRowSort(t *testing.T) {
	forceParallel(t)
	rng := rand.New(rand.NewSource(31))
	keys := []SortKey{{Column: "b"}, {Column: "a", Desc: true}}
	for _, n := range []int{ColumnarThreshold, 3000} {
		rows := genRows(rng, n)
		want := makeRel("w", rows).Clone()
		if err := want.Sort(keys); err != nil {
			t.Fatal(err)
		}
		src := makeRel("g", rows)
		before := src.Rows[0]
		got, err := src.SortedClone(keys)
		if err != nil {
			t.Fatal(err)
		}
		got.TupleRows() // materialize Rows for relEqual
		if !relEqual(want, got) {
			t.Fatalf("n=%d: columnar SortedClone diverges from row sort", n)
		}
		// Sort with cached columns takes the SortPermCols permutation path.
		cached := makeRel("c", rows)
		cached.Columns()
		if err := cached.Sort(keys); err != nil {
			t.Fatal(err)
		}
		if !relEqual(want, cached) {
			t.Fatalf("n=%d: cached-columns Sort diverges from row sort", n)
		}
		if &src.Rows[0][0] != &before[0] {
			t.Fatalf("n=%d: SortedClone mutated the receiver", n)
		}
		// Stability: within equal (b, a) keys the payload column c must keep
		// the original relative order genRows produced.
		srcPos := map[float64]int{}
		for i, row := range rows {
			srcPos[row[2].Float()] = i
		}
		for i := 1; i < n; i++ {
			x, y := got.Rows[i-1], got.Rows[i]
			if value.Equal(x[1], y[1]) && x[0].Kind() == y[0].Kind() && value.Equal(x[0], y[0]) {
				if srcPos[x[2].Float()] > srcPos[y[2].Float()] {
					t.Fatalf("n=%d: stability violated at sorted row %d", n, i)
				}
			}
		}
	}
}

// TestDistinctMatchesStringKeyReference: Distinct/DistinctOn keep exactly
// the first occurrence of each key, like the retired string-key scan.
func TestDistinctMatchesStringKeyReference(t *testing.T) {
	forceParallel(t)
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		r := makeRel("d", genRows(rng, 1+rng.Intn(500)))
		_, first := refGroupIDs(r.Rows, []int{0, 1, 2})
		want := New(r.Name, r.Schema)
		for _, ri := range first {
			want.Rows = append(want.Rows, r.Rows[ri])
		}
		if got := r.Distinct(); !relEqual(want, got) {
			t.Fatalf("trial %d: Distinct diverges from string-key reference", trial)
		}
		_, firstOn := refGroupIDs(r.Rows, []int{1})
		wantOn := New(r.Name, r.Schema)
		for _, ri := range firstOn {
			wantOn.Rows = append(wantOn.Rows, r.Rows[ri])
		}
		if got := r.DistinctOn([]int{1}); !relEqual(wantOn, got) {
			t.Fatalf("trial %d: DistinctOn diverges from string-key reference", trial)
		}
	}
}

// TestGroupRowsOnNoPerRowAllocs pins the headline win: grouping 10k rows
// performs a bounded number of allocations (table, ID arrays, growth
// doublings) — not one string per row. The string-key path allocated ≥1
// per row (30k+ here).
func TestGroupRowsOnNoPerRowAllocs(t *testing.T) {
	old := ParallelThreshold
	ParallelThreshold = 1 << 30 // sequential: goroutine machinery allocates
	defer func() { ParallelThreshold = old }()
	rng := rand.New(rand.NewSource(37))
	rows := genRows(rng, 10000)
	cols := []int{0, 1}
	allocs := testing.AllocsPerRun(5, func() {
		GroupRowsOn(rows, cols)
	})
	if allocs > 100 {
		t.Fatalf("GroupRowsOn allocates %.0f times for 10k rows; per-row allocation regressed", allocs)
	}
}

// TestAggregateBoundedAllocs: the full Aggregate pipeline over 10k rows
// must allocate proportionally to groups, not rows.
func TestAggregateBoundedAllocs(t *testing.T) {
	old := ParallelThreshold
	ParallelThreshold = 1 << 30
	defer func() { ParallelThreshold = old }()
	rng := rand.New(rand.NewSource(41))
	r := makeRel("agg", genRows(rng, 10000))
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := r.Aggregate([]string{"a", "b"}, AggAvg, "c"); err != nil {
			t.Fatal(err)
		}
	})
	// ~48 distinct (a, b) groups; row-index lists and group rows dominate.
	if allocs > 2000 {
		t.Fatalf("Aggregate allocates %.0f times for 10k rows; per-row allocation regressed", allocs)
	}
}

// TestDistinctBoundedAllocs: Distinct over 10k rows with few distinct keys
// allocates per group, not per row.
func TestDistinctBoundedAllocs(t *testing.T) {
	old := ParallelThreshold
	ParallelThreshold = 1 << 30
	defer func() { ParallelThreshold = old }()
	rng := rand.New(rand.NewSource(43))
	r := makeRel("dst", genRows(rng, 10000))
	r2 := r.DistinctOn([]int{0, 1})
	allocs := testing.AllocsPerRun(5, func() {
		r.DistinctOn([]int{0, 1})
	})
	if allocs > 100 {
		t.Fatalf("DistinctOn allocates %.0f times for 10k rows (kept %d); per-row allocation regressed", allocs, r2.Len())
	}
}

// TestDifferenceMatchesMultisetSemantics: the grouper-backed difference
// keeps multiset multiplicities: {t,t} − {t} = {t}.
func TestDifferenceMatchesMultisetSemantics(t *testing.T) {
	r := New("r", genSchema())
	r.MustAppend(value.NewString("x"), value.NewInt(1), value.NewFloat(1))
	r.MustAppend(value.NewString("x"), value.NewInt(1), value.NewFloat(1))
	r.MustAppend(value.NewString("y"), value.NewInt(2), value.NewFloat(2))
	s := New("s", genSchema())
	s.MustAppend(value.NewString("x"), value.NewInt(1), value.NewFloat(1))
	s.MustAppend(value.NewString("z"), value.NewInt(3), value.NewFloat(3))
	d, err := r.Difference(s)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Fatalf("difference kept %d rows, want 2", d.Len())
	}
	if d.Rows[0][0].Str() != "x" || d.Rows[1][0].Str() != "y" {
		t.Fatalf("difference rows wrong: %v", d.Rows)
	}
}

// TestCountDistinctValueSet: the hash-set COUNT_DISTINCT agrees with value
// equality across kinds (int 2 and float 2.0 count once) and merges.
func TestCountDistinctValueSet(t *testing.T) {
	a := NewAccumulator(AggCountDistinct)
	for _, v := range []value.Value{
		value.NewInt(2), value.NewFloat(2), value.NewInt(3), value.Null, value.NewString("2"),
	} {
		if err := a.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	b := NewAccumulator(AggCountDistinct)
	if err := b.Add(value.NewInt(3)); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(value.NewInt(9)); err != nil {
		t.Fatal(err)
	}
	a.Merge(b)
	// Distinct non-NULL: {2, 3, "2", 9}.
	if got := a.Result().Int(); got != 4 {
		t.Fatalf("COUNT_DISTINCT = %d, want 4", got)
	}
}
