package relation

import (
	"math/rand"
	"testing"

	"sheetmusiq/internal/value"
)

// Tests for the typed column kernels: grouping and hashing over payload
// arrays must be indistinguishable from the boxed row path (same dense IDs,
// same first-occurrence order, same hash bits), and must allocate per
// group or per window — never per row.

// TestGroupColsMatchesBoxed: typed grouping over column vectors assigns
// exactly the IDs and first-occurrence lanes the boxed grouper does, with
// and without a row-index indirection.
func TestGroupColsMatchesBoxed(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 60; trial++ {
		rows := genRows(rng, 1+rng.Intn(300))
		r := makeRel("gc", rows)
		cols := r.Columns()
		keyPos := []int{0, 1}
		keyCols := []*Col{cols[0], cols[1]}
		want := GroupRowsOn(rows, keyPos)

		got := GroupCols(keyCols, nil, len(rows))
		if !eqInt32(want.IDs, got.IDs) || !eqInt32(want.First, got.First) {
			t.Fatalf("trial %d: GroupCols diverges from boxed grouping", trial)
		}

		// Indirection: group a shuffled, duplicating subset of the rows.
		m := 1 + rng.Intn(2*len(rows))
		idx := make([]int32, m)
		sub := make([]Tuple, m)
		for i := range idx {
			idx[i] = int32(rng.Intn(len(rows)))
			sub[i] = rows[idx[i]]
		}
		want = GroupRowsOn(sub, keyPos)
		got = GroupCols(keyCols, idx, m)
		if !eqInt32(want.IDs, got.IDs) || !eqInt32(want.First, got.First) {
			t.Fatalf("trial %d: indexed GroupCols diverges from boxed grouping", trial)
		}
	}
}

// TestHashIntoMatchesHashCombine pins the hoisted no-null fast loops: the
// columnar hash pass must produce bit-identical row hashes to folding each
// boxed cell through value.HashCombine, for every payload family, with and
// without null bitmaps and row indirection.
func TestHashIntoMatchesHashCombine(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 40; trial++ {
		rows := genRows(rng, 1+rng.Intn(200))
		r := makeRel("hi", rows)
		cols := r.Columns()
		n := len(rows)

		var idx []int32
		if trial%2 == 1 {
			idx = make([]int32, n)
			for i := range idx {
				idx[i] = int32(rng.Intn(n))
			}
		}
		cell := func(k int) int {
			if idx == nil {
				return k
			}
			return int(idx[k])
		}

		got := hashLanes(cols, idx, n)
		for k := 0; k < n; k++ {
			h := hashSeed
			for _, c := range cols {
				h = value.HashCombine(h, c.Value(cell(k)))
			}
			if got[k] != h {
				t.Fatalf("trial %d: lane %d hash %#x, boxed combine %#x", trial, k, got[k], h)
			}
		}
	}
}

// TestGroupColsBoundedAllocs caps the typed grouping path: 10k rows must
// cost a bounded number of allocations (hash lanes, ID array, table
// doublings) — never one per row.
func TestGroupColsBoundedAllocs(t *testing.T) {
	old := ParallelThreshold
	ParallelThreshold = 1 << 30
	defer func() { ParallelThreshold = old }()
	rng := rand.New(rand.NewSource(61))
	r := makeRel("gca", genRows(rng, 10000))
	cols := r.Columns()
	keyCols := []*Col{cols[0], cols[1]}
	n := r.Len()
	allocs := testing.AllocsPerRun(5, func() {
		GroupCols(keyCols, nil, n)
	})
	if allocs > 100 {
		t.Fatalf("GroupCols allocates %.0f times for 10k rows; per-row allocation regressed", allocs)
	}
}

// TestColGatherBoundedAllocs: gathering a typed column allocates the output
// payload (plus bitmap bookkeeping), independent of row count.
func TestColGatherBoundedAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	r := makeRel("cga", genRows(rng, 10000))
	cols := r.Columns()
	idx := make([]int32, r.Len())
	for i := range idx {
		idx[i] = int32(rng.Intn(r.Len()))
	}
	for ci, c := range cols {
		allocs := testing.AllocsPerRun(5, func() {
			c.Gather(idx)
		})
		if allocs > 8 {
			t.Fatalf("column %d: Gather allocates %.0f times for 10k rows", ci, allocs)
		}
	}
}
