package relation

import (
	"sheetmusiq/internal/obs"
	"sheetmusiq/internal/value"
)

// Hash-grouping kernel. Every replay of the spreadsheet algebra partitions
// rows — aggregation (η), duplicate elimination (δ), SQL GROUP BY/DISTINCT —
// and used to do so through per-row formatted string keys (Tuple.Key/KeyOn),
// the dominant allocation cost of those stages. The Grouper replaces the
// string keys with a dense group-ID kernel: a 64-bit value hash
// (value.Hash), an open-addressing table probed linearly, and direct
// value.Equal collision checks against the group's first-occurrence
// representative. Group IDs are dense int32s assigned in first-occurrence
// order, so "group by" consumers index flat arrays instead of maps and
// first-appearance ordering is preserved exactly as with string keys.
//
// Equality is value.Equal — the same notion the sort and the group-tree
// adjacency probe use — so -0 and +0 (and numerically equal int/float
// pairs) now group together everywhere; the retired string keys treated
// -0/+0 as distinct, disagreeing with the sort. NaN hashes to one canonical
// bucket and groups with itself.

// Grouping metrics: table builds (one per logical grouping pass, batch or
// incremental) and linear-probe collisions (occupied slots stepped over —
// a hash-quality signal, normally a tiny fraction of rows).
var (
	grouperBuilds     = obs.Default.Counter("relation.grouper.builds")
	grouperCollisions = obs.Default.Counter("relation.grouper.collisions")
)

// Grouper maps tuples (restricted to a column set) to dense group IDs in
// first-insertion order. The zero value is not usable; construct with
// NewGrouper. Not safe for concurrent use; the batch entry point
// GroupRowsOn builds per-chunk tables and merges them instead.
type Grouper struct {
	cols  []int   // key columns; nil means every column
	slots []int32 // gid+1; 0 marks an empty slot
	mask  uint64
	hash  []uint64 // per group: its key hash
	reps  []Tuple  // per group: first-occurrence tuple (not cloned)
}

// NewGrouper returns an empty table keyed on cols (nil = whole tuple),
// pre-sized for about sizeHint distinct keys.
func NewGrouper(cols []int, sizeHint int) *Grouper {
	grouperBuilds.Inc()
	return newGrouper(cols, sizeHint)
}

func newGrouper(cols []int, sizeHint int) *Grouper {
	n := 16
	for n < 2*sizeHint {
		n <<= 1
	}
	return &Grouper{cols: cols, slots: make([]int32, n), mask: uint64(n - 1)}
}

// Len returns the number of distinct groups inserted so far.
func (g *Grouper) Len() int { return len(g.reps) }

// Rep returns the first-occurrence tuple of a group.
func (g *Grouper) Rep(gid int32) Tuple { return g.reps[gid] }

// hashRow hashes t restricted to cols (nil = all values).
func hashRow(t Tuple, cols []int) uint64 {
	h := hashSeed
	if cols == nil {
		for _, v := range t {
			h = value.HashCombine(h, v)
		}
		return h
	}
	for _, c := range cols {
		h = value.HashCombine(h, t[c])
	}
	return h
}

// equalRows reports whether a (restricted to acols) equals b (restricted to
// bcols) under value.Equal. nil column sets mean the whole tuple.
func equalRows(a Tuple, acols []int, b Tuple, bcols []int) bool {
	if acols == nil && bcols == nil {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if !value.Equal(a[i], b[i]) {
				return false
			}
		}
		return true
	}
	for i := range acols {
		if !value.Equal(a[acols[i]], b[bcols[i]]) {
			return false
		}
	}
	return true
}

// Add inserts t's key, returning its group ID and whether the group is new.
func (g *Grouper) Add(t Tuple) (int32, bool) {
	return g.addHashed(t, hashRow(t, g.cols))
}

// addHashed is Add with the key hash already computed.
func (g *Grouper) addHashed(t Tuple, h uint64) (int32, bool) {
	i := h & g.mask
	for {
		s := g.slots[i]
		if s == 0 {
			break
		}
		gid := s - 1
		if g.hash[gid] == h && equalRows(g.reps[gid], g.cols, t, g.cols) {
			return gid, false
		}
		grouperCollisions.Inc()
		i = (i + 1) & g.mask
	}
	gid := int32(len(g.reps))
	g.reps = append(g.reps, t)
	g.hash = append(g.hash, h)
	g.slots[i] = gid + 1
	if 4*len(g.reps) >= 3*len(g.slots) {
		g.grow()
	}
	return gid, true
}

// Find returns the group ID of t's key, or -1 when absent.
func (g *Grouper) Find(t Tuple) int32 {
	return g.FindOn(t, g.cols)
}

// FindOn probes with t's key taken from cols — which may differ from the
// table's own column set (the hash-join probe side) but must have the same
// length. It returns the group ID or -1.
func (g *Grouper) FindOn(t Tuple, cols []int) int32 {
	h := hashRow(t, cols)
	i := h & g.mask
	for {
		s := g.slots[i]
		if s == 0 {
			return -1
		}
		gid := s - 1
		if g.hash[gid] == h && equalRows(g.reps[gid], g.cols, t, cols) {
			return gid
		}
		grouperCollisions.Inc()
		i = (i + 1) & g.mask
	}
}

// grow doubles the table and reinserts from the stored group hashes; key
// values are never re-hashed.
func (g *Grouper) grow() {
	slots := make([]int32, 2*len(g.slots))
	mask := uint64(len(slots) - 1)
	for gid, h := range g.hash {
		i := h & mask
		for slots[i] != 0 {
			i = (i + 1) & mask
		}
		slots[i] = int32(gid) + 1
	}
	g.slots = slots
	g.mask = mask
}

// Grouping is the batch result of GroupRowsOn: each row's dense group ID
// and, per group in first-occurrence order, the index of its first row.
type Grouping struct {
	IDs   []int32
	First []int32
}

// NumGroups returns the number of distinct groups.
func (gr *Grouping) NumGroups() int { return len(gr.First) }

// GroupRowsOn partitions rows by the key columns (nil = whole tuple),
// assigning dense group IDs in first-occurrence order. Above
// ParallelThreshold the build fans out: row hashes and per-chunk tables are
// computed concurrently, and the chunk tables merge in chunk order —
// first-occurrence group numbering is therefore identical to the
// sequential build (a group first seen in chunk c cannot have appeared in
// any earlier chunk).
func GroupRowsOn(rows []Tuple, cols []int) *Grouping {
	n := len(rows)
	gr := &Grouping{}
	if n == 0 {
		return gr
	}
	grouperBuilds.Inc()
	if cols != nil && len(cols) == 0 {
		// Empty key: one group holding every row (level-1 aggregation).
		gr.IDs = make([]int32, n)
		gr.First = []int32{0}
		return gr
	}
	hs := make([]uint64, n)
	_ = ForChunks(n, func(_, lo, hi int) error {
		for i := lo; i < hi; i++ {
			hs[i] = hashRow(rows[i], cols)
		}
		return nil
	})
	gr.IDs = make([]int32, n)
	bounds := Chunks(n)
	if len(bounds) <= 1 {
		g := newGrouper(cols, n/4+1)
		for i, t := range rows {
			gid, fresh := g.addHashed(t, hs[i])
			gr.IDs[i] = gid
			if fresh {
				gr.First = append(gr.First, int32(i))
			}
		}
		return gr
	}
	// Parallel build: chunk-local tables with chunk-local IDs...
	type part struct {
		g     *Grouper
		first []int32 // absolute first row index per local group
	}
	parts := make([]part, len(bounds))
	_ = RunChunks(bounds, func(c, lo, hi int) error {
		g := newGrouper(cols, (hi-lo)/4+1)
		var first []int32
		for i := lo; i < hi; i++ {
			gid, fresh := g.addHashed(rows[i], hs[i])
			gr.IDs[i] = gid
			if fresh {
				first = append(first, int32(i))
			}
		}
		parts[c] = part{g: g, first: first}
		return nil
	})
	// ...merged into a global numbering in chunk order: local groups map to
	// global IDs through a remap table, appended in local first-occurrence
	// order, which is global first-occurrence order for unseen groups.
	total := 0
	for _, p := range parts {
		total += p.g.Len()
	}
	global := newGrouper(cols, total)
	remaps := make([][]int32, len(parts))
	for c, p := range parts {
		remap := make([]int32, p.g.Len())
		for lg := 0; lg < p.g.Len(); lg++ {
			gid, fresh := global.addHashed(p.g.reps[lg], p.g.hash[lg])
			remap[lg] = gid
			if fresh {
				gr.First = append(gr.First, p.first[lg])
			}
		}
		remaps[c] = remap
	}
	_ = RunChunks(bounds, func(c, lo, hi int) error {
		remap := remaps[c]
		for i := lo; i < hi; i++ {
			gr.IDs[i] = remap[gr.IDs[i]]
		}
		return nil
	})
	return gr
}
