package relation

import "sheetmusiq/internal/obs"

// Equi-hash-join kernel. The generic theta-join enumerates the full
// Cartesian pair space; when the join predicate contains conjunctive
// `a = b` column equalities across the two relations, HashJoin builds a
// Grouper table on the smaller side's key columns and probes with the
// other side, so only hash-matching candidate pairs reach the predicate.
// The result is identical, in product order, to filtering the product with
// the same predicate — provided the predicate implies the key equalities
// (callers extract the pairs from the predicate itself, so it does).
//
// Hash candidates use value.Equal semantics, which is at least as inclusive
// as any evaluator's `=`; the full predicate then re-filters candidates, so
// extra candidates are harmless and matching pairs are never missed. One
// caveat, shared with the SQL executor's hash join: a predicate that would
// *error* on a non-candidate pair (say a residual conjunct comparing
// incompatible kinds) reports that error only on the product path.
var (
	joinHash     = obs.Default.Counter("relation.join.hash")
	joinFallback = obs.Default.Counter("relation.join.fallback")
)

// HashJoin joins r and s on the column-equality pairs lcols[i] = rcols[i],
// then filters the surviving candidate pairs with on (the full join
// predicate over the product row layout; nil keeps every candidate).
// Output rows appear in product order — left rows in order, each with its
// matching right rows ascending — bit-identical to Join(s, on).
func (r *Relation) HashJoin(s *Relation, lcols, rcols []int, on func(Tuple) (bool, error)) (*Relation, error) {
	joinHash.Inc()
	out := New(r.Name+"_x_"+s.Name, productSchema(r, s))
	na, nb := len(r.Rows), len(s.Rows)
	if na == 0 || nb == 0 {
		return out, nil
	}
	// Build the key table on the smaller side, probe with the larger; either
	// way the per-row outcome is the same two arrays: each left row's group
	// ID (or -1) and each right row's group ID (or -1). Probing only reads
	// the table, so it fans out across chunks.
	agids := make([]int32, na)
	bgids := make([]int32, nb)
	var g *Grouper
	if na <= nb {
		g = NewGrouper(lcols, na)
		for i, t := range r.Rows {
			agids[i], _ = g.Add(t)
		}
		_ = ForChunks(nb, func(_, lo, hi int) error {
			for j := lo; j < hi; j++ {
				bgids[j] = g.FindOn(s.Rows[j], rcols)
			}
			return nil
		})
	} else {
		g = NewGrouper(rcols, nb)
		for j, t := range s.Rows {
			bgids[j], _ = g.Add(t)
		}
		_ = ForChunks(na, func(_, lo, hi int) error {
			for i := lo; i < hi; i++ {
				agids[i] = g.FindOn(r.Rows[i], lcols)
			}
			return nil
		})
	}
	// Posting lists: the right rows of each group, ascending, in CSR layout —
	// one flat entry array sliced per group by offsets, not one slice per
	// group.
	starts := make([]int32, g.Len()+1)
	for _, gid := range bgids {
		if gid >= 0 {
			starts[gid+1]++
		}
	}
	for gid := 0; gid < g.Len(); gid++ {
		starts[gid+1] += starts[gid]
	}
	entries := make([]int32, starts[g.Len()])
	cursor := make([]int32, g.Len())
	copy(cursor, starts[:g.Len()])
	for j, gid := range bgids {
		if gid >= 0 {
			entries[cursor[gid]] = int32(j)
			cursor[gid]++
		}
	}
	// Probe left rows in chunks; each chunk evaluates the predicate over its
	// candidates with a private scratch row and aborts at its first error,
	// so RunChunks reports the error of the first failing candidate in
	// product order — matching the sequential scan over the same candidates.
	w, wl := len(out.Schema), len(r.Schema)
	bounds := Chunks(na)
	pas := make([][]int32, len(bounds))
	pbs := make([][]int32, len(bounds))
	err := RunChunks(bounds, func(c, lo, hi int) error {
		scratch := make(Tuple, w)
		var pa, pb []int32
		for a := lo; a < hi; a++ {
			gid := agids[a]
			if gid < 0 || starts[gid] == starts[gid+1] {
				continue
			}
			copy(scratch, r.Rows[a])
			for _, b := range entries[starts[gid]:starts[gid+1]] {
				if on != nil {
					copy(scratch[wl:], s.Rows[b])
					ok, err := on(scratch)
					if err != nil {
						return err
					}
					if !ok {
						continue
					}
				}
				pa = append(pa, int32(a))
				pb = append(pb, b)
			}
		}
		pas[c], pbs[c] = pa, pb
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, pa := range pas {
		total += len(pa)
	}
	pa := make([]int32, 0, total)
	pb := make([]int32, 0, total)
	for c := range pas {
		pa = append(pa, pas[c]...)
		pb = append(pb, pbs[c]...)
	}
	MaterializePairs(out, r, s, pa, pb)
	return out, nil
}
