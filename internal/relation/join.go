package relation

import (
	"sheetmusiq/internal/obs"
	"sheetmusiq/internal/value"
)

// Equi-hash-join kernel. The generic theta-join enumerates the full
// Cartesian pair space; when the join predicate contains conjunctive
// `a = b` column equalities across the two relations, HashJoin builds a
// key table on the smaller side's key columns and probes with the
// other side, so only hash-matching candidate pairs reach the predicate.
// The result is identical, in product order, to filtering the product with
// the same predicate — provided the predicate implies the key equalities
// (callers extract the pairs from the predicate itself, so it does).
//
// Hash candidates use value.Equal semantics, which is at least as inclusive
// as any evaluator's `=`; the full predicate then re-filters candidates, so
// extra candidates are harmless and matching pairs are never missed. One
// caveat, shared with the SQL executor's hash join: a predicate that would
// *error* on a non-candidate pair (say a residual conjunct comparing
// incompatible kinds) reports that error only on the product path.
//
// When both sides carry typed column vectors (already cached, or large
// enough that columnarizing pays for itself), the build and probe hash and
// compare raw payloads through the colGrouper; otherwise they box through
// the tuple-keyed Grouper. Both produce identical group assignments — the
// typed hash replicates value.Hash bit for bit and the typed equality is
// value.Equal's — so the candidate sets coincide.
var (
	joinHash     = obs.Default.Counter("relation.join.hash")
	joinFallback = obs.Default.Counter("relation.join.fallback")
)

// joinCols returns the relation's typed columns when the columnar path is
// worthwhile: already built, or large enough to amortise the conversion.
func joinCols(r *Relation) []*Col {
	if cols := r.CachedColumns(); cols != nil {
		return cols
	}
	if r.Len() >= autoColumnarThreshold {
		return r.Columns()
	}
	return nil
}

// colPairEqual reports value.Equal of cell i of column a and cell j of
// column b without boxing, falling back to boxed comparison for dynamic
// columns or mismatched kinds (where cross-kind numeric equality applies).
func colPairEqual(a *Col, i int, b *Col, j int) bool {
	if a.Boxed != nil || b.Boxed != nil || a.Kind != b.Kind {
		return value.Equal(a.Value(i), b.Value(j))
	}
	ni, nj := a.IsNull(i), b.IsNull(j)
	if ni || nj {
		return ni == nj
	}
	switch a.Kind {
	case value.KindFloat:
		x, y := a.Floats[i], b.Floats[j]
		return !(x < y) && !(x > y)
	case value.KindString:
		return a.Strs[i] == b.Strs[j]
	default:
		return a.Ints[i] == b.Ints[j]
	}
}

// findCross probes the table with a key drawn from a different column set
// (the join probe side); cols must align positionally with the table's own.
func (g *colGrouper) findCross(probe []*Col, cell int, h uint64) int32 {
	i := h & g.mask
	for {
		s := g.slots[i]
		if s == 0 {
			return -1
		}
		gid := s - 1
		if g.hash[gid] == h {
			eq := true
			for k, c := range g.cols {
				if !colPairEqual(c, int(g.reps[gid]), probe[k], cell) {
					eq = false
					break
				}
			}
			if eq {
				return gid
			}
		}
		grouperCollisions.Inc()
		i = (i + 1) & g.mask
	}
}

// typedJoinGids computes both sides' key group IDs over typed columns,
// returning the group count and whether the typed path applied.
func typedJoinGids(r, s *Relation, lcols, rcols []int, agids, bgids []int32) (int, bool) {
	acols, bcols := joinCols(r), joinCols(s)
	if acols == nil || bcols == nil {
		return 0, false
	}
	akey := make([]*Col, len(lcols))
	for i, c := range lcols {
		akey[i] = acols[c]
	}
	bkey := make([]*Col, len(rcols))
	for i, c := range rcols {
		bkey[i] = bcols[c]
	}
	na, nb := len(agids), len(bgids)
	grouperBuilds.Inc()
	ah := hashLanes(akey, nil, na)
	bh := hashLanes(bkey, nil, nb)
	var g *colGrouper
	if na <= nb {
		g = newColGrouper(akey, na)
		for i := 0; i < na; i++ {
			agids[i], _ = g.add(i, ah[i])
		}
		_ = ForChunks(nb, func(_, lo, hi int) error {
			for j := lo; j < hi; j++ {
				bgids[j] = g.findCross(bkey, j, bh[j])
			}
			return nil
		})
	} else {
		g = newColGrouper(bkey, nb)
		for j := 0; j < nb; j++ {
			bgids[j], _ = g.add(j, bh[j])
		}
		_ = ForChunks(na, func(_, lo, hi int) error {
			for i := lo; i < hi; i++ {
				agids[i] = g.findCross(akey, i, ah[i])
			}
			return nil
		})
	}
	return len(g.reps), true
}

// HashJoin joins r and s on the column-equality pairs lcols[i] = rcols[i],
// then filters the surviving candidate pairs with on (the full join
// predicate over the product row layout; nil keeps every candidate).
// Output rows appear in product order — left rows in order, each with its
// matching right rows ascending — bit-identical to Join(s, on).
func (r *Relation) HashJoin(s *Relation, lcols, rcols []int, on func(Tuple) (bool, error)) (*Relation, error) {
	joinHash.Inc()
	out := New(r.Name+"_x_"+s.Name, productSchema(r, s))
	na, nb := r.Len(), s.Len()
	if na == 0 || nb == 0 {
		return out, nil
	}
	// Build the key table on the smaller side, probe with the larger; either
	// way the per-row outcome is the same two arrays: each left row's group
	// ID (or -1) and each right row's group ID (or -1). Probing only reads
	// the table, so it fans out across chunks.
	agids := make([]int32, na)
	bgids := make([]int32, nb)
	ngroups, typed := typedJoinGids(r, s, lcols, rcols, agids, bgids)
	if !typed {
		rrows, srows := r.TupleRows(), s.TupleRows()
		var g *Grouper
		if na <= nb {
			g = NewGrouper(lcols, na)
			for i, t := range rrows {
				agids[i], _ = g.Add(t)
			}
			_ = ForChunks(nb, func(_, lo, hi int) error {
				for j := lo; j < hi; j++ {
					bgids[j] = g.FindOn(srows[j], rcols)
				}
				return nil
			})
		} else {
			g = NewGrouper(rcols, nb)
			for j, t := range srows {
				bgids[j], _ = g.Add(t)
			}
			_ = ForChunks(na, func(_, lo, hi int) error {
				for i := lo; i < hi; i++ {
					agids[i] = g.FindOn(rrows[i], lcols)
				}
				return nil
			})
		}
		ngroups = g.Len()
	}
	// Posting lists: the right rows of each group, ascending, in CSR layout —
	// one flat entry array sliced per group by offsets, not one slice per
	// group.
	starts := make([]int32, ngroups+1)
	for _, gid := range bgids {
		if gid >= 0 {
			starts[gid+1]++
		}
	}
	for gid := 0; gid < ngroups; gid++ {
		starts[gid+1] += starts[gid]
	}
	entries := make([]int32, starts[ngroups])
	cursor := make([]int32, ngroups)
	copy(cursor, starts[:ngroups])
	for j, gid := range bgids {
		if gid >= 0 {
			entries[cursor[gid]] = int32(j)
			cursor[gid]++
		}
	}
	// Probe left rows in chunks; each chunk evaluates the predicate over its
	// candidates with a private scratch row and aborts at its first error,
	// so RunChunks reports the error of the first failing candidate in
	// product order — matching the sequential scan over the same candidates.
	rrows, srows := r.TupleRows(), s.TupleRows()
	w, wl := len(out.Schema), len(r.Schema)
	bounds := Chunks(na)
	pas := make([][]int32, len(bounds))
	pbs := make([][]int32, len(bounds))
	err := RunChunks(bounds, func(c, lo, hi int) error {
		scratch := make(Tuple, w)
		var pa, pb []int32
		for a := lo; a < hi; a++ {
			gid := agids[a]
			if gid < 0 || starts[gid] == starts[gid+1] {
				continue
			}
			copy(scratch, rrows[a])
			for _, b := range entries[starts[gid]:starts[gid+1]] {
				if on != nil {
					copy(scratch[wl:], srows[b])
					ok, err := on(scratch)
					if err != nil {
						return err
					}
					if !ok {
						continue
					}
				}
				pa = append(pa, int32(a))
				pb = append(pb, b)
			}
		}
		pas[c], pbs[c] = pa, pb
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, pa := range pas {
		total += len(pa)
	}
	pa := make([]int32, 0, total)
	pb := make([]int32, 0, total)
	for c := range pas {
		pa = append(pa, pas[c]...)
		pb = append(pb, pbs[c]...)
	}
	MaterializePairs(out, r, s, pa, pb)
	return out, nil
}
