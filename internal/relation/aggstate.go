package relation

import (
	"errors"
	"fmt"

	"sheetmusiq/internal/obs"
	"sheetmusiq/internal/value"
)

// Typed grouped-aggregation kernel. GroupedAggState holds one aggregate
// function's per-group state as flat typed arrays — int64 sums, float64
// sum/sum-of-squares, per-kind min/max bests, dense distinct tables — and is
// fed whole column payloads through lane loops instead of boxing each cell
// into a value.Value and calling Accumulator.Add row by row. The contract is
// bit-identity: feeding lanes [lo,hi) in ascending order produces exactly
// the values the boxed Accumulator produces from the same cells in the same
// order, including float summation order, MIN/MAX first-seen tie-breaks,
// int64 wrap-around on SUM, and the COUNT/COUNT_DISTINCT empty-group rules.
//
// Per-group exactness needs no per-group flag here: a typed column is
// single-kind, so an Int column's SUM is always exact in int64 (the boxed
// intExact invariant) and a Float column's never is (any non-NULL add clears
// intExact); NULL-only groups return NULL before exactness is consulted.
//
// Chunked parallel accumulation builds one state per chunk and folds them in
// chunk order with Merge, mirroring the Accumulator.Merge idiom: counts and
// sums add, bests keep the earlier chunk on compare-equal (first-seen),
// distinct tables union. MergeExact gates which functions may chunk at all.
var (
	aggVectorized = obs.Default.Counter("relation.agg.vectorized")
	aggDeclined   = obs.Default.Counter("relation.agg.declined")
)

// ErrNotVectorizable marks an aggregation the typed kernel declines — the
// input column is dynamically typed (Boxed) and the function reads cells.
// Callers fall back to the boxed per-group Accumulator path.
var ErrNotVectorizable = errors.New("relation: aggregation not vectorizable")

// GroupedAggState is the typed per-group state of one aggregate function
// over one column. Construct with NewGroupedAggState, feed lane ranges with
// Update, combine chunk partials with Merge, and read per-group values with
// Results.
type GroupedAggState struct {
	fn   AggFunc
	in   *Col    // nil for COUNT with no argument column
	rows []int32 // lane → cell index (nil = identity)
	ng   int

	count   []int64 // COUNT: tuples per group, NULLs included
	nonNull []int64
	sum     []float64
	sumSq   []float64 // STDDEV only
	intSum  []int64   // SUM over an Int column
	has     []bool    // MIN/MAX: group has a non-NULL best
	bestI   []int64
	bestF   []float64
	bestS   []string
	dt      *distinctTable // COUNT_DISTINCT
}

// NewGroupedAggState builds the state for fn over in with ng groups; rows
// maps accumulation lanes to cell indexes of in (nil = identity). A nil in
// is COUNT with no argument (COUNT(*)). Boxed columns decline with
// ErrNotVectorizable unless the function never reads cells (COUNT).
func NewGroupedAggState(fn AggFunc, in *Col, rows []int32, ng int) (*GroupedAggState, error) {
	st := &GroupedAggState{fn: fn, in: in, rows: rows, ng: ng}
	switch fn {
	case AggCount:
		st.count = make([]int64, ng)
		return st, nil
	}
	if in == nil {
		return nil, fmt.Errorf("relation: %s requires an argument column", fn)
	}
	if in.Boxed != nil {
		return nil, ErrNotVectorizable
	}
	switch fn {
	case AggCountDistinct:
		st.dt = newDistinctTable(in, rows, ng)
	case AggMin, AggMax:
		st.has = make([]bool, ng)
		switch in.Kind {
		case value.KindFloat:
			st.bestF = make([]float64, ng)
		case value.KindString:
			st.bestS = make([]string, ng)
		default: // Int, Bool, Date share the Ints payload; KindNull needs none
			st.bestI = make([]int64, ng)
		}
	case AggSum, AggAvg, AggStdDev:
		st.nonNull = make([]int64, ng)
		if fn == AggSum && in.Kind == value.KindInt {
			st.intSum = make([]int64, ng)
		} else {
			st.sum = make([]float64, ng)
		}
		if fn == AggStdDev {
			st.sumSq = make([]float64, ng)
		}
	default:
		return nil, fmt.Errorf("relation: unknown aggregate function %q", fn)
	}
	return st, nil
}

// cell maps lane k to its cell index.
func (st *GroupedAggState) cell(k int) int {
	if st.rows == nil {
		return k
	}
	return int(st.rows[k])
}

// Update feeds lanes [lo,hi): lane k belongs to group gids[k] and reads the
// cell st.rows maps it to. Lanes must be fed in ascending order within one
// state for float sums and tie-breaks to match the boxed scan.
func (st *GroupedAggState) Update(gids []int32, lo, hi int) error {
	switch st.fn {
	case AggCount:
		// COUNT counts tuples per group, NULLs included, column or not.
		for k := lo; k < hi; k++ {
			st.count[gids[k]]++
		}
		return nil
	case AggCountDistinct:
		st.dt.update(gids, lo, hi)
		return nil
	case AggMin, AggMax:
		st.updateMinMax(gids, lo, hi)
		return nil
	}
	return st.updateSums(gids, lo, hi)
}

// updateSums feeds SUM/AVG/STDDEV. The kind switch, null-bitmap branch and
// lane→cell indirection are hoisted out of the per-lane loops (the HashInto
// idiom), so the no-null fast loops are a load, the adds, and a group index.
func (st *GroupedAggState) updateSums(gids []int32, lo, hi int) error {
	in := st.in
	switch in.Kind {
	case value.KindNull:
		return nil // every cell NULL: nothing accumulates
	case value.KindInt:
		ints := in.Ints
		switch {
		case st.intSum != nil: // SUM
			if in.Nulls == nil && st.rows == nil {
				for k := lo; k < hi; k++ {
					g := gids[k]
					st.nonNull[g]++
					st.intSum[g] += ints[k]
				}
				return nil
			}
			if in.Nulls == nil {
				for k := lo; k < hi; k++ {
					g := gids[k]
					st.nonNull[g]++
					st.intSum[g] += ints[st.rows[k]]
				}
				return nil
			}
			for k := lo; k < hi; k++ {
				i := st.cell(k)
				if BitGet(in.Nulls, i) {
					continue
				}
				g := gids[k]
				st.nonNull[g]++
				st.intSum[g] += ints[i]
			}
		case st.sumSq != nil: // STDDEV
			for k := lo; k < hi; k++ {
				i := st.cell(k)
				if BitGet(in.Nulls, i) {
					continue
				}
				g, f := gids[k], float64(ints[i])
				st.nonNull[g]++
				st.sum[g] += f
				st.sumSq[g] += f * f
			}
		default: // AVG
			if in.Nulls == nil && st.rows == nil {
				for k := lo; k < hi; k++ {
					g := gids[k]
					st.nonNull[g]++
					st.sum[g] += float64(ints[k])
				}
				return nil
			}
			for k := lo; k < hi; k++ {
				i := st.cell(k)
				if BitGet(in.Nulls, i) {
					continue
				}
				g := gids[k]
				st.nonNull[g]++
				st.sum[g] += float64(ints[i])
			}
		}
		return nil
	case value.KindFloat:
		fs := in.Floats
		if st.sumSq != nil { // STDDEV
			for k := lo; k < hi; k++ {
				i := st.cell(k)
				if BitGet(in.Nulls, i) {
					continue
				}
				g, f := gids[k], fs[i]
				st.nonNull[g]++
				st.sum[g] += f
				st.sumSq[g] += f * f
			}
			return nil
		}
		if in.Nulls == nil && st.rows == nil {
			for k := lo; k < hi; k++ {
				g := gids[k]
				st.nonNull[g]++
				st.sum[g] += fs[k]
			}
			return nil
		}
		if in.Nulls == nil {
			for k := lo; k < hi; k++ {
				g := gids[k]
				st.nonNull[g]++
				st.sum[g] += fs[st.rows[k]]
			}
			return nil
		}
		for k := lo; k < hi; k++ {
			i := st.cell(k)
			if BitGet(in.Nulls, i) {
				continue
			}
			g := gids[k]
			st.nonNull[g]++
			st.sum[g] += fs[i]
		}
		return nil
	}
	// Non-numeric kinds error exactly where the boxed Accumulator does: at
	// the first non-NULL cell fed (an all-NULL range accumulates nothing).
	for k := lo; k < hi; k++ {
		if !in.IsNull(st.cell(k)) {
			return fmt.Errorf("relation: %s over non-numeric %s", st.fn, in.Kind)
		}
	}
	return nil
}

// updateMinMax feeds MIN/MAX with strict-compare replacement, keeping the
// group's first occurrence among compare-equal cells exactly as the boxed
// MustCompare path does (for floats the strict < and > arms coincide with
// MustCompare, NaN-unordered included).
func (st *GroupedAggState) updateMinMax(gids []int32, lo, hi int) {
	in := st.in
	wantMin := st.fn == AggMin
	switch in.Kind {
	case value.KindNull:
		return
	case value.KindFloat:
		fs := in.Floats
		for k := lo; k < hi; k++ {
			i := st.cell(k)
			if BitGet(in.Nulls, i) {
				continue
			}
			g, v := gids[k], fs[i]
			if !st.has[g] {
				st.has[g], st.bestF[g] = true, v
			} else if (wantMin && v < st.bestF[g]) || (!wantMin && v > st.bestF[g]) {
				st.bestF[g] = v
			}
		}
	case value.KindString:
		ss := in.Strs
		for k := lo; k < hi; k++ {
			i := st.cell(k)
			if BitGet(in.Nulls, i) {
				continue
			}
			g, v := gids[k], ss[i]
			if !st.has[g] {
				st.has[g], st.bestS[g] = true, v
			} else if (wantMin && v < st.bestS[g]) || (!wantMin && v > st.bestS[g]) {
				st.bestS[g] = v
			}
		}
	default: // Int, Bool, Date share the Ints payload
		ints := in.Ints
		for k := lo; k < hi; k++ {
			i := st.cell(k)
			if BitGet(in.Nulls, i) {
				continue
			}
			g, v := gids[k], ints[i]
			if !st.has[g] {
				st.has[g], st.bestI[g] = true, v
			} else if (wantMin && v < st.bestI[g]) || (!wantMin && v > st.bestI[g]) {
				st.bestI[g] = v
			}
		}
	}
}

// Merge folds o — the same function over a later lane chunk of the same
// column — into st, in chunk order, mirroring Accumulator.Merge: counts and
// sums add, bests keep the receiver on compare-equal (the earlier chunk saw
// the cell first), distinct entries union.
func (st *GroupedAggState) Merge(o *GroupedAggState) {
	switch st.fn {
	case AggCount:
		for g, c := range o.count {
			st.count[g] += c
		}
	case AggCountDistinct:
		st.dt.absorb(o.dt)
	case AggMin, AggMax:
		wantMin := st.fn == AggMin
		for g, oh := range o.has {
			if !oh {
				continue
			}
			if !st.has[g] {
				st.has[g] = true
				switch {
				case st.bestF != nil:
					st.bestF[g] = o.bestF[g]
				case st.bestS != nil:
					st.bestS[g] = o.bestS[g]
				case st.bestI != nil:
					st.bestI[g] = o.bestI[g]
				}
				continue
			}
			switch {
			case st.bestF != nil:
				if v := o.bestF[g]; (wantMin && v < st.bestF[g]) || (!wantMin && v > st.bestF[g]) {
					st.bestF[g] = v
				}
			case st.bestS != nil:
				if v := o.bestS[g]; (wantMin && v < st.bestS[g]) || (!wantMin && v > st.bestS[g]) {
					st.bestS[g] = v
				}
			case st.bestI != nil:
				if v := o.bestI[g]; (wantMin && v < st.bestI[g]) || (!wantMin && v > st.bestI[g]) {
					st.bestI[g] = v
				}
			}
		}
	default:
		for g, c := range o.nonNull {
			st.nonNull[g] += c
		}
		if st.intSum != nil {
			for g, s := range o.intSum {
				st.intSum[g] += s
			}
		}
		if st.sum != nil {
			for g, s := range o.sum {
				st.sum[g] += s
			}
		}
		if st.sumSq != nil {
			for g, s := range o.sumSq {
				st.sumSq[g] += s
			}
		}
	}
}

// Results finalises every group, exactly as Accumulator.Result: COUNT
// variants return counts (0 for empty groups), everything else returns NULL
// for NULL-only groups; SUM over an Int column stays exact in int64.
func (st *GroupedAggState) Results() []value.Value {
	res := make([]value.Value, st.ng)
	switch st.fn {
	case AggCount:
		for g, c := range st.count {
			res[g] = value.NewInt(c)
		}
		return res
	case AggCountDistinct:
		for g, c := range st.dt.counts {
			res[g] = value.NewInt(c)
		}
		return res
	case AggMin, AggMax:
		for g := range res {
			if !st.has[g] {
				res[g] = value.Null
				continue
			}
			switch {
			case st.bestF != nil:
				res[g] = value.NewFloat(st.bestF[g])
			case st.bestS != nil:
				res[g] = value.NewString(st.bestS[g])
			default:
				switch st.in.Kind {
				case value.KindBool:
					res[g] = value.NewBool(st.bestI[g] != 0)
				case value.KindDate:
					res[g] = value.NewDateDays(st.bestI[g])
				default:
					res[g] = value.NewInt(st.bestI[g])
				}
			}
		}
		return res
	}
	for g := range res {
		if st.nonNull[g] == 0 {
			res[g] = value.Null
			continue
		}
		switch st.fn {
		case AggSum:
			if st.intSum != nil {
				res[g] = value.NewInt(st.intSum[g])
			} else {
				res[g] = value.NewFloat(st.sum[g])
			}
		case AggAvg:
			res[g] = value.NewFloat(st.sum[g] / float64(st.nonNull[g]))
		case AggStdDev:
			n := float64(st.nonNull[g])
			mean := st.sum[g] / n
			varc := st.sumSq[g]/n - mean*mean
			if varc < 0 {
				varc = 0
			}
			res[g] = value.NewFloat(sqrt(varc))
		}
	}
	return res
}

// distinctTable is COUNT_DISTINCT's typed backing store: one open-addressing
// table over (group, cell) pairs for all groups at once, replacing one boxed
// valueSet per group. An entry stores the cell index, not the value, so
// probing compares raw payloads through CellEqual. Deduplication semantics
// match valueSet exactly — same payload hash, hash-then-equality probe —
// so the per-group distinct counts coincide with the boxed path, NaN and
// signed-zero handling included.
type distinctTable struct {
	in     *Col
	rows   []int32
	slots  []int32 // entry index + 1; 0 marks empty
	mask   uint64
	gids   []int32
	cells  []int32
	hashes []uint64 // cell hashes (value.Hash image of the boxed cell)
	counts []int64  // per-group distinct count
}

func newDistinctTable(in *Col, rows []int32, ng int) *distinctTable {
	return &distinctTable{
		in:     in,
		rows:   rows,
		slots:  make([]int32, 64),
		mask:   63,
		counts: make([]int64, ng),
	}
}

// cellHash is value.Hash of the boxed cell, computed from the typed payload.
func cellHash(c *Col, i int) uint64 {
	switch c.Kind {
	case value.KindInt:
		return value.HashInt(c.Ints[i])
	case value.KindFloat:
		return value.HashFloat(c.Floats[i])
	case value.KindString:
		return value.HashString(c.Strs[i])
	case value.KindBool:
		return value.HashBool(c.Ints[i] != 0)
	case value.KindDate:
		return value.HashDate(c.Ints[i])
	}
	return value.HashNull()
}

func (t *distinctTable) update(gids []int32, lo, hi int) {
	in := t.in
	for k := lo; k < hi; k++ {
		i := k
		if t.rows != nil {
			i = int(t.rows[k])
		}
		if in.IsNull(i) {
			continue // COUNT_DISTINCT skips NULL inputs
		}
		t.add(gids[k], int32(i), cellHash(in, i))
	}
}

func (t *distinctTable) add(gid, cell int32, h uint64) {
	// The probe seed folds the group in so one table serves every group.
	p := value.Mix64(h ^ uint64(uint32(gid))*0x9e3779b97f4a7c15) & t.mask
	for {
		sl := t.slots[p]
		if sl == 0 {
			break
		}
		if j := sl - 1; t.gids[j] == gid && t.hashes[j] == h && t.in.CellEqual(int(t.cells[j]), int(cell)) {
			return
		}
		p = (p + 1) & t.mask
	}
	t.gids = append(t.gids, gid)
	t.cells = append(t.cells, cell)
	t.hashes = append(t.hashes, h)
	t.slots[p] = int32(len(t.gids))
	t.counts[gid]++
	if 4*len(t.gids) >= 3*len(t.slots) {
		t.grow()
	}
}

func (t *distinctTable) grow() {
	slots := make([]int32, 2*len(t.slots))
	mask := uint64(len(slots) - 1)
	for j, h := range t.hashes {
		p := value.Mix64(h^uint64(uint32(t.gids[j]))*0x9e3779b97f4a7c15) & mask
		for slots[p] != 0 {
			p = (p + 1) & mask
		}
		slots[p] = int32(j) + 1
	}
	t.slots = slots
	t.mask = mask
}

// absorb unions o's entries (same column, later chunk) into t.
func (t *distinctTable) absorb(o *distinctTable) {
	for j, gid := range o.gids {
		t.add(gid, o.cells[j], o.hashes[j])
	}
}

// GroupAggregate computes fn over column in for every group: lane k in
// [0,n) belongs to group gids[k] and reads cell rows[k] (nil rows =
// identity), with ng groups total. The accumulation chunks in parallel when
// the merge is bit-exact (MergeExact); otherwise it stays sequential and the
// returned flag reports the fallback. A nil in is COUNT with no argument.
// Boxed input columns decline with ErrNotVectorizable (except COUNT, which
// never reads cells); callers then run the boxed Accumulator path.
func GroupAggregate(fn AggFunc, in *Col, gids, rows []int32, n, ng int) ([]value.Value, bool, error) {
	if in != nil && in.Boxed != nil && fn != AggCount {
		aggDeclined.Inc()
		return nil, false, ErrNotVectorizable
	}
	kind := value.KindNull
	if in != nil {
		kind = in.Kind
	}
	bounds := Chunks(n)
	seqFallback := false
	if len(bounds) > 1 && !MergeExact(fn, kind) {
		bounds = [][2]int{{0, n}}
		seqFallback = true
	}
	if len(bounds) <= 1 {
		st, err := NewGroupedAggState(fn, in, rows, ng)
		if err != nil {
			return nil, false, err
		}
		if err := st.Update(gids, 0, n); err != nil {
			return nil, false, err
		}
		aggVectorized.Inc()
		return st.Results(), seqFallback, nil
	}
	parts := make([]*GroupedAggState, len(bounds))
	err := RunChunks(bounds, func(ch, lo, hi int) error {
		st, err := NewGroupedAggState(fn, in, rows, ng)
		if err != nil {
			return err
		}
		if err := st.Update(gids, lo, hi); err != nil {
			return err
		}
		parts[ch] = st
		return nil
	})
	if err != nil {
		return nil, false, err
	}
	st := parts[0]
	for _, p := range parts[1:] {
		st.Merge(p)
	}
	aggVectorized.Inc()
	return st.Results(), false, nil
}
