// Package relation implements the in-memory relational substrate beneath the
// spreadsheet algebra: schemas, tuples, and multiset relations, together with
// textbook relational-algebra primitives (selection, projection, product,
// multiset union/difference, join, sorting, grouping with aggregation).
//
// The spreadsheet algebra of internal/core is defined over relations from
// this package; the SQL engine of internal/sql executes against them; and the
// relational operators here double as the independent baseline that property
// tests compare the higher layers against.
package relation

import (
	"fmt"
	"strings"

	"sheetmusiq/internal/value"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Kind value.Kind
}

// Schema is an ordered list of columns.
type Schema []Column

// IndexOf returns the position of the named column (case-insensitive), or -1.
func (s Schema) IndexOf(name string) int {
	for i, c := range s {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Has reports whether the schema contains the named column.
func (s Schema) Has(name string) bool { return s.IndexOf(name) >= 0 }

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.Name
	}
	return out
}

// Clone returns a copy of the schema.
func (s Schema) Clone() Schema {
	out := make(Schema, len(s))
	copy(out, s)
	return out
}

// Equal reports whether two schemas have the same columns in the same order
// (names compared case-insensitively).
func (s Schema) Equal(o Schema) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if !strings.EqualFold(s[i].Name, o[i].Name) || s[i].Kind != o[i].Kind {
			return false
		}
	}
	return true
}

// String renders the schema as "name TYPE, ...".
func (s Schema) String() string {
	parts := make([]string, len(s))
	for i, c := range s {
		parts[i] = c.Name + " " + c.Kind.String()
	}
	return strings.Join(parts, ", ")
}

// Tuple is one row of values, positionally aligned with a schema.
type Tuple []value.Value

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Key returns a string identifying the tuple's values for multiset
// bookkeeping; equal tuples share a key.
func (t Tuple) Key() string {
	var b strings.Builder
	for _, v := range t {
		b.WriteString(v.Key())
		b.WriteByte('\x1f')
	}
	return b.String()
}

// KeyOn returns the key restricted to the given column positions.
func (t Tuple) KeyOn(cols []int) string {
	var b strings.Builder
	for _, c := range cols {
		b.WriteString(t[c].Key())
		b.WriteByte('\x1f')
	}
	return b.String()
}

// Relation is a named multiset of tuples over a schema. Large relations
// additionally carry typed column vectors (column.go): row-built relations
// grow them lazily on first kernel use, column-built relations (FromColumns)
// materialize Rows lazily instead. Code outside this package must read rows
// through TupleRows(), never the Rows field, so both representations flow
// through the same API.
type Relation struct {
	Name   string
	Schema Schema
	Rows   []Tuple
	col    *colState // lazily attached columnar cache; nil until first use
}

// New creates an empty relation with the given name and schema.
func New(name string, schema Schema) *Relation {
	return &Relation{Name: name, Schema: schema.Clone()}
}

// Append adds a row after checking arity and kinds (NULL matches any kind).
// Columnar relations materialize their rows first; the (now stale) column
// cache is dropped and rebuilds lazily on next kernel use.
func (r *Relation) Append(t Tuple) error {
	if len(t) != len(r.Schema) {
		return fmt.Errorf("relation %s: row arity %d != schema arity %d", r.Name, len(t), len(r.Schema))
	}
	for i, v := range t {
		if v.IsNull() {
			continue
		}
		if v.Kind() != r.Schema[i].Kind {
			// Permit int into float columns; everything else is an error.
			if r.Schema[i].Kind == value.KindFloat && v.Kind() == value.KindInt {
				t[i] = value.NewFloat(float64(v.Int()))
				continue
			}
			return fmt.Errorf("relation %s: column %s expects %s, got %s",
				r.Name, r.Schema[i].Name, r.Schema[i].Kind, v.Kind())
		}
	}
	rows := r.TupleRows()
	r.invalidateColumns()
	r.Rows = append(rows, t)
	return nil
}

// MustAppend appends and panics on schema mismatch; for test fixtures.
func (r *Relation) MustAppend(vals ...value.Value) {
	if err := r.Append(Tuple(vals)); err != nil {
		panic(err)
	}
}

// Len returns the number of rows.
func (r *Relation) Len() int {
	if r.col != nil && r.col.colBuilt {
		return r.col.nrows
	}
	return len(r.Rows)
}

// Clone deep-copies the relation. Column-built relations clone their column
// vectors (rows stay lazy); row-built relations deep-copy the rows.
func (r *Relation) Clone() *Relation {
	if r.col != nil && r.col.colBuilt {
		c := r.col
		c.mu.Lock()
		cols := make([]*Col, len(c.cols))
		for i, src := range c.cols {
			cc := &Col{Kind: src.Kind}
			if src.Ints != nil {
				cc.Ints = append([]int64(nil), src.Ints...)
			}
			if src.Floats != nil {
				cc.Floats = append([]float64(nil), src.Floats...)
			}
			if src.Strs != nil {
				cc.Strs = append([]string(nil), src.Strs...)
			}
			if src.Boxed != nil {
				cc.Boxed = append([]value.Value(nil), src.Boxed...)
			}
			if src.Nulls != nil {
				cc.Nulls = append([]uint64(nil), src.Nulls...)
			}
			cols[i] = cc
		}
		n := c.nrows
		c.mu.Unlock()
		return FromColumns(r.Name, r.Schema.Clone(), cols, n)
	}
	out := New(r.Name, r.Schema)
	out.Rows = make([]Tuple, len(r.Rows))
	for i, t := range r.Rows {
		out.Rows[i] = t.Clone()
	}
	return out
}

// ColumnIndexes resolves names to positions, erroring on the first miss.
func (r *Relation) ColumnIndexes(names []string) ([]int, error) {
	// The result is non-nil even for zero names: GroupRowsOn distinguishes
	// an empty column set (one group) from nil (whole-tuple keys).
	ix := r.nameIndex()
	idx := make([]int, len(names))
	for i, n := range names {
		j := ix.IndexOf(n)
		if j < 0 {
			return nil, fmt.Errorf("relation %s: no column %q", r.Name, n)
		}
		idx[i] = j
	}
	return idx, nil
}

// Select returns the rows for which pred returns true. Errors from pred
// abort the scan.
func (r *Relation) Select(pred func(Tuple) (bool, error)) (*Relation, error) {
	out := New(r.Name, r.Schema)
	for _, t := range r.TupleRows() {
		ok, err := pred(t)
		if err != nil {
			return nil, err
		}
		if ok {
			out.Rows = append(out.Rows, t.Clone())
		}
	}
	return out, nil
}

// Project keeps exactly the named columns, in the given order, without
// duplicate elimination (multiset semantics).
func (r *Relation) Project(names []string) (*Relation, error) {
	idx, err := r.ColumnIndexes(names)
	if err != nil {
		return nil, err
	}
	schema := make(Schema, len(idx))
	for i, j := range idx {
		schema[i] = r.Schema[j]
	}
	out := New(r.Name, schema)
	// One flat backing array for the projected rows instead of one
	// allocation per row; large projections dominate evaluation output.
	rows := r.TupleRows()
	w := len(idx)
	flat := make([]value.Value, len(rows)*w)
	out.Rows = make([]Tuple, len(rows))
	for ri, t := range rows {
		row := flat[ri*w : (ri+1)*w : (ri+1)*w]
		for i, j := range idx {
			row[i] = t[j]
		}
		out.Rows[ri] = row
	}
	return out, nil
}

// productSchema is the concatenated schema of r × s. Columns whose names
// collide are disambiguated with the relation-name prefix of the right
// operand, joined with an underscore so result names stay plain identifiers.
func productSchema(r, s *Relation) Schema {
	schema := r.Schema.Clone()
	for _, c := range s.Schema {
		name := c.Name
		if schema.Has(name) {
			name = s.Name + "_" + name
			if schema.Has(name) {
				for k := 2; ; k++ {
					cand := fmt.Sprintf("%s_%d", name, k)
					if !schema.Has(cand) {
						name = cand
						break
					}
				}
			}
		}
		schema = append(schema, Column{Name: name, Kind: c.Kind})
	}
	return schema
}

// Product returns the Cartesian product r × s with productSchema naming.
func (r *Relation) Product(s *Relation) *Relation {
	out := New(r.Name+"_x_"+s.Name, productSchema(r, s))
	rrows, srows := r.TupleRows(), s.TupleRows()
	n := len(rrows) * len(srows)
	if n == 0 {
		return out
	}
	// One flat backing array for all output rows instead of one allocation
	// per row; the product is the largest materialisation in the system.
	w, wl := len(out.Schema), len(r.Schema)
	flat := make([]value.Value, n*w)
	out.Rows = make([]Tuple, n)
	k := 0
	for _, a := range rrows {
		for _, b := range srows {
			row := flat[k*w : (k+1)*w : (k+1)*w]
			copy(row, a)
			copy(row[wl:], b)
			out.Rows[k] = row
			k++
		}
	}
	return out
}

// Union returns the multiset union r ⊎ s. Schemas must be equal.
func (r *Relation) Union(s *Relation) (*Relation, error) {
	if !r.Schema.Equal(s.Schema) {
		return nil, fmt.Errorf("union: incompatible schemas [%s] vs [%s]", r.Schema, s.Schema)
	}
	srows := s.TupleRows()
	out := New(r.Name, r.Schema)
	rrows := r.TupleRows()
	out.Rows = make([]Tuple, 0, len(rrows)+len(srows))
	for _, t := range rrows {
		out.Rows = append(out.Rows, t.Clone())
	}
	for _, t := range srows {
		out.Rows = append(out.Rows, t.Clone())
	}
	return out, nil
}

// Difference returns the multiset difference r − s: each tuple's
// multiplicity is max(0, count_r − count_s). Schemas must be equal.
func (r *Relation) Difference(s *Relation) (*Relation, error) {
	if !r.Schema.Equal(s.Schema) {
		return nil, fmt.Errorf("difference: incompatible schemas [%s] vs [%s]", r.Schema, s.Schema)
	}
	srows := s.TupleRows()
	g := NewGrouper(nil, len(srows))
	counts := make([]int, 0, len(srows))
	for _, t := range srows {
		gid, fresh := g.Add(t)
		if fresh {
			counts = append(counts, 0)
		}
		counts[gid]++
	}
	out := New(r.Name, r.Schema)
	for _, t := range r.TupleRows() {
		if gid := g.Find(t); gid >= 0 && counts[gid] > 0 {
			counts[gid]--
			continue
		}
		out.Rows = append(out.Rows, t.Clone())
	}
	return out, nil
}

// Distinct removes duplicate tuples, keeping first occurrences in order.
func (r *Relation) Distinct() *Relation {
	return r.distinctKept(GroupRowsOn(r.TupleRows(), nil))
}

// DistinctOn removes rows that duplicate an earlier row on the given
// columns, keeping first occurrences.
func (r *Relation) DistinctOn(cols []int) *Relation {
	return r.distinctKept(GroupRowsOn(r.TupleRows(), cols))
}

// distinctKept materialises each group's first-occurrence row, in order,
// into one flat backing array.
func (r *Relation) distinctKept(gr *Grouping) *Relation {
	out := New(r.Name, r.Schema)
	n, w := gr.NumGroups(), len(r.Schema)
	if n == 0 {
		return out
	}
	rows := r.TupleRows()
	flat := make([]value.Value, n*w)
	out.Rows = make([]Tuple, n)
	for g, ri := range gr.First {
		row := flat[g*w : (g+1)*w : (g+1)*w]
		copy(row, rows[ri])
		out.Rows[g] = row
	}
	return out
}

// Join computes the theta-join of r and s using on as the join predicate
// over the product row layout (r's columns then s's, disambiguated as in
// Product). A nil predicate degenerates to the product. Candidate pairs are
// enumerated with a scratch row — the full product is never materialised —
// and matches land in one flat backing array, in product order.
func (r *Relation) Join(s *Relation, on func(Tuple) (bool, error)) (*Relation, error) {
	if on == nil {
		return r.Product(s), nil
	}
	joinFallback.Inc()
	out := New(r.Name+"_x_"+s.Name, productSchema(r, s))
	w, wl := len(out.Schema), len(r.Schema)
	scratch := make(Tuple, w)
	var pa, pb []int32
	srows := s.TupleRows()
	for a, ta := range r.TupleRows() {
		copy(scratch, ta)
		for b, tb := range srows {
			copy(scratch[wl:], tb)
			ok, err := on(scratch)
			if err != nil {
				return nil, err
			}
			if ok {
				pa = append(pa, int32(a))
				pb = append(pb, int32(b))
			}
		}
	}
	MaterializePairs(out, r, s, pa, pb)
	return out, nil
}

// MaterializePairs fills out with the concatenation of r's and s's rows for
// each (a, b) index pair, in pair order, backed by a single flat array. out
// must have the product-layout schema (r's columns then s's).
func MaterializePairs(out *Relation, r, s *Relation, pa, pb []int32) {
	n, w, wl := len(pa), len(out.Schema), len(r.Schema)
	if n == 0 {
		return
	}
	rrows, srows := r.TupleRows(), s.TupleRows()
	flat := make([]value.Value, n*w)
	out.Rows = make([]Tuple, n)
	_ = ForChunks(n, func(_, lo, hi int) error {
		for k := lo; k < hi; k++ {
			row := flat[k*w : (k+1)*w : (k+1)*w]
			copy(row, rrows[pa[k]])
			copy(row[wl:], srows[pb[k]])
			out.Rows[k] = row
		}
		return nil
	})
}

// String renders the relation as an aligned text table (for debugging and
// golden tests).
func (r *Relation) String() string {
	widths := make([]int, len(r.Schema))
	for i, c := range r.Schema {
		widths[i] = len(c.Name)
	}
	rows := r.TupleRows()
	cells := make([][]string, len(rows))
	for ri, t := range rows {
		cells[ri] = make([]string, len(t))
		for ci, v := range t {
			s := v.String()
			cells[ri][ci] = s
			if len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	for i, c := range r.Schema {
		if i > 0 {
			b.WriteString(" | ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], c.Name)
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for i, s := range row {
			if i > 0 {
				b.WriteString(" | ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], s)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
