package relation

import (
	"strings"
	"sync"

	"sheetmusiq/internal/obs"
	"sheetmusiq/internal/value"
)

// Columnar substrate. The primary large-relation representation is a set of
// typed column vectors — int64/float64/string payload arrays plus a null
// bitmap per column — attached to the Relation behind its existing row API.
// Row-built relations columnarize lazily (and cache the result) the first
// time a vectorized kernel asks; column-built relations (FromColumns)
// materialize tuple rows lazily the first time a row consumer asks. Both
// conversions happen at most once per relation and are counted by
// relation.column.materialize (the row→column direction, the one that walks
// every boxed cell).
//
// Layout: Int, Bool and Date columns share the Ints payload array (Bool as
// 0/1, Date as days since epoch — exactly the value.Value payload), Float
// uses Floats, String uses Strs. Cells whose runtime kind does not match the
// schema kind (possible only through hand-built fixtures) fall back to a
// Boxed column of whole values, which the vectorized kernels treat as
// dynamically typed. NULLs are a per-column bitmap; payload slots of NULL
// cells are zero and must not be read.

var columnMaterialize = obs.Default.Counter("relation.column.materialize")

// ColumnarThreshold is autoColumnarThreshold for consumers outside the
// package (the SQL executor applies the same worthwhileness rule).
const ColumnarThreshold = autoColumnarThreshold

// autoColumnarThreshold is the row count at or above which the hot kernels
// (Aggregate, HashJoin, the SQL WHERE path) columnarize a row-built relation
// on first use rather than scanning boxed tuples. Below it the one-off
// conversion would cost more than it saves. Kernels always use columns that
// already exist regardless of size.
const autoColumnarThreshold = 256

// Col is one typed column vector. Exactly one payload family is populated:
// Ints (Int/Bool/Date), Floats (Float), Strs (String), or Boxed (cells of
// arbitrary kind, the escape hatch for computed columns and mixed fixtures).
// Nulls is a little-endian bitmap with bit i set when cell i is NULL; a nil
// bitmap means no NULLs.
type Col struct {
	Kind   value.Kind
	Ints   []int64
	Floats []float64
	Strs   []string
	Boxed  []value.Value
	Nulls  []uint64
}

// BitGet reports whether bit i of the bitmap is set. A nil bitmap reads as
// all-clear.
func BitGet(bm []uint64, i int) bool {
	return bm != nil && bm[uint(i)>>6]&(1<<(uint(i)&63)) != 0
}

// BitSet sets bit i of the bitmap.
func BitSet(bm []uint64, i int) { bm[uint(i)>>6] |= 1 << (uint(i) & 63) }

// NewBitmap returns an all-clear bitmap covering n bits.
func NewBitmap(n int) []uint64 { return make([]uint64, (n+63)/64) }

// IsNull reports whether cell i is NULL.
func (c *Col) IsNull(i int) bool {
	if c.Boxed != nil {
		return c.Boxed[i].IsNull()
	}
	if c.Kind == value.KindNull {
		return true
	}
	return BitGet(c.Nulls, i)
}

// Value reconstructs cell i as a boxed value.
func (c *Col) Value(i int) value.Value {
	if c.Boxed != nil {
		return c.Boxed[i]
	}
	if c.Kind == value.KindNull || BitGet(c.Nulls, i) {
		return value.Null
	}
	switch c.Kind {
	case value.KindInt:
		return value.NewInt(c.Ints[i])
	case value.KindFloat:
		return value.NewFloat(c.Floats[i])
	case value.KindString:
		return value.NewString(c.Strs[i])
	case value.KindBool:
		return value.NewBool(c.Ints[i] != 0)
	case value.KindDate:
		return value.NewDateDays(c.Ints[i])
	}
	return value.Null
}

// CellEqual reports whether cells i and j compare equal under value.Equal,
// without boxing either cell. It is the grouping kernels' collision check.
func (c *Col) CellEqual(i, j int) bool {
	if c.Boxed != nil {
		return value.Equal(c.Boxed[i], c.Boxed[j])
	}
	if c.Nulls == nil && c.Kind != value.KindNull {
		switch c.Kind {
		case value.KindFloat:
			a, b := c.Floats[i], c.Floats[j]
			return !(a < b) && !(a > b)
		case value.KindString:
			return c.Strs[i] == c.Strs[j]
		default:
			return c.Ints[i] == c.Ints[j]
		}
	}
	ni, nj := c.IsNull(i), c.IsNull(j)
	if ni || nj {
		return ni == nj // NULL equals NULL (multiset identity)
	}
	switch c.Kind {
	case value.KindFloat:
		// Matches Compare's float ordering: -0 == +0, NaN compares "equal"
		// to everything it is not <or> than — including itself — exactly as
		// MustCompare's default-0 arm behaves.
		a, b := c.Floats[i], c.Floats[j]
		return !(a < b) && !(a > b)
	case value.KindString:
		return c.Strs[i] == c.Strs[j]
	default:
		return c.Ints[i] == c.Ints[j]
	}
}

// HashInto folds cell hashes into the running row hashes hs[lo:hi]:
// hs[k] = mix64(hs[k] ^ Hash(cell at rows[k])) — the value.HashCombine
// discipline, so typed grouping lands in the same buckets (and therefore the
// same first-occurrence numbering) as the boxed hashRow path. rows maps the
// hash lane to the cell index; nil means identity.
func (c *Col) HashInto(hs []uint64, rows []int32, lo, hi int) {
	row := func(k int) int {
		if rows == nil {
			return k
		}
		return int(rows[k])
	}
	if c.Boxed != nil {
		for k := lo; k < hi; k++ {
			hs[k] = value.HashCombine(hs[k], c.Boxed[row(k)])
		}
		return
	}
	if c.Kind == value.KindNull {
		for k := lo; k < hi; k++ {
			hs[k] = value.Mix64(hs[k] ^ value.HashNull())
		}
		return
	}
	// The no-null loops below are the hot grouping path: the branch on the
	// null bitmap and the lane→cell indirection are hoisted out of the
	// per-lane loop so each iteration is a load, a payload hash, and the
	// combine mix.
	switch c.Kind {
	case value.KindInt:
		if c.Nulls == nil {
			if rows == nil {
				for k := lo; k < hi; k++ {
					hs[k] = value.Mix64(hs[k] ^ value.HashInt(c.Ints[k]))
				}
			} else {
				for k := lo; k < hi; k++ {
					hs[k] = value.Mix64(hs[k] ^ value.HashInt(c.Ints[rows[k]]))
				}
			}
			return
		}
		for k := lo; k < hi; k++ {
			i := row(k)
			if BitGet(c.Nulls, i) {
				hs[k] = value.Mix64(hs[k] ^ value.HashNull())
			} else {
				hs[k] = value.Mix64(hs[k] ^ value.HashInt(c.Ints[i]))
			}
		}
	case value.KindFloat:
		if c.Nulls == nil {
			if rows == nil {
				for k := lo; k < hi; k++ {
					hs[k] = value.Mix64(hs[k] ^ value.HashFloat(c.Floats[k]))
				}
			} else {
				for k := lo; k < hi; k++ {
					hs[k] = value.Mix64(hs[k] ^ value.HashFloat(c.Floats[rows[k]]))
				}
			}
			return
		}
		for k := lo; k < hi; k++ {
			i := row(k)
			if BitGet(c.Nulls, i) {
				hs[k] = value.Mix64(hs[k] ^ value.HashNull())
			} else {
				hs[k] = value.Mix64(hs[k] ^ value.HashFloat(c.Floats[i]))
			}
		}
	case value.KindString:
		if c.Nulls == nil {
			if rows == nil {
				for k := lo; k < hi; k++ {
					hs[k] = value.Mix64(hs[k] ^ value.HashString(c.Strs[k]))
				}
			} else {
				for k := lo; k < hi; k++ {
					hs[k] = value.Mix64(hs[k] ^ value.HashString(c.Strs[rows[k]]))
				}
			}
			return
		}
		for k := lo; k < hi; k++ {
			i := row(k)
			if BitGet(c.Nulls, i) {
				hs[k] = value.Mix64(hs[k] ^ value.HashNull())
			} else {
				hs[k] = value.Mix64(hs[k] ^ value.HashString(c.Strs[i]))
			}
		}
	case value.KindBool:
		for k := lo; k < hi; k++ {
			i := row(k)
			if BitGet(c.Nulls, i) {
				hs[k] = value.Mix64(hs[k] ^ value.HashNull())
			} else {
				hs[k] = value.Mix64(hs[k] ^ value.HashBool(c.Ints[i] != 0))
			}
		}
	case value.KindDate:
		for k := lo; k < hi; k++ {
			i := row(k)
			if BitGet(c.Nulls, i) {
				hs[k] = value.Mix64(hs[k] ^ value.HashNull())
			} else {
				hs[k] = value.Mix64(hs[k] ^ value.HashDate(c.Ints[i]))
			}
		}
	}
}

// Gather builds a new column holding cells rows[0..n) of c, in order — the
// columnar materialisation primitive. Payloads copy as raw typed slots; no
// cell is boxed.
func (c *Col) Gather(rows []int32) *Col {
	n := len(rows)
	if c.Boxed != nil {
		vals := make([]value.Value, n)
		for i, ri := range rows {
			vals[i] = c.Boxed[ri]
		}
		return &Col{Boxed: vals}
	}
	if c.Kind == value.KindNull {
		return AllNullCol()
	}
	out := &Col{Kind: c.Kind}
	if c.Nulls != nil {
		for i, ri := range rows {
			if BitGet(c.Nulls, int(ri)) {
				if out.Nulls == nil {
					out.Nulls = NewBitmap(n)
				}
				BitSet(out.Nulls, i)
			}
		}
	}
	switch c.Kind {
	case value.KindFloat:
		out.Floats = make([]float64, n)
		for i, ri := range rows {
			out.Floats[i] = c.Floats[ri]
		}
	case value.KindString:
		out.Strs = make([]string, n)
		for i, ri := range rows {
			out.Strs[i] = c.Strs[ri]
		}
	default: // Int, Bool, Date share the Ints payload
		out.Ints = make([]int64, n)
		for i, ri := range rows {
			out.Ints[i] = c.Ints[ri]
		}
	}
	return out
}

// AllNullCol returns a column whose every cell is NULL.
func AllNullCol() *Col { return &Col{Kind: value.KindNull} }

// NullsFromFilled folds a per-cell filled byte array (non-zero = cell has a
// value) into a null bitmap, or nil when every cell is filled. The byte
// array exists so parallel producers can mark disjoint cells without racing
// on shared bitmap words; the fold chunks on word boundaries, so each word
// is written by exactly one goroutine.
func NullsFromFilled(filled []uint8) []uint64 {
	n := len(filled)
	nulls := NewBitmap(n)
	_ = ForChunks(len(nulls), func(_, lo, hi int) error {
		for w := lo; w < hi; w++ {
			var word uint64
			base := w << 6
			end := base + 64
			if end > n {
				end = n
			}
			for i := base; i < end; i++ {
				if filled[i] == 0 {
					word |= 1 << (uint(i) & 63)
				}
			}
			if word != 0 {
				nulls[w] = word
			}
		}
		return nil
	})
	for _, w := range nulls {
		if w != 0 {
			return nulls
		}
	}
	return nil
}

// MemBytes approximates the column's resident payload size, for cache
// accounting.
func (c *Col) MemBytes() int64 {
	var b int64
	b += int64(8 * len(c.Ints))
	b += int64(8 * len(c.Floats))
	b += int64(16 * len(c.Strs))
	b += int64(40 * len(c.Boxed))
	b += int64(8 * len(c.Nulls))
	return b
}

// BoxedCol wraps a full-value vector as a dynamically typed column. The
// evaluation pipeline uses it to expose computed-column vectors to the
// vectorized expression kernels.
func BoxedCol(vals []value.Value) *Col { return &Col{Boxed: vals} }

// colState is the Relation's lazily attached columnar cache. colBuilt marks
// relations constructed from columns (FromColumns): their columns are the
// source of truth and Rows materializes lazily; for row-built relations the
// inverse holds. Both flags and conversions are guarded by mu; colBuilt and
// nrows are written once at construction and safe to read unlocked.
type colState struct {
	mu        sync.Mutex
	colBuilt  bool // constructed columnar; Rows is derived
	nrows     int  // row count for colBuilt relations
	cols      []*Col
	colsReady bool // cols valid
	rowsReady bool // Rows valid for a colBuilt relation
	fill      func() []*Col // deferred column assembly (FromColumnsLazy)
	ix        *NameIndex
}

// colStateMu guards lazy creation of the per-relation colState pointer, so
// concurrent kernels may columnarize a shared relation safely.
var colStateMu sync.Mutex

func (r *Relation) colState() *colState {
	colStateMu.Lock()
	c := r.col
	if c == nil {
		c = &colState{}
		r.col = c
	}
	colStateMu.Unlock()
	return c
}

// FromColumns constructs a relation directly from typed column vectors; rows
// materialize lazily on first TupleRows call. cols must align with schema
// and every column must cover n cells.
func FromColumns(name string, schema Schema, cols []*Col, n int) *Relation {
	r := &Relation{Name: name, Schema: schema}
	r.col = &colState{colBuilt: true, nrows: n, cols: cols, colsReady: true}
	return r
}

// FromColumnsLazy constructs a column-built relation whose column vectors
// assemble on first access — fill runs at most once, the first time a
// consumer asks for Columns or TupleRows. The evaluation pipeline uses it
// for final assembly (late materialisation): a replay whose result is never
// read — or only paged — does not pay a full n×w gather up front.
func FromColumnsLazy(name string, schema Schema, n int, fill func() []*Col) *Relation {
	r := &Relation{Name: name, Schema: schema}
	r.col = &colState{colBuilt: true, nrows: n, fill: fill}
	return r
}

// ensureColsLocked makes c.cols valid; the caller holds c.mu. Deferred
// assembly (fill) runs here for lazily built relations; row-built relations
// columnarize from r.Rows.
func (r *Relation) ensureColsLocked(c *colState) {
	if c.colsReady {
		return
	}
	if c.fill != nil {
		c.cols = c.fill()
		c.fill = nil
	} else {
		c.cols = columnarize(r.Rows, r.Schema)
		columnMaterialize.Inc()
	}
	c.colsReady = true
}

// Columns returns the relation's typed column vectors, building and caching
// them from the rows (or running the deferred assembly) on first call. The
// returned columns are shared and must be treated as read-only.
func (r *Relation) Columns() []*Col {
	c := r.colState()
	c.mu.Lock()
	defer c.mu.Unlock()
	r.ensureColsLocked(c)
	return c.cols
}

// CachedColumns returns the column vectors if they are already built, nil
// otherwise; it never triggers a conversion. Kernels use it together with
// autoColumnarThreshold to decide whether columnarizing pays off.
func (r *Relation) CachedColumns() []*Col {
	if r.col == nil {
		return nil
	}
	c := r.col
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.colsReady {
		return c.cols
	}
	return nil
}

// TupleRows returns the relation's rows, materializing them from the column
// vectors on first call for column-built relations. Row-built relations
// return Rows directly. All relation operators read rows through this
// accessor so columnar relations flow through the whole API unchanged.
func (r *Relation) TupleRows() []Tuple {
	if r.col == nil || !r.col.colBuilt {
		return r.Rows
	}
	c := r.col
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.rowsReady {
		r.ensureColsLocked(c)
		n, w := c.nrows, len(r.Schema)
		flat := make([]value.Value, n*w)
		rows := make([]Tuple, n)
		for i := 0; i < n; i++ {
			row := flat[i*w : (i+1)*w : (i+1)*w]
			for ci, col := range c.cols {
				row[ci] = col.Value(i)
			}
			rows[i] = row
		}
		r.Rows = rows
		c.rowsReady = true
	}
	return r.Rows
}

// invalidateColumns drops the columnar cache after a row mutation (Append,
// Sort). For column-built relations the caller must have materialized rows
// first; ownership then flips to the row representation.
func (r *Relation) invalidateColumns() {
	if r.col == nil {
		return
	}
	c := r.col
	c.mu.Lock()
	c.colBuilt = false
	c.cols = nil
	c.colsReady = false
	c.rowsReady = false
	c.fill = nil
	c.ix = nil
	c.mu.Unlock()
}

// columnarize builds typed column vectors from materialized rows. A cell
// whose kind disagrees with the schema (hand-built fixtures) demotes its
// column to Boxed.
func columnarize(rows []Tuple, schema Schema) []*Col {
	cols := make([]*Col, len(schema))
	for ci, sc := range schema {
		cols[ci] = buildCol(rows, ci, sc.Kind)
	}
	return cols
}

func buildCol(rows []Tuple, ci int, kind value.Kind) *Col {
	n := len(rows)
	c := &Col{Kind: kind}
	switch kind {
	case value.KindInt, value.KindBool, value.KindDate:
		c.Ints = make([]int64, n)
	case value.KindFloat:
		c.Floats = make([]float64, n)
	case value.KindString:
		c.Strs = make([]string, n)
	default:
		return boxedFromRows(rows, ci)
	}
	for i, t := range rows {
		v := t[ci]
		if v.IsNull() {
			if c.Nulls == nil {
				c.Nulls = NewBitmap(n)
			}
			BitSet(c.Nulls, i)
			continue
		}
		if v.Kind() != kind {
			return boxedFromRows(rows, ci)
		}
		switch kind {
		case value.KindInt:
			c.Ints[i] = v.Int()
		case value.KindFloat:
			c.Floats[i] = v.Float()
		case value.KindString:
			c.Strs[i] = v.Str()
		case value.KindBool:
			if v.Bool() {
				c.Ints[i] = 1
			}
		case value.KindDate:
			c.Ints[i] = v.DateDays()
		}
	}
	return c
}

func boxedFromRows(rows []Tuple, ci int) *Col {
	vals := make([]value.Value, len(rows))
	for i, t := range rows {
		vals[i] = t[ci]
	}
	return &Col{Boxed: vals}
}

// NameIndex is a cached name→position map over a schema, replacing the
// linear case-insensitive scan of Schema.IndexOf on hot paths. exact maps
// each column's spelled name to the position the linear scan would return
// (first case-insensitive match wins, preserving IndexOf's tie-break);
// folded maps the lowercased name for lookups spelled differently.
type NameIndex struct {
	exact  map[string]int
	folded map[string]int
}

// Index builds a NameIndex for the schema. Callers cache it for as long as
// the schema is unchanged (relations invalidate theirs on Append/Sort along
// with the columnar cache; evaluation contexts rebuild per evaluation).
func (s Schema) Index() *NameIndex {
	ix := &NameIndex{
		exact:  make(map[string]int, len(s)),
		folded: make(map[string]int, len(s)),
	}
	for i, c := range s {
		low := strings.ToLower(c.Name)
		if _, ok := ix.folded[low]; !ok {
			ix.folded[low] = i
		}
		if _, ok := ix.exact[c.Name]; !ok {
			// The spelled name resolves to the first case-insensitive match,
			// exactly as the linear scan does.
			ix.exact[c.Name] = ix.folded[low]
		}
	}
	return ix
}

// IndexOf returns the position of the named column (case-insensitive), or
// -1 — Schema.IndexOf through the map.
func (ix *NameIndex) IndexOf(name string) int {
	if i, ok := ix.exact[name]; ok {
		return i
	}
	if i, ok := ix.folded[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// nameIndex returns the relation's cached NameIndex, building it on first
// use; Append and Sort invalidate it together with the columnar cache.
func (r *Relation) nameIndex() *NameIndex {
	c := r.colState()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ix == nil {
		c.ix = r.Schema.Index()
	}
	return c.ix
}

// ColumnIndex resolves a column name through the cached NameIndex.
func (r *Relation) ColumnIndex(name string) int {
	return r.nameIndex().IndexOf(name)
}
