package relation

import (
	"sort"
	"strings"

	"sheetmusiq/internal/value"
)

// Index-vector views. The incremental evaluation pipeline (internal/core)
// represents each stage's output as a surviving-row index vector over the
// base relation plus computed-column vectors, instead of materialised tuple
// slices — snapshots then share backing storage, and a stage that is reused
// from cache costs nothing. The kernels here (grouping, sorting,
// materialisation) read rows through that row-index indirection without ever
// building the full working tuples; when the backing relation's typed column
// vectors are attached (Cols), they hash, compare and gather raw payloads
// without boxing a single cell.

// IndexView is a read-only view of surviving rows over a backing row set:
// view row i is backing row Idx[i]. Column positions below Split read from
// the backing tuples; position Split+j reads the computed-column vector
// Over[j], a typed column indexed by the backing-row index. A nil column
// reads as NULL — the column exists in the working schema but has not been
// filled by any upstream stage, exactly the zero-Value cell of a freshly
// materialised working row.
//
// Cols, when non-nil, carries the backing relation's typed column vectors
// (aligned with positions below Split); the group/sort/materialise kernels
// then run their columnar fast paths. Rows remains valid either way.
type IndexView struct {
	Rows  []Tuple
	Cols  []*Col
	Idx   []int32
	Over  []*Col
	Split int
}

// Len returns the number of surviving rows in the view.
func (v *IndexView) Len() int { return len(v.Idx) }

// At returns the cell at view row i, working-schema position col.
func (v *IndexView) At(i, col int) value.Value {
	ri := v.Idx[i]
	if col < v.Split {
		return v.Rows[ri][col]
	}
	vec := v.Over[col-v.Split]
	if vec == nil {
		return value.Null
	}
	return vec.Value(int(ri))
}

// Gather fills out with view row i's cells at the given working positions.
func (v *IndexView) Gather(i int, cols []int, out []value.Value) {
	for j, c := range cols {
		out[j] = v.At(i, c)
	}
}

// GatherRow fills out (length Split+len(Over)) with view row i's full
// working row: the backing tuple followed by every computed-column cell.
func (v *IndexView) GatherRow(i int, out []value.Value) {
	ri := v.Idx[i]
	copy(out[:v.Split], v.Rows[ri])
	for j, vec := range v.Over {
		if vec == nil {
			out[v.Split+j] = value.Null
		} else {
			out[v.Split+j] = vec.Value(int(ri))
		}
	}
}

// ColAt returns working position col as a typed column indexed by
// backing-row index, or nil when the view has no column vectors attached.
// Computed columns are typed columns already — the backing-row indexing
// lines up because Over vectors are indexed the same way.
func (v *IndexView) ColAt(col int) *Col {
	if v.Cols == nil {
		return nil
	}
	if col < v.Split {
		return v.Cols[col]
	}
	vec := v.Over[col-v.Split]
	if vec == nil {
		return AllNullCol()
	}
	return vec
}

// keyCols resolves every working position to a typed column, or nil if any
// position has none.
func (v *IndexView) keyCols(cols []int) []*Col {
	out := make([]*Col, len(cols))
	for i, c := range cols {
		kc := v.ColAt(c)
		if kc == nil {
			return nil
		}
		out[i] = kc
	}
	return out
}

// GroupView partitions the view's rows by the key columns (working-schema
// positions), assigning dense group IDs in first-occurrence view order —
// GroupRowsOn through the index indirection. An empty column set yields one
// group holding every row (level-1 aggregation). With column vectors
// attached the typed kernel hashes payload arrays directly; otherwise the
// key cells are gathered once, chunk-parallel, into a flat array and grouped
// boxed. Both kernels share hash and equality semantics, so numbering is
// identical.
func GroupView(v *IndexView, cols []int) *Grouping {
	n := v.Len()
	if n == 0 {
		return &Grouping{}
	}
	if len(cols) == 0 {
		return &Grouping{IDs: make([]int32, n), First: []int32{0}}
	}
	if kc := v.keyCols(cols); kc != nil {
		return GroupCols(kc, v.Idx, n)
	}
	k := len(cols)
	flat := make([]value.Value, n*k)
	keyRows := make([]Tuple, n)
	_ = ForChunks(n, func(_, lo, hi int) error {
		for i := lo; i < hi; i++ {
			out := flat[i*k : (i+1)*k : (i+1)*k]
			v.Gather(i, cols, out)
			keyRows[i] = out
		}
		return nil
	})
	return GroupRowsOn(keyRows, nil)
}

// SortView stably orders the view's rows by the key columns and returns the
// reordered index vector as a new slice; the view is not modified. With no
// keys the result is a copy of Idx. With column vectors attached the typed
// comparator runs on raw payloads; the boxed fallback extracts keys first.
func SortView(v *IndexView, cols []int, desc []bool) []int32 {
	n := v.Len()
	out := make([]int32, n)
	if len(cols) == 0 || n < 2 {
		copy(out, v.Idx)
		return out
	}
	var perm []int32
	if kc := v.keyCols(cols); kc != nil {
		perm = SortPermCols(kc, v.Idx, n, desc)
	} else {
		k := len(cols)
		flat := make([]value.Value, n*k)
		_ = ForChunks(n, func(_, lo, hi int) error {
			for i := lo; i < hi; i++ {
				v.Gather(i, cols, flat[i*k:(i+1)*k])
			}
			return nil
		})
		perm = SortPermByKeys(flat, k, desc)
	}
	_ = ForChunks(n, func(_, lo, hi int) error {
		for i := lo; i < hi; i++ {
			out[i] = v.Idx[perm[i]]
		}
		return nil
	})
	return out
}

// CountingSortable reports whether a key column is eligible for the
// grouping-rank counting sort: a typed column whose compare-equal relation
// coincides exactly with the grouping kernels' cell equality. Float columns
// are excluded (MustCompare leaves NaN unordered — it compares 0 against
// values the grouping keeps distinct), as are Boxed columns (cross-kind
// numeric coincidences: Int 3 compares 0 against Float 3.0 but groups
// apart). For Int/Bool/Date/String/all-NULL columns, compare(a,b)==0 holds
// iff the cells land in the same group, which is what makes sorting by
// group rank equivalent to sorting by the keys.
func CountingSortable(c *Col) bool {
	return c != nil && c.Boxed == nil && c.Kind != value.KindFloat
}

// cellCompare three-way compares cells i and j of a non-Boxed typed column
// under value.MustCompare semantics: NULLs first, payload order otherwise.
func cellCompare(c *Col, i, j int) int {
	ni, nj := c.IsNull(i), c.IsNull(j)
	if ni || nj {
		switch {
		case ni && nj:
			return 0
		case ni:
			return -1
		}
		return 1
	}
	switch c.Kind {
	case value.KindString:
		return strings.Compare(c.Strs[i], c.Strs[j])
	case value.KindFloat:
		a, b := c.Floats[i], c.Floats[j]
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	default:
		a, b := c.Ints[i], c.Ints[j]
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
}

// SortViewByGrouping stably orders the view's rows by the key columns using
// a dense grouping computed over exactly those columns: the ng group
// representatives sort by their key cells (ng·log ng boxless compares), and
// one stable counting pass places every row by its group's rank —
// O(n + ng·log ng) against the comparison sort's O(n·log n). Every key
// column must satisfy CountingSortable, which guarantees the result is
// bit-identical to SortView: compare-equal keys always share a group, so
// within a rank bucket the counting pass preserves view order exactly as
// the stable merge does. The spreadsheet pipeline hits this constantly —
// the presentation order after grouping is the grouping basis itself, whose
// dense IDs the aggregate stages have already computed.
func SortViewByGrouping(v *IndexView, keyCols []*Col, desc []bool, gr *Grouping) []int32 {
	n := v.Len()
	out := make([]int32, n)
	if n == 0 {
		return out
	}
	ng := gr.NumGroups()
	order := make([]int32, ng)
	for g := range order {
		order[g] = int32(g)
	}
	sort.SliceStable(order, func(x, y int) bool {
		ra := int(v.Idx[gr.First[order[x]]])
		rb := int(v.Idx[gr.First[order[y]]])
		for k, c := range keyCols {
			cmp := cellCompare(c, ra, rb)
			if desc[k] {
				cmp = -cmp
			}
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	// Stable counting pass: rows fill their group's slice of out in view
	// order, buckets laid out in key-rank order.
	counts := make([]int32, ng)
	for _, g := range gr.IDs {
		counts[g]++
	}
	starts := make([]int32, ng)
	var total int32
	for _, g := range order {
		starts[g] = total
		total += counts[g]
	}
	for i, g := range gr.IDs {
		out[starts[g]] = v.Idx[i]
		starts[g]++
	}
	return out
}

// identityPrefix reports whether cols is exactly [0, 1, ..., len(cols)).
func identityPrefix(cols []int) bool {
	for j, c := range cols {
		if c != j {
			return false
		}
	}
	return true
}

// identityIdx reports whether idx is the identity over all n backing rows.
func identityIdx(idx []int32, n int) bool {
	if len(idx) != n {
		return false
	}
	for i, ri := range idx {
		if int(ri) != i {
			return false
		}
	}
	return true
}

// MaterializeView gathers the given working positions of every view row
// into a fresh relation with the given schema. This is the pipeline's final
// assembly. Tuples and column vectors are immutable throughout the system,
// so identity projections share backing storage instead of copying:
//
//   - Projecting exactly the base columns in their original order shares the
//     surviving base tuples — assembly is one pointer per row.
//   - With column vectors attached the output is column-built; an identity
//     index vector shares the columns themselves, anything else gathers
//     typed payloads. Tuple rows materialise only if a row consumer asks.
//   - The boxed fallback builds flat-backed rows chunk-parallel, as before.
func MaterializeView(v *IndexView, cols []int, name string, schema Schema) *Relation {
	n, w := v.Len(), len(cols)
	if v.Rows != nil && w == v.Split && identityPrefix(cols) {
		rows := make([]Tuple, n)
		for i, ri := range v.Idx {
			rows[i] = v.Rows[ri]
		}
		return &Relation{Name: name, Schema: schema, Rows: rows}
	}
	if v.Cols != nil {
		src := make([]*Col, w)
		for j, c := range cols {
			src[j] = v.ColAt(c)
		}
		if identityIdx(v.Idx, len(v.Rows)) {
			return FromColumns(name, schema, src, n)
		}
		// Late materialisation: the gather is the one full copy assembly
		// would make, and most replays never read the assembled table (group
		// building and re-evaluation read the view; rendering pages). Defer
		// it to first access — the view's index and column vectors are
		// immutable snapshots, so the closure stays valid.
		idx := v.Idx
		return FromColumnsLazy(name, schema, n, func() []*Col {
			out := make([]*Col, len(src))
			for j, c := range src {
				out[j] = c.Gather(idx)
			}
			return out
		})
	}
	flat := make([]value.Value, n*w)
	rows := make([]Tuple, n)
	_ = ForChunks(n, func(_, lo, hi int) error {
		for i := lo; i < hi; i++ {
			out := flat[i*w : (i+1)*w : (i+1)*w]
			v.Gather(i, cols, out)
			rows[i] = out
		}
		return nil
	})
	return &Relation{Name: name, Schema: schema, Rows: rows}
}
