package relation

import "sheetmusiq/internal/value"

// Index-vector views. The incremental evaluation pipeline (internal/core)
// represents each stage's output as a surviving-row index vector over the
// base relation plus computed-column vectors, instead of materialised tuple
// slices — snapshots then share backing storage, and a stage that is reused
// from cache costs nothing. The kernels here (grouping, sorting,
// materialisation) read rows through that row-index indirection without ever
// building the full working tuples; when the backing relation's typed column
// vectors are attached (Cols), they hash, compare and gather raw payloads
// without boxing a single cell.

// IndexView is a read-only view of surviving rows over a backing row set:
// view row i is backing row Idx[i]. Column positions below Split read from
// the backing tuples; position Split+j reads the computed-column vector
// Over[j], indexed by the backing-row index. A nil vector reads as NULL —
// the column exists in the working schema but has not been filled by any
// upstream stage, exactly the zero-Value cell of a freshly materialised
// working row.
//
// Cols, when non-nil, carries the backing relation's typed column vectors
// (aligned with positions below Split); the group/sort/materialise kernels
// then run their columnar fast paths. Rows remains valid either way.
type IndexView struct {
	Rows  []Tuple
	Cols  []*Col
	Idx   []int32
	Over  [][]value.Value
	Split int
}

// Len returns the number of surviving rows in the view.
func (v *IndexView) Len() int { return len(v.Idx) }

// At returns the cell at view row i, working-schema position col.
func (v *IndexView) At(i, col int) value.Value {
	ri := v.Idx[i]
	if col < v.Split {
		return v.Rows[ri][col]
	}
	vec := v.Over[col-v.Split]
	if vec == nil {
		return value.Null
	}
	return vec[ri]
}

// Gather fills out with view row i's cells at the given working positions.
func (v *IndexView) Gather(i int, cols []int, out []value.Value) {
	for j, c := range cols {
		out[j] = v.At(i, c)
	}
}

// GatherRow fills out (length Split+len(Over)) with view row i's full
// working row: the backing tuple followed by every computed-column cell.
func (v *IndexView) GatherRow(i int, out []value.Value) {
	ri := v.Idx[i]
	copy(out[:v.Split], v.Rows[ri])
	for j, vec := range v.Over {
		if vec == nil {
			out[v.Split+j] = value.Null
		} else {
			out[v.Split+j] = vec[ri]
		}
	}
}

// ColAt returns working position col as a typed column indexed by
// backing-row index, or nil when the view has no column vectors attached.
// Computed columns wrap their value vectors as dynamically typed columns —
// the backing-row indexing lines up because Over vectors are indexed the
// same way.
func (v *IndexView) ColAt(col int) *Col {
	if v.Cols == nil {
		return nil
	}
	if col < v.Split {
		return v.Cols[col]
	}
	vec := v.Over[col-v.Split]
	if vec == nil {
		return AllNullCol()
	}
	return BoxedCol(vec)
}

// keyCols resolves every working position to a typed column, or nil if any
// position has none.
func (v *IndexView) keyCols(cols []int) []*Col {
	out := make([]*Col, len(cols))
	for i, c := range cols {
		kc := v.ColAt(c)
		if kc == nil {
			return nil
		}
		out[i] = kc
	}
	return out
}

// GroupView partitions the view's rows by the key columns (working-schema
// positions), assigning dense group IDs in first-occurrence view order —
// GroupRowsOn through the index indirection. An empty column set yields one
// group holding every row (level-1 aggregation). With column vectors
// attached the typed kernel hashes payload arrays directly; otherwise the
// key cells are gathered once, chunk-parallel, into a flat array and grouped
// boxed. Both kernels share hash and equality semantics, so numbering is
// identical.
func GroupView(v *IndexView, cols []int) *Grouping {
	n := v.Len()
	if n == 0 {
		return &Grouping{}
	}
	if len(cols) == 0 {
		return &Grouping{IDs: make([]int32, n), First: []int32{0}}
	}
	if kc := v.keyCols(cols); kc != nil {
		return GroupCols(kc, v.Idx, n)
	}
	k := len(cols)
	flat := make([]value.Value, n*k)
	keyRows := make([]Tuple, n)
	_ = ForChunks(n, func(_, lo, hi int) error {
		for i := lo; i < hi; i++ {
			out := flat[i*k : (i+1)*k : (i+1)*k]
			v.Gather(i, cols, out)
			keyRows[i] = out
		}
		return nil
	})
	return GroupRowsOn(keyRows, nil)
}

// SortView stably orders the view's rows by the key columns and returns the
// reordered index vector as a new slice; the view is not modified. With no
// keys the result is a copy of Idx. With column vectors attached the typed
// comparator runs on raw payloads; the boxed fallback extracts keys first.
func SortView(v *IndexView, cols []int, desc []bool) []int32 {
	n := v.Len()
	out := make([]int32, n)
	if len(cols) == 0 || n < 2 {
		copy(out, v.Idx)
		return out
	}
	var perm []int32
	if kc := v.keyCols(cols); kc != nil {
		perm = SortPermCols(kc, v.Idx, n, desc)
	} else {
		k := len(cols)
		flat := make([]value.Value, n*k)
		_ = ForChunks(n, func(_, lo, hi int) error {
			for i := lo; i < hi; i++ {
				v.Gather(i, cols, flat[i*k:(i+1)*k])
			}
			return nil
		})
		perm = SortPermByKeys(flat, k, desc)
	}
	_ = ForChunks(n, func(_, lo, hi int) error {
		for i := lo; i < hi; i++ {
			out[i] = v.Idx[perm[i]]
		}
		return nil
	})
	return out
}

// identityPrefix reports whether cols is exactly [0, 1, ..., len(cols)).
func identityPrefix(cols []int) bool {
	for j, c := range cols {
		if c != j {
			return false
		}
	}
	return true
}

// identityIdx reports whether idx is the identity over all n backing rows.
func identityIdx(idx []int32, n int) bool {
	if len(idx) != n {
		return false
	}
	for i, ri := range idx {
		if int(ri) != i {
			return false
		}
	}
	return true
}

// MaterializeView gathers the given working positions of every view row
// into a fresh relation with the given schema. This is the pipeline's final
// assembly. Tuples and column vectors are immutable throughout the system,
// so identity projections share backing storage instead of copying:
//
//   - Projecting exactly the base columns in their original order shares the
//     surviving base tuples — assembly is one pointer per row.
//   - With column vectors attached the output is column-built; an identity
//     index vector shares the columns themselves, anything else gathers
//     typed payloads. Tuple rows materialise only if a row consumer asks.
//   - The boxed fallback builds flat-backed rows chunk-parallel, as before.
func MaterializeView(v *IndexView, cols []int, name string, schema Schema) *Relation {
	n, w := v.Len(), len(cols)
	if v.Rows != nil && w == v.Split && identityPrefix(cols) {
		rows := make([]Tuple, n)
		for i, ri := range v.Idx {
			rows[i] = v.Rows[ri]
		}
		return &Relation{Name: name, Schema: schema, Rows: rows}
	}
	if v.Cols != nil {
		ident := identityIdx(v.Idx, len(v.Rows))
		out := make([]*Col, w)
		for j, c := range cols {
			src := v.ColAt(c)
			if !ident {
				src = src.Gather(v.Idx)
			}
			out[j] = src
		}
		return FromColumns(name, schema, out, n)
	}
	flat := make([]value.Value, n*w)
	rows := make([]Tuple, n)
	_ = ForChunks(n, func(_, lo, hi int) error {
		for i := lo; i < hi; i++ {
			out := flat[i*w : (i+1)*w : (i+1)*w]
			v.Gather(i, cols, out)
			rows[i] = out
		}
		return nil
	})
	return &Relation{Name: name, Schema: schema, Rows: rows}
}
