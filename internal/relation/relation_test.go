package relation

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"sheetmusiq/internal/value"
)

func carSchema() Schema {
	return Schema{
		{Name: "ID", Kind: value.KindInt},
		{Name: "Model", Kind: value.KindString},
		{Name: "Price", Kind: value.KindInt},
		{Name: "Year", Kind: value.KindInt},
		{Name: "Mileage", Kind: value.KindInt},
		{Name: "Condition", Kind: value.KindString},
	}
}

// cars returns the paper's Table I sample used-car relation.
func cars() *Relation {
	r := New("cars", carSchema())
	add := func(id int64, model string, price, year, mileage int64, cond string) {
		r.MustAppend(value.NewInt(id), value.NewString(model), value.NewInt(price),
			value.NewInt(year), value.NewInt(mileage), value.NewString(cond))
	}
	add(304, "Jetta", 14500, 2005, 76000, "Good")
	add(872, "Jetta", 15000, 2005, 50000, "Excellent")
	add(901, "Jetta", 16000, 2005, 40000, "Excellent")
	add(423, "Jetta", 17000, 2006, 42000, "Good")
	add(723, "Jetta", 17500, 2006, 39000, "Excellent")
	add(725, "Jetta", 18000, 2006, 30000, "Excellent")
	add(132, "Civic", 13500, 2005, 86000, "Good")
	add(879, "Civic", 15000, 2006, 68000, "Good")
	add(322, "Civic", 16000, 2006, 73000, "Good")
	return r
}

func TestSchemaIndexOfCaseInsensitive(t *testing.T) {
	s := carSchema()
	if s.IndexOf("model") != 1 || s.IndexOf("MODEL") != 1 {
		t.Error("IndexOf should be case-insensitive")
	}
	if s.IndexOf("nope") != -1 {
		t.Error("IndexOf should return -1 for missing columns")
	}
}

func TestAppendChecksArityAndKind(t *testing.T) {
	r := New("t", Schema{{Name: "a", Kind: value.KindInt}})
	if err := r.Append(Tuple{value.NewInt(1), value.NewInt(2)}); err == nil {
		t.Error("arity mismatch must error")
	}
	if err := r.Append(Tuple{value.NewString("x")}); err == nil {
		t.Error("kind mismatch must error")
	}
	if err := r.Append(Tuple{value.Null}); err != nil {
		t.Errorf("NULL must be accepted in any column: %v", err)
	}
}

func TestAppendPromotesIntToFloat(t *testing.T) {
	r := New("t", Schema{{Name: "a", Kind: value.KindFloat}})
	if err := r.Append(Tuple{value.NewInt(3)}); err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].Kind() != value.KindFloat {
		t.Error("int should be promoted to float on append")
	}
}

func TestSelect(t *testing.T) {
	r := cars()
	year := r.Schema.IndexOf("Year")
	got, err := r.Select(func(t Tuple) (bool, error) { return t[year].Int() == 2005, nil })
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 4 {
		t.Errorf("2005 cars = %d, want 4", got.Len())
	}
}

func TestProjectKeepsDuplicates(t *testing.T) {
	r := cars()
	got, err := r.Project([]string{"Model"})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 9 {
		t.Errorf("projection must not dedupe: %d rows", got.Len())
	}
	if len(got.Schema) != 1 || got.Schema[0].Name != "Model" {
		t.Errorf("projected schema = %v", got.Schema)
	}
}

func TestProjectMissingColumn(t *testing.T) {
	if _, err := cars().Project([]string{"Nope"}); err == nil {
		t.Error("projecting a missing column must error")
	}
}

func TestDistinct(t *testing.T) {
	r := cars()
	models, _ := r.Project([]string{"Model"})
	d := models.Distinct()
	if d.Len() != 2 {
		t.Errorf("distinct models = %d, want 2", d.Len())
	}
	// First-appearance order: Jetta then Civic.
	if d.Rows[0][0].Str() != "Jetta" || d.Rows[1][0].Str() != "Civic" {
		t.Errorf("distinct order = %v", d.Rows)
	}
}

func TestProduct(t *testing.T) {
	a := New("a", Schema{{Name: "x", Kind: value.KindInt}})
	a.MustAppend(value.NewInt(1))
	a.MustAppend(value.NewInt(2))
	b := New("b", Schema{{Name: "x", Kind: value.KindInt}, {Name: "y", Kind: value.KindString}})
	b.MustAppend(value.NewInt(10), value.NewString("p"))
	p := a.Product(b)
	if p.Len() != 2 {
		t.Errorf("product rows = %d, want 2", p.Len())
	}
	if p.Schema[1].Name != "b_x" {
		t.Errorf("colliding column should be prefixed, got %q", p.Schema[1].Name)
	}
	if p.Schema[2].Name != "y" {
		t.Errorf("non-colliding column should keep its name, got %q", p.Schema[2].Name)
	}
}

func TestUnionDifferenceMultiset(t *testing.T) {
	s := Schema{{Name: "a", Kind: value.KindInt}}
	x := New("x", s)
	x.MustAppend(value.NewInt(1))
	x.MustAppend(value.NewInt(1))
	y := New("y", s)
	y.MustAppend(value.NewInt(1))

	u, err := x.Union(y)
	if err != nil || u.Len() != 3 {
		t.Fatalf("union len = %d, %v; want 3 (multiset)", u.Len(), err)
	}
	d, err := x.Difference(y)
	if err != nil || d.Len() != 1 {
		t.Fatalf("difference {1,1}-{1} len = %d, %v; want 1", d.Len(), err)
	}
	d2, _ := y.Difference(x)
	if d2.Len() != 0 {
		t.Fatalf("difference {1}-{1,1} len = %d; want 0", d2.Len())
	}
}

func TestUnionSchemaMismatch(t *testing.T) {
	x := New("x", Schema{{Name: "a", Kind: value.KindInt}})
	y := New("y", Schema{{Name: "b", Kind: value.KindInt}})
	if _, err := x.Union(y); err == nil {
		t.Error("union with mismatched schemas must error")
	}
	if _, err := x.Difference(y); err == nil {
		t.Error("difference with mismatched schemas must error")
	}
}

func TestJoin(t *testing.T) {
	a := New("a", Schema{{Name: "id", Kind: value.KindInt}})
	a.MustAppend(value.NewInt(1))
	a.MustAppend(value.NewInt(2))
	b := New("b", Schema{{Name: "ref", Kind: value.KindInt}, {Name: "v", Kind: value.KindString}})
	b.MustAppend(value.NewInt(2), value.NewString("two"))
	b.MustAppend(value.NewInt(3), value.NewString("three"))
	j, err := a.Join(b, func(t Tuple) (bool, error) {
		return value.Equal(t[0], t[1]), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 1 || j.Rows[0][2].Str() != "two" {
		t.Errorf("join result = %v", j.Rows)
	}
}

func TestSortStableMultiKey(t *testing.T) {
	r := cars()
	if err := r.Sort([]SortKey{{Column: "Model", Desc: true}, {Column: "Price"}}); err != nil {
		t.Fatal(err)
	}
	// Jettas first (desc model), cheapest Jetta first.
	if r.Rows[0][1].Str() != "Jetta" || r.Rows[0][0].Int() != 304 {
		t.Errorf("first row = %v", r.Rows[0])
	}
	if r.Rows[6][1].Str() != "Civic" || r.Rows[6][2].Int() != 13500 {
		t.Errorf("first civic = %v", r.Rows[6])
	}
}

func TestSortUnknownColumn(t *testing.T) {
	if err := cars().Sort([]SortKey{{Column: "Nope"}}); err == nil {
		t.Error("sorting on a missing column must error")
	}
}

func TestSortNullsFirst(t *testing.T) {
	r := New("t", Schema{{Name: "a", Kind: value.KindInt}})
	r.MustAppend(value.NewInt(5))
	r.MustAppend(value.Null)
	if err := r.Sort([]SortKey{{Column: "a"}}); err != nil {
		t.Fatal(err)
	}
	if !r.Rows[0][0].IsNull() {
		t.Error("NULL must sort first ascending")
	}
}

func TestGroupBy(t *testing.T) {
	keys, groups, err := cars().GroupBy([]string{"Model", "Year"})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 4 {
		t.Fatalf("groups = %d, want 4", len(groups))
	}
	// First group in appearance order is (Jetta, 2005) with 3 rows.
	if keys[0][0].Str() != "Jetta" || keys[0][1].Int() != 2005 || len(groups[0]) != 3 {
		t.Errorf("first group = %v with %d rows", keys[0], len(groups[0]))
	}
}

func TestAggregateAvgPerGroup(t *testing.T) {
	// Table III's numbers: avg price per (Model, Year).
	got, err := cars().Aggregate([]string{"Model", "Year"}, AggAvg, "Price")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"Jetta|2005": 15166.666666666666,
		"Jetta|2006": 17500,
		"Civic|2005": 13500,
		"Civic|2006": 15500,
	}
	if got.Len() != 4 {
		t.Fatalf("rows = %d", got.Len())
	}
	for _, row := range got.Rows {
		k := row[0].Str() + "|" + row[1].String()
		if row[2].Float() != want[k] {
			t.Errorf("avg %s = %v, want %v", k, row[2], want[k])
		}
	}
}

func TestAggregateWholeRelation(t *testing.T) {
	got, err := cars().Aggregate(nil, AggCount, "ID")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || got.Rows[0][0].Int() != 9 {
		t.Errorf("count = %v", got.Rows)
	}
}

func TestAggregateEmptyRelation(t *testing.T) {
	empty := New("e", carSchema())
	got, err := empty.Aggregate(nil, AggCount, "ID")
	if err != nil || got.Len() != 1 || got.Rows[0][0].Int() != 0 {
		t.Errorf("count over empty = %v, %v", got, err)
	}
	s, err := empty.Aggregate(nil, AggSum, "Price")
	if err != nil || !s.Rows[0][0].IsNull() {
		t.Errorf("sum over empty must be NULL, got %v", s.Rows[0])
	}
}

func TestAggregateFunctions(t *testing.T) {
	r := New("t", Schema{{Name: "v", Kind: value.KindInt}})
	for _, v := range []int64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.MustAppend(value.NewInt(v))
	}
	check := func(fn AggFunc, want value.Value) {
		t.Helper()
		got, err := r.Aggregate(nil, fn, "v")
		if err != nil {
			t.Fatalf("%s: %v", fn, err)
		}
		g := got.Rows[0][0]
		if fn == AggStdDev {
			if diff := g.Float() - want.Float(); diff > 1e-9 || diff < -1e-9 {
				t.Errorf("%s = %v, want %v", fn, g, want)
			}
			return
		}
		if !value.Equal(g, want) {
			t.Errorf("%s = %v, want %v", fn, g, want)
		}
	}
	check(AggSum, value.NewInt(40))
	check(AggAvg, value.NewFloat(5))
	check(AggMin, value.NewInt(2))
	check(AggMax, value.NewInt(9))
	check(AggCount, value.NewInt(8))
	check(AggCountDistinct, value.NewInt(5))
	check(AggStdDev, value.NewFloat(2)) // classic population-stddev example
}

func TestAggregateNullHandling(t *testing.T) {
	r := New("t", Schema{{Name: "v", Kind: value.KindInt}})
	r.MustAppend(value.NewInt(10))
	r.MustAppend(value.Null)
	c, _ := r.Aggregate(nil, AggCount, "v")
	if c.Rows[0][0].Int() != 2 {
		t.Error("COUNT counts tuples including NULL (COUNT(*) semantics)")
	}
	a, _ := r.Aggregate(nil, AggAvg, "v")
	if a.Rows[0][0].Float() != 10 {
		t.Error("AVG must skip NULLs")
	}
}

func TestParseAggFunc(t *testing.T) {
	if f, err := ParseAggFunc("avg"); err != nil || f != AggAvg {
		t.Errorf("ParseAggFunc(avg) = %v, %v", f, err)
	}
	if _, err := ParseAggFunc("median"); err == nil {
		t.Error("unknown aggregate must error")
	}
}

func TestAggregateNonNumericSum(t *testing.T) {
	if _, err := cars().Aggregate(nil, AggSum, "Model"); err == nil {
		t.Error("SUM over TEXT must error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := cars()
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("cars", bytes.NewReader(buf.Bytes()), r.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != r.Len() {
		t.Fatalf("round trip rows = %d", back.Len())
	}
	for i := range r.Rows {
		if r.Rows[i].Key() != back.Rows[i].Key() {
			t.Errorf("row %d mismatch: %v vs %v", i, r.Rows[i], back.Rows[i])
		}
	}
}

func TestCSVInferSchema(t *testing.T) {
	src := "id,name,price,when\n1,ann,2.5,2005-01-02\n"
	r, err := ReadCSV("t", strings.NewReader(src), nil)
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := []value.Kind{value.KindInt, value.KindString, value.KindFloat, value.KindDate}
	for i, k := range wantKinds {
		if r.Schema[i].Kind != k {
			t.Errorf("column %d kind = %v, want %v", i, r.Schema[i].Kind, k)
		}
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV("t", strings.NewReader("a\nx,y\n"), nil); err == nil {
		t.Error("ragged csv must error")
	}
	schema := Schema{{Name: "a", Kind: value.KindInt}}
	if _, err := ReadCSV("t", strings.NewReader("a\nnotanint\n"), schema); err == nil {
		t.Error("unparseable cell must error")
	}
}

func TestStringRendering(t *testing.T) {
	out := cars().String()
	if !strings.Contains(out, "Jetta") || !strings.Contains(out, "Condition") {
		t.Errorf("table rendering missing content:\n%s", out)
	}
}

// Property: union then difference restores the original multiset cardinality.
func TestQuickUnionDifference(t *testing.T) {
	f := func(xs, ys []int8) bool {
		s := Schema{{Name: "a", Kind: value.KindInt}}
		x := New("x", s)
		for _, v := range xs {
			x.MustAppend(value.NewInt(int64(v)))
		}
		y := New("y", s)
		for _, v := range ys {
			y.MustAppend(value.NewInt(int64(v)))
		}
		u, err := x.Union(y)
		if err != nil {
			return false
		}
		d, err := u.Difference(y)
		if err != nil {
			return false
		}
		if d.Len() != x.Len() {
			return false
		}
		// Same multiset: compare sorted keys.
		ks1 := make([]string, 0, x.Len())
		for _, t := range x.Rows {
			ks1 = append(ks1, t.Key())
		}
		ks2 := make([]string, 0, d.Len())
		for _, t := range d.Rows {
			ks2 = append(ks2, t.Key())
		}
		m := map[string]int{}
		for _, k := range ks1 {
			m[k]++
		}
		for _, k := range ks2 {
			m[k]--
		}
		for _, c := range m {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Distinct is idempotent and never increases cardinality.
func TestQuickDistinctIdempotent(t *testing.T) {
	f := func(xs []int8) bool {
		s := Schema{{Name: "a", Kind: value.KindInt}}
		r := New("r", s)
		for _, v := range xs {
			r.MustAppend(value.NewInt(int64(v)))
		}
		d1 := r.Distinct()
		d2 := d1.Distinct()
		return d1.Len() <= r.Len() && d1.Len() == d2.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: sorting preserves the multiset of rows.
func TestQuickSortPreservesRows(t *testing.T) {
	f := func(xs []int16) bool {
		s := Schema{{Name: "a", Kind: value.KindInt}}
		r := New("r", s)
		for _, v := range xs {
			r.MustAppend(value.NewInt(int64(v)))
		}
		sorted, err := r.SortedClone([]SortKey{{Column: "a"}})
		if err != nil || sorted.Len() != r.Len() {
			return false
		}
		for i := 1; i < sorted.Len(); i++ {
			if value.MustCompare(sorted.Rows[i-1][0], sorted.Rows[i][0]) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDistinctOn(t *testing.T) {
	r := cars()
	idx, err := r.ColumnIndexes([]string{"Model", "Year"})
	if err != nil {
		t.Fatal(err)
	}
	d := r.DistinctOn(idx)
	if d.Len() != 4 {
		t.Fatalf("distinct (Model, Year) rows = %d, want 4", d.Len())
	}
	// First occurrence wins: the (Jetta, 2005) survivor is ID 304.
	if d.Rows[0][0].Int() != 304 {
		t.Fatalf("first survivor = %v", d.Rows[0])
	}
	// Schema is unchanged (unlike Project).
	if len(d.Schema) != 6 {
		t.Fatalf("schema = %v", d.Schema)
	}
}

func TestSortedCloneLeavesOriginal(t *testing.T) {
	r := cars()
	firstBefore := r.Rows[0][0].Int()
	sorted, err := r.SortedClone([]SortKey{{Column: "Price", Desc: true}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].Int() != firstBefore {
		t.Fatal("SortedClone mutated the receiver")
	}
	if sorted.Rows[0][2].Int() != 18000 {
		t.Fatalf("sorted first price = %v", sorted.Rows[0][2])
	}
}

func TestAccumulatorEdgeCases(t *testing.T) {
	// STDDEV of a single value is 0 (population convention).
	acc := NewAccumulator(AggStdDev)
	if err := acc.Add(value.NewInt(5)); err != nil {
		t.Fatal(err)
	}
	if got := acc.Result(); got.Float() != 0 {
		t.Fatalf("stddev of one value = %v", got)
	}
	// MIN/MAX over only NULLs is NULL.
	for _, fn := range []AggFunc{AggMin, AggMax, AggAvg, AggSum, AggStdDev} {
		acc := NewAccumulator(fn)
		if err := acc.Add(value.Null); err != nil {
			t.Fatal(err)
		}
		if got := acc.Result(); !got.IsNull() {
			t.Fatalf("%s over NULLs = %v, want NULL", fn, got)
		}
	}
	// SUM over mixed int and float promotes to float.
	acc = NewAccumulator(AggSum)
	if err := acc.Add(value.NewInt(1)); err != nil {
		t.Fatal(err)
	}
	if err := acc.Add(value.NewFloat(2.5)); err != nil {
		t.Fatal(err)
	}
	if got := acc.Result(); got.Kind() != value.KindFloat || got.Float() != 3.5 {
		t.Fatalf("mixed SUM = %v", got)
	}
	// MIN over strings works (lexical).
	acc = NewAccumulator(AggMin)
	for _, s := range []string{"jetta", "civic", "accord"} {
		if err := acc.Add(value.NewString(s)); err != nil {
			t.Fatal(err)
		}
	}
	if got := acc.Result(); got.Str() != "accord" {
		t.Fatalf("string MIN = %v", got)
	}
}

func TestTupleKeyOn(t *testing.T) {
	r := cars()
	idx, _ := r.ColumnIndexes([]string{"Model"})
	if r.Rows[0].KeyOn(idx) != r.Rows[1].KeyOn(idx) {
		t.Fatal("two Jettas must share the Model key")
	}
	if r.Rows[0].KeyOn(idx) == r.Rows[6].KeyOn(idx) {
		t.Fatal("Jetta and Civic must not share the Model key")
	}
}
