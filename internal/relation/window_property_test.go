package relation

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"sheetmusiq/internal/value"
)

// Property tests for the window kernel: WindowEval must agree bit for bit
// with a naive one-frame-per-row recompute over random specs (NULLs, -0,
// NaN arguments, heavy order-key ties, empty frames, unused partition IDs),
// and the cross-partition parallel fan-out must be invisible in the output.

// refWindowEval is the deliberately naive reference: stable-sort the lanes
// by (partition, keys) with sort.SliceStable, then recompute every row's
// rank or frame from scratch, feeding accumulators in ascending sorted
// position exactly as a sequential scan would.
func refWindowEval(t *testing.T, spec WindowSpec, in WindowInput) []value.Value {
	t.Helper()
	n := in.N
	res := make([]value.Value, n)
	pid := func(l int) int32 {
		if in.Parts == nil {
			return 0
		}
		return in.Parts.IDs[l]
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		a, b := order[x], order[y]
		if pid(a) != pid(b) {
			return pid(a) < pid(b)
		}
		for j := 0; j < in.K; j++ {
			c := value.MustCompare(in.Keys[a*in.K+j], in.Keys[b*in.K+j])
			if c == 0 {
				continue
			}
			if in.Desc[j] {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	peers := func(a, b int) bool {
		for j := 0; j < in.K; j++ {
			if value.MustCompare(in.Keys[a*in.K+j], in.Keys[b*in.K+j]) != 0 {
				return false
			}
		}
		return true
	}
	argAt := func(l int) value.Value {
		if in.Arg == nil {
			return value.NewInt(1)
		}
		return in.Arg[l]
	}
	accumulate := func(s, e int) value.Value { // inclusive sorted positions
		acc := NewAccumulator(spec.Func.AggFunc())
		for j := s; j <= e; j++ {
			if err := acc.Add(argAt(order[j])); err != nil {
				t.Fatalf("reference accumulate: %v", err)
			}
		}
		return acc.Result()
	}
	for lo := 0; lo < n; {
		hi := lo + 1
		for hi < n && pid(order[hi]) == pid(order[lo]) {
			hi++
		}
		for i := lo; i < hi; i++ {
			switch spec.Func {
			case WinRowNumber:
				res[order[i]] = value.NewInt(int64(i - lo + 1))
			case WinRank, WinDenseRank:
				first := lo
				for !peers(order[first], order[i]) {
					first++
				}
				if spec.Func == WinRank {
					res[order[i]] = value.NewInt(int64(first - lo + 1))
				} else {
					dense := int64(1)
					for j := lo + 1; j <= first; j++ {
						if !peers(order[j-1], order[j]) {
							dense++
						}
					}
					res[order[i]] = value.NewInt(dense)
				}
			default:
				var s, e int
				switch {
				case spec.Frame == nil && in.K == 0:
					s, e = lo, hi-1
				case spec.Frame == nil:
					s = lo
					e = i
					for e+1 < hi && peers(order[e+1], order[i]) {
						e++
					}
				default:
					bound := func(b FrameBound, at int) int {
						switch b.Kind {
						case BoundUnboundedPreceding:
							return lo
						case BoundPreceding:
							return at - int(b.Offset)
						case BoundCurrentRow:
							return at
						case BoundFollowing:
							return at + int(b.Offset)
						}
						return hi - 1
					}
					s, e = bound(spec.Frame.Lo, i), bound(spec.Frame.Hi, i)
					if s < lo {
						s = lo
					}
					if e > hi-1 {
						e = hi - 1
					}
				}
				res[order[i]] = accumulate(s, e)
			}
		}
		lo = hi
	}
	return res
}

// bitEqual is stricter than value.Equal: floats must match to the bit, so
// -0 vs +0 and differing NaN payloads count as divergence.
func bitEqual(a, b value.Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	if a.Kind() == value.KindFloat {
		return math.Float64bits(a.Float()) == math.Float64bits(b.Float())
	}
	return value.Equal(a, b)
}

// randWindowInput builds a random lane set: numeric arguments with NULLs,
// -0 and NaN; key columns with small tied domains; partition IDs drawn from
// a range wider than what is used, so some IDs never occur.
func randWindowInput(rng *rand.Rand, n, k int, withParts bool) WindowInput {
	in := WindowInput{N: n, K: k}
	floats := []float64{0, math.Copysign(0, -1), 1.5, -3.25, 7, math.NaN(), 1e15, -2.5}
	in.Arg = make([]value.Value, n)
	for i := range in.Arg {
		switch rng.Intn(6) {
		case 0:
			in.Arg[i] = value.Null
		case 1, 2:
			in.Arg[i] = value.NewFloat(floats[rng.Intn(len(floats))])
		default:
			in.Arg[i] = value.NewInt(int64(rng.Intn(7) - 3))
		}
	}
	if withParts {
		ids := make([]int32, n)
		width := 1 + rng.Intn(6)
		for i := range ids {
			ids[i] = int32(rng.Intn(width) * 2) // even IDs only: odd ones are empty
		}
		in.Parts = &Grouping{IDs: ids}
	}
	if k > 0 {
		in.Keys = make([]value.Value, n*k)
		in.Desc = make([]bool, k)
		kinds := make([]int, k)
		for j := 0; j < k; j++ {
			in.Desc[j] = rng.Intn(2) == 0
			kinds[j] = rng.Intn(3)
		}
		strs := []string{"a", "b", "bb", "z"}
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				if rng.Intn(8) == 0 {
					in.Keys[i*k+j] = value.Null
					continue
				}
				switch kinds[j] {
				case 0:
					in.Keys[i*k+j] = value.NewInt(int64(rng.Intn(4)))
				case 1:
					// 0 and -0 compare equal: deliberate peer ties.
					in.Keys[i*k+j] = value.NewFloat([]float64{0, math.Copysign(0, -1), 2.5}[rng.Intn(3)])
				default:
					in.Keys[i*k+j] = value.NewString(strs[rng.Intn(len(strs))])
				}
			}
		}
	}
	return in
}

func randFrame(rng *rand.Rand) *Frame {
	lows := []FrameBound{
		{Kind: BoundUnboundedPreceding},
		{Kind: BoundPreceding, Offset: int64(rng.Intn(4))},
		{Kind: BoundCurrentRow},
		{Kind: BoundFollowing, Offset: int64(rng.Intn(3))},
	}
	his := []FrameBound{
		{Kind: BoundPreceding, Offset: int64(rng.Intn(3))},
		{Kind: BoundCurrentRow},
		{Kind: BoundFollowing, Offset: int64(rng.Intn(4))},
		{Kind: BoundUnboundedFollowing},
	}
	return &Frame{Lo: lows[rng.Intn(len(lows))], Hi: his[rng.Intn(len(his))]}
}

var allWindowFuncs = []WindowFunc{
	WinRank, WinDenseRank, WinRowNumber,
	WinSum, WinAvg, WinMin, WinMax, WinCount,
}

// TestWindowEvalMatchesNaiveReference: the kernel and the per-row recompute
// agree bit for bit across random functions, partitions, orderings and
// frames — including empty inputs, empty frames and all-NULL arguments.
func TestWindowEvalMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 150; trial++ {
		n := rng.Intn(120) // includes n == 0
		fn := allWindowFuncs[rng.Intn(len(allWindowFuncs))]
		k := rng.Intn(3)
		if fn.Ranking() && k == 0 {
			k = 1 + rng.Intn(2)
		}
		var frame *Frame
		if !fn.Ranking() && k > 0 && rng.Intn(3) == 0 {
			frame = randFrame(rng)
		}
		in := randWindowInput(rng, n, k, rng.Intn(4) != 0)
		if fn == WinCount && rng.Intn(3) == 0 {
			in.Arg = nil // COUNT(*)
		}
		spec := WindowSpec{Func: fn, Frame: frame}
		got, err := WindowEval(spec, in)
		if err != nil {
			t.Fatalf("trial %d (%s, k=%d, frame=%v): %v", trial, fn, k, frame, err)
		}
		want := refWindowEval(t, spec, in)
		if len(got) != n || len(want) != n {
			t.Fatalf("trial %d: result lengths %d/%d, want %d", trial, len(got), len(want), n)
		}
		for i := range got {
			if !bitEqual(got[i], want[i]) {
				t.Fatalf("trial %d (%s, k=%d, frame=%v): lane %d = %v, reference %v",
					trial, fn, k, frame, i, got[i], want[i])
			}
		}
	}
}

// TestWindowEvalParallelMatchesSequential: forcing the cross-partition
// fan-out on and off must not change a single bit, and a warm re-run over
// the same input reproduces the cold run exactly.
func TestWindowEvalParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	old := ParallelThreshold
	defer func() { ParallelThreshold = old }()
	for trial := 0; trial < 8; trial++ {
		n := 3000 + rng.Intn(2000)
		fn := allWindowFuncs[rng.Intn(len(allWindowFuncs))]
		k := 1 + rng.Intn(2)
		var frame *Frame
		if !fn.Ranking() && rng.Intn(2) == 0 {
			frame = randFrame(rng)
		}
		in := randWindowInput(rng, n, k, true)
		spec := WindowSpec{Func: fn, Frame: frame}

		ParallelThreshold = 1 << 30
		cold, err := WindowEval(spec, in)
		if err != nil {
			t.Fatalf("trial %d sequential: %v", trial, err)
		}
		ParallelThreshold = 4
		par, err := WindowEval(spec, in)
		if err != nil {
			t.Fatalf("trial %d parallel: %v", trial, err)
		}
		warm, err := WindowEval(spec, in)
		if err != nil {
			t.Fatalf("trial %d warm: %v", trial, err)
		}
		for i := range cold {
			if !bitEqual(cold[i], par[i]) {
				t.Fatalf("trial %d (%s): lane %d sequential %v != parallel %v", trial, fn, i, cold[i], par[i])
			}
			if !bitEqual(par[i], warm[i]) {
				t.Fatalf("trial %d (%s): lane %d cold %v != warm %v", trial, fn, i, par[i], warm[i])
			}
		}
	}
}

// TestWindowEvalBoundedAllocs: the ranking and running-aggregate paths
// allocate per partition and per sort run, never per row.
func TestWindowEvalBoundedAllocs(t *testing.T) {
	old := ParallelThreshold
	ParallelThreshold = 1 << 30 // sequential: goroutine setup would dominate
	defer func() { ParallelThreshold = old }()
	rng := rand.New(rand.NewSource(83))
	const n, parts = 10000, 100
	in := randWindowInput(rng, n, 1, false)
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(rng.Intn(parts))
	}
	in.Parts = &Grouping{IDs: ids}
	for i := range in.Arg { // keep the running-sum path NULL-free and exact
		in.Arg[i] = value.NewInt(int64(i % 97))
	}

	allocs := testing.AllocsPerRun(5, func() {
		if _, err := WindowEval(WindowSpec{Func: WinRank}, in); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 64 {
		t.Fatalf("RANK allocates %.0f times for %d rows; per-row allocation regressed", allocs, n)
	}

	allocs = testing.AllocsPerRun(5, func() {
		if _, err := WindowEval(WindowSpec{Func: WinSum}, in); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 64+2*parts {
		t.Fatalf("running SUM allocates %.0f times for %d rows over %d partitions; per-row allocation regressed",
			allocs, n, parts)
	}
}
