package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strings"

	"sheetmusiq/internal/value"
)

// WriteCSV writes the relation with a header row.
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Schema.Names()); err != nil {
		return err
	}
	rec := make([]string, len(r.Schema))
	for _, t := range r.Rows {
		for i, v := range t {
			if v.IsNull() {
				rec[i] = ""
			} else {
				rec[i] = v.String()
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes the relation to a file.
func (r *Relation) SaveCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := r.WriteCSV(f); err != nil {
		return err
	}
	return f.Sync()
}

// ReadCSV loads a relation from CSV with a header row. When schema is nil,
// column kinds are inferred from the first data row (NULL-only columns fall
// back to TEXT).
func ReadCSV(name string, rd io.Reader, schema Schema) (*Relation, error) {
	cr := csv.NewReader(rd)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("csv %s: read header: %w", name, err)
	}
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("csv %s: %w", name, err)
	}
	if schema == nil {
		schema = make(Schema, len(header))
		for i, h := range header {
			kind := value.KindString
			for _, rec := range records {
				if i >= len(rec) || rec[i] == "" {
					continue
				}
				kind = value.Infer(rec[i]).Kind()
				break
			}
			schema[i] = Column{Name: strings.TrimSpace(h), Kind: kind}
		}
	} else if len(schema) != len(header) {
		return nil, fmt.Errorf("csv %s: header arity %d != schema arity %d", name, len(header), len(schema))
	}
	rel := New(name, schema)
	for ln, rec := range records {
		if len(rec) != len(schema) {
			return nil, fmt.Errorf("csv %s: row %d arity %d != %d", name, ln+2, len(rec), len(schema))
		}
		row := make(Tuple, len(schema))
		for i, field := range rec {
			v, err := value.Parse(field, schema[i].Kind)
			if err != nil {
				return nil, fmt.Errorf("csv %s row %d: %w", name, ln+2, err)
			}
			row[i] = v
		}
		rel.Rows = append(rel.Rows, row)
	}
	return rel, nil
}

// LoadCSV reads a relation from a file.
func LoadCSV(name, path string, schema Schema) (*Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(name, f, schema)
}
