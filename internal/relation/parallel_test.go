package relation

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"sheetmusiq/internal/value"
)

// forceParallel drops the threshold to 0 and raises GOMAXPROCS for the
// duration of a test so the chunked path runs multi-chunk even on tiny
// inputs and single-core hosts.
func forceParallel(t *testing.T) {
	t.Helper()
	old := ParallelThreshold
	ParallelThreshold = 0
	oldProcs := runtime.GOMAXPROCS(8)
	t.Cleanup(func() {
		ParallelThreshold = old
		runtime.GOMAXPROCS(oldProcs)
	})
}

func TestChunksCoverRange(t *testing.T) {
	forceParallel(t)
	for _, n := range []int{0, 1, 2, 3, 7, 100, 4097} {
		bounds := Chunks(n)
		if n == 0 {
			if len(bounds) != 0 {
				t.Fatalf("Chunks(0) = %v", bounds)
			}
			continue
		}
		covered := 0
		prev := 0
		for _, b := range bounds {
			if b[0] != prev || b[1] <= b[0] {
				t.Fatalf("Chunks(%d) = %v: not contiguous ascending", n, bounds)
			}
			covered += b[1] - b[0]
			prev = b[1]
		}
		if covered != n || prev != n {
			t.Fatalf("Chunks(%d) = %v: covers %d", n, bounds, covered)
		}
	}
}

func TestChunksSequentialBelowThreshold(t *testing.T) {
	old := ParallelThreshold
	ParallelThreshold = 1 << 30
	defer func() { ParallelThreshold = old }()
	if got := Chunks(100000); len(got) != 1 {
		t.Fatalf("Chunks below threshold = %v, want one chunk", got)
	}
}

func TestRunChunksFirstErrorInChunkOrder(t *testing.T) {
	forceParallel(t)
	// Rows 3 and 40 both fail; the reported error must be row 3's — the
	// same one the sequential scan would surface.
	err := ForChunks(64, func(_, lo, hi int) error {
		for i := lo; i < hi; i++ {
			if i == 3 || i == 40 {
				return fmt.Errorf("row %d", i)
			}
		}
		return nil
	})
	if err == nil || err.Error() != "row 3" {
		t.Fatalf("err = %v, want row 3", err)
	}
}

func TestRowKeysMatchSequential(t *testing.T) {
	forceParallel(t)
	r := New("t", Schema{{Name: "a", Kind: value.KindInt}, {Name: "b", Kind: value.KindString}})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		r.MustAppend(value.NewInt(int64(rng.Intn(7))), value.NewString(fmt.Sprintf("s%d", rng.Intn(5))))
	}
	idx := []int{1, 0}
	keys := RowKeys(r.Rows, idx)
	for i, row := range r.Rows {
		if keys[i] != row.KeyOn(idx) {
			t.Fatalf("row %d key mismatch", i)
		}
	}
}

// TestAccumulatorMergeEquivalence: feeding a value stream into one
// accumulator must equal splitting it into chunks, accumulating each, and
// merging the partials in chunk order — for every aggregate function.
func TestAccumulatorMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var stream []value.Value
	for i := 0; i < 500; i++ {
		switch rng.Intn(4) {
		case 0:
			stream = append(stream, value.Null)
		case 1:
			stream = append(stream, value.NewInt(int64(rng.Intn(100)-50)))
		default:
			stream = append(stream, value.NewInt(int64(rng.Intn(10))))
		}
	}
	fns := []AggFunc{AggSum, AggAvg, AggMin, AggMax, AggCount, AggCountDistinct, AggStdDev}
	for _, fn := range fns {
		for _, nChunks := range []int{1, 2, 3, 7, 16} {
			seq := NewAccumulator(fn)
			for _, v := range stream {
				if err := seq.Add(v); err != nil {
					t.Fatal(err)
				}
			}
			size := (len(stream) + nChunks - 1) / nChunks
			var merged *Accumulator
			for lo := 0; lo < len(stream); lo += size {
				hi := lo + size
				if hi > len(stream) {
					hi = len(stream)
				}
				part := NewAccumulator(fn)
				for _, v := range stream[lo:hi] {
					if err := part.Add(v); err != nil {
						t.Fatal(err)
					}
				}
				if merged == nil {
					merged = part
				} else {
					merged.Merge(part)
				}
			}
			want, got := seq.Result(), merged.Result()
			if want.Kind() != got.Kind() || !value.Equal(want, got) {
				t.Errorf("%s over %d chunks: sequential %v, merged %v", fn, nChunks, want, got)
			}
		}
	}
}

// TestAccumulatorMergeFirstSeenTies pins the MIN/MAX tie-break: merging in
// chunk order keeps the earliest chunk's representative among
// compare-equal values, like the sequential first-seen scan.
func TestAccumulatorMergeFirstSeenTies(t *testing.T) {
	a := NewAccumulator(AggMin)
	b := NewAccumulator(AggMin)
	if err := a.Add(value.NewFloat(2)); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(value.NewInt(2)); err != nil { // compares equal to 2.0
		t.Fatal(err)
	}
	a.Merge(b)
	if got := a.Result(); got.Kind() != value.KindFloat {
		t.Fatalf("merged MIN = %v (%s), want the first chunk's 2.0", got, got.Kind())
	}
}
