package relation

import (
	"os"
	"runtime"
	"strconv"
	"sync"

	"sheetmusiq/internal/obs"
)

// Data-parallel stage execution. The replay loop of the spreadsheet algebra
// (and the SQL executor) is a sequence of embarrassingly parallel per-row
// stages — selection filtering, formula fill, aggregate accumulation, key
// computation. The helpers here partition a row range into GOMAXPROCS-sized
// contiguous chunks and run a stage body over the chunks concurrently,
// while keeping every observable result deterministic:
//
//   - chunks are contiguous and ordered, so chunk-local outputs concatenated
//     in chunk order reproduce the sequential multiset order exactly;
//   - the first error in chunk order is returned, and each chunk aborts at
//     its first failing row, so the reported error is the error of the
//     globally first failing row — the same one the sequential loop hits.

// ParallelThreshold is the row count below which stages stay sequential;
// chunking overhead beats the win on small tables. Set it to 0 to force the
// parallel path (the equivalence tests do), or to a huge value to force the
// sequential path. It is read once per stage and must not be mutated while
// evaluations are in flight.
var ParallelThreshold = 2048

// init honours the SHEETMUSIQ_PARALLEL_THRESHOLD environment knob. CI races
// the core package with a tiny threshold so every chunked stage path runs
// under the race detector on ordinary test data (see `make test`).
func init() {
	if v := os.Getenv("SHEETMUSIQ_PARALLEL_THRESHOLD"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 0 {
			ParallelThreshold = n
		}
	}
}

// Chunks partitions n rows into contiguous [lo, hi) bounds: one chunk when
// n is below ParallelThreshold or a single CPU is available, otherwise up
// to GOMAXPROCS equal chunks. n of zero yields no chunks.
func Chunks(n int) [][2]int {
	if n <= 0 {
		return nil
	}
	procs := runtime.GOMAXPROCS(0)
	if procs <= 1 || n < ParallelThreshold {
		return [][2]int{{0, n}}
	}
	if procs > n {
		procs = n
	}
	size := (n + procs - 1) / procs
	bounds := make([][2]int, 0, procs)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		bounds = append(bounds, [2]int{lo, hi})
	}
	return bounds
}

// Chunking metrics, recorded per stage pass (never per row): how many
// passes stayed sequential, how many fanned out, and the total number of
// chunk goroutine bodies spawned by the parallel passes.
var (
	chunkRunsSequential = obs.Default.Counter("relation.chunk_runs.sequential")
	chunkRunsParallel   = obs.Default.Counter("relation.chunk_runs.parallel")
	chunksSpawned       = obs.Default.Counter("relation.chunks.spawned")
)

// RunChunks invokes fn(chunk, lo, hi) for every chunk, concurrently when
// there is more than one. It returns the first error in chunk order.
func RunChunks(bounds [][2]int, fn func(chunk, lo, hi int) error) error {
	if len(bounds) == 1 {
		chunkRunsSequential.Inc()
		return fn(0, bounds[0][0], bounds[0][1])
	}
	if len(bounds) == 0 {
		return nil
	}
	chunkRunsParallel.Inc()
	chunksSpawned.Add(int64(len(bounds)))
	errs := make([]error, len(bounds))
	var wg sync.WaitGroup
	for c, b := range bounds {
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			errs[c] = fn(c, lo, hi)
		}(c, b[0], b[1])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ForChunks is RunChunks over Chunks(n).
func ForChunks(n int, fn func(chunk, lo, hi int) error) error {
	return RunChunks(Chunks(n), fn)
}

// RowKeys computes KeyOn(cols) for every row, in parallel above the
// threshold. Grouping and duplicate-elimination passes compute these keys
// once and reuse them across their accumulate and write-back phases.
func RowKeys(rows []Tuple, cols []int) []string {
	keys := make([]string, len(rows))
	_ = ForChunks(len(rows), func(_, lo, hi int) error {
		for i := lo; i < hi; i++ {
			keys[i] = rows[i].KeyOn(cols)
		}
		return nil
	})
	return keys
}
