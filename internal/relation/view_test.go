package relation

import (
	"math/rand"
	"testing"

	"sheetmusiq/internal/value"
)

// genKeyRows builds random tuples over counting-sortable key families —
// string, int, date, bool, each with NULLs — plus a float column and a
// mixed-kind column, so the eligibility guard has something to reject.
func genKeyRows(rng *rand.Rand, n int) ([]Tuple, Schema) {
	schema := Schema{
		{Name: "s", Kind: value.KindString},
		{Name: "i", Kind: value.KindInt},
		{Name: "d", Kind: value.KindDate},
		{Name: "b", Kind: value.KindBool},
		{Name: "f", Kind: value.KindFloat},
	}
	rows := make([]Tuple, n)
	for i := range rows {
		t := make(Tuple, 5)
		if rng.Intn(5) == 0 {
			t[0] = value.Null
		} else {
			t[0] = value.NewString(string(rune('a' + rng.Intn(4))))
		}
		if rng.Intn(5) == 0 {
			t[1] = value.Null
		} else {
			t[1] = value.NewInt(int64(rng.Intn(5)))
		}
		t[2] = value.NewDateDays(int64(rng.Intn(4)))
		if rng.Intn(6) == 0 {
			t[3] = value.Null
		} else {
			t[3] = value.NewBool(rng.Intn(2) == 0)
		}
		t[4] = value.NewFloat(float64(rng.Intn(3)))
		rows[i] = t
	}
	return rows, schema
}

// TestSortViewByGroupingMatchesSortView: ordering by group rank over a
// cached grouping must be bit-identical to the stable comparison sort, for
// every counting-sortable key family, with NULLs, duplicate keys, repeated
// and gapped row indices, ascending and descending directions, sequential
// and parallel.
func TestSortViewByGroupingMatchesSortView(t *testing.T) {
	forceParallel(t)
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 80; trial++ {
		n := 1 + rng.Intn(400)
		rows, schema := genKeyRows(rng, n)
		r := New("cs", schema)
		r.Rows = rows
		cols := r.Columns()

		// A shuffled, duplicating, gapped subset of the backing rows.
		m := rng.Intn(2 * n)
		idx := make([]int32, m)
		for i := range idx {
			idx[i] = int32(rng.Intn(n))
		}
		v := &IndexView{Rows: rows, Cols: cols, Idx: idx, Split: len(schema)}

		nk := 1 + rng.Intn(3)
		pos := make([]int, nk)
		desc := make([]bool, nk)
		keyCols := make([]*Col, nk)
		for k := range pos {
			pos[k] = rng.Intn(4) // the counting-sortable columns
			desc[k] = rng.Intn(2) == 0
			keyCols[k] = v.ColAt(pos[k])
			if !CountingSortable(keyCols[k]) {
				t.Fatalf("trial %d: column %d should be counting-sortable", trial, pos[k])
			}
		}

		gr := GroupView(v, pos)
		want := SortView(v, pos, desc)
		got := SortViewByGrouping(v, keyCols, desc, gr)
		if !eqInt32(want, got) {
			t.Fatalf("trial %d: counting sort diverges from stable sort (keys %v desc %v, %d rows)",
				trial, pos, desc, m)
		}
	}
}

// TestCountingSortableExclusions: float and mixed-kind (boxed) columns must
// be rejected — NaN compares unordered and cross-kind numeric coincidences
// compare equal, both against cells grouping keeps distinct.
func TestCountingSortableExclusions(t *testing.T) {
	if CountingSortable(nil) {
		t.Fatalf("nil column must not be counting-sortable")
	}
	rng := rand.New(rand.NewSource(73))
	rows, schema := genKeyRows(rng, 50)
	r := New("ex", schema)
	r.Rows = rows
	cols := r.Columns()
	if CountingSortable(cols[4]) {
		t.Fatalf("float column must not be counting-sortable")
	}
	mixed := BoxedCol([]value.Value{value.NewInt(3), value.NewFloat(3)})
	if CountingSortable(mixed) {
		t.Fatalf("boxed mixed-kind column must not be counting-sortable")
	}
	if !CountingSortable(AllNullCol()) {
		t.Fatalf("all-NULL column should be counting-sortable")
	}
}
