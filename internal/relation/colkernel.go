package relation

// Typed columnar grouping. GroupCols is GroupRowsOn for column vectors: the
// same open-addressing/dense-ID discipline, but hashing typed payload arrays
// (Col.HashInto replicates value.HashCombine bit for bit) and checking
// collisions with Col.CellEqual instead of boxing each cell. Group numbering
// is therefore identical to the boxed path — same buckets, same
// first-occurrence order — which the aggregate and distinct kernels rely on
// when they switch representation mid-pipeline.

// hashSeed is the row-hash seed shared by hashRow and the columnar hash pass.
const hashSeed = uint64(0x51_7c_c1_b7_27_22_0a_95)

// colGrouper is the typed counterpart of Grouper: group representatives are
// cell indexes into the key columns rather than tuples.
type colGrouper struct {
	cols  []*Col
	slots []int32 // gid+1; 0 marks an empty slot
	mask  uint64
	hash  []uint64 // per group: its key hash
	reps  []int32  // per group: cell index of the first-occurrence row
}

func newColGrouper(cols []*Col, sizeHint int) *colGrouper {
	// Cap the initial table: group counts are usually tiny next to the row
	// count, growing reinserts only the group representatives (cheap), and a
	// small table keeps probes in cache instead of zeroing hundreds of KB on
	// every build.
	const maxInitial = 8192
	n := 16
	for n < 2*sizeHint && n < maxInitial {
		n <<= 1
	}
	return &colGrouper{cols: cols, slots: make([]int32, n), mask: uint64(n - 1)}
}

// cellsEqual reports whether two rows agree on every key column.
func (g *colGrouper) cellsEqual(a, b int) bool {
	for _, c := range g.cols {
		if !c.CellEqual(a, b) {
			return false
		}
	}
	return true
}

// add inserts the key at cell index, returning its group ID and whether the
// group is new.
func (g *colGrouper) add(cell int, h uint64) (int32, bool) {
	i := h & g.mask
	for {
		s := g.slots[i]
		if s == 0 {
			break
		}
		gid := s - 1
		if g.hash[gid] == h && g.cellsEqual(int(g.reps[gid]), cell) {
			return gid, false
		}
		grouperCollisions.Inc()
		i = (i + 1) & g.mask
	}
	gid := int32(len(g.reps))
	g.reps = append(g.reps, int32(cell))
	g.hash = append(g.hash, h)
	g.slots[i] = gid + 1
	if 4*len(g.reps) >= 3*len(g.slots) {
		g.grow()
	}
	return gid, true
}

// find returns the group ID of the key at cell index, or -1 when absent.
func (g *colGrouper) find(cell int, h uint64) int32 {
	i := h & g.mask
	for {
		s := g.slots[i]
		if s == 0 {
			return -1
		}
		gid := s - 1
		if g.hash[gid] == h && g.cellsEqual(int(g.reps[gid]), cell) {
			return gid
		}
		grouperCollisions.Inc()
		i = (i + 1) & g.mask
	}
}

// grow doubles the table and reinserts from the stored group hashes.
func (g *colGrouper) grow() {
	slots := make([]int32, 2*len(g.slots))
	mask := uint64(len(slots) - 1)
	for gid, h := range g.hash {
		i := h & mask
		for slots[i] != 0 {
			i = (i + 1) & mask
		}
		slots[i] = int32(gid) + 1
	}
	g.slots = slots
	g.mask = mask
}

// hashLanes fills hs[k] for k in [0,n) with the row hash of lane k's key —
// seeded and combined exactly like hashRow, chunk-parallel.
func hashLanes(keyCols []*Col, rows []int32, n int) []uint64 {
	hs := make([]uint64, n)
	_ = ForChunks(n, func(_, lo, hi int) error {
		for k := lo; k < hi; k++ {
			hs[k] = hashSeed
		}
		for _, c := range keyCols {
			c.HashInto(hs, rows, lo, hi)
		}
		return nil
	})
	return hs
}

// GroupCols partitions n lanes by the typed key columns, assigning dense
// group IDs in first-occurrence order. rows maps lanes to cell indexes (nil =
// identity), so a view's index vector groups without materializing. IDs and
// First are in lane space. An empty key column set yields one group, exactly
// as GroupRowsOn treats an empty (non-nil) column list. The parallel build
// merges chunk tables in chunk order, matching the sequential numbering.
func GroupCols(keyCols []*Col, rows []int32, n int) *Grouping {
	gr := &Grouping{}
	if n == 0 {
		return gr
	}
	grouperBuilds.Inc()
	if len(keyCols) == 0 {
		gr.IDs = make([]int32, n)
		gr.First = []int32{0}
		return gr
	}
	cell := func(k int) int {
		if rows == nil {
			return k
		}
		return int(rows[k])
	}
	hs := hashLanes(keyCols, rows, n)
	gr.IDs = make([]int32, n)
	bounds := Chunks(n)
	if len(bounds) <= 1 {
		g := newColGrouper(keyCols, n/4+1)
		for k := 0; k < n; k++ {
			gid, fresh := g.add(cell(k), hs[k])
			gr.IDs[k] = gid
			if fresh {
				gr.First = append(gr.First, int32(k))
			}
		}
		return gr
	}
	// Parallel build: chunk-local tables with chunk-local IDs, merged into a
	// global numbering in chunk order (see GroupRowsOn).
	type part struct {
		g     *colGrouper
		first []int32 // lane of first occurrence per local group
	}
	parts := make([]part, len(bounds))
	_ = RunChunks(bounds, func(c, lo, hi int) error {
		g := newColGrouper(keyCols, (hi-lo)/4+1)
		var first []int32
		for k := lo; k < hi; k++ {
			gid, fresh := g.add(cell(k), hs[k])
			gr.IDs[k] = gid
			if fresh {
				first = append(first, int32(k))
			}
		}
		parts[c] = part{g: g, first: first}
		return nil
	})
	total := 0
	for _, p := range parts {
		total += len(p.g.reps)
	}
	global := newColGrouper(keyCols, total)
	for c := range parts {
		p := &parts[c]
		remap := make([]int32, len(p.g.reps))
		for lg := range p.g.reps {
			gid, fresh := global.add(int(p.g.reps[lg]), p.g.hash[lg])
			remap[lg] = gid
			if fresh {
				gr.First = append(gr.First, p.first[lg])
			}
		}
		p.first = remap // reuse the slot to carry the remap to the rewrite pass
	}
	_ = RunChunks(bounds, func(c, lo, hi int) error {
		remap := parts[c].first
		for k := lo; k < hi; k++ {
			gr.IDs[k] = remap[gr.IDs[k]]
		}
		return nil
	})
	return gr
}
