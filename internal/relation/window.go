package relation

import (
	"fmt"
	"runtime"
	"strings"

	"sheetmusiq/internal/obs"
	"sheetmusiq/internal/value"
)

// Window-function kernel. WindowEval computes one window function —
// RANK/DENSE_RANK/ROW_NUMBER or a moving/running SUM/AVG/MIN/MAX/COUNT —
// over n lanes partitioned by a Grouping and ordered by precomputed key
// vectors. The kernel is deliberately deterministic:
//
//   - lanes sort stably by (partition ID, order keys), so rows that tie on
//     every order key keep their incoming lane order — ROW_NUMBER over ties
//     is reproducible, and every aggregate accumulates its frame's rows in
//     ascending sorted position, matching a sequential scan bit for bit;
//   - partitions evaluate independently with disjoint result writes, so the
//     cross-partition parallel fan-out cannot reorder any accumulation;
//   - the running-frame fast path (UNBOUNDED PRECEDING .. CURRENT ROW) feeds
//     one accumulator the same rows in the same ascending order a naive
//     per-row recompute would, so both strategies agree exactly, floats
//     included.
//
// Comparison semantics are value.MustCompare throughout (NULLs first, NaN
// unordered), identical to the sort and grouping kernels, so SQL-layer and
// algebra-layer windows that share inputs share outputs.

// WindowFunc names a window function.
type WindowFunc string

// The supported window functions. The ranking trio requires an ORDER BY and
// takes no argument; the aggregate five accept an optional frame and reuse
// Accumulator semantics (COUNT counts frame rows including NULLs when no
// argument column is given, mirroring COUNT(*)).
const (
	WinRank      WindowFunc = "RANK"
	WinDenseRank WindowFunc = "DENSE_RANK"
	WinRowNumber WindowFunc = "ROW_NUMBER"
	WinSum       WindowFunc = "SUM"
	WinAvg       WindowFunc = "AVG"
	WinMin       WindowFunc = "MIN"
	WinMax       WindowFunc = "MAX"
	WinCount     WindowFunc = "COUNT"
)

// ParseWindowFunc resolves a case-insensitive window-function name.
func ParseWindowFunc(name string) (WindowFunc, error) {
	switch strings.ToUpper(name) {
	case "RANK":
		return WinRank, nil
	case "DENSE_RANK":
		return WinDenseRank, nil
	case "ROW_NUMBER":
		return WinRowNumber, nil
	case "SUM":
		return WinSum, nil
	case "AVG", "MEAN":
		return WinAvg, nil
	case "MIN":
		return WinMin, nil
	case "MAX":
		return WinMax, nil
	case "COUNT":
		return WinCount, nil
	}
	return "", fmt.Errorf("relation: unknown window function %q", name)
}

// Ranking reports whether f is one of the ranking functions (argument-free,
// ORDER BY mandatory, frame meaningless).
func (f WindowFunc) Ranking() bool {
	switch f {
	case WinRank, WinDenseRank, WinRowNumber:
		return true
	}
	return false
}

// NeedsArg reports whether f requires an argument column. COUNT works with
// or without one (COUNT(*) counts frame rows).
func (f WindowFunc) NeedsArg() bool {
	switch f {
	case WinSum, WinAvg, WinMin, WinMax:
		return true
	}
	return false
}

// AggFunc returns the plain-aggregate counterpart of an aggregate window
// function ("" for the ranking functions).
func (f WindowFunc) AggFunc() AggFunc {
	switch f {
	case WinSum:
		return AggSum
	case WinAvg:
		return AggAvg
	case WinMin:
		return AggMin
	case WinMax:
		return AggMax
	case WinCount:
		return AggCount
	}
	return ""
}

// ResultKind returns the kind f produces over an input of the given kind.
func (f WindowFunc) ResultKind(input value.Kind) value.Kind {
	if f.Ranking() {
		return value.KindInt
	}
	return f.AggFunc().ResultKind(input)
}

// FrameBoundKind enumerates the five SQL frame-bound forms.
type FrameBoundKind uint8

const (
	BoundUnboundedPreceding FrameBoundKind = iota
	BoundPreceding
	BoundCurrentRow
	BoundFollowing
	BoundUnboundedFollowing
)

// String renders the bound in SQL spelling.
func (b FrameBound) String() string {
	switch b.Kind {
	case BoundUnboundedPreceding:
		return "UNBOUNDED PRECEDING"
	case BoundPreceding:
		return fmt.Sprintf("%d PRECEDING", b.Offset)
	case BoundCurrentRow:
		return "CURRENT ROW"
	case BoundFollowing:
		return fmt.Sprintf("%d FOLLOWING", b.Offset)
	}
	return "UNBOUNDED FOLLOWING"
}

// FrameBound is one end of a ROWS frame; Offset is used only by the
// PRECEDING/FOLLOWING kinds.
type FrameBound struct {
	Kind   FrameBoundKind
	Offset int64
}

// Frame is an explicit ROWS frame (physical offsets from the current row).
// A nil *Frame means the SQL default: the whole partition without ORDER BY,
// or the running frame — start of partition through the current row's last
// peer — with one.
type Frame struct {
	Lo, Hi FrameBound
}

// String renders the frame in SQL spelling.
func (f *Frame) String() string {
	return fmt.Sprintf("ROWS BETWEEN %s AND %s", f.Lo, f.Hi)
}

// Validate rejects frames no row set can satisfy the ordering of.
func (f *Frame) Validate() error {
	if f.Lo.Kind == BoundUnboundedFollowing || f.Hi.Kind == BoundUnboundedPreceding {
		return fmt.Errorf("relation: frame bound order is inverted (%s)", f)
	}
	if (f.Lo.Kind == BoundPreceding || f.Lo.Kind == BoundFollowing) && f.Lo.Offset < 0 {
		return fmt.Errorf("relation: negative frame offset %d", f.Lo.Offset)
	}
	if (f.Hi.Kind == BoundPreceding || f.Hi.Kind == BoundFollowing) && f.Hi.Offset < 0 {
		return fmt.Errorf("relation: negative frame offset %d", f.Hi.Offset)
	}
	return nil
}

// WindowSpec selects the function and (for aggregates) an optional explicit
// ROWS frame.
type WindowSpec struct {
	Func  WindowFunc
	Frame *Frame
}

// WindowInput carries the lane-aligned input vectors of one evaluation.
// Lanes are the caller's row order (the order ROW_NUMBER falls back to on
// full ties). Keys holds K order-key values per lane, row-major; Desc flips
// per key position. Parts assigns each lane its partition (nil = a single
// partition). Arg is the aggregate argument per lane; nil means COUNT(*).
//
// The typed alternative: KeyCols carries the K order-key columns and ArgCol
// the argument column, both cell-indexed through Rows (lane k reads cell
// Rows[k]; nil = identity). When set they replace Keys/Arg — comparisons run
// on raw payloads and the aggregate paths accumulate through typed scalar
// state instead of boxed Accumulators. Results are bit-identical: the typed
// comparators are value.MustCompare on payloads, and winAgg reproduces
// Accumulator's operation order exactly.
type WindowInput struct {
	N       int
	Arg     []value.Value
	ArgCol  *Col
	Parts   *Grouping
	Keys    []value.Value
	KeyCols []*Col
	Rows    []int32
	K       int
	Desc    []bool
}

// winAgg is the allocation-free scalar aggregate state the typed window
// paths use for SUM/AVG/MIN/MAX/COUNT frames (window aggregates never need
// STDDEV or COUNT_DISTINCT). Field discipline mirrors Accumulator: count
// includes NULLs, sums accumulate in add order, bests replace on strict
// compare only (first-seen ties), intExact clears on any float add.
type winAgg struct {
	fn       AggFunc
	count    int64
	nonNull  int64
	sum      float64
	intSum   int64
	intExact bool
	has      bool
	kind     value.Kind // kind of the best cell (MIN/MAX)
	bestI    int64
	bestF    float64
	bestS    string
}

func newWinAgg(fn AggFunc) winAgg { return winAgg{fn: fn, intExact: true} }

// add feeds one cell of c, replicating Accumulator.Add over the boxed cell.
// c's kind must be numeric (or NULL) for SUM/AVG — callers route other kinds
// through the boxed fallback so error behaviour is byte-identical.
func (a *winAgg) add(c *Col, i int) {
	a.count++
	if c.Kind == value.KindNull || BitGet(c.Nulls, i) {
		return
	}
	a.nonNull++
	switch a.fn {
	case AggCount:
		return
	case AggMin:
		if !a.has {
			a.has = true
			a.setBest(c, i)
			return
		}
		switch c.Kind {
		case value.KindFloat:
			if c.Floats[i] < a.bestF {
				a.bestF = c.Floats[i]
			}
		case value.KindString:
			if c.Strs[i] < a.bestS {
				a.bestS = c.Strs[i]
			}
		default:
			if c.Ints[i] < a.bestI {
				a.bestI = c.Ints[i]
			}
		}
		return
	case AggMax:
		if !a.has {
			a.has = true
			a.setBest(c, i)
			return
		}
		switch c.Kind {
		case value.KindFloat:
			if c.Floats[i] > a.bestF {
				a.bestF = c.Floats[i]
			}
		case value.KindString:
			if c.Strs[i] > a.bestS {
				a.bestS = c.Strs[i]
			}
		default:
			if c.Ints[i] > a.bestI {
				a.bestI = c.Ints[i]
			}
		}
		return
	}
	// SUM / AVG over a numeric column.
	if c.Kind == value.KindInt {
		a.intSum += c.Ints[i]
		a.sum += float64(c.Ints[i])
	} else {
		a.intExact = false
		a.sum += c.Floats[i]
	}
}

// addOne counts a lane with no argument column (COUNT(*)): the boxed path
// feeds NewInt(1), which bumps count and nonNull and is otherwise ignored.
func (a *winAgg) addOne() {
	a.count++
	a.nonNull++
	if a.fn == AggSum || a.fn == AggAvg {
		a.intSum++
		a.sum++
	}
}

func (a *winAgg) setBest(c *Col, i int) {
	a.kind = c.Kind
	switch c.Kind {
	case value.KindFloat:
		a.bestF = c.Floats[i]
	case value.KindString:
		a.bestS = c.Strs[i]
	default:
		a.bestI = c.Ints[i]
	}
}

// result finalises, exactly as Accumulator.Result.
func (a *winAgg) result() value.Value {
	if a.fn == AggCount {
		return value.NewInt(a.count)
	}
	if a.nonNull == 0 {
		return value.Null
	}
	switch a.fn {
	case AggSum:
		if a.intExact {
			return value.NewInt(a.intSum)
		}
		return value.NewFloat(a.sum)
	case AggAvg:
		return value.NewFloat(a.sum / float64(a.nonNull))
	case AggMin, AggMax:
		switch a.kind {
		case value.KindFloat:
			return value.NewFloat(a.bestF)
		case value.KindString:
			return value.NewString(a.bestS)
		case value.KindBool:
			return value.NewBool(a.bestI != 0)
		case value.KindDate:
			return value.NewDateDays(a.bestI)
		default:
			return value.NewInt(a.bestI)
		}
	}
	return value.Null
}

// Window-kernel metrics, recorded per evaluation (never per row).
var (
	windowEvals      = obs.Default.Counter("relation.window.evals")
	windowRows       = obs.Default.Counter("relation.window.rows")
	windowPartitions = obs.Default.Counter("relation.window.partitions")
)

// WindowEval computes the window function over every lane and returns the
// lane-aligned result vector.
func WindowEval(spec WindowSpec, in WindowInput) ([]value.Value, error) {
	n := in.N
	if spec.Func.Ranking() {
		if in.K == 0 {
			return nil, fmt.Errorf("relation: %s requires an ORDER BY", spec.Func)
		}
		if spec.Frame != nil {
			return nil, fmt.Errorf("relation: %s does not take a frame", spec.Func)
		}
	}
	if spec.Frame != nil {
		if in.K == 0 {
			return nil, fmt.Errorf("relation: a frame requires an ORDER BY")
		}
		if err := spec.Frame.Validate(); err != nil {
			return nil, err
		}
	}
	if in.Arg == nil && in.ArgCol == nil && spec.Func.NeedsArg() {
		return nil, fmt.Errorf("relation: %s window requires an argument column", spec.Func)
	}
	windowEvals.Inc()
	windowRows.Add(int64(n))
	res := make([]value.Value, n)
	if n == 0 {
		return res, nil
	}

	// keyCmp is the per-key three-way comparator over lanes. Typed key
	// columns compare raw payloads (colCompare — exactly MustCompare on the
	// boxed cells, Boxed columns included); the flat Keys vector compares
	// boxed. Both orderings coincide, so typed and boxed callers agree.
	var keyCmp []func(a, b int32) int
	if in.KeyCols != nil {
		keyCmp = make([]func(a, b int32) int, len(in.KeyCols))
		for j, c := range in.KeyCols {
			keyCmp[j] = colCompare(c, in.Rows)
		}
	} else if in.K > 0 {
		keyCmp = make([]func(a, b int32) int, in.K)
		k := in.K
		for j := 0; j < k; j++ {
			j := j
			keyCmp[j] = func(a, b int32) int {
				return value.MustCompare(in.Keys[int(a)*k+j], in.Keys[int(b)*k+j])
			}
		}
	}

	// Stable sort of lanes by (partition, order keys): partitions become
	// contiguous runs and in-partition order is the frame order. With no
	// partitioning and no keys the identity permutation stands.
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	pid := func(l int32) int32 {
		if in.Parts == nil {
			return 0
		}
		return in.Parts.IDs[l]
	}
	if in.Parts != nil || len(keyCmp) > 0 {
		less := func(a, b int32) bool {
			if pa, pb := pid(a), pid(b); pa != pb {
				return pa < pb
			}
			for j, cmp := range keyCmp {
				c := cmp(a, b)
				if c == 0 {
					continue
				}
				if in.Desc[j] {
					return c > 0
				}
				return c < 0
			}
			return false
		}
		(&permSorter{less: less}).sort(perm)
	}

	// Partition bounds over the sorted permutation.
	var parts [][2]int
	lo := 0
	for i := 1; i <= n; i++ {
		if i == n || pid(perm[i]) != pid(perm[lo]) {
			parts = append(parts, [2]int{lo, i})
			lo = i
		}
	}
	windowPartitions.Add(int64(len(parts)))

	// peers reports whether two lanes tie on every order key — the peer
	// (RANGE) grouping ranking and default running frames share.
	peers := func(a, b int32) bool {
		for _, cmp := range keyCmp {
			if cmp(a, b) != 0 {
				return false
			}
		}
		return true
	}
	cellOf := func(l int32) int {
		if in.Rows == nil {
			return int(l)
		}
		return int(in.Rows[l])
	}
	argAt := func(l int32) value.Value {
		if in.Arg != nil {
			return in.Arg[l]
		}
		if in.ArgCol != nil {
			return in.ArgCol.Value(cellOf(l))
		}
		return value.NewInt(1)
	}

	// Typed aggregate accumulation engages when the argument reads typed
	// payloads (or there is no argument at all — pure frame counting). SUM
	// and AVG additionally require a numeric (or all-NULL) column, so the
	// non-numeric error surfaces through the boxed path with its exact
	// message and position.
	aggFn := spec.Func.AggFunc()
	typedArg := in.Arg == nil && in.ArgCol != nil && in.ArgCol.Boxed == nil
	if aggFn == AggSum || aggFn == AggAvg {
		typedArg = typedArg && (in.ArgCol.Kind == value.KindInt ||
			in.ArgCol.Kind == value.KindFloat || in.ArgCol.Kind == value.KindNull)
	}
	starTyped := in.Arg == nil && in.ArgCol == nil
	var addLane func(a *winAgg, l int32)
	switch {
	case typedArg:
		col := in.ArgCol
		addLane = func(a *winAgg, l int32) { a.add(col, cellOf(l)) }
	case starTyped:
		addLane = func(a *winAgg, l int32) { a.addOne() }
	}

	evalPart := func(lo, hi int) error {
		switch spec.Func {
		case WinRowNumber:
			for i := lo; i < hi; i++ {
				res[perm[i]] = value.NewInt(int64(i - lo + 1))
			}
			return nil
		case WinRank, WinDenseRank:
			dense := spec.Func == WinDenseRank
			rank := int64(0)
			for s := lo; s < hi; {
				e := s + 1
				for e < hi && peers(perm[s], perm[e]) {
					e++
				}
				if dense {
					rank++
				} else {
					rank = int64(s - lo + 1)
				}
				for i := s; i < e; i++ {
					res[perm[i]] = value.NewInt(rank)
				}
				s = e
			}
			return nil
		}
		if spec.Frame == nil && in.K == 0 {
			// Whole-partition aggregate: one pass, broadcast.
			if addLane != nil {
				acc := newWinAgg(aggFn)
				for i := lo; i < hi; i++ {
					addLane(&acc, perm[i])
				}
				r := acc.result()
				for i := lo; i < hi; i++ {
					res[perm[i]] = r
				}
				return nil
			}
			acc := NewAccumulator(aggFn)
			for i := lo; i < hi; i++ {
				if err := acc.Add(argAt(perm[i])); err != nil {
					return err
				}
			}
			r := acc.Result()
			for i := lo; i < hi; i++ {
				res[perm[i]] = r
			}
			return nil
		}
		if spec.Frame == nil {
			// Default running frame with peers (RANGE UNBOUNDED PRECEDING ..
			// CURRENT ROW): one accumulator fed in ascending order, snapshot
			// at each peer-group boundary. Accumulation order is identical
			// to recomputing each frame from scratch, so the incremental
			// strategy is bit-identical to the naive one.
			if addLane != nil {
				acc := newWinAgg(aggFn)
				for s := lo; s < hi; {
					e := s + 1
					for e < hi && peers(perm[s], perm[e]) {
						e++
					}
					for i := s; i < e; i++ {
						addLane(&acc, perm[i])
					}
					r := acc.result()
					for i := s; i < e; i++ {
						res[perm[i]] = r
					}
					s = e
				}
				return nil
			}
			acc := NewAccumulator(aggFn)
			for s := lo; s < hi; {
				e := s + 1
				for e < hi && peers(perm[s], perm[e]) {
					e++
				}
				for i := s; i < e; i++ {
					if err := acc.Add(argAt(perm[i])); err != nil {
						return err
					}
				}
				r := acc.Result()
				for i := s; i < e; i++ {
					res[perm[i]] = r
				}
				s = e
			}
			return nil
		}
		// Explicit ROWS frame: physical offsets from the current row,
		// clamped to the partition; each frame accumulates fresh in
		// ascending order (empty frames yield the empty-accumulator result).
		bound := func(b FrameBound, i int) int {
			switch b.Kind {
			case BoundUnboundedPreceding:
				return lo
			case BoundPreceding:
				return i - int(b.Offset)
			case BoundCurrentRow:
				return i
			case BoundFollowing:
				return i + int(b.Offset)
			}
			return hi - 1
		}
		if addLane != nil {
			// One reusable state for the whole range: resetting in place
			// keeps the per-frame accumulator off the heap (taking its
			// address inside the loop would escape it once per row).
			var acc winAgg
			for i := lo; i < hi; i++ {
				s, e := bound(spec.Frame.Lo, i), bound(spec.Frame.Hi, i)
				if s < lo {
					s = lo
				}
				if e > hi-1 {
					e = hi - 1
				}
				acc = newWinAgg(aggFn)
				for j := s; j <= e; j++ {
					addLane(&acc, perm[j])
				}
				res[perm[i]] = acc.result()
			}
			return nil
		}
		for i := lo; i < hi; i++ {
			s, e := bound(spec.Frame.Lo, i), bound(spec.Frame.Hi, i)
			if s < lo {
				s = lo
			}
			if e > hi-1 {
				e = hi - 1
			}
			acc := NewAccumulator(aggFn)
			for j := s; j <= e; j++ {
				if err := acc.Add(argAt(perm[j])); err != nil {
					return err
				}
			}
			res[perm[i]] = acc.Result()
		}
		return nil
	}

	// Partitions are independent and write disjoint lanes; fan out over the
	// partition list when the row count clears the parallel threshold. The
	// bounds are built over the partition list directly (Chunks sizes by row
	// count, which would keep small partition counts sequential forever).
	if len(parts) > 1 && n >= ParallelThreshold {
		bounds := partChunks(len(parts))
		err := RunChunks(bounds, func(_, plo, phi int) error {
			for p := plo; p < phi; p++ {
				if err := evalPart(parts[p][0], parts[p][1]); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		return res, nil
	}
	for _, p := range parts {
		if err := evalPart(p[0], p[1]); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// partChunks splits m partitions into up to GOMAXPROCS contiguous bounds.
func partChunks(m int) [][2]int {
	procs := runtime.GOMAXPROCS(0)
	if procs < 1 {
		procs = 1
	}
	if procs > m {
		procs = m
	}
	size := (m + procs - 1) / procs
	bounds := make([][2]int, 0, procs)
	for lo := 0; lo < m; lo += size {
		hi := lo + size
		if hi > m {
			hi = m
		}
		bounds = append(bounds, [2]int{lo, hi})
	}
	return bounds
}
