package relation

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"sheetmusiq/internal/value"
)

// Property tests for the typed grouped-aggregation kernel: GroupedAggState
// fed whole columns must agree bit for bit with one boxed Accumulator per
// group fed the same cells in the same ascending order — across every
// aggregate function, NaN/-0 floats, MinInt64 and ints beyond 2^53,
// NULL-only groups, empty inputs, lane indirection and chunked merges.

var allAggFuncs = []AggFunc{
	AggSum, AggAvg, AggMin, AggMax, AggCount, AggCountDistinct, AggStdDev,
}

// refGroupAggregate is the boxed reference: one Accumulator per group, cells
// fed in ascending lane order, exactly the pre-kernel evaluation loop.
func refGroupAggregate(fn AggFunc, in *Col, gids, rows []int32, n, ng int) ([]value.Value, error) {
	accs := make([]*Accumulator, ng)
	for g := range accs {
		accs[g] = NewAccumulator(fn)
	}
	for k := 0; k < n; k++ {
		i := k
		if rows != nil {
			i = int(rows[k])
		}
		v := value.NewInt(1)
		if in != nil {
			v = in.Value(i)
		}
		if err := accs[gids[k]].Add(v); err != nil {
			return nil, err
		}
	}
	res := make([]value.Value, ng)
	for g := range res {
		res[g] = accs[g].Result()
	}
	return res, nil
}

// randAggCol builds a typed column of the given kind with adversarial
// payloads: NaN, both zero signs and giant magnitudes for floats; MinInt64,
// MaxInt64 and values past 2^53 for ints; and a NULL sprinkle throughout.
func randAggCol(rng *rand.Rand, kind value.Kind, n int) *Col {
	c := &Col{Kind: kind}
	floats := []float64{
		0, math.Copysign(0, -1), math.NaN(), 1.5, -3.25, 1e300, -1e300,
		math.Inf(1), math.Inf(-1), 0.1, 1e15,
	}
	ints := []int64{
		0, 1, -1, math.MinInt64, math.MaxInt64, 1 << 53, (1 << 53) + 1, -(1 << 60), 42,
	}
	strs := []string{"", "a", "bb", "z", "zz"}
	switch kind {
	case value.KindFloat:
		c.Floats = make([]float64, n)
	case value.KindString:
		c.Strs = make([]string, n)
	default:
		c.Ints = make([]int64, n)
	}
	for i := 0; i < n; i++ {
		if rng.Intn(5) == 0 {
			if c.Nulls == nil {
				c.Nulls = NewBitmap(n)
			}
			BitSet(c.Nulls, i)
			continue
		}
		switch kind {
		case value.KindFloat:
			c.Floats[i] = floats[rng.Intn(len(floats))]
		case value.KindString:
			c.Strs[i] = strs[rng.Intn(len(strs))]
		case value.KindBool:
			c.Ints[i] = int64(rng.Intn(2))
		case value.KindDate:
			c.Ints[i] = int64(rng.Intn(2000) - 1000)
		default:
			c.Ints[i] = ints[rng.Intn(len(ints))]
		}
	}
	return c
}

var aggColKinds = []value.Kind{
	value.KindInt, value.KindFloat, value.KindString, value.KindBool, value.KindDate,
}

// TestGroupAggregateMatchesAccumulator: the typed kernel and the boxed
// per-group reference agree bit for bit across random columns, group maps
// and lane indirections, for every aggregate function — and when a function
// rejects a kind, both paths produce the identical error.
func TestGroupAggregateMatchesAccumulator(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 400; trial++ {
		kind := aggColKinds[rng.Intn(len(aggColKinds))]
		fn := allAggFuncs[rng.Intn(len(allAggFuncs))]
		m := rng.Intn(90) // base cells; includes 0
		in := randAggCol(rng, kind, m)
		// Half the trials read the column through a lane indirection with
		// repeats and gaps, as η over a filtered IndexView does.
		var rows []int32
		n := m
		if m > 0 && rng.Intn(2) == 0 {
			n = rng.Intn(2 * m)
			rows = make([]int32, n)
			for k := range rows {
				rows[k] = int32(rng.Intn(m))
			}
		}
		ng := 1 + rng.Intn(5) // some groups stay empty
		gids := make([]int32, n)
		for k := range gids {
			gids[k] = int32(rng.Intn(ng))
		}
		var col *Col
		if fn != AggCount || rng.Intn(2) == 0 {
			col = in
		}
		got, _, gotErr := GroupAggregate(fn, col, gids, rows, n, ng)
		want, wantErr := refGroupAggregate(fn, col, gids, rows, n, ng)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("trial %d (%s over %s): kernel err %v, reference err %v", trial, fn, kind, gotErr, wantErr)
		}
		if gotErr != nil {
			if gotErr.Error() != wantErr.Error() {
				t.Fatalf("trial %d (%s over %s): error %q, reference %q", trial, fn, kind, gotErr, wantErr)
			}
			continue
		}
		for g := range want {
			if !bitEqual(got[g], want[g]) {
				t.Fatalf("trial %d (%s over %s, n=%d, ng=%d): group %d = %v, reference %v",
					trial, fn, kind, n, ng, g, got[g], want[g])
			}
		}
	}
}

// TestGroupAggregateMergedPartialsMatchSequential: splitting the lanes into
// chunks, accumulating each into its own state and merging in chunk order
// must reproduce the single sequential state bit for bit whenever MergeExact
// allows the function/kind pair to chunk at all.
func TestGroupAggregateMergedPartialsMatchSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for trial := 0; trial < 200; trial++ {
		kind := aggColKinds[rng.Intn(len(aggColKinds))]
		fn := allAggFuncs[rng.Intn(len(allAggFuncs))]
		if !MergeExact(fn, kind) {
			continue
		}
		n := 1 + rng.Intn(120)
		in := randAggCol(rng, kind, n)
		ng := 1 + rng.Intn(4)
		gids := make([]int32, n)
		for k := range gids {
			gids[k] = int32(rng.Intn(ng))
		}
		seq, err := NewGroupedAggState(fn, in, nil, ng)
		if err != nil {
			if fn != AggSum && fn != AggAvg && fn != AggStdDev {
				t.Fatalf("trial %d (%s over %s): %v", trial, fn, kind, err)
			}
			continue
		}
		if err := seq.Update(gids, 0, n); err != nil {
			continue // non-numeric sum family: covered by the error test above
		}
		nchunks := 2 + rng.Intn(3)
		var merged *GroupedAggState
		ok := true
		for c := 0; c < nchunks; c++ {
			lo, hi := c*n/nchunks, (c+1)*n/nchunks
			st, err := NewGroupedAggState(fn, in, nil, ng)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if err := st.Update(gids, lo, hi); err != nil {
				ok = false
				break
			}
			if merged == nil {
				merged = st
			} else {
				merged.Merge(st)
			}
		}
		if !ok {
			continue
		}
		a, b := seq.Results(), merged.Results()
		for g := range a {
			if !bitEqual(a[g], b[g]) {
				t.Fatalf("trial %d (%s over %s, %d chunks): group %d sequential %v != merged %v",
					trial, fn, kind, nchunks, g, a[g], b[g])
			}
		}
	}
}

// TestGroupAggregateParallelMatchesSequential: the chunked driver must be
// bit-identical to the forced-sequential run for every function — including
// float summing, which the driver keeps sequential via MergeExact.
func TestGroupAggregateParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	old := ParallelThreshold
	defer func() { ParallelThreshold = old }()
	for _, kind := range []value.Kind{value.KindInt, value.KindFloat} {
		n := 5000
		in := randAggCol(rng, kind, n)
		ng := 7
		gids := make([]int32, n)
		for k := range gids {
			gids[k] = int32(rng.Intn(ng))
		}
		for _, fn := range allAggFuncs {
			ParallelThreshold = 1 << 30
			seq, _, err := GroupAggregate(fn, in, gids, nil, n, ng)
			if err != nil {
				t.Fatalf("%s over %s sequential: %v", fn, kind, err)
			}
			ParallelThreshold = 64
			par, _, err := GroupAggregate(fn, in, gids, nil, n, ng)
			if err != nil {
				t.Fatalf("%s over %s parallel: %v", fn, kind, err)
			}
			for g := range seq {
				if !bitEqual(seq[g], par[g]) {
					t.Fatalf("%s over %s: group %d sequential %v != parallel %v", fn, kind, g, seq[g], par[g])
				}
			}
		}
	}
}

// TestGroupAggregateEdgeCases pins the boundary semantics the boxed
// Accumulator defines: empty inputs, NULL-only groups, int64 wrap-around,
// and COUNT over a column still counting NULL tuples.
func TestGroupAggregateEdgeCases(t *testing.T) {
	// Empty input, one group: COUNT variants yield 0, the rest NULL.
	for _, fn := range allAggFuncs {
		in := &Col{Kind: value.KindInt, Ints: []int64{}}
		res, _, err := GroupAggregate(fn, in, nil, nil, 0, 1)
		if err != nil {
			t.Fatalf("%s over empty: %v", fn, err)
		}
		want := value.Null
		if fn == AggCount || fn == AggCountDistinct {
			want = value.NewInt(0)
		}
		if !bitEqual(res[0], want) {
			t.Fatalf("%s over empty = %v, want %v", fn, res[0], want)
		}
	}
	// A NULL-only group next to a live one.
	nulls := NewBitmap(4)
	BitSet(nulls, 2)
	BitSet(nulls, 3)
	in := &Col{Kind: value.KindInt, Ints: []int64{5, 7, 0, 0}, Nulls: nulls}
	gids := []int32{0, 0, 1, 1}
	res, _, err := GroupAggregate(AggSum, in, gids, nil, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Int() != 12 || !res[1].IsNull() {
		t.Fatalf("SUM groups = %v, %v; want 12, NULL", res[0], res[1])
	}
	res, _, err = GroupAggregate(AggCount, in, gids, nil, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Int() != 2 || res[1].Int() != 2 {
		t.Fatalf("COUNT groups = %v, %v; want 2, 2 (NULL tuples count)", res[0], res[1])
	}
	// Integer SUM wraps in int64 exactly as Accumulator.intSum does.
	wrap := &Col{Kind: value.KindInt, Ints: []int64{math.MaxInt64, 1}}
	res, _, err = GroupAggregate(AggSum, wrap, []int32{0, 0}, nil, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Int() != math.MinInt64 {
		t.Fatalf("wrapping SUM = %v, want MinInt64", res[0])
	}
}

// TestGroupAggregateDeclinesBoxed: dynamically typed columns decline with
// ErrNotVectorizable for cell-reading functions, and COUNT — which never
// reads a cell — still vectorizes over them.
func TestGroupAggregateDeclinesBoxed(t *testing.T) {
	in := BoxedCol([]value.Value{value.NewInt(1), value.NewString("x")})
	gids := []int32{0, 0}
	if _, _, err := GroupAggregate(AggSum, in, gids, nil, 2, 1); !errors.Is(err, ErrNotVectorizable) {
		t.Fatalf("SUM over boxed: err = %v, want ErrNotVectorizable", err)
	}
	res, _, err := GroupAggregate(AggCount, in, gids, nil, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Int() != 2 {
		t.Fatalf("COUNT over boxed = %v, want 2", res[0])
	}
}

// TestGroupedAggStateUpdateAllocs: the accumulation loops allocate nothing —
// state arrays are built once and every Update is pure lane arithmetic.
func TestGroupedAggStateUpdateAllocs(t *testing.T) {
	const n, ng = 8192, 16
	rng := rand.New(rand.NewSource(94))
	gids := make([]int32, n)
	for k := range gids {
		gids[k] = int32(rng.Intn(ng))
	}
	for _, tc := range []struct {
		fn   AggFunc
		kind value.Kind
	}{
		{AggSum, value.KindInt},
		{AggSum, value.KindFloat},
		{AggAvg, value.KindFloat},
		{AggStdDev, value.KindFloat},
		{AggMin, value.KindString},
		{AggMax, value.KindInt},
		{AggCount, value.KindInt},
	} {
		in := randAggCol(rng, tc.kind, n)
		st, err := NewGroupedAggState(tc.fn, in, nil, ng)
		if err != nil {
			t.Fatalf("%s over %s: %v", tc.fn, tc.kind, err)
		}
		allocs := testing.AllocsPerRun(10, func() {
			if err := st.Update(gids, 0, n); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("%s over %s: Update allocates %.0f times for %d lanes", tc.fn, tc.kind, allocs, n)
		}
	}
}

// TestWindowEvalTypedLanesMatchBoxed: feeding WindowEval typed argument and
// key columns (ArgCol/KeyCols, with and without a lane indirection) must be
// bit-identical to the boxed flat Arg/Keys encoding of the same cells.
func TestWindowEvalTypedLanesMatchBoxed(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	argKinds := []value.Kind{value.KindInt, value.KindFloat}
	for trial := 0; trial < 120; trial++ {
		n := rng.Intn(100)
		fn := allWindowFuncs[rng.Intn(len(allWindowFuncs))]
		k := rng.Intn(3)
		if fn.Ranking() && k == 0 {
			k = 1
		}
		var frame *Frame
		if !fn.Ranking() && k > 0 && rng.Intn(3) == 0 {
			frame = randFrame(rng)
		}
		// Base cells, possibly wider than the lane set, read through rows.
		m := n
		var rows []int32
		if n > 0 && rng.Intn(2) == 0 {
			m = n + rng.Intn(n+1)
			rows = make([]int32, n)
			for i := range rows {
				rows[i] = int32(rng.Intn(m))
			}
		}
		argCol := randAggCol(rng, argKinds[rng.Intn(len(argKinds))], m)
		keyCols := make([]*Col, k)
		for j := range keyCols {
			keyCols[j] = randAggCol(rng, aggColKinds[rng.Intn(len(aggColKinds))], m)
		}
		cell := func(l int) int {
			if rows == nil {
				return l
			}
			return int(rows[l])
		}

		typed := WindowInput{N: n, K: k, Rows: rows, ArgCol: argCol, KeyCols: keyCols}
		boxed := WindowInput{N: n, K: k}
		boxed.Arg = make([]value.Value, n)
		for i := 0; i < n; i++ {
			boxed.Arg[i] = argCol.Value(cell(i))
		}
		if fn == WinCount && rng.Intn(2) == 0 {
			typed.ArgCol, boxed.Arg = nil, nil // COUNT(*)
		}
		if k > 0 {
			typed.Desc = make([]bool, k)
			for j := range typed.Desc {
				typed.Desc[j] = rng.Intn(2) == 0
			}
			boxed.Desc = typed.Desc
			boxed.Keys = make([]value.Value, n*k)
			for i := 0; i < n; i++ {
				for j := 0; j < k; j++ {
					boxed.Keys[i*k+j] = keyCols[j].Value(cell(i))
				}
			}
		}
		if rng.Intn(2) == 0 && n > 0 {
			ids := make([]int32, n)
			for i := range ids {
				ids[i] = int32(rng.Intn(4))
			}
			typed.Parts = &Grouping{IDs: ids}
			boxed.Parts = typed.Parts
		}
		spec := WindowSpec{Func: fn, Frame: frame}
		got, gotErr := WindowEval(spec, typed)
		want, wantErr := WindowEval(spec, boxed)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("trial %d (%s): typed err %v, boxed err %v", trial, fn, gotErr, wantErr)
		}
		if gotErr != nil {
			if gotErr.Error() != wantErr.Error() {
				t.Fatalf("trial %d (%s): typed error %q, boxed %q", trial, fn, gotErr, wantErr)
			}
			continue
		}
		for i := range want {
			if !bitEqual(got[i], want[i]) {
				t.Fatalf("trial %d (%s, k=%d, frame=%v): lane %d typed %v != boxed %v",
					trial, fn, k, frame, i, got[i], want[i])
			}
		}
	}
}
