package relation

import (
	"fmt"
	"strings"
	"sync"

	"sheetmusiq/internal/obs"
	"sheetmusiq/internal/value"
)

// SortKey names a column and a direction for sorting.
type SortKey struct {
	Column string
	Desc   bool
}

// Presentation-sort kernel. The ordering operator λ runs on every replay, so
// the sort used to pay closure + interface dispatch per comparison through
// sort.SliceStable, re-indexing the key columns out of each row every time.
// The keyed sort extracts the sort columns once into a flat array, orders an
// int32 index permutation with a typed stable merge sort, and applies the
// permutation in one pass. SortPermCols is the columnar variant: it compares
// typed column payloads directly, with no boxed key extraction at all. Above
// ParallelThreshold the permutation is chunk-sorted concurrently and the
// sorted runs merge pairwise; every merge prefers the left (lower original
// index) run on ties, so the result is stable and bit-identical to the
// sequential sort.
var (
	sortKeyed    = obs.Default.Counter("relation.sort.keyed")
	sortParallel = obs.Default.Counter("relation.sort.parallel")
)

// permSorter stably orders an int32 permutation under an arbitrary strict
// less. Both the boxed keyed sort and the typed columnar sort run through
// it, so their stability and parallel-merge determinism are identical.
type permSorter struct {
	less func(a, b int32) bool
}

// keyedSorter orders row indexes by precomputed key columns. keys holds k
// values per row, row-major; desc flips the direction per key position.
type keyedSorter struct {
	keys []value.Value
	k    int
	desc []bool
}

func (s *keyedSorter) less(a, b int32) bool {
	ka := s.keys[int(a)*s.k : int(a)*s.k+s.k]
	kb := s.keys[int(b)*s.k : int(b)*s.k+s.k]
	for i := 0; i < s.k; i++ {
		c := value.MustCompare(ka[i], kb[i])
		if c == 0 {
			continue
		}
		if s.desc[i] {
			return c > 0
		}
		return c < 0
	}
	return false
}

// sortRunCutoff is the run length below which the merge sort switches to
// insertion sort (stable, cache-friendly, no merge buffer traffic).
const sortRunCutoff = 24

// insertionSort stably orders a short run in place.
func (s *permSorter) insertionSort(p []int32) {
	for i := 1; i < len(p); i++ {
		for j := i; j > 0 && s.less(p[j], p[j-1]); j-- {
			p[j], p[j-1] = p[j-1], p[j]
		}
	}
}

// sortRun stably orders p using buf (same length) as merge scratch.
func (s *permSorter) sortRun(p, buf []int32) {
	if len(p) <= sortRunCutoff {
		s.insertionSort(p)
		return
	}
	mid := len(p) / 2
	s.sortRun(p[:mid], buf[:mid])
	s.sortRun(p[mid:], buf[mid:])
	if !s.less(p[mid], p[mid-1]) {
		return // halves already in order
	}
	// Copy the left half out and merge back into p. The write cursor can
	// never overtake the right half's read cursor, so the overlap is safe.
	copy(buf[:mid], p[:mid])
	s.mergeInto(buf[:mid], p[mid:], p)
}

// mergeInto merges sorted runs a and b into out, preferring a on ties.
// Stability follows because a always holds lower original positions than b.
func (s *permSorter) mergeInto(a, b, out []int32) {
	i, j, w := 0, 0, 0
	for i < len(a) && j < len(b) {
		if s.less(b[j], a[i]) {
			out[w] = b[j]
			j++
		} else {
			out[w] = a[i]
			i++
		}
		w++
	}
	copy(out[w:], a[i:])
	copy(out[w+len(a)-i:], b[j:])
}

// sort stably orders the full permutation, fanning out above the parallel
// threshold: chunks sort concurrently, then sorted runs merge pairwise (also
// concurrently) until one run remains.
func (s *permSorter) sort(perm []int32) {
	n := len(perm)
	buf := make([]int32, n)
	bounds := Chunks(n)
	if len(bounds) <= 1 {
		s.sortRun(perm, buf)
		return
	}
	sortParallel.Inc()
	_ = RunChunks(bounds, func(_, lo, hi int) error {
		s.sortRun(perm[lo:hi], buf[lo:hi])
		return nil
	})
	src, dst := perm, buf
	for len(bounds) > 1 {
		next := make([][2]int, 0, (len(bounds)+1)/2)
		var wg sync.WaitGroup
		for i := 0; i < len(bounds); i += 2 {
			lo := bounds[i][0]
			if i+1 == len(bounds) {
				// Odd run out: carry it into the destination unchanged.
				hi := bounds[i][1]
				copy(dst[lo:hi], src[lo:hi])
				next = append(next, bounds[i])
				continue
			}
			mid, hi := bounds[i][1], bounds[i+1][1]
			next = append(next, [2]int{lo, hi})
			wg.Add(1)
			go func(lo, mid, hi int) {
				defer wg.Done()
				s.mergeInto(src[lo:mid], src[mid:hi], dst[lo:hi])
			}(lo, mid, hi)
		}
		wg.Wait()
		src, dst = dst, src
		bounds = next
	}
	if &src[0] != &perm[0] {
		copy(perm, src)
	}
}

// SortPermByKeys stably orders row indexes 0..n-1 by precomputed keys — k
// values per row, row-major, with desc flipping the direction per key
// position — and returns the permutation. Relation.Sort is this kernel
// applied to extracted column values; the SQL executor feeds it computed
// ORDER BY expression results.
func SortPermByKeys(keys []value.Value, k int, desc []bool) []int32 {
	n := len(keys) / k
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	if n < 2 {
		return perm
	}
	sortKeyed.Inc()
	s := &keyedSorter{keys: keys, k: k, desc: desc}
	(&permSorter{less: s.less}).sort(perm)
	return perm
}

// colCompare builds a three-way comparator over one key column's cells,
// mapping sort lanes to cell indexes through rows (nil = identity).
// Semantics are exactly value.MustCompare on the boxed cells: NULLs first,
// exact int64 comparison, float comparison that leaves NaN unordered,
// strings.Compare, bool/date by payload.
func colCompare(c *Col, rows []int32) func(a, b int32) int {
	cell := func(l int32) int {
		if rows == nil {
			return int(l)
		}
		return int(rows[l])
	}
	if c.Boxed != nil {
		return func(a, b int32) int {
			return value.MustCompare(c.Boxed[cell(a)], c.Boxed[cell(b)])
		}
	}
	// The no-null identity-lane combinations dominate sorting whole
	// relations; their comparators index the payload directly, with no lane
	// mapping or null branch on the compare path.
	if rows == nil && c.Nulls == nil && c.Kind != value.KindNull {
		switch c.Kind {
		case value.KindFloat:
			fs := c.Floats
			return func(a, b int32) int {
				x, y := fs[a], fs[b]
				switch {
				case x < y:
					return -1
				case x > y:
					return 1
				default:
					return 0
				}
			}
		case value.KindString:
			ss := c.Strs
			return func(a, b int32) int {
				return strings.Compare(ss[a], ss[b])
			}
		default:
			xs := c.Ints
			return func(a, b int32) int {
				x, y := xs[a], xs[b]
				switch {
				case x < y:
					return -1
				case x > y:
					return 1
				default:
					return 0
				}
			}
		}
	}
	nullCmp := func(i, j int) (int, bool) {
		ni, nj := c.IsNull(i), c.IsNull(j)
		switch {
		case ni && nj:
			return 0, true
		case ni:
			return -1, true
		case nj:
			return 1, true
		}
		return 0, false
	}
	switch c.Kind {
	case value.KindFloat:
		return func(a, b int32) int {
			i, j := cell(a), cell(b)
			if r, done := nullCmp(i, j); done {
				return r
			}
			x, y := c.Floats[i], c.Floats[j]
			switch {
			case x < y:
				return -1
			case x > y:
				return 1
			default:
				return 0
			}
		}
	case value.KindString:
		return func(a, b int32) int {
			i, j := cell(a), cell(b)
			if r, done := nullCmp(i, j); done {
				return r
			}
			return strings.Compare(c.Strs[i], c.Strs[j])
		}
	default: // Int, Bool, Date, and all-NULL columns share the int payload
		return func(a, b int32) int {
			i, j := cell(a), cell(b)
			if r, done := nullCmp(i, j); done {
				return r
			}
			x, y := c.Ints[i], c.Ints[j]
			switch {
			case x < y:
				return -1
			case x > y:
				return 1
			default:
				return 0
			}
		}
	}
}

// SortPermCols stably orders sort lanes 0..n-1 by the typed key columns,
// reading cell indexes through rows (nil = identity), and returns the
// permutation — SortPermByKeys without the boxed key extraction.
func SortPermCols(keyCols []*Col, rows []int32, n int, desc []bool) []int32 {
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	if n < 2 || len(keyCols) == 0 {
		return perm
	}
	sortKeyed.Inc()
	cmps := make([]func(a, b int32) int, len(keyCols))
	for i, c := range keyCols {
		cmps[i] = colCompare(c, rows)
	}
	less := func(a, b int32) bool {
		for i, cmp := range cmps {
			c := cmp(a, b)
			if c == 0 {
				continue
			}
			if desc[i] {
				return c > 0
			}
			return c < 0
		}
		return false
	}
	(&permSorter{less: less}).sort(perm)
	return perm
}

// sortPlan resolves keys against the schema into column indexes and
// per-key directions.
func (r *Relation) sortPlan(keys []SortKey) (idx []int, desc []bool, err error) {
	idx = make([]int, len(keys))
	desc = make([]bool, len(keys))
	for i, k := range keys {
		j := r.Schema.IndexOf(k.Column)
		if j < 0 {
			return nil, nil, fmt.Errorf("sort: no column %q in %s", k.Column, r.Name)
		}
		idx[i] = j
		desc[i] = k.Desc
	}
	return idx, desc, nil
}

// Sort stably orders the relation's rows by the given keys, NULLs first
// within ascending order. The receiver is modified in place (Rows is
// replaced with a newly ordered slice; a columnar cache is invalidated).
// When the column vectors are already built the permutation orders through
// the typed lane comparators (SortPermCols) with no boxed key extraction;
// otherwise the keys extract once into a flat boxed array.
func (r *Relation) Sort(keys []SortKey) error {
	idx, desc, err := r.sortPlan(keys)
	if err != nil {
		return err
	}
	src := r.TupleRows()
	n := len(src)
	if n < 2 || len(keys) == 0 {
		return nil
	}
	var perm []int32
	if cols := r.CachedColumns(); cols != nil {
		keyCols := make([]*Col, len(idx))
		for i, j := range idx {
			keyCols[i] = cols[j]
		}
		perm = SortPermCols(keyCols, nil, n, desc)
	} else {
		k := len(idx)
		flat := make([]value.Value, n*k)
		_ = ForChunks(n, func(_, lo, hi int) error {
			for i := lo; i < hi; i++ {
				row, out := src[i], flat[i*k:(i+1)*k]
				for j, c := range idx {
					out[j] = row[c]
				}
			}
			return nil
		})
		perm = SortPermByKeys(flat, k, desc)
	}
	rows := make([]Tuple, n)
	_ = ForChunks(n, func(_, lo, hi int) error {
		for i := lo; i < hi; i++ {
			rows[i] = src[perm[i]]
		}
		return nil
	})
	r.invalidateColumns()
	r.Rows = rows
	return nil
}

// SortedClone returns a sorted copy, leaving the receiver untouched. Above
// the columnar threshold the copy is built column-wise: the permutation
// orders typed lanes (SortPermCols) and each column gathers through it, so
// the whole operation allocates O(columns), not O(rows) — no boxed sort key
// and no per-row clone. The result is column-built; its rows materialize
// lazily through TupleRows.
func (r *Relation) SortedClone(keys []SortKey) (*Relation, error) {
	n := r.Len()
	if n >= ColumnarThreshold && len(keys) > 0 {
		idx, desc, err := r.sortPlan(keys)
		if err != nil {
			return nil, err
		}
		cols := r.Columns()
		keyCols := make([]*Col, len(idx))
		for i, j := range idx {
			keyCols[i] = cols[j]
		}
		perm := SortPermCols(keyCols, nil, n, desc)
		sorted := make([]*Col, len(cols))
		_ = ForChunks(len(cols), func(_, lo, hi int) error {
			for ci := lo; ci < hi; ci++ {
				sorted[ci] = cols[ci].Gather(perm)
			}
			return nil
		})
		return FromColumns(r.Name, r.Schema, sorted, n), nil
	}
	out := r.Clone()
	if err := out.Sort(keys); err != nil {
		return nil, err
	}
	return out, nil
}
