package relation

import (
	"fmt"
	"sort"

	"sheetmusiq/internal/value"
)

// SortKey names a column and a direction for sorting.
type SortKey struct {
	Column string
	Desc   bool
}

// Sort stably orders the relation's rows by the given keys, NULLs first
// within ascending order. The receiver is modified in place.
func (r *Relation) Sort(keys []SortKey) error {
	idx := make([]int, len(keys))
	for i, k := range keys {
		j := r.Schema.IndexOf(k.Column)
		if j < 0 {
			return fmt.Errorf("sort: no column %q in %s", k.Column, r.Name)
		}
		idx[i] = j
	}
	sort.SliceStable(r.Rows, func(a, b int) bool {
		ta, tb := r.Rows[a], r.Rows[b]
		for i, j := range idx {
			c := value.MustCompare(ta[j], tb[j])
			if c == 0 {
				continue
			}
			if keys[i].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return nil
}

// SortedClone returns a sorted copy, leaving the receiver untouched.
func (r *Relation) SortedClone(keys []SortKey) (*Relation, error) {
	out := r.Clone()
	if err := out.Sort(keys); err != nil {
		return nil, err
	}
	return out, nil
}
