package relation

import (
	"errors"
	"fmt"
	"strings"

	"sheetmusiq/internal/value"
)

// AggFunc names a SQL-style aggregate function.
type AggFunc string

// The supported aggregate functions. Count counts tuples in the group (the
// paper's Sec. III-B rule: tuples, never sub-groups); CountDistinct counts
// distinct non-NULL inputs; the remainder ignore NULL inputs as in SQL.
const (
	AggSum           AggFunc = "SUM"
	AggAvg           AggFunc = "AVG"
	AggMin           AggFunc = "MIN"
	AggMax           AggFunc = "MAX"
	AggCount         AggFunc = "COUNT"
	AggCountDistinct AggFunc = "COUNT_DISTINCT"
	AggStdDev        AggFunc = "STDDEV"
)

// ParseAggFunc resolves a case-insensitive aggregate name.
func ParseAggFunc(name string) (AggFunc, error) {
	switch strings.ToUpper(name) {
	case "SUM":
		return AggSum, nil
	case "AVG", "MEAN":
		return AggAvg, nil
	case "MIN":
		return AggMin, nil
	case "MAX":
		return AggMax, nil
	case "COUNT":
		return AggCount, nil
	case "COUNT_DISTINCT":
		return AggCountDistinct, nil
	case "STDDEV", "STDEV":
		return AggStdDev, nil
	}
	return "", fmt.Errorf("relation: unknown aggregate function %q", name)
}

// ResultKind returns the kind an aggregate over an input kind produces.
func (f AggFunc) ResultKind(input value.Kind) value.Kind {
	switch f {
	case AggCount, AggCountDistinct:
		return value.KindInt
	case AggAvg, AggStdDev:
		return value.KindFloat
	case AggSum:
		if input == value.KindInt {
			return value.KindInt
		}
		return value.KindFloat
	default: // MIN, MAX preserve input kind
		return input
	}
}

// valueSet is a small open-addressing set of values under value.Equal —
// COUNT_DISTINCT's backing store, with no per-value string key.
type valueSet struct {
	slots  []int32 // index+1 into vals; 0 marks an empty slot
	mask   uint64
	vals   []value.Value
	hashes []uint64
}

func newValueSet() *valueSet {
	return &valueSet{slots: make([]int32, 16), mask: 15}
}

// Len returns the number of distinct values added.
func (s *valueSet) Len() int { return len(s.vals) }

// Add inserts v unless an equal value is already present.
func (s *valueSet) Add(v value.Value) { s.addHashed(v, value.Hash(v)) }

func (s *valueSet) addHashed(v value.Value, h uint64) {
	i := h & s.mask
	for {
		sl := s.slots[i]
		if sl == 0 {
			break
		}
		if j := sl - 1; s.hashes[j] == h && value.Equal(s.vals[j], v) {
			return
		}
		i = (i + 1) & s.mask
	}
	s.vals = append(s.vals, v)
	s.hashes = append(s.hashes, h)
	s.slots[i] = int32(len(s.vals))
	if 4*len(s.vals) >= 3*len(s.slots) {
		s.grow()
	}
}

func (s *valueSet) grow() {
	slots := make([]int32, 2*len(s.slots))
	mask := uint64(len(slots) - 1)
	for j, h := range s.hashes {
		i := h & mask
		for slots[i] != 0 {
			i = (i + 1) & mask
		}
		slots[i] = int32(j) + 1
	}
	s.slots = slots
	s.mask = mask
}

// AddAll folds every value of o into s.
func (s *valueSet) AddAll(o *valueSet) {
	for i, v := range o.vals {
		s.addHashed(v, o.hashes[i])
	}
}

// Accumulator incrementally computes one aggregate.
type Accumulator struct {
	fn       AggFunc
	count    int64 // tuples seen (COUNT semantics)
	nonNull  int64
	sum      float64
	sumSq    float64
	intSum   int64
	intExact bool
	min, max value.Value
	distinct *valueSet
}

// NewAccumulator returns an accumulator for fn.
func NewAccumulator(fn AggFunc) *Accumulator {
	a := &Accumulator{fn: fn, intExact: true}
	if fn == AggCountDistinct {
		a.distinct = newValueSet()
	}
	return a
}

// Add feeds one input value. COUNT counts every tuple including NULLs
// (matching COUNT(*)); all other functions skip NULL inputs.
func (a *Accumulator) Add(v value.Value) error {
	a.count++
	if v.IsNull() {
		return nil
	}
	a.nonNull++
	switch a.fn {
	case AggCount:
		return nil
	case AggCountDistinct:
		a.distinct.Add(v)
		return nil
	case AggMin:
		if a.min.IsNull() {
			a.min = v
		} else if value.MustCompare(v, a.min) < 0 {
			a.min = v
		}
		return nil
	case AggMax:
		if a.max.IsNull() {
			a.max = v
		} else if value.MustCompare(v, a.max) > 0 {
			a.max = v
		}
		return nil
	}
	f, ok := v.AsFloat()
	if !ok {
		return fmt.Errorf("relation: %s over non-numeric %s", a.fn, v.Kind())
	}
	if v.Kind() == value.KindInt {
		a.intSum += v.Int()
	} else {
		a.intExact = false
	}
	a.sum += f
	a.sumSq += f * f
	return nil
}

// MergeExact reports whether chunked accumulation merged via Merge is
// bit-identical to the sequential scan for fn over the given input kind.
// COUNT, COUNT_DISTINCT, MIN and MAX are order-insensitive for any input;
// the summing functions re-associate addition, which is exact for integer
// inputs (the int64 and sub-2^53 float paths) but not for float streams.
// Callers keep float-stream summing sequential so every parallel result
// stays deterministic and identical to the sequential one.
func MergeExact(fn AggFunc, input value.Kind) bool {
	switch fn {
	case AggSum, AggAvg, AggStdDev:
		return input != value.KindFloat
	}
	return true
}

// Merge folds o — an accumulator for the same function fed a later chunk
// of the group's rows — into a. The parallel aggregation path accumulates
// per-chunk partials and merges them in chunk order, so first-seen
// tie-breaks (MIN/MAX over compare-equal values) match the sequential
// scan. SUM, COUNT, MIN and MAX merge directly; AVG and STDDEV merge
// through their sum/sum-of-squares/count decomposition.
func (a *Accumulator) Merge(o *Accumulator) {
	a.count += o.count
	a.nonNull += o.nonNull
	a.sum += o.sum
	a.sumSq += o.sumSq
	a.intSum += o.intSum
	a.intExact = a.intExact && o.intExact
	if !o.min.IsNull() && (a.min.IsNull() || value.MustCompare(o.min, a.min) < 0) {
		a.min = o.min
	}
	if !o.max.IsNull() && (a.max.IsNull() || value.MustCompare(o.max, a.max) > 0) {
		a.max = o.max
	}
	if o.distinct != nil {
		a.distinct.AddAll(o.distinct)
	}
}

// Result returns the final aggregate value. Empty groups yield NULL for
// every function except COUNT variants, which yield 0.
func (a *Accumulator) Result() value.Value {
	switch a.fn {
	case AggCount:
		return value.NewInt(a.count)
	case AggCountDistinct:
		return value.NewInt(int64(a.distinct.Len()))
	}
	if a.nonNull == 0 {
		return value.Null
	}
	switch a.fn {
	case AggSum:
		if a.intExact {
			return value.NewInt(a.intSum)
		}
		return value.NewFloat(a.sum)
	case AggAvg:
		return value.NewFloat(a.sum / float64(a.nonNull))
	case AggMin:
		return a.min
	case AggMax:
		return a.max
	case AggStdDev:
		n := float64(a.nonNull)
		mean := a.sum / n
		varc := a.sumSq/n - mean*mean
		if varc < 0 {
			varc = 0
		}
		// Population standard deviation; documented in DESIGN.md.
		return value.NewFloat(sqrt(varc))
	}
	return value.Null
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton iteration; avoids importing math for one call and keeps the
	// accumulator allocation-free.
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// GroupBy partitions rows by the named columns (in order) and returns, for
// each group in first-appearance order, the group key values and the row
// indexes belonging to it.
func (r *Relation) GroupBy(cols []string) (keys [][]value.Value, groups [][]int, err error) {
	idx, err := r.ColumnIndexes(cols)
	if err != nil {
		return nil, nil, err
	}
	rows := r.TupleRows()
	gr := GroupRowsOn(rows, idx)
	n := gr.NumGroups()
	if n == 0 {
		return nil, nil, nil
	}
	counts := make([]int, n)
	for _, gid := range gr.IDs {
		counts[gid]++
	}
	keys = make([][]value.Value, n)
	groups = make([][]int, n)
	for g, ri := range gr.First {
		t := rows[ri]
		kv := make([]value.Value, len(idx))
		for i, j := range idx {
			kv[i] = t[j]
		}
		keys[g] = kv
		groups[g] = make([]int, 0, counts[g])
	}
	for ri, gid := range gr.IDs {
		groups[gid] = append(groups[gid], ri)
	}
	return keys, groups, nil
}

// Aggregate computes fn over the named column for every group defined by
// groupCols, returning one row per group: the group key columns followed by
// the aggregate result. Empty groupCols aggregates the whole relation.
func (r *Relation) Aggregate(groupCols []string, fn AggFunc, col string) (*Relation, error) {
	var ci = -1
	if col != "" {
		ci = r.ColumnIndex(col)
		if ci < 0 {
			return nil, fmt.Errorf("aggregate: no column %q in %s", col, r.Name)
		}
	} else if fn != AggCount {
		return nil, fmt.Errorf("aggregate: %s requires a column", fn)
	}
	// Columnar fast path: when column vectors already exist (or the relation
	// is large enough that building them pays for itself) the whole pass —
	// grouping, accumulation, key extraction — runs over typed payloads.
	if r.Len() > 0 {
		cols := r.CachedColumns()
		if cols == nil && r.Len() >= autoColumnarThreshold {
			cols = r.Columns()
		}
		if cols != nil {
			return r.aggregateCols(cols, groupCols, fn, col, ci)
		}
	}
	keys, groups, err := r.GroupBy(groupCols)
	if err != nil {
		return nil, err
	}
	if len(groupCols) == 0 && len(groups) == 0 {
		// Aggregate over an empty, ungrouped relation still yields one row.
		keys = [][]value.Value{{}}
		groups = [][]int{{}}
	}
	inKind := value.KindFloat
	if ci >= 0 {
		inKind = r.Schema[ci].Kind
	}
	schema := make(Schema, 0, len(groupCols)+1)
	gidx, _ := r.ColumnIndexes(groupCols)
	for _, j := range gidx {
		schema = append(schema, r.Schema[j])
	}
	outName := string(fn) + "_" + col
	if col == "" {
		outName = string(fn)
	}
	schema = append(schema, Column{Name: outName, Kind: fn.ResultKind(inKind)})
	out := New(r.Name, schema)
	srcRows := r.TupleRows()
	for g, rows := range groups {
		acc := NewAccumulator(fn)
		for _, ri := range rows {
			var v value.Value
			if ci >= 0 {
				v = srcRows[ri][ci]
			} else {
				v = value.NewInt(1)
			}
			if err := acc.Add(v); err != nil {
				return nil, err
			}
		}
		row := make(Tuple, 0, len(schema))
		row = append(row, keys[g]...)
		row = append(row, acc.Result())
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// aggregateCols is Aggregate over the columnar representation: typed
// grouping (GroupCols), typed accumulation loops for the numeric and
// ordered-kind functions, and a per-group boxed Accumulator fed in ascending
// row order for the rest — the same accumulation order as the row path, so
// float sums and first-seen tie-breaks are bit-identical.
func (r *Relation) aggregateCols(cols []*Col, groupCols []string, fn AggFunc, col string, ci int) (*Relation, error) {
	gidx, err := r.ColumnIndexes(groupCols)
	if err != nil {
		return nil, err
	}
	n := r.Len()
	keyCols := make([]*Col, len(gidx))
	for i, j := range gidx {
		keyCols[i] = cols[j]
	}
	gr := GroupCols(keyCols, nil, n)
	ng := gr.NumGroups()

	inKind := value.KindFloat
	if ci >= 0 {
		inKind = r.Schema[ci].Kind
	}
	schema := make(Schema, 0, len(gidx)+1)
	for _, j := range gidx {
		schema = append(schema, r.Schema[j])
	}
	outName := string(fn) + "_" + col
	if col == "" {
		outName = string(fn)
	}
	schema = append(schema, Column{Name: outName, Kind: fn.ResultKind(inKind)})

	var in *Col
	if ci >= 0 {
		in = cols[ci]
	}
	results, err := aggregateColumn(fn, in, gr, ng, n)
	if err != nil {
		return nil, err
	}
	out := New(r.Name, schema)
	for g := 0; g < ng; g++ {
		row := make(Tuple, 0, len(schema))
		ri := int(gr.First[g])
		for _, j := range gidx {
			row = append(row, cols[j].Value(ri))
		}
		row = append(row, results[g])
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// aggregateColumn computes fn over the input column for every group,
// dispatching to the typed grouped-aggregation kernel (GroupedAggState, via
// GroupAggregate) when the column's representation allows and the boxed
// per-group accumulator otherwise. in is nil only for COUNT with no column.
func aggregateColumn(fn AggFunc, in *Col, gr *Grouping, ng, n int) ([]value.Value, error) {
	res, _, err := GroupAggregate(fn, in, gr.IDs, nil, n, ng)
	if err == nil {
		return res, nil
	}
	if !errors.Is(err, ErrNotVectorizable) {
		return nil, err
	}
	// Generic: one accumulator per group, fed in ascending row order.
	accs := make([]*Accumulator, ng)
	for g := range accs {
		accs[g] = NewAccumulator(fn)
	}
	for i := 0; i < n; i++ {
		if err := accs[gr.IDs[i]].Add(in.Value(i)); err != nil {
			return nil, err
		}
	}
	res = make([]value.Value, ng)
	for g := range res {
		res[g] = accs[g].Result()
	}
	return res, nil
}
