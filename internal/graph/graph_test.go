package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func TestBasics(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddEdge("a", "c")
	g.AddEdge("a", "b") // duplicate edge is dropped
	g.Add("d")          // isolated

	if !g.Has("a") || !g.Has("d") || g.Has("zz") {
		t.Fatalf("Has: unexpected membership")
	}
	if g.Len() != 4 {
		t.Fatalf("Len = %d, want 4", g.Len())
	}
	if got := g.Nodes(); !reflect.DeepEqual(got, []string{"a", "b", "c", "d"}) {
		t.Fatalf("Nodes = %v", got)
	}
	if got := g.Out("a"); !reflect.DeepEqual(got, []string{"b", "c"}) {
		t.Fatalf("Out(a) = %v", got)
	}
	if got := g.In("c"); !reflect.DeepEqual(got, []string{"b", "a"}) {
		t.Fatalf("In(c) = %v", got)
	}
	if got := g.Descendants("a"); !reflect.DeepEqual(got, []string{"b", "c"}) {
		t.Fatalf("Descendants(a) = %v", got)
	}
	if got := g.Ancestors("c"); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("Ancestors(c) = %v", got)
	}
	if got := g.Descendants("zz"); got != nil {
		t.Fatalf("Descendants(missing) = %v, want nil", got)
	}
	if got := g.Descendants("d"); got != nil {
		t.Fatalf("Descendants(isolated) = %v, want nil", got)
	}
}

func TestPath(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("b", "d")
	g.AddEdge("a", "c")
	g.AddEdge("c", "d")
	g.AddEdge("d", "e")

	if got := g.Path("a", "e"); !reflect.DeepEqual(got, []string{"a", "b", "d", "e"}) {
		t.Fatalf("Path(a,e) = %v", got)
	}
	if got := g.Path("a", "a"); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("Path(a,a) = %v", got)
	}
	if got := g.Path("e", "a"); got != nil {
		t.Fatalf("Path(e,a) = %v, want nil (directed)", got)
	}
	if got := g.Path("a", "zz"); got != nil {
		t.Fatalf("Path to missing node = %v, want nil", got)
	}
}

// naiveClosure computes reachability by repeated single-edge expansion — an
// independent reference for Descendants/Ancestors on random DAGs.
func naiveClosure(edges map[string][]string, start string) []string {
	reach := map[string]bool{}
	for changed := true; changed; {
		changed = false
		frontier := append([]string{start}, keys(reach)...)
		for _, n := range frontier {
			for _, m := range edges[n] {
				if !reach[m] && m != start {
					reach[m] = true
					changed = true
				}
			}
		}
	}
	out := keys(reach)
	sort.Strings(out)
	return out
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestClosureMatchesNaiveOnRandomDAGs(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(24)
		ids := make([]string, n)
		for i := range ids {
			ids[i] = string(rune('A' + i))
		}
		g := New()
		fwd := map[string][]string{}
		rev := map[string][]string{}
		for _, id := range ids {
			g.Add(id)
		}
		// Edges only go from lower to higher index: acyclic by construction.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(3) == 0 {
					g.AddEdge(ids[i], ids[j])
					fwd[ids[i]] = append(fwd[ids[i]], ids[j])
					rev[ids[j]] = append(rev[ids[j]], ids[i])
				}
			}
		}
		for _, id := range ids {
			got := append([]string(nil), g.Descendants(id)...)
			sort.Strings(got)
			want := naiveClosure(fwd, id)
			if !equalSets(got, want) {
				t.Fatalf("seed %d: Descendants(%s) = %v, naive = %v", seed, id, got, want)
			}
			got = append([]string(nil), g.Ancestors(id)...)
			sort.Strings(got)
			want = naiveClosure(rev, id)
			if !equalSets(got, want) {
				t.Fatalf("seed %d: Ancestors(%s) = %v, naive = %v", seed, id, got, want)
			}
		}
	}
}

func equalSets(a, b []string) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

func TestPathIsShortestOnRandomDAGs(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		n := 3 + rng.Intn(12)
		ids := make([]string, n)
		for i := range ids {
			ids[i] = string(rune('a' + i))
		}
		g := New()
		dist := map[string]map[string]int{}
		for _, id := range ids {
			g.Add(id)
			dist[id] = map[string]int{id: 0}
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(2) == 0 {
					g.AddEdge(ids[i], ids[j])
				}
			}
		}
		// Floyd–Warshall over the node order (valid: edges go forward only).
		const inf = 1 << 20
		d := func(a, b string) int {
			if v, ok := dist[a][b]; ok {
				return v
			}
			return inf
		}
		for i := 0; i < n; i++ {
			for _, to := range g.Out(ids[i]) {
				if 1 < d(ids[i], to) {
					dist[ids[i]][to] = 1
				}
			}
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if v := d(ids[i], ids[k]) + d(ids[k], ids[j]); v < d(ids[i], ids[j]) {
						dist[ids[i]][ids[j]] = v
					}
				}
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				p := g.Path(ids[i], ids[j])
				want := d(ids[i], ids[j])
				if want >= inf {
					if p != nil {
						t.Fatalf("seed %d: Path(%s,%s) = %v, want unreachable", seed, ids[i], ids[j], p)
					}
					continue
				}
				if len(p) != want+1 {
					t.Fatalf("seed %d: Path(%s,%s) length %d, want %d (%v)", seed, ids[i], ids[j], len(p), want+1, p)
				}
				if p[0] != ids[i] || p[len(p)-1] != ids[j] {
					t.Fatalf("seed %d: Path endpoints %v", seed, p)
				}
				for k := 0; k+1 < len(p); k++ {
					if !hasEdge(g, p[k], p[k+1]) {
						t.Fatalf("seed %d: Path step %s→%s is not an edge", seed, p[k], p[k+1])
					}
				}
			}
		}
	}
}

func hasEdge(g *Graph, from, to string) bool {
	for _, o := range g.Out(from) {
		if o == to {
			return true
		}
	}
	return false
}
