// Package graph implements the small string-identified DAG the dependency
// surface of internal/core is built on: stage and column nodes, directed
// dependency edges, and the reachability queries (dependents, dependencies,
// paths) the deps/impact product API answers. The package is deliberately
// generic — nodes are opaque IDs — so the same structure can key
// cross-session artifact sharing later without dragging core types along.
package graph

// Graph is a directed graph of string-identified nodes. Nodes and edges
// keep insertion order, and every query returns results in that order, so
// renderings and tests are deterministic. The graph does not check for
// cycles; callers building from stratified pipelines get acyclicity by
// construction.
type Graph struct {
	ids   []string
	index map[string]int
	out   [][]int
	in    [][]int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{index: map[string]int{}}
}

// Add inserts a node, idempotently, and returns its dense index.
func (g *Graph) Add(id string) int {
	if i, ok := g.index[id]; ok {
		return i
	}
	i := len(g.ids)
	g.index[id] = i
	g.ids = append(g.ids, id)
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return i
}

// AddEdge inserts the directed edge from → to, creating missing nodes and
// dropping duplicates. An edge reads "to depends on from": impact flows
// along out-edges, dependencies against them.
func (g *Graph) AddEdge(from, to string) {
	f, t := g.Add(from), g.Add(to)
	for _, o := range g.out[f] {
		if o == t {
			return
		}
	}
	g.out[f] = append(g.out[f], t)
	g.in[t] = append(g.in[t], f)
}

// Has reports whether the node exists.
func (g *Graph) Has(id string) bool {
	_, ok := g.index[id]
	return ok
}

// Len returns the node count.
func (g *Graph) Len() int { return len(g.ids) }

// Nodes returns the node IDs in insertion order.
func (g *Graph) Nodes() []string { return append([]string(nil), g.ids...) }

// Out returns the direct dependents of id (its out-neighbours).
func (g *Graph) Out(id string) []string { return g.neighbours(id, g.out) }

// In returns the direct dependencies of id (its in-neighbours).
func (g *Graph) In(id string) []string { return g.neighbours(id, g.in) }

func (g *Graph) neighbours(id string, adj [][]int) []string {
	i, ok := g.index[id]
	if !ok {
		return nil
	}
	out := make([]string, len(adj[i]))
	for k, n := range adj[i] {
		out[k] = g.ids[n]
	}
	return out
}

// Descendants returns every node reachable from id along out-edges — the
// transitive impact set — excluding id itself, in insertion order. A missing
// id returns nil.
func (g *Graph) Descendants(id string) []string { return g.reach(id, g.out) }

// Ancestors returns every node id transitively depends on (reachable along
// in-edges), excluding id itself, in insertion order.
func (g *Graph) Ancestors(id string) []string { return g.reach(id, g.in) }

func (g *Graph) reach(id string, adj [][]int) []string {
	start, ok := g.index[id]
	if !ok {
		return nil
	}
	seen := make([]bool, len(g.ids))
	seen[start] = true
	queue := []int{start}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, m := range adj[n] {
			if !seen[m] {
				seen[m] = true
				queue = append(queue, m)
			}
		}
	}
	var out []string
	for i, s := range seen {
		if s && i != start {
			out = append(out, g.ids[i])
		}
	}
	return out
}

// Path returns one shortest directed path from → to (inclusive of both
// endpoints), following out-edges; nil when no path exists. Among equal-
// length paths the one through lowest-insertion-order nodes wins, so the
// result is deterministic.
func (g *Graph) Path(from, to string) []string {
	f, ok := g.index[from]
	if !ok {
		return nil
	}
	t, ok := g.index[to]
	if !ok {
		return nil
	}
	if f == t {
		return []string{from}
	}
	prev := make([]int, len(g.ids))
	for i := range prev {
		prev[i] = -1
	}
	prev[f] = f
	queue := []int{f}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, m := range g.out[n] {
			if prev[m] >= 0 {
				continue
			}
			prev[m] = n
			if m == t {
				var rev []int
				for at := t; at != f; at = prev[at] {
					rev = append(rev, at)
				}
				rev = append(rev, f)
				path := make([]string, len(rev))
				for i := range rev {
					path[i] = g.ids[rev[len(rev)-1-i]]
				}
				return path
			}
			queue = append(queue, m)
		}
	}
	return nil
}
