package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"sheetmusiq/internal/engine"
	"sheetmusiq/internal/repl"
	isql "sheetmusiq/internal/sql"
)

// client wraps an httptest server with JSON helpers.
type client struct {
	t    *testing.T
	base string
}

func newTestServer(t *testing.T, cfg Config) (*Manager, *client) {
	t.Helper()
	m := NewManager(cfg)
	ts := httptest.NewServer(NewHandler(m))
	t.Cleanup(ts.Close)
	return m, &client{t: t, base: ts.URL}
}

// do issues a request and decodes the JSON response into out (if non-nil).
func (c *client) do(method, path string, body, out any) int {
	c.t.Helper()
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			c.t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	if out != nil && len(raw) > 0 {
		if err := json.Unmarshal(raw, out); err != nil {
			c.t.Fatalf("%s %s: decoding %q: %v", method, path, raw, err)
		}
	}
	return resp.StatusCode
}

// op applies one algebra step and requires success.
func (c *client) op(id string, op engine.Op) *engine.Effect {
	c.t.Helper()
	var eff engine.Effect
	if code := c.do("POST", "/v1/sessions/"+id+"/op", op, &eff); code != http.StatusOK {
		c.t.Fatalf("op %+v: status %d", op, code)
	}
	return &eff
}

// create opens a session and returns its id.
func (c *client) create(name string) string {
	c.t.Helper()
	var resp createResponse
	if code := c.do("POST", "/v1/sessions", createRequest{Name: name}, &resp); code != http.StatusCreated {
		c.t.Fatalf("create: status %d", code)
	}
	return resp.ID
}

// TestServerWalkthrough drives the paper's used-cars session (Sec. I-B)
// over HTTP and checks every step against a REPL session running the same
// commands on the shared engine: the two front ends must agree exactly.
func TestServerWalkthrough(t *testing.T) {
	_, c := newTestServer(t, Config{})
	id := c.create("sam")

	// The same session, driven through the REPL's text surface.
	var sb strings.Builder
	rs := repl.New(&sb)
	for _, line := range []string{
		"demo cars",
		"select Condition = 'Good' OR Condition = 'Excellent'",
		"group desc Model",
		"group asc Year",
		"sort Price asc",
		"agg avg Price 3 as Avg_Price",
		"select Price < Avg_Price",
		"modify 1 Condition = 'Excellent'",
	} {
		if err := rs.Exec(line); err != nil {
			t.Fatalf("repl %q: %v", line, err)
		}
	}

	steps := []engine.Op{
		{Op: "demo", Table: "cars"},
		{Op: "select", Predicate: "Condition = 'Good' OR Condition = 'Excellent'"},
		{Op: "group", Dir: "desc", Columns: []string{"Model"}},
		{Op: "group", Dir: "asc", Columns: []string{"Year"}},
		{Op: "sort", Column: "Price", Dir: "asc"},
		{Op: "agg", Fn: "avg", Column: "Price", Level: 3, Name: "Avg_Price"},
		{Op: "select", Predicate: "Price < Avg_Price"},
		{Op: "modify", ID: 1, Predicate: "Condition = 'Excellent'"},
	}
	for i, op := range steps {
		eff := c.op(id, op)
		if eff.Op != op.Op {
			t.Fatalf("step %d: effect op %q, want %q", i, eff.Op, op.Op)
		}
	}

	// Per-step effects already checked; now the final state must match the
	// REPL's engine field for field.
	var got renderResponse
	if code := c.do("GET", "/v1/sessions/"+id+"/render", nil, &got); code != http.StatusOK {
		t.Fatalf("render: status %d", code)
	}
	wantGrid, err := rs.Engine().Grid(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Grid, wantGrid) {
		t.Fatalf("server grid diverges from REPL grid:\n  http: %+v\n  repl: %+v", got.Grid, wantGrid)
	}
	wantTree, err := rs.Engine().Tree()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Tree, wantTree) {
		t.Fatalf("server tree diverges from REPL tree:\n  http: %+v\n  repl: %+v", got.Tree, wantTree)
	}

	var st engine.StateInfo
	if code := c.do("GET", "/v1/sessions/"+id+"/state", nil, &st); code != http.StatusOK {
		t.Fatalf("state: status %d", code)
	}
	wantState, err := rs.Engine().State()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&st, wantState) {
		t.Fatalf("server state diverges from REPL state:\n  http: %+v\n  repl: %+v", &st, wantState)
	}
	if st.Version != 7 || len(st.Grouping) != 2 {
		t.Fatalf("walkthrough state: version %d grouping %+v", st.Version, st.Grouping)
	}

	var sq sqlResponse
	if code := c.do("GET", "/v1/sessions/"+id+"/sql", nil, &sq); code != http.StatusOK {
		t.Fatalf("sql: status %d", code)
	}
	wantSQL, err := rs.Engine().SQL()
	if err != nil {
		t.Fatal(err)
	}
	if sq.SQL != wantSQL || len(sq.Stages) == 0 {
		t.Fatalf("server sql %q, repl sql %q, stages %d", sq.SQL, wantSQL, len(sq.Stages))
	}

	var menu engine.MenuInfo
	if code := c.do("GET", "/v1/sessions/"+id+"/menu/Price", nil, &menu); code != http.StatusOK {
		t.Fatalf("menu: status %d", code)
	}
	if menu.Column != "Price" || len(menu.FilterOps) == 0 {
		t.Fatalf("menu: %+v", menu)
	}
}

// TestServerRenderLimit checks the ?limit query knob.
func TestServerRenderLimit(t *testing.T) {
	_, c := newTestServer(t, Config{})
	id := c.create("")
	c.op(id, engine.Op{Op: "demo", Table: "cars"})
	var got renderResponse
	if code := c.do("GET", "/v1/sessions/"+id+"/render?limit=3", nil, &got); code != http.StatusOK {
		t.Fatalf("render: status %d", code)
	}
	if len(got.Rows) != 3 || got.Total != 9 {
		t.Fatalf("limit=3: rows %d total %d", len(got.Rows), got.Total)
	}
	if code := c.do("GET", "/v1/sessions/"+id+"/render?limit=zero", nil, nil); code != http.StatusBadRequest {
		t.Fatalf("bad limit: status %d", code)
	}
}

// TestServerSharedCatalog saves a sheet in one session and consumes it from
// another via a binary operator and the catalog endpoint.
func TestServerSharedCatalog(t *testing.T) {
	_, c := newTestServer(t, Config{})
	a := c.create("a")
	c.op(a, engine.Op{Op: "demo", Table: "cars"})
	c.op(a, engine.Op{Op: "select", Predicate: "Condition = 'Excellent'"})
	c.op(a, engine.Op{Op: "save", Name: "nice"})

	var cat map[string][]string
	if code := c.do("GET", "/v1/catalog", nil, &cat); code != http.StatusOK {
		t.Fatalf("catalog: status %d", code)
	}
	if !reflect.DeepEqual(cat["sheets"], []string{"nice"}) {
		t.Fatalf("catalog sheets: %v", cat["sheets"])
	}

	b := c.create("b")
	c.op(b, engine.Op{Op: "demo", Table: "cars"})
	c.op(b, engine.Op{Op: "minus", Sheet: "nice"})
	var got renderResponse
	if code := c.do("GET", "/v1/sessions/"+b+"/render", nil, &got); code != http.StatusOK {
		t.Fatalf("render: status %d", code)
	}
	if got.Total != 5 {
		t.Fatalf("9 − 4 excellent = %d, want 5", got.Total)
	}

	c.op(b, engine.Op{Op: "renamesheet", Sheet: "nice", Name: "fancy"})
	if c.do("GET", "/v1/catalog", nil, &cat); !reflect.DeepEqual(cat["sheets"], []string{"fancy"}) {
		t.Fatalf("catalog after rename: %v", cat["sheets"])
	}
}

// TestServerLifecycle covers create/list/close and the tables endpoint.
func TestServerLifecycle(t *testing.T) {
	m, c := newTestServer(t, Config{})
	id := c.create("alice")
	c.op(id, engine.Op{Op: "demo", Table: "cars"})

	var list map[string][]Info
	if code := c.do("GET", "/v1/sessions", nil, &list); code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	ss := list["sessions"]
	if len(ss) != 1 || ss[0].ID != id || ss[0].Name != "alice" || ss[0].Sheet != "cars" || ss[0].Ops != 1 {
		t.Fatalf("sessions: %+v", ss)
	}

	var tabs map[string][]string
	if code := c.do("GET", "/v1/sessions/"+id+"/tables", nil, &tabs); code != http.StatusOK {
		t.Fatalf("tables: status %d", code)
	}
	if !reflect.DeepEqual(tabs["tables"], []string{"cars"}) {
		t.Fatalf("tables: %v", tabs["tables"])
	}

	if code := c.do("DELETE", "/v1/sessions/"+id, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: status %d", code)
	}
	if code := c.do("DELETE", "/v1/sessions/"+id, nil, nil); code != http.StatusNotFound {
		t.Fatalf("double delete: status %d", code)
	}
	if m.Len() != 0 {
		t.Fatalf("manager still holds %d sessions", m.Len())
	}
}

// TestServerErrors checks the HTTP error surface: status codes and the JSON
// error envelope.
func TestServerErrors(t *testing.T) {
	_, c := newTestServer(t, Config{})
	id := c.create("")

	var eb errorBody
	if code := c.do("GET", "/v1/sessions/nope/state", nil, &eb); code != http.StatusNotFound || eb.Error == "" {
		t.Fatalf("unknown session: status %d body %+v", code, eb)
	}
	// No sheet yet: engine-level conflict.
	if code := c.do("POST", "/v1/sessions/"+id+"/op", engine.Op{Op: "select", Predicate: "Year = 2005"}, &eb); code != http.StatusConflict {
		t.Fatalf("op before demo: status %d (%s)", code, eb.Error)
	}
	c.op(id, engine.Op{Op: "demo", Table: "cars"})
	// Bad op kind and bad predicate are plain 400s.
	if code := c.do("POST", "/v1/sessions/"+id+"/op", engine.Op{Op: "frobnicate"}, &eb); code != http.StatusBadRequest {
		t.Fatalf("unknown op: status %d", code)
	}
	if code := c.do("POST", "/v1/sessions/"+id+"/op", engine.Op{Op: "select", Predicate: "NotAColumn < 3"}, &eb); code != http.StatusBadRequest {
		t.Fatalf("bad predicate: status %d", code)
	}
	// Unknown JSON fields are rejected, not ignored.
	req, _ := http.NewRequest("POST", c.base+"/v1/sessions/"+id+"/op",
		strings.NewReader(`{"op":"select","predicat":"Year = 2005"}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("misspelled field: status %d", resp.StatusCode)
	}
	// Filesystem ops are gated off by default — in every case spelling the
	// dispatcher accepts, so "Export" cannot sneak past a gate "export"
	// hits.
	for _, op := range []engine.Op{
		{Op: "load", Path: "/etc/passwd"},
		{Op: "savestate", Path: "/tmp/x"},
		{Op: "loadstate", Path: "/tmp/x"},
		{Op: "export", Path: "/tmp/x"},
		{Op: "Load", Path: "/etc/passwd"},
		{Op: "SaveState", Path: "/tmp/x"},
		{Op: "LoadState", Path: "/tmp/x"},
		{Op: "Export", Path: "/tmp/x"},
		{Op: "EXPORT", Path: "/tmp/x"},
	} {
		if code := c.do("POST", "/v1/sessions/"+id+"/op", op, &eb); code != http.StatusForbidden {
			t.Fatalf("op %q should be forbidden, got %d", op.Op, code)
		}
	}
}

// TestServerCreateEmptyBody checks that a bodiless POST /v1/sessions (the
// natural curl -X POST) creates an anonymous session: every createRequest
// field is optional.
func TestServerCreateEmptyBody(t *testing.T) {
	_, c := newTestServer(t, Config{})
	resp, err := http.Post(c.base+"/v1/sessions", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("empty-body create: status %d, want %d", resp.StatusCode, http.StatusCreated)
	}
	var cr createResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if cr.ID == "" || cr.Name != "" {
		t.Fatalf("empty-body create: %+v", cr)
	}
	// A malformed (non-empty) body is still rejected.
	bad, err := http.Post(c.base+"/v1/sessions", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated body: status %d, want %d", bad.StatusCode, http.StatusBadRequest)
	}
}

// TestManagerCloseDoesNotBlockOnBusySession pins the non-blocking close
// contract: closing (or evicting) a session whose engine is mid-op must not
// wait for the op — otherwise one slow query would hold the manager mutex
// and stall every other session's Create/Get/List.
func TestManagerCloseDoesNotBlockOnBusySession(t *testing.T) {
	m := NewManager(Config{})
	s, err := m.Create("busy")
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- s.Do(func(*engine.Engine) error {
			close(entered)
			<-release
			return nil
		})
	}()
	<-entered

	closed := make(chan bool, 1)
	go func() { closed <- m.Close(s.ID()) }()
	select {
	case ok := <-closed:
		if !ok {
			t.Fatal("Close reported unknown session")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close blocked on a session with an op in flight")
	}
	if m.Len() != 0 {
		t.Fatalf("len = %d after close, want 0", m.Len())
	}

	// The in-flight op runs to completion; the next one fails cleanly.
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("in-flight Do after close: %v", err)
	}
	if err := s.Do(func(*engine.Engine) error { return nil }); err != ErrSessionClosed {
		t.Fatalf("Do after close = %v, want ErrSessionClosed", err)
	}
}

// TestServerFilesystemOptIn verifies AllowFilesystem opens the gate.
func TestServerFilesystemOptIn(t *testing.T) {
	_, c := newTestServer(t, Config{AllowFilesystem: true})
	id := c.create("")
	c.op(id, engine.Op{Op: "demo", Table: "cars"})
	path := t.TempDir() + "/cars.csv"
	eff := c.op(id, engine.Op{Op: "export", Path: path})
	if eff.Rows != 9 {
		t.Fatalf("export rows = %d, want 9", eff.Rows)
	}
}

// TestManagerLRUEviction fills the cap and checks the oldest session goes.
func TestManagerLRUEviction(t *testing.T) {
	m := NewManager(Config{MaxSessions: 2})
	a, _ := m.Create("a")
	b, _ := m.Create("b")
	// Touch a so b becomes the LRU.
	if _, ok := m.Get(a.ID()); !ok {
		t.Fatal("a should be live")
	}
	ccc, _ := m.Create("c")
	if m.Len() != 2 {
		t.Fatalf("len = %d, want 2", m.Len())
	}
	if _, ok := m.Get(b.ID()); ok {
		t.Fatal("b should have been LRU-evicted")
	}
	if _, ok := m.Get(a.ID()); !ok {
		t.Fatal("a should have survived")
	}
	// The evicted session's engine fails cleanly, not silently.
	if err := b.Do(func(*engine.Engine) error { return nil }); err != ErrSessionClosed {
		t.Fatalf("evicted Do error = %v, want ErrSessionClosed", err)
	}
	_ = ccc
}

// TestManagerIdleTTL drives the swappable clock past the TTL.
func TestManagerIdleTTL(t *testing.T) {
	m := NewManager(Config{IdleTTL: time.Minute})
	now := time.Unix(1_000_000, 0)
	m.now = func() time.Time { return now }

	a, _ := m.Create("a")
	b, _ := m.Create("b")
	now = now.Add(30 * time.Second)
	if _, ok := m.Get(a.ID()); !ok { // refreshes a's idle clock
		t.Fatal("a should be live at 30s")
	}
	now = now.Add(45 * time.Second)
	// b idle 75s > TTL; a idle 45s.
	if n := m.Sweep(); n != 1 {
		t.Fatalf("sweep closed %d, want 1", n)
	}
	if _, ok := m.Get(b.ID()); ok {
		t.Fatal("b should have expired")
	}
	if _, ok := m.Get(a.ID()); !ok {
		t.Fatal("a should still be live")
	}
	// Lazy expiry on Get, without an explicit Sweep.
	now = now.Add(2 * time.Minute)
	if _, ok := m.Get(a.ID()); ok {
		t.Fatal("a should lazily expire on Get")
	}
	if m.Len() != 0 {
		t.Fatalf("len = %d, want 0", m.Len())
	}
}

// TestManagerSeed verifies the per-session table seeding hook runs.
func TestManagerSeed(t *testing.T) {
	calls := 0
	m := NewManager(Config{Seed: func(db *isql.DB) error { calls++; return nil }})
	if _, err := m.Create(""); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(""); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("seed ran %d times, want 2", calls)
	}
	bad := NewManager(Config{Seed: func(db *isql.DB) error { return fmt.Errorf("boom") }})
	if _, err := bad.Create(""); err == nil {
		t.Fatal("seed failure should fail Create")
	}
}

// TestServerPlanEndpoint checks GET /plan: it reports the incremental
// evaluation pipeline (DESIGN.md §10), and after a single-op modification
// the upstream stages show as cached while the modified stage recomputes.
func TestServerPlanEndpoint(t *testing.T) {
	_, c := newTestServer(t, Config{})
	id := c.create("")
	c.op(id, engine.Op{Op: "demo", Table: "cars"})
	c.op(id, engine.Op{Op: "select", Predicate: "Year >= 2003"})
	c.op(id, engine.Op{Op: "sort", Column: "Price", Dir: "asc"})

	var cold engine.PlanInfo
	if code := c.do("GET", "/v1/sessions/"+id+"/plan", nil, &cold); code != http.StatusOK {
		t.Fatalf("plan: status %d", code)
	}
	if cold.Sheet != "cars" || len(cold.Stages) != 3 {
		t.Fatalf("cold plan: %+v", cold)
	}
	if cold.Stages[0].Name != "base" || cold.Stages[0].Cached {
		t.Fatalf("cold base stage: %+v", cold.Stages[0])
	}

	// Flip the sort: base and σ must be served from cache, λ recomputed.
	c.op(id, engine.Op{Op: "sort", Column: "Price", Dir: "desc"})
	var warm engine.PlanInfo
	if code := c.do("GET", "/v1/sessions/"+id+"/plan", nil, &warm); code != http.StatusOK {
		t.Fatalf("warm plan: status %d", code)
	}
	if len(warm.Stages) != 3 || !warm.Stages[0].Cached || !warm.Stages[1].Cached || warm.Stages[2].Cached {
		t.Fatalf("warm plan after sort flip: %+v", warm.Stages)
	}
	if warm.Stages[0].Fingerprint != cold.Stages[0].Fingerprint {
		t.Fatal("base fingerprint must be stable across modifications")
	}

	// A session with no sheet yet gets the uniform 409.
	id2 := c.create("")
	if code := c.do("GET", "/v1/sessions/"+id2+"/plan", nil, nil); code != http.StatusConflict {
		t.Fatalf("plan without sheet: status %d", code)
	}
}
