package server

import (
	"log/slog"
	"net/http"
	"net/http/pprof"
	"time"

	"sheetmusiq/internal/obs"
)

// Server-layer metrics. Request metrics are per route (the route name, not
// the raw path, keys the counter so /v1/sessions/{id}/op is one series no
// matter how many sessions exist); session metrics count lifecycle events
// by cause plus a live gauge.
var (
	srvInflight    = obs.Default.Gauge("server.inflight")
	sessLive       = obs.Default.Gauge("server.sessions.live")
	sessDormant    = obs.Default.Gauge("server.sessions.dormant")
	sessCreated    = obs.Default.Counter("server.sessions.created")
	sessClosed     = obs.Default.Counter("server.sessions.closed")
	sessEvicted    = obs.Default.Counter("server.sessions.evicted")
	sessExpired    = obs.Default.Counter("server.sessions.expired")
	sessShutdown   = obs.Default.Counter("server.sessions.shutdown")
	sessRehydrated = obs.Default.Counter("server.sessions.rehydrated")
)

// closeReason tags closeLocked with the lifecycle counter to bump.
type closeReason int

const (
	reasonClosed   closeReason = iota // explicit DELETE (durable state deleted too)
	reasonEvicted                     // LRU cap (durable state kept)
	reasonExpired                     // idle TTL (durable state kept)
	reasonShutdown                    // graceful process shutdown (durable state kept)
)

func (c closeReason) String() string {
	switch c {
	case reasonEvicted:
		return "evicted"
	case reasonExpired:
		return "expired"
	case reasonShutdown:
		return "shutdown"
	}
	return "closed"
}

func (c closeReason) counter() *obs.Counter {
	switch c {
	case reasonEvicted:
		return sessEvicted
	case reasonExpired:
		return sessExpired
	case reasonShutdown:
		return sessShutdown
	}
	return sessClosed
}

// statusWriter captures the response status for metrics and logs.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// instrument wraps one route's handler with the observability envelope:
//
//   - request-ID handling: an inbound X-Request-ID is honoured (so a
//     gateway's ID follows the request through), otherwise one is minted;
//     either way it is echoed on the response header, carried in the
//     request context (writeError puts it in JSON error bodies), and
//     stamped on every log line;
//   - a per-request obs.Trace, so handler spans (engine calls) show up in
//     the request log;
//   - per-route request/error counters and a latency histogram, plus the
//     process-wide in-flight gauge;
//   - one structured log line per request.
func (m *Manager) instrument(route string, fn http.HandlerFunc) http.HandlerFunc {
	reqs := obs.Default.Counter("server.requests." + route)
	errs := obs.Default.Counter("server.request_errors." + route)
	lat := obs.Default.Histogram("server.request_seconds." + route)
	return func(w http.ResponseWriter, r *http.Request) {
		rid := r.Header.Get("X-Request-ID")
		if rid == "" {
			rid = obs.NewRequestID()
		}
		tr := obs.NewTrace(rid)
		ctx := obs.WithTrace(obs.WithRequestID(r.Context(), rid), tr)
		r = r.WithContext(ctx)
		w.Header().Set("X-Request-ID", rid)

		srvInflight.Add(1)
		defer srvInflight.Add(-1)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		fn(sw, r)
		dur := time.Since(start)
		lat.Observe(dur)
		reqs.Inc()
		if sw.status >= 400 {
			errs.Inc()
		}

		level := slog.LevelDebug
		switch {
		case sw.status >= 500:
			level = slog.LevelError
		case sw.status >= 400:
			level = slog.LevelWarn
		}
		if !m.log.Enabled(ctx, level) {
			return
		}
		attrs := []slog.Attr{
			slog.String("rid", rid),
			slog.String("route", route),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Duration("dur", dur),
		}
		if sid := r.PathValue("id"); sid != "" {
			attrs = append(attrs, slog.String("session", sid))
		}
		if spans := tr.Summary(); spans != "" {
			attrs = append(attrs, slog.String("spans", spans))
		}
		m.log.LogAttrs(ctx, level, "request", attrs...)
	}
}

// metricsHandler serves GET /v1/metrics: a JSON snapshot of the process
// registry — server request/session series, engine per-op series, and the
// eval-pipeline series from core/relation/sql/expr. Maps marshal with
// sorted keys, so the document is deterministic for a given state.
func metricsHandler(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, obs.Default.Snapshot())
}

// mountPprof exposes the standard net/http/pprof handlers on the API mux.
// Gated behind Config.EnablePprof: profiles reveal internals (and the CPU
// profile costs real time), so production deployments opt in explicitly.
func mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
