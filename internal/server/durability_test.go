package server

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sheetmusiq/internal/engine"
	"sheetmusiq/internal/wal"
)

// newStore opens a WAL store over a fresh temp dir (unsynced: these tests
// exercise crash recovery by abandoning managers, not by losing power).
func newStore(t *testing.T, dir string) *wal.Store {
	t.Helper()
	st, err := wal.NewStore(dir, wal.Options{Sync: wal.SyncNone}, wal.DefaultSnapshotEvery)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// render fetches the full evaluated grid as raw JSON for byte comparison.
func (c *client) render(id string) string {
	c.t.Helper()
	var raw json.RawMessage
	if code := c.do("GET", "/v1/sessions/"+id+"/render", nil, &raw); code != http.StatusOK {
		c.t.Fatalf("render %s: status %d", id, code)
	}
	return string(raw)
}

// carsOps is a short representative session.
var carsOps = []engine.Op{
	{Op: "demo", Table: "cars"},
	{Op: "select", Predicate: "Condition = 'Good' OR Condition = 'Excellent'"},
	{Op: "group", Dir: "desc", Columns: []string{"Model"}},
	{Op: "sort", Column: "Price", Dir: "asc"},
	{Op: "agg", Fn: "avg", Column: "Price", Level: 2, Name: "Avg_Price"},
	{Op: "undo"},
	{Op: "redo"},
	{Op: "select", Predicate: "Price < Avg_Price"},
}

// TestEvictThenReopenReplaysNothing is the flush-on-eviction regression:
// LRU eviction checkpoints the session's WAL, so touching the evicted id
// again rehydrates it from the checkpoint with zero replayed ops and the
// exact same grid — undo history included.
func TestEvictThenReopenReplaysNothing(t *testing.T) {
	m, c := newTestServer(t, Config{MaxSessions: 1, Durability: newStore(t, t.TempDir())})
	s1 := c.create("first")
	for _, op := range carsOps {
		c.op(s1, op)
	}
	want := c.render(s1)

	s2 := c.create("second") // cap is 1: evicts s1
	if s1 == s2 {
		t.Fatal("expected distinct ids")
	}
	m.wg.Wait() // WAL flush runs on a background goroutine
	if _, ok := m.sessions[s1]; ok {
		t.Fatal("s1 still live after eviction")
	}

	if got := c.render(s1); got != want { // rehydrates (and evicts s2)
		t.Fatalf("rehydrated grid differs\n got %s\nwant %s", got, want)
	}
	s, ok := m.Get(s1)
	if !ok {
		t.Fatal("s1 gone after rehydration")
	}
	if s.recovered == nil {
		t.Fatal("rehydrated session has no recovery stats")
	}
	if s.recovered.Replayed != 0 {
		t.Fatalf("eviction flush should leave nothing to replay, replayed %d", s.recovered.Replayed)
	}
	if s.recovered.CheckpointSeq == 0 {
		t.Fatal("rehydration did not use the eviction checkpoint")
	}
	// The undo history survived the round trip.
	if eff := c.op(s1, engine.Op{Op: "undo"}); eff.Op != "undo" {
		t.Fatalf("undo after rehydration: %+v", eff)
	}
}

// TestShutdownFlushesSessions: graceful shutdown checkpoints every live
// session, so the next process rehydrates each with zero replayed ops.
func TestShutdownFlushesSessions(t *testing.T) {
	dir := t.TempDir()
	m, c := newTestServer(t, Config{Durability: newStore(t, dir)})
	id := c.create("sam")
	for _, op := range carsOps {
		c.op(id, op)
	}
	want := c.render(id)
	m.Shutdown()

	m2, c2 := newTestServer(t, Config{Durability: newStore(t, dir)})
	if got := c2.render(id); got != want {
		t.Fatalf("grid differs after shutdown + restart\n got %s\nwant %s", got, want)
	}
	s, ok := m2.Get(id)
	if !ok {
		t.Fatal("session missing after restart")
	}
	if s.recovered == nil || s.recovered.Replayed != 0 {
		t.Fatalf("shutdown flush should leave nothing to replay: %+v", s.recovered)
	}
}

// TestCrashRestartEveryBoundary kills the server (abandons the manager
// without any shutdown, as kill -9 would) after every op prefix and checks
// that a new manager over the same data dir serves the identical grid.
func TestCrashRestartEveryBoundary(t *testing.T) {
	// Reference grids from an undisturbed server.
	_, ref := newTestServer(t, Config{})
	refID := ref.create("ref")
	refGrids := make([]string, len(carsOps)+1)
	for i, op := range carsOps {
		if i == 0 {
			refGrids[0] = "" // no sheet yet; render would 409
		}
		ref.op(refID, op)
		refGrids[i+1] = ref.render(refID)
	}

	for k := 1; k <= len(carsOps); k++ {
		dir := t.TempDir()
		st, err := wal.NewStore(dir, wal.Options{Sync: wal.SyncNone}, 3)
		if err != nil {
			t.Fatal(err)
		}
		_, c := newTestServer(t, Config{Durability: st})
		id := c.create("crash")
		for _, op := range carsOps[:k] {
			c.op(id, op)
		}
		// Crash: no Shutdown, no Close. A fresh manager scans the dir.
		_, c2 := newTestServer(t, Config{Durability: newStore(t, dir)})
		if got := c2.render(id); got != refGrids[k] {
			t.Fatalf("k=%d: grid differs after crash restart\n got %s\nwant %s", k, got, refGrids[k])
		}
	}
}

// TestExplainNotLogged: no-op reads must not reach the WAL or bump the
// snapshot counter (satellite: engine.Apply reports mutation).
func TestExplainNotLogged(t *testing.T) {
	m, c := newTestServer(t, Config{Durability: newStore(t, t.TempDir())})
	id := c.create("sam")
	c.op(id, engine.Op{Op: "demo", Table: "cars"})
	c.op(id, engine.Op{Op: "select", Predicate: "Year = 2005"})
	for i := 0; i < 5; i++ {
		c.op(id, engine.Op{Op: "explain"})
	}
	s, _ := m.Get(id)
	if got := s.wlog.LastSeq(); got != 2 {
		t.Fatalf("wal holds %d records, want 2 (explain must not be logged)", got)
	}
}

// TestDeleteRemovesDurableState: an explicit DELETE erases the session's
// data directory — unlike eviction, nothing survives for rehydration.
func TestDeleteRemovesDurableState(t *testing.T) {
	dir := t.TempDir()
	m, c := newTestServer(t, Config{Durability: newStore(t, dir)})
	id := c.create("sam")
	c.op(id, engine.Op{Op: "demo", Table: "cars"})
	if code := c.do("DELETE", "/v1/sessions/"+id, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: status %d", code)
	}
	m.wg.Wait()
	if _, err := os.Stat(filepath.Join(dir, "sessions", id)); !os.IsNotExist(err) {
		t.Fatalf("session dir still on disk after DELETE (err=%v)", err)
	}
	if code := c.do("GET", "/v1/sessions/"+id+"/render", nil, nil); code != http.StatusNotFound {
		t.Fatalf("render after delete: status %d, want 404", code)
	}
	m2, _ := newTestServer(t, Config{Durability: newStore(t, dir)})
	if _, ok := m2.Get(id); ok {
		t.Fatal("deleted session came back after restart")
	}
}

// TestExpiredSessionRehydrates: with durability on, TTL expiry parks the
// session instead of killing it; the next touch transparently rehydrates.
func TestExpiredSessionRehydrates(t *testing.T) {
	m, c := newTestServer(t, Config{IdleTTL: time.Minute, Durability: newStore(t, t.TempDir())})
	now := time.Unix(1_000_000, 0)
	m.now = func() time.Time { return now }
	id := c.create("sam")
	for _, op := range carsOps {
		c.op(id, op)
	}
	want := c.render(id)

	now = now.Add(2 * time.Minute)
	if got := c.render(id); got != want {
		t.Fatalf("grid differs after expiry + rehydration\n got %s\nwant %s", got, want)
	}
	s, ok := m.Get(id)
	if !ok {
		t.Fatal("expired durable session should rehydrate, not vanish")
	}
	if s.recovered == nil || s.recovered.Replayed != 0 {
		t.Fatalf("expiry flush should leave nothing to replay: %+v", s.recovered)
	}
}

// TestDormantSessionsListed: sessions persisted by a previous process show
// up in the listing as dormant without being rehydrated.
func TestDormantSessionsListed(t *testing.T) {
	dir := t.TempDir()
	m, c := newTestServer(t, Config{Durability: newStore(t, dir)})
	id := c.create("sam")
	c.op(id, engine.Op{Op: "demo", Table: "cars"})
	m.Shutdown()

	m2, c2 := newTestServer(t, Config{Durability: newStore(t, dir)})
	var resp struct {
		Sessions []Info `json:"sessions"`
	}
	if code := c2.do("GET", "/v1/sessions", nil, &resp); code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	found := false
	for _, in := range resp.Sessions {
		if in.ID == id {
			found = true
			if !in.Dormant {
				t.Fatal("restored session should list as dormant before first touch")
			}
			if in.Name != "sam" {
				t.Fatalf("dormant listing lost the name: %+v", in)
			}
		}
	}
	if !found {
		t.Fatalf("session %s missing from listing: %+v", id, resp.Sessions)
	}
	if len(m2.sessions) != 0 {
		t.Fatal("listing must not rehydrate dormant sessions")
	}
}
