package server

import (
	"net/http"
	"strings"
	"testing"

	"sheetmusiq/internal/engine"
)

// TestServerDepsEndpoint exercises GET /deps end-to-end over a scripted
// multi-depth sheet (an aggregate over a formula over a formula over a base
// column, with a depth-1 predicate): the full graph carries the reference
// chain, a focused query reports the impact closure and the path between
// two nodes, and a subsequent modification advances the exact-invalidation
// counter visible at /v1/metrics.
func TestServerDepsEndpoint(t *testing.T) {
	_, c := newTestServer(t, Config{})
	id := c.create("")
	c.op(id, engine.Op{Op: "demo", Table: "cars"})
	c.op(id, engine.Op{Op: "formula", Name: "F1", Formula: "Price / 1000"})
	c.op(id, engine.Op{Op: "formula", Name: "F2", Formula: "F1 * 2"})
	c.op(id, engine.Op{Op: "agg", Fn: "avg", Column: "F2", Level: 1, Name: "A"})
	c.op(id, engine.Op{Op: "select", Predicate: "A > 0"})

	var full engine.DepsInfo
	if code := c.do("GET", "/v1/sessions/"+id+"/deps", nil, &full); code != http.StatusOK {
		t.Fatalf("deps: status %d", code)
	}
	if full.Sheet != "cars" || len(full.Nodes) == 0 {
		t.Fatalf("full graph: %+v", full)
	}
	nodes := map[string]bool{}
	for _, n := range full.Nodes {
		nodes[n.ID] = true
	}
	for _, want := range []string{"base", "basecol:price", "col:f1", "col:f2", "col:a", "sel:1"} {
		if !nodes[want] {
			t.Fatalf("full graph missing node %s: %+v", want, full.Nodes)
		}
	}
	edges := map[string]bool{}
	for _, e := range full.Edges {
		edges[e.From+"→"+e.To] = true
	}
	for _, want := range []string{
		"basecol:price→col:f1",
		"col:f1→col:f2",
		"col:f2→col:a",
		"col:a→sel:1",
	} {
		if !edges[want] {
			t.Fatalf("full graph missing edge %s; have %v", want, full.Edges)
		}
	}

	// Focused impact query: everything downstream of F1.
	var focus engine.DepsInfo
	if code := c.do("GET", "/v1/sessions/"+id+"/deps?node=f1", nil, &focus); code != http.StatusOK {
		t.Fatalf("deps?node=f1: status %d", code)
	}
	if focus.Node != "col:f1" {
		t.Fatalf("resolved %q, want col:f1", focus.Node)
	}
	impact := strings.Join(focus.Dependents, " ")
	for _, want := range []string{"col:f2", "col:a", "sel:1"} {
		if !strings.Contains(impact, want) {
			t.Fatalf("dependents of F1 = %v, missing %s", focus.Dependents, want)
		}
	}

	// Path between a base column and the aggregate built on it.
	var path engine.DepsInfo
	if code := c.do("GET", "/v1/sessions/"+id+"/deps?node=Price&to=A", nil, &path); code != http.StatusOK {
		t.Fatalf("deps path: status %d", code)
	}
	want := []string{"basecol:price", "col:f1", "col:f2", "col:a"}
	if len(path.Path) != len(want) {
		t.Fatalf("path = %v, want %v", path.Path, want)
	}
	for i := range want {
		if path.Path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path.Path, want)
		}
	}

	// Modifying the predicate stales only its dependency cone; the graph
	// invalidation counter at /v1/metrics must advance.
	type metrics struct {
		Counters map[string]int64 `json:"counters"`
	}
	var m0 metrics
	if code := c.do("GET", "/v1/metrics", nil, &m0); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	c.op(id, engine.Op{Op: "modify", ID: 1, Predicate: "A > 1"})
	var m1 metrics
	if code := c.do("GET", "/v1/metrics", nil, &m1); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	if d := m1.Counters["core.eval.invalidate.exact"] - m0.Counters["core.eval.invalidate.exact"]; d <= 0 {
		t.Fatalf("core.eval.invalidate.exact advanced by %d after modify, want > 0", d)
	}

	// Unknown node is a client error; a session without a sheet gets the
	// uniform 409.
	if code := c.do("GET", "/v1/sessions/"+id+"/deps?node=NoSuchThing", nil, nil); code < 400 || code >= 500 {
		t.Fatalf("unknown node: status %d, want 4xx", code)
	}
	id2 := c.create("")
	if code := c.do("GET", "/v1/sessions/"+id2+"/deps", nil, nil); code != http.StatusConflict {
		t.Fatalf("deps without sheet: status %d", code)
	}
}
