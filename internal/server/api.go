package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"sheetmusiq/internal/engine"
	"sheetmusiq/internal/obs"
)

// The HTTP/JSON surface. One algebra operator per request, mirroring the
// paper's one-operation-at-a-time interaction model:
//
//	POST   /v1/sessions              create a session            {"name": "sam"}
//	GET    /v1/sessions              list live sessions
//	DELETE /v1/sessions/{id}         close a session
//	POST   /v1/sessions/{id}/op      apply one engine.Op         {"op": "select", ...}
//	GET    /v1/sessions/{id}/state   the Sec. V-A query state
//	GET    /v1/sessions/{id}/render  flat rows + recursive group tree [?limit=N]
//	GET    /v1/sessions/{id}/sql     the SQL the state compiles to
//	GET    /v1/sessions/{id}/plan    the evaluation stage plan (cache hits/recomputes)
//	GET    /v1/sessions/{id}/deps    the stage/column dependency graph (?node=&to= focus a query)
//	GET    /v1/sessions/{id}/menu/{column}  the Sec. VI contextual menu
//	GET    /v1/sessions/{id}/tables  the session's raw tables
//	GET    /v1/catalog               the shared stored-sheet catalog
//	GET    /v1/metrics               process metrics snapshot (obs registry)
//	GET    /v1/healthz               liveness
//
// Every response carries an X-Request-ID header (the inbound one when the
// caller set it, a fresh one otherwise). Errors are JSON:
// {"error": "...", "request_id": "..."} with 400 (bad op), 403 (filesystem
// op while disabled), 404 (unknown session), 409 (no current sheet), or
// 410 (session closed mid-request).

// errorBody is the uniform error envelope. RequestID ties a client-side
// failure report to the server's log line for the same request.
type errorBody struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

// createRequest is the POST /v1/sessions body.
type createRequest struct {
	Name string `json:"name,omitempty"`
}

// createResponse acknowledges a created session.
type createResponse struct {
	ID   string `json:"id"`
	Name string `json:"name,omitempty"`
}

// renderResponse is the full presentation: the evaluated grid and the
// recursive group tree over it.
type renderResponse struct {
	*engine.Grid
	Tree *engine.TreeNode `json:"tree"`
}

// sqlResponse carries the generated SQL and its staged form.
type sqlResponse struct {
	SQL    string   `json:"sql"`
	Stages []string `json:"stages"`
}

// NewHandler builds the API handler over a session manager. Every route is
// registered through Manager.instrument, which provides per-route metrics,
// request-ID propagation, and the per-request log line.
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern, route string, fn http.HandlerFunc) {
		mux.HandleFunc(pattern, m.instrument(route, fn))
	}

	handle("GET /v1/healthz", "healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})

	handle("GET /v1/metrics", "metrics", metricsHandler)

	handle("GET /v1/catalog", "catalog", func(w http.ResponseWriter, r *http.Request) {
		names := m.Catalog().Names()
		if names == nil {
			names = []string{}
		}
		writeJSON(w, http.StatusOK, map[string][]string{"sheets": names})
	})

	handle("POST /v1/sessions", "session_create", func(w http.ResponseWriter, r *http.Request) {
		var req createRequest
		// Every createRequest field is optional, so a bodiless POST (plain
		// `curl -X POST`) creates an anonymous session rather than 400ing.
		if err := decodeBody(r, &req); err != nil && !errors.Is(err, io.EOF) {
			writeError(w, r, http.StatusBadRequest, err)
			return
		}
		s, err := m.Create(req.Name)
		if err != nil {
			writeError(w, r, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusCreated, createResponse{ID: s.ID(), Name: s.Name()})
	})

	handle("GET /v1/sessions", "session_list", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string][]Info{"sessions": m.List()})
	})

	handle("DELETE /v1/sessions/{id}", "session_close", func(w http.ResponseWriter, r *http.Request) {
		if !m.Close(r.PathValue("id")) {
			writeError(w, r, http.StatusNotFound, fmt.Errorf("no session %q", r.PathValue("id")))
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	handle("POST /v1/sessions/{id}/op", "op", withSession(m, func(w http.ResponseWriter, r *http.Request, s *Session) {
		var op engine.Op
		if err := decodeBody(r, &op); err != nil {
			writeError(w, r, http.StatusBadRequest, err)
			return
		}
		if op.TouchesFilesystem() && !m.cfg.AllowFilesystem {
			writeError(w, r, http.StatusForbidden,
				fmt.Errorf("op %q touches the server filesystem; start the server with filesystem ops enabled", op.Op))
			return
		}
		// ApplyOp rather than Do: on durable sessions the successful op is
		// appended to the session WAL (and periodically checkpointed)
		// before the response is written.
		sp := obs.StartSpan(r.Context(), "engine.apply")
		eff, err := s.ApplyOp(op)
		sp.End()
		if err != nil {
			writeError(w, r, opStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, eff)
	}))

	handle("GET /v1/sessions/{id}/state", "state", withSession(m, func(w http.ResponseWriter, r *http.Request, s *Session) {
		var st *engine.StateInfo
		err := doSpan(r, s, "engine.state", func(e *engine.Engine) error {
			var err error
			st, err = e.State()
			return err
		})
		if err != nil {
			writeError(w, r, opStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	}))

	handle("GET /v1/sessions/{id}/render", "render", withSession(m, func(w http.ResponseWriter, r *http.Request, s *Session) {
		limit := 0
		if q := r.URL.Query().Get("limit"); q != "" {
			n, err := strconv.Atoi(q)
			if err != nil || n < 1 {
				writeError(w, r, http.StatusBadRequest, fmt.Errorf("bad limit %q", q))
				return
			}
			limit = n
		}
		var resp renderResponse
		err := doSpan(r, s, "engine.render", func(e *engine.Engine) error {
			grid, err := e.Grid(limit)
			if err != nil {
				return err
			}
			tree, err := e.Tree()
			if err != nil {
				return err
			}
			resp = renderResponse{Grid: grid, Tree: tree}
			return nil
		})
		if err != nil {
			writeError(w, r, opStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	}))

	handle("GET /v1/sessions/{id}/sql", "sql", withSession(m, func(w http.ResponseWriter, r *http.Request, s *Session) {
		var resp sqlResponse
		err := doSpan(r, s, "engine.sql", func(e *engine.Engine) error {
			text, err := e.SQL()
			if err != nil {
				return err
			}
			stages, err := e.Stages()
			if err != nil {
				return err
			}
			resp = sqlResponse{SQL: text, Stages: stages}
			return nil
		})
		if err != nil {
			writeError(w, r, opStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	}))

	handle("GET /v1/sessions/{id}/plan", "plan", withSession(m, func(w http.ResponseWriter, r *http.Request, s *Session) {
		var plan *engine.PlanInfo
		err := doSpan(r, s, "engine.plan", func(e *engine.Engine) error {
			var err error
			plan, err = e.Plan()
			return err
		})
		if err != nil {
			writeError(w, r, opStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, plan)
	}))

	handle("GET /v1/sessions/{id}/deps", "deps", withSession(m, func(w http.ResponseWriter, r *http.Request, s *Session) {
		var deps *engine.DepsInfo
		err := doSpan(r, s, "engine.deps", func(e *engine.Engine) error {
			var err error
			deps, err = e.Deps(r.URL.Query().Get("node"), r.URL.Query().Get("to"))
			return err
		})
		if err != nil {
			writeError(w, r, opStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, deps)
	}))

	handle("GET /v1/sessions/{id}/menu/{column}", "menu", withSession(m, func(w http.ResponseWriter, r *http.Request, s *Session) {
		var menu *engine.MenuInfo
		err := doSpan(r, s, "engine.menu", func(e *engine.Engine) error {
			var err error
			menu, err = e.Menu(r.PathValue("column"))
			return err
		})
		if err != nil {
			writeError(w, r, opStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, menu)
	}))

	handle("GET /v1/sessions/{id}/tables", "tables", withSession(m, func(w http.ResponseWriter, r *http.Request, s *Session) {
		var names []string
		_ = s.Do(func(e *engine.Engine) error {
			names = e.TableNames()
			return nil
		})
		if names == nil {
			names = []string{}
		}
		writeJSON(w, http.StatusOK, map[string][]string{"tables": names})
	}))

	if m.cfg.EnablePprof {
		mountPprof(mux)
	}

	return mux
}

// doSpan runs fn on the session's engine inside a trace span, so the
// engine time (including any wait for the per-session mutex) shows up in
// the request's span summary.
func doSpan(r *http.Request, s *Session, name string, fn func(*engine.Engine) error) error {
	sp := obs.StartSpan(r.Context(), name)
	defer sp.End()
	return s.Do(fn)
}

// withSession resolves {id} and hands the session to the handler.
func withSession(m *Manager, h func(http.ResponseWriter, *http.Request, *Session)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		s, ok := m.Get(id)
		if !ok {
			writeError(w, r, http.StatusNotFound, fmt.Errorf("no session %q", id))
			return
		}
		h(w, r, s)
	}
}

// opStatus maps engine/session errors to status codes.
func opStatus(err error) int {
	switch {
	case errors.Is(err, ErrSessionClosed):
		return http.StatusGone
	case errors.Is(err, engine.ErrNoSheet):
		return http.StatusConflict
	}
	return http.StatusBadRequest
}

// decodeBody strictly decodes one JSON value.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError emits the JSON error envelope, stamped with the request's ID
// so a client-reported failure can be matched to the server's log line.
func writeError(w http.ResponseWriter, r *http.Request, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error(), RequestID: obs.RequestID(r.Context())})
}

// ListenAndServe runs the API on addr until ctx is cancelled, then drains
// in-flight requests via http.Server.Shutdown. When an idle TTL is
// configured, a background ticker sweeps expired sessions.
func ListenAndServe(ctx context.Context, addr string, m *Manager) error {
	srv := &http.Server{
		Addr:         addr,
		Handler:      NewHandler(m),
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 60 * time.Second,
	}
	return serve(ctx, srv, m)
}

// serve factors the loop so tests can drive it with a pre-built server.
func serve(ctx context.Context, srv *http.Server, m *Manager) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	var sweep <-chan time.Time
	if ttl := m.cfg.IdleTTL; ttl > 0 {
		interval := ttl / 2
		if interval > 30*time.Second {
			interval = 30 * time.Second
		}
		if interval < time.Second {
			interval = time.Second
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		sweep = t.C
	}

	for {
		select {
		case err := <-errc:
			if errors.Is(err, http.ErrServerClosed) {
				return nil
			}
			return err
		case <-sweep:
			m.Sweep()
		case <-ctx.Done():
			shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := srv.Shutdown(shutCtx); err != nil {
				return err
			}
			// Drain the listener goroutine's ErrServerClosed, then flush
			// sessions: durable ones checkpoint and close their WALs so a
			// restart rehydrates them with zero replayed ops.
			<-errc
			m.Shutdown()
			return nil
		}
	}
}
