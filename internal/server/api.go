package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"sheetmusiq/internal/engine"
)

// The HTTP/JSON surface. One algebra operator per request, mirroring the
// paper's one-operation-at-a-time interaction model:
//
//	POST   /v1/sessions              create a session            {"name": "sam"}
//	GET    /v1/sessions              list live sessions
//	DELETE /v1/sessions/{id}         close a session
//	POST   /v1/sessions/{id}/op      apply one engine.Op         {"op": "select", ...}
//	GET    /v1/sessions/{id}/state   the Sec. V-A query state
//	GET    /v1/sessions/{id}/render  flat rows + recursive group tree [?limit=N]
//	GET    /v1/sessions/{id}/sql     the SQL the state compiles to
//	GET    /v1/sessions/{id}/menu/{column}  the Sec. VI contextual menu
//	GET    /v1/sessions/{id}/tables  the session's raw tables
//	GET    /v1/catalog               the shared stored-sheet catalog
//	GET    /v1/healthz               liveness
//
// Errors are JSON: {"error": "..."} with 400 (bad op), 403 (filesystem op
// while disabled), 404 (unknown session), 409 (no current sheet), or 410
// (session closed mid-request).

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// createRequest is the POST /v1/sessions body.
type createRequest struct {
	Name string `json:"name,omitempty"`
}

// createResponse acknowledges a created session.
type createResponse struct {
	ID   string `json:"id"`
	Name string `json:"name,omitempty"`
}

// renderResponse is the full presentation: the evaluated grid and the
// recursive group tree over it.
type renderResponse struct {
	*engine.Grid
	Tree *engine.TreeNode `json:"tree"`
}

// sqlResponse carries the generated SQL and its staged form.
type sqlResponse struct {
	SQL    string   `json:"sql"`
	Stages []string `json:"stages"`
}

// NewHandler builds the API handler over a session manager.
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})

	mux.HandleFunc("GET /v1/catalog", func(w http.ResponseWriter, r *http.Request) {
		names := m.Catalog().Names()
		if names == nil {
			names = []string{}
		}
		writeJSON(w, http.StatusOK, map[string][]string{"sheets": names})
	})

	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		var req createRequest
		// Every createRequest field is optional, so a bodiless POST (plain
		// `curl -X POST`) creates an anonymous session rather than 400ing.
		if err := decodeBody(r, &req); err != nil && !errors.Is(err, io.EOF) {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		s, err := m.Create(req.Name)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusCreated, createResponse{ID: s.ID(), Name: s.Name()})
	})

	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string][]Info{"sessions": m.List()})
	})

	mux.HandleFunc("DELETE /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		if !m.Close(r.PathValue("id")) {
			writeError(w, http.StatusNotFound, fmt.Errorf("no session %q", r.PathValue("id")))
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("POST /v1/sessions/{id}/op", withSession(m, func(w http.ResponseWriter, r *http.Request, s *Session) {
		var op engine.Op
		if err := decodeBody(r, &op); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if op.TouchesFilesystem() && !m.cfg.AllowFilesystem {
			writeError(w, http.StatusForbidden,
				fmt.Errorf("op %q touches the server filesystem; start the server with filesystem ops enabled", op.Op))
			return
		}
		var eff *engine.Effect
		err := s.Do(func(e *engine.Engine) error {
			var err error
			eff, err = e.Apply(op)
			return err
		})
		if err != nil {
			writeError(w, opStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, eff)
	}))

	mux.HandleFunc("GET /v1/sessions/{id}/state", withSession(m, func(w http.ResponseWriter, r *http.Request, s *Session) {
		var st *engine.StateInfo
		err := s.Do(func(e *engine.Engine) error {
			var err error
			st, err = e.State()
			return err
		})
		if err != nil {
			writeError(w, opStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	}))

	mux.HandleFunc("GET /v1/sessions/{id}/render", withSession(m, func(w http.ResponseWriter, r *http.Request, s *Session) {
		limit := 0
		if q := r.URL.Query().Get("limit"); q != "" {
			n, err := strconv.Atoi(q)
			if err != nil || n < 1 {
				writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", q))
				return
			}
			limit = n
		}
		var resp renderResponse
		err := s.Do(func(e *engine.Engine) error {
			grid, err := e.Grid(limit)
			if err != nil {
				return err
			}
			tree, err := e.Tree()
			if err != nil {
				return err
			}
			resp = renderResponse{Grid: grid, Tree: tree}
			return nil
		})
		if err != nil {
			writeError(w, opStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	}))

	mux.HandleFunc("GET /v1/sessions/{id}/sql", withSession(m, func(w http.ResponseWriter, r *http.Request, s *Session) {
		var resp sqlResponse
		err := s.Do(func(e *engine.Engine) error {
			text, err := e.SQL()
			if err != nil {
				return err
			}
			stages, err := e.Stages()
			if err != nil {
				return err
			}
			resp = sqlResponse{SQL: text, Stages: stages}
			return nil
		})
		if err != nil {
			writeError(w, opStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	}))

	mux.HandleFunc("GET /v1/sessions/{id}/menu/{column}", withSession(m, func(w http.ResponseWriter, r *http.Request, s *Session) {
		var menu *engine.MenuInfo
		err := s.Do(func(e *engine.Engine) error {
			var err error
			menu, err = e.Menu(r.PathValue("column"))
			return err
		})
		if err != nil {
			writeError(w, opStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, menu)
	}))

	mux.HandleFunc("GET /v1/sessions/{id}/tables", withSession(m, func(w http.ResponseWriter, r *http.Request, s *Session) {
		var names []string
		_ = s.Do(func(e *engine.Engine) error {
			names = e.TableNames()
			return nil
		})
		if names == nil {
			names = []string{}
		}
		writeJSON(w, http.StatusOK, map[string][]string{"tables": names})
	}))

	return mux
}

// withSession resolves {id} and hands the session to the handler.
func withSession(m *Manager, h func(http.ResponseWriter, *http.Request, *Session)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		s, ok := m.Get(id)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no session %q", id))
			return
		}
		h(w, r, s)
	}
}

// opStatus maps engine/session errors to status codes.
func opStatus(err error) int {
	switch {
	case errors.Is(err, ErrSessionClosed):
		return http.StatusGone
	case errors.Is(err, engine.ErrNoSheet):
		return http.StatusConflict
	}
	return http.StatusBadRequest
}

// decodeBody strictly decodes one JSON value.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// ListenAndServe runs the API on addr until ctx is cancelled, then drains
// in-flight requests via http.Server.Shutdown. When an idle TTL is
// configured, a background ticker sweeps expired sessions.
func ListenAndServe(ctx context.Context, addr string, m *Manager) error {
	srv := &http.Server{
		Addr:         addr,
		Handler:      NewHandler(m),
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 60 * time.Second,
	}
	return serve(ctx, srv, m)
}

// serve factors the loop so tests can drive it with a pre-built server.
func serve(ctx context.Context, srv *http.Server, m *Manager) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	var sweep <-chan time.Time
	if ttl := m.cfg.IdleTTL; ttl > 0 {
		interval := ttl / 2
		if interval > 30*time.Second {
			interval = 30 * time.Second
		}
		if interval < time.Second {
			interval = time.Second
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		sweep = t.C
	}

	for {
		select {
		case err := <-errc:
			if errors.Is(err, http.ErrServerClosed) {
				return nil
			}
			return err
		case <-sweep:
			m.Sweep()
		case <-ctx.Done():
			shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := srv.Shutdown(shutCtx); err != nil {
				return err
			}
			// Drain the listener goroutine's ErrServerClosed.
			<-errc
			return nil
		}
	}
}
