// Package server turns the spreadsheet algebra into a concurrent
// multi-session service. The paper's SheetMusiq prototype (Sec. VI) is a
// single-user client; this package is the serving layer the ROADMAP's
// production system needs: a SessionManager owning many engine-backed
// sessions behind per-session mutexes, a process-wide stored-sheet catalog
// shared between them (so one session's binary operator can consume a
// sheet another session saved), and an HTTP/JSON API exposing one algebra
// step per request — the paper's one-operation-at-a-time interaction,
// preserved over the wire.
package server

import (
	"fmt"
	"io"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"sheetmusiq/internal/core"
	"sheetmusiq/internal/engine"
	"sheetmusiq/internal/sql"
	"sheetmusiq/internal/wal"
)

// DefaultMaxSessions caps the session table when Config.MaxSessions is 0.
const DefaultMaxSessions = 64

// Config parameterises a Manager.
type Config struct {
	// MaxSessions caps live sessions; creating one past the cap evicts the
	// least-recently-used session. 0 means DefaultMaxSessions; negative
	// means unlimited.
	MaxSessions int
	// IdleTTL evicts sessions untouched for this long (0 disables).
	IdleTTL time.Duration
	// Seed populates each new session's private raw-table registry (e.g.
	// registering the demo datasets). It runs once per session at creation,
	// so it should only register pre-built relations, not generate data.
	Seed func(*sql.DB) error
	// Catalog is the shared stored-sheet catalog; nil creates a fresh one.
	Catalog *core.Catalog
	// AllowFilesystem permits ops that read or write server-local files
	// (load/savestate/loadstate/export). Off by default: remote callers
	// should not touch the server's disk.
	AllowFilesystem bool
	// Logger receives one structured line per request (request ID, route,
	// session, status, duration, engine span timings) plus lifecycle
	// events. Nil discards logs, which keeps tests quiet.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the API
	// handler. Off by default: profiles expose process internals.
	EnablePprof bool
	// Durability persists each session as a per-session op WAL plus
	// snapshot checkpoints under a data directory (cmd/sheetserver's
	// -data-dir). Nil keeps sessions memory-only. With a store set,
	// eviction and idle expiry checkpoint the session and park it on
	// disk; the next request for its id transparently rehydrates it, and
	// after a crash, sessions recover by snapshot + log-suffix replay.
	Durability *wal.Store
}

// Manager owns the session table: create/lookup/close plus idle-TTL and
// LRU-cap eviction. All methods are safe for concurrent use.
type Manager struct {
	cfg     Config
	catalog *core.Catalog
	log     *slog.Logger
	store   *wal.Store // nil = no durability

	mu       sync.Mutex
	sessions map[string]*Session
	nextID   int
	// dormant holds durable sessions that are not in memory — found on
	// disk at startup, or checkpointed back out by eviction/expiry. A Get
	// for a dormant id rehydrates it lazily.
	dormant map[string]wal.SessionMeta
	// rehydrating dedupes concurrent Gets for the same dormant id.
	rehydrating map[string]chan struct{}
	// closing tracks sessions whose WAL is being checkpointed and closed
	// on a background goroutine; a Get or Close for such an id waits for
	// the channel before proceeding, so a rehydration can never race the
	// close still flushing the same directory.
	closing map[string]chan struct{}
	// wg counts in-flight WAL close goroutines; Shutdown waits on it.
	wg sync.WaitGroup

	// now is the clock, swappable in tests.
	now func() time.Time
}

// NewManager builds a session manager. With Config.Durability set, the
// data directory is scanned for sessions persisted by earlier runs; they
// become dormant and rehydrate lazily on first touch.
func NewManager(cfg Config) *Manager {
	if cfg.MaxSessions == 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	cat := cfg.Catalog
	if cat == nil {
		cat = core.NewCatalog()
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 1}))
	}
	m := &Manager{
		cfg:         cfg,
		catalog:     cat,
		log:         log,
		store:       cfg.Durability,
		sessions:    map[string]*Session{},
		dormant:     map[string]wal.SessionMeta{},
		rehydrating: map[string]chan struct{}{},
		closing:     map[string]chan struct{}{},
		now:         time.Now,
	}
	if m.store != nil {
		metas, err := m.store.Sessions()
		if err != nil {
			m.log.Warn("scanning data dir", "err", err)
		}
		for _, meta := range metas {
			m.dormant[meta.ID] = meta
			// Ids keep growing across restarts so a new session can
			// never collide with a dormant one.
			if n := idNum(meta.ID); n > m.nextID {
				m.nextID = n
			}
		}
		sessDormant.Set(int64(len(m.dormant)))
		if len(m.dormant) > 0 {
			m.log.Info("found durable sessions", "count", len(m.dormant))
		}
	}
	return m
}

// Catalog returns the shared stored-sheet catalog.
func (m *Manager) Catalog() *core.Catalog { return m.catalog }

// Session is one user's spreadsheet session: an engine serialised by a
// mutex. Handlers funnel every engine access through Do, so concurrent
// requests against the same session queue up instead of racing.
type Session struct {
	id      string
	name    string
	created time.Time
	logger  *slog.Logger

	mu  sync.Mutex
	eng *engine.Engine

	// wlog is the session's durable op log (nil without durability). It
	// is only touched under s.mu.
	wlog *wal.SessionLog
	// recovered reports what rehydration did (nil for fresh sessions).
	recovered *wal.RecoveryStats

	// closed is atomic so the Manager can mark a session dead without
	// taking s.mu — a long-running engine op must not stall Close, LRU
	// eviction, or the TTL sweep (and with them every other session's
	// Create/Get/List, which wait on the manager mutex).
	closed atomic.Bool

	ops atomic.Int64

	// lastUsed is guarded by the Manager's mutex (it drives LRU/TTL
	// eviction, which the manager decides).
	lastUsed time.Time
}

// ID returns the session's identifier.
func (s *Session) ID() string { return s.id }

// Name returns the session's optional label.
func (s *Session) Name() string { return s.name }

// ErrSessionClosed is returned by Do after the session was closed or
// evicted; in-flight callers fail cleanly rather than driving a zombie.
var ErrSessionClosed = fmt.Errorf("server: session closed")

// Do runs fn with exclusive access to the session's engine. An op already
// in flight when the session is closed runs to completion; only subsequent
// calls fail.
func (s *Session) Do(fn func(*engine.Engine) error) error {
	if s.closed.Load() {
		return ErrSessionClosed
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return ErrSessionClosed
	}
	s.ops.Add(1)
	return fn(s.eng)
}

// ApplyOp applies one engine op under the session mutex and, when the
// session is durable, appends the op to its WAL after it succeeds (only
// mutating ops are logged — reads like explain never hit the disk) and
// checkpoints every SnapshotEvery logged ops. The append happens before
// the result is returned, so an op the client saw acknowledged is always
// in the log.
func (s *Session) ApplyOp(op engine.Op) (*engine.Effect, error) {
	if s.closed.Load() {
		return nil, ErrSessionClosed
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return nil, ErrSessionClosed
	}
	s.ops.Add(1)
	eff, err := s.eng.Apply(op)
	if err != nil {
		return nil, err
	}
	if s.wlog != nil && eff.Mutated {
		if werr := s.wlog.AppendOp(op); werr != nil {
			// The op mutated memory but is not durable; surface that
			// loudly rather than acknowledging a write the log lost.
			return nil, fmt.Errorf("server: op applied but not logged: %w", werr)
		}
		if s.wlog.ShouldCheckpoint() {
			if cerr := s.wlog.Checkpoint(s.eng); cerr != nil {
				s.log().Warn("checkpoint failed", "session", s.id, "err", cerr)
			}
		}
	}
	return eff, nil
}

// log returns the session's logger (set at creation; never nil).
func (s *Session) log() *slog.Logger { return s.logger }

// newEngine builds a fresh seeded engine for a new or rehydrating session.
func (m *Manager) newEngine() (*engine.Engine, error) {
	eng := engine.New(m.catalog)
	if m.cfg.Seed != nil {
		if err := m.cfg.Seed(eng.DB()); err != nil {
			return nil, fmt.Errorf("server: seeding session tables: %w", err)
		}
	}
	return eng, nil
}

// Create opens a new session. The id is server-assigned ("s1", "s2", ...);
// name is an optional caller label. Creation evicts expired sessions
// first, then the LRU session if the cap is reached. With durability on,
// the session's WAL directory is created before the session serves its
// first op.
func (m *Manager) Create(name string) (*Session, error) {
	eng, err := m.newEngine()
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	m.sweepLocked(now)
	if m.cfg.MaxSessions > 0 && len(m.sessions) >= m.cfg.MaxSessions {
		m.evictLRULocked()
	}
	m.nextID++
	s := &Session{
		id:       fmt.Sprintf("s%d", m.nextID),
		name:     name,
		created:  now,
		logger:   m.log,
		eng:      eng,
		lastUsed: now,
	}
	if m.store != nil {
		wlog, err := m.store.Open(wal.SessionMeta{ID: s.id, Name: name, Created: now})
		if err != nil {
			return nil, fmt.Errorf("server: opening session wal: %w", err)
		}
		s.wlog = wlog
	}
	m.sessions[s.id] = s
	sessCreated.Inc()
	sessLive.Set(int64(len(m.sessions)))
	m.log.Debug("session created", "session", s.id, "name", name)
	return s, nil
}

// Get returns the session and refreshes its idle clock. With durability
// on, an id that is parked on disk — evicted earlier, expired, or left by
// a previous process — is rehydrated: checkpoint restore plus log-suffix
// replay, deduped across concurrent callers.
func (m *Manager) Get(id string) (*Session, bool) {
	for {
		m.mu.Lock()
		if s, ok := m.sessions[id]; ok {
			if ttl := m.cfg.IdleTTL; ttl > 0 && m.now().Sub(s.lastUsed) > ttl {
				m.closeLocked(s, reasonExpired)
				m.mu.Unlock()
				// With durability the expired session just went dormant;
				// loop to rehydrate it. Without, it is gone.
				if m.store == nil {
					return nil, false
				}
				continue
			}
			s.lastUsed = m.now()
			m.mu.Unlock()
			return s, true
		}
		if ch, ok := m.closing[id]; ok {
			m.mu.Unlock()
			<-ch // WAL flush in flight; wait, then re-check
			continue
		}
		if ch, ok := m.rehydrating[id]; ok {
			m.mu.Unlock()
			<-ch // another caller is rehydrating; wait for its result
			continue
		}
		meta, ok := m.dormant[id]
		if !ok {
			m.mu.Unlock()
			return nil, false
		}
		ch := make(chan struct{})
		m.rehydrating[id] = ch
		delete(m.dormant, id)
		sessDormant.Set(int64(len(m.dormant)))
		m.mu.Unlock()

		s, err := m.rehydrate(meta)

		m.mu.Lock()
		delete(m.rehydrating, id)
		if err != nil {
			m.dormant[id] = meta // leave the data for a later attempt
			sessDormant.Set(int64(len(m.dormant)))
			m.mu.Unlock()
			close(ch)
			m.log.Error("session rehydration failed", "session", id, "err", err)
			return nil, false
		}
		now := m.now()
		m.sweepLocked(now)
		if m.cfg.MaxSessions > 0 && len(m.sessions) >= m.cfg.MaxSessions {
			m.evictLRULocked()
		}
		s.lastUsed = now
		m.sessions[id] = s
		sessRehydrated.Inc()
		sessLive.Set(int64(len(m.sessions)))
		m.mu.Unlock()
		close(ch)
		return s, true
	}
}

// rehydrate rebuilds a dormant session from its WAL directory. Runs
// without the manager mutex: recovery replays real ops and may take a
// while, and other sessions must keep serving.
func (m *Manager) rehydrate(meta wal.SessionMeta) (*Session, error) {
	wlog, err := m.store.Open(meta)
	if err != nil {
		return nil, err
	}
	eng, stats, err := wlog.Recover(m.newEngine)
	if err != nil {
		_ = wlog.Close(nil)
		return nil, err
	}
	if stats.ReplayErr != "" {
		m.log.Warn("session recovered partially", "session", meta.ID, "err", stats.ReplayErr)
	}
	m.log.Debug("session rehydrated", "session", meta.ID,
		"checkpoint_seq", stats.CheckpointSeq, "replayed", stats.Replayed, "fallbacks", stats.Fallbacks)
	return &Session{
		id:        meta.ID,
		name:      meta.Name,
		created:   meta.Created,
		logger:    m.log,
		eng:       eng,
		wlog:      wlog,
		recovered: &stats,
	}, nil
}

// Close terminates a session; it reports whether the id existed. With
// durability on, an explicit close also deletes the session's durable
// state — unlike eviction/expiry, which park it on disk.
func (m *Manager) Close(id string) bool {
	for {
		m.mu.Lock()
		if s, ok := m.sessions[id]; ok {
			m.closeLocked(s, reasonClosed)
			m.mu.Unlock()
			return true
		}
		if ch, ok := m.closing[id]; ok {
			m.mu.Unlock()
			<-ch
			continue
		}
		if ch, ok := m.rehydrating[id]; ok {
			m.mu.Unlock()
			<-ch
			continue
		}
		if _, ok := m.dormant[id]; ok {
			delete(m.dormant, id)
			sessDormant.Set(int64(len(m.dormant)))
			m.mu.Unlock()
			if err := m.store.Remove(id); err != nil {
				m.log.Warn("removing session data", "session", id, "err", err)
			}
			sessClosed.Inc()
			return true
		}
		m.mu.Unlock()
		return false
	}
}

// closeLocked removes the session and marks it closed so later Do calls
// fail. It deliberately does NOT take s.mu: waiting for an in-flight
// engine op here would hold the manager mutex (the caller has it) for the
// op's whole duration, stalling every other session. For durable sessions
// the WAL checkpoint + close happens on a background goroutine for the
// same reason; Get/Close/Shutdown synchronise with it via m.closing.
// Caller holds m.mu.
func (m *Manager) closeLocked(s *Session, reason closeReason) {
	delete(m.sessions, s.id)
	s.closed.Store(true)
	reason.counter().Inc()
	sessLive.Set(int64(len(m.sessions)))
	m.log.Debug("session closed", "session", s.id, "reason", reason.String())
	if s.wlog == nil {
		return
	}
	ch := make(chan struct{})
	m.closing[s.id] = ch
	m.wg.Add(1)
	go m.finishClose(s, ch, reason)
}

// finishClose checkpoints and closes a durable session's WAL after any
// in-flight op drains, then files the session back under dormant (or
// deletes its data for an explicit close).
func (m *Manager) finishClose(s *Session, ch chan struct{}, reason closeReason) {
	defer m.wg.Done()
	s.mu.Lock()
	if reason == reasonClosed {
		// The directory is about to be deleted; no point checkpointing.
		if err := s.wlog.Close(nil); err != nil {
			m.log.Warn("closing session wal", "session", s.id, "err", err)
		}
		if err := m.store.Remove(s.id); err != nil {
			m.log.Warn("removing session data", "session", s.id, "err", err)
		}
	} else {
		if err := s.wlog.Close(s.eng); err != nil {
			m.log.Warn("flushing session wal", "session", s.id, "err", err)
		}
	}
	s.mu.Unlock()
	m.mu.Lock()
	delete(m.closing, s.id)
	if reason != reasonClosed {
		m.dormant[s.id] = wal.SessionMeta{ID: s.id, Name: s.name, Created: s.created}
		sessDormant.Set(int64(len(m.dormant)))
	}
	m.mu.Unlock()
	close(ch)
}

// Shutdown closes every live session — checkpointing durable ones so a
// restart rehydrates them without replay — and waits for the WAL flushes
// to finish. The HTTP layer calls this after draining requests.
func (m *Manager) Shutdown() {
	m.mu.Lock()
	for _, s := range m.sessions {
		m.closeLocked(s, reasonShutdown)
	}
	m.mu.Unlock()
	m.wg.Wait()
}

// evictLRULocked drops the least-recently-used session. Caller holds m.mu.
func (m *Manager) evictLRULocked() {
	var victim *Session
	for _, s := range m.sessions {
		if victim == nil || s.lastUsed.Before(victim.lastUsed) {
			victim = s
		}
	}
	if victim != nil {
		m.closeLocked(victim, reasonEvicted)
	}
}

// Sweep evicts sessions idle past the TTL and returns how many it closed.
// The serving loop calls this on a ticker; it is also applied lazily on
// Create and Get.
func (m *Manager) Sweep() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sweepLocked(m.now())
}

func (m *Manager) sweepLocked(now time.Time) int {
	ttl := m.cfg.IdleTTL
	if ttl <= 0 {
		return 0
	}
	n := 0
	for _, s := range m.sessions {
		if now.Sub(s.lastUsed) > ttl {
			m.closeLocked(s, reasonExpired)
			n++
		}
	}
	return n
}

// Len returns the live session count.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// Info summarises one session for listings.
type Info struct {
	ID       string    `json:"id"`
	Name     string    `json:"name,omitempty"`
	Sheet    string    `json:"sheet,omitempty"`
	Version  int       `json:"version"`
	Ops      int64     `json:"ops"`
	Created  time.Time `json:"created"`
	LastUsed time.Time `json:"last_used"`
	// Dormant marks a durable session parked on disk; touching it (any
	// /v1/sessions/{id}/... request) rehydrates it.
	Dormant bool `json:"dormant,omitempty"`
}

// List summarises the live sessions in id order, followed by dormant
// durable sessions. The per-session engine reads happen after m.mu is
// released, so a session stuck in a long op delays only this listing, not
// the whole manager.
func (m *Manager) List() []Info {
	m.mu.Lock()
	live := make([]*Session, 0, len(m.sessions))
	out := make([]Info, 0, len(m.sessions)+len(m.dormant))
	for _, s := range m.sessions {
		live = append(live, s)
		out = append(out, Info{
			ID:       s.id,
			Name:     s.name,
			Ops:      s.ops.Load(),
			Created:  s.created,
			LastUsed: s.lastUsed,
		})
	}
	dormant := make([]Info, 0, len(m.dormant))
	for _, meta := range m.dormant {
		dormant = append(dormant, Info{ID: meta.ID, Name: meta.Name, Created: meta.Created, Dormant: true})
	}
	m.mu.Unlock()
	for i, s := range live {
		s.mu.Lock()
		out[i].Sheet = s.eng.SheetName()
		out[i].Version = s.eng.Version()
		s.mu.Unlock()
	}
	out = append(out, dormant...)
	sortInfos(out)
	return out
}

// sortInfos orders by numeric id ("s2" before "s10").
func sortInfos(infos []Info) {
	for i := 1; i < len(infos); i++ {
		for j := i; j > 0 && idNum(infos[j].ID) < idNum(infos[j-1].ID); j-- {
			infos[j], infos[j-1] = infos[j-1], infos[j]
		}
	}
}

func idNum(id string) int {
	n := 0
	for _, r := range id {
		if r >= '0' && r <= '9' {
			n = n*10 + int(r-'0')
		}
	}
	return n
}
