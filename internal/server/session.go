// Package server turns the spreadsheet algebra into a concurrent
// multi-session service. The paper's SheetMusiq prototype (Sec. VI) is a
// single-user client; this package is the serving layer the ROADMAP's
// production system needs: a SessionManager owning many engine-backed
// sessions behind per-session mutexes, a process-wide stored-sheet catalog
// shared between them (so one session's binary operator can consume a
// sheet another session saved), and an HTTP/JSON API exposing one algebra
// step per request — the paper's one-operation-at-a-time interaction,
// preserved over the wire.
package server

import (
	"fmt"
	"io"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"sheetmusiq/internal/core"
	"sheetmusiq/internal/engine"
	"sheetmusiq/internal/sql"
)

// DefaultMaxSessions caps the session table when Config.MaxSessions is 0.
const DefaultMaxSessions = 64

// Config parameterises a Manager.
type Config struct {
	// MaxSessions caps live sessions; creating one past the cap evicts the
	// least-recently-used session. 0 means DefaultMaxSessions; negative
	// means unlimited.
	MaxSessions int
	// IdleTTL evicts sessions untouched for this long (0 disables).
	IdleTTL time.Duration
	// Seed populates each new session's private raw-table registry (e.g.
	// registering the demo datasets). It runs once per session at creation,
	// so it should only register pre-built relations, not generate data.
	Seed func(*sql.DB) error
	// Catalog is the shared stored-sheet catalog; nil creates a fresh one.
	Catalog *core.Catalog
	// AllowFilesystem permits ops that read or write server-local files
	// (load/savestate/loadstate/export). Off by default: remote callers
	// should not touch the server's disk.
	AllowFilesystem bool
	// Logger receives one structured line per request (request ID, route,
	// session, status, duration, engine span timings) plus lifecycle
	// events. Nil discards logs, which keeps tests quiet.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the API
	// handler. Off by default: profiles expose process internals.
	EnablePprof bool
}

// Manager owns the session table: create/lookup/close plus idle-TTL and
// LRU-cap eviction. All methods are safe for concurrent use.
type Manager struct {
	cfg     Config
	catalog *core.Catalog
	log     *slog.Logger

	mu       sync.Mutex
	sessions map[string]*Session
	nextID   int

	// now is the clock, swappable in tests.
	now func() time.Time
}

// NewManager builds a session manager.
func NewManager(cfg Config) *Manager {
	if cfg.MaxSessions == 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	cat := cfg.Catalog
	if cat == nil {
		cat = core.NewCatalog()
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 1}))
	}
	return &Manager{
		cfg:      cfg,
		catalog:  cat,
		log:      log,
		sessions: map[string]*Session{},
		now:      time.Now,
	}
}

// Catalog returns the shared stored-sheet catalog.
func (m *Manager) Catalog() *core.Catalog { return m.catalog }

// Session is one user's spreadsheet session: an engine serialised by a
// mutex. Handlers funnel every engine access through Do, so concurrent
// requests against the same session queue up instead of racing.
type Session struct {
	id      string
	name    string
	created time.Time

	mu  sync.Mutex
	eng *engine.Engine

	// closed is atomic so the Manager can mark a session dead without
	// taking s.mu — a long-running engine op must not stall Close, LRU
	// eviction, or the TTL sweep (and with them every other session's
	// Create/Get/List, which wait on the manager mutex).
	closed atomic.Bool

	ops atomic.Int64

	// lastUsed is guarded by the Manager's mutex (it drives LRU/TTL
	// eviction, which the manager decides).
	lastUsed time.Time
}

// ID returns the session's identifier.
func (s *Session) ID() string { return s.id }

// Name returns the session's optional label.
func (s *Session) Name() string { return s.name }

// ErrSessionClosed is returned by Do after the session was closed or
// evicted; in-flight callers fail cleanly rather than driving a zombie.
var ErrSessionClosed = fmt.Errorf("server: session closed")

// Do runs fn with exclusive access to the session's engine. An op already
// in flight when the session is closed runs to completion; only subsequent
// calls fail.
func (s *Session) Do(fn func(*engine.Engine) error) error {
	if s.closed.Load() {
		return ErrSessionClosed
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return ErrSessionClosed
	}
	s.ops.Add(1)
	return fn(s.eng)
}

// Create opens a new session. The id is server-assigned ("s1", "s2", ...);
// name is an optional caller label. Creation evicts expired sessions
// first, then the LRU session if the cap is reached.
func (m *Manager) Create(name string) (*Session, error) {
	eng := engine.New(m.catalog)
	if m.cfg.Seed != nil {
		if err := m.cfg.Seed(eng.DB()); err != nil {
			return nil, fmt.Errorf("server: seeding session tables: %w", err)
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	m.sweepLocked(now)
	if m.cfg.MaxSessions > 0 && len(m.sessions) >= m.cfg.MaxSessions {
		m.evictLRULocked()
	}
	m.nextID++
	s := &Session{
		id:       fmt.Sprintf("s%d", m.nextID),
		name:     name,
		created:  now,
		eng:      eng,
		lastUsed: now,
	}
	m.sessions[s.id] = s
	sessCreated.Inc()
	sessLive.Set(int64(len(m.sessions)))
	m.log.Debug("session created", "session", s.id, "name", name)
	return s, nil
}

// Get returns the session and refreshes its idle clock.
func (m *Manager) Get(id string) (*Session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	if !ok {
		return nil, false
	}
	if ttl := m.cfg.IdleTTL; ttl > 0 && m.now().Sub(s.lastUsed) > ttl {
		m.closeLocked(s, reasonExpired)
		return nil, false
	}
	s.lastUsed = m.now()
	return s, true
}

// Close terminates a session; it reports whether the id existed.
func (m *Manager) Close(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	if !ok {
		return false
	}
	m.closeLocked(s, reasonClosed)
	return true
}

// closeLocked removes the session and marks it closed so later Do calls
// fail. It deliberately does NOT take s.mu: waiting for an in-flight
// engine op here would hold the manager mutex (the caller has it) for the
// op's whole duration, stalling every other session. Caller holds m.mu.
func (m *Manager) closeLocked(s *Session, reason closeReason) {
	delete(m.sessions, s.id)
	s.closed.Store(true)
	reason.counter().Inc()
	sessLive.Set(int64(len(m.sessions)))
	m.log.Debug("session closed", "session", s.id, "reason", reason.String())
}

// evictLRULocked drops the least-recently-used session. Caller holds m.mu.
func (m *Manager) evictLRULocked() {
	var victim *Session
	for _, s := range m.sessions {
		if victim == nil || s.lastUsed.Before(victim.lastUsed) {
			victim = s
		}
	}
	if victim != nil {
		m.closeLocked(victim, reasonEvicted)
	}
}

// Sweep evicts sessions idle past the TTL and returns how many it closed.
// The serving loop calls this on a ticker; it is also applied lazily on
// Create and Get.
func (m *Manager) Sweep() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sweepLocked(m.now())
}

func (m *Manager) sweepLocked(now time.Time) int {
	ttl := m.cfg.IdleTTL
	if ttl <= 0 {
		return 0
	}
	n := 0
	for _, s := range m.sessions {
		if now.Sub(s.lastUsed) > ttl {
			m.closeLocked(s, reasonExpired)
			n++
		}
	}
	return n
}

// Len returns the live session count.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// Info summarises one session for listings.
type Info struct {
	ID       string    `json:"id"`
	Name     string    `json:"name,omitempty"`
	Sheet    string    `json:"sheet,omitempty"`
	Version  int       `json:"version"`
	Ops      int64     `json:"ops"`
	Created  time.Time `json:"created"`
	LastUsed time.Time `json:"last_used"`
}

// List summarises the live sessions in id order. The per-session engine
// reads happen after m.mu is released, so a session stuck in a long op
// delays only this listing, not the whole manager.
func (m *Manager) List() []Info {
	m.mu.Lock()
	live := make([]*Session, 0, len(m.sessions))
	out := make([]Info, 0, len(m.sessions))
	for _, s := range m.sessions {
		live = append(live, s)
		out = append(out, Info{
			ID:       s.id,
			Name:     s.name,
			Ops:      s.ops.Load(),
			Created:  s.created,
			LastUsed: s.lastUsed,
		})
	}
	m.mu.Unlock()
	for i, s := range live {
		s.mu.Lock()
		out[i].Sheet = s.eng.SheetName()
		out[i].Version = s.eng.Version()
		s.mu.Unlock()
	}
	sortInfos(out)
	return out
}

// sortInfos orders by numeric id ("s2" before "s10").
func sortInfos(infos []Info) {
	for i := 1; i < len(infos); i++ {
		for j := i; j > 0 && idNum(infos[j].ID) < idNum(infos[j-1].ID); j-- {
			infos[j], infos[j-1] = infos[j-1], infos[j]
		}
	}
}

func idNum(id string) int {
	n := 0
	for _, r := range id {
		if r >= '0' && r <= '9' {
			n = n*10 + int(r-'0')
		}
	}
	return n
}
