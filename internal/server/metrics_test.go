package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"sheetmusiq/internal/engine"
	"sheetmusiq/internal/obs"
)

// fetchMetrics pulls GET /v1/metrics into an obs.Snapshot.
func fetchMetrics(t *testing.T, c *client) obs.Snapshot {
	t.Helper()
	var snap obs.Snapshot
	if code := c.do("GET", "/v1/metrics", nil, &snap); code != http.StatusOK {
		t.Fatalf("GET /v1/metrics: status %d", code)
	}
	return snap
}

// TestMetricsEndpointAdvances drives a scripted multi-session workload and
// asserts the /v1/metrics document advances across every instrumented
// layer: server request counters and latency histograms, session
// lifecycle, engine per-op counters, and the eval-pipeline chunking
// counters. Deltas (not absolutes) keep the test independent of the other
// tests sharing the process registry.
func TestMetricsEndpointAdvances(t *testing.T) {
	_, c := newTestServer(t, Config{})
	before := fetchMetrics(t, c)

	// Scripted workload: two sessions, each demo + select + render; one
	// deliberate failure (unknown column predicate parses but the render
	// path succeeds, so use a bad op name for the error counter) and one
	// session close.
	ids := []string{c.create("alpha"), c.create("beta")}
	for _, id := range ids {
		c.op(id, engine.Op{Op: "demo", Table: "cars"})
		c.op(id, engine.Op{Op: "select", Predicate: "Year = 2005"})
		var out json.RawMessage
		if code := c.do("GET", "/v1/sessions/"+id+"/render?limit=3", nil, &out); code != http.StatusOK {
			t.Fatalf("render: status %d", code)
		}
	}
	// Kernel workload on the first session: grouping + aggregation + sort
	// drive the hash-group and keyed-sort kernels at render time, and an
	// equi-join against a saved copy drives the hash-join kernel.
	c.op(ids[0], engine.Op{Op: "group", Columns: []string{"Model"}, Dir: "asc"})
	c.op(ids[0], engine.Op{Op: "agg", Fn: "avg", Column: "Price", Level: 2})
	c.op(ids[0], engine.Op{Op: "sort", Column: "Price", Dir: "desc"})
	// ω workload: a ranking window drives the window kernel (and its batch
	// gather off the base column vectors) at render time.
	c.op(ids[0], engine.Op{Op: "window", Name: "Rnk",
		Window: "RANK() OVER (PARTITION BY Model ORDER BY Price)"})
	c.op(ids[0], engine.Op{Op: "save", Name: "other"})
	c.op(ids[0], engine.Op{Op: "join", Sheet: "other", On: "Year = other_Year"})
	var out json.RawMessage
	if code := c.do("GET", "/v1/sessions/"+ids[0]+"/render?limit=3", nil, &out); code != http.StatusOK {
		t.Fatalf("render after join: status %d", code)
	}

	var eb errorBody
	if code := c.do("POST", "/v1/sessions/"+ids[0]+"/op", engine.Op{Op: "no-such-op"}, &eb); code != http.StatusBadRequest {
		t.Fatalf("bad op: status %d", code)
	}
	if code := c.do("DELETE", "/v1/sessions/"+ids[1], nil, nil); code != http.StatusNoContent {
		t.Fatalf("close: status %d", code)
	}

	after := fetchMetrics(t, c)
	delta := func(name string) int64 { return after.Counters[name] - before.Counters[name] }

	// Server layer: per-route requests, error counter, latency histograms.
	if d := delta("server.requests.session_create"); d != 2 {
		t.Errorf("session_create requests delta = %d, want 2", d)
	}
	if d := delta("server.requests.op"); d != 11 {
		t.Errorf("op requests delta = %d, want 11 (10 ok + 1 bad)", d)
	}
	if d := delta("server.requests.render"); d != 3 {
		t.Errorf("render requests delta = %d, want 3", d)
	}
	if d := delta("server.request_errors.op"); d != 1 {
		t.Errorf("op error delta = %d, want 1", d)
	}
	hb := before.Histograms["server.request_seconds.op"]
	ha := after.Histograms["server.request_seconds.op"]
	if ha.Count-hb.Count != 11 {
		t.Errorf("op latency histogram count delta = %d, want 11", ha.Count-hb.Count)
	}

	// Session lifecycle.
	if d := delta("server.sessions.created"); d != 2 {
		t.Errorf("sessions created delta = %d, want 2", d)
	}
	if d := delta("server.sessions.closed"); d != 1 {
		t.Errorf("sessions closed delta = %d, want 1", d)
	}

	// Engine layer: per-op counters including the dispatch miss.
	if d := delta("engine.ops.demo"); d != 2 {
		t.Errorf("engine demo delta = %d, want 2", d)
	}
	if d := delta("engine.ops.select"); d != 2 {
		t.Errorf("engine select delta = %d, want 2", d)
	}
	if d := delta("engine.ops.unknown"); d != 1 {
		t.Errorf("engine unknown-op delta = %d, want 1", d)
	}

	// Eval pipeline: the renders replayed the sheets, so evaluations and
	// chunk passes (sequential at this size) advanced.
	if d := delta("core.eval.count"); d < 2 {
		t.Errorf("core eval delta = %d, want >= 2", d)
	}
	if d := delta("relation.chunk_runs.sequential") + delta("relation.chunk_runs.parallel"); d < 2 {
		t.Errorf("chunk runs delta = %d, want >= 2", d)
	}

	// Kernel layer: the grouped aggregate replays build hash-group tables,
	// the sort replays go through the keyed sorter, and the equi-join ran
	// through the hash-join kernel (never the theta fallback).
	if d := delta("relation.grouper.builds"); d < 1 {
		t.Errorf("grouper builds delta = %d, want >= 1", d)
	}
	if d := delta("relation.sort.keyed"); d < 1 {
		t.Errorf("keyed sort delta = %d, want >= 1", d)
	}
	if d := delta("relation.join.hash"); d != 1 {
		t.Errorf("hash join delta = %d, want 1", d)
	}
	if d := delta("relation.join.fallback"); d != 0 {
		t.Errorf("theta fallback delta = %d, want 0 (condition is an equi-join)", d)
	}

	// Window kernel: the ω replay ran at least one eval over the sheet's
	// rows with one partition per model, and its inputs were gathered off
	// the base column vectors (the batch path).
	if d := delta("relation.window.evals"); d < 1 {
		t.Errorf("window evals delta = %d, want >= 1", d)
	}
	if d := delta("relation.window.rows"); d < 9 {
		t.Errorf("window rows delta = %d, want >= 9", d)
	}
	if d := delta("relation.window.partitions"); d < 2 {
		t.Errorf("window partitions delta = %d, want >= 2", d)
	}
	if d := delta("expr.batch.window"); d < 1 {
		t.Errorf("expr.batch.window delta = %d, want >= 1", d)
	}

	// Vectorizer layer: the σ replays compile their predicates to batch
	// programs ("Year = 2005" is inside the vectorizer's coverage), and the
	// eval pipeline columnarises each base relation once on first use.
	if d := delta("expr.batch.ok"); d < 2 {
		t.Errorf("expr batch ok delta = %d, want >= 2", d)
	}
	if d := delta("relation.column.materialize"); d < 1 {
		t.Errorf("column materialize delta = %d, want >= 1", d)
	}
}

// TestMetricsAggVectorizedAdvances drives a workload big enough to clear
// the columnar threshold (tpch lineitem at sf 0.002, ~12k rows) and asserts
// the typed aggregation kernels actually engaged: relation.agg.vectorized
// advances and relation.agg.declined stays flat across the whole scripted
// workload — including the view-building SQL the tpch demo runs, whose
// GROUP BY aggregates over plain columns must also stay on the typed path.
func TestMetricsAggVectorizedAdvances(t *testing.T) {
	_, c := newTestServer(t, Config{})
	before := fetchMetrics(t, c)

	id := c.create("tpch")
	c.op(id, engine.Op{Op: "demo", Table: "tpch"})
	c.op(id, engine.Op{Op: "use", Table: "lineitem"})
	c.op(id, engine.Op{Op: "group", Columns: []string{"l_returnflag"}, Dir: "asc"})
	c.op(id, engine.Op{Op: "agg", Fn: "sum", Column: "l_quantity", Level: 2})
	var out json.RawMessage
	if code := c.do("GET", "/v1/sessions/"+id+"/render?limit=3", nil, &out); code != http.StatusOK {
		t.Fatalf("render: status %d", code)
	}

	after := fetchMetrics(t, c)
	delta := func(name string) int64 { return after.Counters[name] - before.Counters[name] }
	if d := delta("relation.agg.vectorized"); d < 1 {
		t.Errorf("relation.agg.vectorized delta = %d, want >= 1", d)
	}
	if d := delta("relation.agg.declined"); d != 0 {
		t.Errorf("relation.agg.declined delta = %d, want 0 (typed tpch columns must not decline)", d)
	}
}

// TestRequestIDRoundTrip asserts the request-ID contract on the wire: a
// caller-supplied X-Request-ID is echoed back verbatim, and a request
// without one gets a generated ID on the response.
func TestRequestIDRoundTrip(t *testing.T) {
	_, c := newTestServer(t, Config{})

	req, err := http.NewRequest("GET", c.base+"/v1/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "caller-chose-this")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "caller-chose-this" {
		t.Fatalf("echoed request id = %q, want caller's", got)
	}

	resp, err = http.Get(c.base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got == "" {
		t.Fatal("no generated request id on response")
	}
}

// TestErrorBodyCarriesRequestID pins the failing-op contract: the JSON
// error envelope of an engine failure carries the same request ID the
// response header does, so a client error report can be joined to the
// server log line.
func TestErrorBodyCarriesRequestID(t *testing.T) {
	_, c := newTestServer(t, Config{})
	id := c.create("errs")

	// A select before any sheet is loaded fails inside the engine with
	// ErrNoSheet (409).
	body, err := json.Marshal(engine.Op{Op: "select", Predicate: "Year = 2005"})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", c.base+"/v1/sessions/"+id+"/op", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "err-trace-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status = %d, want 409", resp.StatusCode)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error == "" {
		t.Fatal("error body has no message")
	}
	if eb.RequestID != "err-trace-42" {
		t.Fatalf("error body request_id = %q, want %q", eb.RequestID, "err-trace-42")
	}
	if got := resp.Header.Get("X-Request-ID"); got != eb.RequestID {
		t.Fatalf("header id %q != body id %q", got, eb.RequestID)
	}

	// Without a caller ID the generated one must still appear in the body.
	var eb2 errorBody
	if code := c.do("POST", "/v1/sessions/"+id+"/op", engine.Op{Op: "select", Predicate: "Year = 2005"}, &eb2); code != http.StatusConflict {
		t.Fatalf("status = %d, want 409", code)
	}
	if eb2.RequestID == "" {
		t.Fatal("generated request id missing from error body")
	}
}

// TestPprofMounting: /debug/pprof/ serves only when EnablePprof is set.
func TestPprofMounting(t *testing.T) {
	m := NewManager(Config{})
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof off: status = %d, want 404", resp.StatusCode)
	}

	m2 := NewManager(Config{EnablePprof: true})
	ts2 := httptest.NewServer(NewHandler(m2))
	defer ts2.Close()
	resp, err = http.Get(ts2.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof on: status = %d, want 200", resp.StatusCode)
	}
}
