package server

import (
	"fmt"
	"sync"
	"testing"

	"sheetmusiq/internal/core"
	"sheetmusiq/internal/engine"
)

// TestStressSharedCatalog runs N goroutines, each driving its own session,
// all hammering the one shared catalog with save/open/rename/binary-op
// interleavings. Run under `go test -race`; the point is that the only
// cross-session state — the catalog and the stored sheets it publishes —
// is safe while every session stays serialised behind its own mutex.
func TestStressSharedCatalog(t *testing.T) {
	const (
		workers = 8
		iters   = 25
	)
	cat := core.NewCatalog()
	m := NewManager(Config{Catalog: cat, MaxSessions: -1})

	// A well-known stored sheet every worker can use as a binary operand.
	seedSession, err := m.Create("seed")
	if err != nil {
		t.Fatal(err)
	}
	err = seedSession.Do(func(e *engine.Engine) error {
		if _, err := e.Apply(engine.Op{Op: "demo", Table: "cars"}); err != nil {
			return err
		}
		if _, err := e.Apply(engine.Op{Op: "select", Predicate: "Condition = 'Excellent'"}); err != nil {
			return err
		}
		_, err := e.Apply(engine.Op{Op: "save", Name: "excellent"})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := m.Create(fmt.Sprintf("w%d", w))
			if err != nil {
				errs <- err
				return
			}
			mine := fmt.Sprintf("mine-%d", w)
			renamed := fmt.Sprintf("theirs-%d", w)
			for i := 0; i < iters; i++ {
				err := s.Do(func(e *engine.Engine) error {
					// Fresh sheet, one filter, publish under a private name.
					if _, err := e.Apply(engine.Op{Op: "demo", Table: "cars"}); err != nil {
						return err
					}
					if _, err := e.Apply(engine.Op{Op: "select", Predicate: fmt.Sprintf("Price > %d", 1000*w)}); err != nil {
						return err
					}
					if _, err := e.Apply(engine.Op{Op: "save", Name: mine}); err != nil {
						return err
					}
					// Binary ops against the shared sheet and our own.
					if _, err := e.Apply(engine.Op{Op: "minus", Sheet: "excellent"}); err != nil {
						return err
					}
					if _, err := e.Apply(engine.Op{Op: "union", Sheet: mine}); err != nil {
						return err
					}
					if _, err := e.Apply(engine.Op{Op: "open", Name: "excellent"}); err != nil {
						return err
					}
					if _, err := e.Evaluate(); err != nil {
						return err
					}
					// Rename back and forth; contention with our own close
					// below is impossible (same goroutine), with other
					// workers impossible (distinct names), so errors here
					// are real bugs.
					if _, err := e.Apply(engine.Op{Op: "renamesheet", Sheet: mine, Name: renamed}); err != nil {
						return err
					}
					if _, err := e.Apply(engine.Op{Op: "renamesheet", Sheet: renamed, Name: mine}); err != nil {
						return err
					}
					if _, err := e.Apply(engine.Op{Op: "close", Name: mine}); err != nil {
						return err
					}
					return nil
				})
				if err != nil {
					errs <- fmt.Errorf("worker %d iter %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Every private sheet was closed; only the seed survives.
	if names := cat.Names(); len(names) != 1 || names[0] != "excellent" {
		t.Fatalf("catalog after stress: %v", names)
	}
}

// TestStressSingleSessionContention fires concurrent requests at ONE
// session: Do must serialise them so the engine never races.
func TestStressSingleSessionContention(t *testing.T) {
	m := NewManager(Config{})
	s, err := m.Create("shared")
	if err != nil {
		t.Fatal(err)
	}
	err = s.Do(func(e *engine.Engine) error {
		_, err := e.Apply(engine.Op{Op: "demo", Table: "cars"})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				_ = s.Do(func(e *engine.Engine) error {
					id, err := e.Sheet().Select(fmt.Sprintf("Price > %d", w*100+i))
					if err != nil {
						return err
					}
					if _, err := e.Evaluate(); err != nil {
						return err
					}
					return e.Sheet().RemoveSelection(id)
				})
			}
		}(w)
	}
	wg.Wait()
	// All selections were added and removed under the lock.
	st, err := s.eng.State()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Selections) != 0 {
		t.Fatalf("leftover selections: %+v", st.Selections)
	}
	if got := s.ops.Load(); got != 1+8*20 {
		t.Fatalf("ops counter = %d, want %d", got, 1+8*20)
	}
}
