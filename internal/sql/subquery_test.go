package sql

import (
	"strings"
	"testing"

	"sheetmusiq/internal/expr"
)

func TestScalarSubquery(t *testing.T) {
	r := q(t, "SELECT ID FROM cars WHERE Price = (SELECT MIN(Price) FROM cars)")
	if r.Len() != 1 || r.Rows[0][0].Int() != 132 {
		t.Fatalf("cheapest car = %v", r.Rows)
	}
}

func TestScalarSubqueryInSelectList(t *testing.T) {
	r := q(t, "SELECT ID, Price - (SELECT AVG(Price) FROM cars) AS dev FROM cars WHERE ID = 304")
	if r.Len() != 1 {
		t.Fatal("want one row")
	}
	wantAvg := (14500.0 + 15000 + 16000 + 17000 + 17500 + 18000 + 13500 + 15000 + 16000) / 9
	if got := r.Rows[0][1].Float(); got != 14500-wantAvg {
		t.Fatalf("dev = %v, want %v", got, 14500-wantAvg)
	}
}

func TestInSubquery(t *testing.T) {
	r := q(t, "SELECT ID FROM cars WHERE Model IN (SELECT specialty FROM dealers WHERE dealer LIKE 'Ann%') ORDER BY ID")
	// AnnArborAuto specialises in Jettas: 6 rows.
	if r.Len() != 6 {
		t.Fatalf("rows = %d, want 6 Jettas", r.Len())
	}
}

func TestNotInSubquery(t *testing.T) {
	r := q(t, "SELECT ID FROM cars WHERE Model NOT IN (SELECT specialty FROM dealers WHERE dealer LIKE 'Ann%')")
	if r.Len() != 3 {
		t.Fatalf("rows = %d, want 3 Civics", r.Len())
	}
}

func TestExistsCorrelated(t *testing.T) {
	// Cars for which a cheaper car of the same model exists.
	r := q(t, "SELECT c.ID FROM cars c WHERE EXISTS "+
		"(SELECT b.ID FROM cars b WHERE b.Model = c.Model AND b.Price < c.Price) ORDER BY c.ID")
	// Everything except the cheapest per model (304 for Jetta, 132 Civic).
	if r.Len() != 7 {
		t.Fatalf("rows = %d, want 7: %v", r.Len(), r.Rows)
	}
	for _, row := range r.Rows {
		if id := row[0].Int(); id == 304 || id == 132 {
			t.Fatalf("model-cheapest car %d should not qualify", id)
		}
	}
}

func TestNotExistsCorrelated(t *testing.T) {
	// The classic Q4-style shape: the cheapest car per model.
	r := q(t, "SELECT c.ID FROM cars c WHERE NOT EXISTS "+
		"(SELECT b.ID FROM cars b WHERE b.Model = c.Model AND b.Price < c.Price) ORDER BY c.ID")
	if r.Len() != 2 || r.Rows[0][0].Int() != 132 || r.Rows[1][0].Int() != 304 {
		t.Fatalf("cheapest per model = %v", r.Rows)
	}
}

func TestCorrelatedScalarSubquery(t *testing.T) {
	// Cars cheaper than their model's average — the Fig. 2 query in pure
	// nested SQL (the formulation the paper says needs "a join between two
	// copies of the base table" or nesting).
	r := q(t, "SELECT c.ID FROM cars c WHERE c.Price < "+
		"(SELECT AVG(b.Price) FROM cars b WHERE b.Model = c.Model) ORDER BY c.ID")
	want := []int64{132, 304, 872, 901}
	if r.Len() != len(want) {
		t.Fatalf("rows = %v", r.Rows)
	}
	for i, w := range want {
		if r.Rows[i][0].Int() != w {
			t.Fatalf("row %d = %v, want %d", i, r.Rows[i], w)
		}
	}
}

func TestSubqueryInHaving(t *testing.T) {
	r := q(t, "SELECT Model FROM cars GROUP BY Model "+
		"HAVING AVG(Price) > (SELECT AVG(Price) FROM cars) ORDER BY Model")
	if r.Len() != 1 || r.Rows[0][0].Str() != "Jetta" {
		t.Fatalf("above-average models = %v", r.Rows)
	}
}

func TestScalarSubqueryErrors(t *testing.T) {
	d := db()
	if _, err := d.Query("SELECT ID FROM cars WHERE Price = (SELECT Price FROM cars)"); err == nil {
		t.Error("multi-row scalar subquery must error")
	}
	if _, err := d.Query("SELECT ID FROM cars WHERE Price = (SELECT ID, Price FROM cars)"); err == nil {
		t.Error("multi-column scalar subquery must error")
	}
	if _, err := d.Query("SELECT ID FROM cars WHERE Model IN (SELECT ID, Model FROM cars)"); err == nil {
		t.Error("multi-column IN subquery must error")
	}
}

func TestEmptyScalarSubqueryIsNull(t *testing.T) {
	// WHERE Price = NULL keeps nothing.
	r := q(t, "SELECT ID FROM cars WHERE Price = (SELECT Price FROM cars WHERE ID = 999999)")
	if r.Len() != 0 {
		t.Fatalf("rows = %d, want 0", r.Len())
	}
}

func TestSubquerySQLRoundTrip(t *testing.T) {
	src := "SELECT c.ID FROM cars AS c WHERE EXISTS (SELECT b.ID FROM cars AS b WHERE b.Model = c.Model AND b.Price < c.Price)"
	stmt, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rendered := stmt.SQL()
	if !strings.Contains(rendered, "EXISTS") {
		t.Fatalf("rendering lost EXISTS: %s", rendered)
	}
	stmt2, err := Parse(rendered)
	if err != nil {
		t.Fatalf("reparse %q: %v", rendered, err)
	}
	d := db()
	r1, err := d.Exec(stmt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := d.Exec(stmt2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.String() != r2.String() {
		t.Fatal("subquery round trip diverged")
	}
}

func TestAlgebraContextRejectsSubqueries(t *testing.T) {
	// Plain expression parsing (what the spreadsheet algebra uses) has no
	// SubParser, so nesting is rejected — the paper's SheetMusiq boundary.
	if _, err := expr.Parse("Price < (SELECT AVG(Price) FROM cars)"); err == nil {
		t.Fatal("bare expression context must reject subqueries")
	}
	if _, err := expr.Parse("EXISTS (SELECT 1 FROM cars)"); err == nil {
		t.Fatal("bare expression context must reject EXISTS")
	}
}

func TestSubqueryCache(t *testing.T) {
	d := db()
	// Uncorrelated: the scalar subquery must execute exactly once even
	// though nine outer rows evaluate it.
	if _, err := d.Query("SELECT ID FROM cars WHERE Price > (SELECT AVG(Price) FROM cars)"); err != nil {
		t.Fatal(err)
	}
	if got := d.SubqueryRuns(); got != 1 {
		t.Fatalf("uncorrelated subquery ran %d times, want 1", got)
	}
	// Correlated on Model: once per distinct model (2), not per row (9).
	d2 := db()
	if _, err := d2.Query("SELECT c.ID FROM cars c WHERE c.Price < (SELECT AVG(b.Price) FROM cars b WHERE b.Model = c.Model)"); err != nil {
		t.Fatal(err)
	}
	if got := d2.SubqueryRuns(); got != 2 {
		t.Fatalf("model-correlated subquery ran %d times, want 2", got)
	}
}
