package sql

import (
	"strings"
	"testing"

	"sheetmusiq/internal/dataset"
	"sheetmusiq/internal/obs"
	"sheetmusiq/internal/relation"
	"sheetmusiq/internal/value"
)

func colI64(t *testing.T, r *relation.Relation, name string) []int64 {
	t.Helper()
	i := r.Schema.IndexOf(name)
	if i < 0 {
		t.Fatalf("no column %q in %v", name, r.Schema.Names())
	}
	out := make([]int64, r.Len())
	for ri, row := range r.TupleRows() {
		out[ri] = row[i].Int()
	}
	return out
}

func eqI64(t *testing.T, got []int64, want ...int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d (%v vs %v)", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d = %d, want %d (%v vs %v)", i, got[i], want[i], got, want)
		}
	}
}

func TestSQLWindowRank(t *testing.T) {
	r := q(t, "SELECT ID, RANK() OVER (PARTITION BY Model ORDER BY Price) AS rnk FROM cars")
	eqI64(t, colI64(t, r, "rnk"), 1, 2, 3, 4, 5, 6, 1, 2, 3)
}

func TestSQLWindowRowNumberDense(t *testing.T) {
	r := q(t, `SELECT ID,
		ROW_NUMBER() OVER (PARTITION BY Model ORDER BY Year) AS rn,
		DENSE_RANK() OVER (PARTITION BY Model ORDER BY Year) AS dr
		FROM cars`)
	eqI64(t, colI64(t, r, "rn"), 1, 2, 3, 4, 5, 6, 1, 2, 3)
	eqI64(t, colI64(t, r, "dr"), 1, 1, 1, 2, 2, 2, 1, 2, 2)
}

func TestSQLWindowRunningSum(t *testing.T) {
	r := q(t, "SELECT ID, SUM(Price) OVER (PARTITION BY Model ORDER BY Price) AS run FROM cars")
	eqI64(t, colI64(t, r, "run"),
		14500, 29500, 45500, 62500, 80000, 98000, 13500, 28500, 44500)
}

func TestSQLWindowMovingFrame(t *testing.T) {
	r := q(t, `SELECT ID, SUM(Price) OVER (PARTITION BY Model ORDER BY Price
		ROWS BETWEEN 1 PRECEDING AND CURRENT ROW) AS mov FROM cars`)
	eqI64(t, colI64(t, r, "mov"),
		14500, 29500, 31000, 33000, 34500, 35500, 13500, 28500, 31000)
}

func TestSQLWindowCountStar(t *testing.T) {
	r := q(t, "SELECT ID, COUNT(*) OVER (PARTITION BY Model) AS n FROM cars")
	eqI64(t, colI64(t, r, "n"), 6, 6, 6, 6, 6, 6, 3, 3, 3)
}

func TestSQLWindowAfterWhere(t *testing.T) {
	// Windows run over the post-WHERE rows: the cheapest Civic is gone
	// before ranking.
	r := q(t, `SELECT ID, RANK() OVER (PARTITION BY Model ORDER BY Price) AS rnk
		FROM cars WHERE Price > 14000`)
	if r.Len() != 8 {
		t.Fatalf("rows = %d, want 8", r.Len())
	}
	eqI64(t, colI64(t, r, "rnk"), 1, 2, 3, 4, 5, 6, 1, 2)
}

func TestSQLWindowInExpression(t *testing.T) {
	// A window call composes inside a scalar expression.
	r := q(t, `SELECT ID, RANK() OVER (ORDER BY Price) * 10 AS x FROM cars WHERE Model = 'Civic'`)
	eqI64(t, colI64(t, r, "x"), 10, 20, 30)
}

func TestSQLWindowOrderByWindow(t *testing.T) {
	// ORDER BY a window expression (not in the select list).
	r := q(t, `SELECT ID FROM cars ORDER BY ROW_NUMBER() OVER (PARTITION BY Model ORDER BY Price DESC), Model`)
	eqI64(t, colI64(t, r, "ID"), 322, 725, 879, 723, 132, 423, 901, 872, 304)
}

func TestSQLWindowDistinctAndLimit(t *testing.T) {
	r := q(t, `SELECT Model, COUNT(*) OVER (PARTITION BY Model) AS n FROM cars
		ORDER BY n DESC LIMIT 2`)
	if r.Len() != 2 {
		t.Fatalf("rows = %d, want 2", r.Len())
	}
	eqI64(t, colI64(t, r, "n"), 6, 6)
}

func TestSQLWindowTopKSubquery(t *testing.T) {
	// The canonical top-k-per-group idiom: window in a FROM subquery,
	// filtered outside.
	r := q(t, `SELECT ID, rnk FROM (
			SELECT ID, Model, RANK() OVER (PARTITION BY Model ORDER BY Price) AS rnk FROM cars
		) t WHERE t.rnk <= 2 ORDER BY Model, rnk`)
	eqI64(t, colI64(t, r, "ID"), 132, 879, 304, 872)
}

func TestSQLWindowDuplicateCallsShareOneEval(t *testing.T) {
	// The same OVER spelling in two items dedupes to one computed vector.
	r := q(t, `SELECT RANK() OVER (ORDER BY Price) AS a, RANK() OVER (ORDER BY Price) AS b
		FROM cars WHERE Model = 'Civic'`)
	eqI64(t, colI64(t, r, "a"), 1, 2, 3)
	eqI64(t, colI64(t, r, "b"), 1, 2, 3)
}

func TestSQLWindowDefaultName(t *testing.T) {
	r := q(t, "SELECT RANK() OVER (ORDER BY Price) FROM cars WHERE Model = 'Civic'")
	name := r.Schema[0].Name
	if !strings.Contains(name, "RANK() OVER") {
		t.Fatalf("unaliased window column named %q", name)
	}
}

func TestSQLWindowErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"SELECT ID FROM cars WHERE RANK() OVER (ORDER BY Price) <= 2", "not allowed in WHERE"},
		{"SELECT Model, RANK() OVER (ORDER BY Price) FROM cars GROUP BY Model", "GROUP BY"},
		{"SELECT SUM(Price), RANK() OVER (ORDER BY Price) FROM cars", "GROUP BY"},
		{"SELECT RANK() OVER (PARTITION BY Model) FROM cars", "ORDER BY"},
		{"SELECT RANK(Price) OVER (ORDER BY Price) FROM cars", "argument"},
		{"SELECT SUM(Model) OVER (ORDER BY Price) FROM cars", "numeric"},
		{"SELECT SUM(Price) OVER (PARTITION BY Model ROWS BETWEEN 1 PRECEDING AND CURRENT ROW) FROM cars", "ORDER BY"},
		{"SELECT MEDIAN(Price) OVER (ORDER BY Price) FROM cars", "window function"},
		{"SELECT COUNT_DISTINCT(Price) OVER (ORDER BY Price) FROM cars", "window function"},
	}
	for _, tc := range cases {
		_, err := db().Query(tc.src)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s\n  err = %v, want substring %q", tc.src, err, tc.want)
		}
	}
}

func TestSQLWindowBatchCounterAndParity(t *testing.T) {
	// On a columnar-sized table the window inputs come off typed vectors
	// (expr.batch.window increments) and the result is bit-identical to the
	// row path over the same rows (a sub-threshold copy of the table, whose
	// source carries no typed columns).
	big := dataset.RandomCars(4096, 11)
	d := NewDB()
	d.Register(big)
	const src = `SELECT ID, RANK() OVER (PARTITION BY Model ORDER BY Price, ID) AS rnk,
		SUM(Mileage) OVER (PARTITION BY Model ORDER BY Price, ID ROWS BETWEEN 2 PRECEDING AND CURRENT ROW) AS mov
		FROM cars WHERE Price > 9000 ORDER BY Model, rnk`
	before := obs.Default.CounterValue("expr.batch.window")
	cold, err := d.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := obs.Default.CounterValue("expr.batch.window") - before; got < 2 {
		t.Fatalf("expr.batch.window advanced by %d, want >= 2 (one per lifted window)", got)
	}
	warm, err := d.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if cold.String() != warm.String() {
		t.Fatal("warm run differs from cold run")
	}

	// Row-path reference: the identical rows in a relation too small for
	// the columnar fast path must produce byte-identical output. Limit both
	// to the same 64-row prefix via a matching base table.
	small := relation.New("cars", dataset.CarSchema())
	small.Rows = big.TupleRows()[:64]
	ds := NewDB()
	ds.Register(small)
	before = obs.Default.CounterValue("expr.batch.window")
	rowRes, err := ds.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := obs.Default.CounterValue("expr.batch.window") - before; got != 0 {
		t.Fatalf("sub-threshold source advanced expr.batch.window by %d", got)
	}
	big64 := relation.New("cars", dataset.CarSchema())
	big64.Rows = big.TupleRows()[:64]
	big64.Columns() // force typed columns → batch path despite the small size
	db2 := NewDB()
	db2.Register(big64)
	batchRes, err := db2.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if rowRes.String() != batchRes.String() {
		t.Fatalf("batch and row window paths diverge:\n%s\nvs\n%s", batchRes, rowRes)
	}
	_ = value.Null
}
