package sql

import (
	"errors"
	"strconv"
	"strings"

	"sheetmusiq/internal/expr"
	"sheetmusiq/internal/obs"
	"sheetmusiq/internal/relation"
	"sheetmusiq/internal/value"
)

// Executor-path metrics, one increment per statement: which of the two
// output loops ran compiled vs. fell back to the rowEnv interpreter, and
// how often chunked aggregate accumulation was kept sequential because the
// merge would not be bit-identical (relation.MergeExact).
var (
	execPlainCompiled      = obs.Default.Counter("sql.exec.plain_compiled")
	execPlainInterpreted   = obs.Default.Counter("sql.exec.plain_interpreted")
	execGroupedCompiled    = obs.Default.Counter("sql.exec.grouped_compiled")
	execGroupedInterpreted = obs.Default.Counter("sql.exec.grouped_interpreted")
	execMergeFallback      = obs.Default.Counter("sql.exec.merge_fallback")
)

// This file holds the compiled, data-parallel fast paths of the executor.
// Each statement compiles its row expressions once — WHERE predicates,
// GROUP BY keys, aggregate arguments, HAVING, select items and ORDER BY
// keys — so the per-row work is a closure call over a positional tuple
// instead of a name lookup per column reference, and then chunks the row
// (or group) range with relation.RunChunks. The fast path engages only when
// it is provably equivalent to the interpreted one:
//
//   - no enclosing row scope (outer-correlated names cannot be resolved to
//     a fixed index at compile time), and
//   - no subqueries (the per-statement subquery cache memoises through a
//     shared map and is not goroutine-safe).
//
// Anything else falls back to the existing rowEnv interpreter, unchanged.

// compileSafe reports whether e may take the compiled fast path in this
// scope.
func compileSafe(e expr.Expr, outer expr.Env) bool {
	return outer == nil && !expr.ContainsSubquery(e)
}

// srcResolver resolves names against the source's qualified row layout.
func srcResolver(src *source) expr.Resolver {
	return func(name string) (int, bool) {
		i, err := src.resolve(name)
		if err != nil {
			return 0, false
		}
		return i, true
	}
}

// compileOn compiles e against the source row layout, or returns nil when
// the fast path is unavailable and the caller must interpret.
func compileOn(src *source, e expr.Expr, outer expr.Env) *expr.Program {
	if e == nil || !compileSafe(e, outer) {
		return nil
	}
	p, err := expr.Compile(e, srcResolver(src))
	if err != nil {
		return nil
	}
	return p
}

// aggSlot parses a lifted-aggregate placeholder name ("__agg_3") into its
// index.
func aggSlot(name string) (int, bool) {
	l := strings.ToLower(name)
	if !strings.HasPrefix(l, "__agg_") {
		return 0, false
	}
	i, err := strconv.Atoi(l[len("__agg_"):])
	if err != nil || i < 0 {
		return 0, false
	}
	return i, true
}

// extResolver resolves names against the extended grouped row layout: the
// source columns followed by one slot per lifted aggregate. It mirrors
// rowEnv.Lookup's precedence, where the synthetic aggregate bindings win.
func extResolver(src *source, nAggs int) expr.Resolver {
	n := len(src.rel.Schema)
	return func(name string) (int, bool) {
		if i, ok := aggSlot(name); ok && i < nAggs {
			return n + i, true
		}
		if i, err := src.resolve(name); err == nil {
			return i, true
		}
		return 0, false
	}
}

// filterRows applies a compiled WHERE over the rows, chunked above the
// threshold. Unlike the core path, the rows belong to a registered base
// table and cannot be compacted in place: each chunk keeps its survivors in
// a local slice and the chunks concatenate in order, reproducing the
// sequential multiset order exactly.
func filterRows(rows []relation.Tuple, prog *expr.Program) ([]relation.Tuple, error) {
	bounds := relation.Chunks(len(rows))
	parts := make([][]relation.Tuple, len(bounds))
	err := relation.RunChunks(bounds, func(c, lo, hi int) error {
		kept := make([]relation.Tuple, 0, hi-lo)
		for i := lo; i < hi; i++ {
			ok, err := prog.EvalBool(rows[i])
			if err != nil {
				return err
			}
			if ok {
				kept = append(kept, rows[i])
			}
		}
		parts[c] = kept
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]relation.Tuple, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// filterRowsTyped is filterRows with the vectorized fast path in front:
// when the rows align with the source's typed columns and the predicate
// batch-compiles, each chunk's survivors come from a batch selection over
// the column vectors — no boxed row is touched — and the surviving base-row
// indexes are returned alongside for downstream batch programs. A chunk
// whose window would error falls back to the row program, which reproduces
// the exact error; so does the whole pass when the predicate declines.
func filterRowsTyped(src *source, pred expr.Expr, rows []relation.Tuple, prog *expr.Program, aligned bool) ([]relation.Tuple, []int32, error) {
	var bp *expr.BatchProgram
	if aligned {
		bp, _ = expr.CompileBatch(pred, src.batchResolve)
	}
	if bp == nil {
		kept, err := filterRows(rows, prog)
		return kept, nil, err
	}
	n := len(rows)
	dst := make([]int32, n)
	bounds := relation.Chunks(n)
	counts := make([]int, len(bounds))
	err := relation.RunChunks(bounds, func(c, lo, hi int) error {
		if cnt, ok := bp.SelectInto(nil, lo, hi, dst[lo:]); ok {
			counts[c] = cnt
			return nil
		}
		w := lo
		for i := lo; i < hi; i++ {
			ok, err := prog.EvalBool(rows[i])
			if err != nil {
				return err
			}
			if ok {
				dst[w] = int32(i)
				w++
			}
		}
		counts[c] = w - lo
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	w := 0
	if len(bounds) > 0 {
		w = counts[0]
		for c := 1; c < len(bounds); c++ {
			lo := bounds[c][0]
			copy(dst[w:], dst[lo:lo+counts[c]])
			w += counts[c]
		}
	}
	idx := dst[:w:w]
	kept := make([]relation.Tuple, w)
	for i, ri := range idx {
		kept[i] = rows[ri]
	}
	return kept, idx, nil
}

// orderRef is one compiled ORDER BY key: either a projection of the output
// tuple (an output-alias reference) or a program over the evaluation row.
type orderRef struct {
	outCol int
	prog   *expr.Program
}

// compileOrderRefs compiles the ORDER BY keys, resolving output aliases
// first exactly as orderKeys does. The bool is false when any key needs the
// interpreter.
func compileOrderRefs(orderBy []OrderItem, schema relation.Schema, outer expr.Env, compileExpr func(expr.Expr) *expr.Program) ([]orderRef, bool) {
	refs := make([]orderRef, len(orderBy))
	for i, o := range orderBy {
		if c, ok := o.Expr.(*expr.ColumnRef); ok {
			if j := schema.IndexOf(c.Name); j >= 0 {
				refs[i] = orderRef{outCol: j}
				continue
			}
		}
		p := compileExpr(o.Expr)
		if p == nil {
			return nil, false
		}
		refs[i] = orderRef{outCol: -1, prog: p}
	}
	return refs, true
}

// evalOrderRefs produces one row's sort keys from the compiled refs.
func evalOrderRefs(refs []orderRef, tuple relation.Tuple, row []value.Value) ([]value.Value, error) {
	if len(refs) == 0 {
		return nil, nil
	}
	keys := make([]value.Value, len(refs))
	for i, r := range refs {
		if r.prog == nil {
			keys[i] = tuple[r.outCol]
			continue
		}
		v, err := r.prog.Eval(row)
		if err != nil {
			return nil, err
		}
		keys[i] = v
	}
	return keys, nil
}

// compiledPlain is the compiled, parallel variant of execPlain: every item
// and ORDER BY key compiled once, output slots pre-sized so chunks write
// disjoint indexes. When the rows still align with the source's typed
// columns (idx holds their base-row indexes; nil means identity) and every
// item batch-compiles, the items fill positional value vectors straight
// from the column payloads; a chunk whose window would error re-runs
// through the row programs, which reproduce the exact error. The bool
// reports whether the fast path ran.
func compiledPlain(src *source, stmt *SelectStmt, items []SelectItem, schema relation.Schema, rows []relation.Tuple, outer expr.Env, idx []int32, aligned bool) (*relation.Relation, [][]value.Value, bool, error) {
	itemProgs := make([]*expr.Program, len(items))
	for i, it := range items {
		if itemProgs[i] = compileOn(src, it.Expr, outer); itemProgs[i] == nil {
			return nil, nil, false, nil
		}
	}
	out := relation.New("result", schema)
	refs, ok := compileOrderRefs(stmt.OrderBy, out.Schema, outer, func(e expr.Expr) *expr.Program {
		return compileOn(src, e, outer)
	})
	if !ok {
		return nil, nil, false, nil
	}
	var bps []*expr.BatchProgram
	var itemVals [][]value.Value
	if aligned && outer == nil {
		bps = make([]*expr.BatchProgram, len(items))
		for i, it := range items {
			if bps[i], _ = expr.CompileBatch(it.Expr, src.batchResolve); bps[i] == nil {
				bps = nil
				break
			}
		}
		if bps != nil {
			itemVals = make([][]value.Value, len(items))
			for i := range itemVals {
				itemVals[i] = make([]value.Value, len(rows))
			}
		}
	}
	out.Rows = make([]relation.Tuple, len(rows))
	sortVals := make([][]value.Value, len(rows))
	err := relation.ForChunks(len(rows), func(_, lo, hi int) error {
		if bps != nil {
			ok := true
			for i := range bps {
				if !bps[i].EvalPos(idx, lo, hi, schema[i].Kind, itemVals[i]) {
					ok = false
					break
				}
			}
			if ok {
				flat := make([]value.Value, (hi-lo)*len(items))
				for ri := lo; ri < hi; ri++ {
					tuple := flat[(ri-lo)*len(items) : (ri-lo+1)*len(items) : (ri-lo+1)*len(items)]
					for i := range items {
						tuple[i] = itemVals[i][ri]
					}
					out.Rows[ri] = tuple
					keys, err := evalOrderRefs(refs, tuple, rows[ri])
					if err != nil {
						return err
					}
					sortVals[ri] = keys
				}
				return nil
			}
		}
		for ri := lo; ri < hi; ri++ {
			tuple := make(relation.Tuple, len(items))
			for i, p := range itemProgs {
				v, err := p.Eval(rows[ri])
				if err != nil {
					return err
				}
				tuple[i] = widen(v, schema[i].Kind)
			}
			out.Rows[ri] = tuple
			keys, err := evalOrderRefs(refs, tuple, rows[ri])
			if err != nil {
				return err
			}
			sortVals[ri] = keys
		}
		return nil
	})
	if err != nil {
		return nil, nil, true, err
	}
	return out, sortVals, true, nil
}

// rowGroup is one GROUP BY partition in first-appearance order.
type rowGroup struct {
	key  []value.Value
	rows []relation.Tuple
}

// buildRowGroups partitions the filtered rows by the GROUP BY expression
// values. When the keys compile, the per-row key tuples are computed in
// parallel chunks and grouped by the batch hash kernel (first-appearance
// order preserved); otherwise keys evaluate sequentially (tree-walking
// fallback, possibly with subqueries) into an incremental hash table. An
// aggregate query without GROUP BY yields one group even over empty input.
// The returned Grouping (non-nil when the fast paths ran) maps each row of
// rows to its group ID, groups[g] holding the rows of ID g; the typed
// aggregate kernel in compiledGroupOutput consumes it directly.
func buildRowGroups(db *DB, src *source, stmt *SelectStmt, rows []relation.Tuple, outer expr.Env, subs map[*expr.Subquery]*subState) ([]*rowGroup, *relation.Grouping, error) {
	nG := len(stmt.GroupBy)
	if nG == 0 {
		// Ungrouped aggregate: one group holding every row, even over empty
		// input.
		gr := &relation.Grouping{IDs: make([]int32, len(rows)), First: []int32{0}}
		return []*rowGroup{{rows: rows}}, gr, nil
	}
	progs := make([]*expr.Program, nG)
	compiled := true
	for i, g := range stmt.GroupBy {
		if progs[i] = compileOn(src, g, outer); progs[i] == nil {
			compiled = false
			break
		}
	}
	if compiled {
		keyVals := make([]relation.Tuple, len(rows))
		err := relation.ForChunks(len(rows), func(_, lo, hi int) error {
			for ri := lo; ri < hi; ri++ {
				key := make(relation.Tuple, nG)
				for i, p := range progs {
					v, err := p.Eval(rows[ri])
					if err != nil {
						return err
					}
					key[i] = v
				}
				keyVals[ri] = key
			}
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		gr := relation.GroupRowsOn(keyVals, nil)
		counts := make([]int, gr.NumGroups())
		for _, gid := range gr.IDs {
			counts[gid]++
		}
		groups := make([]*rowGroup, gr.NumGroups())
		for g, ri := range gr.First {
			groups[g] = &rowGroup{key: keyVals[ri], rows: make([]relation.Tuple, 0, counts[g])}
		}
		for ri, gid := range gr.IDs {
			groups[gid].rows = append(groups[gid].rows, rows[ri])
		}
		return groups, gr, nil
	}
	table := relation.NewGrouper(nil, len(rows)/4+1)
	var groups []*rowGroup
	for _, row := range rows {
		env := rowEnv{src: src, row: row, db: db, outer: outer, subs: subs}
		key := make(relation.Tuple, nG)
		for i, g := range stmt.GroupBy {
			v, err := expr.Eval(g, env)
			if err != nil {
				return nil, nil, err
			}
			key[i] = v
		}
		gid, fresh := table.Add(key)
		if fresh {
			groups = append(groups, &rowGroup{key: key})
		}
		groups[gid].rows = append(groups[gid].rows, row)
	}
	return groups, nil, nil
}

// accumulateGroup computes every lifted aggregate over one group's rows. A
// nil program marks COUNT(*). With chunking enabled (the single-group case,
// where cross-group parallelism has nothing to chew on) the rows split into
// chunks whose partial accumulators merge in chunk order.
func accumulateGroup(aggs []liftedAgg, aggProgs []*expr.Program, rows []relation.Tuple, chunked bool) ([]value.Value, error) {
	accumulate := func(lo, hi int) ([]*relation.Accumulator, error) {
		accs := make([]*relation.Accumulator, len(aggs))
		for i, a := range aggs {
			accs[i] = relation.NewAccumulator(a.fn)
		}
		for ri := lo; ri < hi; ri++ {
			for ai, a := range aggs {
				v := value.NewInt(1)
				if !a.star {
					var err error
					v, err = aggProgs[ai].Eval(rows[ri])
					if err != nil {
						return nil, err
					}
				}
				if err := accs[ai].Add(v); err != nil {
					return nil, err
				}
			}
		}
		return accs, nil
	}
	var accs []*relation.Accumulator
	bounds := relation.Chunks(len(rows))
	if !chunked || len(bounds) <= 1 {
		var err error
		accs, err = accumulate(0, len(rows))
		if err != nil {
			return nil, err
		}
	} else {
		parts := make([][]*relation.Accumulator, len(bounds))
		err := relation.RunChunks(bounds, func(c, lo, hi int) error {
			a, err := accumulate(lo, hi)
			if err != nil {
				return err
			}
			parts[c] = a
			return nil
		})
		if err != nil {
			return nil, err
		}
		accs = parts[0]
		for _, p := range parts[1:] {
			for ai := range accs {
				accs[ai].Merge(p[ai])
			}
		}
	}
	results := make([]value.Value, len(aggs))
	for ai, acc := range accs {
		results[ai] = acc.Result()
	}
	return results, nil
}

// compiledGroupOutput is the compiled, parallel variant of execGrouped's
// output loop. Aggregate arguments compile against the source layout;
// HAVING, items and ORDER BY keys compile against the extended layout of
// source columns plus one slot per lifted aggregate. Groups process in
// parallel chunks (chunk-local outputs concatenated in chunk order); the
// single-group case chunks the aggregate accumulation instead. The bool
// reports whether the fast path ran.
//
// When gr is non-nil, the rows still align with the source's typed columns
// (idx holds their base-row indexes; nil means identity) and every lifted
// aggregate's argument is a plain column reference (or COUNT(*)), the
// aggregates compute up front through the typed grouped-aggregation kernel —
// all groups at once over the column payloads — and the per-group loop only
// reads the results.
func compiledGroupOutput(src *source, groups []*rowGroup, gr *relation.Grouping, aggs []liftedAgg, items []SelectItem, having expr.Expr, orderBy []OrderItem, schema relation.Schema, outer expr.Env, idx []int32, aligned bool, nRows int) (*relation.Relation, [][]value.Value, bool, error) {
	nSrc := len(src.rel.Schema)
	res := extResolver(src, len(aggs))
	compileExt := func(e expr.Expr) *expr.Program {
		if !compileSafe(e, outer) {
			return nil
		}
		p, err := expr.Compile(e, res)
		if err != nil {
			return nil
		}
		return p
	}
	aggProgs := make([]*expr.Program, len(aggs))
	chunkSafe := true
	kindOf := func(name string) (value.Kind, bool) {
		i, err := src.resolve(name)
		if err != nil {
			return value.KindNull, false
		}
		return src.rel.Schema[i].Kind, true
	}
	for i, a := range aggs {
		if a.star {
			continue
		}
		if aggProgs[i] = compileOn(src, a.arg, outer); aggProgs[i] == nil {
			return nil, nil, false, nil
		}
		// Chunked accumulation must be bit-identical to the sequential
		// scan; float-stream summing is not (addition re-associates), so
		// any such aggregate keeps the whole pass sequential.
		in, err := expr.Check(a.arg, kindOf)
		if err != nil || !relation.MergeExact(a.fn, in) {
			chunkSafe = false
		}
	}
	if !chunkSafe {
		execMergeFallback.Inc()
	}
	// Typed grouped aggregation: with the row→group map in hand and the rows
	// still aligned to the source columns, column-reference arguments (and
	// COUNT(*)) feed the typed kernel over the column payloads for all groups
	// at once. The engagement is all-or-nothing so the boxed per-group loop
	// below stays the single fallback.
	var aggResults [][]value.Value // [agg][group]
	if gr != nil && aligned && outer == nil && len(aggs) > 0 {
		typedOK := true
		cols := make([]*relation.Col, len(aggs))
		for i, a := range aggs {
			if a.star {
				continue // COUNT(*): no argument column
			}
			ref, ok := a.arg.(*expr.ColumnRef)
			if !ok {
				typedOK = false
				break
			}
			if cols[i], ok = src.batchResolve(ref.Name); !ok {
				typedOK = false
				break
			}
		}
		if typedOK {
			aggResults = make([][]value.Value, len(aggs))
			for i, a := range aggs {
				res, _, err := relation.GroupAggregate(a.fn, cols[i], gr.IDs, idx, nRows, len(groups))
				if err != nil {
					if errors.Is(err, relation.ErrNotVectorizable) {
						aggResults = nil
						break
					}
					return nil, nil, true, err
				}
				aggResults[i] = res
			}
		}
	}
	var havingProg *expr.Program
	if having != nil {
		if havingProg = compileExt(having); havingProg == nil {
			return nil, nil, false, nil
		}
	}
	itemProgs := make([]*expr.Program, len(items))
	for i, it := range items {
		if itemProgs[i] = compileExt(it.Expr); itemProgs[i] == nil {
			return nil, nil, false, nil
		}
	}
	out := relation.New("result", schema)
	refs, ok := compileOrderRefs(orderBy, out.Schema, outer, compileExt)
	if !ok {
		return nil, nil, false, nil
	}

	type part struct {
		rows []relation.Tuple
		keys [][]value.Value
	}
	bounds := relation.Chunks(len(groups))
	parts := make([]part, len(bounds))
	chunkRows := len(groups) == 1 && chunkSafe
	err := relation.RunChunks(bounds, func(c, lo, hi int) error {
		p := &parts[c]
		for gi := lo; gi < hi; gi++ {
			grp := groups[gi]
			var results []value.Value
			if aggResults != nil {
				results = make([]value.Value, len(aggs))
				for ai := range aggResults {
					results[ai] = aggResults[ai][gi]
				}
			} else {
				var err error
				results, err = accumulateGroup(aggs, aggProgs, grp.rows, chunkRows)
				if err != nil {
					return err
				}
			}
			// Extended row: a representative source row (all NULL for the
			// empty ungrouped group) followed by the aggregate results.
			ext := make(relation.Tuple, nSrc+len(aggs))
			if len(grp.rows) > 0 {
				copy(ext, grp.rows[0])
			}
			copy(ext[nSrc:], results)
			if havingProg != nil {
				ok, err := havingProg.EvalBool(ext)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
			}
			tuple := make(relation.Tuple, len(items))
			for i, ip := range itemProgs {
				v, err := ip.Eval(ext)
				if err != nil {
					return err
				}
				tuple[i] = widen(v, schema[i].Kind)
			}
			keys, err := evalOrderRefs(refs, tuple, ext)
			if err != nil {
				return err
			}
			p.rows = append(p.rows, tuple)
			p.keys = append(p.keys, keys)
		}
		return nil
	})
	if err != nil {
		return nil, nil, true, err
	}
	sortVals := make([][]value.Value, 0, len(groups))
	for _, p := range parts {
		out.Rows = append(out.Rows, p.rows...)
		sortVals = append(sortVals, p.keys...)
	}
	return out, sortVals, true, nil
}
