package sql

import (
	"strings"
	"testing"

	"sheetmusiq/internal/dataset"
	"sheetmusiq/internal/relation"
	"sheetmusiq/internal/value"
)

func db() *DB {
	d := NewDB()
	d.Register(dataset.UsedCars())
	dealers := relation.New("dealers", relation.Schema{
		{Name: "dealer", Kind: value.KindString},
		{Name: "specialty", Kind: value.KindString},
	})
	dealers.MustAppend(value.NewString("AnnArborAuto"), value.NewString("Jetta"))
	dealers.MustAppend(value.NewString("MotorCity"), value.NewString("Civic"))
	d.Register(dealers)
	return d
}

func q(t *testing.T, src string) *relation.Relation {
	t.Helper()
	r, err := db().Query(src)
	if err != nil {
		t.Fatalf("query %q: %v", src, err)
	}
	return r
}

func TestSelectStar(t *testing.T) {
	r := q(t, "SELECT * FROM cars")
	if r.Len() != 9 || len(r.Schema) != 6 {
		t.Fatalf("rows=%d cols=%d", r.Len(), len(r.Schema))
	}
	if r.Schema[0].Name != "ID" {
		t.Fatalf("star should keep base column names, got %v", r.Schema.Names())
	}
}

func TestWhereAndProjection(t *testing.T) {
	r := q(t, "SELECT Model, Price FROM cars WHERE Year = 2005 AND Price < 15000")
	if r.Len() != 2 {
		t.Fatalf("rows = %d, want 2", r.Len())
	}
	if got := strings.Join(r.Schema.Names(), ","); got != "Model,Price" {
		t.Fatalf("columns = %s", got)
	}
}

func TestExpressionsAndAliases(t *testing.T) {
	r := q(t, "SELECT Model, Price / 1000 AS kprice FROM cars WHERE ID = 304")
	if r.Len() != 1 {
		t.Fatal("want one row")
	}
	if r.Schema[1].Name != "kprice" {
		t.Fatalf("alias lost: %v", r.Schema.Names())
	}
	if got := r.Rows[0][1].Float(); got != 14.5 {
		t.Fatalf("kprice = %v", got)
	}
}

func TestImplicitAlias(t *testing.T) {
	r := q(t, "SELECT Price p FROM cars WHERE ID = 304")
	if r.Schema[0].Name != "p" {
		t.Fatalf("implicit alias lost: %v", r.Schema.Names())
	}
}

func TestOrderByLimit(t *testing.T) {
	r := q(t, "SELECT ID, Price FROM cars ORDER BY Price DESC, ID ASC LIMIT 3")
	if r.Len() != 3 {
		t.Fatalf("rows = %d", r.Len())
	}
	want := []int64{725, 723, 423}
	for i, w := range want {
		if r.Rows[i][0].Int() != w {
			t.Fatalf("row %d = %v, want %d", i, r.Rows[i], w)
		}
	}
}

func TestOrderByOutputAlias(t *testing.T) {
	r := q(t, "SELECT ID, Price * 2 AS dbl FROM cars ORDER BY dbl LIMIT 1")
	if r.Rows[0][0].Int() != 132 {
		t.Fatalf("cheapest car = %v", r.Rows[0])
	}
}

func TestDistinct(t *testing.T) {
	r := q(t, "SELECT DISTINCT Model FROM cars")
	if r.Len() != 2 {
		t.Fatalf("distinct models = %d", r.Len())
	}
}

func TestJoinHash(t *testing.T) {
	r := q(t, "SELECT c.ID, d.dealer FROM cars c JOIN dealers d ON c.Model = d.specialty ORDER BY c.ID")
	if r.Len() != 9 {
		t.Fatalf("join rows = %d", r.Len())
	}
	if r.Rows[0][0].Int() != 132 || r.Rows[0][1].Str() != "MotorCity" {
		t.Fatalf("first row = %v", r.Rows[0])
	}
}

func TestJoinTheta(t *testing.T) {
	// Non-equality condition exercises the nested-loop path.
	r := q(t, "SELECT a.ID, b.ID FROM cars a JOIN cars b ON a.Price < b.Price AND a.Model = 'Civic' WHERE b.Model = 'Civic'")
	// Civic prices 13500 < 15000 < 16000: 3 ordered pairs.
	if r.Len() != 3 {
		t.Fatalf("theta join rows = %d, want 3", r.Len())
	}
}

func TestCrossJoin(t *testing.T) {
	r := q(t, "SELECT * FROM cars CROSS JOIN dealers")
	if r.Len() != 18 {
		t.Fatalf("cross join rows = %d", r.Len())
	}
	r = q(t, "SELECT * FROM cars, dealers")
	if r.Len() != 18 {
		t.Fatalf("comma join rows = %d", r.Len())
	}
}

func TestSelfJoinNeedsAliases(t *testing.T) {
	if _, err := db().Query("SELECT * FROM cars JOIN cars ON ID = ID"); err == nil {
		t.Fatal("self join without aliases must fail")
	}
}

func TestGroupByAggregate(t *testing.T) {
	r := q(t, "SELECT Model, AVG(Price) AS avg_price, COUNT(*) AS n FROM cars GROUP BY Model ORDER BY Model")
	if r.Len() != 2 {
		t.Fatalf("groups = %d", r.Len())
	}
	// Civic first (ordered).
	if r.Rows[0][0].Str() != "Civic" || r.Rows[0][2].Int() != 3 {
		t.Fatalf("civic row = %v", r.Rows[0])
	}
	wantCivic := (13500.0 + 15000 + 16000) / 3
	if r.Rows[0][1].Float() != wantCivic {
		t.Fatalf("civic avg = %v, want %v", r.Rows[0][1], wantCivic)
	}
}

func TestGroupByMultipleKeys(t *testing.T) {
	r := q(t, "SELECT Model, Year, MIN(Price) AS lo FROM cars GROUP BY Model, Year ORDER BY Model, Year")
	if r.Len() != 4 {
		t.Fatalf("groups = %d, want 4", r.Len())
	}
	if r.Rows[0][0].Str() != "Civic" || r.Rows[0][1].Int() != 2005 || r.Rows[0][2].Int() != 13500 {
		t.Fatalf("first group = %v", r.Rows[0])
	}
}

func TestHaving(t *testing.T) {
	r := q(t, "SELECT Model, AVG(Price) AS ap FROM cars GROUP BY Model HAVING AVG(Price) > 15500 ORDER BY Model")
	if r.Len() != 1 || r.Rows[0][0].Str() != "Jetta" {
		t.Fatalf("having result = %v", r.Rows)
	}
}

func TestAggregateOverExpression(t *testing.T) {
	r := q(t, "SELECT SUM(Price * 2) AS s FROM cars WHERE Model = 'Civic'")
	if r.Rows[0][0].Int() != 2*(13500+15000+16000) {
		t.Fatalf("sum = %v", r.Rows[0][0])
	}
}

func TestExpressionOverAggregates(t *testing.T) {
	r := q(t, "SELECT SUM(Price) / COUNT(*) AS manual_avg, AVG(Price) AS built_in FROM cars")
	if r.Rows[0][0].Float() != r.Rows[0][1].Float() {
		t.Fatalf("manual %v != builtin %v", r.Rows[0][0], r.Rows[0][1])
	}
}

func TestCountVariants(t *testing.T) {
	r := q(t, "SELECT COUNT(*) AS all_rows, COUNT(Model) AS models, COUNT(DISTINCT Model) AS uniq FROM cars")
	if r.Rows[0][0].Int() != 9 || r.Rows[0][1].Int() != 9 || r.Rows[0][2].Int() != 2 {
		t.Fatalf("counts = %v", r.Rows[0])
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	r := q(t, "SELECT COUNT(*) AS n, SUM(Price) AS s FROM cars WHERE Price > 99999")
	if r.Len() != 1 || r.Rows[0][0].Int() != 0 || !r.Rows[0][1].IsNull() {
		t.Fatalf("empty aggregate = %v", r.Rows)
	}
}

func TestGroupByExpression(t *testing.T) {
	r := q(t, "SELECT Year % 2 AS parity, COUNT(*) AS n FROM cars GROUP BY Year % 2 ORDER BY parity")
	if r.Len() != 2 {
		t.Fatalf("parity groups = %d", r.Len())
	}
	if r.Rows[0][0].Int() != 0 || r.Rows[0][1].Int() != 5 {
		t.Fatalf("even-year group = %v, want [0 5] (five 2006 cars)", r.Rows[0])
	}
}

func TestSubqueryInFrom(t *testing.T) {
	r := q(t, `SELECT m, n FROM (SELECT Model AS m, COUNT(*) AS n FROM cars GROUP BY Model) AS g WHERE n > 4`)
	if r.Len() != 1 || r.Rows[0][0].Str() != "Jetta" {
		t.Fatalf("subquery result = %v", r.Rows)
	}
}

func TestNestedSubqueryJoin(t *testing.T) {
	r := q(t, `SELECT c.ID FROM cars c JOIN (SELECT Model AS m, AVG(Price) AS ap FROM cars GROUP BY Model) AS g ON c.Model = g.m WHERE c.Price < g.ap ORDER BY c.ID`)
	// Cars cheaper than their model average: Jetta avg 16333.33 → 304, 872,
	// 901; Civic avg 14833.33 → 132.
	want := []int64{132, 304, 872, 901}
	if r.Len() != len(want) {
		t.Fatalf("rows = %d: %v", r.Len(), r.Rows)
	}
	for i, w := range want {
		if r.Rows[i][0].Int() != w {
			t.Fatalf("row %d = %v, want %d", i, r.Rows[i], w)
		}
	}
}

func TestOrderByAggregate(t *testing.T) {
	r := q(t, "SELECT Model FROM cars GROUP BY Model ORDER BY SUM(Price) DESC")
	if r.Rows[0][0].Str() != "Jetta" {
		t.Fatalf("order by aggregate = %v", r.Rows)
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		"SELECT",                // no items
		"SELECT FROM cars",      // empty list
		"SELECT * FROM nope",    // unknown table
		"SELECT nope FROM cars", // unknown column
		"SELECT Price FROM cars WHERE SUM(Price) > 1",            // aggregate in WHERE
		"SELECT Price FROM cars GROUP BY Model",                  // non-grouped column
		"SELECT * FROM cars GROUP BY Model",                      // star with grouping
		"SELECT Model FROM cars HAVING Price > 1 GROUP BY Model", // clause order
		"SELECT SUM(SUM(Price)) FROM cars",                       // nested aggregates
		"SELECT Model FROM cars LIMIT x",                         // bad limit
		"SELECT a.x FROM (SELECT 1 AS x FROM cars)",              // subquery missing alias
		"SELECT SUM(*) FROM cars",                                // * outside COUNT
		"SELECT Model FROM cars ORDER BY",                        // dangling order by
	}
	d := db()
	for _, src := range cases {
		if _, err := d.Query(src); err == nil {
			t.Errorf("Query(%q) should fail", src)
		}
	}
}

func TestSQLRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT * FROM cars",
		"SELECT Model, Price FROM cars WHERE Year = 2005 AND Price < 15000",
		"SELECT Model, AVG(Price) AS ap FROM cars GROUP BY Model HAVING AVG(Price) > 15500 ORDER BY ap DESC LIMIT 5",
		"SELECT DISTINCT Model FROM cars ORDER BY Model",
		"SELECT c.ID FROM cars AS c JOIN dealers AS d ON c.Model = d.specialty WHERE d.dealer LIKE 'Ann%' ORDER BY c.ID",
		"SELECT m, n FROM (SELECT Model AS m, COUNT(*) AS n FROM cars GROUP BY Model) AS g WHERE n > 4",
		"SELECT * FROM cars CROSS JOIN dealers",
	}
	d := db()
	for _, src := range queries {
		stmt, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		stmt2, err := Parse(stmt.SQL())
		if err != nil {
			t.Fatalf("reparse of %q -> %q: %v", src, stmt.SQL(), err)
		}
		r1, err := d.Exec(stmt)
		if err != nil {
			t.Fatalf("exec %q: %v", src, err)
		}
		r2, err := d.Exec(stmt2)
		if err != nil {
			t.Fatalf("exec reparsed %q: %v", stmt.SQL(), err)
		}
		if r1.String() != r2.String() {
			t.Fatalf("round trip diverged for %q", src)
		}
	}
}

func TestAgainstRelationalBaseline(t *testing.T) {
	// The executor must agree with the direct relational operators.
	d := db()
	got := q(t, "SELECT Model, AVG(Price) AS a FROM cars WHERE Year = 2006 GROUP BY Model ORDER BY Model")
	cars, _ := d.Table("cars")
	yi := cars.Schema.IndexOf("Year")
	filtered, err := cars.Select(func(tp relation.Tuple) (bool, error) {
		return tp[yi].Int() == 2006, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := filtered.Aggregate([]string{"Model"}, relation.AggAvg, "Price")
	if err != nil {
		t.Fatal(err)
	}
	if err := want.Sort([]relation.SortKey{{Column: "Model"}}); err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Len() {
		t.Fatalf("rows %d vs %d", got.Len(), want.Len())
	}
	for i := range got.Rows {
		if got.Rows[i][0].Str() != want.Rows[i][0].Str() ||
			got.Rows[i][1].Float() != want.Rows[i][1].Float() {
			t.Fatalf("row %d: %v vs %v", i, got.Rows[i], want.Rows[i])
		}
	}
}

func TestScalarFunctionsInSQL(t *testing.T) {
	r := q(t, "SELECT UPPER(Model) AS m FROM cars WHERE ID = 304")
	if r.Rows[0][0].Str() != "JETTA" {
		t.Fatalf("UPPER = %v", r.Rows[0][0])
	}
}

func TestQualifiedStarColumns(t *testing.T) {
	r := q(t, "SELECT c.Model FROM cars c WHERE c.Price = 13500")
	if r.Len() != 1 || r.Rows[0][0].Str() != "Civic" {
		t.Fatalf("qualified ref = %v", r.Rows)
	}
	if r.Schema[0].Name != "Model" {
		t.Fatalf("output name should drop qualifier: %v", r.Schema.Names())
	}
}

func TestLimitOffset(t *testing.T) {
	r := q(t, "SELECT ID FROM cars ORDER BY Price LIMIT 3 OFFSET 2")
	// Price order: 132, 304, 872/879(15000, tie by input order 872 first),
	// ... offset 2 skips 132 and 304.
	if r.Len() != 3 {
		t.Fatalf("rows = %d", r.Len())
	}
	if r.Rows[0][0].Int() != 872 {
		t.Fatalf("first row after offset = %v", r.Rows[0])
	}
	// Offset beyond the result is empty, not an error.
	r = q(t, "SELECT ID FROM cars LIMIT 5 OFFSET 100")
	if r.Len() != 0 {
		t.Fatalf("oversized offset rows = %d", r.Len())
	}
	if _, err := db().Query("SELECT ID FROM cars OFFSET x"); err == nil {
		t.Fatal("bad OFFSET must error")
	}
	// SQL rendering round-trips the clause.
	stmt := MustParse("SELECT ID FROM cars ORDER BY ID LIMIT 2 OFFSET 4")
	if _, err := Parse(stmt.SQL()); err != nil {
		t.Fatalf("OFFSET rendering does not reparse: %v", err)
	}
}
