package sql

import (
	"runtime"
	"testing"

	"sheetmusiq/internal/dataset"
	"sheetmusiq/internal/relation"
)

// Sequential/parallel equivalence for the SQL executor's compiled fast
// paths: every query shape must render identically whether the chunked
// stages run in one chunk or in forced-parallel chunks. Run under -race via
// `make race`, it also proves the chunks share no state.

// equivQueries spans the executor's paths: compiled WHERE filtering, plain
// projection, grouped aggregation (multi-group and the chunked single
// group), HAVING, ORDER BY over aliases / source columns / aggregates,
// DISTINCT, LIMIT/OFFSET, joins, and the interpreted subquery fallback.
var equivQueries = []string{
	"SELECT * FROM cars",
	"SELECT Model, Price FROM cars WHERE Price < 15000 AND Condition IN ('Good','Excellent')",
	"SELECT Model, Price / 1000 AS kprice FROM cars WHERE Model LIKE 'C%' ORDER BY kprice DESC, Model",
	"SELECT Model, Price FROM cars WHERE NOT (Year = 2005) ORDER BY Price * -1, ID",
	"SELECT DISTINCT Model, Condition FROM cars ORDER BY Model, Condition",
	"SELECT Model, Price FROM cars ORDER BY Price DESC LIMIT 7 OFFSET 3",
	"SELECT COUNT(*) AS n, SUM(Price) AS total, AVG(Mileage) AS avgm FROM cars",
	"SELECT COUNT(*) FROM cars WHERE Price > 20000",
	"SELECT Model, COUNT(*) AS n, AVG(Price) AS avgp FROM cars GROUP BY Model ORDER BY Model",
	"SELECT Model, MIN(Price) AS lo, MAX(Price) AS hi FROM cars GROUP BY Model HAVING COUNT(*) > 2 ORDER BY lo",
	"SELECT Year, Condition, AVG(Price) AS avgp FROM cars GROUP BY Year, Condition ORDER BY Year, Condition",
	"SELECT Model, AVG(Price) AS avgp FROM cars WHERE Mileage < 120000 GROUP BY Model HAVING AVG(Price) > 14000 ORDER BY avgp DESC",
	"SELECT Model, SUM(Price) / COUNT(*) AS per FROM cars GROUP BY Model ORDER BY SUM(Price) DESC",
	"SELECT c.Model, d.dealer FROM cars c, dealers d WHERE c.Model = d.specialty ORDER BY c.ID",
	"SELECT Model, Price FROM cars WHERE Price > (SELECT AVG(Price) FROM cars) ORDER BY ID",
	"SELECT Model FROM cars WHERE Model IN (SELECT specialty FROM dealers) ORDER BY ID",
	"SELECT Model, Price FROM (SELECT Model, Price FROM cars WHERE Year >= 2003) s WHERE Price < 18000 ORDER BY Price, Model",
}

func equivDB(base *relation.Relation) *DB {
	d := db()
	d.Register(base)
	return d
}

// renderQueryAt runs one query with the given parallel threshold in force.
// GOMAXPROCS is raised so the threshold-0 run splits into real chunks even
// on a single-core host.
func renderQueryAt(t *testing.T, base *relation.Relation, query string, threshold int) string {
	t.Helper()
	old := relation.ParallelThreshold
	relation.ParallelThreshold = threshold
	oldProcs := runtime.GOMAXPROCS(8)
	defer func() {
		relation.ParallelThreshold = old
		runtime.GOMAXPROCS(oldProcs)
	}()
	r, err := equivDB(base).Query(query)
	if err != nil {
		t.Fatalf("%q: %v", query, err)
	}
	return r.String()
}

func TestSQLParallelEquivalence(t *testing.T) {
	bases := map[string]*relation.Relation{
		"usedcars": dataset.UsedCars(),
		"random3k": dataset.RandomCars(3000, 42),
	}
	const sequential = 1 << 30
	for baseName, base := range bases {
		for _, query := range equivQueries {
			want := renderQueryAt(t, base, query, sequential)
			got := renderQueryAt(t, base, query, 0)
			if got != want {
				t.Errorf("%s/%q: parallel output diverged from sequential\n--- parallel ---\n%s\n--- sequential ---\n%s",
					baseName, query, got, want)
			}
		}
	}
}

// TestSQLParallelErrorParity pins error determinism: the chunked WHERE must
// surface the same first-failing-row error the sequential scan does.
func TestSQLParallelErrorParity(t *testing.T) {
	base := dataset.RandomCars(3000, 7)
	run := func(threshold int) error {
		old := relation.ParallelThreshold
		relation.ParallelThreshold = threshold
		oldProcs := runtime.GOMAXPROCS(8)
		defer func() {
			relation.ParallelThreshold = old
			runtime.GOMAXPROCS(oldProcs)
		}()
		_, err := equivDB(base).Query("SELECT Model FROM cars WHERE Price / (Year - Year) > 1")
		return err
	}
	seqErr := run(1 << 30)
	parErr := run(0)
	if seqErr == nil || parErr == nil {
		t.Fatalf("division by zero not surfaced: sequential %v, parallel %v", seqErr, parErr)
	}
	if seqErr.Error() != parErr.Error() {
		t.Fatalf("error parity lost:\nsequential: %v\nparallel:   %v", seqErr, parErr)
	}
}
