package sql

import (
	"strings"

	"sheetmusiq/internal/expr"
	"sheetmusiq/internal/relation"
)

// This file implements predicate pushdown: WHERE conjuncts whose columns
// all come from a single FROM source are applied while that source is
// materialised, before any join touches it. With inner joins only, pushing
// a single-source filter below the join is an identity on the result —
// including row order, because both the hash and nested-loop joins emit
// surviving left rows in input order.
//
// DB.DisablePushdown turns the rewrite off; BenchmarkAblationPushdown
// quantifies the difference on the study's multi-join views.

// conjuncts flattens top-level ANDs.
func conjuncts(e expr.Expr) []expr.Expr {
	if b, ok := e.(*expr.Binary); ok && b.Op == expr.OpAnd {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	return []expr.Expr{e}
}

func conjoin(es []expr.Expr) expr.Expr {
	if len(es) == 0 {
		return nil
	}
	out := es[0]
	for _, e := range es[1:] {
		out = &expr.Binary{Op: expr.OpAnd, L: out, R: e}
	}
	return out
}

// sourceColumns maps each FROM alias to the lowercase column names it
// produces, statically (no data access).
func (db *DB) sourceColumns(f FromItem, out map[string]map[string]bool) {
	switch t := f.(type) {
	case *TableRef:
		alias := t.Alias
		if alias == "" {
			alias = t.Name
		}
		cols := map[string]bool{}
		if base, ok := db.Table(t.Name); ok {
			for _, c := range base.Schema {
				cols[strings.ToLower(c.Name)] = true
			}
		}
		out[strings.ToLower(alias)] = cols
	case *SubqueryRef:
		cols := map[string]bool{}
		for _, it := range t.Stmt.Items {
			if it.Star {
				// Star output depends on the inner sources; give up on
				// pushing into this alias.
				return
			}
			cols[strings.ToLower(it.Name())] = true
		}
		out[strings.ToLower(t.Alias)] = cols
	case *JoinRef:
		db.sourceColumns(t.Left, out)
		db.sourceColumns(t.Right, out)
	}
}

// homeAlias finds the single source that covers every column the conjunct
// references, or "" when none (cross-source, unresolved, or ambiguous).
func homeAlias(e expr.Expr, sources map[string]map[string]bool) string {
	if expr.ContainsSubquery(e) || expr.ContainsAggregate(e) || expr.ContainsWindow(e) {
		return ""
	}
	home := ""
	for _, ref := range expr.Columns(e) {
		lower := strings.ToLower(ref)
		var candidates []string
		if i := strings.LastIndexByte(lower, '.'); i >= 0 {
			alias, col := lower[:i], lower[i+1:]
			if cols, ok := sources[alias]; ok && cols[col] {
				candidates = []string{alias}
			}
		} else {
			for alias, cols := range sources {
				if cols[lower] {
					candidates = append(candidates, alias)
				}
			}
		}
		if len(candidates) != 1 {
			return ""
		}
		if home == "" {
			home = candidates[0]
		} else if home != candidates[0] {
			return ""
		}
	}
	return home
}

// pushdown splits the WHERE clause into per-alias filters plus a residual
// predicate. Joins must all be inner (they are — the grammar has no OUTER).
func (db *DB) pushdown(stmt *SelectStmt) (filters map[string][]expr.Expr, residual expr.Expr) {
	if db.DisablePushdown || stmt.Where == nil {
		return nil, stmt.Where
	}
	if _, isJoin := stmt.From.(*JoinRef); !isJoin {
		// A single source gains nothing: WHERE already runs on the scan.
		return nil, stmt.Where
	}
	sources := map[string]map[string]bool{}
	db.sourceColumns(stmt.From, sources)
	if len(sources) == 0 {
		return nil, stmt.Where
	}
	filters = map[string][]expr.Expr{}
	var rest []expr.Expr
	for _, c := range conjuncts(stmt.Where) {
		if home := homeAlias(c, sources); home != "" {
			filters[home] = append(filters[home], c)
			continue
		}
		rest = append(rest, c)
	}
	if len(filters) == 0 {
		return nil, stmt.Where
	}
	return filters, conjoin(rest)
}

// applyFilter filters a freshly materialised source in place.
func applyFilter(db *DB, src *source, preds []expr.Expr, outer expr.Env) error {
	if len(preds) == 0 {
		return nil
	}
	pred := conjoin(preds)
	rows := src.rel.TupleRows()
	kept := make([]relation.Tuple, 0, len(rows))
	for _, row := range rows {
		ok, err := expr.EvalBool(pred, rowEnv{src: src, row: row, db: db, outer: outer})
		if err != nil {
			return err
		}
		if ok {
			kept = append(kept, row)
		}
	}
	src.rel = &relation.Relation{Name: src.rel.Name, Schema: src.rel.Schema, Rows: kept}
	src.cols = nil // the vectors no longer align with the filtered rows
	return nil
}
