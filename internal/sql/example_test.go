package sql_test

import (
	"fmt"
	"log"

	"sheetmusiq/internal/dataset"
	"sheetmusiq/internal/sql"
)

// Example runs a grouped, filtered query against an in-memory table.
func Example() {
	db := sql.NewDB()
	db.Register(dataset.UsedCars())
	res, err := db.Query(
		"SELECT Model, COUNT(*) AS n, MIN(Price) AS cheapest FROM cars " +
			"WHERE Year >= 2005 GROUP BY Model ORDER BY Model")
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("%v: %v cars, cheapest %v\n", row[0], row[1], row[2])
	}
	// Output:
	// Civic: 3 cars, cheapest 13500
	// Jetta: 6 cars, cheapest 14500
}

// Example_correlatedSubquery runs the nested form of the paper's Fig. 2
// query — expressible here, not in the spreadsheet algebra.
func Example_correlatedSubquery() {
	db := sql.NewDB()
	db.Register(dataset.UsedCars())
	res, err := db.Query(
		"SELECT c.ID FROM cars c WHERE c.Price < " +
			"(SELECT AVG(b.Price) FROM cars b WHERE b.Model = c.Model) ORDER BY c.ID")
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Println(row[0])
	}
	// Output:
	// 132
	// 304
	// 872
	// 901
}
