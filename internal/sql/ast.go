// Package sql implements a single-block SQL engine over internal/relation:
// a parser, a semantic analyser, and an executor for the fragment of SQL the
// spreadsheet algebra targets — SELECT [DISTINCT] with expressions and
// aggregates, FROM with base tables, subqueries and joins, WHERE, GROUP BY,
// HAVING, ORDER BY and LIMIT.
//
// The paper's prototype compiled spreadsheet manipulations to SQL against
// PostgreSQL; this package substitutes for that backend (DESIGN.md §2) and
// doubles as the independent oracle that internal/sqlgen output is verified
// against.
package sql

import (
	"strings"

	"sheetmusiq/internal/expr"
)

// SelectStmt is a parsed single-block query.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     FromItem
	Where    expr.Expr
	GroupBy  []expr.Expr
	Having   expr.Expr
	OrderBy  []OrderItem
	Limit    int // -1 when absent
	Offset   int // 0 when absent
}

// SelectItem is one output column: an expression with an optional alias.
// A nil Expr with Star true selects every input column.
type SelectItem struct {
	Expr  expr.Expr
	Alias string
	Star  bool
}

// Name returns the output column name: the alias, a bare column's last path
// segment, or the canonical SQL text.
func (it SelectItem) Name() string {
	if it.Alias != "" {
		return it.Alias
	}
	if c, ok := it.Expr.(*expr.ColumnRef); ok {
		if i := strings.LastIndexByte(c.Name, '.'); i >= 0 {
			return c.Name[i+1:]
		}
		return c.Name
	}
	return it.Expr.SQL()
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr expr.Expr
	Desc bool
}

// FromItem is a FROM-clause source.
type FromItem interface{ fromItem() }

// TableRef names a registered table, optionally aliased.
type TableRef struct {
	Name  string
	Alias string
}

func (*TableRef) fromItem() {}

// SubqueryRef is a parenthesised SELECT used as a source; the alias is
// required.
type SubqueryRef struct {
	Stmt  *SelectStmt
	Alias string
}

func (*SubqueryRef) fromItem() {}

// JoinRef combines two sources. Cross joins have a nil On.
type JoinRef struct {
	Left, Right FromItem
	On          expr.Expr
}

func (*JoinRef) fromItem() {}

// SQL renders the statement back to text.
func (s *SelectStmt) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		if it.Star {
			b.WriteString("*")
			continue
		}
		b.WriteString(it.Expr.SQL())
		if it.Alias != "" {
			b.WriteString(" AS ")
			b.WriteString(quoteIdent(it.Alias))
		}
	}
	b.WriteString(" FROM ")
	writeFrom(&b, s.From)
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(s.Where.SQL())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.SQL())
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING ")
		b.WriteString(s.Having.SQL())
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Expr.SQL())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		b.WriteString(" LIMIT ")
		b.WriteString(itoa(s.Limit))
	}
	if s.Offset > 0 {
		b.WriteString(" OFFSET ")
		b.WriteString(itoa(s.Offset))
	}
	return b.String()
}

func writeFrom(b *strings.Builder, f FromItem) {
	switch t := f.(type) {
	case *TableRef:
		b.WriteString(quoteIdent(t.Name))
		if t.Alias != "" {
			b.WriteString(" AS ")
			b.WriteString(quoteIdent(t.Alias))
		}
	case *SubqueryRef:
		b.WriteString("(")
		b.WriteString(t.Stmt.SQL())
		b.WriteString(") AS ")
		b.WriteString(quoteIdent(t.Alias))
	case *JoinRef:
		writeFrom(b, t.Left)
		if t.On == nil {
			b.WriteString(" CROSS JOIN ")
			writeFrom(b, t.Right)
		} else {
			b.WriteString(" JOIN ")
			writeFrom(b, t.Right)
			b.WriteString(" ON ")
			b.WriteString(t.On.SQL())
		}
	}
}

func quoteIdent(name string) string {
	plain := name != ""
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				plain = false
			}
		default:
			plain = false
		}
	}
	if plain {
		return name
	}
	return `"` + strings.ReplaceAll(name, `"`, `""`) + `"`
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
