package sql

import (
	"testing"
)

// FuzzQuery checks the statement parser and executor never panic: inputs
// either execute or fail with an error.
func FuzzQuery(f *testing.F) {
	seeds := []string{
		"SELECT * FROM cars",
		"SELECT Model, AVG(Price) AS a FROM cars GROUP BY Model HAVING AVG(Price) > 1 ORDER BY a DESC LIMIT 2",
		"SELECT c.ID FROM cars c JOIN dealers d ON c.Model = d.specialty",
		"SELECT m FROM (SELECT Model AS m FROM cars) AS g WHERE m LIKE 'J%'",
		"SELECT ID FROM cars WHERE EXISTS (SELECT 1 FROM dealers WHERE specialty = Model)",
		"SELECT ID FROM cars WHERE Price = (SELECT MIN(Price) FROM cars)",
		"SELECT DISTINCT Model FROM cars ORDER BY Model",
		"SELECT * FROM",
		"SELECT FROM cars",
		"SELECT * FROM cars WHERE",
		"SELECT * FROM cars GROUP BY",
		"SELECT * FROM cars cars cars",
		"SELECT ((SELECT 1 FROM cars)) FROM cars",
		"SELECT * FROM cars LIMIT -1",
		"SELECT Model, RANK() OVER (PARTITION BY Model ORDER BY Price) AS r FROM cars",
		"SELECT SUM(Price) OVER (ORDER BY Price ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING) FROM cars",
		"SELECT Model, MAX(Price) OVER () AS top FROM cars WHERE Price < 20000",
		"SELECT * FROM (SELECT ID, ROW_NUMBER() OVER (PARTITION BY Model ORDER BY Price) AS rn FROM cars) AS t WHERE rn <= 2",
		"SELECT ID FROM cars WHERE RANK() OVER (ORDER BY Price) = 1",
		"SELECT Model, COUNT(*) OVER (PARTITION BY Model) FROM cars GROUP BY Model",
		"SELECT RANK() OVER (ORDER BY Price ROWS BETWEEN 1 PRECEDING AND CURRENT ROW) FROM cars",
		"SELECT SUM(Price) OVER ( FROM cars",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	d := db()
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err != nil {
			return
		}
		// Executing must not panic; errors are acceptable.
		if _, err := d.Exec(stmt); err != nil {
			return
		}
		// Anything that executed must render to SQL that still parses.
		if _, err := Parse(stmt.SQL()); err != nil {
			t.Fatalf("executed statement %q renders unparseable SQL %q: %v", src, stmt.SQL(), err)
		}
	})
}
