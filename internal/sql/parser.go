package sql

import (
	"fmt"
	"strconv"

	"sheetmusiq/internal/expr"
)

// Parse parses one SELECT statement; trailing tokens (other than a
// semicolon) are an error.
func Parse(src string) (*SelectStmt, error) {
	toks, err := expr.Lex(src)
	if err != nil {
		return nil, err
	}
	p := expr.NewParser(toks)
	installSubParser(p)
	stmt, err := parseSelect(p)
	if err != nil {
		return nil, err
	}
	if !p.AtEOF() {
		t := p.Peek()
		return nil, fmt.Errorf("sql: unexpected %q at %d", t.Text, t.Pos)
	}
	return stmt, nil
}

// installSubParser enables nested SELECTs inside expressions (scalar
// subqueries, EXISTS, IN (SELECT ...)) by delegating back into the
// statement parser.
func installSubParser(p *expr.Parser) {
	p.SubParser = func(p *expr.Parser) (any, string, error) {
		stmt, err := parseSelect(p)
		if err != nil {
			return nil, "", err
		}
		return stmt, stmt.SQL(), nil
	}
}

// MustParse parses or panics; for fixtures.
func MustParse(src string) *SelectStmt {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

func parseSelect(p *expr.Parser) (*SelectStmt, error) {
	if err := p.ExpectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	stmt.Distinct = p.AcceptKeyword("DISTINCT")

	for {
		if p.AcceptOp("*") {
			stmt.Items = append(stmt.Items, SelectItem{Star: true})
		} else {
			e, err := p.ParseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.AcceptKeyword("AS") {
				t := p.Next()
				if t.Kind != expr.TokIdent {
					return nil, fmt.Errorf("sql: expected alias after AS at %d", t.Pos)
				}
				item.Alias = t.Text
			} else if t := p.Peek(); t.Kind == expr.TokIdent {
				p.Next()
				item.Alias = t.Text
			}
			stmt.Items = append(stmt.Items, item)
		}
		if !p.AcceptOp(",") {
			break
		}
	}
	if len(stmt.Items) == 0 {
		return nil, fmt.Errorf("sql: empty select list")
	}

	if err := p.ExpectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := parseFrom(p)
	if err != nil {
		return nil, err
	}
	stmt.From = from

	if p.AcceptKeyword("WHERE") {
		e, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	if p.AcceptKeyword("GROUP") {
		if err := p.ExpectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.ParseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.AcceptOp(",") {
				break
			}
		}
	}
	if p.AcceptKeyword("HAVING") {
		e, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = e
	}
	if p.AcceptKeyword("ORDER") {
		if err := p.ExpectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.ParseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.AcceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.AcceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.AcceptOp(",") {
				break
			}
		}
	}
	if p.AcceptKeyword("LIMIT") {
		t := p.Next()
		if t.Kind != expr.TokNumber {
			return nil, fmt.Errorf("sql: LIMIT expects a number at %d", t.Pos)
		}
		n, err := strconv.Atoi(t.Text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sql: bad LIMIT %q", t.Text)
		}
		stmt.Limit = n
	}
	if p.AcceptKeyword("OFFSET") {
		t := p.Next()
		if t.Kind != expr.TokNumber {
			return nil, fmt.Errorf("sql: OFFSET expects a number at %d", t.Pos)
		}
		n, err := strconv.Atoi(t.Text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sql: bad OFFSET %q", t.Text)
		}
		stmt.Offset = n
	}
	return stmt, nil
}

// parseFrom parses a source with left-associative JOIN chains.
func parseFrom(p *expr.Parser) (FromItem, error) {
	left, err := parseFromPrimary(p)
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.AcceptKeyword("CROSS"):
			if err := p.ExpectKeyword("JOIN"); err != nil {
				return nil, err
			}
			right, err := parseFromPrimary(p)
			if err != nil {
				return nil, err
			}
			left = &JoinRef{Left: left, Right: right}
		case p.AcceptKeyword("INNER"), p.AcceptKeyword("JOIN"):
			// "INNER" requires a following JOIN; bare JOIN already consumed.
			if t := p.Peek(); t.Kind == expr.TokKeyword && t.Text == "JOIN" {
				p.Next()
			}
			right, err := parseFromPrimary(p)
			if err != nil {
				return nil, err
			}
			if err := p.ExpectKeyword("ON"); err != nil {
				return nil, err
			}
			on, err := p.ParseExpr()
			if err != nil {
				return nil, err
			}
			left = &JoinRef{Left: left, Right: right, On: on}
		case p.AcceptOp(","):
			// Comma join is a cross join.
			right, err := parseFromPrimary(p)
			if err != nil {
				return nil, err
			}
			left = &JoinRef{Left: left, Right: right}
		default:
			return left, nil
		}
	}
}

func parseFromPrimary(p *expr.Parser) (FromItem, error) {
	if p.AcceptOp("(") {
		stmt, err := parseSelect(p)
		if err != nil {
			return nil, err
		}
		if err := p.ExpectOp(")"); err != nil {
			return nil, err
		}
		p.AcceptKeyword("AS")
		t := p.Next()
		if t.Kind != expr.TokIdent {
			return nil, fmt.Errorf("sql: subquery needs an alias at %d", t.Pos)
		}
		return &SubqueryRef{Stmt: stmt, Alias: t.Text}, nil
	}
	t := p.Next()
	if t.Kind != expr.TokIdent {
		return nil, fmt.Errorf("sql: expected table name at %d, found %q", t.Pos, t.Text)
	}
	ref := &TableRef{Name: t.Text}
	if p.AcceptKeyword("AS") {
		a := p.Next()
		if a.Kind != expr.TokIdent {
			return nil, fmt.Errorf("sql: expected alias after AS at %d", a.Pos)
		}
		ref.Alias = a.Text
	} else if a := p.Peek(); a.Kind == expr.TokIdent {
		p.Next()
		ref.Alias = a.Text
	}
	return ref, nil
}
