package sql

import (
	"fmt"

	"sheetmusiq/internal/expr"
	"sheetmusiq/internal/relation"
	"sheetmusiq/internal/value"
)

// Window-function execution. OVER expressions are computed between WHERE and
// projection, SQL's window stage: every distinct window call in the select
// list or ORDER BY is lifted out and replaced by a placeholder column
// reference, the window vectors are evaluated over the post-WHERE rows
// through the columnar kernel (relation.WindowEval), and the source is
// extended with one "__win_N" column per call. The rewritten statement then
// flows through the ordinary plain-projection paths — DISTINCT, ORDER BY,
// LIMIT all see plain columns.

func winPlaceholder(i int) string { return fmt.Sprintf("__win_%d", i) }

// hasWindows reports whether any select item, HAVING or ORDER BY contains a
// window call.
func hasWindows(stmt *SelectStmt) bool {
	for _, it := range stmt.Items {
		if !it.Star && expr.ContainsWindow(it.Expr) {
			return true
		}
	}
	for _, o := range stmt.OrderBy {
		if expr.ContainsWindow(o.Expr) {
			return true
		}
	}
	return stmt.Having != nil && expr.ContainsWindow(stmt.Having)
}

// liftWindows replaces every window call in items and ORDER BY with a
// placeholder reference and returns the distinct window definitions, keyed
// by their SQL rendering.
func liftWindows(items []SelectItem, orderBy []OrderItem) (wins []*expr.WindowCall, outItems []SelectItem, outOrder []OrderItem, err error) {
	index := map[string]int{}
	var lift func(e expr.Expr) (expr.Expr, error)
	lift = func(e expr.Expr) (expr.Expr, error) {
		if w, ok := e.(*expr.WindowCall); ok {
			key := w.SQL()
			i, ok := index[key]
			if !ok {
				i = len(wins)
				index[key] = i
				wins = append(wins, w)
			}
			return &expr.ColumnRef{Name: winPlaceholder(i)}, nil
		}
		return rebuild(e, lift)
	}
	for _, it := range items {
		ne, err := lift(it.Expr)
		if err != nil {
			return nil, nil, nil, err
		}
		outItems = append(outItems, SelectItem{Expr: ne, Alias: it.Alias})
	}
	for _, o := range orderBy {
		ne, err := lift(o.Expr)
		if err != nil {
			return nil, nil, nil, err
		}
		outOrder = append(outOrder, OrderItem{Expr: ne, Desc: o.Desc})
	}
	return wins, outItems, outOrder, nil
}

// applyWindows lifts the statement's window calls, computes their vectors
// over rows, and returns an extended source (original columns plus one
// __win_N column per call) with the rewritten statement. Output column
// names keep the original spelling: an unaliased window item is named by
// its OVER-clause SQL.
func applyWindows(db *DB, src *source, stmt *SelectStmt, rows []relation.Tuple, outer expr.Env, subs map[*expr.Subquery]*subState, idx []int32, aligned bool) (*source, []relation.Tuple, *SelectStmt, error) {
	// Expand * against the pre-window schema first so the placeholder
	// columns never leak into a star expansion.
	items, err := expandStars(src, stmt.Items)
	if err != nil {
		return nil, nil, nil, err
	}
	// Preserve the user-visible names of unaliased items (Name() of the
	// rewritten placeholder would read "__win_0").
	for i := range items {
		if items[i].Alias == "" && expr.ContainsWindow(items[i].Expr) {
			items[i].Alias = items[i].Name()
		}
	}
	wins, items, orderBy, err := liftWindows(items, stmt.OrderBy)
	if err != nil {
		return nil, nil, nil, err
	}

	resolve := func(name string) (value.Kind, bool) {
		i, err := src.resolve(name)
		if err != nil {
			return value.KindNull, false
		}
		return src.rel.Schema[i].Kind, true
	}
	n := len(rows)
	winSchema := src.rel.Schema.Clone()
	vecs := make([][]value.Value, len(wins))
	for wi, w := range wins {
		kind, err := expr.Check(w, resolve)
		if err != nil {
			return nil, nil, nil, err
		}
		vec, err := evalWindow(db, src, w, rows, outer, subs, idx, aligned)
		if err != nil {
			return nil, nil, nil, err
		}
		vecs[wi] = vec
		winSchema = append(winSchema, relation.Column{Name: winPlaceholder(wi), Kind: kind})
	}

	ext := relation.New(src.rel.Name, winSchema)
	ext.Rows = make([]relation.Tuple, n)
	w0 := len(src.rel.Schema)
	for i, row := range rows {
		t := make(relation.Tuple, len(winSchema))
		copy(t, row)
		for wi := range wins {
			t[w0+wi] = vecs[wi][i]
		}
		ext.Rows[i] = t
	}

	nstmt := *stmt
	nstmt.Items = items
	nstmt.OrderBy = orderBy
	return &source{rel: ext}, ext.Rows, &nstmt, nil
}

// evalWindow computes one window call's value per row. Partition keys, order
// keys and the argument are arbitrary expressions; when the source carries
// typed columns and each input compiles to a batch program, the inputs fill
// vectorized (counted by expr.batch.window), otherwise row by row.
func evalWindow(db *DB, src *source, w *expr.WindowCall, rows []relation.Tuple, outer expr.Env, subs map[*expr.Subquery]*subState, idx []int32, aligned bool) ([]value.Value, error) {
	n := len(rows)
	evalVec := func(e expr.Expr) ([]value.Value, bool, error) {
		out := make([]value.Value, n)
		if aligned && n > 0 {
			if bp, cerr := expr.CompileBatch(e, src.batchResolve); cerr == nil {
				if bp.EvalPos(idx, 0, n, value.KindNull, out) {
					return out, true, nil
				}
			}
		}
		for i, row := range rows {
			v, err := expr.Eval(e, rowEnv{src: src, row: row, db: db, outer: outer, subs: subs})
			if err != nil {
				return nil, false, err
			}
			out[i] = v
		}
		return out, false, nil
	}

	in := relation.WindowInput{N: n, K: len(w.OrderBy)}
	batched := true
	if len(w.PartitionBy) > 0 {
		partRows := make([]relation.Tuple, n)
		for i := range partRows {
			partRows[i] = make(relation.Tuple, len(w.PartitionBy))
		}
		for ki, p := range w.PartitionBy {
			vec, vb, err := evalVec(p)
			if err != nil {
				return nil, err
			}
			batched = batched && vb
			for i := 0; i < n; i++ {
				partRows[i][ki] = vec[i]
			}
		}
		in.Parts = relation.GroupRowsOn(partRows, nil)
	}
	if k := len(w.OrderBy); k > 0 {
		in.Keys = make([]value.Value, n*k)
		in.Desc = make([]bool, k)
		for ki, o := range w.OrderBy {
			in.Desc[ki] = o.Desc
			vec, vb, err := evalVec(o.X)
			if err != nil {
				return nil, err
			}
			batched = batched && vb
			for i := 0; i < n; i++ {
				in.Keys[i*k+ki] = vec[i]
			}
		}
	}
	if w.Arg != nil {
		vec, vb, err := evalVec(w.Arg)
		if err != nil {
			return nil, err
		}
		batched = batched && vb
		in.Arg = vec
	}
	if batched && aligned && n > 0 {
		expr.NoteWindowBatch()
	}
	return relation.WindowEval(relation.WindowSpec{Func: w.Func, Frame: w.Frame}, in)
}
