package sql

import (
	"math/rand"
	"testing"

	"sheetmusiq/internal/dataset"
	"sheetmusiq/internal/value"
)

func TestPushdownSplitsConjuncts(t *testing.T) {
	d := db()
	stmt := MustParse("SELECT c.ID FROM cars c JOIN dealers d ON c.Model = d.specialty " +
		"WHERE c.Price < 16000 AND d.dealer LIKE 'Ann%' AND c.Year + 1 = 2006 AND c.ID > d.specialty_missing_no")
	filters, residual := d.pushdown(stmt)
	if len(filters["c"]) != 2 {
		t.Fatalf("filters for c = %v", filters["c"])
	}
	if len(filters["d"]) != 1 {
		t.Fatalf("filters for d = %v", filters["d"])
	}
	// The unresolvable conjunct stays in the residual.
	if residual == nil {
		t.Fatal("residual should carry the unresolvable conjunct")
	}
}

func TestPushdownSkipsSingleSource(t *testing.T) {
	d := db()
	stmt := MustParse("SELECT ID FROM cars WHERE Price < 16000")
	filters, residual := d.pushdown(stmt)
	if filters != nil || residual == nil {
		t.Fatal("single-source queries should not be rewritten")
	}
}

func TestPushdownDisabled(t *testing.T) {
	d := db()
	d.DisablePushdown = true
	stmt := MustParse("SELECT c.ID FROM cars c JOIN dealers d ON c.Model = d.specialty WHERE c.Price < 16000")
	if filters, _ := d.pushdown(stmt); filters != nil {
		t.Fatal("DisablePushdown must suppress the rewrite")
	}
}

func TestPushdownSemanticsPreserved(t *testing.T) {
	// Identical results — including row order — with and without pushdown.
	queries := []string{
		"SELECT c.ID, d.dealer FROM cars c JOIN dealers d ON c.Model = d.specialty WHERE c.Price < 16000 AND d.dealer LIKE 'Ann%' ORDER BY c.ID",
		"SELECT c.Model, COUNT(*) AS n FROM cars c JOIN dealers d ON c.Model = d.specialty WHERE c.Year = 2006 GROUP BY c.Model ORDER BY c.Model",
		"SELECT c.ID FROM cars c CROSS JOIN dealers d WHERE c.Price < 14000 AND d.dealer = 'MotorCity'",
		"SELECT a.ID, b.ID FROM cars a JOIN cars b ON a.Model = b.Model WHERE a.Price < b.Price AND a.Year = 2005",
		"SELECT m, n FROM (SELECT Model AS m, COUNT(*) AS n FROM cars GROUP BY Model) AS g JOIN dealers d ON g.m = d.specialty WHERE n > 4",
	}
	for _, q := range queries {
		on := db()
		off := db()
		off.DisablePushdown = true
		r1, err := on.Query(q)
		if err != nil {
			t.Fatalf("%q with pushdown: %v", q, err)
		}
		r2, err := off.Query(q)
		if err != nil {
			t.Fatalf("%q without pushdown: %v", q, err)
		}
		if r1.String() != r2.String() {
			t.Fatalf("pushdown changed %q:\nwith:\n%s\nwithout:\n%s", q, r1.String(), r2.String())
		}
	}
}

func TestPushdownCorrelatedConjunctStays(t *testing.T) {
	// A conjunct referencing the outer scope must not be pushed.
	r := q(t, "SELECT c.ID FROM cars c WHERE EXISTS "+
		"(SELECT 1 AS one FROM cars a JOIN cars b ON a.ID = b.ID WHERE a.ID = c.ID AND a.Price > 17000)")
	if r.Len() != 2 {
		t.Fatalf("rows = %d, want 2 (cars 723 and 725 exceed $17000)", r.Len())
	}
}

// TestQuickPushdownEquivalence fuzzes join queries over random data with
// pushdown on and off.
func TestQuickPushdownEquivalence(t *testing.T) {
	preds := []string{
		"l.Price < 20000", "r.Year >= 2004", "l.Model LIKE '%a%'",
		"l.Price < r.Price", "r.Condition IN ('Good','Fair')",
		"l.Mileage + r.Mileage < 200000",
	}
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		left := dataset.RandomCars(40, int64(trial))
		right := dataset.RandomCars(40, int64(trial+100))
		right.Name = "cars2"
		build := func(disable bool) *DB {
			d := NewDB()
			d.Register(left)
			d.Register(right)
			d.DisablePushdown = disable
			return d
		}
		n := 1 + rng.Intn(3)
		where := preds[rng.Intn(len(preds))]
		for i := 1; i < n; i++ {
			where += " AND " + preds[rng.Intn(len(preds))]
		}
		query := "SELECT l.ID, r.ID FROM cars l JOIN cars2 r ON l.Model = r.Model WHERE " + where + " ORDER BY l.ID, r.ID"
		r1, err := build(false).Query(query)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		r2, err := build(true).Query(query)
		if err != nil {
			t.Fatalf("trial %d (no pushdown): %v", trial, err)
		}
		if r1.Len() != r2.Len() {
			t.Fatalf("trial %d: %d vs %d rows for %q", trial, r1.Len(), r2.Len(), query)
		}
		for i := range r1.Rows {
			for j := range r1.Rows[i] {
				if !value.Equal(r1.Rows[i][j], r2.Rows[i][j]) {
					t.Fatalf("trial %d row %d: %v vs %v", trial, i, r1.Rows[i], r2.Rows[i])
				}
			}
		}
	}
}

func TestSourceColumnsStarSubquery(t *testing.T) {
	// A star subquery defeats static column analysis; nothing pushes.
	d := db()
	stmt := MustParse("SELECT g.ID FROM (SELECT * FROM cars) AS g JOIN dealers d ON g.Model = d.specialty WHERE g.Price < 15000")
	filters, _ := d.pushdown(stmt)
	if len(filters["g"]) != 0 {
		t.Fatalf("star subquery must not receive pushed filters: %v", filters)
	}
	// But execution still works.
	if _, err := d.Exec(stmt); err != nil {
		t.Fatal(err)
	}
}
