package sql

import (
	"fmt"
	"strings"

	"sheetmusiq/internal/expr"
	"sheetmusiq/internal/relation"
	"sheetmusiq/internal/value"
)

// DB is a named collection of base relations queries execute against.
type DB struct {
	tables map[string]*relation.Relation
	// subqueryRuns counts actual nested-statement executions (cache misses
	// included, cache hits not); exposed for tests and ablations.
	subqueryRuns int
	// DisablePushdown turns off predicate pushdown (see optimize.go); for
	// ablation benchmarks.
	DisablePushdown bool
}

// SubqueryRuns reports how many nested statements have actually executed
// on this DB since creation (memoised re-uses are not counted).
func (db *DB) SubqueryRuns() int { return db.subqueryRuns }

// NewDB returns an empty database.
func NewDB() *DB { return &DB{tables: map[string]*relation.Relation{}} }

// Register installs (or replaces) a table under its relation name.
func (db *DB) Register(r *relation.Relation) { db.tables[strings.ToLower(r.Name)] = r }

// Table returns a registered table.
func (db *DB) Table(name string) (*relation.Relation, bool) {
	r, ok := db.tables[strings.ToLower(name)]
	return r, ok
}

// Names lists registered tables.
func (db *DB) Names() []string {
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	return out
}

// Query parses and executes one SELECT statement.
func (db *DB) Query(src string) (*relation.Relation, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return db.Exec(stmt)
}

// Exec executes a parsed statement.
func (db *DB) Exec(stmt *SelectStmt) (*relation.Relation, error) {
	return db.execOuter(stmt, nil)
}

// execOuter executes a statement with an optional enclosing row scope, the
// mechanism behind correlated subqueries: names that do not resolve in the
// statement's own FROM sources fall back to the outer row.
func (db *DB) execOuter(stmt *SelectStmt, outer expr.Env) (*relation.Relation, error) {
	filters, residual := db.pushdown(stmt)
	src, err := db.evalFromFiltered(stmt.From, filters, outer)
	if err != nil {
		return nil, err
	}
	if len(filters) > 0 {
		reduced := *stmt
		reduced.Where = residual
		return execOn(db, src, &reduced, outer)
	}
	return execOn(db, src, stmt, outer)
}

// source is the FROM result: a relation whose columns carry fully qualified
// names ("alias.col"); lookups resolve bare names by unique suffix match.
// cols, when non-nil, are the backing table's typed column vectors, aligned
// with rel's rows — the WHERE and select-item fast paths evaluate batch
// programs against them. Any in-place row filtering drops them.
type source struct {
	rel  *relation.Relation
	cols []*relation.Col
}

// batchResolve exposes the source's typed columns to the vectorized
// expression compiler under the source's name-resolution rules.
func (s *source) batchResolve(name string) (*relation.Col, bool) {
	if s.cols == nil {
		return nil, false
	}
	i, err := s.resolve(name)
	if err != nil {
		return nil, false
	}
	return s.cols[i], true
}

// resolve maps a (possibly qualified) name to a column index, insisting on
// uniqueness for bare names.
func (s *source) resolve(name string) (int, error) {
	if i := s.rel.Schema.IndexOf(name); i >= 0 {
		return i, nil
	}
	suffix := "." + strings.ToLower(name)
	found := -1
	for i, c := range s.rel.Schema {
		if strings.HasSuffix(strings.ToLower(c.Name), suffix) {
			if found >= 0 {
				return -1, fmt.Errorf("sql: ambiguous column %q", name)
			}
			found = i
		}
	}
	if found < 0 {
		return -1, fmt.Errorf("sql: unknown column %q", name)
	}
	return found, nil
}

// rowEnv evaluates expressions over one source row. It also carries the
// database and the enclosing row scope so nested subqueries can execute
// (correlated names resolve innermost-first, then walk outward), plus the
// per-statement subquery cache.
type rowEnv struct {
	src *source
	row relation.Tuple
	// extra binds synthetic columns (precomputed aggregates).
	extra map[string]value.Value
	db    *DB
	outer expr.Env
	subs  map[*expr.Subquery]*subState
}

// subState memoises one subquery node for the lifetime of the enclosing
// statement execution: the materialised FROM sources (correlation is not
// allowed in FROM, so they never change) and, keyed by the values of the
// subquery's free variables, its full results. An uncorrelated subquery
// therefore executes exactly once; a correlated one executes once per
// distinct outer key instead of once per outer row.
type subState struct {
	src      *source
	freeVars []string
	cache    map[string]*relation.Relation
	disable  bool // nested subqueries inside: correlation keys could span scopes
}

func (e rowEnv) Lookup(name string) (value.Value, bool) {
	if e.extra != nil {
		if v, ok := e.extra[strings.ToLower(name)]; ok {
			return v, true
		}
	}
	if i, err := e.src.resolve(name); err == nil {
		return e.row[i], true
	}
	if e.outer != nil {
		return e.outer.Lookup(name)
	}
	return value.Null, false
}

// EvalSubquery implements expr.SubqueryEvaluator: the nested statement runs
// with this row as its enclosing scope, memoised per distinct correlation
// key.
func (e rowEnv) EvalSubquery(sub *expr.Subquery) (*relation.Relation, error) {
	stmt, ok := sub.Stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sql: malformed subquery node")
	}
	if e.db == nil {
		return nil, fmt.Errorf("sql: subqueries are not supported in this context")
	}
	if e.subs == nil {
		e.db.subqueryRuns++
		return e.db.execOuter(stmt, e)
	}
	st := e.subs[sub]
	if st == nil {
		src, err := e.db.evalFrom(stmt.From)
		if err != nil {
			return nil, err
		}
		st = &subState{src: src, cache: map[string]*relation.Relation{}}
		st.freeVars, st.disable = freeVars(stmt, src)
		e.subs[sub] = st
	}
	if st.disable {
		e.db.subqueryRuns++
		return execOn(e.db, st.src, stmt, e)
	}
	var kb strings.Builder
	for _, name := range st.freeVars {
		v, ok := e.Lookup(name)
		if !ok {
			// Unresolvable name: let execution surface the real error.
			return execOn(e.db, st.src, stmt, e)
		}
		kb.WriteString(v.Key())
		kb.WriteByte('\x1f')
	}
	key := kb.String()
	if res, ok := st.cache[key]; ok {
		return res, nil
	}
	e.db.subqueryRuns++
	res, err := execOn(e.db, st.src, stmt, e)
	if err != nil {
		return nil, err
	}
	st.cache[key] = res
	return res, nil
}

// freeVars lists the column names a statement references that do not
// resolve against its own FROM sources or output aliases — its correlation
// variables. When the statement nests further subqueries, caching is
// disabled (their correlation could reach past this scope).
func freeVars(stmt *SelectStmt, src *source) (vars []string, disable bool) {
	bound := map[string]bool{}
	for _, it := range stmt.Items {
		if !it.Star {
			bound[strings.ToLower(it.Name())] = true
		}
	}
	seen := map[string]bool{}
	collect := func(e expr.Expr) {
		if e == nil {
			return
		}
		if expr.ContainsSubquery(e) {
			disable = true
			return
		}
		for _, c := range expr.Columns(e) {
			lc := strings.ToLower(c)
			if strings.HasPrefix(lc, "__agg_") || bound[lc] || seen[lc] {
				continue
			}
			if _, err := src.resolve(c); err == nil {
				continue
			}
			seen[lc] = true
			vars = append(vars, c)
		}
	}
	for _, it := range stmt.Items {
		if !it.Star {
			collect(it.Expr)
		}
	}
	collect(stmt.Where)
	for _, g := range stmt.GroupBy {
		collect(g)
	}
	collect(stmt.Having)
	for _, o := range stmt.OrderBy {
		collect(o.Expr)
	}
	return vars, disable
}

// evalFrom materialises a FROM tree into a qualified-name relation.
func (db *DB) evalFrom(f FromItem) (*source, error) {
	return db.evalFromFiltered(f, nil, nil)
}

// evalFromFiltered materialises a FROM tree, applying any pushed-down
// per-alias filters as each source appears.
func (db *DB) evalFromFiltered(f FromItem, filters map[string][]expr.Expr, outer expr.Env) (*source, error) {
	switch t := f.(type) {
	case *TableRef:
		base, ok := db.Table(t.Name)
		if !ok {
			return nil, fmt.Errorf("sql: unknown table %q", t.Name)
		}
		alias := t.Alias
		if alias == "" {
			alias = t.Name
		}
		src := qualify(base, alias)
		if err := applyFilter(db, src, filters[strings.ToLower(alias)], outer); err != nil {
			return nil, err
		}
		return src, nil
	case *SubqueryRef:
		inner, err := db.Exec(t.Stmt)
		if err != nil {
			return nil, err
		}
		src := qualify(inner, t.Alias)
		if err := applyFilter(db, src, filters[strings.ToLower(t.Alias)], outer); err != nil {
			return nil, err
		}
		return src, nil
	case *JoinRef:
		left, err := db.evalFromFiltered(t.Left, filters, outer)
		if err != nil {
			return nil, err
		}
		right, err := db.evalFromFiltered(t.Right, filters, outer)
		if err != nil {
			return nil, err
		}
		return joinSources(left, right, t.On)
	}
	return nil, fmt.Errorf("sql: unsupported FROM item %T", f)
}

// qualify copies rel with every column renamed to "alias.col".
func qualify(rel *relation.Relation, alias string) *source {
	schema := make(relation.Schema, len(rel.Schema))
	for i, c := range rel.Schema {
		name := c.Name
		if j := strings.LastIndexByte(name, '.'); j >= 0 {
			name = name[j+1:]
		}
		schema[i] = relation.Column{Name: alias + "." + name, Kind: c.Kind}
	}
	out := relation.New(alias, schema)
	out.Rows = rel.TupleRows() // rows are read-only downstream
	return &source{rel: out, cols: typedCols(rel)}
}

// typedCols returns the relation's typed columns when the columnar path is
// worthwhile: already built, or large enough to amortise the conversion.
// Renaming does not disturb the vectors, so qualified sources share the
// backing table's cache.
func typedCols(rel *relation.Relation) []*relation.Col {
	if cols := rel.CachedColumns(); cols != nil {
		return cols
	}
	if rel.Len() >= relation.ColumnarThreshold {
		return rel.Columns()
	}
	return nil
}

// joinSources computes left ⋈ right: the equi-hash-join kernel when the ON
// clause carries equality conjuncts, a scratch-row nested loop otherwise.
// Either way matched rows land in one flat backing array; the full product
// row set is never allocated. The ON predicate cannot run subqueries (its
// row env has no database handle), so it is pure and the kernel's parallel
// candidate probe is safe.
func joinSources(left, right *source, on expr.Expr) (*source, error) {
	schema := append(left.rel.Schema.Clone(), right.rel.Schema.Clone()...)
	seen := map[string]bool{}
	for _, c := range schema {
		k := strings.ToLower(c.Name)
		if seen[k] {
			return nil, fmt.Errorf("sql: duplicate source name %q; alias the tables", c.Name)
		}
		seen[k] = true
	}
	out := relation.New(left.rel.Name+"_"+right.rel.Name, schema)
	probe := &source{rel: out}
	onFn := func(row relation.Tuple) (bool, error) {
		return evalOn(probe, row, on)
	}

	// Try to extract an equality conjunct usable as a hash-join key. Source
	// names never collide (checked above), so the kernel's product layout is
	// exactly this concatenated schema and its rows drop straight in.
	if lk, rk := hashKeys(left, right, on); len(lk) > 0 {
		j, err := left.rel.HashJoin(right.rel, lk, rk, onFn)
		if err != nil {
			return nil, err
		}
		out.Rows = j.TupleRows()
		return probe, nil
	}
	wl := len(left.rel.Schema)
	scratch := make(relation.Tuple, len(schema))
	var pa, pb []int32
	rrows := right.rel.TupleRows()
	for a, lt := range left.rel.TupleRows() {
		copy(scratch, lt)
		for b, rt := range rrows {
			copy(scratch[wl:], rt)
			ok, err := onFn(scratch)
			if err != nil {
				return nil, err
			}
			if ok {
				pa = append(pa, int32(a))
				pb = append(pb, int32(b))
			}
		}
	}
	relation.MaterializePairs(out, left.rel, right.rel, pa, pb)
	return probe, nil
}

func evalOn(probe *source, row relation.Tuple, on expr.Expr) (bool, error) {
	if on == nil {
		return true, nil
	}
	return expr.EvalBool(on, rowEnv{src: probe, row: row})
}

// hashKeys extracts column-index pairs for top-level AND-ed equality
// conjuncts of the form leftCol = rightCol.
func hashKeys(left, right *source, on expr.Expr) (lk, rk []int) {
	var conjuncts func(e expr.Expr)
	var pairs [][2]int
	conjuncts = func(e expr.Expr) {
		b, ok := e.(*expr.Binary)
		if !ok {
			return
		}
		if b.Op == expr.OpAnd {
			conjuncts(b.L)
			conjuncts(b.R)
			return
		}
		if b.Op != expr.OpEq {
			return
		}
		lc, lok := b.L.(*expr.ColumnRef)
		rc, rok := b.R.(*expr.ColumnRef)
		if !lok || !rok {
			return
		}
		li, lerr := left.resolve(lc.Name)
		ri, rerr := right.resolve(rc.Name)
		if lerr == nil && rerr == nil {
			pairs = append(pairs, [2]int{li, ri})
			return
		}
		// Reversed orientation: right = left.
		li, lerr = left.resolve(rc.Name)
		ri, rerr = right.resolve(lc.Name)
		if lerr == nil && rerr == nil {
			pairs = append(pairs, [2]int{li, ri})
		}
	}
	if on != nil {
		conjuncts(on)
	}
	for _, p := range pairs {
		lk = append(lk, p[0])
		rk = append(rk, p[1])
	}
	return lk, rk
}

// execOn runs the SELECT body against a materialised source.
func execOn(db *DB, src *source, stmt *SelectStmt, outer expr.Env) (*relation.Relation, error) {
	// The subquery cache lives for this statement execution.
	subs := map[*expr.Subquery]*subState{}
	// WHERE. rows starts as the full source row set, aligned with the
	// source's typed columns; idx tracks the surviving base-row indexes so
	// downstream batch programs keep reading the typed vectors through the
	// indirection. aligned turns false once rows stop mapping to src.cols.
	rows := src.rel.TupleRows()
	var idx []int32
	aligned := src.cols != nil
	if stmt.Where != nil {
		if expr.ContainsAggregate(stmt.Where) {
			return nil, fmt.Errorf("sql: aggregates are not allowed in WHERE")
		}
		if expr.ContainsWindow(stmt.Where) {
			return nil, fmt.Errorf("sql: window functions are not allowed in WHERE")
		}
		if prog := compileOn(src, stmt.Where, outer); prog != nil {
			kept, keptIdx, err := filterRowsTyped(src, stmt.Where, rows, prog, aligned)
			if err != nil {
				return nil, err
			}
			rows, idx = kept, keptIdx
			aligned = aligned && idx != nil
		} else {
			kept := make([]relation.Tuple, 0, len(rows))
			for _, row := range rows {
				ok, err := expr.EvalBool(stmt.Where, rowEnv{src: src, row: row, db: db, outer: outer, subs: subs})
				if err != nil {
					return nil, err
				}
				if ok {
					kept = append(kept, row)
				}
			}
			rows = kept
			aligned = false
		}
	}

	grouped := len(stmt.GroupBy) > 0 || stmt.Having != nil || hasAggregates(stmt)
	if hasWindows(stmt) {
		if grouped {
			return nil, fmt.Errorf("sql: window functions cannot be combined with GROUP BY, HAVING or aggregates")
		}
		var werr error
		src, rows, stmt, werr = applyWindows(db, src, stmt, rows, outer, subs, idx, aligned)
		if werr != nil {
			return nil, werr
		}
		idx, aligned = nil, false
	}
	var out *relation.Relation
	var sortVals [][]value.Value
	var err error
	if grouped {
		out, sortVals, err = execGrouped(db, src, stmt, rows, outer, subs, idx, aligned)
	} else {
		out, sortVals, err = execPlain(db, src, stmt, rows, outer, subs, idx, aligned)
	}
	if err != nil {
		return nil, err
	}

	if stmt.Distinct {
		out, sortVals = distinctRows(out, sortVals)
	}
	if len(stmt.OrderBy) > 0 {
		sortOutput(out, sortVals, stmt.OrderBy)
	}
	if stmt.Offset > 0 {
		if stmt.Offset >= out.Len() {
			out.Rows = nil
		} else {
			out.Rows = out.Rows[stmt.Offset:]
		}
	}
	if stmt.Limit >= 0 && stmt.Limit < out.Len() {
		out.Rows = out.Rows[:stmt.Limit]
	}
	return out, nil
}

func hasAggregates(stmt *SelectStmt) bool {
	for _, it := range stmt.Items {
		if !it.Star && expr.ContainsAggregate(it.Expr) {
			return true
		}
	}
	for _, o := range stmt.OrderBy {
		if expr.ContainsAggregate(o.Expr) {
			return true
		}
	}
	return stmt.Having != nil && expr.ContainsAggregate(stmt.Having)
}

// execPlain projects without grouping. It returns the output relation plus,
// for each row, the evaluated ORDER BY key values. idx, when aligned, holds
// the surviving base-row indexes of rows for the typed-column fast path.
func execPlain(db *DB, src *source, stmt *SelectStmt, rows []relation.Tuple, outer expr.Env, subs map[*expr.Subquery]*subState, idx []int32, aligned bool) (*relation.Relation, [][]value.Value, error) {
	items, err := expandStars(src, stmt.Items)
	if err != nil {
		return nil, nil, err
	}
	schema, err := outputSchema(src, items)
	if err != nil {
		return nil, nil, err
	}
	if out, sortVals, handled, err := compiledPlain(src, stmt, items, schema, rows, outer, idx, aligned); handled {
		execPlainCompiled.Inc()
		if err != nil {
			return nil, nil, err
		}
		return out, sortVals, nil
	}
	execPlainInterpreted.Inc()
	out := relation.New("result", schema)
	sortVals := make([][]value.Value, 0, len(rows))
	for _, row := range rows {
		env := rowEnv{src: src, row: row, db: db, outer: outer, subs: subs}
		tuple := make(relation.Tuple, len(items))
		for i, it := range items {
			v, err := expr.Eval(it.Expr, env)
			if err != nil {
				return nil, nil, err
			}
			tuple[i] = widen(v, schema[i].Kind)
		}
		out.Rows = append(out.Rows, tuple)
		keys, err := orderKeys(stmt.OrderBy, env, out, tuple, items)
		if err != nil {
			return nil, nil, err
		}
		sortVals = append(sortVals, keys)
	}
	return out, sortVals, nil
}

// execGrouped evaluates GROUP BY / aggregate queries. idx, when aligned,
// holds the surviving base-row indexes of rows so column-reference aggregate
// arguments can run the typed grouped-aggregation kernel over the source's
// column payloads.
func execGrouped(db *DB, src *source, stmt *SelectStmt, rows []relation.Tuple, outer expr.Env, subs map[*expr.Subquery]*subState, idx []int32, aligned bool) (*relation.Relation, [][]value.Value, error) {
	for _, it := range stmt.Items {
		if it.Star {
			return nil, nil, fmt.Errorf("sql: * is not allowed with GROUP BY or aggregates")
		}
	}
	// Group rows by the GROUP BY expression values.
	groups, gr, err := buildRowGroups(db, src, stmt, rows, outer, subs)
	if err != nil {
		return nil, nil, err
	}

	// Collect every aggregate call appearing in the statement.
	aggs, rewritten, having, orderBy, err := liftAggregates(stmt)
	if err != nil {
		return nil, nil, err
	}

	// Validate that non-aggregate expressions only reference columns that
	// feed some GROUP BY expression (a practical approximation of the SQL
	// functional-dependency rule; DESIGN.md documents the looseness).
	groupCols := map[string]bool{}
	for _, g := range stmt.GroupBy {
		for _, c := range expr.Columns(g) {
			groupCols[strings.ToLower(c)] = true
			if i := strings.LastIndexByte(c, '.'); i >= 0 {
				groupCols[strings.ToLower(c[i+1:])] = true
			}
		}
	}
	checkGrouped := func(e expr.Expr, where string) error {
		for _, c := range expr.Columns(e) {
			if strings.HasPrefix(c, "__agg_") {
				continue
			}
			bare := c
			if i := strings.LastIndexByte(c, '.'); i >= 0 {
				bare = c[i+1:]
			}
			if !groupCols[strings.ToLower(c)] && !groupCols[strings.ToLower(bare)] {
				return fmt.Errorf("sql: column %q in %s must appear in GROUP BY or inside an aggregate", c, where)
			}
		}
		return nil
	}
	items := rewritten
	for _, it := range items {
		if err := checkGrouped(it.Expr, "select list"); err != nil {
			return nil, nil, err
		}
	}
	if having != nil {
		if err := checkGrouped(having, "HAVING"); err != nil {
			return nil, nil, err
		}
	}
	aliases := map[string]bool{}
	for _, it := range stmt.Items {
		aliases[strings.ToLower(it.Name())] = true
	}
	for _, o := range orderBy {
		// An ORDER BY key naming an output column resolves against the
		// produced row, not the source; exempt it from the grouping check.
		if c, ok := o.Expr.(*expr.ColumnRef); ok && aliases[strings.ToLower(c.Name)] {
			continue
		}
		if err := checkGrouped(o.Expr, "ORDER BY"); err != nil {
			return nil, nil, err
		}
	}
	schema, err := groupedSchema(src, stmt, items, aggs)
	if err != nil {
		return nil, nil, err
	}
	if out, sortVals, handled, err := compiledGroupOutput(src, groups, gr, aggs, items, having, orderBy, schema, outer, idx, aligned, len(rows)); handled {
		execGroupedCompiled.Inc()
		if err != nil {
			return nil, nil, err
		}
		return out, sortVals, nil
	}
	execGroupedInterpreted.Inc()
	out := relation.New("result", schema)
	sortVals := make([][]value.Value, 0, len(groups))
	for _, grp := range groups {
		extra := map[string]value.Value{}
		for ai, a := range aggs {
			acc := relation.NewAccumulator(a.fn)
			for _, row := range grp.rows {
				var v value.Value
				if a.star {
					v = value.NewInt(1)
				} else {
					var err error
					v, err = expr.Eval(a.arg, rowEnv{src: src, row: row, db: db, outer: outer, subs: subs})
					if err != nil {
						return nil, nil, err
					}
				}
				if err := acc.Add(v); err != nil {
					return nil, nil, err
				}
			}
			extra[aggPlaceholder(ai)] = acc.Result()
		}
		var rep relation.Tuple
		if len(grp.rows) > 0 {
			rep = grp.rows[0]
		} else {
			rep = make(relation.Tuple, len(src.rel.Schema))
			for i := range rep {
				rep[i] = value.Null
			}
		}
		env := rowEnv{src: src, row: rep, extra: extra, db: db, outer: outer, subs: subs}
		if having != nil {
			ok, err := expr.EvalBool(having, env)
			if err != nil {
				return nil, nil, err
			}
			if !ok {
				continue
			}
		}
		tuple := make(relation.Tuple, len(items))
		for i, it := range items {
			v, err := expr.Eval(it.Expr, env)
			if err != nil {
				return nil, nil, err
			}
			tuple[i] = widen(v, schema[i].Kind)
		}
		out.Rows = append(out.Rows, tuple)
		keys, err := orderKeys(orderBy, env, out, tuple, items)
		if err != nil {
			return nil, nil, err
		}
		sortVals = append(sortVals, keys)
	}
	return out, sortVals, nil
}

// liftedAgg is one distinct aggregate call lifted out of the statement.
type liftedAgg struct {
	fn   relation.AggFunc
	arg  expr.Expr
	star bool
	sql  string
}

func aggPlaceholder(i int) string { return fmt.Sprintf("__agg_%d", i) }

// liftAggregates replaces every aggregate call in the select list, HAVING
// and ORDER BY with a placeholder column reference and returns the distinct
// aggregate definitions.
func liftAggregates(stmt *SelectStmt) (aggs []liftedAgg, items []SelectItem, having expr.Expr, orderBy []OrderItem, err error) {
	index := map[string]int{}
	var lift func(e expr.Expr) (expr.Expr, error)
	lift = func(e expr.Expr) (expr.Expr, error) {
		if f, ok := e.(*expr.FuncCall); ok && expr.AggregateNames[f.Name] {
			if len(f.Args) != 1 {
				return nil, fmt.Errorf("sql: %s expects exactly one argument", f.Name)
			}
			if expr.ContainsAggregate(f.Args[0]) {
				return nil, fmt.Errorf("sql: nested aggregates are not allowed")
			}
			key := e.SQL()
			i, ok := index[key]
			if !ok {
				i = len(aggs)
				index[key] = i
				la := liftedAgg{sql: key}
				switch f.Name {
				case "COUNT":
					la.fn = relation.AggCount
				case "COUNT_DISTINCT":
					la.fn = relation.AggCountDistinct
				default:
					la.fn = relation.AggFunc(f.Name)
				}
				if _, isStar := f.Args[0].(*expr.Star); isStar {
					if f.Name != "COUNT" {
						return nil, fmt.Errorf("sql: only COUNT accepts *")
					}
					la.star = true
				} else {
					la.arg = f.Args[0]
				}
				aggs = append(aggs, la)
			}
			return &expr.ColumnRef{Name: aggPlaceholder(i)}, nil
		}
		return rebuild(e, lift)
	}
	for _, it := range stmt.Items {
		ne, err := lift(it.Expr)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		items = append(items, SelectItem{Expr: ne, Alias: it.Alias})
	}
	if stmt.Having != nil {
		having, err = lift(stmt.Having)
		if err != nil {
			return nil, nil, nil, nil, err
		}
	}
	for _, o := range stmt.OrderBy {
		ne, err := lift(o.Expr)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		orderBy = append(orderBy, OrderItem{Expr: ne, Desc: o.Desc})
	}
	return aggs, items, having, orderBy, nil
}

// rebuild clones a node with each child passed through fn.
func rebuild(e expr.Expr, fn func(expr.Expr) (expr.Expr, error)) (expr.Expr, error) {
	switch n := e.(type) {
	case *expr.Literal, *expr.ColumnRef, *expr.Star, *expr.Subquery, *expr.Exists:
		// Subquery bodies are self-contained statements: aggregates inside
		// them belong to the inner scope and are lifted when it executes.
		return e, nil
	case *expr.InSubquery:
		x, err := fn(n.X)
		if err != nil {
			return nil, err
		}
		return &expr.InSubquery{X: x, Sub: n.Sub, Negate: n.Negate}, nil
	case *expr.Unary:
		x, err := fn(n.X)
		if err != nil {
			return nil, err
		}
		return &expr.Unary{Op: n.Op, X: x}, nil
	case *expr.Binary:
		l, err := fn(n.L)
		if err != nil {
			return nil, err
		}
		r, err := fn(n.R)
		if err != nil {
			return nil, err
		}
		return &expr.Binary{Op: n.Op, L: l, R: r}, nil
	case *expr.IsNull:
		x, err := fn(n.X)
		if err != nil {
			return nil, err
		}
		return &expr.IsNull{X: x, Negate: n.Negate}, nil
	case *expr.InList:
		x, err := fn(n.X)
		if err != nil {
			return nil, err
		}
		items := make([]expr.Expr, len(n.Items))
		for i, it := range n.Items {
			items[i], err = fn(it)
			if err != nil {
				return nil, err
			}
		}
		return &expr.InList{X: x, Items: items, Negate: n.Negate}, nil
	case *expr.Between:
		x, err := fn(n.X)
		if err != nil {
			return nil, err
		}
		lo, err := fn(n.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := fn(n.Hi)
		if err != nil {
			return nil, err
		}
		return &expr.Between{X: x, Lo: lo, Hi: hi, Negate: n.Negate}, nil
	case *expr.FuncCall:
		args := make([]expr.Expr, len(n.Args))
		var err error
		for i, a := range n.Args {
			args[i], err = fn(a)
			if err != nil {
				return nil, err
			}
		}
		return &expr.FuncCall{Name: n.Name, Args: args}, nil
	case *expr.WindowCall:
		out := &expr.WindowCall{Func: n.Func, Frame: n.Frame}
		var err error
		if n.Arg != nil {
			if out.Arg, err = fn(n.Arg); err != nil {
				return nil, err
			}
		}
		out.PartitionBy = make([]expr.Expr, len(n.PartitionBy))
		for i, p := range n.PartitionBy {
			if out.PartitionBy[i], err = fn(p); err != nil {
				return nil, err
			}
		}
		out.OrderBy = make([]expr.WindowOrder, len(n.OrderBy))
		for i, o := range n.OrderBy {
			x, err := fn(o.X)
			if err != nil {
				return nil, err
			}
			out.OrderBy[i] = expr.WindowOrder{X: x, Desc: o.Desc}
		}
		return out, nil
	}
	return nil, fmt.Errorf("sql: cannot rebuild %T", e)
}

// expandStars replaces * items with one item per source column.
func expandStars(src *source, items []SelectItem) ([]SelectItem, error) {
	var out []SelectItem
	for _, it := range items {
		if !it.Star {
			out = append(out, it)
			continue
		}
		for _, c := range src.rel.Schema {
			name := c.Name
			out = append(out, SelectItem{Expr: &expr.ColumnRef{Name: name}})
		}
	}
	return out, nil
}

// outputSchema infers result column kinds for ungrouped projections.
func outputSchema(src *source, items []SelectItem) (relation.Schema, error) {
	resolve := func(name string) (value.Kind, bool) {
		i, err := src.resolve(name)
		if err != nil {
			return value.KindNull, false
		}
		return src.rel.Schema[i].Kind, true
	}
	schema := make(relation.Schema, len(items))
	for i, it := range items {
		k, err := expr.Check(it.Expr, resolve)
		if err != nil {
			return nil, err
		}
		if k == value.KindNull {
			k = value.KindString
		}
		schema[i] = relation.Column{Name: it.Name(), Kind: k}
	}
	return schema, nil
}

// groupedSchema infers result kinds when placeholders stand in for lifted
// aggregates.
func groupedSchema(src *source, stmt *SelectStmt, items []SelectItem, aggs []liftedAgg) (relation.Schema, error) {
	resolve := func(name string) (value.Kind, bool) {
		if strings.HasPrefix(name, "__agg_") {
			var i int
			fmt.Sscanf(name, "__agg_%d", &i)
			if i < len(aggs) {
				a := aggs[i]
				in := value.KindInt
				if a.arg != nil {
					k, err := expr.Check(a.arg, func(n string) (value.Kind, bool) {
						j, err := src.resolve(n)
						if err != nil {
							return value.KindNull, false
						}
						return src.rel.Schema[j].Kind, true
					})
					if err == nil {
						in = k
					}
				}
				return a.fn.ResultKind(in), true
			}
		}
		j, err := src.resolve(name)
		if err != nil {
			return value.KindNull, false
		}
		return src.rel.Schema[j].Kind, true
	}
	schema := make(relation.Schema, len(items))
	origNames := stmt.Items
	for i, it := range items {
		k, err := expr.Check(it.Expr, resolve)
		if err != nil {
			return nil, err
		}
		if k == value.KindNull {
			k = value.KindString
		}
		name := it.Alias
		if name == "" {
			name = origNames[i].Name()
		}
		schema[i] = relation.Column{Name: name, Kind: k}
	}
	return schema, nil
}

// orderKeys evaluates the ORDER BY expressions for one output row. Keys may
// reference output aliases (resolved against the produced tuple) or source
// columns (resolved via env).
func orderKeys(orderBy []OrderItem, env rowEnv, out *relation.Relation, tuple relation.Tuple, items []SelectItem) ([]value.Value, error) {
	if len(orderBy) == 0 {
		return nil, nil
	}
	keys := make([]value.Value, len(orderBy))
	for i, o := range orderBy {
		// Output-alias reference?
		if c, ok := o.Expr.(*expr.ColumnRef); ok {
			if j := out.Schema.IndexOf(c.Name); j >= 0 {
				keys[i] = tuple[j]
				continue
			}
		}
		v, err := expr.Eval(o.Expr, env)
		if err != nil {
			return nil, err
		}
		keys[i] = v
	}
	return keys, nil
}

// sortOutput stably sorts the output rows by the precomputed keys, through
// the relation layer's keyed parallel sort kernel.
func sortOutput(out *relation.Relation, sortVals [][]value.Value, orderBy []OrderItem) {
	n, k := len(out.Rows), len(orderBy)
	if n < 2 || k == 0 {
		return
	}
	flat := make([]value.Value, n*k)
	desc := make([]bool, k)
	for i := range orderBy {
		desc[i] = orderBy[i].Desc
	}
	for i, keys := range sortVals {
		copy(flat[i*k:(i+1)*k], keys)
	}
	perm := relation.SortPermByKeys(flat, k, desc)
	rows := make([]relation.Tuple, n)
	for i, p := range perm {
		rows[i] = out.Rows[p]
	}
	out.Rows = rows
}

// distinctRows dedupes output rows, keeping the parallel sort keys aligned.
func distinctRows(out *relation.Relation, sortVals [][]value.Value) (*relation.Relation, [][]value.Value) {
	gr := relation.GroupRowsOn(out.Rows, nil)
	res := relation.New(out.Name, out.Schema)
	res.Rows = make([]relation.Tuple, gr.NumGroups())
	var keys [][]value.Value
	if sortVals != nil {
		keys = make([][]value.Value, gr.NumGroups())
	}
	for g, ri := range gr.First {
		res.Rows[g] = out.Rows[ri]
		if sortVals != nil {
			keys[g] = sortVals[ri]
		}
	}
	return res, keys
}

// widen coerces exact-integer results into float-typed output columns.
func widen(v value.Value, kind value.Kind) value.Value {
	if kind == value.KindFloat && v.Kind() == value.KindInt {
		return value.NewFloat(float64(v.Int()))
	}
	return v
}
