package tpch

import (
	"hash/fnv"
	"math"
	"testing"
)

// TestCoverageAll22 pins the coverage matrix: every TPC-H query is present,
// classified, and backed by a runnable task or exemplar.
func TestCoverageAll22(t *testing.T) {
	cov := Coverage()
	if len(cov) != 22 {
		t.Fatalf("coverage has %d entries, want 22", len(cov))
	}
	counts := map[CoverageMode]int{}
	for _, c := range cov {
		if c.Mode == "" || c.Via == "" {
			t.Errorf("%s has no runnable backing: %+v", c.Query, c)
			continue
		}
		counts[c.Mode]++
		if c.Mode != ModeAlgebra && c.Why == "" {
			t.Errorf("%s is %s but records no excluding feature", c.Query, c.Mode)
		}
	}
	// The study expressed 10 of 22: eight verbatim, two flattened.
	if counts[ModeAlgebra] != 8 || counts[ModeFlattened] != 2 || counts[ModeSQLOnly] != 12 {
		t.Fatalf("mode counts algebra/flattened/sql = %d/%d/%d, want 8/2/12",
			counts[ModeAlgebra], counts[ModeFlattened], counts[ModeSQLOnly])
	}
}

func queryByName(t *testing.T, name string) ExcludedQuery {
	t.Helper()
	for _, eq := range ExcludedQueries() {
		if eq.Name == name {
			return eq
		}
	}
	t.Fatalf("no excluded query named %q", name)
	return ExcludedQuery{}
}

// TestQ15WindowAgreesWithScalarSubquery runs the windowed Q15 and an
// equivalent scalar-subquery formulation and requires identical results —
// a differential check of the MAX() OVER () whole-partition path against
// the independent nested-query evaluator.
func TestQ15WindowAgreesWithScalarSubquery(t *testing.T) {
	db := setup(t)
	windowed, err := db.Query(queryByName(t, "top-supplier").SQL)
	if err != nil {
		t.Fatal(err)
	}
	const revenue = "SELECT l_suppkey AS supplier_no, SUM(l_extendedprice * (1 - l_discount)) AS total_revenue " +
		"FROM lineitem WHERE l_shipdate >= DATE '1996-01-01' AND l_shipdate < DATE '1996-04-01' GROUP BY l_suppkey"
	scalar, err := db.Query("SELECT s_suppkey, s_name, s_address, s_phone, total_revenue FROM supplier JOIN (" +
		revenue + ") AS r ON s_suppkey = supplier_no WHERE total_revenue = " +
		"(SELECT MAX(r2.total_revenue) FROM (" + revenue + ") AS r2) ORDER BY s_suppkey")
	if err != nil {
		t.Fatal(err)
	}
	if windowed.Len() == 0 {
		t.Fatal("Q15 returned no top supplier")
	}
	if windowed.String() != scalar.String() {
		t.Fatalf("windowed and scalar Q15 diverge:\n%s\nvs\n%s", windowed, scalar)
	}
}

// TestQ12ConditionalCountsSumToTotal cross-checks the IF-based conditional
// aggregation: high + low per ship mode must equal a plain COUNT.
func TestQ12ConditionalCountsSumToTotal(t *testing.T) {
	db := setup(t)
	got, err := db.Query(queryByName(t, "shipping-modes-priority").SQL)
	if err != nil {
		t.Fatal(err)
	}
	totals, err := db.Query("SELECT l_shipmode, COUNT(*) AS n FROM orders JOIN lineitem ON o_orderkey = l_orderkey " +
		"WHERE l_shipmode IN ('MAIL', 'SHIP') AND l_commitdate < l_receiptdate AND l_shipdate < l_commitdate " +
		"AND l_receiptdate >= DATE '1994-01-01' AND l_receiptdate < DATE '1995-01-01' " +
		"GROUP BY l_shipmode ORDER BY l_shipmode")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() == 0 || got.Len() != totals.Len() {
		t.Fatalf("Q12 rows = %d, reference rows = %d", got.Len(), totals.Len())
	}
	for i, row := range got.Rows {
		if sum := row[1].Int() + row[2].Int(); sum != totals.Rows[i][1].Int() {
			t.Fatalf("%v: high %v + low %v != total %v", row[0], row[1], row[2], totals.Rows[i][1])
		}
	}
}

// TestQ13DistributionCoversAllCustomers: the order-count distribution must
// account for every customer exactly once (the LEFT JOIN emulation keeps
// zero-order customers).
func TestQ13DistributionCoversAllCustomers(t *testing.T) {
	db := setup(t)
	got, err := db.Query(queryByName(t, "customer-distribution").SQL)
	if err != nil {
		t.Fatal(err)
	}
	customer, _ := db.Table("customer")
	var total int64
	for _, row := range got.Rows {
		total += row[1].Int()
	}
	// An inner-join formulation would lose zero-order customers; the
	// correlated-COUNT emulation must account for every customer exactly
	// once. (At 10 orders per customer the zero bucket is usually empty,
	// but the identity still only holds with outer-join semantics.)
	if total != int64(customer.Len()) {
		t.Fatalf("distribution covers %d customers, table has %d", total, customer.Len())
	}
}

// TestQ14PromoShareBounded: the promotion share is a percentage.
func TestQ14PromoShareBounded(t *testing.T) {
	db := setup(t)
	got, err := db.Query(queryByName(t, "promotion-effect").SQL)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("Q14 rows = %d, want 1", got.Len())
	}
	share := got.Rows[0][0].Float()
	if math.IsNaN(share) || share < 0 || share > 100 {
		t.Fatalf("promo_revenue = %v, want within [0, 100]", share)
	}
}

// TestQ2MinimumCostIsMinimum recomputes the per-part minimum supply cost in
// Go and checks every returned supplier matches it.
func TestQ2MinimumCostIsMinimum(t *testing.T) {
	db := setup(t)
	full, err := db.Query("SELECT p_partkey, ps_supplycost FROM part JOIN partsupp ON p_partkey = ps_partkey " +
		"JOIN supplier ON s_suppkey = ps_suppkey JOIN nation ON s_nationkey = n_nationkey " +
		"JOIN region ON n_regionkey = r_regionkey WHERE p_size <= 15 AND p_type LIKE '%BRASS' AND r_name = 'EUROPE'")
	if err != nil {
		t.Fatal(err)
	}
	minCost := map[int64]float64{}
	for _, row := range full.Rows {
		k, c := row[0].Int(), row[1].Float()
		if prev, ok := minCost[k]; !ok || c < prev {
			minCost[k] = c
		}
	}
	got, err := db.Query(queryByName(t, "minimum-cost-supplier").SQL)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() == 0 {
		t.Fatal("Q2 returned no suppliers at the default scale")
	}
	// Re-query with the cost exposed to verify the minimum property.
	check, err := db.Query("SELECT p_partkey, ps_supplycost FROM part JOIN partsupp ON p_partkey = ps_partkey " +
		"JOIN supplier ON s_suppkey = ps_suppkey JOIN nation ON s_nationkey = n_nationkey " +
		"JOIN region ON n_regionkey = r_regionkey WHERE p_size <= 15 AND p_type LIKE '%BRASS' AND r_name = 'EUROPE' " +
		"AND ps_supplycost = (SELECT MIN(i.ps_supplycost) FROM partsupp AS i " +
		"JOIN supplier AS s2 ON i.ps_suppkey = s2.s_suppkey JOIN nation AS n2 ON s2.s_nationkey = n2.n_nationkey " +
		"JOIN region AS r2 ON n2.n_regionkey = r2.r_regionkey WHERE i.ps_partkey = p_partkey AND r2.r_name = 'EUROPE')")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range check.Rows {
		if row[1].Float() != minCost[row[0].Int()] {
			t.Fatalf("part %v cost %v is not the regional minimum %v",
				row[0], row[1], minCost[row[0].Int()])
		}
	}
}

// TestQ8MarketShareBounded: each yearly market share is a fraction.
func TestQ8MarketShareBounded(t *testing.T) {
	db := setup(t)
	got, err := db.Query(queryByName(t, "national-market-share").SQL)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() == 0 {
		t.Fatal("Q8 returned no years at the default scale")
	}
	for _, row := range got.Rows {
		s := row[1].Float()
		if math.IsNaN(s) || s < 0 || s > 1 {
			t.Fatalf("year %v market share %v out of [0, 1]", row[0], s)
		}
	}
}

// golden pins {rows, fnv64a(table)} for each study task at the default
// fixed-seed dataset (ScaleFactor 0.002, Seed 19920101). Any change to the
// generator, the algebra pipeline, or the kernels that shifts a single cell
// shows up here.
var golden = map[int]struct {
	rows int
	hash uint64
}{
	1:  {rows: 4, hash: 0x511ada1196cf0051},
	2:  {rows: 24, hash: 0xd1d500413b12fb25},
	3:  {rows: 4, hash: 0x03ed25577996e850},
	4:  {rows: 1, hash: 0x8b020ad9def93967},
	5:  {rows: 3, hash: 0x050049bc80f6c3a7},
	6:  {rows: 67, hash: 0xa32b4004bb0aaea7},
	7:  {rows: 81, hash: 0xf6ec6b1b093a030e},
	8:  {rows: 1, hash: 0x265c6763de014bac},
	9:  {rows: 79, hash: 0xefedb242128b64e2},
	10: {rows: 663, hash: 0x8b4aef0c200fbaba},
}

// TestTasksGoldenAnswers is the regression gate over the ten study tasks:
// each algebra program's collapsed group/aggregate table must hash to the
// recorded golden value on the fixed-seed dataset.
func TestTasksGoldenAnswers(t *testing.T) {
	db := setup(t)
	for _, task := range Tasks() {
		task := task
		t.Run(task.Name, func(t *testing.T) {
			want, ok := golden[task.ID]
			if !ok {
				t.Fatalf("no golden recorded for task %d", task.ID)
			}
			sheet, err := task.Run(db)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sheet.Evaluate()
			if err != nil {
				t.Fatal(err)
			}
			var cols []string
			cols = append(cols, task.GroupCols...)
			for _, st := range task.Steps {
				if st.Kind == StepAggregate {
					cols = append(cols, st.As)
				}
			}
			got := collapse(t, res.Table, cols)
			if got.Len() != want.rows {
				t.Fatalf("rows = %d, want %d", got.Len(), want.rows)
			}
			h := fnv.New64a()
			h.Write([]byte(got.String()))
			if sum := h.Sum64(); sum != want.hash {
				t.Fatalf("table hash = 0x%016x, want 0x%016x — the task's answer drifted:\n%s",
					sum, want.hash, got.String())
			}
		})
	}
}
