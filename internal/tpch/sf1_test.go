package tpch

import (
	"os"
	"strconv"
	"testing"

	"sheetmusiq/internal/relation"
	"sheetmusiq/internal/sql"
	"sheetmusiq/internal/value"
)

// TestFullTPCHAtScale is the opt-in large-scale sweep over all 22 TPC-H
// queries. It is gated on TPCH_SF1: unset, the test skips (the default
// `go test` run already covers every query at the fixed small scale);
// TPCH_SF1=1 runs at scale factor 1 (~6M lineitem rows, about a minute to
// generate); any other float (e.g. TPCH_SF1=0.05) picks that scale for a
// faster large-ish sweep.
//
//	TPCH_SF1=1 go test -run TestFullTPCHAtScale -timeout 0 ./internal/tpch
//
// Every query runs as its own subtest: the ten study tasks assert
// algebra-vs-SQL equality exactly as the default-scale differential does;
// the SQL-only exemplars assert successful end-to-end execution. The
// correlated-subquery exemplars (Q2, Q13, Q17, Q20, Q21) re-execute their
// inner statement per distinct correlation key, so at SF 1 they dominate
// the runtime by a wide margin — use -run to slice the sweep when iterating.
func TestFullTPCHAtScale(t *testing.T) {
	spec := os.Getenv("TPCH_SF1")
	if spec == "" {
		t.Skip("set TPCH_SF1=1 (or a scale factor) to run the large-scale TPC-H sweep")
	}
	sf, err := strconv.ParseFloat(spec, 64)
	if err != nil || sf <= 0 {
		t.Fatalf("TPCH_SF1=%q is not a positive scale factor", spec)
	}
	tables := Generate(Config{ScaleFactor: sf, Seed: DefaultConfig().Seed})
	db := BuildDB(tables)
	if err := BuildViews(db); err != nil {
		t.Fatal(err)
	}

	for _, task := range Tasks() {
		task := task
		t.Run(task.TpchQuery+"/"+task.Name, func(t *testing.T) {
			diffTaskAgainstSQL(t, db, task)
		})
	}
	for _, eq := range ExcludedQueries() {
		eq := eq
		t.Run(eq.TpchQuery+"/"+eq.Name, func(t *testing.T) {
			res, err := db.Query(eq.SQL)
			if err != nil {
				t.Fatal(err)
			}
			if res == nil {
				t.Fatal("query returned no relation")
			}
		})
	}
}

// diffTaskAgainstSQL runs one study task through both routes and requires
// identical group/aggregate values — the same comparison the default-scale
// TestTasksAlgebraMatchesSQL makes.
func diffTaskAgainstSQL(t *testing.T, db *sql.DB, task Task) {
	t.Helper()
	sheet, err := task.Run(db)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sheet.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	var algebraCols []string
	algebraCols = append(algebraCols, task.GroupCols...)
	for _, st := range task.Steps {
		if st.Kind == StepAggregate {
			algebraCols = append(algebraCols, st.As)
		}
	}
	got := collapse(t, res.Table, algebraCols)

	want, err := db.Query(task.Query)
	if err != nil {
		t.Fatalf("reference SQL: %v", err)
	}
	wantSorted := want.Clone()
	var keys []relation.SortKey
	for i := range task.GroupCols {
		keys = append(keys, relation.SortKey{Column: want.Schema[i].Name})
	}
	if len(keys) > 0 {
		if err := wantSorted.Sort(keys); err != nil {
			t.Fatal(err)
		}
	}
	if got.Len() != wantSorted.Len() {
		t.Fatalf("algebra %d rows vs SQL %d rows", got.Len(), wantSorted.Len())
	}
	for i := range got.Rows {
		for j := range got.Rows[i] {
			if !value.Equal(got.Rows[i][j], wantSorted.Rows[i][j]) {
				t.Fatalf("row %d col %d: algebra %v vs SQL %v", i, j,
					got.Rows[i][j], wantSorted.Rows[i][j])
			}
		}
	}
}
