package tpch

import (
	"testing"

	"sheetmusiq/internal/relation"
	"sheetmusiq/internal/value"
)

// TestExcludedQueriesRun: every nested query the study excluded runs on the
// SQL substrate (which is exactly the boundary the paper draws: the algebra
// cannot express them, the backend can).
func TestExcludedQueriesRun(t *testing.T) {
	db := setup(t)
	for _, eq := range ExcludedQueries() {
		eq := eq
		t.Run(eq.Name, func(t *testing.T) {
			if _, err := db.Query(eq.SQL); err != nil {
				t.Fatalf("%s (%s): %v", eq.TpchQuery, eq.Why, err)
			}
		})
	}
}

func TestExcludedQ4AgainstManualCheck(t *testing.T) {
	// Verify the EXISTS semantics by recomputing Q4's order_count totals
	// directly over the base tables.
	db := setup(t)
	got, err := db.Query(ExcludedQueries()[0].SQL)
	if err != nil {
		t.Fatal(err)
	}
	orders, _ := db.Table("orders")
	lineitem, _ := db.Table("lineitem")
	late := map[int64]bool{}
	lo := lineitem.Schema.IndexOf("l_orderkey")
	lc := lineitem.Schema.IndexOf("l_commitdate")
	lr := lineitem.Schema.IndexOf("l_receiptdate")
	for _, row := range lineitem.Rows {
		if row[lc].DateDays() < row[lr].DateDays() {
			late[row[lo].Int()] = true
		}
	}
	oo := orders.Schema.IndexOf("o_orderkey")
	od := orders.Schema.IndexOf("o_orderdate")
	op := orders.Schema.IndexOf("o_orderpriority")
	lo93 := value.NewDate(1993, 7, 1).DateDays()
	hi93 := value.NewDate(1993, 10, 1).DateDays()
	want := map[string]int64{}
	for _, row := range orders.Rows {
		d := row[od].DateDays()
		if d >= lo93 && d < hi93 && late[row[oo].Int()] {
			want[row[op].Str()]++
		}
	}
	total := int64(0)
	for _, row := range got.Rows {
		pr := row[0].Str()
		if row[1].Int() != want[pr] {
			t.Fatalf("priority %s count = %v, want %d", pr, row[1], want[pr])
		}
		total += row[1].Int()
	}
	if total == 0 {
		t.Fatal("Q4 returned no qualifying orders at the default scale")
	}
}

func TestExcludedQ18AgreesWithFlattenedTask(t *testing.T) {
	// The study's flattened Q18′ and the original nested Q18 must agree on
	// which orders exceed the quantity threshold.
	db := setup(t)
	nested, err := db.Query(ExcludedQueries()[3].SQL)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := db.Query(Tasks()[9].Query)
	if err != nil {
		t.Fatal(err)
	}
	keyOf := func(r *relation.Relation, row relation.Tuple) string {
		return row[r.Schema.IndexOf("o_orderkey")].Key()
	}
	flatKeys := map[string]bool{}
	for _, row := range flat.Rows {
		flatKeys[keyOf(flat, row)] = true
	}
	// The original query carries TPC-H's LIMIT 100; every order it returns
	// must qualify in the flattened version, and when it returns fewer than
	// the limit the sets must coincide.
	for _, row := range nested.Rows {
		if !flatKeys[keyOf(nested, row)] {
			t.Fatalf("nested order %v missing from the flattened result", row)
		}
	}
	if nested.Len() < 100 && nested.Len() != flat.Len() {
		t.Fatalf("nested %d orders vs flattened %d", nested.Len(), flat.Len())
	}
}

func TestExcludedQ11AgainstManualThreshold(t *testing.T) {
	// The scalar-subquery threshold equals 5% of Germany's total stock
	// value; check one representative row survives it.
	db := setup(t)
	rows, err := db.Query(ExcludedQueries()[1].SQL)
	if err != nil {
		t.Fatal(err)
	}
	totalRel, err := db.Query("SELECT SUM(ps_supplycost * ps_availqty) AS t FROM partsupp " +
		"JOIN supplier ON ps_suppkey = s_suppkey JOIN nation ON s_nationkey = n_nationkey WHERE n_name = 'GERMANY'")
	if err != nil {
		t.Fatal(err)
	}
	threshold := totalRel.Rows[0][0].Float() * 0.05
	for _, row := range rows.Rows {
		if row[1].Float() <= threshold {
			t.Fatalf("row %v under the threshold %v", row, threshold)
		}
	}
}
