package tpch

import (
	"fmt"

	"sheetmusiq/internal/core"
	"sheetmusiq/internal/relation"
	"sheetmusiq/internal/sql"
)

// StepKind enumerates direct-manipulation actions in a task's algebra
// program. The user-study simulator prices each kind from the interface
// design of Sec. VI.
type StepKind uint8

// Step kinds.
const (
	StepSelect StepKind = iota
	StepGroup
	StepSort
	StepAggregate
	StepFormula
	StepHide
)

// Step is one direct-manipulation action.
type Step struct {
	Kind      StepKind
	Predicate string           // StepSelect
	Columns   []string         // StepGroup (relative basis), StepHide
	Dir       core.Dir         // StepGroup, StepSort
	SortCol   string           // StepSort
	Agg       relation.AggFunc // StepAggregate
	Input     string           // StepAggregate
	Level     int              // StepAggregate
	As        string           // StepAggregate / StepFormula result name
	Formula   string           // StepFormula
}

// Apply performs the step on a spreadsheet.
func (st Step) Apply(s *core.Spreadsheet) error {
	switch st.Kind {
	case StepSelect:
		_, err := s.Select(st.Predicate)
		return err
	case StepGroup:
		return s.GroupBy(st.Dir, st.Columns...)
	case StepSort:
		return s.Sort(st.SortCol, st.Dir)
	case StepAggregate:
		_, err := s.AggregateAs(st.As, st.Agg, st.Input, st.Level)
		return err
	case StepFormula:
		_, err := s.Formula(st.As, st.Formula)
		return err
	case StepHide:
		for _, c := range st.Columns {
			if err := s.Hide(c); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("tpch: unknown step kind %d", st.Kind)
}

// Task is one user-study query: the paper took 10 of the 22 TPC-H queries
// (excluding those needing nesting, EXISTS or CASE) and predefined views so
// subjects always query a single table.
type Task struct {
	ID          int
	TpchQuery   string // source query, with ′ marking our flattening
	Name        string
	Description string // the English task statement given to subjects
	ViewName    string
	ViewSQL     string // empty when the view is a base table
	Query       string // the reference single-block SQL over the view
	Steps       []Step // the SheetMusiq algebra program over the view
	GroupCols   []string
	AggCols     []string
}

// Tasks returns the ten study tasks, in study order.
func Tasks() []Task {
	return []Task{
		{
			ID: 1, TpchQuery: "Q1", Name: "pricing-summary",
			Description: "Summarise billed, shipped and returned business per return flag and line status as of 1998-09-02.",
			ViewName:    "lineitem",
			Query: "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty, " +
				"SUM(l_extendedprice) AS sum_base_price, SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price, " +
				"AVG(l_quantity) AS avg_qty, AVG(l_extendedprice) AS avg_price, AVG(l_discount) AS avg_disc, " +
				"COUNT(*) AS count_order FROM lineitem WHERE l_shipdate <= DATE '1998-09-02' " +
				"GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus",
			Steps: []Step{
				{Kind: StepSelect, Predicate: "l_shipdate <= DATE '1998-09-02'"},
				{Kind: StepFormula, As: "disc_price", Formula: "l_extendedprice * (1 - l_discount)"},
				{Kind: StepGroup, Dir: core.Asc, Columns: []string{"l_returnflag"}},
				{Kind: StepGroup, Dir: core.Asc, Columns: []string{"l_linestatus"}},
				{Kind: StepAggregate, Agg: relation.AggSum, Input: "l_quantity", Level: 3, As: "sum_qty"},
				{Kind: StepAggregate, Agg: relation.AggSum, Input: "l_extendedprice", Level: 3, As: "sum_base_price"},
				{Kind: StepAggregate, Agg: relation.AggSum, Input: "disc_price", Level: 3, As: "sum_disc_price"},
				{Kind: StepAggregate, Agg: relation.AggAvg, Input: "l_quantity", Level: 3, As: "avg_qty"},
				{Kind: StepAggregate, Agg: relation.AggAvg, Input: "l_extendedprice", Level: 3, As: "avg_price"},
				{Kind: StepAggregate, Agg: relation.AggAvg, Input: "l_discount", Level: 3, As: "avg_disc"},
				{Kind: StepAggregate, Agg: relation.AggCount, Input: "l_orderkey", Level: 3, As: "count_order"},
			},
			GroupCols: []string{"l_returnflag", "l_linestatus"},
			AggCols: []string{"sum_qty", "sum_base_price", "sum_disc_price",
				"avg_qty", "avg_price", "avg_disc", "count_order"},
		},
		{
			ID: 2, TpchQuery: "Q3", Name: "shipping-priority",
			Description: "Find the revenue still on the table for BUILDING-segment orders placed before 1995-03-15 and shipped after it.",
			ViewName:    "v_shipping_priority",
			ViewSQL: "SELECT c_mktsegment, o_orderkey, o_orderdate, o_shippriority, l_shipdate, " +
				"l_extendedprice, l_discount FROM customer JOIN orders ON c_custkey = o_custkey " +
				"JOIN lineitem ON o_orderkey = l_orderkey",
			Query: "SELECT o_orderkey, o_orderdate, o_shippriority, SUM(l_extendedprice * (1 - l_discount)) AS revenue " +
				"FROM v_shipping_priority WHERE c_mktsegment = 'BUILDING' AND o_orderdate < DATE '1995-03-15' " +
				"AND l_shipdate > DATE '1995-03-15' GROUP BY o_orderkey, o_orderdate, o_shippriority ORDER BY o_orderkey",
			Steps: []Step{
				{Kind: StepSelect, Predicate: "c_mktsegment = 'BUILDING'"},
				{Kind: StepSelect, Predicate: "o_orderdate < DATE '1995-03-15'"},
				{Kind: StepSelect, Predicate: "l_shipdate > DATE '1995-03-15'"},
				{Kind: StepFormula, As: "revenue", Formula: "l_extendedprice * (1 - l_discount)"},
				{Kind: StepGroup, Dir: core.Asc, Columns: []string{"o_orderkey", "o_orderdate", "o_shippriority"}},
				{Kind: StepAggregate, Agg: relation.AggSum, Input: "revenue", Level: 2, As: "sum_revenue"},
			},
			GroupCols: []string{"o_orderkey", "o_orderdate", "o_shippriority"},
			AggCols:   []string{"sum_revenue"},
		},
		{
			ID: 3, TpchQuery: "Q5", Name: "local-supplier-volume",
			Description: "Report, per Asian nation, the 1994 revenue from orders where the customer and supplier share the nation.",
			ViewName:    "v_local_volume",
			ViewSQL: "SELECT n_name, r_name, o_orderdate, l_extendedprice, l_discount " +
				"FROM customer JOIN orders ON c_custkey = o_custkey JOIN lineitem ON o_orderkey = l_orderkey " +
				"JOIN supplier ON l_suppkey = s_suppkey JOIN nation ON s_nationkey = n_nationkey " +
				"JOIN region ON n_regionkey = r_regionkey WHERE c_nationkey = s_nationkey",
			Query: "SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue FROM v_local_volume " +
				"WHERE r_name = 'ASIA' AND o_orderdate >= DATE '1994-01-01' AND o_orderdate < DATE '1995-01-01' " +
				"GROUP BY n_name ORDER BY n_name",
			Steps: []Step{
				{Kind: StepSelect, Predicate: "r_name = 'ASIA'"},
				{Kind: StepSelect, Predicate: "o_orderdate >= DATE '1994-01-01' AND o_orderdate < DATE '1995-01-01'"},
				{Kind: StepFormula, As: "revenue", Formula: "l_extendedprice * (1 - l_discount)"},
				{Kind: StepGroup, Dir: core.Asc, Columns: []string{"n_name"}},
				{Kind: StepAggregate, Agg: relation.AggSum, Input: "revenue", Level: 2, As: "sum_revenue"},
			},
			GroupCols: []string{"n_name"},
			AggCols:   []string{"sum_revenue"},
		},
		{
			ID: 4, TpchQuery: "Q6", Name: "forecast-revenue-change",
			Description: "Quantify the revenue increase from eliminating small discounts on low-quantity 1994 shipments.",
			ViewName:    "lineitem",
			Query: "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem " +
				"WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01' " +
				"AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24",
			Steps: []Step{
				{Kind: StepSelect, Predicate: "l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01'"},
				{Kind: StepSelect, Predicate: "l_discount BETWEEN 0.05 AND 0.07"},
				{Kind: StepSelect, Predicate: "l_quantity < 24"},
				{Kind: StepFormula, As: "disc_rev", Formula: "l_extendedprice * l_discount"},
				{Kind: StepAggregate, Agg: relation.AggSum, Input: "disc_rev", Level: 1, As: "revenue"},
			},
			AggCols: []string{"revenue"},
		},
		{
			ID: 5, TpchQuery: "Q7", Name: "volume-shipping",
			Description: "Report the shipping volume between France and Germany per nation pair and year for 1995-1996.",
			ViewName:    "v_volume_shipping",
			ViewSQL: "SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation, l_shipdate, " +
				"l_extendedprice, l_discount FROM supplier JOIN lineitem ON s_suppkey = l_suppkey " +
				"JOIN orders ON o_orderkey = l_orderkey JOIN customer ON c_custkey = o_custkey " +
				"JOIN nation AS n1 ON s_nationkey = n1.n_nationkey JOIN nation AS n2 ON c_nationkey = n2.n_nationkey",
			Query: "SELECT supp_nation, cust_nation, YEAR(l_shipdate) AS l_year, " +
				"SUM(l_extendedprice * (1 - l_discount)) AS revenue FROM v_volume_shipping " +
				"WHERE ((supp_nation = 'FRANCE' AND cust_nation = 'GERMANY') OR " +
				"(supp_nation = 'GERMANY' AND cust_nation = 'FRANCE')) " +
				"AND l_shipdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31' " +
				"GROUP BY supp_nation, cust_nation, YEAR(l_shipdate) ORDER BY supp_nation, cust_nation, l_year",
			Steps: []Step{
				{Kind: StepSelect, Predicate: "(supp_nation = 'FRANCE' AND cust_nation = 'GERMANY') OR (supp_nation = 'GERMANY' AND cust_nation = 'FRANCE')"},
				{Kind: StepSelect, Predicate: "l_shipdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'"},
				{Kind: StepFormula, As: "l_year", Formula: "YEAR(l_shipdate)"},
				{Kind: StepFormula, As: "revenue", Formula: "l_extendedprice * (1 - l_discount)"},
				{Kind: StepGroup, Dir: core.Asc, Columns: []string{"supp_nation", "cust_nation", "l_year"}},
				{Kind: StepAggregate, Agg: relation.AggSum, Input: "revenue", Level: 2, As: "sum_revenue"},
			},
			GroupCols: []string{"supp_nation", "cust_nation", "l_year"},
			AggCols:   []string{"sum_revenue"},
		},
		{
			ID: 6, TpchQuery: "Q9", Name: "product-type-profit",
			Description: "Measure the profit on green parts per nation and year.",
			ViewName:    "v_profit",
			ViewSQL: "SELECT n_name AS nation, o_orderdate, p_name, l_extendedprice, l_discount, " +
				"l_quantity, ps_supplycost FROM lineitem JOIN supplier ON l_suppkey = s_suppkey " +
				"JOIN part ON p_partkey = l_partkey JOIN partsupp ON ps_suppkey = l_suppkey AND ps_partkey = l_partkey " +
				"JOIN orders ON o_orderkey = l_orderkey JOIN nation ON s_nationkey = n_nationkey",
			Query: "SELECT nation, YEAR(o_orderdate) AS o_year, " +
				"SUM(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity) AS sum_profit " +
				"FROM v_profit WHERE p_name LIKE '%green%' GROUP BY nation, YEAR(o_orderdate) " +
				"ORDER BY nation, o_year DESC",
			Steps: []Step{
				{Kind: StepSelect, Predicate: "p_name LIKE '%green%'"},
				{Kind: StepFormula, As: "o_year", Formula: "YEAR(o_orderdate)"},
				{Kind: StepFormula, As: "amount", Formula: "l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity"},
				{Kind: StepGroup, Dir: core.Asc, Columns: []string{"nation"}},
				{Kind: StepGroup, Dir: core.Desc, Columns: []string{"o_year"}},
				{Kind: StepAggregate, Agg: relation.AggSum, Input: "amount", Level: 3, As: "sum_profit"},
			},
			GroupCols: []string{"nation", "o_year"},
			AggCols:   []string{"sum_profit"},
		},
		{
			ID: 7, TpchQuery: "Q10", Name: "returned-items",
			Description: "Identify customers who returned parts ordered in 1993 Q4 and the revenue lost to those returns.",
			ViewName:    "v_returned_items",
			ViewSQL: "SELECT c_name, n_name, c_phone, o_orderdate, l_returnflag, l_extendedprice, l_discount " +
				"FROM customer JOIN orders ON c_custkey = o_custkey JOIN lineitem ON o_orderkey = l_orderkey " +
				"JOIN nation ON c_nationkey = n_nationkey",
			Query: "SELECT c_name, n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue FROM v_returned_items " +
				"WHERE l_returnflag = 'R' AND o_orderdate >= DATE '1993-10-01' AND o_orderdate < DATE '1994-01-01' " +
				"GROUP BY c_name, n_name ORDER BY c_name",
			Steps: []Step{
				{Kind: StepSelect, Predicate: "l_returnflag = 'R'"},
				{Kind: StepSelect, Predicate: "o_orderdate >= DATE '1993-10-01' AND o_orderdate < DATE '1994-01-01'"},
				{Kind: StepFormula, As: "revenue", Formula: "l_extendedprice * (1 - l_discount)"},
				{Kind: StepGroup, Dir: core.Asc, Columns: []string{"c_name", "n_name"}},
				{Kind: StepAggregate, Agg: relation.AggSum, Input: "revenue", Level: 2, As: "sum_revenue"},
			},
			GroupCols: []string{"c_name", "n_name"},
			AggCols:   []string{"sum_revenue"},
		},
		{
			ID: 8, TpchQuery: "Q19", Name: "discounted-revenue",
			Description: "Compute the revenue from air-shipped, hand-delivered parts matching three brand/container/quantity brackets.",
			ViewName:    "v_part_revenue",
			ViewSQL: "SELECT p_brand, p_container, p_size, l_quantity, l_extendedprice, l_discount, " +
				"l_shipmode, l_shipinstruct FROM lineitem JOIN part ON p_partkey = l_partkey",
			Query: "SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue FROM v_part_revenue WHERE " +
				"((p_brand = 'Brand#12' AND p_container IN ('SM CASE','SM BOX','SM PACK','SM PKG') AND l_quantity BETWEEN 1 AND 11 AND p_size BETWEEN 1 AND 5) OR " +
				"(p_brand = 'Brand#23' AND p_container IN ('MED BAG','MED BOX','MED PKG','MED PACK') AND l_quantity BETWEEN 10 AND 20 AND p_size BETWEEN 1 AND 10) OR " +
				"(p_brand = 'Brand#34' AND p_container IN ('LG CASE','LG BOX','LG PACK','LG PKG') AND l_quantity BETWEEN 20 AND 30 AND p_size BETWEEN 1 AND 15)) " +
				"AND l_shipmode IN ('AIR','REG AIR') AND l_shipinstruct = 'DELIVER IN PERSON'",
			Steps: []Step{
				{Kind: StepSelect, Predicate: "(p_brand = 'Brand#12' AND p_container IN ('SM CASE','SM BOX','SM PACK','SM PKG') AND l_quantity BETWEEN 1 AND 11 AND p_size BETWEEN 1 AND 5) OR " +
					"(p_brand = 'Brand#23' AND p_container IN ('MED BAG','MED BOX','MED PKG','MED PACK') AND l_quantity BETWEEN 10 AND 20 AND p_size BETWEEN 1 AND 10) OR " +
					"(p_brand = 'Brand#34' AND p_container IN ('LG CASE','LG BOX','LG PACK','LG PKG') AND l_quantity BETWEEN 20 AND 30 AND p_size BETWEEN 1 AND 15)"},
				{Kind: StepSelect, Predicate: "l_shipmode IN ('AIR','REG AIR')"},
				{Kind: StepSelect, Predicate: "l_shipinstruct = 'DELIVER IN PERSON'"},
				{Kind: StepFormula, As: "revenue", Formula: "l_extendedprice * (1 - l_discount)"},
				{Kind: StepAggregate, Agg: relation.AggSum, Input: "revenue", Level: 1, As: "sum_revenue"},
			},
			AggCols: []string{"sum_revenue"},
		},
		{
			ID: 9, TpchQuery: "Q11′", Name: "important-stock",
			Description: "Find the parts whose German stock is worth more than $50,000 (flattened: fixed threshold instead of the original's scalar subquery).",
			ViewName:    "v_stock",
			ViewSQL: "SELECT ps_partkey, ps_availqty, ps_supplycost, n_name FROM partsupp " +
				"JOIN supplier ON ps_suppkey = s_suppkey JOIN nation ON s_nationkey = n_nationkey",
			Query: "SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) AS val FROM v_stock " +
				"WHERE n_name = 'GERMANY' GROUP BY ps_partkey HAVING SUM(ps_supplycost * ps_availqty) > 50000 " +
				"ORDER BY ps_partkey",
			Steps: []Step{
				{Kind: StepSelect, Predicate: "n_name = 'GERMANY'"},
				{Kind: StepFormula, As: "stock_value", Formula: "ps_supplycost * ps_availqty"},
				{Kind: StepGroup, Dir: core.Asc, Columns: []string{"ps_partkey"}},
				{Kind: StepAggregate, Agg: relation.AggSum, Input: "stock_value", Level: 2, As: "sum_value"},
				{Kind: StepSelect, Predicate: "sum_value > 50000"},
			},
			GroupCols: []string{"ps_partkey"},
			AggCols:   []string{"sum_value"},
		},
		{
			ID: 10, TpchQuery: "Q18′", Name: "large-volume-customer",
			Description: "List orders whose total line quantity exceeds 150 and the customer who placed them (flattened: the original's IN-subquery becomes a direct HAVING).",
			ViewName:    "v_large_orders",
			ViewSQL: "SELECT c_name, o_orderkey, o_orderdate, o_totalprice, l_quantity FROM customer " +
				"JOIN orders ON c_custkey = o_custkey JOIN lineitem ON o_orderkey = l_orderkey",
			Query: "SELECT c_name, o_orderkey, o_orderdate, o_totalprice, SUM(l_quantity) AS total_qty " +
				"FROM v_large_orders GROUP BY c_name, o_orderkey, o_orderdate, o_totalprice " +
				"HAVING SUM(l_quantity) > 150 ORDER BY o_orderkey",
			Steps: []Step{
				{Kind: StepGroup, Dir: core.Asc, Columns: []string{"c_name", "o_orderkey", "o_orderdate", "o_totalprice"}},
				{Kind: StepAggregate, Agg: relation.AggSum, Input: "l_quantity", Level: 2, As: "total_qty"},
				{Kind: StepSelect, Predicate: "total_qty > 150"},
			},
			GroupCols: []string{"c_name", "o_orderkey", "o_orderdate", "o_totalprice"},
			AggCols:   []string{"total_qty"},
		},
	}
}

// BuildDB registers the eight base tables in a fresh SQL database.
func BuildDB(t *Tables) *sql.DB {
	db := sql.NewDB()
	for _, r := range t.All() {
		db.Register(r)
	}
	return db
}

// BuildViews materialises every task view into the database ("we predefined
// views for queries involving many joins").
func BuildViews(db *sql.DB) error {
	done := map[string]bool{}
	for _, task := range Tasks() {
		if task.ViewSQL == "" || done[task.ViewName] {
			continue
		}
		view, err := db.Query(task.ViewSQL)
		if err != nil {
			return fmt.Errorf("tpch: build view %s: %w", task.ViewName, err)
		}
		view.Name = task.ViewName
		db.Register(view)
		done[task.ViewName] = true
	}
	return nil
}

// Sheet opens the task's view as a fresh spreadsheet.
func (t Task) Sheet(db *sql.DB) (*core.Spreadsheet, error) {
	view, ok := db.Table(t.ViewName)
	if !ok {
		return nil, fmt.Errorf("tpch: view %q not built", t.ViewName)
	}
	return core.New(view), nil
}

// Run applies the task's algebra program to a fresh sheet over the view.
func (t Task) Run(db *sql.DB) (*core.Spreadsheet, error) {
	s, err := t.Sheet(db)
	if err != nil {
		return nil, err
	}
	for i, st := range t.Steps {
		if err := st.Apply(s); err != nil {
			return nil, fmt.Errorf("tpch: task %d step %d: %w", t.ID, i, err)
		}
	}
	return s, nil
}
