// Package tpch implements a deterministic dbgen-style generator for the
// TPC-H schema, the pre-joined views the paper's user study predefined
// ("we predefined views for queries involving many joins so that users
// always query a single table", Sec. VII-A1), and the ten single-block
// query tasks derived from the benchmark that the study used.
//
// The generator substitutes for the official dbgen tool and its 31 MB
// demonstration dataset (DESIGN.md §2): same schema, same value families in
// every attribute the tasks touch, seeded PRNG so all runs are identical.
package tpch

import (
	"fmt"
	"math/rand"
	"time"

	"sheetmusiq/internal/relation"
	"sheetmusiq/internal/value"
)

// Tables bundles the eight generated TPC-H base relations.
type Tables struct {
	Region, Nation, Supplier, Customer *relation.Relation
	Part, PartSupp, Orders, LineItem   *relation.Relation
}

// All returns the tables in dependency order.
func (t *Tables) All() []*relation.Relation {
	return []*relation.Relation{
		t.Region, t.Nation, t.Supplier, t.Customer,
		t.Part, t.PartSupp, t.Orders, t.LineItem,
	}
}

var regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

// nationSpec maps the 25 spec nations to their region keys.
var nationSpec = []struct {
	name   string
	region int64
}{
	{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1},
	{"EGYPT", 4}, {"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3},
	{"INDIA", 2}, {"INDONESIA", 2}, {"IRAN", 4}, {"IRAQ", 4},
	{"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0}, {"MOROCCO", 0},
	{"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
	{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3},
	{"UNITED KINGDOM", 3}, {"UNITED STATES", 1},
}

var (
	segments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	instructs  = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	shipModes  = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	containers = []string{"SM CASE", "SM BOX", "SM PACK", "SM PKG", "MED BAG", "MED BOX",
		"MED PKG", "MED PACK", "LG CASE", "LG BOX", "LG PACK", "LG PKG"}
	typeSyl1 = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	typeSyl2 = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	typeSyl3 = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	nameNoun = []string{"almond", "antique", "aquamarine", "azure", "beige", "bisque",
		"black", "blanched", "blue", "blush", "brown", "burlywood", "chartreuse",
		"chiffon", "chocolate", "coral", "cornflower", "cream", "cyan", "dark",
		"deep", "dim", "dodger", "drab", "firebrick", "floral", "forest", "frosted",
		"gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew", "hot",
		"indian", "ivory", "khaki", "lace", "lavender", "lawn", "lemon", "light",
		"lime", "linen", "magenta", "maroon", "medium", "metallic", "midnight",
		"mint", "misty", "moccasin", "navajo", "navy", "olive", "orange", "orchid",
		"pale", "papaya", "peach", "peru", "pink", "plum", "powder", "puff",
		"purple", "red", "rose", "rosy", "royal", "saddle", "salmon", "sandy",
		"seashell", "sienna", "sky", "slate", "smoke", "snow", "spring", "steel",
		"tan", "thistle", "tomato", "turquoise", "violet", "wheat", "white", "yellow"}
	commentWords = []string{"carefully", "quickly", "furiously", "slyly", "blithely",
		"deposits", "requests", "packages", "accounts", "instructions", "theodolites",
		"pinto", "beans", "foxes", "ideas", "dependencies", "platelets", "sleep",
		"haggle", "nag", "wake", "cajole", "boost", "integrate", "detect"}
)

const day = int64(1)

func dateDays(y int, m time.Month, d int) int64 {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC).Unix() / 86400
}

var (
	startDate = dateDays(1992, time.January, 1)
	endDate   = dateDays(1998, time.December, 31)
)

// Config controls generation volume.
type Config struct {
	// ScaleFactor matches TPC-H SF; the study dataset is ~SF 0.004.
	ScaleFactor float64
	// Seed fixes the PRNG; identical configs generate identical data.
	Seed int64
}

// DefaultConfig generates a dataset small enough for interactive tests yet
// large enough for every task to return non-trivial results.
func DefaultConfig() Config { return Config{ScaleFactor: 0.002, Seed: 19920101} }

func scale(sf float64, base int) int {
	n := int(sf * float64(base))
	if n < 1 {
		n = 1
	}
	return n
}

// Generate builds all eight tables.
func Generate(cfg Config) *Tables {
	if cfg.ScaleFactor <= 0 {
		cfg.ScaleFactor = DefaultConfig().ScaleFactor
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Tables{}
	t.Region = genRegion()
	t.Nation = genNation()
	nSupp := scale(cfg.ScaleFactor, 10000)
	nCust := scale(cfg.ScaleFactor, 150000)
	nPart := scale(cfg.ScaleFactor, 200000)
	nOrders := scale(cfg.ScaleFactor, 1500000)
	t.Supplier = genSupplier(rng, nSupp)
	t.Customer = genCustomer(rng, nCust)
	t.Part = genPart(rng, nPart)
	t.PartSupp = genPartSupp(rng, nPart, nSupp)
	t.Orders, t.LineItem = genOrdersLineItem(rng, nOrders, nCust, nPart, nSupp)
	return t
}

func comment(rng *rand.Rand) value.Value {
	n := 3 + rng.Intn(5)
	out := make([]byte, 0, 48)
	for i := 0; i < n; i++ {
		if i > 0 {
			out = append(out, ' ')
		}
		out = append(out, commentWords[rng.Intn(len(commentWords))]...)
	}
	return value.NewString(string(out))
}

func genRegion() *relation.Relation {
	r := relation.New("region", relation.Schema{
		{Name: "r_regionkey", Kind: value.KindInt},
		{Name: "r_name", Kind: value.KindString},
		{Name: "r_comment", Kind: value.KindString},
	})
	for i, n := range regionNames {
		r.MustAppend(value.NewInt(int64(i)), value.NewString(n),
			value.NewString("region "+n))
	}
	return r
}

func genNation() *relation.Relation {
	r := relation.New("nation", relation.Schema{
		{Name: "n_nationkey", Kind: value.KindInt},
		{Name: "n_name", Kind: value.KindString},
		{Name: "n_regionkey", Kind: value.KindInt},
		{Name: "n_comment", Kind: value.KindString},
	})
	for i, n := range nationSpec {
		r.MustAppend(value.NewInt(int64(i)), value.NewString(n.name),
			value.NewInt(n.region), value.NewString("nation "+n.name))
	}
	return r
}

func genSupplier(rng *rand.Rand, n int) *relation.Relation {
	r := relation.New("supplier", relation.Schema{
		{Name: "s_suppkey", Kind: value.KindInt},
		{Name: "s_name", Kind: value.KindString},
		{Name: "s_address", Kind: value.KindString},
		{Name: "s_nationkey", Kind: value.KindInt},
		{Name: "s_phone", Kind: value.KindString},
		{Name: "s_acctbal", Kind: value.KindFloat},
		{Name: "s_comment", Kind: value.KindString},
	})
	for i := 1; i <= n; i++ {
		// Round-robin nation assignment guarantees every nation has
		// suppliers even at tiny scale factors, so the nation-filtered
		// study tasks (Q5, Q7, Q11′) stay non-degenerate.
		nation := int64((i - 1) % 25)
		r.MustAppend(
			value.NewInt(int64(i)),
			value.NewString(fmt.Sprintf("Supplier#%09d", i)),
			value.NewString(fmt.Sprintf("addr-%d", rng.Intn(10000))),
			value.NewInt(nation),
			value.NewString(phone(rng, nation)),
			value.NewFloat(float64(rng.Intn(1099800)-99999)/100),
			comment(rng),
		)
	}
	return r
}

func phone(rng *rand.Rand, nation int64) string {
	return fmt.Sprintf("%d-%03d-%03d-%04d", 10+nation, rng.Intn(900)+100,
		rng.Intn(900)+100, rng.Intn(9000)+1000)
}

func genCustomer(rng *rand.Rand, n int) *relation.Relation {
	r := relation.New("customer", relation.Schema{
		{Name: "c_custkey", Kind: value.KindInt},
		{Name: "c_name", Kind: value.KindString},
		{Name: "c_address", Kind: value.KindString},
		{Name: "c_nationkey", Kind: value.KindInt},
		{Name: "c_phone", Kind: value.KindString},
		{Name: "c_acctbal", Kind: value.KindFloat},
		{Name: "c_mktsegment", Kind: value.KindString},
		{Name: "c_comment", Kind: value.KindString},
	})
	for i := 1; i <= n; i++ {
		nation := int64(rng.Intn(25))
		r.MustAppend(
			value.NewInt(int64(i)),
			value.NewString(fmt.Sprintf("Customer#%09d", i)),
			value.NewString(fmt.Sprintf("addr-%d", rng.Intn(10000))),
			value.NewInt(nation),
			value.NewString(phone(rng, nation)),
			value.NewFloat(float64(rng.Intn(1099800)-99999)/100),
			value.NewString(segments[rng.Intn(len(segments))]),
			comment(rng),
		)
	}
	return r
}

func genPart(rng *rand.Rand, n int) *relation.Relation {
	r := relation.New("part", relation.Schema{
		{Name: "p_partkey", Kind: value.KindInt},
		{Name: "p_name", Kind: value.KindString},
		{Name: "p_mfgr", Kind: value.KindString},
		{Name: "p_brand", Kind: value.KindString},
		{Name: "p_type", Kind: value.KindString},
		{Name: "p_size", Kind: value.KindInt},
		{Name: "p_container", Kind: value.KindString},
		{Name: "p_retailprice", Kind: value.KindFloat},
		{Name: "p_comment", Kind: value.KindString},
	})
	for i := 1; i <= n; i++ {
		mfgr := rng.Intn(5) + 1
		brand := mfgr*10 + rng.Intn(5) + 1
		name := nameNoun[rng.Intn(len(nameNoun))] + " " + nameNoun[rng.Intn(len(nameNoun))] + " " +
			nameNoun[rng.Intn(len(nameNoun))]
		ptype := typeSyl1[rng.Intn(len(typeSyl1))] + " " + typeSyl2[rng.Intn(len(typeSyl2))] + " " +
			typeSyl3[rng.Intn(len(typeSyl3))]
		r.MustAppend(
			value.NewInt(int64(i)),
			value.NewString(name),
			value.NewString(fmt.Sprintf("Manufacturer#%d", mfgr)),
			value.NewString(fmt.Sprintf("Brand#%d", brand)),
			value.NewString(ptype),
			value.NewInt(int64(rng.Intn(50)+1)),
			value.NewString(containers[rng.Intn(len(containers))]),
			value.NewFloat(float64(90000+(i%200)*100+rng.Intn(1000))/100),
			comment(rng),
		)
	}
	return r
}

func genPartSupp(rng *rand.Rand, nPart, nSupp int) *relation.Relation {
	r := relation.New("partsupp", relation.Schema{
		{Name: "ps_partkey", Kind: value.KindInt},
		{Name: "ps_suppkey", Kind: value.KindInt},
		{Name: "ps_availqty", Kind: value.KindInt},
		{Name: "ps_supplycost", Kind: value.KindFloat},
		{Name: "ps_comment", Kind: value.KindString},
	})
	for p := 1; p <= nPart; p++ {
		for j := 0; j < 4; j++ {
			supp := (p+j*(nSupp/4+1))%nSupp + 1
			r.MustAppend(
				value.NewInt(int64(p)),
				value.NewInt(int64(supp)),
				value.NewInt(int64(rng.Intn(9999)+1)),
				value.NewFloat(float64(rng.Intn(99900)+100)/100),
				comment(rng),
			)
		}
	}
	return r
}

func genOrdersLineItem(rng *rand.Rand, nOrders, nCust, nPart, nSupp int) (*relation.Relation, *relation.Relation) {
	orders := relation.New("orders", relation.Schema{
		{Name: "o_orderkey", Kind: value.KindInt},
		{Name: "o_custkey", Kind: value.KindInt},
		{Name: "o_orderstatus", Kind: value.KindString},
		{Name: "o_totalprice", Kind: value.KindFloat},
		{Name: "o_orderdate", Kind: value.KindDate},
		{Name: "o_orderpriority", Kind: value.KindString},
		{Name: "o_clerk", Kind: value.KindString},
		{Name: "o_shippriority", Kind: value.KindInt},
		{Name: "o_comment", Kind: value.KindString},
	})
	lineitem := relation.New("lineitem", relation.Schema{
		{Name: "l_orderkey", Kind: value.KindInt},
		{Name: "l_partkey", Kind: value.KindInt},
		{Name: "l_suppkey", Kind: value.KindInt},
		{Name: "l_linenumber", Kind: value.KindInt},
		{Name: "l_quantity", Kind: value.KindInt},
		{Name: "l_extendedprice", Kind: value.KindFloat},
		{Name: "l_discount", Kind: value.KindFloat},
		{Name: "l_tax", Kind: value.KindFloat},
		{Name: "l_returnflag", Kind: value.KindString},
		{Name: "l_linestatus", Kind: value.KindString},
		{Name: "l_shipdate", Kind: value.KindDate},
		{Name: "l_commitdate", Kind: value.KindDate},
		{Name: "l_receiptdate", Kind: value.KindDate},
		{Name: "l_shipinstruct", Kind: value.KindString},
		{Name: "l_shipmode", Kind: value.KindString},
		{Name: "l_comment", Kind: value.KindString},
	})
	currentDate := dateDays(1995, time.June, 17)
	for o := 1; o <= nOrders; o++ {
		odate := startDate + int64(rng.Intn(int(endDate-startDate-151*day)))
		nLines := rng.Intn(7) + 1
		total := 0.0
		var lines []relation.Tuple
		status := "O"
		allShipped := true
		for ln := 1; ln <= nLines; ln++ {
			qty := int64(rng.Intn(50) + 1)
			partkey := int64(rng.Intn(nPart) + 1)
			// Extended price follows the spec shape: qty × part price.
			price := float64(qty) * (900 + float64(partkey%200) + float64(rng.Intn(100))/100)
			disc := float64(rng.Intn(11)) / 100
			tax := float64(rng.Intn(9)) / 100
			ship := odate + int64(rng.Intn(121)+1)
			commit := odate + int64(rng.Intn(91)+30)
			receipt := ship + int64(rng.Intn(30)+1)
			rf := "N"
			if receipt <= currentDate {
				if rng.Intn(2) == 0 {
					rf = "R"
				} else {
					rf = "A"
				}
			}
			ls := "O"
			if ship <= currentDate {
				ls = "F"
			} else {
				allShipped = false
			}
			total += price * (1 + tax) * (1 - disc)
			lines = append(lines, relation.Tuple{
				value.NewInt(int64(o)),
				value.NewInt(partkey),
				value.NewInt(int64(rng.Intn(nSupp) + 1)),
				value.NewInt(int64(ln)),
				value.NewInt(qty),
				value.NewFloat(price),
				value.NewFloat(disc),
				value.NewFloat(tax),
				value.NewString(rf),
				value.NewString(ls),
				value.NewDateDays(ship),
				value.NewDateDays(commit),
				value.NewDateDays(receipt),
				value.NewString(instructs[rng.Intn(len(instructs))]),
				value.NewString(shipModes[rng.Intn(len(shipModes))]),
				comment(rng),
			})
			_ = ls
		}
		if allShipped {
			status = "F"
		}
		orders.MustAppend(
			value.NewInt(int64(o)),
			value.NewInt(int64(rng.Intn(nCust)+1)),
			value.NewString(status),
			value.NewFloat(total),
			value.NewDateDays(odate),
			value.NewString(priorities[rng.Intn(len(priorities))]),
			value.NewString(fmt.Sprintf("Clerk#%09d", rng.Intn(1000)+1)),
			value.NewInt(0),
			comment(rng),
		)
		for _, l := range lines {
			if err := lineitem.Append(l); err != nil {
				panic(err)
			}
		}
	}
	return orders, lineitem
}
