package tpch

// The user study kept only TPC-H queries SheetMusiq could express:
// "SheetMusiq does not support nested queries and queries with keyword
// exist and case. This leaves us 10 queries out of the original 22"
// (Sec. VII-A1). This file carries original nested forms of excluded
// queries so the repository can demonstrate exactly where the algebra's
// expressiveness boundary lies: the SQL substrate runs them, the algebra
// cannot.

// ExcludedQuery is a study-excluded TPC-H query in its nested form.
type ExcludedQuery struct {
	TpchQuery string
	Name      string
	Why       string // which unsupported feature excludes it
	SQL       string // runs against the base tables (not the views)
}

// ExcludedQueries returns nested TPC-H queries adapted to the generated
// schema. Constants are scaled for the small default dataset. The first
// five are the study's canonical nested exemplars; coverage.go appends the
// rest of the 22 so the whole benchmark runs end-to-end.
func ExcludedQueries() []ExcludedQuery {
	return append(studyExemplars(), remainingQueries()...)
}

func studyExemplars() []ExcludedQuery {
	return []ExcludedQuery{
		{
			TpchQuery: "Q4", Name: "order-priority-checking",
			Why: "EXISTS subquery",
			SQL: "SELECT o_orderpriority, COUNT(*) AS order_count FROM orders " +
				"WHERE o_orderdate >= DATE '1993-07-01' AND o_orderdate < DATE '1993-10-01' " +
				"AND EXISTS (SELECT l_orderkey FROM lineitem WHERE l_orderkey = o_orderkey AND l_commitdate < l_receiptdate) " +
				"GROUP BY o_orderpriority ORDER BY o_orderpriority",
		},
		{
			TpchQuery: "Q11", Name: "important-stock-original",
			Why: "scalar subquery threshold",
			SQL: "SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) AS val FROM partsupp " +
				"JOIN supplier ON ps_suppkey = s_suppkey JOIN nation ON s_nationkey = n_nationkey " +
				"WHERE n_name = 'GERMANY' GROUP BY ps_partkey " +
				"HAVING SUM(ps_supplycost * ps_availqty) > (" +
				"SELECT SUM(i.ps_supplycost * i.ps_availqty) * 0.05 FROM partsupp AS i " +
				"JOIN supplier AS s2 ON i.ps_suppkey = s2.s_suppkey " +
				"JOIN nation AS n2 ON s2.s_nationkey = n2.n_nationkey WHERE n2.n_name = 'GERMANY') " +
				"ORDER BY val DESC",
		},
		{
			TpchQuery: "Q17", Name: "small-quantity-order",
			Why: "correlated scalar subquery",
			SQL: "SELECT SUM(l_extendedprice) / 7 AS avg_yearly FROM lineitem " +
				"JOIN part ON p_partkey = l_partkey WHERE p_brand = 'Brand#23' " +
				"AND l_quantity < (SELECT 0.5 * AVG(i.l_quantity) FROM lineitem AS i WHERE i.l_partkey = p_partkey)",
		},
		{
			TpchQuery: "Q18", Name: "large-volume-customer-original",
			Why: "IN subquery over a grouped query",
			SQL: "SELECT c_name, o_orderkey, o_totalprice, SUM(l_quantity) AS total_qty " +
				"FROM customer JOIN orders ON c_custkey = o_custkey JOIN lineitem ON o_orderkey = l_orderkey " +
				"WHERE o_orderkey IN (SELECT i.l_orderkey FROM lineitem AS i GROUP BY i.l_orderkey HAVING SUM(i.l_quantity) > 150) " +
				"GROUP BY c_name, o_orderkey, o_totalprice ORDER BY o_totalprice DESC, o_orderkey LIMIT 100",
		},
		{
			TpchQuery: "Q22", Name: "global-sales-opportunity",
			Why: "NOT EXISTS plus a scalar subquery",
			SQL: "SELECT SUBSTR(c_phone, 1, 2) AS cntrycode, COUNT(*) AS numcust, SUM(c_acctbal) AS totacctbal " +
				"FROM customer WHERE SUBSTR(c_phone, 1, 2) IN ('13', '31', '23', '29', '30', '18', '17') " +
				"AND c_acctbal > (SELECT AVG(i.c_acctbal) FROM customer AS i WHERE i.c_acctbal > 0) " +
				"AND NOT EXISTS (SELECT o_orderkey FROM orders WHERE o_custkey = c_custkey) " +
				"GROUP BY SUBSTR(c_phone, 1, 2) ORDER BY cntrycode",
		},
	}
}
