package tpch

import (
	"fmt"
	"strings"
)

// This file completes the TPC-H inventory: the nine queries outside both
// the ten study tasks and the five nested exemplars in excluded.go, plus
// the Coverage map the README's matrix and the differential harness are
// built from. Every one of the 22 queries now runs end-to-end — through
// the algebra for the study's expressible subset, through the SQL
// substrate alone for the rest — with the excluding feature documented on
// each entry.
//
// CASE expressions are spelled with the expression language's IF(cond,
// then, else); constants are scaled for the small default dataset as in
// excluded.go.

// remainingQueries are the TPC-H queries the study dropped that excluded.go
// does not carry. Together with the tasks and the nested exemplars they
// bring the repository to all 22 queries.
func remainingQueries() []ExcludedQuery {
	return []ExcludedQuery{
		{
			TpchQuery: "Q2", Name: "minimum-cost-supplier",
			Why: "correlated scalar subquery (per-part minimum cost)",
			SQL: "SELECT s_acctbal, s_name, n_name, p_partkey, p_mfgr FROM part " +
				"JOIN partsupp ON p_partkey = ps_partkey JOIN supplier ON s_suppkey = ps_suppkey " +
				"JOIN nation ON s_nationkey = n_nationkey JOIN region ON n_regionkey = r_regionkey " +
				"WHERE p_size <= 15 AND p_type LIKE '%BRASS' AND r_name = 'EUROPE' " +
				"AND ps_supplycost = (SELECT MIN(i.ps_supplycost) FROM partsupp AS i " +
				"JOIN supplier AS s2 ON i.ps_suppkey = s2.s_suppkey " +
				"JOIN nation AS n2 ON s2.s_nationkey = n2.n_nationkey " +
				"JOIN region AS r2 ON n2.n_regionkey = r2.r_regionkey " +
				"WHERE i.ps_partkey = p_partkey AND r2.r_name = 'EUROPE') " +
				"ORDER BY s_acctbal DESC, n_name, s_name, p_partkey LIMIT 100",
		},
		{
			TpchQuery: "Q8", Name: "national-market-share",
			Why: "CASE (conditional aggregation, spelled IF here)",
			SQL: "SELECT o_year, SUM(IF(nation = 'BRAZIL', volume, 0.0)) / SUM(volume) AS mkt_share " +
				"FROM (SELECT YEAR(o_orderdate) AS o_year, l_extendedprice * (1 - l_discount) AS volume, " +
				"n2.n_name AS nation FROM part JOIN lineitem ON p_partkey = l_partkey " +
				"JOIN supplier ON s_suppkey = l_suppkey JOIN orders ON l_orderkey = o_orderkey " +
				"JOIN customer ON o_custkey = c_custkey JOIN nation AS n1 ON c_nationkey = n1.n_nationkey " +
				"JOIN region ON n1.n_regionkey = r_regionkey JOIN nation AS n2 ON s_nationkey = n2.n_nationkey " +
				"WHERE r_name = 'AMERICA' AND o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31' " +
				"AND p_type LIKE '%ANODIZED%') AS all_nations " +
				"GROUP BY o_year ORDER BY o_year",
		},
		{
			TpchQuery: "Q12", Name: "shipping-modes-priority",
			Why: "CASE (conditional aggregation, spelled IF here)",
			SQL: "SELECT l_shipmode, " +
				"SUM(IF(o_orderpriority = '1-URGENT' OR o_orderpriority = '2-HIGH', 1, 0)) AS high_line_count, " +
				"SUM(IF(o_orderpriority <> '1-URGENT' AND o_orderpriority <> '2-HIGH', 1, 0)) AS low_line_count " +
				"FROM orders JOIN lineitem ON o_orderkey = l_orderkey " +
				"WHERE l_shipmode IN ('MAIL', 'SHIP') AND l_commitdate < l_receiptdate " +
				"AND l_shipdate < l_commitdate AND l_receiptdate >= DATE '1994-01-01' " +
				"AND l_receiptdate < DATE '1995-01-01' GROUP BY l_shipmode ORDER BY l_shipmode",
		},
		{
			TpchQuery: "Q13", Name: "customer-distribution",
			Why: "LEFT OUTER JOIN (emulated with a correlated COUNT subquery)",
			SQL: "SELECT c_count, COUNT(*) AS custdist FROM (SELECT c_custkey, " +
				"(SELECT COUNT(o.o_orderkey) FROM orders AS o WHERE o.o_custkey = c_custkey " +
				"AND o.o_comment NOT LIKE '%special%requests%') AS c_count FROM customer) AS c_orders " +
				"GROUP BY c_count ORDER BY custdist DESC, c_count DESC",
		},
		{
			TpchQuery: "Q14", Name: "promotion-effect",
			Why: "CASE (conditional aggregation, spelled IF here)",
			SQL: "SELECT 100.0 * SUM(IF(p_type LIKE 'PROMO%', l_extendedprice * (1 - l_discount), 0.0)) / " +
				"SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue " +
				"FROM lineitem JOIN part ON l_partkey = p_partkey " +
				"WHERE l_shipdate >= DATE '1995-09-01' AND l_shipdate < DATE '1995-10-01'",
		},
		{
			TpchQuery: "Q15", Name: "top-supplier",
			Why: "view + scalar max (expressed with a window: MAX() OVER ())",
			SQL: "SELECT s_suppkey, s_name, s_address, s_phone, total_revenue FROM supplier JOIN " +
				"(SELECT supplier_no, total_revenue, MAX(total_revenue) OVER () AS max_revenue FROM " +
				"(SELECT l_suppkey AS supplier_no, SUM(l_extendedprice * (1 - l_discount)) AS total_revenue " +
				"FROM lineitem WHERE l_shipdate >= DATE '1996-01-01' AND l_shipdate < DATE '1996-04-01' " +
				"GROUP BY l_suppkey) AS r) AS w ON s_suppkey = supplier_no " +
				"WHERE total_revenue = max_revenue ORDER BY s_suppkey",
		},
		{
			TpchQuery: "Q16", Name: "parts-supplier-relationship",
			Why: "NOT IN subquery",
			SQL: "SELECT p_brand, p_type, p_size, COUNT(DISTINCT ps_suppkey) AS supplier_cnt " +
				"FROM partsupp JOIN part ON p_partkey = ps_partkey " +
				"WHERE p_brand <> 'Brand#45' AND p_type NOT LIKE 'MEDIUM POLISHED%' " +
				"AND p_size IN (49, 14, 23, 45, 19, 3, 36, 9) " +
				"AND ps_suppkey NOT IN (SELECT s_suppkey FROM supplier WHERE s_comment LIKE '%Customer%Complaints%') " +
				"GROUP BY p_brand, p_type, p_size ORDER BY supplier_cnt DESC, p_brand, p_type, p_size",
		},
		{
			TpchQuery: "Q20", Name: "potential-part-promotion",
			Why: "doubly nested IN with a correlated half-stock threshold",
			SQL: "SELECT s_name, s_address FROM supplier JOIN nation ON s_nationkey = n_nationkey " +
				"WHERE n_name = 'CANADA' AND s_suppkey IN (SELECT ps_suppkey FROM partsupp " +
				"WHERE ps_partkey IN (SELECT p_partkey FROM part WHERE p_name LIKE 'forest%') " +
				"AND ps_availqty > (SELECT 0.5 * SUM(l.l_quantity) FROM lineitem AS l " +
				"WHERE l.l_partkey = ps_partkey AND l.l_suppkey = ps_suppkey " +
				"AND l.l_shipdate >= DATE '1994-01-01' AND l.l_shipdate < DATE '1995-01-01')) " +
				"ORDER BY s_name",
		},
		{
			TpchQuery: "Q21", Name: "suppliers-who-kept-orders-waiting",
			Why: "EXISTS and NOT EXISTS over a second lineitem scan",
			SQL: "SELECT s_name, COUNT(*) AS numwait FROM supplier " +
				"JOIN lineitem ON s_suppkey = l_suppkey JOIN orders ON o_orderkey = l_orderkey " +
				"JOIN nation ON s_nationkey = n_nationkey " +
				"WHERE o_orderstatus = 'F' AND l_receiptdate > l_commitdate AND n_name = 'SAUDI ARABIA' " +
				"AND EXISTS (SELECT i.l_orderkey FROM lineitem AS i WHERE i.l_orderkey = lineitem.l_orderkey " +
				"AND i.l_suppkey <> lineitem.l_suppkey) " +
				"AND NOT EXISTS (SELECT j.l_orderkey FROM lineitem AS j WHERE j.l_orderkey = lineitem.l_orderkey " +
				"AND j.l_suppkey <> lineitem.l_suppkey AND j.l_receiptdate > j.l_commitdate) " +
				"GROUP BY s_name ORDER BY numwait DESC, s_name LIMIT 100",
		},
	}
}

// CoverageMode classifies how a TPC-H query runs in this repository.
type CoverageMode string

// Coverage modes.
const (
	ModeAlgebra   CoverageMode = "algebra"   // direct-manipulation program, differentially checked against SQL
	ModeFlattened CoverageMode = "flattened" // algebra on the study's flattened variant; original nested form is SQL-only
	ModeSQLOnly   CoverageMode = "sql"       // outside the algebra's expressiveness; SQL substrate only
)

// QueryCoverage is one row of the 22-query matrix.
type QueryCoverage struct {
	Query string       // "Q1" .. "Q22"
	Mode  CoverageMode
	Via   string // the task or exemplar name that runs it
	Why   string // for non-algebra modes, the excluding feature
}

// Coverage enumerates all 22 TPC-H queries with how each is exercised. The
// harness test asserts every entry resolves to a runnable task or query.
func Coverage() []QueryCoverage {
	byQuery := map[string]QueryCoverage{}
	for _, task := range Tasks() {
		q := task.TpchQuery
		mode := ModeAlgebra
		if strings.HasSuffix(q, "′") { // the prime marks a study flattening
			q = strings.TrimSuffix(q, "′")
			mode = ModeFlattened
		}
		byQuery[q] = QueryCoverage{Query: q, Mode: mode, Via: "task " + task.Name}
	}
	for _, eq := range ExcludedQueries() {
		if prev, ok := byQuery[eq.TpchQuery]; ok {
			// Flattened in the study: keep the algebra entry, note the
			// nested original rides along as SQL.
			prev.Why = eq.Why
			byQuery[eq.TpchQuery] = prev
			continue
		}
		byQuery[eq.TpchQuery] = QueryCoverage{
			Query: eq.TpchQuery, Mode: ModeSQLOnly, Via: eq.Name, Why: eq.Why}
	}
	out := make([]QueryCoverage, 0, 22)
	for i := 1; i <= 22; i++ {
		q := fmt.Sprintf("Q%d", i)
		if c, ok := byQuery[q]; ok {
			out = append(out, c)
		} else {
			out = append(out, QueryCoverage{Query: q})
		}
	}
	return out
}
