package tpch

import (
	"testing"

	"sheetmusiq/internal/relation"
	"sheetmusiq/internal/sql"
	"sheetmusiq/internal/value"
)

var (
	testTables *Tables
	testDB     *sql.DB
)

func setup(t *testing.T) *sql.DB {
	t.Helper()
	if testDB == nil {
		testTables = Generate(DefaultConfig())
		testDB = BuildDB(testTables)
		if err := BuildViews(testDB); err != nil {
			t.Fatal(err)
		}
	}
	return testDB
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{ScaleFactor: 0.001, Seed: 7})
	b := Generate(Config{ScaleFactor: 0.001, Seed: 7})
	if a.LineItem.Len() != b.LineItem.Len() {
		t.Fatal("generation is not deterministic in cardinality")
	}
	for i := range a.LineItem.Rows {
		if a.LineItem.Rows[i].Key() != b.LineItem.Rows[i].Key() {
			t.Fatalf("row %d differs between identical seeds", i)
		}
	}
	c := Generate(Config{ScaleFactor: 0.001, Seed: 8})
	if c.Orders.Rows[0].Key() == a.Orders.Rows[0].Key() {
		t.Error("different seeds should differ")
	}
}

func TestGenerateCardinalities(t *testing.T) {
	tb := Generate(Config{ScaleFactor: 0.001, Seed: 1})
	if tb.Region.Len() != 5 || tb.Nation.Len() != 25 {
		t.Fatalf("region/nation = %d/%d", tb.Region.Len(), tb.Nation.Len())
	}
	if tb.Supplier.Len() != 10 || tb.Customer.Len() != 150 {
		t.Fatalf("supplier/customer = %d/%d", tb.Supplier.Len(), tb.Customer.Len())
	}
	if tb.Orders.Len() != 1500 {
		t.Fatalf("orders = %d", tb.Orders.Len())
	}
	if tb.LineItem.Len() < tb.Orders.Len() || tb.LineItem.Len() > 7*tb.Orders.Len() {
		t.Fatalf("lineitem = %d for %d orders", tb.LineItem.Len(), tb.Orders.Len())
	}
	if tb.PartSupp.Len() != 4*tb.Part.Len() {
		t.Fatalf("partsupp = %d for %d parts", tb.PartSupp.Len(), tb.Part.Len())
	}
}

func TestReferentialIntegrity(t *testing.T) {
	tb := Generate(Config{ScaleFactor: 0.001, Seed: 1})
	keys := func(r *relation.Relation, col string) map[string]bool {
		i := r.Schema.IndexOf(col)
		out := map[string]bool{}
		for _, row := range r.Rows {
			out[row[i].Key()] = true
		}
		return out
	}
	custKeys := keys(tb.Customer, "c_custkey")
	oc := tb.Orders.Schema.IndexOf("o_custkey")
	for _, row := range tb.Orders.Rows {
		if !custKeys[row[oc].Key()] {
			t.Fatalf("order references missing customer %v", row[oc])
		}
	}
	orderKeys := keys(tb.Orders, "o_orderkey")
	lo := tb.LineItem.Schema.IndexOf("l_orderkey")
	for _, row := range tb.LineItem.Rows {
		if !orderKeys[row[lo].Key()] {
			t.Fatalf("lineitem references missing order %v", row[lo])
		}
	}
	nationKeys := keys(tb.Nation, "n_nationkey")
	sn := tb.Supplier.Schema.IndexOf("s_nationkey")
	for _, row := range tb.Supplier.Rows {
		if !nationKeys[row[sn].Key()] {
			t.Fatalf("supplier references missing nation %v", row[sn])
		}
	}
}

func TestDateRanges(t *testing.T) {
	tb := Generate(Config{ScaleFactor: 0.001, Seed: 1})
	oi := tb.Orders.Schema.IndexOf("o_orderdate")
	for _, row := range tb.Orders.Rows {
		d := row[oi].DateDays()
		if d < startDate || d > endDate {
			t.Fatalf("order date %v out of the 1992-1998 window", row[oi])
		}
	}
	si := tb.LineItem.Schema.IndexOf("l_shipdate")
	ri := tb.LineItem.Schema.IndexOf("l_receiptdate")
	for _, row := range tb.LineItem.Rows {
		if row[ri].DateDays() < row[si].DateDays() {
			t.Fatal("receipt before ship date")
		}
	}
}

func TestViewsBuild(t *testing.T) {
	db := setup(t)
	for _, task := range Tasks() {
		v, ok := db.Table(task.ViewName)
		if !ok {
			t.Fatalf("task %d view %q missing", task.ID, task.ViewName)
		}
		if v.Len() == 0 {
			t.Fatalf("task %d view %q is empty", task.ID, task.ViewName)
		}
	}
}

func TestTenTasks(t *testing.T) {
	if len(Tasks()) != 10 {
		t.Fatalf("the study used 10 queries, got %d", len(Tasks()))
	}
	seen := map[string]bool{}
	for _, task := range Tasks() {
		if task.Query == "" || task.Description == "" || len(task.Steps) == 0 {
			t.Fatalf("task %d incomplete", task.ID)
		}
		if seen[task.TpchQuery] {
			t.Fatalf("duplicate source query %s", task.TpchQuery)
		}
		seen[task.TpchQuery] = true
	}
}

// collapse reduces an evaluated algebra sheet to one row per finest group
// over the given columns, sorted by the group columns.
func collapse(t *testing.T, table *relation.Relation, cols []string) *relation.Relation {
	t.Helper()
	proj, err := table.Project(cols)
	if err != nil {
		t.Fatal(err)
	}
	out := proj.Distinct()
	var keys []relation.SortKey
	for _, c := range cols {
		keys = append(keys, relation.SortKey{Column: c})
	}
	if err := out.Sort(keys); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestTasksAlgebraMatchesSQL runs every task twice — once as the SheetMusiq
// algebra program, once as the reference SQL — and requires identical
// group/aggregate values.
func TestTasksAlgebraMatchesSQL(t *testing.T) {
	db := setup(t)
	for _, task := range Tasks() {
		task := task
		t.Run(task.Name, func(t *testing.T) {
			sheet, err := task.Run(db)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sheet.Evaluate()
			if err != nil {
				t.Fatal(err)
			}
			var algebraCols []string
			algebraCols = append(algebraCols, task.GroupCols...)
			for _, st := range task.Steps {
				if st.Kind == StepAggregate {
					algebraCols = append(algebraCols, st.As)
				}
			}
			got := collapse(t, res.Table, algebraCols)

			want, err := db.Query(task.Query)
			if err != nil {
				t.Fatalf("reference SQL: %v", err)
			}
			wantSorted := want.Clone()
			var keys []relation.SortKey
			for i := range task.GroupCols {
				keys = append(keys, relation.SortKey{Column: want.Schema[i].Name})
			}
			if len(keys) > 0 {
				if err := wantSorted.Sort(keys); err != nil {
					t.Fatal(err)
				}
			}
			if got.Len() != wantSorted.Len() {
				t.Fatalf("algebra %d rows vs SQL %d rows\nalgebra:\n%s\nsql:\n%s",
					got.Len(), wantSorted.Len(), got.String(), wantSorted.String())
			}
			for i := range got.Rows {
				for j := range got.Rows[i] {
					if !value.Equal(got.Rows[i][j], wantSorted.Rows[i][j]) {
						t.Fatalf("row %d col %d: algebra %v vs SQL %v", i, j,
							got.Rows[i][j], wantSorted.Rows[i][j])
					}
				}
			}
		})
	}
}

func TestKeyTasksNonEmpty(t *testing.T) {
	db := setup(t)
	for _, id := range []int{1, 4, 8, 10} {
		task := Tasks()[id-1]
		r, err := db.Query(task.Query)
		if err != nil {
			t.Fatal(err)
		}
		if r.Len() == 0 {
			t.Errorf("task %d (%s) returned no rows at the default scale", id, task.Name)
		}
	}
}
