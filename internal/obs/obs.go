// Package obs is the dependency-free observability substrate of the
// system: a metrics registry (atomic counters, gauges, and fixed-bucket
// latency histograms with snapshot/merge) plus lightweight request tracing
// (per-request IDs and span timings threaded via context.Context).
//
// Everything here is stdlib-only and safe for concurrent use. The hot
// layers — the HTTP server, the engine command surface, and the parallel
// evaluation pipeline — record at stage granularity (one increment per
// request, per operator, per chunked pass), never per row, so the
// instrumented build stays within a few percent of the bare one
// (BenchmarkInstrumentedEval pins the overhead).
//
// Metric names are dotted paths: "server.requests.op",
// "engine.op_seconds.select", "core.eval.merge_fallback". A process
// normally uses the package-level Default registry; tests may construct
// private registries with NewRegistry.
package obs

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"
)

// enabled gates every recording call. It exists so benchmarks can measure
// the bare (uninstrumented) cost of a workload in the same binary; servers
// leave it on.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled turns recording on or off process-wide. With recording off,
// Counter/Gauge/Histogram mutations and StartTimer become no-ops; reads
// still work. Intended for benchmarks, not for request-time toggling.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether recording is on.
func Enabled() bool { return enabled.Load() }

// StartTimer returns the current time when recording is enabled and the
// zero time otherwise, so disabled builds skip the clock read too. Pair it
// with Histogram.Since.
func StartTimer() time.Time {
	if !enabled.Load() {
		return time.Time{}
	}
	return time.Now()
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ n atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d (recording must be enabled).
func (c *Counter) Add(d int64) {
	if !enabled.Load() {
		return
	}
	c.n.Add(d)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Gauge is an atomically updated instantaneous value (e.g. in-flight
// requests, live sessions).
type Gauge struct{ n atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if !enabled.Load() {
		return
	}
	g.n.Store(v)
}

// Add adds d (negative to decrement).
func (g *Gauge) Add(d int64) {
	if !enabled.Load() {
		return
	}
	g.n.Add(d)
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.n.Load() }

// numBounds is the number of finite histogram bounds; each Histogram has
// one extra +Inf overflow bucket.
const numBounds = 15

// DefaultBuckets are the histogram upper bounds: 1µs to 10s in a 1-5-10
// ladder, plus an implicit +Inf overflow bucket. They cover everything from
// a single compiled-predicate pass to a cold TPC-H generation.
var DefaultBuckets = [numBounds]time.Duration{
	time.Microsecond,
	5 * time.Microsecond,
	10 * time.Microsecond,
	50 * time.Microsecond,
	100 * time.Microsecond,
	500 * time.Microsecond,
	time.Millisecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	500 * time.Millisecond,
	time.Second,
	5 * time.Second,
	10 * time.Second,
}

// Histogram is a fixed-bucket latency histogram: one atomic count per
// DefaultBuckets bound plus an overflow bucket, and exact (integer
// nanosecond) count/sum so snapshots merge associatively.
type Histogram struct {
	counts [numBounds + 1]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if !enabled.Load() {
		return
	}
	if d < 0 {
		d = 0
	}
	h.counts[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Since records the time elapsed from a StartTimer call. A zero start
// (recording was disabled at StartTimer) records nothing, so a toggle
// mid-request cannot record a garbage duration.
func (h *Histogram) Since(start time.Time) {
	if start.IsZero() {
		return
	}
	h.Observe(time.Since(start))
}

// bucketIndex finds the first bound >= d; len(DefaultBuckets) is overflow.
func bucketIndex(d time.Duration) int {
	lo, hi := 0, len(DefaultBuckets)
	for lo < hi {
		mid := (lo + hi) / 2
		if d <= DefaultBuckets[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:    h.count.Load(),
		SumNanos: h.sum.Load(),
		Buckets:  make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		s.Buckets[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram. Counts and the
// nanosecond sum are exact integers, so Merge is associative and
// commutative: merging per-shard snapshots in any order yields the same
// totals.
type HistogramSnapshot struct {
	Count    int64   `json:"count"`
	SumNanos int64   `json:"sum_ns"`
	Buckets  []int64 `json:"buckets"` // one per DefaultBuckets bound, then +Inf
}

// Merge folds o into s.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	s.Count += o.Count
	s.SumNanos += o.SumNanos
	if s.Buckets == nil {
		s.Buckets = make([]int64, len(DefaultBuckets)+1)
	}
	for i := range o.Buckets {
		if i < len(s.Buckets) {
			s.Buckets[i] += o.Buckets[i]
		}
	}
}

// Mean returns the average observed duration (0 when empty).
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNanos / s.Count)
}

// MarshalJSON renders the snapshot with human-readable bucket bounds:
// {"count":N,"sum_ns":S,"mean_ns":M,"buckets":{"<=1ms":n,...,"+Inf":n}}.
// Empty buckets are omitted; key order follows the bound ladder via an
// ordered object built by hand (encoding/json maps would sort
// lexically, putting "<=10ms" before "<=1ms").
func (s HistogramSnapshot) MarshalJSON() ([]byte, error) {
	type bucket struct {
		Le    string `json:"le"`
		Count int64  `json:"count"`
	}
	var buckets []bucket
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		le := "+Inf"
		if i < len(DefaultBuckets) {
			le = DefaultBuckets[i].String()
		}
		buckets = append(buckets, bucket{Le: le, Count: n})
	}
	return json.Marshal(struct {
		Count    int64    `json:"count"`
		SumNanos int64    `json:"sum_ns"`
		MeanNano int64    `json:"mean_ns"`
		Buckets  []bucket `json:"buckets,omitempty"`
	}{s.Count, s.SumNanos, int64(s.Mean()), buckets})
}

// UnmarshalJSON inverts MarshalJSON, so a scraped /v1/metrics document
// round-trips into Snapshot values that Merge can fold across shards.
func (s *HistogramSnapshot) UnmarshalJSON(data []byte) error {
	var wire struct {
		Count    int64 `json:"count"`
		SumNanos int64 `json:"sum_ns"`
		Buckets  []struct {
			Le    string `json:"le"`
			Count int64  `json:"count"`
		} `json:"buckets"`
	}
	if err := json.Unmarshal(data, &wire); err != nil {
		return err
	}
	s.Count = wire.Count
	s.SumNanos = wire.SumNanos
	s.Buckets = make([]int64, numBounds+1)
	for _, b := range wire.Buckets {
		i := numBounds // "+Inf" and unknown bounds land in overflow
		if d, err := time.ParseDuration(b.Le); err == nil {
			i = bucketIndex(d)
		}
		s.Buckets[i] += b.Count
	}
	return nil
}

// Registry is a named-metric table. Lookups get-or-create under an RWMutex;
// callers on hot paths resolve their metrics once (package-level vars) and
// then touch only the atomics.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Default is the process-wide registry every built-in instrumentation site
// records into and GET /v1/metrics serves.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = &Histogram{}
	r.hists[name] = h
	return h
}

// Snapshot is a point-in-time copy of a whole registry. Maps marshal with
// sorted keys under encoding/json, so two snapshots of identical state
// produce byte-identical JSON (the determinism the metrics endpoint and its
// tests rely on).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every metric currently in the registry.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Merge folds o into s: counters, gauges and histograms add (gauges are
// additive quantities like in-flight counts, so summing shards is the
// meaningful combination). Merge is associative and commutative.
func (s *Snapshot) Merge(o Snapshot) {
	if s.Counters == nil {
		s.Counters = map[string]int64{}
	}
	if s.Gauges == nil {
		s.Gauges = map[string]int64{}
	}
	if s.Histograms == nil {
		s.Histograms = map[string]HistogramSnapshot{}
	}
	for name, v := range o.Counters {
		s.Counters[name] += v
	}
	for name, v := range o.Gauges {
		s.Gauges[name] += v
	}
	for name, h := range o.Histograms {
		cur := s.Histograms[name]
		cur.Merge(h)
		s.Histograms[name] = cur
	}
}

// Counter delta helpers for tests: CounterValue reads a counter without
// creating it when absent.
func (r *Registry) CounterValue(name string) int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if c, ok := r.counters[name]; ok {
		return c.Value()
	}
	return 0
}
