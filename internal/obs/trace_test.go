package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRequestIDRoundTrip(t *testing.T) {
	ctx := context.Background()
	if RequestID(ctx) != "" {
		t.Fatal("empty context should have no request id")
	}
	ctx = WithRequestID(ctx, "abc123")
	if got := RequestID(ctx); got != "abc123" {
		t.Fatalf("RequestID = %q", got)
	}
}

func TestNewRequestIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewRequestID()
		if id == "" || seen[id] {
			t.Fatalf("duplicate or empty id %q", id)
		}
		seen[id] = true
	}
}

func TestSpansRecordOnTrace(t *testing.T) {
	tr := NewTrace("rid")
	ctx := WithTrace(context.Background(), tr)

	sp := StartSpan(ctx, "work")
	time.Sleep(time.Millisecond)
	if d := sp.End(); d <= 0 {
		t.Fatalf("span duration = %v", d)
	}

	var h Histogram
	StartSpan(ctx, "timed").WithHistogram(&h).End()

	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Name != "work" || spans[1].Name != "timed" {
		t.Fatalf("spans = %+v", spans)
	}
	if h.Snapshot().Count != 1 {
		t.Fatal("WithHistogram did not record")
	}
	sum := tr.Summary()
	if !strings.Contains(sum, "work=") || !strings.Contains(sum, "timed=") {
		t.Fatalf("summary = %q", sum)
	}
}

// TestSpanWithoutTrace: spans on a bare context are inert, not panics.
func TestSpanWithoutTrace(t *testing.T) {
	sp := StartSpan(context.Background(), "orphan")
	if d := sp.End(); d != 0 {
		t.Fatalf("orphan span duration = %v", d)
	}
}

// TestTraceConcurrent records spans from many goroutines; under -race this
// is the trace's data-race check.
func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace("rid")
	ctx := WithTrace(context.Background(), tr)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				StartSpan(ctx, "s").End()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 800 {
		t.Fatalf("spans = %d, want 800", got)
	}
}
