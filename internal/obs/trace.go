package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Request tracing: a per-request ID plus the timed spans recorded while
// serving it, both carried through context.Context. The server's middleware
// opens a trace per request; handlers (and anything they call with the
// request context) wrap interesting sections in StartSpan, and the
// middleware logs the assembled span summary alongside the request line.

type ctxKey int

const (
	ridKey ctxKey = iota
	traceKey
)

// ridFallback distinguishes request IDs when the random source fails.
var ridFallback atomic.Int64

// NewRequestID returns a fresh 16-hex-character request identifier.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("req-%d", ridFallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// WithRequestID attaches a request ID to the context.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ridKey, id)
}

// RequestID returns the context's request ID, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(ridKey).(string)
	return id
}

// SpanRecord is one finished span.
type SpanRecord struct {
	Name     string        `json:"name"`
	Duration time.Duration `json:"duration_ns"`
}

// Trace accumulates the spans of one request. Safe for concurrent use: a
// handler may fan work out and record spans from several goroutines.
type Trace struct {
	ID string

	mu    sync.Mutex
	spans []SpanRecord
}

// NewTrace starts an empty trace with the given request ID.
func NewTrace(id string) *Trace { return &Trace{ID: id} }

// WithTrace attaches a trace to the context.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey, t)
}

// TraceFrom returns the context's trace, or nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey).(*Trace)
	return t
}

// add appends a finished span.
func (t *Trace) add(rec SpanRecord) {
	t.mu.Lock()
	t.spans = append(t.spans, rec)
	t.mu.Unlock()
}

// Spans returns a copy of the finished spans in completion order.
func (t *Trace) Spans() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRecord(nil), t.spans...)
}

// Summary renders the spans as "name=dur name=dur …" for log lines; empty
// when no spans were recorded.
func (t *Trace) Summary() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) == 0 {
		return ""
	}
	var b strings.Builder
	for i, s := range t.spans {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(s.Name)
		b.WriteByte('=')
		b.WriteString(s.Duration.Round(time.Microsecond).String())
	}
	return b.String()
}

// Span is an in-flight timed section.
type Span struct {
	name  string
	start time.Time
	trace *Trace
	hist  *Histogram
}

// StartSpan opens a span named name on the context's trace. It is safe to
// call with any context: without a trace (or with recording disabled) the
// span is inert and End is a no-op.
func StartSpan(ctx context.Context, name string) *Span {
	t := TraceFrom(ctx)
	if t == nil || !enabled.Load() {
		return &Span{}
	}
	return &Span{name: name, start: time.Now(), trace: t}
}

// WithHistogram also records the span's duration into h at End.
func (s *Span) WithHistogram(h *Histogram) *Span {
	s.hist = h
	return s
}

// End finishes the span, recording it on the trace (and the attached
// histogram, if any). It returns the span duration.
func (s *Span) End() time.Duration {
	if s.trace == nil {
		return 0
	}
	d := time.Since(s.start)
	s.trace.add(SpanRecord{Name: s.name, Duration: d})
	if s.hist != nil {
		s.hist.Observe(d)
	}
	return d
}
