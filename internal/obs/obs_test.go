package obs

import (
	"encoding/json"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketBoundaries pins the bucket-assignment rule: a duration
// lands in the first bucket whose bound is >= it (bounds are inclusive),
// and anything past the last bound lands in the overflow bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Nanosecond, 0},
		{time.Microsecond, 0},                  // exactly on the first bound
		{time.Microsecond + 1, 1},              // just past it
		{5 * time.Microsecond, 1},              // on the second bound
		{time.Millisecond, 6},                  // on the 1ms bound
		{3 * time.Millisecond, 7},              // inside (1ms, 5ms]
		{10 * time.Second, len(DefaultBuckets) - 1},
		{11 * time.Second, len(DefaultBuckets)}, // overflow
		{time.Hour, len(DefaultBuckets)},
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
	}

	var h Histogram
	h.Observe(time.Microsecond)       // bucket 0
	h.Observe(3 * time.Millisecond)   // bucket 7
	h.Observe(time.Hour)              // overflow
	h.Observe(-time.Second)           // clamped to 0 → bucket 0
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	if s.Buckets[0] != 2 || s.Buckets[7] != 1 || s.Buckets[len(DefaultBuckets)] != 1 {
		t.Fatalf("bucket counts = %v", s.Buckets)
	}
	wantSum := int64(time.Microsecond + 3*time.Millisecond + time.Hour)
	if s.SumNanos != wantSum {
		t.Fatalf("sum = %d, want %d", s.SumNanos, wantSum)
	}
}

// TestConcurrentCounters hammers one counter, one gauge and one histogram
// from many goroutines; run under -race this doubles as the data-race
// check, and the totals must come out exact.
func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c")
			g := r.Gauge("g")
			h := r.Histogram("h")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("g").Value(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	if got := r.Histogram("h").Snapshot().Count; got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestSnapshotDeterminism: with no writes in between, two snapshots are
// deeply equal and marshal to byte-identical JSON.
func TestSnapshotDeterminism(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.b").Add(3)
	r.Counter("a.a").Add(1)
	r.Gauge("z").Set(7)
	r.Histogram("lat").Observe(2 * time.Millisecond)
	r.Histogram("lat").Observe(20 * time.Millisecond)

	s1, s2 := r.Snapshot(), r.Snapshot()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("snapshots differ:\n%v\n%v", s1, s2)
	}
	j1, err := json.Marshal(s1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(s2)
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Fatalf("JSON differs:\n%s\n%s", j1, j2)
	}
	// A snapshot is a copy: later writes must not leak into it.
	r.Counter("a.b").Add(10)
	r.Histogram("lat").Observe(time.Second)
	if s1.Counters["a.b"] != 3 || s1.Histograms["lat"].Count != 2 {
		t.Fatalf("snapshot mutated by later writes: %v", s1)
	}
}

// TestMergeAssociativity: merging snapshots is associative (and the empty
// snapshot is an identity), so per-shard snapshots can fold in any
// grouping.
func TestMergeAssociativity(t *testing.T) {
	build := func(c int64, d time.Duration) Snapshot {
		r := NewRegistry()
		r.Counter("n").Add(c)
		r.Gauge("g").Add(c)
		r.Histogram("h").Observe(d)
		return r.Snapshot()
	}
	a := build(1, time.Microsecond)
	b := build(10, time.Millisecond)
	c := build(100, time.Second)

	// (a ⊕ b) ⊕ c
	left := build(0, 0)
	left.Counters, left.Gauges, left.Histograms = map[string]int64{}, map[string]int64{}, map[string]HistogramSnapshot{}
	left.Merge(a)
	left.Merge(b)
	left.Merge(c)

	// a ⊕ (b ⊕ c)
	bc := Snapshot{}
	bc.Merge(b)
	bc.Merge(c)
	right := Snapshot{}
	right.Merge(a)
	right.Merge(bc)

	if left.Counters["n"] != 111 || right.Counters["n"] != 111 {
		t.Fatalf("counter totals: left %d right %d", left.Counters["n"], right.Counters["n"])
	}
	lh, rh := left.Histograms["h"], right.Histograms["h"]
	if lh.Count != 3 || rh.Count != 3 || lh.SumNanos != rh.SumNanos {
		t.Fatalf("histogram totals differ: %+v vs %+v", lh, rh)
	}
	if !reflect.DeepEqual(lh.Buckets, rh.Buckets) {
		t.Fatalf("bucket vectors differ: %v vs %v", lh.Buckets, rh.Buckets)
	}
	if left.Gauges["g"] != right.Gauges["g"] {
		t.Fatalf("gauge totals differ: %d vs %d", left.Gauges["g"], right.Gauges["g"])
	}
}

// TestSetEnabled: with recording off every mutation is a no-op, and
// StartTimer hands back a zero start that Since ignores.
func TestSetEnabled(t *testing.T) {
	r := NewRegistry()
	SetEnabled(false)
	defer SetEnabled(true)
	r.Counter("c").Inc()
	r.Gauge("g").Set(5)
	r.Histogram("h").Observe(time.Second)
	start := StartTimer()
	if !start.IsZero() {
		t.Fatal("StartTimer should return zero time when disabled")
	}
	r.Histogram("h").Since(start)
	SetEnabled(true)
	r.Histogram("h").Since(start) // zero start still ignored after re-enable
	if r.Counter("c").Value() != 0 || r.Gauge("g").Value() != 0 || r.Histogram("h").Snapshot().Count != 0 {
		t.Fatalf("disabled recording leaked: %+v", r.Snapshot())
	}
}

// TestCounterValue reads absent counters without creating them.
func TestCounterValue(t *testing.T) {
	r := NewRegistry()
	if v := r.CounterValue("missing"); v != 0 {
		t.Fatalf("missing counter = %d", v)
	}
	if len(r.Snapshot().Counters) != 0 {
		t.Fatal("CounterValue must not create the counter")
	}
	r.Counter("present").Add(4)
	if v := r.CounterValue("present"); v != 4 {
		t.Fatalf("present counter = %d", v)
	}
}
