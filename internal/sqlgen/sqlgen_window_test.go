package sqlgen

import (
	"math/rand"
	"strings"
	"testing"

	"sheetmusiq/internal/core"
	"sheetmusiq/internal/dataset"
	"sheetmusiq/internal/relation"
)

// TestGenerateWindowEveryKind round-trips one ω column per window function:
// the generated SQL must contain the OVER clause and reproduce the algebra's
// table bit-for-bit. This is the per-kind coverage gate for the generator.
func TestGenerateWindowEveryKind(t *testing.T) {
	order := []core.SortKey{{Column: "Price", Dir: core.Asc}, {Column: "ID", Dir: core.Asc}}
	cases := []struct {
		fn    relation.WindowFunc
		input string
		frame *relation.Frame
	}{
		{relation.WinRank, "", nil},
		{relation.WinDenseRank, "", nil},
		{relation.WinRowNumber, "", nil},
		{relation.WinSum, "Price", nil},
		{relation.WinAvg, "Price", nil},
		{relation.WinMin, "Mileage", nil},
		{relation.WinMax, "Mileage", nil},
		{relation.WinCount, "", nil},
		{relation.WinSum, "Price", &relation.Frame{
			Lo: relation.FrameBound{Kind: relation.BoundPreceding, Offset: 2},
			Hi: relation.FrameBound{Kind: relation.BoundCurrentRow},
		}},
		{relation.WinAvg, "Mileage", &relation.Frame{
			Lo: relation.FrameBound{Kind: relation.BoundPreceding, Offset: 1},
			Hi: relation.FrameBound{Kind: relation.BoundFollowing, Offset: 1},
		}},
	}
	for _, tc := range cases {
		s := core.New(dataset.RandomCars(64, 7))
		if _, err := s.WindowAs("W", tc.fn, tc.input, []string{"Model"}, order, tc.frame); err != nil {
			t.Fatalf("%s: %v", tc.fn, err)
		}
		stmt := roundTrip(t, s)
		if !strings.Contains(stmt, string(tc.fn)+"(") || !strings.Contains(stmt, "OVER (") {
			t.Errorf("%s: generated SQL lacks the OVER clause: %q", tc.fn, stmt)
		}
	}
}

func TestGenerateWindowTopKPerGroup(t *testing.T) {
	// The study's top-k idiom: ω then a depth-1 σ over the rank.
	s := core.New(dataset.UsedCars())
	if _, err := s.WindowAs("R", relation.WinRank, "", []string{"Model"},
		[]core.SortKey{{Column: "Price", Dir: core.Asc}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Select("R <= 2"); err != nil {
		t.Fatal(err)
	}
	roundTrip(t, s)
}

func TestGenerateWindowOverAggregate(t *testing.T) {
	// ω ranking by a depth-1 η column lands at depth 2 and must be emitted
	// after the aggregate join.
	s := core.New(dataset.UsedCars())
	if err := s.GroupBy(core.Asc, "Model"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AggregateAs("AvgP", relation.AggAvg, "Price", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WindowAs("R", relation.WinRank, "", nil,
		[]core.SortKey{{Column: "AvgP", Dir: core.Desc}, {Column: "ID", Dir: core.Asc}}, nil); err != nil {
		t.Fatal(err)
	}
	roundTrip(t, s)
}

func TestGenerateFormulaOverWindow(t *testing.T) {
	// θ referencing ω: the formula wrap must come after the window wrap.
	s := core.New(dataset.UsedCars())
	if _, err := s.WindowAs("Run", relation.WinSum, "Price", []string{"Model"},
		[]core.SortKey{{Column: "Price", Dir: core.Asc}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Formula("Share", "Price * 100 / Run"); err != nil {
		t.Fatal(err)
	}
	roundTrip(t, s)
}

func TestGenerateWindowAfterSelection(t *testing.T) {
	// Depth-0 σ runs before the depth-1 ω: the rank is over surviving rows.
	s := core.New(dataset.UsedCars())
	if _, err := s.Select("Price > 14000"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WindowAs("R", relation.WinRank, "", []string{"Model"},
		[]core.SortKey{{Column: "Price", Dir: core.Asc}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Sort("Mileage", core.Asc); err != nil {
		t.Fatal(err)
	}
	roundTrip(t, s)
}

// TestRandomizedWindowEquivalence mixes ω into random σ/θ/λ states and
// requires the SQL path to agree on every trial.
func TestRandomizedWindowEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	funcs := []relation.WindowFunc{
		relation.WinRank, relation.WinDenseRank, relation.WinRowNumber,
		relation.WinSum, relation.WinAvg, relation.WinMin, relation.WinMax,
		relation.WinCount,
	}
	for trial := 0; trial < 25; trial++ {
		s := core.New(dataset.RandomCars(60, int64(100+trial)))
		fn := funcs[rng.Intn(len(funcs))]
		input := ""
		if fn.NeedsArg() {
			input = []string{"Price", "Mileage"}[rng.Intn(2)]
		}
		var part []string
		if rng.Intn(3) > 0 {
			part = []string{"Model"}
		}
		order := []core.SortKey{{Column: "Price", Dir: core.Dir(rng.Intn(2) == 0)}, {Column: "ID", Dir: core.Asc}}
		var frame *relation.Frame
		if !fn.Ranking() && rng.Intn(3) == 0 {
			frame = &relation.Frame{
				Lo: relation.FrameBound{Kind: relation.BoundPreceding, Offset: int64(1 + rng.Intn(3))},
				Hi: relation.FrameBound{Kind: relation.BoundCurrentRow},
			}
		}
		if rng.Intn(2) == 0 {
			if _, err := s.Select("Price < 30000"); err != nil {
				t.Fatal(err)
			}
		}
		name, err := s.WindowAs("", fn, input, part, order, frame)
		if err != nil {
			t.Fatalf("trial %d %s: %v", trial, fn, err)
		}
		if fn.Ranking() && rng.Intn(2) == 0 {
			if _, err := s.Select(name + " <= 5"); err != nil {
				t.Fatal(err)
			}
		}
		if rng.Intn(2) == 0 {
			if err := s.Sort("Mileage", core.Dir(rng.Intn(2) == 0)); err != nil {
				t.Fatal(err)
			}
		}
		roundTrip(t, s)
	}
}
