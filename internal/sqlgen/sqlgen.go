// Package sqlgen compiles a spreadsheet's query state into SQL text, the
// strategy the paper's SheetMusiq prototype used against PostgreSQL
// (Sec. VI). The generated statement, executed by internal/sql against the
// spreadsheet's base relation, reproduces the algebra's Evaluate output —
// including row order — which the property tests in this package assert.
//
// Generation mirrors the staged evaluation semantics of internal/core:
//
//	stage 0   SELECT base columns [DISTINCT recorded set]
//	          + one wrapping SELECT per depth-0 formula column
//	          + WHERE with the depth-0 predicates
//	stage d   a GROUP BY subquery per grouping basis joined back to carry
//	          the depth-d aggregate columns, then depth-d formulas and the
//	          depth-d predicates
//	final     projection of the visible columns, ORDER BY the grouping
//	          emulation (Sec. II-A) plus the finest-level keys
//
// Known restriction (documented in DESIGN.md): when duplicate elimination is
// active, every other operator must confine itself to the recorded DE
// columns and computed columns, because SQL's DISTINCT cannot express "keep
// the first full row per recorded-key group".
package sqlgen

import (
	"fmt"
	"strings"

	"sheetmusiq/internal/core"
	"sheetmusiq/internal/expr"
	"sheetmusiq/internal/relation"
)

// Plan is the staged translation of one query state.
type Plan struct {
	// SQL is the complete generated statement.
	SQL string
	// Stages lists each intermediate subquery, outermost last, for
	// explanation displays.
	Stages []string
}

// Generate compiles the spreadsheet's current query state to SQL.
func Generate(s *core.Spreadsheet) (string, error) {
	p, err := Compile(s)
	if err != nil {
		return "", err
	}
	return p.SQL, nil
}

// Compile is Generate with the intermediate stages retained.
func Compile(s *core.Spreadsheet) (*Plan, error) {
	g := &generator{sheet: s}
	return g.run()
}

type generator struct {
	sheet *core.Spreadsheet
	plan  Plan
	// cur is the current stage as a FROM-able fragment (a table name or a
	// parenthesised subquery), and cols the real columns it produces.
	cur    string
	isBase bool
	cols   []string
	alias  int
}

func (g *generator) nextAlias() string {
	g.alias++
	return fmt.Sprintf("t%d", g.alias)
}

// from renders cur as a FROM source.
func (g *generator) from() string {
	if g.isBase {
		return quote(g.cur)
	}
	return "(" + g.cur + ") AS " + g.nextAlias()
}

// push replaces the current stage.
func (g *generator) push(sql string) {
	g.cur = sql
	g.isBase = false
	g.plan.Stages = append(g.plan.Stages, sql)
}

func quote(name string) string {
	plain := name != ""
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				plain = false
			}
		default:
			plain = false
		}
	}
	if plain {
		return name
	}
	return `"` + strings.ReplaceAll(name, `"`, `""`) + `"`
}

// depths classifies computed columns and selections by aggregate depth,
// mirroring core's stratification.
type depths struct {
	col map[string]int
	max int
}

func (g *generator) computeDepths(computed []core.ComputedColumn, sels []core.Selection) (*depths, []int, error) {
	d := &depths{col: map[string]int{}}
	byName := map[string]*core.ComputedColumn{}
	for i := range computed {
		byName[strings.ToLower(computed[i].Name)] = &computed[i]
	}
	var colDepth func(name string, seen map[string]bool) (int, error)
	colDepth = func(name string, seen map[string]bool) (int, error) {
		key := strings.ToLower(name)
		if dep, ok := d.col[key]; ok {
			return dep, nil
		}
		c, ok := byName[key]
		if !ok {
			if g.sheet.Base().Schema.Has(name) {
				return 0, nil
			}
			return 0, fmt.Errorf("sqlgen: unknown column %q", name)
		}
		if seen[key] {
			return 0, fmt.Errorf("sqlgen: computed column cycle through %q", name)
		}
		seen[key] = true
		defer delete(seen, key)
		var dep int
		switch c.Kind {
		case core.KindAggregate:
			in, err := colDepth(c.Input, seen)
			if err != nil {
				return 0, err
			}
			dep = in + 1
		case core.KindWindow:
			// Like aggregates, ω sits one stratum above its deepest input
			// (core.aggDepth): it ranks the rows the shallower stages left.
			for _, ref := range windowColumns(c.Win) {
				rd, err := colDepth(ref, seen)
				if err != nil {
					return 0, err
				}
				if rd > dep {
					dep = rd
				}
			}
			dep++
		default:
			for _, ref := range expr.Columns(c.Formula) {
				rd, err := colDepth(ref, seen)
				if err != nil {
					return 0, err
				}
				if rd > dep {
					dep = rd
				}
			}
		}
		d.col[key] = dep
		if dep > d.max {
			d.max = dep
		}
		return dep, nil
	}
	for _, c := range computed {
		if _, err := colDepth(c.Name, map[string]bool{}); err != nil {
			return nil, nil, err
		}
	}
	selDepth := make([]int, len(sels))
	for i, sel := range sels {
		dep := 0
		for _, ref := range expr.Columns(sel.Pred) {
			rd, err := colDepth(ref, map[string]bool{})
			if err != nil {
				return nil, nil, err
			}
			if rd > dep {
				dep = rd
			}
		}
		selDepth[i] = dep
		if dep > d.max {
			d.max = dep
		}
	}
	return d, selDepth, nil
}

func (g *generator) run() (*Plan, error) {
	s := g.sheet
	base := s.Base()
	g.cur = base.Name
	g.isBase = true
	g.cols = append(g.cols, base.Schema.Names()...)

	computed := s.ComputedColumns()
	sels := s.Selections("")
	dep, selDepth, err := g.computeDepths(computed, sels)
	if err != nil {
		return nil, err
	}

	distinct := s.DistinctColumns()
	if len(distinct) > 0 {
		if err := g.checkDistinctRestriction(distinct, computed, sels); err != nil {
			return nil, err
		}
		var list []string
		for _, c := range distinct {
			list = append(list, quote(c))
		}
		g.push("SELECT DISTINCT " + strings.Join(list, ", ") + " FROM " + g.from())
		g.cols = append([]string(nil), distinct...)
	}

	for d := 0; d <= dep.max; d++ {
		// Aggregate columns of depth d (d ≥ 1), grouped by shared basis.
		if d > 0 {
			if err := g.emitAggregates(computed, dep, d); err != nil {
				return nil, err
			}
		}
		// Window columns of depth d (d ≥ 1), one wrap each, after the
		// depth-d aggregates (a window may rank by them) and before the
		// formulas (which may reference the window).
		for _, c := range computed {
			if c.Kind != core.KindWindow || dep.col[strings.ToLower(c.Name)] != d {
				continue
			}
			g.push("SELECT *, " + c.Win.SQL() + " AS " + quote(c.Name) + " FROM " + g.from())
			g.cols = append(g.cols, c.Name)
		}
		// Formula columns of depth d, one wrap each so same-depth formulas
		// can reference earlier ones.
		for _, c := range computed {
			if c.Kind != core.KindFormula || dep.col[strings.ToLower(c.Name)] != d {
				continue
			}
			g.push("SELECT *, " + c.Formula.SQL() + " AS " + quote(c.Name) + " FROM " + g.from())
			g.cols = append(g.cols, c.Name)
		}
		// Selections of depth d.
		var preds []string
		for i, sel := range sels {
			if selDepth[i] == d {
				preds = append(preds, sel.Pred.SQL())
			}
		}
		if len(preds) > 0 {
			g.push("SELECT * FROM " + g.from() + " WHERE " + strings.Join(preds, " AND "))
		}
	}

	// Final projection and presentation order.
	visible := s.VisibleSchema()
	var list []string
	for _, c := range visible {
		list = append(list, quote(c.Name))
	}
	var order []string
	for _, lvl := range s.Grouping() {
		if lvl.By != "" {
			key := quote(lvl.By)
			if lvl.Dir == core.Desc {
				key += " DESC"
			}
			order = append(order, key)
			for _, a := range lvl.Rel {
				order = append(order, quote(a))
			}
			continue
		}
		for _, a := range lvl.Rel {
			key := quote(a)
			if lvl.Dir == core.Desc {
				key += " DESC"
			}
			order = append(order, key)
		}
	}
	for _, k := range s.FinestOrder() {
		key := quote(k.Column)
		if k.Dir == core.Desc {
			key += " DESC"
		}
		order = append(order, key)
	}
	final := "SELECT " + strings.Join(list, ", ") + " FROM " + g.from()
	if len(order) > 0 {
		final += " ORDER BY " + strings.Join(order, ", ")
	}
	g.plan.Stages = append(g.plan.Stages, final)
	g.plan.SQL = final
	return &g.plan, nil
}

// emitAggregates joins one GROUP BY subquery per distinct basis carrying
// every depth-d aggregate column.
func (g *generator) emitAggregates(computed []core.ComputedColumn, dep *depths, d int) error {
	type bucket struct {
		basis []string
		cols  []core.ComputedColumn
	}
	var buckets []*bucket
	index := map[string]*bucket{}
	for _, c := range computed {
		if c.Kind != core.KindAggregate || dep.col[strings.ToLower(c.Name)] != d {
			continue
		}
		basis := g.cumulativeBasis(c.Level)
		key := strings.ToLower(strings.Join(basis, "\x1f"))
		b := index[key]
		if b == nil {
			b = &bucket{basis: basis}
			index[key] = b
			buckets = append(buckets, b)
		}
		b.cols = append(b.cols, c)
	}
	for _, b := range buckets {
		inner := g.from()
		var aggList []string
		for _, c := range b.cols {
			aggList = append(aggList, aggCall(c)+" AS "+quote(c.Name))
		}
		var sub string
		if len(b.basis) == 0 {
			sub = "SELECT " + strings.Join(aggList, ", ") + " FROM " + inner
		} else {
			var basisList []string
			for _, a := range b.basis {
				basisList = append(basisList, quote(a))
			}
			sub = "SELECT " + strings.Join(basisList, ", ") + ", " + strings.Join(aggList, ", ") +
				" FROM " + inner + " GROUP BY " + strings.Join(basisList, ", ")
		}
		// Join the aggregate values back onto every row.
		tAlias := g.nextAlias()
		aAlias := g.nextAlias()
		var sel []string
		for _, c := range g.cols {
			sel = append(sel, tAlias+"."+bare(c)+" AS "+quote(c))
		}
		for _, c := range b.cols {
			sel = append(sel, aAlias+"."+bare(c.Name)+" AS "+quote(c.Name))
			g.cols = append(g.cols, c.Name)
		}
		left := g.cur
		if g.isBase {
			left = "SELECT * FROM " + quote(left)
		}
		stmt := "SELECT " + strings.Join(sel, ", ") + " FROM (" + left + ") AS " + tAlias
		if len(b.basis) == 0 {
			stmt += " CROSS JOIN (" + sub + ") AS " + aAlias
		} else {
			var conds []string
			for _, a := range b.basis {
				conds = append(conds, tAlias+"."+bare(a)+" = "+aAlias+"."+bare(a))
			}
			stmt += " JOIN (" + sub + ") AS " + aAlias + " ON " + strings.Join(conds, " AND ")
		}
		g.push(stmt)
	}
	return nil
}

// bare renders a column name for qualified references; names needing quotes
// cannot be qualified in the expression grammar, so reject them clearly.
func bare(name string) string {
	q := quote(name)
	if strings.HasPrefix(q, `"`) {
		return q
	}
	return name
}

// windowColumns enumerates the base/computed columns a window definition
// reads: its input, partition attributes and order keys.
func windowColumns(w *core.WindowDef) []string {
	var out []string
	if w.Input != "" {
		out = append(out, w.Input)
	}
	out = append(out, w.PartitionBy...)
	for _, k := range w.OrderBy {
		out = append(out, k.Column)
	}
	return out
}

// cumulativeBasis reproduces the paper's g_level from the grouping spec.
func (g *generator) cumulativeBasis(level int) []string {
	var out []string
	grouping := g.sheet.Grouping()
	for i := 0; i < level-1 && i < len(grouping); i++ {
		out = append(out, grouping[i].Rel...)
	}
	return out
}

func aggCall(c core.ComputedColumn) string {
	switch c.Agg {
	case relation.AggCountDistinct:
		return "COUNT(DISTINCT " + quote(c.Input) + ")"
	default:
		return string(c.Agg) + "(" + quote(c.Input) + ")"
	}
}

// checkDistinctRestriction enforces the documented DE limitation.
func (g *generator) checkDistinctRestriction(distinct []string, computed []core.ComputedColumn, sels []core.Selection) error {
	allowed := map[string]bool{}
	for _, c := range distinct {
		allowed[strings.ToLower(c)] = true
	}
	for _, c := range computed {
		allowed[strings.ToLower(c.Name)] = true
	}
	check := func(cols []string, what string) error {
		for _, c := range cols {
			if !allowed[strings.ToLower(c)] {
				return fmt.Errorf("sqlgen: %s references %q, which duplicate elimination dropped; SQL generation cannot express this state", what, c)
			}
		}
		return nil
	}
	for _, sel := range sels {
		if err := check(expr.Columns(sel.Pred), "a selection"); err != nil {
			return err
		}
	}
	for _, c := range computed {
		switch c.Kind {
		case core.KindAggregate:
			if err := check([]string{c.Input}, "aggregate "+c.Name); err != nil {
				return err
			}
		case core.KindWindow:
			if err := check(windowColumns(c.Win), "window "+c.Name); err != nil {
				return err
			}
		default:
			if err := check(expr.Columns(c.Formula), "formula "+c.Name); err != nil {
				return err
			}
		}
	}
	for _, lvl := range g.sheet.Grouping() {
		if err := check(lvl.Rel, "the grouping"); err != nil {
			return err
		}
	}
	for _, k := range g.sheet.FinestOrder() {
		if err := check([]string{k.Column}, "the ordering"); err != nil {
			return err
		}
	}
	for _, c := range g.sheet.VisibleSchema() {
		if err := check([]string{c.Name}, "the visible columns"); err != nil {
			return err
		}
	}
	return nil
}
