package sqlgen_test

import (
	"fmt"
	"log"

	"sheetmusiq/internal/core"
	"sheetmusiq/internal/dataset"
	"sheetmusiq/internal/sqlgen"
)

// Example compiles a spreadsheet query state to the SQL the paper's
// prototype would have sent to its RDBMS backend.
func Example() {
	sheet := core.New(dataset.UsedCars())
	if _, err := sheet.Select("Year = 2005 AND Condition = 'Good'"); err != nil {
		log.Fatal(err)
	}
	if err := sheet.GroupBy(core.Asc, "Model"); err != nil {
		log.Fatal(err)
	}
	if err := sheet.Sort("Price", core.Asc); err != nil {
		log.Fatal(err)
	}
	stmt, err := sqlgen.Generate(sheet)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(stmt)
	// Output:
	// SELECT ID, Model, Price, Year, Mileage, Condition FROM (SELECT * FROM cars WHERE ((Year = 2005) AND (Condition = 'Good'))) AS t1 ORDER BY Model, Price
}
