package sqlgen

import (
	"math/rand"
	"strings"
	"testing"

	"sheetmusiq/internal/core"
	"sheetmusiq/internal/dataset"
	"sheetmusiq/internal/relation"
	"sheetmusiq/internal/sql"
)

// roundTrip evaluates the spreadsheet through the algebra and through
// generated SQL and requires identical tables (values and row order).
func roundTrip(t *testing.T, s *core.Spreadsheet) string {
	t.Helper()
	res, err := s.Evaluate()
	if err != nil {
		t.Fatalf("algebra evaluate: %v", err)
	}
	stmt, err := Generate(s)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	db := sql.NewDB()
	db.Register(s.Base())
	got, err := db.Query(stmt)
	if err != nil {
		t.Fatalf("execute %q: %v", stmt, err)
	}
	want := res.Table.String()
	if got.String() != want {
		t.Fatalf("SQL path diverged.\nSQL: %s\ngot:\n%s\nwant:\n%s", stmt, got.String(), want)
	}
	return stmt
}

func TestGeneratePlainSelect(t *testing.T) {
	s := core.New(dataset.UsedCars())
	if _, err := s.Select("Year = 2005 AND Price < 15500"); err != nil {
		t.Fatal(err)
	}
	stmt := roundTrip(t, s)
	if !strings.Contains(stmt, "WHERE") {
		t.Errorf("expected WHERE in %q", stmt)
	}
}

func TestGenerateGroupingOrdering(t *testing.T) {
	s := core.New(dataset.UsedCars())
	if err := s.GroupBy(core.Desc, "Model"); err != nil {
		t.Fatal(err)
	}
	if err := s.GroupBy(core.Asc, "Year"); err != nil {
		t.Fatal(err)
	}
	if err := s.Sort("Price", core.Asc); err != nil {
		t.Fatal(err)
	}
	stmt := roundTrip(t, s)
	if !strings.Contains(stmt, "ORDER BY Model DESC, Year, Price") {
		t.Errorf("grouping emulation missing in %q", stmt)
	}
}

func TestGenerateTableIII(t *testing.T) {
	// The paper's Table III state: grouped aggregation with projection.
	s := core.New(dataset.UsedCars())
	if err := s.GroupBy(core.Desc, "Model"); err != nil {
		t.Fatal(err)
	}
	if err := s.GroupBy(core.Asc, "Year"); err != nil {
		t.Fatal(err)
	}
	if err := s.Sort("Price", core.Asc); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Aggregate(relation.AggAvg, "Price", 3); err != nil {
		t.Fatal(err)
	}
	if err := s.Hide("Condition"); err != nil {
		t.Fatal(err)
	}
	stmt := roundTrip(t, s)
	if !strings.Contains(stmt, "GROUP BY") {
		t.Errorf("expected GROUP BY subquery in %q", stmt)
	}
}

func TestGenerateHaving(t *testing.T) {
	s := core.New(dataset.UsedCars())
	if err := s.GroupBy(core.Asc, "Model"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AggregateAs("AvgP", relation.AggAvg, "Price", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Select("AvgP > 15500"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Select("Year = 2006"); err != nil {
		t.Fatal(err)
	}
	roundTrip(t, s)
}

func TestGenerateFormulaChain(t *testing.T) {
	s := core.New(dataset.UsedCars())
	if _, err := s.Formula("KPrice", "Price / 1000"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Formula("KPrice2", "KPrice * 2"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Select("KPrice2 > 30"); err != nil {
		t.Fatal(err)
	}
	roundTrip(t, s)
}

func TestGenerateFormulaOverAggregate(t *testing.T) {
	// Fig. 2's flow: compare Price with the per-group average.
	s := core.New(dataset.UsedCars())
	if err := s.GroupBy(core.Asc, "Model"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AggregateAs("AvgP", relation.AggAvg, "Price", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Formula("Delta", "Price - AvgP"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Select("Delta < 0"); err != nil {
		t.Fatal(err)
	}
	roundTrip(t, s)
}

func TestGenerateWholeSheetAggregate(t *testing.T) {
	s := core.New(dataset.UsedCars())
	if _, err := s.AggregateAs("N", relation.AggCount, "ID", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AggregateAs("Total", relation.AggSum, "Price", 1); err != nil {
		t.Fatal(err)
	}
	stmt := roundTrip(t, s)
	if !strings.Contains(stmt, "CROSS JOIN") {
		t.Errorf("whole-sheet aggregates should CROSS JOIN: %q", stmt)
	}
}

func TestGenerateDistinct(t *testing.T) {
	s := core.New(dataset.UsedCars())
	for _, c := range []string{"ID", "Price", "Mileage", "Condition"} {
		if err := s.Hide(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Distinct(); err != nil {
		t.Fatal(err)
	}
	if err := s.Sort("Model", core.Asc); err != nil {
		t.Fatal(err)
	}
	stmt := roundTrip(t, s)
	if !strings.Contains(stmt, "DISTINCT") {
		t.Errorf("expected DISTINCT in %q", stmt)
	}
}

func TestGenerateDistinctRestriction(t *testing.T) {
	s := core.New(dataset.UsedCars())
	if _, err := s.Select("Price < 16000"); err != nil {
		t.Fatal(err)
	}
	if err := s.Hide("Price"); err != nil {
		t.Fatal(err)
	}
	if err := s.Distinct(); err != nil {
		t.Fatal(err)
	}
	// A selection on a column DE dropped cannot be expressed in SQL.
	if _, err := Generate(s); err == nil {
		t.Fatal("expected the documented DE restriction error")
	}
}

func TestGenerateMultiLevelAggregates(t *testing.T) {
	s := core.New(dataset.UsedCars())
	if err := s.GroupBy(core.Desc, "Model"); err != nil {
		t.Fatal(err)
	}
	if err := s.GroupBy(core.Asc, "Year"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AggregateAs("AvgMY", relation.AggAvg, "Price", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AggregateAs("AvgM", relation.AggAvg, "Price", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AggregateAs("MinMY", relation.AggMin, "Price", 3); err != nil {
		t.Fatal(err)
	}
	roundTrip(t, s)
}

func TestGenerateDepth2Aggregate(t *testing.T) {
	// Aggregate over an aggregate-derived formula: depth 2.
	s := core.New(dataset.UsedCars())
	if err := s.GroupBy(core.Asc, "Model"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AggregateAs("AvgM", relation.AggAvg, "Price", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Formula("Dev", "Price - AvgM"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AggregateAs("MaxDev", relation.AggMax, "Dev", 2); err != nil {
		t.Fatal(err)
	}
	roundTrip(t, s)
}

func TestGenerateAfterQueryModification(t *testing.T) {
	s := core.New(dataset.UsedCars())
	id, err := s.Select("Year = 2005")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.GroupBy(core.Asc, "Condition"); err != nil {
		t.Fatal(err)
	}
	if err := s.Sort("Price", core.Asc); err != nil {
		t.Fatal(err)
	}
	roundTrip(t, s)
	if err := s.ReplaceSelection(id, "Year = 2006"); err != nil {
		t.Fatal(err)
	}
	stmt := roundTrip(t, s)
	if !strings.Contains(stmt, "2006") || strings.Contains(stmt, "2005") {
		t.Errorf("modified predicate not reflected: %q", stmt)
	}
}

func TestGenerateCountDistinct(t *testing.T) {
	s := core.New(dataset.UsedCars())
	if _, err := s.AggregateAs("U", relation.AggCountDistinct, "Model", 1); err != nil {
		t.Fatal(err)
	}
	stmt := roundTrip(t, s)
	if !strings.Contains(stmt, "COUNT(DISTINCT") {
		t.Errorf("expected COUNT(DISTINCT ...) in %q", stmt)
	}
}

func TestCompileStages(t *testing.T) {
	s := core.New(dataset.UsedCars())
	if _, err := s.Select("Year = 2005"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AggregateAs("N", relation.AggCount, "ID", 1); err != nil {
		t.Fatal(err)
	}
	p, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Stages) < 3 {
		t.Fatalf("expected staged plan, got %d stages", len(p.Stages))
	}
	if p.Stages[len(p.Stages)-1] != p.SQL {
		t.Fatal("last stage must be the final statement")
	}
}

// TestRandomizedEquivalence fuzzes query states and checks algebra ≡ SQL.
func TestRandomizedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	preds := []string{
		"Price < 25000", "Price >= 12000", "Year <> 2003", "Mileage < 150000",
		"Condition IN ('Excellent','Good')", "Model LIKE '%a%'",
		"Year BETWEEN 2001 AND 2008", "Price * 2 > Mileage / 3",
	}
	for trial := 0; trial < 40; trial++ {
		s := core.New(dataset.RandomCars(50, int64(trial)))
		steps := 1 + rng.Intn(6)
		grouped := 0
		hasAgg := false
		for i := 0; i < steps; i++ {
			switch rng.Intn(6) {
			case 0, 1:
				if _, err := s.Select(preds[rng.Intn(len(preds))]); err != nil {
					t.Fatal(err)
				}
			case 2:
				if grouped == 0 {
					if err := s.GroupBy(core.Dir(rng.Intn(2) == 0), "Model"); err != nil {
						t.Fatal(err)
					}
					grouped = 1
				} else if grouped == 1 {
					if err := s.GroupBy(core.Dir(rng.Intn(2) == 0), "Year"); err != nil {
						t.Fatal(err)
					}
					grouped = 2
				}
			case 3:
				if !hasAgg {
					lvl := 1 + rng.Intn(grouped+1)
					if _, err := s.AggregateAs("AvgP", relation.AggAvg, "Price", lvl); err != nil {
						t.Fatal(err)
					}
					hasAgg = true
					if rng.Intn(2) == 0 {
						if _, err := s.Select("AvgP > 15000"); err != nil {
							t.Fatal(err)
						}
					}
				}
			case 4:
				if err := s.Sort("Price", core.Dir(rng.Intn(2) == 0)); err != nil {
					t.Fatal(err)
				}
				// Occasionally exercise the OrderGroupsBy extension.
				if hasAgg && grouped == 1 && rng.Intn(2) == 0 {
					if err := s.OrderGroupsBy(1, "AvgP", core.Dir(rng.Intn(2) == 0)); err != nil {
						t.Fatal(err)
					}
				}
			case 5:
				if _, err := s.Formula("", "Price + Mileage / 100"); err != nil {
					t.Fatal(err)
				}
			}
		}
		roundTrip(t, s)
	}
}

func TestGenerateOrderGroupsBy(t *testing.T) {
	// The OrderGroupsBy extension maps to ORDER BY over the aggregate.
	s := core.New(dataset.UsedCars())
	if err := s.GroupBy(core.Asc, "Model"); err != nil {
		t.Fatal(err)
	}
	if err := s.Sort("Price", core.Asc); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AggregateAs("AvgP", relation.AggAvg, "Price", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.OrderGroupsBy(1, "AvgP", core.Desc); err != nil {
		t.Fatal(err)
	}
	stmt := roundTrip(t, s)
	if !strings.Contains(stmt, "ORDER BY AvgP DESC, Model, Price") {
		t.Errorf("group ordering missing from %q", stmt)
	}
}

func TestGenerateDistinctWithAggregate(t *testing.T) {
	// DE plus an aggregate whose input is within the recorded columns is
	// expressible: DISTINCT first, then the GROUP BY join.
	s := core.New(dataset.UsedCars())
	for _, c := range []string{"ID", "Mileage", "Condition"} {
		if err := s.Hide(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Distinct(); err != nil {
		t.Fatal(err)
	}
	if err := s.GroupBy(core.Asc, "Model"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AggregateAs("AvgP", relation.AggAvg, "Price", 2); err != nil {
		t.Fatal(err)
	}
	stmt := roundTrip(t, s)
	if !strings.Contains(stmt, "DISTINCT") || !strings.Contains(stmt, "GROUP BY") {
		t.Fatalf("expected DISTINCT + GROUP BY: %q", stmt)
	}
}
