package engine

import (
	"path/filepath"
	"testing"
)

func TestOpMutates(t *testing.T) {
	cases := map[string]bool{
		"demo": true, "load": true, "select": true, "filter": true,
		"group": true, "sort": true, "agg": true, "formula": true,
		"hide": true, "undo": true, "redo": true, "save": true,
		"join": true, "modify": true, "loadstate": true,
		// Reads and file exports leave the session untouched.
		"explain": false, "deps": false, "impact": false,
		"savestate": false, "export": false,
		"Explain": false, // classification is case-insensitive
	}
	for name, want := range cases {
		if got := (Op{Op: name}).Mutates(); got != want {
			t.Errorf("Op %q: Mutates() = %v, want %v", name, got, want)
		}
	}
}

// TestEffectMutated checks the Apply-level flag the WAL keys off: ops that
// change session state report Mutated, no-op reads do not.
func TestEffectMutated(t *testing.T) {
	e := New(nil)
	steps := []struct {
		op   Op
		want bool
	}{
		{Op{Op: "demo", Table: "cars"}, true},
		{Op{Op: "select", Predicate: "Year = 2005"}, true},
		{Op{Op: "explain"}, false},
		{Op{Op: "savestate", Path: filepath.Join(t.TempDir(), "s.json")}, false},
		{Op{Op: "undo"}, true},
	}
	for _, s := range steps {
		eff, err := e.Apply(s.op)
		if err != nil {
			t.Fatalf("%s: %v", s.op.Op, err)
		}
		if eff.Mutated != s.want {
			t.Errorf("%s: Effect.Mutated = %v, want %v", s.op.Op, eff.Mutated, s.want)
		}
	}
}
