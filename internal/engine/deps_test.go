package engine

import (
	"sort"
	"strings"
	"testing"
)

// depsSheet scripts a multi-depth sheet: η over θ over θ over a base
// column, plus a depth-1 predicate and an ordering.
func depsSheet(t *testing.T) *Engine {
	t.Helper()
	e := demoCars(t)
	must(t, e, Op{Op: "formula", Name: "F1", Formula: "Price / 1000"})
	must(t, e, Op{Op: "formula", Name: "F2", Formula: "F1 * 2"})
	must(t, e, Op{Op: "agg", Fn: "avg", Column: "F2", Level: 1, Name: "A"})
	must(t, e, Op{Op: "select", Predicate: "A > 0"})
	must(t, e, Op{Op: "sort", Column: "Price", Dir: "asc"})
	return e
}

// naiveClosure computes transitive reachability over the reported edges by
// repeated expansion — the independent reference the graph queries must
// match.
func naiveClosure(edges []DepEdge, start string, forward bool) []string {
	adj := map[string][]string{}
	for _, e := range edges {
		if forward {
			adj[e.From] = append(adj[e.From], e.To)
		} else {
			adj[e.To] = append(adj[e.To], e.From)
		}
	}
	reach := map[string]bool{}
	frontier := []string{start}
	for len(frontier) > 0 {
		n := frontier[0]
		frontier = frontier[1:]
		for _, m := range adj[n] {
			if !reach[m] {
				reach[m] = true
				frontier = append(frontier, m)
			}
		}
	}
	delete(reach, start)
	var out []string
	for k := range reach {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sorted(ss []string) []string {
	out := append([]string(nil), ss...)
	sort.Strings(out)
	return out
}

func TestDepsMatchesNaiveClosure(t *testing.T) {
	e := depsSheet(t)
	full, err := e.Deps("", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Nodes) == 0 || len(full.Edges) == 0 {
		t.Fatalf("empty graph: %+v", full)
	}
	for _, n := range full.Nodes {
		got, err := e.Deps(n.ID, "")
		if err != nil {
			t.Fatal(err)
		}
		if want := naiveClosure(full.Edges, n.ID, true); !equal(sorted(got.Dependents), want) {
			t.Fatalf("dependents(%s) = %v, naive closure = %v", n.ID, sorted(got.Dependents), want)
		}
		if want := naiveClosure(full.Edges, n.ID, false); !equal(sorted(got.Dependencies), want) {
			t.Fatalf("dependencies(%s) = %v, naive closure = %v", n.ID, sorted(got.Dependencies), want)
		}
	}
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDepsResolutionAndPath(t *testing.T) {
	e := depsSheet(t)

	// Bare column name resolves to the computed stage.
	byName, err := e.Deps("f1", "")
	if err != nil {
		t.Fatal(err)
	}
	if byName.Node != "col:f1" {
		t.Fatalf("resolved %q, want col:f1", byName.Node)
	}
	// Its impact closure covers everything built on it.
	deps := strings.Join(byName.Dependents, " ")
	for _, want := range []string{"col:f2", "col:a", "sel:1", "order"} {
		if !strings.Contains(deps, want) {
			t.Fatalf("dependents of F1 = %v, missing %s", byName.Dependents, want)
		}
	}

	// A base column resolves to its leaf; a selection by bare number.
	base, err := e.Deps("Price", "")
	if err != nil {
		t.Fatal(err)
	}
	if base.Node != "basecol:price" {
		t.Fatalf("resolved %q, want basecol:price", base.Node)
	}
	sel, err := e.Deps("1", "")
	if err != nil {
		t.Fatal(err)
	}
	if sel.Node != "sel:1" {
		t.Fatalf("resolved %q, want sel:1", sel.Node)
	}

	// Path traces the dependency chain (either direction).
	p, err := e.Deps("Price", "A")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"basecol:price", "col:f1", "col:f2", "col:a"}
	if !equal(p.Path, want) {
		t.Fatalf("path = %v, want %v", p.Path, want)
	}
	rev, err := e.Deps("A", "Price")
	if err != nil {
		t.Fatal(err)
	}
	if !equal(rev.Path, want) {
		t.Fatalf("reverse path = %v, want %v", rev.Path, want)
	}

	if _, err := e.Deps("NoSuchThing", ""); err == nil {
		t.Fatal("unknown node must error")
	}
}

func TestDepsOpIsReadOnly(t *testing.T) {
	e := depsSheet(t)
	v := e.Version()
	eff := must(t, e, Op{Op: "deps", Column: "F1"})
	if eff.Mutated {
		t.Fatal("deps op must not be classified as mutating")
	}
	if len(eff.Log) == 0 {
		t.Fatalf("deps op returned no lines")
	}
	if e.Version() != v {
		t.Fatalf("deps op changed the version: %d → %d", v, e.Version())
	}
	full := must(t, e, Op{Op: "impact"})
	if len(full.Log) < len(depsMustNodes) {
		t.Fatalf("full-graph listing has %d lines", len(full.Log))
	}
	for _, want := range depsMustNodes {
		found := false
		for _, line := range full.Log {
			if strings.HasPrefix(line, want) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("full-graph listing missing node %s:\n%s", want, strings.Join(full.Log, "\n"))
		}
	}
}

var depsMustNodes = []string{"base", "basecol:price", "col:f1", "col:f2", "col:a", "sel:1", "order"}
