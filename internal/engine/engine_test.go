package engine

import (
	"encoding/json"
	"strings"
	"testing"

	"sheetmusiq/internal/core"
)

func must(t *testing.T, e *Engine, op Op) *Effect {
	t.Helper()
	eff, err := e.Apply(op)
	if err != nil {
		t.Fatalf("op %+v: %v", op, err)
	}
	return eff
}

func demoCars(t *testing.T) *Engine {
	t.Helper()
	e := New(nil)
	must(t, e, Op{Op: "demo", Table: "cars"})
	return e
}

func TestApplyWalkthrough(t *testing.T) {
	// The paper's Sam session (Sec. I-B) as structured ops.
	e := demoCars(t)
	sel := must(t, e, Op{Op: "select", Predicate: "Condition = 'Good' OR Condition = 'Excellent'"})
	if sel.ID != 1 {
		t.Fatalf("first selection id = %d, want 1", sel.ID)
	}
	if !strings.HasPrefix(sel.Entry, "σ") {
		t.Fatalf("selection entry %q should be the history line", sel.Entry)
	}
	must(t, e, Op{Op: "group", Dir: "desc", Columns: []string{"Model"}})
	must(t, e, Op{Op: "group", Dir: "asc", Columns: []string{"Year"}})
	must(t, e, Op{Op: "sort", Column: "Price", Dir: "asc"})
	agg := must(t, e, Op{Op: "agg", Fn: "avg", Column: "Price", Level: 3, Name: "Avg_Price"})
	if agg.Column != "Avg_Price" {
		t.Fatalf("agg created column %q", agg.Column)
	}
	must(t, e, Op{Op: "select", Predicate: "Price < Avg_Price"})
	grid, err := e.Grid(0)
	if err != nil {
		t.Fatal(err)
	}
	if grid.Columns[len(grid.Columns)-1] != "Avg_Price" {
		t.Fatalf("grid columns: %v", grid.Columns)
	}
	if grid.Total == 0 || len(grid.Rows) != grid.Total {
		t.Fatalf("grid rows %d total %d", len(grid.Rows), grid.Total)
	}
	if e.Version() != 6 {
		t.Fatalf("version = %d, want 6", e.Version())
	}
}

func TestApplyModifyUndoRedo(t *testing.T) {
	e := demoCars(t)
	sel := must(t, e, Op{Op: "select", Predicate: "Year = 2005"})
	must(t, e, Op{Op: "modify", ID: sel.ID, Predicate: "Year = 2006"})
	grid, err := e.Grid(0)
	if err != nil {
		t.Fatal(err)
	}
	if grid.Total != 5 {
		t.Fatalf("2006 cars = %d, want 5", grid.Total)
	}
	und := must(t, e, Op{Op: "undo"})
	if !strings.Contains(und.Entry, "modify") {
		t.Fatalf("undo entry %q", und.Entry)
	}
	red := must(t, e, Op{Op: "redo"})
	if !strings.Contains(red.Entry, "modify") {
		t.Fatalf("redo entry %q", red.Entry)
	}
}

func TestApplyBinaryViaSharedCatalog(t *testing.T) {
	cat := core.NewCatalog()
	a := New(cat)
	must(t, a, Op{Op: "demo", Table: "cars"})
	must(t, a, Op{Op: "select", Predicate: "Condition = 'Excellent'"})
	must(t, a, Op{Op: "save", Name: "nice"})

	// A different session sharing the catalog consumes the stored sheet.
	b := New(cat)
	must(t, b, Op{Op: "demo", Table: "cars"})
	must(t, b, Op{Op: "minus", Sheet: "nice"})
	grid, err := b.Grid(0)
	if err != nil {
		t.Fatal(err)
	}
	if grid.Total != 5 {
		t.Fatalf("9 − 4 excellent = %d, want 5", grid.Total)
	}
}

func TestApplyRenameSheet(t *testing.T) {
	e := demoCars(t)
	must(t, e, Op{Op: "save", Name: "a"})
	must(t, e, Op{Op: "renamesheet", Sheet: "a", Name: "b"})
	if names := e.StoredNames(); len(names) != 1 || names[0] != "b" {
		t.Fatalf("stored names after rename: %v", names)
	}
	if _, err := e.Apply(Op{Op: "renamesheet", Sheet: "a", Name: "c"}); err == nil {
		t.Fatal("renaming a missing stored sheet must fail")
	}
}

func TestStateAndTree(t *testing.T) {
	e := demoCars(t)
	must(t, e, Op{Op: "select", Predicate: "Year = 2005"})
	must(t, e, Op{Op: "group", Dir: "asc", Columns: []string{"Model"}})
	must(t, e, Op{Op: "agg", Fn: "count", Column: "ID", Level: 2, Name: "N"})
	must(t, e, Op{Op: "distinct"})
	st, err := e.State()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Selections) != 1 || !strings.Contains(st.Selections[0].SQL, "Year = 2005") {
		t.Fatalf("state selections: %+v", st.Selections)
	}
	if len(st.Computed) != 1 || st.Computed[0].Kind != "aggregate" || st.Computed[0].Level != 2 {
		t.Fatalf("state computed: %+v", st.Computed)
	}
	if len(st.Grouping) != 1 || st.Grouping[0].Level != 2 || st.Grouping[0].Rel[0] != "Model" {
		t.Fatalf("state grouping: %+v", st.Grouping)
	}
	if len(st.DistinctOn) == 0 {
		t.Fatalf("state should record the distinct column set")
	}
	tree, err := e.Tree()
	if err != nil {
		t.Fatal(err)
	}
	if tree.Level != 1 || len(tree.Children) != 2 {
		t.Fatalf("tree root: %+v", tree)
	}
	if tree.Children[0].Key[0] != "Civic" || tree.Children[0].Basis[0] != "Model" {
		t.Fatalf("first group: %+v", tree.Children[0])
	}
	// The tree serialises cleanly.
	if _, err := json.Marshal(tree); err != nil {
		t.Fatal(err)
	}
}

func TestMenuInfo(t *testing.T) {
	e := demoCars(t)
	must(t, e, Op{Op: "select", Predicate: "Price < 16000"})
	m, err := e.Menu("Price")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, op := range m.FilterOps {
		if op == "BETWEEN" {
			found = true
		}
	}
	if !found {
		t.Fatalf("numeric menu should offer BETWEEN: %+v", m)
	}
	if len(m.Selections) != 1 {
		t.Fatalf("menu should surface the existing predicate: %+v", m.Selections)
	}
	if _, err := e.Menu("Nope"); err == nil {
		t.Fatal("menu over unknown column must fail")
	}
}

func TestOpJSONRoundTrip(t *testing.T) {
	// The wire format: a JSON body decodes to the op the REPL would build.
	var op Op
	body := `{"op":"agg","fn":"avg","column":"Price","level":3,"name":"Avg_Price"}`
	if err := json.Unmarshal([]byte(body), &op); err != nil {
		t.Fatal(err)
	}
	e := demoCars(t)
	must(t, e, Op{Op: "group", Dir: "desc", Columns: []string{"Model"}})
	must(t, e, Op{Op: "group", Dir: "asc", Columns: []string{"Year"}})
	eff := must(t, e, op)
	if eff.Column != "Avg_Price" || eff.Version != 3 {
		t.Fatalf("effect: %+v", eff)
	}
}

func TestErrorsAndGates(t *testing.T) {
	e := New(nil)
	cases := []Op{
		{Op: "frobnicate"},
		{Op: "select", Predicate: "Price < 1"}, // no sheet yet
		{Op: "use", Table: "nothere"},
		{Op: "open", Name: "nothere"},
		{Op: "demo", Table: "nothere"},
	}
	for _, op := range cases {
		if _, err := e.Apply(op); err == nil {
			t.Errorf("op %+v should fail", op)
		}
	}
	must(t, e, Op{Op: "demo", Table: "cars"})
	for _, op := range []Op{
		{Op: "group", Dir: "sideways", Columns: []string{"Model"}},
		{Op: "agg", Fn: "median", Column: "Price", Level: 1},
		{Op: "agg", Fn: "avg", Column: "Price", Level: 9},
		{Op: "modify", ID: 9, Predicate: "Year = 1"},
		{Op: "join", Sheet: "nothere", On: "1 = 1"},
		{Op: "join", Sheet: "cars"}, // missing ON
		{Op: "compile", Query: "SELEC * FROM"},
		{Op: "save"}, // missing name
	} {
		if _, err := e.Apply(op); err == nil {
			t.Errorf("op %+v should fail", op)
		}
	}
	// Filesystem gating is the op's own property, not a server guess, and
	// it must match in every spelling dispatch accepts — a case-sensitive
	// gate over a case-insensitive dispatcher is a bypass.
	for _, kind := range []string{
		"load", "savestate", "loadstate", "export",
		"Load", "SaveState", "LoadState", "Export", "EXPORT",
	} {
		if !(Op{Op: kind}).TouchesFilesystem() {
			t.Errorf("op %s should report TouchesFilesystem", kind)
		}
	}
	if (Op{Op: "select"}).TouchesFilesystem() {
		t.Error("select must not report TouchesFilesystem")
	}
}

func TestRunSQLAndSQLGen(t *testing.T) {
	e := demoCars(t)
	rel, err := e.RunSQL("SELECT Model, COUNT(*) AS n FROM cars GROUP BY Model ORDER BY Model")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("model groups = %d, want 2", rel.Len())
	}
	must(t, e, Op{Op: "select", Predicate: "Year = 2005"})
	sqlText, err := e.SQL()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sqlText, "SELECT") {
		t.Fatalf("generated SQL: %s", sqlText)
	}
	stages, err := e.Stages()
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) == 0 {
		t.Fatal("expected at least one stage")
	}
}

func TestCompileOp(t *testing.T) {
	e := demoCars(t)
	eff := must(t, e, Op{Op: "compile",
		Query: "SELECT Model, AVG(Price) AS ap FROM cars WHERE Year = 2005 GROUP BY Model ORDER BY Model"})
	joined := strings.Join(eff.Log, "\n")
	if !strings.Contains(joined, "step 3: τ Model") {
		t.Fatalf("compile log: %v", eff.Log)
	}
	if !e.HasSheet() || e.Version() == 0 {
		t.Fatal("compile should install a live sheet")
	}
}
