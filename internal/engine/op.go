package engine

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"sheetmusiq/internal/core"
	"sheetmusiq/internal/dataset"
	"sheetmusiq/internal/expr"
	"sheetmusiq/internal/obs"
	"sheetmusiq/internal/relation"
	"sheetmusiq/internal/sql"
	"sheetmusiq/internal/theorem1"
	"sheetmusiq/internal/tpch"
)

// Op is one structured command — a single spreadsheet-algebra step or a
// session-housekeeping action. The JSON form is the wire format of the
// HTTP service; the REPL parses its command lines into the same struct.
// Only the fields an op kind uses need to be set.
type Op struct {
	// Op selects the command; see Apply for the full list.
	Op string `json:"op"`

	Predicate string   `json:"predicate,omitempty"` // select, modify
	Columns   []string `json:"columns,omitempty"`   // group
	Column    string   `json:"column,omitempty"`    // sort, order, agg, hide, unhide, rename (old), dropcol
	Dir       string   `json:"dir,omitempty"`       // group, sort, order: "asc" | "desc"
	Level     int      `json:"level,omitempty"`     // order, agg (1-based)
	Fn        string   `json:"fn,omitempty"`        // agg: avg/sum/min/max/count/countd/stddev
	Name      string   `json:"name,omitempty"`      // agg/formula result column, rename (new), save/open/close/renamesheet (new)
	Formula   string   `json:"formula,omitempty"`   // formula definition
	ID        int      `json:"id,omitempty"`        // modify, dropsel
	Sheet     string   `json:"sheet,omitempty"`     // binary-op operand, renamesheet (old)
	On        string   `json:"on,omitempty"`        // join condition
	Query     string   `json:"query,omitempty"`     // compile
	Table     string   `json:"table,omitempty"`     // use, demo ("cars" | "tpch")
	Path      string   `json:"path,omitempty"`      // load, savestate, loadstate, export
	Scale     float64  `json:"scale,omitempty"`     // demo tpch scale factor
	Window    string   `json:"window,omitempty"`    // window: the OVER expression, e.g. "RANK() OVER (PARTITION BY Model ORDER BY Price)"
}

// Effect reports what an Op did.
type Effect struct {
	Op      string   `json:"op"`
	Entry   string   `json:"entry,omitempty"`   // history entry or action summary
	Sheet   string   `json:"sheet,omitempty"`   // current sheet after the op
	Version int      `json:"version"`           // current sheet version after the op
	ID      int      `json:"id,omitempty"`      // created selection id
	Column  string   `json:"column,omitempty"`  // created column name
	Rows    int      `json:"rows,omitempty"`    // rows written by export
	Log     []string `json:"log,omitempty"`     // compile / demo step log
	Mutated bool     `json:"mutated"`           // whether the op changed session state (see Op.Mutates)
}

// Mutates reports whether the op kind changes session state — the current
// sheet, the raw-table registry, or the stored-sheet catalog — as opposed to
// a pure read (explain) or a side-effect-only export of state the session
// already holds (savestate, export write files but leave the session
// untouched). Durability layers log exactly the mutating ops: replaying the
// mutating subsequence through a fresh engine reproduces the session, while
// logging a read would waste WAL space and replaying an export would
// re-write files on recovery. Like dispatch, the match is case-insensitive.
//
// Note the classification is per kind, not per outcome: an op that happens
// to leave the state identical (e.g. hiding an already-hidden column fails,
// sorting by the current key again) still counts as mutating when it
// succeeds, because replaying it is harmless and cheap, whereas missing a
// real mutation would corrupt recovery.
func (o Op) Mutates() bool {
	switch strings.ToLower(o.Op) {
	case "explain", "deps", "impact", "savestate", "export":
		return false
	}
	return true
}

// RegistersTables reports whether the op kind registers raw tables in the
// session's private registry (demo, load). Snapshot checkpoints persist
// these ops alongside the serialized query state: RestoreState needs the
// base relation to exist, and only re-running the registering ops can
// recreate it in a fresh engine.
func (o Op) RegistersTables() bool {
	switch strings.ToLower(o.Op) {
	case "demo", "load":
		return true
	}
	return false
}

// TouchesFilesystem reports whether the op kind reads or writes local files
// — front ends that serve remote callers gate these. The match is
// case-insensitive, like dispatch: "Export" and "export" are the same op,
// so they must hit the same gate.
func (o Op) TouchesFilesystem() bool {
	switch strings.ToLower(o.Op) {
	case "load", "savestate", "loadstate", "export":
		return true
	}
	return false
}

// Apply executes one op against the session. Op kinds, grouped as in the
// paper:
//
//	data:          demo, load, use
//	unary ops:     select, group, ungroup, sort, order, agg, formula,
//	               hide, unhide, distinct, nodistinct, rename
//	binary ops:    join, product, union, minus
//	modification:  modify, dropsel, dropcol, undo, redo
//	housekeeping:  save, open, close, renamesheet
//	persistence:   savestate, loadstate, export
//	compilation:   compile
func (e *Engine) Apply(op Op) (*Effect, error) {
	kind := strings.ToLower(op.Op)
	fn, ok := e.dispatch(kind)
	if !ok {
		opUnknown.Inc()
		return nil, fmt.Errorf("engine: unknown op %q", op.Op)
	}
	start := obs.StartTimer()
	eff, err := fn(op)
	obs.Default.Histogram("engine.op_seconds."+kind).Since(start)
	if err != nil {
		obs.Default.Counter("engine.op_errors."+kind).Inc()
		return nil, err
	}
	obs.Default.Counter("engine.ops."+kind).Inc()
	eff.Op = op.Op
	eff.Mutated = op.Mutates()
	eff.Sheet = e.SheetName()
	eff.Version = e.Version()
	if eff.Entry == "" && e.sheet != nil {
		if hist := e.sheet.History(); len(hist) > 0 {
			eff.Entry = hist[len(hist)-1]
		}
	}
	return eff, nil
}

// opUnknown counts dispatch misses (bad op names from clients).
var opUnknown = obs.Default.Counter("engine.ops.unknown")

// dispatch resolves a lower-cased op kind to its handler.
func (e *Engine) dispatch(kind string) (func(Op) (*Effect, error), bool) {
	switch kind {
	case "demo":
		return e.opDemo, true
	case "load":
		return e.opLoad, true
	case "use":
		return e.opUse, true
	case "select", "filter":
		return e.opSelect, true
	case "group":
		return e.opGroup, true
	case "ungroup":
		return e.sheetOp(func(s *core.Spreadsheet, _ Op) error { return s.Ungroup() }), true
	case "sort":
		return e.opSort, true
	case "order":
		return e.opOrder, true
	case "agg", "aggregate":
		return e.opAgg, true
	case "formula":
		return e.opFormula, true
	case "window":
		return e.opWindow, true
	case "hide":
		return e.sheetOp(func(s *core.Spreadsheet, o Op) error { return s.Hide(o.Column) }), true
	case "unhide", "reinstate":
		return e.sheetOp(func(s *core.Spreadsheet, o Op) error { return s.Reinstate(o.Column) }), true
	case "distinct":
		return e.sheetOp(func(s *core.Spreadsheet, _ Op) error { return s.Distinct() }), true
	case "nodistinct":
		return e.sheetOp(func(s *core.Spreadsheet, _ Op) error { return s.RemoveDistinct() }), true
	case "rename":
		return e.sheetOp(func(s *core.Spreadsheet, o Op) error { return s.Rename(o.Column, o.Name) }), true
	case "modify":
		return e.sheetOp(func(s *core.Spreadsheet, o Op) error { return s.ReplaceSelection(o.ID, o.Predicate) }), true
	case "dropsel":
		return e.sheetOp(func(s *core.Spreadsheet, o Op) error { return s.RemoveSelection(o.ID) }), true
	case "dropcol":
		return e.sheetOp(func(s *core.Spreadsheet, o Op) error { return s.RemoveComputed(o.Column) }), true
	case "undo":
		return e.opUndo, true
	case "redo":
		return e.opRedo, true
	case "save":
		return e.opSave, true
	case "open":
		return e.opOpen, true
	case "close":
		return e.opClose, true
	case "renamesheet":
		return e.opRenameSheet, true
	case "join", "product", "union", "minus":
		return e.opBinary, true
	case "compile":
		return e.opCompile, true
	case "explain":
		return e.opExplain, true
	case "deps", "impact":
		return e.opDeps, true
	case "savestate":
		return e.opSaveState, true
	case "loadstate":
		return e.opLoadState, true
	case "export":
		return e.opExport, true
	}
	return nil, false
}

// sheetOp adapts a mutation that only needs the current sheet.
func (e *Engine) sheetOp(fn func(*core.Spreadsheet, Op) error) func(Op) (*Effect, error) {
	return func(op Op) (*Effect, error) {
		if e.sheet == nil {
			return nil, ErrNoSheet
		}
		if err := fn(e.sheet, op); err != nil {
			return nil, err
		}
		return &Effect{}, nil
	}
}

func (e *Engine) opDemo(op Op) (*Effect, error) {
	switch op.Table {
	case "", "cars":
		cars := dataset.UsedCars()
		e.tables.Register(cars)
		e.sheet = core.New(cars)
		return &Effect{Entry: "opened demo sheet cars"}, nil
	case "tpch":
		sf := op.Scale
		if sf == 0 {
			sf = 0.002
		}
		if sf < 0 {
			return nil, fmt.Errorf("engine: bad tpch scale factor %v", sf)
		}
		tb := tpch.Generate(tpch.Config{ScaleFactor: sf, Seed: 1})
		for _, r := range tb.All() {
			e.tables.Register(r)
		}
		if err := tpch.BuildViews(e.tables); err != nil {
			return nil, err
		}
		return &Effect{
			Entry: "generated tpch tables and study views",
			Log:   e.tables.Names(),
		}, nil
	}
	return nil, fmt.Errorf("engine: unknown demo %q (cars, tpch)", op.Table)
}

func (e *Engine) opLoad(op Op) (*Effect, error) {
	if op.Path == "" {
		return nil, fmt.Errorf("engine: load needs a path")
	}
	name := op.Name
	if name == "" {
		name = strings.TrimSuffix(op.Path, ".csv")
		if i := strings.LastIndexAny(name, "/\\"); i >= 0 {
			name = name[i+1:]
		}
	}
	rel, err := relation.LoadCSV(name, op.Path, nil)
	if err != nil {
		return nil, err
	}
	e.tables.Register(rel)
	e.sheet = core.New(rel)
	return &Effect{Entry: fmt.Sprintf("loaded %s as %s", op.Path, name)}, nil
}

func (e *Engine) opUse(op Op) (*Effect, error) {
	rel, ok := e.tables.Table(op.Table)
	if !ok {
		return nil, fmt.Errorf("engine: no table %q (see tables)", op.Table)
	}
	e.sheet = core.New(rel)
	return &Effect{Entry: "opened table " + op.Table}, nil
}

func (e *Engine) opSelect(op Op) (*Effect, error) {
	if e.sheet == nil {
		return nil, ErrNoSheet
	}
	id, err := e.sheet.Select(op.Predicate)
	if err != nil {
		return nil, err
	}
	return &Effect{ID: id}, nil
}

func (e *Engine) opGroup(op Op) (*Effect, error) {
	if e.sheet == nil {
		return nil, ErrNoSheet
	}
	dir, err := core.ParseDir(op.Dir)
	if err != nil {
		return nil, err
	}
	if err := e.sheet.GroupBy(dir, op.Columns...); err != nil {
		return nil, err
	}
	return &Effect{}, nil
}

func (e *Engine) opSort(op Op) (*Effect, error) {
	if e.sheet == nil {
		return nil, ErrNoSheet
	}
	dir, err := core.ParseDir(op.Dir)
	if err != nil {
		return nil, err
	}
	if err := e.sheet.Sort(op.Column, dir); err != nil {
		return nil, err
	}
	return &Effect{}, nil
}

func (e *Engine) opOrder(op Op) (*Effect, error) {
	if e.sheet == nil {
		return nil, ErrNoSheet
	}
	dir, err := core.ParseDir(op.Dir)
	if err != nil {
		return nil, err
	}
	if err := e.sheet.OrderBy(op.Column, dir, op.Level); err != nil {
		return nil, err
	}
	return &Effect{}, nil
}

func (e *Engine) opAgg(op Op) (*Effect, error) {
	if e.sheet == nil {
		return nil, ErrNoSheet
	}
	fn, err := relation.ParseAggFunc(op.Fn)
	if err != nil {
		return nil, err
	}
	got, err := e.sheet.AggregateAs(op.Name, fn, op.Column, op.Level)
	if err != nil {
		return nil, err
	}
	return &Effect{Column: got}, nil
}

func (e *Engine) opFormula(op Op) (*Effect, error) {
	if e.sheet == nil {
		return nil, ErrNoSheet
	}
	got, err := e.sheet.Formula(op.Name, op.Formula)
	if err != nil {
		return nil, err
	}
	return &Effect{Column: got}, nil
}

// opWindow applies ω: the Window field carries the full OVER expression and
// reuses the expression parser, so the wire format is one string — the same
// spelling the SQL layer and persistence use.
func (e *Engine) opWindow(op Op) (*Effect, error) {
	if e.sheet == nil {
		return nil, ErrNoSheet
	}
	if strings.TrimSpace(op.Window) == "" {
		return nil, fmt.Errorf("engine: window needs an OVER expression")
	}
	parsed, err := expr.Parse(op.Window)
	if err != nil {
		return nil, err
	}
	w, ok := parsed.(*expr.WindowCall)
	if !ok {
		return nil, fmt.Errorf("engine: %q is not a window expression (want FN(...) OVER (...))", op.Window)
	}
	got, err := e.sheet.WindowExprAs(op.Name, w)
	if err != nil {
		return nil, err
	}
	return &Effect{Column: got}, nil
}

func (e *Engine) opUndo(Op) (*Effect, error) {
	if e.sheet == nil {
		return nil, ErrNoSheet
	}
	entry, err := e.sheet.Undo()
	if err != nil {
		return nil, err
	}
	return &Effect{Entry: entry}, nil
}

func (e *Engine) opRedo(Op) (*Effect, error) {
	if e.sheet == nil {
		return nil, ErrNoSheet
	}
	entry, err := e.sheet.Redo()
	if err != nil {
		return nil, err
	}
	return &Effect{Entry: entry}, nil
}

func (e *Engine) opSave(op Op) (*Effect, error) {
	if e.sheet == nil {
		return nil, ErrNoSheet
	}
	if op.Name == "" {
		return nil, fmt.Errorf("engine: save needs a name")
	}
	if err := e.catalog.Save(op.Name, e.sheet); err != nil {
		return nil, err
	}
	return &Effect{Entry: fmt.Sprintf("saved sheet %q", op.Name)}, nil
}

func (e *Engine) opOpen(op Op) (*Effect, error) {
	sheet, err := e.catalog.Open(op.Name)
	if err != nil {
		return nil, err
	}
	e.sheet = sheet
	return &Effect{Entry: fmt.Sprintf("opened stored sheet %q", op.Name)}, nil
}

func (e *Engine) opClose(op Op) (*Effect, error) {
	if err := e.catalog.Close(op.Name); err != nil {
		return nil, err
	}
	return &Effect{Entry: fmt.Sprintf("closed stored sheet %q", op.Name)}, nil
}

func (e *Engine) opRenameSheet(op Op) (*Effect, error) {
	if err := e.catalog.Rename(op.Sheet, op.Name); err != nil {
		return nil, err
	}
	return &Effect{Entry: fmt.Sprintf("renamed stored sheet %q to %q", op.Sheet, op.Name)}, nil
}

// operand resolves a binary operator's second operand: a stored sheet by
// preference, falling back to a raw table opened as a base sheet.
func (e *Engine) operand(name string) (*core.Spreadsheet, error) {
	stored, err := e.catalog.Stored(name)
	if err == nil {
		return stored, nil
	}
	if rel, ok := e.tables.Table(name); ok {
		return core.New(rel), nil
	}
	return nil, err
}

func (e *Engine) opBinary(op Op) (*Effect, error) {
	if e.sheet == nil {
		return nil, ErrNoSheet
	}
	if op.Sheet == "" {
		return nil, fmt.Errorf("engine: %s needs a stored-sheet operand", op.Op)
	}
	stored, err := e.operand(op.Sheet)
	if err != nil {
		return nil, err
	}
	switch strings.ToLower(op.Op) {
	case "join":
		if strings.TrimSpace(op.On) == "" {
			return nil, fmt.Errorf("engine: join needs an ON condition")
		}
		err = e.sheet.Join(stored, op.On)
	case "product":
		err = e.sheet.Product(stored)
	case "union":
		err = e.sheet.Union(stored)
	case "minus":
		err = e.sheet.Difference(stored)
	}
	if err != nil {
		return nil, err
	}
	return &Effect{}, nil
}

// opExplain reports the evaluation stage plan of the current sheet as log
// lines (the REPL prints them verbatim); the structured form is served by
// GET /v1/sessions/{id}/plan. It evaluates (memoised) but mutates nothing.
func (e *Engine) opExplain(Op) (*Effect, error) {
	info, err := e.Plan()
	if err != nil {
		return nil, err
	}
	return &Effect{Entry: "explain", Log: info.Lines()}, nil
}

// opCompile turns a single-block SQL query into a live spreadsheet via the
// Theorem 1 construction: type SQL once, then manipulate the result
// directly.
func (e *Engine) opCompile(op Op) (*Effect, error) {
	if strings.TrimSpace(op.Query) == "" {
		return nil, fmt.Errorf("engine: compile needs a query")
	}
	stmt, err := sql.Parse(op.Query)
	if err != nil {
		return nil, err
	}
	table, ok := stmt.From.(*sql.TableRef)
	if !ok {
		return nil, fmt.Errorf("engine: compile needs a single FROM table (views handle joins)")
	}
	base, ok := e.tables.Table(table.Name)
	if !ok {
		return nil, fmt.Errorf("engine: no table %q (see tables)", table.Name)
	}
	prog, err := theorem1.Compile(base, stmt)
	if err != nil {
		return nil, err
	}
	e.sheet = prog.Sheet
	return &Effect{
		Entry: "compiled via the Theorem 1 construction",
		Log:   append([]string(nil), prog.Log...),
	}, nil
}

func (e *Engine) opSaveState(op Op) (*Effect, error) {
	if e.sheet == nil {
		return nil, ErrNoSheet
	}
	if op.Path == "" {
		return nil, fmt.Errorf("engine: savestate needs a path")
	}
	data, err := e.sheet.MarshalState()
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(op.Path, data, 0o644); err != nil {
		return nil, err
	}
	return &Effect{Entry: "saved query state to " + op.Path}, nil
}

func (e *Engine) opLoadState(op Op) (*Effect, error) {
	if op.Path == "" {
		return nil, fmt.Errorf("engine: loadstate needs a path")
	}
	data, err := os.ReadFile(op.Path)
	if err != nil {
		return nil, err
	}
	if err := e.RestoreSheet(data); err != nil {
		return nil, err
	}
	return &Effect{Entry: "restored query state from " + op.Path}, nil
}

// RestoreSheet rebuilds the current sheet from serialized query state (the
// savestate/core persist format), resolving the base relation from the
// session's raw-table registry. Shared by the loadstate op and by WAL
// snapshot recovery.
func (e *Engine) RestoreSheet(data []byte) error {
	// Peek at the base name to find the backing table.
	var head struct {
		BaseName string `json:"base_name"`
	}
	if err := json.Unmarshal(data, &head); err != nil {
		return fmt.Errorf("engine: bad state file: %w", err)
	}
	base, ok := e.tables.Table(head.BaseName)
	if !ok {
		return fmt.Errorf("engine: state needs table %q; load it first", head.BaseName)
	}
	sheet, err := core.RestoreState(base, data)
	if err != nil {
		return err
	}
	e.sheet = sheet
	return nil
}

// MarshalSheetFull serialises the active sheet's complete interaction state
// (query state plus undo/redo stacks) via core.MarshalFull. WAL snapshot
// checkpoints use it so recovery preserves undo history; it fails with
// core.ErrHistoryNotPortable when the history crosses a binary operator.
func (e *Engine) MarshalSheetFull() ([]byte, error) {
	if e.sheet == nil {
		return nil, ErrNoSheet
	}
	return e.sheet.MarshalFull()
}

// RestoreSheetFull is RestoreSheet's counterpart for the MarshalSheetFull
// document: it rebuilds the sheet with its undo/redo stacks and operator
// counter intact.
func (e *Engine) RestoreSheetFull(data []byte) error {
	var head struct {
		State struct {
			BaseName string `json:"base_name"`
		} `json:"state"`
	}
	if err := json.Unmarshal(data, &head); err != nil {
		return fmt.Errorf("engine: bad state file: %w", err)
	}
	base, ok := e.tables.Table(head.State.BaseName)
	if !ok {
		return fmt.Errorf("engine: state needs table %q; load it first", head.State.BaseName)
	}
	sheet, err := core.RestoreFull(base, data)
	if err != nil {
		return err
	}
	e.sheet = sheet
	return nil
}

func (e *Engine) opExport(op Op) (*Effect, error) {
	if e.sheet == nil {
		return nil, ErrNoSheet
	}
	if op.Path == "" {
		return nil, fmt.Errorf("engine: export needs a path")
	}
	res, err := e.sheet.Evaluate()
	if err != nil {
		return nil, err
	}
	if err := res.Table.SaveCSV(op.Path); err != nil {
		return nil, err
	}
	return &Effect{
		Entry: fmt.Sprintf("exported %d rows to %s", res.Table.Len(), op.Path),
		Rows:  res.Table.Len(),
	}, nil
}
