package engine

import (
	"fmt"

	"sheetmusiq/internal/core"
)

// This file is the read side of the command surface: structured,
// JSON-serialisable views of the session the REPL prints as text and the
// HTTP service returns as bodies. Both are projections of the same
// core.Spreadsheet accessors, so the two front ends always agree.

// SelectionInfo is one live σ instance.
type SelectionInfo struct {
	ID  int    `json:"id"`
	SQL string `json:"sql"`
}

// ComputedInfo is one computed-column definition.
type ComputedInfo struct {
	Name    string `json:"name"`
	Kind    string `json:"kind"` // "aggregate", "formula" or "window"
	Agg     string `json:"agg,omitempty"`
	Input   string `json:"input,omitempty"`
	Level   int    `json:"level,omitempty"`
	Formula string `json:"formula,omitempty"`
	Window  string `json:"window,omitempty"` // OVER-clause SQL of a window column
}

// GroupingInfo is one grouping level below the root.
type GroupingInfo struct {
	Level int      `json:"level"` // 1-based; the root is level 1
	Rel   []string `json:"rel"`
	Dir   string   `json:"dir"`
	By    string   `json:"by,omitempty"`
}

// OrderInfo is one finest-level sort key.
type OrderInfo struct {
	Column string `json:"column"`
	Dir    string `json:"dir"`
}

// StateInfo is the full query state of Sec. V-A, plus session metadata.
type StateInfo struct {
	Sheet      string          `json:"sheet"`
	Version    int             `json:"version"`
	Visible    []string        `json:"visible"`
	Hidden     []string        `json:"hidden,omitempty"`
	Selections []SelectionInfo `json:"selections,omitempty"`
	Computed   []ComputedInfo  `json:"computed,omitempty"`
	Grouping   []GroupingInfo  `json:"grouping,omitempty"`
	Order      []OrderInfo     `json:"order,omitempty"`
	DistinctOn []string        `json:"distinct_on,omitempty"`
	History    []string        `json:"history,omitempty"`
}

// State returns the current sheet's query state.
func (e *Engine) State() (*StateInfo, error) {
	s := e.sheet
	if s == nil {
		return nil, ErrNoSheet
	}
	info := &StateInfo{
		Sheet:   s.Name(),
		Version: s.Version(),
		Visible: s.VisibleSchema().Names(),
		Hidden:  s.HiddenColumns(),
		History: s.History(),
	}
	for _, sel := range s.Selections("") {
		info.Selections = append(info.Selections, SelectionInfo{ID: sel.ID, SQL: sel.Pred.SQL()})
	}
	for _, c := range s.ComputedColumns() {
		ci := ComputedInfo{Name: c.Name}
		switch c.Kind {
		case core.KindAggregate:
			ci.Kind = "aggregate"
			ci.Agg = string(c.Agg)
			ci.Input = c.Input
			ci.Level = c.Level
		case core.KindWindow:
			ci.Kind = "window"
			ci.Window = c.Win.SQL()
		default:
			ci.Kind = "formula"
			ci.Formula = c.Formula.SQL()
		}
		info.Computed = append(info.Computed, ci)
	}
	for i, g := range s.Grouping() {
		info.Grouping = append(info.Grouping, GroupingInfo{
			Level: i + 2, Rel: g.Rel, Dir: g.Dir.String(), By: g.By})
	}
	for _, k := range s.FinestOrder() {
		info.Order = append(info.Order, OrderInfo{Column: k.Column, Dir: k.Dir.String()})
	}
	info.DistinctOn = s.DistinctColumns()
	return info, nil
}

// Selections lists the live σ instances, optionally filtered to a column.
func (e *Engine) Selections(column string) []SelectionInfo {
	if e.sheet == nil {
		return nil
	}
	var out []SelectionInfo
	for _, sel := range e.sheet.Selections(column) {
		out = append(out, SelectionInfo{ID: sel.ID, SQL: sel.Pred.SQL()})
	}
	return out
}

// Grid is the flat evaluated table: every cell rendered to text, rows in
// presentation order.
type Grid struct {
	Sheet   string     `json:"sheet"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	// Total is the full evaluated row count; len(Rows) may be smaller when
	// a limit applied.
	Total int `json:"total"`
}

// Grid evaluates the sheet and renders at most limit rows (limit <= 0
// renders everything).
func (e *Engine) Grid(limit int) (*Grid, error) {
	res, err := e.Evaluate()
	if err != nil {
		return nil, err
	}
	n := res.Table.Len()
	if limit > 0 && limit < n {
		n = limit
	}
	g := &Grid{
		Sheet:   e.SheetName(),
		Columns: res.Table.Schema.Names(),
		Rows:    make([][]string, 0, n),
		Total:   res.Table.Len(),
	}
	for _, row := range res.Table.TupleRows()[:n] {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		g.Rows = append(g.Rows, cells)
	}
	return g, nil
}

// TreeNode is the recursive group tree in serialisable form. The root is
// level 1 (grouping by {NULL}); Start/End delimit the node's rows in the
// grid ([Start, End)).
type TreeNode struct {
	Level    int         `json:"level"`
	Basis    []string    `json:"basis,omitempty"` // the level's relative basis attributes
	Key      []string    `json:"key,omitempty"`   // this group's basis values
	Rows     int         `json:"rows"`
	Start    int         `json:"start"`
	End      int         `json:"end"`
	Children []*TreeNode `json:"children,omitempty"`
}

// Tree evaluates the sheet and returns its recursive group tree.
func (e *Engine) Tree() (*TreeNode, error) {
	res, err := e.Evaluate()
	if err != nil {
		return nil, err
	}
	var walk func(g *core.Group) *TreeNode
	walk = func(g *core.Group) *TreeNode {
		n := &TreeNode{Level: g.Level, Rows: g.Rows(), Start: g.Start, End: g.End}
		if g.Level > 1 {
			n.Basis = append([]string(nil), res.Levels[g.Level-2].Rel...)
			for _, v := range g.Key {
				n.Key = append(n.Key, v.String())
			}
		}
		for _, c := range g.Children {
			n.Children = append(n.Children, walk(c))
		}
		return n
	}
	return walk(res.Root), nil
}

// MenuInfo is the contextual menu of Sec. VI for one column.
type MenuInfo struct {
	Column          string          `json:"column"`
	Kind            string          `json:"kind"`
	FilterOps       []string        `json:"filter_ops,omitempty"`
	Aggregates      []string        `json:"aggregates,omitempty"`
	AggregateLevels int             `json:"aggregate_levels"`
	CanGroup        bool            `json:"can_group"`
	CanSortFinest   bool            `json:"can_sort_finest"`
	CanHide         bool            `json:"can_hide"`
	CanReinstate    bool            `json:"can_reinstate"`
	Selections      []SelectionInfo `json:"selections,omitempty"`
}

// Menu computes the contextual menu for the named column.
func (e *Engine) Menu(column string) (*MenuInfo, error) {
	if e.sheet == nil {
		return nil, ErrNoSheet
	}
	if column == "" {
		return nil, fmt.Errorf("engine: menu needs a column")
	}
	m, err := e.sheet.Suggest(column)
	if err != nil {
		return nil, err
	}
	info := &MenuInfo{
		Column:          m.Column,
		Kind:            m.Kind.String(),
		FilterOps:       m.FilterOps,
		AggregateLevels: m.AggregateLevels,
		CanGroup:        m.CanGroup,
		CanSortFinest:   m.CanSortFinest,
		CanHide:         m.CanHide,
		CanReinstate:    m.CanReinstate,
	}
	for _, a := range m.Aggregates {
		info.Aggregates = append(info.Aggregates, string(a))
	}
	for _, sel := range m.ExistingSelections {
		info.Selections = append(info.Selections, SelectionInfo{ID: sel.ID, SQL: sel.Pred.SQL()})
	}
	return info, nil
}

// PlanStage is one pipeline stage of the most recent evaluation.
// Fingerprint is the stage's DAG-keyed content hash, rendered as hex so
// JSON clients need not handle 64-bit integers. ID is the stable node ID
// shared with the dependency surface (deps.go), so /plan and /deps lines
// cross-reference.
type PlanStage struct {
	ID          string  `json:"id"`
	Name        string  `json:"name"`
	Fingerprint string  `json:"fingerprint"`
	Cached      bool    `json:"cached"`
	Rows        int     `json:"rows"`
	DurationMS  float64 `json:"duration_ms"`
}

// PlanInfo is the evaluation stage plan: which pipeline stages the last
// Evaluate reused from the snapshot cache and which it recomputed, with
// per-stage row counts and recompute timings. Error is set when the
// evaluation aborted mid-pipeline (the stages reached are still listed).
type PlanInfo struct {
	Sheet   string      `json:"sheet"`
	Version int         `json:"version"`
	Stages  []PlanStage `json:"stages"`
	Error   string      `json:"error,omitempty"`
}

// Lines renders the plan as the text the REPL's `explain` command prints —
// the same data the /plan endpoint returns structurally.
func (p *PlanInfo) Lines() []string {
	out := make([]string, 0, len(p.Stages)+1)
	for i, st := range p.Stages {
		marker := "recomputed"
		if st.Cached {
			marker = "cached"
		}
		line := fmt.Sprintf("stage %d: %-28s %-10s %d rows", i+1, st.Name, marker, st.Rows)
		if !st.Cached && st.DurationMS > 0 {
			line += fmt.Sprintf("  %.2fms", st.DurationMS)
		}
		out = append(out, line)
	}
	if p.Error != "" {
		out = append(out, "error: "+p.Error)
	}
	return out
}

// Plan evaluates the current sheet (memoised when the version is unchanged)
// and returns its stage plan.
func (e *Engine) Plan() (*PlanInfo, error) {
	if e.sheet == nil {
		return nil, ErrNoSheet
	}
	plan, err := e.sheet.Plan()
	if err != nil {
		return nil, err
	}
	info := &PlanInfo{Sheet: e.SheetName(), Version: plan.Version, Error: plan.Error}
	for _, st := range plan.Stages {
		info.Stages = append(info.Stages, PlanStage{
			ID:          st.ID,
			Name:        st.Name,
			Fingerprint: fmt.Sprintf("%016x", st.Fingerprint),
			Cached:      st.Cached,
			Rows:        st.Rows,
			DurationMS:  float64(st.Duration) / 1e6,
		})
	}
	return info, nil
}
