package engine

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestApplyWindow(t *testing.T) {
	e := demoCars(t)
	eff := must(t, e, Op{Op: "window", Name: "R",
		Window: "RANK() OVER (PARTITION BY Model ORDER BY Price)"})
	if eff.Column != "R" {
		t.Fatalf("window created column %q, want R", eff.Column)
	}
	if !strings.HasPrefix(eff.Entry, "ω") {
		t.Fatalf("window entry %q should be the ω history line", eff.Entry)
	}
	grid, err := e.Grid(0)
	if err != nil {
		t.Fatal(err)
	}
	last := len(grid.Columns) - 1
	if grid.Columns[last] != "R" {
		t.Fatalf("grid columns: %v", grid.Columns)
	}
	want := []string{"1", "2", "3", "4", "5", "6", "1", "2", "3"}
	for i, row := range grid.Rows {
		if row[last] != want[i] {
			t.Fatalf("row %d rank = %s, want %s", i, row[last], want[i])
		}
	}
}

func TestApplyWindowStateAndTopK(t *testing.T) {
	e := demoCars(t)
	must(t, e, Op{Op: "window", Name: "R",
		Window: "RANK() OVER (PARTITION BY Model ORDER BY Price)"})
	st, err := e.State()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Computed) != 1 || st.Computed[0].Kind != "window" {
		t.Fatalf("computed state: %+v", st.Computed)
	}
	if !strings.Contains(st.Computed[0].Window, "RANK() OVER") {
		t.Fatalf("window SQL: %q", st.Computed[0].Window)
	}
	// The paper's top-k-per-group idiom: a later σ over the ω column.
	must(t, e, Op{Op: "select", Predicate: "R <= 2"})
	grid, err := e.Grid(0)
	if err != nil {
		t.Fatal(err)
	}
	if grid.Total != 4 {
		t.Fatalf("top-2 per model rows = %d, want 4", grid.Total)
	}
}

func TestApplyWindowJSONRoundTrip(t *testing.T) {
	in := Op{Op: "window", Name: "Mov",
		Window: "SUM(Price) OVER (PARTITION BY Model ORDER BY Price ROWS BETWEEN 1 PRECEDING AND CURRENT ROW)"}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"window":`) {
		t.Fatalf("marshalled op lacks window field: %s", b)
	}
	var out Op
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.Window != in.Window {
		t.Fatalf("round-trip window = %q", out.Window)
	}
	e := demoCars(t)
	eff := must(t, e, out)
	if eff.Column != "Mov" {
		t.Fatalf("column %q", eff.Column)
	}
}

func TestApplyWindowErrors(t *testing.T) {
	e := demoCars(t)
	cases := []struct {
		op   Op
		want string
	}{
		{Op{Op: "window", Name: "R"}, "OVER expression"},
		{Op{Op: "window", Name: "R", Window: "Price + 1"}, "not a window expression"},
		{Op{Op: "window", Name: "R", Window: "RANK() OVER (PARTITION BY Model)"}, "ORDER BY"},
		{Op{Op: "window", Name: "R", Window: "SUM(Nope) OVER (ORDER BY Price)"}, "unknown column"},
	}
	for _, tc := range cases {
		if _, err := e.Apply(tc.op); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%+v: err = %v, want substring %q", tc.op, err, tc.want)
		}
	}
	bare := New(nil)
	if _, err := bare.Apply(Op{Op: "window", Name: "R",
		Window: "RANK() OVER (ORDER BY Price)"}); err == nil {
		t.Fatal("window without a sheet should fail")
	}
}

// TestApplyWindowPlanShowsStage: the /plan surface lists the ω stage with
// its fingerprint, so clients can watch the window node cache or recompute.
func TestApplyWindowPlanShowsStage(t *testing.T) {
	e := demoCars(t)
	must(t, e, Op{Op: "window", Name: "R",
		Window: "RANK() OVER (PARTITION BY Model ORDER BY Price)"})
	plan, err := e.Plan()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, st := range plan.Stages {
		if !strings.HasPrefix(st.Name, "ω R") {
			continue
		}
		found = true
		if len(st.Fingerprint) != 16 || st.Fingerprint == "0000000000000000" {
			t.Fatalf("ω stage fingerprint = %q, want a 64-bit hex digest", st.Fingerprint)
		}
		if st.Cached {
			t.Fatal("first plan reported the ω stage cached")
		}
	}
	if !found {
		t.Fatalf("no ω stage in plan: %+v", plan.Stages)
	}
}
