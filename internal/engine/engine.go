// Package engine is the shared command surface of the spreadsheet algebra:
// one session's worth of interaction state — the current sheet, the raw
// table registry, and a (possibly shared) stored-sheet catalog — driven by
// structured operations. Both the textual REPL (internal/repl) and the
// HTTP service (internal/server) execute every command through an Engine,
// so the two front ends cannot drift apart: a REPL line and a JSON op body
// are two spellings of the same engine.Op.
//
// An Engine is NOT safe for concurrent use; callers that share one across
// goroutines (the server's sessions) must serialise access. The Catalog an
// engine uses MAY be shared between engines — core.Catalog is safe for
// concurrent use, which is what lets one session's binary operator consume
// a sheet another session saved.
package engine

import (
	"fmt"
	"strings"

	"sheetmusiq/internal/core"
	"sheetmusiq/internal/relation"
	"sheetmusiq/internal/sql"
	"sheetmusiq/internal/sqlgen"
)

// Engine is one spreadsheet session's execution state.
type Engine struct {
	catalog *core.Catalog
	tables  *sql.DB
	sheet   *core.Spreadsheet
}

// New creates an engine over the given stored-sheet catalog; pass nil for a
// private catalog. The raw-table registry is always private to the engine.
func New(catalog *core.Catalog) *Engine {
	if catalog == nil {
		catalog = core.NewCatalog()
	}
	return &Engine{catalog: catalog, tables: sql.NewDB()}
}

// HasSheet reports whether a current sheet exists.
func (e *Engine) HasSheet() bool { return e.sheet != nil }

// Sheet returns the current sheet (nil when none is open).
func (e *Engine) Sheet() *core.Spreadsheet { return e.sheet }

// SheetName returns the current sheet's name, or "".
func (e *Engine) SheetName() string {
	if e.sheet == nil {
		return ""
	}
	return e.sheet.Name()
}

// Version returns the current sheet's operator count, or 0.
func (e *Engine) Version() int {
	if e.sheet == nil {
		return 0
	}
	return e.sheet.Version()
}

// Catalog returns the stored-sheet catalog the engine works against.
func (e *Engine) Catalog() *core.Catalog { return e.catalog }

// DB returns the engine's raw-table registry, e.g. for pre-seeding tables
// before the session starts.
func (e *Engine) DB() *sql.DB { return e.tables }

// TableNames lists the registered raw tables.
func (e *Engine) TableNames() []string { return e.tables.Names() }

// StoredNames lists the catalog's stored sheets.
func (e *Engine) StoredNames() []string { return e.catalog.Names() }

// History returns the current sheet's operation log.
func (e *Engine) History() []string {
	if e.sheet == nil {
		return nil
	}
	return e.sheet.History()
}

// Evaluate returns the current sheet's evaluated result (memoised by core
// until the next operator). Treat the result as read-only.
func (e *Engine) Evaluate() (*core.Result, error) {
	if e.sheet == nil {
		return nil, ErrNoSheet
	}
	return e.sheet.Evaluate()
}

// RunSQL executes raw SQL against the registered tables.
func (e *Engine) RunSQL(query string) (*relation.Relation, error) {
	if strings.TrimSpace(query) == "" {
		return nil, fmt.Errorf("engine: empty query")
	}
	return e.tables.Query(query)
}

// SQL compiles the current query state to its SQL equivalent.
func (e *Engine) SQL() (string, error) {
	if e.sheet == nil {
		return "", ErrNoSheet
	}
	plan, err := sqlgen.Compile(e.sheet)
	if err != nil {
		return "", err
	}
	return plan.SQL, nil
}

// Stages returns the staged-evaluation explanation of the compiled SQL.
func (e *Engine) Stages() ([]string, error) {
	if e.sheet == nil {
		return nil, ErrNoSheet
	}
	plan, err := sqlgen.Compile(e.sheet)
	if err != nil {
		return nil, err
	}
	return append([]string(nil), plan.Stages...), nil
}

// ErrNoSheet is the shared "operate before loading data" failure. It is
// exported so front ends can map it with errors.Is (the HTTP API turns it
// into 409 Conflict) instead of matching the message text.
var ErrNoSheet = fmt.Errorf("no current sheet; load or demo first")
