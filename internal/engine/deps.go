package engine

import (
	"fmt"
	"strconv"
	"strings"

	"sheetmusiq/internal/graph"
)

// The dependency surface: the exact stage/column dependency graph the
// evaluation pipeline keys its invalidation on (core.Deps), projected into
// the same JSON-serialisable view shape as the plan. The REPL's `deps` and
// `impact` commands and GET /v1/sessions/{id}/deps both read it, so the
// front ends agree with the cache's own notion of what depends on what.

// DepNode is one graph node. Stage nodes carry the hex fingerprint and the
// last evaluation's cache standing; base-column leaves only identify.
type DepNode struct {
	ID          string  `json:"id"`
	Kind        string  `json:"kind"`
	Label       string  `json:"label"`
	Fingerprint string  `json:"fingerprint,omitempty"`
	Cached      bool    `json:"cached,omitempty"`
	Rows        int     `json:"rows,omitempty"`
	DurationMS  float64 `json:"duration_ms,omitempty"`
}

// DepEdge is one dependency edge: To depends on From.
type DepEdge struct {
	From string `json:"from"`
	To   string `json:"to"`
}

// DepsInfo is the dependency graph, optionally focused on one node: with a
// focus, Dependencies lists everything the node transitively reads and
// Dependents everything downstream of it (the set a modification of the
// node invalidates); with a target, Path traces one shortest dependency
// chain between the two.
type DepsInfo struct {
	Sheet        string    `json:"sheet"`
	Version      int       `json:"version"`
	Nodes        []DepNode `json:"nodes"`
	Edges        []DepEdge `json:"edges"`
	Node         string    `json:"node,omitempty"`
	Dependencies []string  `json:"dependencies,omitempty"`
	Dependents   []string  `json:"dependents,omitempty"`
	Target       string    `json:"target,omitempty"`
	Path         []string  `json:"path,omitempty"`
}

// Deps returns the current sheet's dependency graph. node, when non-empty,
// focuses the result: it accepts a node ID ("col:margin", "sel:3", "order"),
// a bare column name (resolved to its computed stage or base-column leaf),
// or a bare selection number. to additionally asks for a dependency path
// from the focus node to the target (in either direction).
func (e *Engine) Deps(node, to string) (*DepsInfo, error) {
	if e.sheet == nil {
		return nil, ErrNoSheet
	}
	deps, err := e.sheet.Deps()
	if err != nil {
		return nil, err
	}
	info := &DepsInfo{Sheet: e.SheetName(), Version: deps.Version}
	g := graph.New()
	for _, n := range deps.Nodes {
		g.Add(n.ID)
		dn := DepNode{ID: n.ID, Kind: n.Kind, Label: n.Label,
			Cached: n.Cached, Rows: n.Rows, DurationMS: float64(n.Duration) / 1e6}
		if n.Fingerprint != 0 {
			dn.Fingerprint = fmt.Sprintf("%016x", n.Fingerprint)
		}
		info.Nodes = append(info.Nodes, dn)
	}
	for _, ed := range deps.Edges {
		g.AddEdge(ed.From, ed.To)
		info.Edges = append(info.Edges, DepEdge{From: ed.From, To: ed.To})
	}
	if node == "" {
		if to != "" {
			return nil, fmt.Errorf("engine: a path target needs a source node")
		}
		return info, nil
	}
	from, err := resolveNode(g, node)
	if err != nil {
		return nil, err
	}
	info.Node = from
	info.Dependencies = g.Ancestors(from)
	info.Dependents = g.Descendants(from)
	if to != "" {
		target, err := resolveNode(g, to)
		if err != nil {
			return nil, err
		}
		info.Target = target
		if p := g.Path(from, target); p != nil {
			info.Path = p
		} else if p := g.Path(target, from); p != nil {
			info.Path = p
		}
	}
	return info, nil
}

// resolveNode maps user input to a graph node ID: an exact ID first, then a
// column name (computed stage before base leaf — the stage is what carries
// execution data), then a bare selection number.
func resolveNode(g *graph.Graph, in string) (string, error) {
	if g.Has(in) {
		return in, nil
	}
	lk := strings.ToLower(in)
	for _, cand := range []string{lk, "col:" + lk, "basecol:" + lk} {
		if g.Has(cand) {
			return cand, nil
		}
	}
	if n, err := strconv.Atoi(in); err == nil {
		cand := fmt.Sprintf("sel:%d", n)
		if g.Has(cand) {
			return cand, nil
		}
	}
	return "", fmt.Errorf("engine: no dependency node %q (try a column name, a selection id, or `deps` for the full graph)", in)
}

// Lines renders the dependency view as the text the REPL prints. The full
// graph lists each node with its direct dependencies; a focused query
// prints the closure sets (and path) instead.
func (d *DepsInfo) Lines() []string {
	var out []string
	if d.Node == "" {
		byTo := map[string][]string{}
		for _, ed := range d.Edges {
			byTo[ed.To] = append(byTo[ed.To], ed.From)
		}
		for _, n := range d.Nodes {
			status := ""
			if n.Kind != "basecol" {
				status = "recomputed"
				if n.Cached {
					status = "cached"
				}
				status = fmt.Sprintf("%-10s %d rows", status, n.Rows)
			}
			line := fmt.Sprintf("%-20s %-10s %-26s %s", n.ID, n.Kind, n.Label, status)
			if deps := byTo[n.ID]; len(deps) > 0 {
				line += "  ⇐ " + strings.Join(deps, ", ")
			}
			out = append(out, strings.TrimRight(line, " "))
		}
		return out
	}
	out = append(out, "node: "+d.Node)
	if len(d.Dependencies) > 0 {
		out = append(out, "dependencies: "+strings.Join(d.Dependencies, ", "))
	} else {
		out = append(out, "dependencies: (none)")
	}
	if len(d.Dependents) > 0 {
		out = append(out, "dependents: "+strings.Join(d.Dependents, ", "))
	} else {
		out = append(out, "dependents: (none)")
	}
	if d.Target != "" {
		if len(d.Path) > 0 {
			out = append(out, "path: "+strings.Join(d.Path, " → "))
		} else {
			out = append(out, fmt.Sprintf("path: none between %s and %s", d.Node, d.Target))
		}
	}
	return out
}

// opDeps serves the dependency surface as an op: Column carries the focus
// node and Name the path target. Like explain, it evaluates (memoised) but
// mutates nothing.
func (e *Engine) opDeps(op Op) (*Effect, error) {
	info, err := e.Deps(op.Column, op.Name)
	if err != nil {
		return nil, err
	}
	return &Effect{Entry: "deps", Log: info.Lines()}, nil
}
