package dataset

import (
	"testing"

	"sheetmusiq/internal/value"
)

func TestUsedCarsMatchesTableI(t *testing.T) {
	r := UsedCars()
	if r.Len() != 9 {
		t.Fatalf("rows = %d, want 9", r.Len())
	}
	if !r.Schema.Equal(CarSchema()) {
		t.Fatalf("schema = %v", r.Schema)
	}
	// Spot-check the first and last printed rows of the paper's Table I.
	first, last := r.Rows[0], r.Rows[8]
	if first[0].Int() != 304 || first[1].Str() != "Jetta" || first[2].Int() != 14500 {
		t.Errorf("first row = %v", first)
	}
	if last[0].Int() != 322 || last[1].Str() != "Civic" || last[5].Str() != "Good" {
		t.Errorf("last row = %v", last)
	}
}

func TestUsedCarsIndependentCopies(t *testing.T) {
	a := UsedCars()
	b := UsedCars()
	a.Rows[0][0] = value.NewInt(999)
	if b.Rows[0][0].Int() == 999 {
		t.Fatal("UsedCars must return independent relations")
	}
}

func TestRandomCarsDeterministic(t *testing.T) {
	a := RandomCars(100, 7)
	b := RandomCars(100, 7)
	if a.Len() != 100 || b.Len() != 100 {
		t.Fatalf("lengths = %d, %d", a.Len(), b.Len())
	}
	for i := range a.Rows {
		if a.Rows[i].Key() != b.Rows[i].Key() {
			t.Fatalf("row %d differs for identical seeds", i)
		}
	}
	c := RandomCars(100, 8)
	if c.Rows[0].Key() == a.Rows[0].Key() {
		t.Error("different seeds should differ")
	}
}

func TestRandomCarsSchemaAndRanges(t *testing.T) {
	r := RandomCars(500, 1)
	if !r.Schema.Equal(CarSchema()) {
		t.Fatalf("schema = %v", r.Schema)
	}
	yi := r.Schema.IndexOf("Year")
	pi := r.Schema.IndexOf("Price")
	for _, row := range r.Rows {
		if y := row[yi].Int(); y < 2000 || y > 2008 {
			t.Fatalf("year %d out of range", y)
		}
		if p := row[pi].Int(); p < 8000 || p > 33000 {
			t.Fatalf("price %d out of range", p)
		}
	}
}
