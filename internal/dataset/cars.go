// Package dataset provides the paper's running-example data: the sample
// used-car relation of Table I (Sec. I-B). Tests, examples, and benchmarks
// all draw from here so the fixtures stay byte-identical to the paper.
package dataset

import (
	"math/rand"

	"sheetmusiq/internal/relation"
	"sheetmusiq/internal/value"
)

// CarSchema returns the schema of the used-car relation.
func CarSchema() relation.Schema {
	return relation.Schema{
		{Name: "ID", Kind: value.KindInt},
		{Name: "Model", Kind: value.KindString},
		{Name: "Price", Kind: value.KindInt},
		{Name: "Year", Kind: value.KindInt},
		{Name: "Mileage", Kind: value.KindInt},
		{Name: "Condition", Kind: value.KindString},
	}
}

// UsedCars returns the nine sample records of Table I, in the paper's
// printed order.
func UsedCars() *relation.Relation {
	r := relation.New("cars", CarSchema())
	add := func(id int64, model string, price, year, mileage int64, cond string) {
		r.MustAppend(value.NewInt(id), value.NewString(model), value.NewInt(price),
			value.NewInt(year), value.NewInt(mileage), value.NewString(cond))
	}
	add(304, "Jetta", 14500, 2005, 76000, "Good")
	add(872, "Jetta", 15000, 2005, 50000, "Excellent")
	add(901, "Jetta", 16000, 2005, 40000, "Excellent")
	add(423, "Jetta", 17000, 2006, 42000, "Good")
	add(723, "Jetta", 17500, 2006, 39000, "Excellent")
	add(725, "Jetta", 18000, 2006, 30000, "Excellent")
	add(132, "Civic", 13500, 2005, 86000, "Good")
	add(879, "Civic", 15000, 2006, 68000, "Good")
	add(322, "Civic", 16000, 2006, 73000, "Good")
	return r
}

var (
	models     = []string{"Jetta", "Civic", "Corolla", "Accord", "Focus", "Altima", "Passat", "Camry"}
	conditions = []string{"Excellent", "Good", "Fair", "Poor"}
)

// RandomCars returns n synthetic used-car rows for scale benchmarks, using
// a deterministic seed so runs are reproducible.
func RandomCars(n int, seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	r := relation.New("cars", CarSchema())
	for i := 0; i < n; i++ {
		r.MustAppend(
			value.NewInt(int64(1000+i)),
			value.NewString(models[rng.Intn(len(models))]),
			value.NewInt(8000+int64(rng.Intn(250))*100),
			value.NewInt(2000+int64(rng.Intn(9))),
			value.NewInt(int64(rng.Intn(180))*1000),
			value.NewString(conditions[rng.Intn(len(conditions))]),
		)
	}
	return r
}
