package value

import "math"

// Hashing for grouping and join kernels. The contract mirrors Key(): two
// values that compare equal under Compare must produce the same hash, so
// numerically equal integers and floats coincide. Unlike Key(), hashing
// never formats a string, which is what makes the hash-based grouping and
// join kernels allocation-free per row.
//
// The hash is deterministic for the life of the process (no per-process
// seed): chunked parallel builds merge per-chunk tables, and a stable hash
// keeps the merged table identical to the sequential build.

// Hash tags. Numeric kinds share one tag so int/float coincidence reduces
// to payload coincidence.
const (
	hashTagNull    uint64 = 0x9ae16a3b2f90404f
	hashTagNumeric uint64 = 0xc3a5c85c97cb3127
	hashTagBigInt  uint64 = 0xb492b66fbe98f273
	hashTagString  uint64 = 0x8648dbdb54b3b215
	hashTagBool    uint64 = 0xff51afd7ed558ccd
	hashTagDate    uint64 = 0xc4ceb9fe1a85ec53
)

// mix64 is the SplitMix64 finaliser: a cheap, well-distributed 64-bit
// avalanche (Steele et al.), the standard way to turn raw payload bits into
// table-ready hash bits.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// floatHashBits normalises a float payload so that numeric equality implies
// bit equality: -0 folds into +0 (Compare treats them as equal) and every
// NaN payload folds into one canonical NaN (NaNs group with themselves).
func floatHashBits(f float64) uint64 {
	if f == 0 {
		return 0
	}
	if math.IsNaN(f) {
		return math.Float64bits(math.NaN())
	}
	return math.Float64bits(f)
}

// maxExactFloat is 2^63 as a float64; int64 payloads at or above it cannot
// be round-tripped through float64 safely.
const maxExactFloat = 9223372036854775808.0

// Hash returns a 64-bit hash of v such that Equal(a, b) implies
// Hash(a) == Hash(b) for all values Compare orders consistently. Integers
// hash through their float64 image whenever that image is exact (always
// below 2^53, and for exactly representable larger values such as powers of
// two), so cross-kind numeric equality lands in the same hash bucket.
func Hash(v Value) uint64 {
	switch v.kind {
	case KindNull:
		return hashTagNull
	case KindInt:
		if v.i > -(1<<53) && v.i < 1<<53 {
			return hashTagNumeric ^ mix64(floatHashBits(float64(v.i)))
		}
		// The range check is inclusive below: -2^63 is itself an int64
		// (MinInt64), while +2^63 is not.
		if f := float64(v.i); f >= -maxExactFloat && f < maxExactFloat && int64(f) == v.i {
			return hashTagNumeric ^ mix64(floatHashBits(f))
		}
		return hashTagBigInt ^ mix64(uint64(v.i))
	case KindFloat:
		// A float that exactly equals an int64 above 2^53 must coincide with
		// that integer's hash; such floats are exactly representable, so both
		// sides use the float image (the KindInt arm above).
		return hashTagNumeric ^ mix64(floatHashBits(v.f))
	case KindString:
		return hashTagString ^ hashString(v.s)
	case KindBool:
		return hashTagBool ^ mix64(uint64(v.i))
	case KindDate:
		return hashTagDate ^ mix64(uint64(v.i))
	default:
		return mix64(uint64(v.kind))
	}
}

// hashString is FNV-1a 64 over the bytes, finalised through mix64 for
// avalanche on short keys.
func hashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return mix64(h)
}

// HashCombine folds the hash of one more value into a running row hash.
// The combine is order-dependent (grouping keys are positional).
func HashCombine(h uint64, v Value) uint64 {
	return mix64(h ^ Hash(v))
}

// Typed payload hashes for the columnar kernels: each is exactly the
// corresponding Hash arm, so hashing a column payload directly produces the
// same bits as boxing the cell first. Mix64 exposes the combine finaliser so
// Col.HashInto can replicate HashCombine word for word.

// Mix64 is the exported combine finaliser (see mix64).
func Mix64(x uint64) uint64 { return mix64(x) }

// HashNull returns Hash of the NULL value.
func HashNull() uint64 { return hashTagNull }

// HashInt returns Hash of NewInt(i).
func HashInt(i int64) uint64 {
	if i > -(1<<53) && i < 1<<53 {
		return hashTagNumeric ^ mix64(floatHashBits(float64(i)))
	}
	if f := float64(i); f >= -maxExactFloat && f < maxExactFloat && int64(f) == i {
		return hashTagNumeric ^ mix64(floatHashBits(f))
	}
	return hashTagBigInt ^ mix64(uint64(i))
}

// HashFloat returns Hash of NewFloat(f).
func HashFloat(f float64) uint64 {
	return hashTagNumeric ^ mix64(floatHashBits(f))
}

// HashString returns Hash of NewString(s).
func HashString(s string) uint64 { return hashTagString ^ hashString(s) }

// HashBool returns Hash of NewBool(b).
func HashBool(b bool) uint64 {
	var i uint64
	if b {
		i = 1
	}
	return hashTagBool ^ mix64(i)
}

// HashDate returns Hash of NewDateDays(days).
func HashDate(days int64) uint64 { return hashTagDate ^ mix64(uint64(days)) }
