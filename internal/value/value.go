// Package value implements the typed scalar values that populate
// spreadsheet cells and relation tuples.
//
// A Value is a small immutable variant record over the SQL-ish scalar types
// the spreadsheet algebra needs: NULL, 64-bit integers, 64-bit floats,
// strings, booleans, and dates. Values carry their own comparison, coercion,
// hashing, parsing and formatting rules so that every layer above (relations,
// expressions, the algebra, the SQL engine) agrees on scalar semantics.
package value

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Kind identifies the runtime type of a Value.
type Kind uint8

// The supported scalar kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
	KindDate
)

// String returns the SQL-style name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "TEXT"
	case KindBool:
		return "BOOLEAN"
	case KindDate:
		return "DATE"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Numeric reports whether the kind is an arithmetic type.
func (k Kind) Numeric() bool { return k == KindInt || k == KindFloat }

// Value is an immutable scalar. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64 // payload for Int, Bool (0/1) and Date (days since 1970-01-01)
	f    float64
	s    string
}

// Null is the SQL NULL value.
var Null = Value{}

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v} }

// NewFloat returns a float value.
func NewFloat(v float64) Value { return Value{kind: KindFloat, f: v} }

// NewString returns a string value.
func NewString(v string) Value { return Value{kind: KindString, s: v} }

// NewBool returns a boolean value.
func NewBool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// NewDate returns a date value for the given calendar day (UTC).
func NewDate(year int, month time.Month, day int) Value {
	t := time.Date(year, month, day, 0, 0, 0, 0, time.UTC)
	return Value{kind: KindDate, i: t.Unix() / 86400}
}

// NewDateDays returns a date value from a count of days since 1970-01-01.
func NewDateDays(days int64) Value { return Value{kind: KindDate, i: days} }

// Kind returns the runtime kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the integer payload. It panics unless v is an integer.
func (v Value) Int() int64 {
	if v.kind != KindInt {
		panic("value: Int() on " + v.kind.String())
	}
	return v.i
}

// Float returns the float payload. It panics unless v is a float.
func (v Value) Float() float64 {
	if v.kind != KindFloat {
		panic("value: Float() on " + v.kind.String())
	}
	return v.f
}

// Str returns the string payload. It panics unless v is a string.
func (v Value) Str() string {
	if v.kind != KindString {
		panic("value: Str() on " + v.kind.String())
	}
	return v.s
}

// Bool returns the boolean payload. It panics unless v is a boolean.
func (v Value) Bool() bool {
	if v.kind != KindBool {
		panic("value: Bool() on " + v.kind.String())
	}
	return v.i != 0
}

// DateDays returns the date payload as days since 1970-01-01.
// It panics unless v is a date.
func (v Value) DateDays() int64 {
	if v.kind != KindDate {
		panic("value: DateDays() on " + v.kind.String())
	}
	return v.i
}

// Time returns the date payload as a UTC midnight time.Time.
func (v Value) Time() time.Time {
	return time.Unix(v.DateDays()*86400, 0).UTC()
}

// AsFloat converts numeric values to float64.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	default:
		return 0, false
	}
}

// String renders the value for display. NULL renders as the empty-ish
// marker "NULL"; dates render as YYYY-MM-DD; floats use the shortest
// round-trip representation.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		// Plain decimal notation for human-scale magnitudes; scientific
		// notation only where decimal expansion would be unreadable.
		if abs := math.Abs(v.f); abs == 0 || (abs >= 1e-4 && abs < 1e15) {
			return strconv.FormatFloat(v.f, 'f', -1, 64)
		}
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindDate:
		return v.Time().Format("2006-01-02")
	default:
		return "?"
	}
}

// SQL renders the value as a SQL literal.
func (v Value) SQL() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindString:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case KindBool:
		if v.i != 0 {
			return "TRUE"
		}
		return "FALSE"
	case KindDate:
		return "DATE '" + v.Time().Format("2006-01-02") + "'"
	default:
		return v.String()
	}
}

// Key returns a string usable as a map key such that two values that compare
// equal under Compare produce the same key. Numeric values of different
// kinds that are numerically equal share a key.
func (v Value) Key() string {
	switch v.kind {
	case KindNull:
		return "\x00"
	case KindInt:
		// Keys of numerically equal ints and floats must coincide; above
		// 2^53 the float rendering is no longer injective over ints, so
		// fall back to the exact decimal (floats cannot equal those ints
		// exactly anyway).
		if v.i > -(1<<53) && v.i < 1<<53 {
			return "n" + strconv.FormatFloat(float64(v.i), 'g', -1, 64)
		}
		return "ni" + strconv.FormatInt(v.i, 10)
	case KindFloat:
		return "n" + strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return "s" + v.s
	case KindBool:
		return "b" + strconv.FormatInt(v.i, 10)
	case KindDate:
		return "d" + strconv.FormatInt(v.i, 10)
	default:
		return "?"
	}
}

// Compare orders a against b, returning -1, 0 or +1. NULL compares before
// every non-NULL value (the ordering convention used for sorting; predicate
// evaluation handles NULL separately with three-valued logic). Numeric kinds
// compare by numeric value; other kinds must match exactly.
func Compare(a, b Value) (int, error) {
	if a.kind == KindNull || b.kind == KindNull {
		switch {
		case a.kind == b.kind:
			return 0, nil
		case a.kind == KindNull:
			return -1, nil
		default:
			return 1, nil
		}
	}
	if a.kind == KindInt && b.kind == KindInt {
		// Exact integer comparison: int64 values above 2^53 would collide
		// through float64.
		switch {
		case a.i < b.i:
			return -1, nil
		case a.i > b.i:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if a.kind.Numeric() && b.kind.Numeric() {
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if a.kind != b.kind {
		return 0, fmt.Errorf("value: cannot compare %s with %s", a.kind, b.kind)
	}
	switch a.kind {
	case KindString:
		return strings.Compare(a.s, b.s), nil
	case KindBool, KindDate:
		switch {
		case a.i < b.i:
			return -1, nil
		case a.i > b.i:
			return 1, nil
		default:
			return 0, nil
		}
	}
	return 0, fmt.Errorf("value: cannot compare kind %s", a.kind)
}

// MustCompare is Compare for callers that have already type-checked.
// Incomparable kinds order by kind to keep sorting total.
func MustCompare(a, b Value) int {
	c, err := Compare(a, b)
	if err != nil {
		if a.kind < b.kind {
			return -1
		}
		if a.kind > b.kind {
			return 1
		}
		return 0
	}
	return c
}

// Equal reports whether two values compare equal. NULL equals NULL here
// (multiset identity); predicate equality applies SQL three-valued logic in
// the expression evaluator instead.
func Equal(a, b Value) bool { return MustCompare(a, b) == 0 }

// Arithmetic errors.
var errDivZero = fmt.Errorf("value: division by zero")

func arith(op string, a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	// Date +/- integer days.
	if a.kind == KindDate && b.kind == KindInt {
		switch op {
		case "+":
			return NewDateDays(a.i + b.i), nil
		case "-":
			return NewDateDays(a.i - b.i), nil
		}
	}
	if a.kind == KindDate && b.kind == KindDate && op == "-" {
		return NewInt(a.i - b.i), nil
	}
	if !a.kind.Numeric() || !b.kind.Numeric() {
		return Null, fmt.Errorf("value: %s not defined on %s and %s", op, a.kind, b.kind)
	}
	if a.kind == KindInt && b.kind == KindInt {
		x, y := a.i, b.i
		switch op {
		case "+":
			return NewInt(x + y), nil
		case "-":
			return NewInt(x - y), nil
		case "*":
			return NewInt(x * y), nil
		case "/":
			if y == 0 {
				return Null, errDivZero
			}
			if x%y == 0 {
				return NewInt(x / y), nil
			}
			return NewFloat(float64(x) / float64(y)), nil
		case "%":
			if y == 0 {
				return Null, errDivZero
			}
			return NewInt(x % y), nil
		}
	}
	x, _ := a.AsFloat()
	y, _ := b.AsFloat()
	switch op {
	case "+":
		return NewFloat(x + y), nil
	case "-":
		return NewFloat(x - y), nil
	case "*":
		return NewFloat(x * y), nil
	case "/":
		if y == 0 {
			return Null, errDivZero
		}
		return NewFloat(x / y), nil
	case "%":
		if y == 0 {
			return Null, errDivZero
		}
		return NewFloat(math.Mod(x, y)), nil
	}
	return Null, fmt.Errorf("value: unknown operator %q", op)
}

// Add returns a + b with numeric coercion; date + int adds days.
func Add(a, b Value) (Value, error) { return arith("+", a, b) }

// Sub returns a - b; date - date yields day count, date - int shifts days.
func Sub(a, b Value) (Value, error) { return arith("-", a, b) }

// Mul returns a * b.
func Mul(a, b Value) (Value, error) { return arith("*", a, b) }

// Div returns a / b. Integer division producing a remainder promotes to
// float so that spreadsheet formulas behave as users expect.
func Div(a, b Value) (Value, error) { return arith("/", a, b) }

// Mod returns a % b.
func Mod(a, b Value) (Value, error) { return arith("%", a, b) }

// Neg returns -a.
func Neg(a Value) (Value, error) {
	switch a.kind {
	case KindNull:
		return Null, nil
	case KindInt:
		return NewInt(-a.i), nil
	case KindFloat:
		return NewFloat(-a.f), nil
	}
	return Null, fmt.Errorf("value: cannot negate %s", a.kind)
}

// Concat returns the string concatenation of a and b, rendering non-string
// operands with String.
func Concat(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	return NewString(a.String() + b.String()), nil
}

// Parse converts text to a value of the given kind. Empty text parses to
// NULL for every kind.
func Parse(text string, kind Kind) (Value, error) {
	if text == "" || strings.EqualFold(text, "null") {
		return Null, nil
	}
	switch kind {
	case KindInt:
		i, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return Null, fmt.Errorf("value: parse %q as INTEGER: %w", text, err)
		}
		return NewInt(i), nil
	case KindFloat:
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Null, fmt.Errorf("value: parse %q as FLOAT: %w", text, err)
		}
		return NewFloat(f), nil
	case KindString:
		return NewString(text), nil
	case KindBool:
		b, err := strconv.ParseBool(strings.ToLower(text))
		if err != nil {
			return Null, fmt.Errorf("value: parse %q as BOOLEAN: %w", text, err)
		}
		return NewBool(b), nil
	case KindDate:
		t, err := time.Parse("2006-01-02", text)
		if err != nil {
			return Null, fmt.Errorf("value: parse %q as DATE: %w", text, err)
		}
		return NewDateDays(t.Unix() / 86400), nil
	case KindNull:
		return Null, nil
	}
	return Null, fmt.Errorf("value: unknown kind %v", kind)
}

// Infer guesses the kind of a text token: integer, float, date
// (YYYY-MM-DD), boolean, falling back to string.
func Infer(text string) Value {
	if text == "" {
		return Null
	}
	if i, err := strconv.ParseInt(text, 10, 64); err == nil {
		return NewInt(i)
	}
	if f, err := strconv.ParseFloat(text, 64); err == nil {
		return NewFloat(f)
	}
	if len(text) == 10 && text[4] == '-' && text[7] == '-' {
		if t, err := time.Parse("2006-01-02", text); err == nil {
			return NewDateDays(t.Unix() / 86400)
		}
	}
	switch strings.ToLower(text) {
	case "true":
		return NewBool(true)
	case "false":
		return NewBool(false)
	}
	return NewString(text)
}

// Truth converts a value to a three-valued-logic truth value for predicate
// contexts: true, false, or unknown (NULL).
type Truth uint8

// Three-valued logic constants.
const (
	False Truth = iota
	True
	Unknown
)

// TruthOf maps a value to a Truth: booleans map directly, NULL is Unknown,
// anything else is an error.
func TruthOf(v Value) (Truth, error) {
	switch v.kind {
	case KindNull:
		return Unknown, nil
	case KindBool:
		if v.i != 0 {
			return True, nil
		}
		return False, nil
	}
	return False, fmt.Errorf("value: %s is not a truth value", v.kind)
}

// And combines truths under Kleene three-valued logic.
func (t Truth) And(o Truth) Truth {
	if t == False || o == False {
		return False
	}
	if t == Unknown || o == Unknown {
		return Unknown
	}
	return True
}

// Or combines truths under Kleene three-valued logic.
func (t Truth) Or(o Truth) Truth {
	if t == True || o == True {
		return True
	}
	if t == Unknown || o == Unknown {
		return Unknown
	}
	return False
}

// Not negates a truth; Unknown stays Unknown.
func (t Truth) Not() Truth {
	switch t {
	case True:
		return False
	case False:
		return True
	default:
		return Unknown
	}
}

// Value converts the truth back to a Value (Unknown becomes NULL).
func (t Truth) Value() Value {
	switch t {
	case True:
		return NewBool(true)
	case False:
		return NewBool(false)
	default:
		return Null
	}
}
