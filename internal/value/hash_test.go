package value

import (
	"math"
	"math/rand"
	"testing"
)

// randValue draws from every kind, with numeric payloads concentrated on a
// small range so cross-kind coincidences (int 5 vs float 5.0) occur often.
func randValue(rng *rand.Rand) Value {
	switch rng.Intn(7) {
	case 0:
		return NewInt(int64(rng.Intn(20) - 10))
	case 1:
		return NewFloat(float64(rng.Intn(20) - 10))
	case 2:
		return NewFloat(rng.Float64() * 10)
	case 3:
		return NewString(string(rune('a' + rng.Intn(5))))
	case 4:
		return NewBool(rng.Intn(2) == 0)
	case 5:
		return NewDateDays(int64(rng.Intn(10)))
	default:
		return Null
	}
}

// TestHashRespectsEqual is the core hash contract: values that compare
// equal must hash identically, across kinds.
func TestHashRespectsEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200000; i++ {
		a, b := randValue(rng), randValue(rng)
		if Equal(a, b) && Hash(a) != Hash(b) {
			t.Fatalf("Equal(%v, %v) but Hash %x != %x", a, b, Hash(a), Hash(b))
		}
	}
}

func TestHashNumericCoincidence(t *testing.T) {
	cases := [][2]Value{
		{NewInt(5), NewFloat(5)},
		{NewInt(0), NewFloat(0)},
		{NewInt(-3), NewFloat(-3)},
		{NewFloat(0), NewFloat(math.Copysign(0, -1))}, // -0 folds into +0
		{NewInt(1 << 60), NewFloat(1 << 60)},          // exactly representable above 2^53
		{NewInt(math.MinInt64), NewFloat(-9223372036854775808)},
	}
	for _, c := range cases {
		if !Equal(c[0], c[1]) {
			t.Fatalf("fixture %v vs %v not Equal", c[0], c[1])
		}
		if Hash(c[0]) != Hash(c[1]) {
			t.Fatalf("Hash(%v) = %x != Hash(%v) = %x", c[0], Hash(c[0]), c[1], Hash(c[1]))
		}
	}
}

func TestHashBigIntsDistinct(t *testing.T) {
	// Neighbouring int64s above 2^53 collapse to the same float64; their
	// hashes must still differ, since Compare orders them exactly.
	a, b := NewInt(1<<60+1), NewInt(1<<60+2)
	if Hash(a) == Hash(b) {
		t.Fatalf("neighbouring big ints share a hash")
	}
}

func TestHashNaNCanonical(t *testing.T) {
	nan := NewFloat(math.NaN())
	negNaN := NewFloat(math.Float64frombits(math.Float64bits(math.NaN()) | 1<<63))
	if Hash(nan) != Hash(negNaN) {
		t.Fatalf("NaN payloads hash differently")
	}
}

func TestHashCombineOrderDependent(t *testing.T) {
	a, b := NewInt(1), NewInt(2)
	h1 := HashCombine(HashCombine(0, a), b)
	h2 := HashCombine(HashCombine(0, b), a)
	if h1 == h2 {
		t.Fatalf("HashCombine is order-insensitive; grouping keys are positional")
	}
}

func TestHashNoAllocs(t *testing.T) {
	vals := []Value{NewInt(7), NewFloat(2.5), NewString("abcdef"), NewBool(true), NewDateDays(3), Null}
	n := testing.AllocsPerRun(100, func() {
		var h uint64
		for _, v := range vals {
			h = HashCombine(h, v)
		}
		_ = h
	})
	if n != 0 {
		t.Fatalf("Hash allocates %v per run, want 0", n)
	}
}
