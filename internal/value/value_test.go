package value

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "NULL", KindInt: "INTEGER", KindFloat: "FLOAT",
		KindString: "TEXT", KindBool: "BOOLEAN", KindDate: "DATE",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestZeroValueIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() {
		t.Fatal("zero Value should be NULL")
	}
	if v.Kind() != KindNull {
		t.Fatalf("zero Value kind = %v", v.Kind())
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if NewInt(42).Int() != 42 {
		t.Error("Int round trip failed")
	}
	if NewFloat(2.5).Float() != 2.5 {
		t.Error("Float round trip failed")
	}
	if NewString("jetta").Str() != "jetta" {
		t.Error("String round trip failed")
	}
	if !NewBool(true).Bool() || NewBool(false).Bool() {
		t.Error("Bool round trip failed")
	}
	d := NewDate(2005, time.March, 14)
	if got := d.Time().Format("2006-01-02"); got != "2005-03-14" {
		t.Errorf("Date round trip = %s", got)
	}
}

func TestAccessorPanicsOnWrongKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic calling Int() on a string")
		}
	}()
	_ = NewString("x").Int()
}

func TestCompareNumericCoercion(t *testing.T) {
	c, err := Compare(NewInt(3), NewFloat(3.0))
	if err != nil || c != 0 {
		t.Fatalf("Compare(3, 3.0) = %d, %v", c, err)
	}
	c, _ = Compare(NewInt(2), NewFloat(2.5))
	if c != -1 {
		t.Fatalf("Compare(2, 2.5) = %d", c)
	}
	c, _ = Compare(NewFloat(2.5), NewInt(2))
	if c != 1 {
		t.Fatalf("Compare(2.5, 2) = %d", c)
	}
}

func TestCompareStrings(t *testing.T) {
	c, err := Compare(NewString("civic"), NewString("jetta"))
	if err != nil || c != -1 {
		t.Fatalf("Compare(civic, jetta) = %d, %v", c, err)
	}
}

func TestCompareNullOrdersFirst(t *testing.T) {
	if c, _ := Compare(Null, NewInt(0)); c != -1 {
		t.Errorf("NULL should order before 0, got %d", c)
	}
	if c, _ := Compare(NewInt(0), Null); c != 1 {
		t.Errorf("0 should order after NULL, got %d", c)
	}
	if c, _ := Compare(Null, Null); c != 0 {
		t.Errorf("NULL vs NULL = %d", c)
	}
}

func TestCompareIncompatible(t *testing.T) {
	if _, err := Compare(NewString("a"), NewInt(1)); err == nil {
		t.Fatal("expected error comparing TEXT with INTEGER")
	}
	if _, err := Compare(NewBool(true), NewDate(2000, 1, 1)); err == nil {
		t.Fatal("expected error comparing BOOLEAN with DATE")
	}
}

func TestCompareDates(t *testing.T) {
	a := NewDate(2005, time.January, 1)
	b := NewDate(2006, time.January, 1)
	if c, _ := Compare(a, b); c != -1 {
		t.Errorf("2005 < 2006 expected, got %d", c)
	}
}

func TestMustCompareTotalOrder(t *testing.T) {
	// Incomparable kinds fall back to kind order; must not panic.
	if MustCompare(NewString("a"), NewInt(1)) == 0 {
		t.Error("distinct-kind values should not be equal under MustCompare")
	}
}

func TestKeyEquality(t *testing.T) {
	if NewInt(3).Key() != NewFloat(3).Key() {
		t.Error("numerically equal int and float must share a key")
	}
	if NewInt(3).Key() == NewString("3").Key() {
		t.Error("int 3 and string \"3\" must not share a key")
	}
	if Null.Key() == NewString("").Key() {
		t.Error("NULL and empty string must not share a key")
	}
}

func TestArithmetic(t *testing.T) {
	tests := []struct {
		name string
		got  func() (Value, error)
		want Value
	}{
		{"int+int", func() (Value, error) { return Add(NewInt(2), NewInt(3)) }, NewInt(5)},
		{"int-int", func() (Value, error) { return Sub(NewInt(2), NewInt(3)) }, NewInt(-1)},
		{"int*float", func() (Value, error) { return Mul(NewInt(2), NewFloat(1.5)) }, NewFloat(3)},
		{"exact int division", func() (Value, error) { return Div(NewInt(6), NewInt(3)) }, NewInt(2)},
		{"inexact int division promotes", func() (Value, error) { return Div(NewInt(7), NewInt(2)) }, NewFloat(3.5)},
		{"mod", func() (Value, error) { return Mod(NewInt(7), NewInt(4)) }, NewInt(3)},
		{"float mod", func() (Value, error) { return Mod(NewFloat(7.5), NewFloat(2)) }, NewFloat(1.5)},
		{"neg handled elsewhere", func() (Value, error) { return Neg(NewInt(5)) }, NewInt(-5)},
	}
	for _, tc := range tests {
		got, err := tc.got()
		if err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
			continue
		}
		if !Equal(got, tc.want) {
			t.Errorf("%s = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestArithmeticNullPropagates(t *testing.T) {
	got, err := Add(Null, NewInt(1))
	if err != nil || !got.IsNull() {
		t.Fatalf("NULL + 1 = %v, %v; want NULL", got, err)
	}
}

func TestDivisionByZero(t *testing.T) {
	if _, err := Div(NewInt(1), NewInt(0)); err == nil {
		t.Error("integer division by zero must error")
	}
	if _, err := Div(NewFloat(1), NewFloat(0)); err == nil {
		t.Error("float division by zero must error")
	}
	if _, err := Mod(NewInt(1), NewInt(0)); err == nil {
		t.Error("mod by zero must error")
	}
}

func TestDateArithmetic(t *testing.T) {
	d := NewDate(2005, time.January, 31)
	plus, err := Add(d, NewInt(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := plus.Time().Format("2006-01-02"); got != "2005-02-01" {
		t.Errorf("date+1 = %s", got)
	}
	diff, err := Sub(NewDate(2005, time.February, 1), d)
	if err != nil || diff.Int() != 1 {
		t.Errorf("date-date = %v, %v", diff, err)
	}
}

func TestConcat(t *testing.T) {
	got, err := Concat(NewString("a"), NewInt(1))
	if err != nil || got.Str() != "a1" {
		t.Fatalf("Concat = %v, %v", got, err)
	}
	n, _ := Concat(Null, NewString("x"))
	if !n.IsNull() {
		t.Error("NULL || x must be NULL")
	}
}

func TestArithmeticTypeErrors(t *testing.T) {
	if _, err := Add(NewString("a"), NewInt(1)); err == nil {
		t.Error("TEXT + INTEGER must error")
	}
	if _, err := Neg(NewString("a")); err == nil {
		t.Error("negating TEXT must error")
	}
}

func TestParseRoundTrip(t *testing.T) {
	cases := []struct {
		text string
		kind Kind
	}{
		{"42", KindInt}, {"-3", KindInt}, {"2.5", KindFloat},
		{"hello", KindString}, {"true", KindBool}, {"2005-03-14", KindDate},
	}
	for _, tc := range cases {
		v, err := Parse(tc.text, tc.kind)
		if err != nil {
			t.Errorf("Parse(%q, %v): %v", tc.text, tc.kind, err)
			continue
		}
		if v.Kind() != tc.kind {
			t.Errorf("Parse(%q) kind = %v, want %v", tc.text, v.Kind(), tc.kind)
		}
		if got := v.String(); got != tc.text {
			t.Errorf("Parse(%q).String() = %q", tc.text, got)
		}
	}
}

func TestParseEmptyIsNull(t *testing.T) {
	for _, k := range []Kind{KindInt, KindFloat, KindString, KindBool, KindDate} {
		v, err := Parse("", k)
		if err != nil || !v.IsNull() {
			t.Errorf("Parse(\"\", %v) = %v, %v; want NULL", k, v, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse("abc", KindInt); err == nil {
		t.Error("parsing abc as INTEGER must error")
	}
	if _, err := Parse("2005-13-40", KindDate); err == nil {
		t.Error("parsing invalid date must error")
	}
}

func TestInfer(t *testing.T) {
	if Infer("42").Kind() != KindInt {
		t.Error("42 should infer INTEGER")
	}
	if Infer("4.5").Kind() != KindFloat {
		t.Error("4.5 should infer FLOAT")
	}
	if Infer("2005-03-14").Kind() != KindDate {
		t.Error("2005-03-14 should infer DATE")
	}
	if Infer("true").Kind() != KindBool {
		t.Error("true should infer BOOLEAN")
	}
	if Infer("Jetta").Kind() != KindString {
		t.Error("Jetta should infer TEXT")
	}
	if !Infer("").IsNull() {
		t.Error("empty should infer NULL")
	}
}

func TestSQLLiterals(t *testing.T) {
	if got := NewString("O'Hare").SQL(); got != "'O''Hare'" {
		t.Errorf("string SQL = %s", got)
	}
	if got := Null.SQL(); got != "NULL" {
		t.Errorf("NULL SQL = %s", got)
	}
	if got := NewDate(2005, 1, 2).SQL(); got != "DATE '2005-01-02'" {
		t.Errorf("date SQL = %s", got)
	}
	if got := NewBool(true).SQL(); got != "TRUE" {
		t.Errorf("bool SQL = %s", got)
	}
}

func TestTruthTable(t *testing.T) {
	ts := []Truth{False, True, Unknown}
	for _, a := range ts {
		for _, b := range ts {
			and := a.And(b)
			or := a.Or(b)
			// Kleene logic identities.
			if a == False || b == False {
				if and != False {
					t.Errorf("And(%v,%v) = %v", a, b, and)
				}
			} else if a == Unknown || b == Unknown {
				if and != Unknown {
					t.Errorf("And(%v,%v) = %v", a, b, and)
				}
			} else if and != True {
				t.Errorf("And(True,True) = %v", and)
			}
			if a == True || b == True {
				if or != True {
					t.Errorf("Or(%v,%v) = %v", a, b, or)
				}
			} else if a == Unknown || b == Unknown {
				if or != Unknown {
					t.Errorf("Or(%v,%v) = %v", a, b, or)
				}
			} else if or != False {
				t.Errorf("Or(False,False) = %v", or)
			}
		}
	}
	if Unknown.Not() != Unknown || True.Not() != False || False.Not() != True {
		t.Error("Not truth table wrong")
	}
}

func TestTruthOf(t *testing.T) {
	if tr, err := TruthOf(NewBool(true)); err != nil || tr != True {
		t.Errorf("TruthOf(true) = %v, %v", tr, err)
	}
	if tr, err := TruthOf(Null); err != nil || tr != Unknown {
		t.Errorf("TruthOf(NULL) = %v, %v", tr, err)
	}
	if _, err := TruthOf(NewInt(1)); err == nil {
		t.Error("TruthOf(1) must error")
	}
}

func TestTruthValueRoundTrip(t *testing.T) {
	if !Equal(True.Value(), NewBool(true)) || !Equal(False.Value(), NewBool(false)) || !Unknown.Value().IsNull() {
		t.Error("Truth.Value round trip failed")
	}
}

// Property: Compare is antisymmetric and consistent with Equal for ints.
func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		x, y := NewInt(a), NewInt(b)
		c1, _ := Compare(x, y)
		c2, _ := Compare(y, x)
		return c1 == -c2 && (c1 == 0) == Equal(x, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Add/Sub are inverse on ints (no overflow in small range).
func TestQuickAddSubInverse(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := NewInt(int64(a)), NewInt(int64(b))
		s, err := Add(x, y)
		if err != nil {
			return false
		}
		back, err := Sub(s, y)
		if err != nil {
			return false
		}
		return Equal(back, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Key equality matches Compare equality for mixed numerics.
func TestQuickKeyMatchesCompare(t *testing.T) {
	f := func(a int32, b int32) bool {
		x, y := NewInt(int64(a)), NewFloat(float64(b))
		c, _ := Compare(x, y)
		return (c == 0) == (x.Key() == y.Key())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: date day arithmetic matches time.Time arithmetic.
func TestQuickDateDays(t *testing.T) {
	f := func(days int16) bool {
		d := NewDateDays(int64(days))
		want := time.Unix(int64(days)*86400, 0).UTC()
		return d.Time().Equal(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloatFormatting(t *testing.T) {
	if got := NewFloat(15166.666666666666).String(); got == "" || got == "NULL" {
		t.Errorf("float formatting broken: %q", got)
	}
	if got := NewFloat(math.Inf(1)).String(); got != "+Inf" {
		t.Errorf("inf formatting = %q", got)
	}
}

func TestLargeIntExactness(t *testing.T) {
	// 2^53 and 2^53+1 collide as float64; integer comparison must stay
	// exact.
	a := NewInt(1 << 53)
	b := NewInt(1<<53 + 1)
	if c, _ := Compare(a, b); c != -1 {
		t.Fatalf("2^53 < 2^53+1 expected, got %d", c)
	}
	if a.Key() == b.Key() {
		t.Fatal("distinct large ints must not share a key")
	}
	// Small ints still share keys with equal floats.
	if NewInt(7).Key() != NewFloat(7).Key() {
		t.Fatal("small int/float key equality regressed")
	}
}
