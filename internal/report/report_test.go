package report

import (
	"bytes"
	"strings"
	"testing"

	"sheetmusiq/internal/uistudy"
)

func study(t *testing.T) *uistudy.Study {
	t.Helper()
	st, err := uistudy.Run(uistudy.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func render(t *testing.T, fn func(*bytes.Buffer)) string {
	t.Helper()
	var b bytes.Buffer
	fn(&b)
	return b.String()
}

func TestFig3Rendering(t *testing.T) {
	st := study(t)
	out := render(t, func(b *bytes.Buffer) { Fig3(b, st) })
	if !strings.Contains(out, "Figure 3") || !strings.Contains(out, "MannWhitney p") {
		t.Fatalf("header missing:\n%s", out)
	}
	if strings.Count(out, "\n") < 12 {
		t.Fatalf("expected 10 task rows:\n%s", out)
	}
	if !strings.Contains(out, "significant") {
		t.Fatal("significance markers missing")
	}
	if !strings.Contains(out, "pricing-summary") {
		t.Fatal("task names missing")
	}
}

func TestFig4Rendering(t *testing.T) {
	st := study(t)
	out := render(t, func(b *bytes.Buffer) { Fig4(b, st) })
	if !strings.Contains(out, "Standard Deviation") {
		t.Fatalf("header missing:\n%s", out)
	}
}

func TestFig5Rendering(t *testing.T) {
	st := study(t)
	out := render(t, func(b *bytes.Buffer) { Fig5(b, st) })
	if !strings.Contains(out, "Fisher exact p") {
		t.Fatalf("totals line missing:\n%s", out)
	}
	if !strings.Contains(out, "/10") {
		t.Fatal("per-query counts missing")
	}
}

func TestTableVIRendering(t *testing.T) {
	st := study(t)
	out := render(t, func(b *bytes.Buffer) { TableVI(b, st) })
	for _, q := range []string{
		"Which package do you prefer to use?",
		"Seeing data helps formulate queries",
		"Progressive refinement beats all-at-once",
		"Database concepts are easier in SheetMusiq",
	} {
		if !strings.Contains(out, q) {
			t.Fatalf("question %q missing:\n%s", q, out)
		}
	}
}

func TestAnalysisRendering(t *testing.T) {
	st := study(t)
	out := render(t, func(b *bytes.Buffer) { Analysis(b, st) })
	for _, want := range []string{"grouping", "aggregation", "SQL syntax stumbles", "200 trials"} {
		if !strings.Contains(out, want) {
			t.Fatalf("analysis missing %q:\n%s", want, out)
		}
	}
}

// TestRenderingDeterministic guards EXPERIMENTS.md against silent drift:
// the default-seed rendering must be stable across runs.
func TestRenderingDeterministic(t *testing.T) {
	a := render(t, func(b *bytes.Buffer) { st := study(t); Fig3(b, st); Fig5(b, st) })
	b := render(t, func(b *bytes.Buffer) { st := study(t); Fig3(b, st); Fig5(b, st) })
	if a != b {
		t.Fatal("default-seed rendering is not deterministic")
	}
}
