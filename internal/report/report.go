// Package report renders the paper's evaluation artifacts (Figures 3–5,
// Table VI, the Sec. VII-A4 analysis) as text, in the row/series layout the
// paper prints. cmd/experiments is a thin shell around it; keeping the
// rendering here makes the exact output testable.
package report

import (
	"fmt"
	"io"

	"sheetmusiq/internal/uistudy"
)

// Fig3 writes the speed results (mean seconds per query, both interfaces,
// per-task Mann-Whitney significance).
func Fig3(w io.Writer, st *uistudy.Study) {
	fmt.Fprintln(w, "== Figure 3 — Speed Result (mean seconds per query) ==")
	fmt.Fprintf(w, "%-5s %-22s %10s %10s %8s %12s\n", "query", "task", "Navicat", "SheetMusiq", "speedup", "MannWhitney p")
	for _, ts := range st.Tasks {
		sig := ""
		if ts.MannWhitneyP < 0.002 {
			sig = "  significant"
		}
		fmt.Fprintf(w, "%-5d %-22s %10.1f %10.1f %7.2fx %12.4g%s\n",
			ts.TaskID, ts.Name, ts.MeanNav, ts.MeanSheet, ts.MeanNav/ts.MeanSheet, ts.MannWhitneyP, sig)
	}
	fmt.Fprintln(w)
}

// Fig4 writes the per-task standard deviations.
func Fig4(w io.Writer, st *uistudy.Study) {
	fmt.Fprintln(w, "== Figure 4 — Standard Deviation of Speeds (seconds) ==")
	fmt.Fprintf(w, "%-5s %-22s %10s %10s\n", "query", "task", "Navicat", "SheetMusiq")
	for _, ts := range st.Tasks {
		fmt.Fprintf(w, "%-5d %-22s %10.1f %10.1f\n", ts.TaskID, ts.Name, ts.StdNav, ts.StdSheet)
	}
	fmt.Fprintln(w)
}

// Fig5 writes per-task correctness counts, the totals, and the Fisher exact
// significance.
func Fig5(w io.Writer, st *uistudy.Study) {
	n := len(st.Panel)
	fmt.Fprintln(w, "== Figure 5 — Correctness Result (subjects correct per query) ==")
	fmt.Fprintf(w, "%-5s %-22s %10s %10s\n", "query", "task", "Navicat", "SheetMusiq")
	for _, ts := range st.Tasks {
		fmt.Fprintf(w, "%-5d %-22s %7d/%-2d %7d/%-2d\n", ts.TaskID, ts.Name, ts.CorrectNav, n, ts.CorrectSM, n)
	}
	total := n * len(st.Tasks)
	fmt.Fprintf(w, "totals: SheetMusiq %d/%d, Navicat %d/%d, Fisher exact p = %.4g\n\n",
		st.TotalSM, total, st.TotalNav, total, st.FisherP)
}

// TableVI writes the subjective questionnaire.
func TableVI(w io.Writer, st *uistudy.Study) {
	fmt.Fprintln(w, "== Table VI — Subjective Results ==")
	row := func(q, yes, no string, c [2]int) {
		fmt.Fprintf(w, "%-55s %-12s %d\n", q, yes, c[0])
		fmt.Fprintf(w, "%-55s %-12s %d\n", "", no, c[1])
	}
	row("Which package do you prefer to use?", "SheetMusiq", "Navicat", st.Survey.PreferSheetMusiq)
	row("Seeing data helps formulate queries", "Yes", "No", st.Survey.SeeingDataHelps)
	row("Progressive refinement beats all-at-once", "Yes", "No", st.Survey.ProgressiveRefinement)
	row("Database concepts are easier in SheetMusiq", "Yes", "No", st.Survey.ConceptsEasier)
	fmt.Fprintln(w)
}

// Analysis quantifies the Sec. VII-A4 discussion: conceptual errors per
// interface and the syntax-stumble asymmetry.
func Analysis(w io.Writer, st *uistudy.Study) {
	fmt.Fprintf(w, "== Sec. VII-A4 — Analysis (conceptual errors across all %d trials) ==\n", len(st.Trials))
	fmt.Fprintf(w, "%-22s %10s %10s\n", "concept", "SheetMusiq", "Navicat")
	bd := st.ConceptBreakdown()
	for c := uistudy.ConceptSelection; c <= uistudy.ConceptGroupQualification; c++ {
		counts := bd[c]
		fmt.Fprintf(w, "%-22s %10d %10d\n", c.String(), counts[0], counts[1])
	}
	sm, nav := st.SyntaxErrorTotals()
	fmt.Fprintf(w, "%-22s %10d %10d\n", "SQL syntax stumbles", sm, nav)
	fmt.Fprintln(w)
}
