// Package wal is the durability subsystem: an append-only, segmented,
// CRC32C-checksummed write-ahead log of opaque records (Log), and a
// per-session store layering snapshot checkpoints and crash recovery on
// top of it (Store/SessionLog). The serving layer logs every mutating
// engine.Op after it succeeds; recovery restores the newest usable
// checkpoint through the core persist layer and replays only the log
// suffix, falling back to full-history replay when a checkpoint cannot
// reproduce the session exactly (DESIGN.md §11).
//
// Record layout, all integers little-endian:
//
//	offset 0  u32  payload length
//	offset 4  u32  CRC32C (Castagnoli) over bytes [8, 16+length)
//	offset 8  u64  sequence number (1-based, strictly consecutive)
//	offset 16 ...  payload
//
// Segment files are named wal-<firstSeq, 20 decimal digits>.seg and hold
// consecutive records; a segment rolls over once it exceeds
// Options.SegmentBytes. A torn or corrupt tail — a partial header, short
// payload, CRC mismatch, or out-of-order sequence — ends the log: OpenLog
// truncates the final segment at the first bad record so appends continue
// from the last durable record.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"sheetmusiq/internal/obs"
)

// SyncPolicy selects when appended records are fsynced. Every policy
// write(2)s each record to the file before Append returns, so records
// acknowledged to a client survive a kill -9 of the process under all
// policies; the policy only decides exposure to power loss / kernel crash.
type SyncPolicy int

const (
	// SyncBatch (the default) fsyncs on a short background interval, so
	// many appends share one fsync. At most Options.BatchInterval of
	// acknowledged records are exposed to power loss.
	SyncBatch SyncPolicy = iota
	// SyncAlways fsyncs after every record before Append returns.
	SyncAlways
	// SyncNone never fsyncs during appends (a clean Close still syncs).
	SyncNone
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	}
	return "batch"
}

// ParseSyncPolicy maps a flag value to a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(s) {
	case "batch", "batched", "":
		return SyncBatch, nil
	case "always", "record", "per-record":
		return SyncAlways, nil
	case "none", "off":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("wal: bad fsync policy %q (batch, always, none)", s)
}

// Options parameterises a Log.
type Options struct {
	// Sync is the fsync policy; the zero value is SyncBatch.
	Sync SyncPolicy
	// BatchInterval is the SyncBatch fsync period (default 25ms). Shorter
	// intervals narrow the power-loss window but make appends stall behind
	// in-flight fsyncs of the same segment more often, and raise the
	// store-wide fsync rate (every session's log flushes on its own timer).
	BatchInterval time.Duration
	// SegmentBytes rolls to a new segment file once the current one
	// exceeds this size (default 4MiB).
	SegmentBytes int64
}

func (o Options) withDefaults() Options {
	if o.BatchInterval <= 0 {
		o.BatchInterval = 25 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	return o
}

const (
	headerSize = 16
	segPrefix  = "wal-"
	segSuffix  = ".seg"
	// maxRecordBytes bounds a single record so a corrupt length field
	// cannot make the decoder allocate gigabytes.
	maxRecordBytes = 16 << 20
)

// castagnoli is the CRC32C table (the iSCSI polynomial, hardware-
// accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Log metrics, process-wide across all sessions' logs.
var (
	walAppends    = obs.Default.Counter("wal.appends")
	walFsyncs     = obs.Default.Counter("wal.fsyncs")
	walBytes      = obs.Default.Counter("wal.bytes")
	walTruncated  = obs.Default.Counter("wal.truncated_tails")
	walAppendSecs = obs.Default.Histogram("wal.append_seconds")
	walFsyncSecs  = obs.Default.Histogram("wal.fsync_seconds")
)

// Log is one append-only segmented record log rooted at a directory. All
// methods are safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File // active segment
	size     int64    // bytes written to the active segment
	segments []uint64 // first seq of every segment, ascending; last is active
	nextSeq  uint64   // sequence the next Append gets
	dirty    bool     // records written since the last fsync
	closed   bool

	stop chan struct{} // closes the batch flusher
	done chan struct{} // flusher exited
}

func segName(firstSeq uint64) string {
	return fmt.Sprintf("%s%020d%s", segPrefix, firstSeq, segSuffix)
}

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(segPrefix):len(name)-len(segSuffix)], 10, 64)
	if err != nil || n == 0 {
		return 0, false
	}
	return n, true
}

// OpenLog opens (creating if needed) the log in dir. It scans the existing
// segments, validates the final one record by record, and truncates it at
// the first torn or corrupt record so the next Append continues cleanly
// after the last durable record.
func OpenLog(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []uint64
	for _, e := range entries {
		if seq, ok := parseSegName(e.Name()); ok {
			segs = append(segs, seq)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })

	l := &Log{dir: dir, opts: opts, segments: segs}
	if len(segs) == 0 {
		if err := l.openSegment(1); err != nil {
			return nil, err
		}
		l.nextSeq = 1
	} else {
		if err := l.recoverTail(); err != nil {
			return nil, err
		}
	}
	if opts.Sync == SyncBatch {
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.flushLoop()
	}
	return l, nil
}

// openSegment creates a fresh active segment whose first record will carry
// firstSeq, and syncs the directory so the file name itself is durable.
func (l *Log) openSegment(firstSeq uint64) error {
	f, err := os.OpenFile(filepath.Join(l.dir, segName(firstSeq)), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.size = 0
	l.segments = append(l.segments, firstSeq)
	return syncDir(l.dir)
}

// recoverTail opens the last segment, scans it for valid consecutive
// records, and truncates everything after the first bad one.
func (l *Log) recoverTail() error {
	last := l.segments[len(l.segments)-1]
	path := filepath.Join(l.dir, segName(last))
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	valid, next, err := scanRecords(f, last, nil)
	if err != nil {
		f.Close()
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if st.Size() > valid {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return fmt.Errorf("wal: truncating torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("wal: %w", err)
		}
		walTruncated.Inc()
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.size = valid
	l.nextSeq = next
	return nil
}

// scanRecords reads records from r expecting the first to carry firstSeq
// and the rest to be consecutive, calling fn (when non-nil) for each valid
// record. It stops at the first invalid record — short header, short
// payload, oversized length, CRC mismatch, or sequence break — and returns
// the byte offset of the end of the last valid record plus the next
// expected sequence. An error from fn aborts the scan and is returned
// as-is.
func scanRecords(r io.Reader, firstSeq uint64, fn func(seq uint64, payload []byte) error) (validBytes int64, nextSeq uint64, err error) {
	br := &countReader{r: r}
	var hdr [headerSize]byte
	seq := firstSeq
	valid := int64(0)
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return valid, seq, nil // clean EOF or torn header: end of log
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		gotSeq := binary.LittleEndian.Uint64(hdr[8:16])
		if length > maxRecordBytes || gotSeq != seq {
			return valid, seq, nil
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			return valid, seq, nil // torn payload
		}
		sum := crc32.Update(crc32.Checksum(hdr[8:16], castagnoli), castagnoli, payload)
		if sum != crc {
			return valid, seq, nil
		}
		if fn != nil {
			if err := fn(seq, payload); err != nil {
				return valid, seq, err
			}
		}
		valid = br.n
		seq++
	}
}

// countReader tracks how many bytes were consumed.
type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// Append writes one record and returns its sequence number. The record is
// written to the file (surviving process death) before Append returns;
// whether it is also fsynced depends on the sync policy.
func (l *Log) Append(payload []byte) (uint64, error) {
	start := obs.StartTimer()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: log closed")
	}
	if l.size >= l.opts.SegmentBytes {
		if err := l.rollLocked(); err != nil {
			return 0, err
		}
	}
	seq := l.nextSeq
	buf := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(buf[8:16], seq)
	copy(buf[headerSize:], payload)
	sum := crc32.Update(crc32.Checksum(buf[8:16], castagnoli), castagnoli, payload)
	binary.LittleEndian.PutUint32(buf[4:8], sum)
	if _, err := l.f.Write(buf); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(len(buf))
	l.nextSeq++
	l.dirty = true
	walAppends.Inc()
	walBytes.Add(int64(len(buf)))
	if l.opts.Sync == SyncAlways {
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	}
	walAppendSecs.Since(start)
	return seq, nil
}

// rollLocked closes the active segment (synced) and opens the next one.
// The sync is unconditional rather than dirty-gated: the batch flusher may
// have claimed the dirty flag for an fsync that is still in flight, and the
// segment must be fully durable before its file is closed.
func (l *Log) rollLocked() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.dirty = false
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return l.openSegment(l.nextSeq)
}

// syncLocked fsyncs the active segment if it has unsynced records.
func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	start := obs.StartTimer()
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.dirty = false
	walFsyncs.Inc()
	walFsyncSecs.Since(start)
	return nil
}

// Sync forces an fsync of the active segment.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log closed")
	}
	return l.syncLocked()
}

// flushLoop is the SyncBatch group-commit goroutine: one fsync per
// interval covers every record appended during it. The fsync itself runs
// outside the append mutex — holding it would stall every Append for the
// fsync's duration, making batch no faster than SyncAlways — which is safe
// because os.File serialises Sync against Close internally, and rollLocked
// re-syncs unconditionally before closing a segment.
func (l *Log) flushLoop() {
	defer close(l.done)
	t := time.NewTicker(l.opts.BatchInterval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			f := l.f
			dirty := l.dirty && !l.closed
			if dirty {
				l.dirty = false
			}
			l.mu.Unlock()
			if !dirty {
				continue
			}
			start := obs.StartTimer()
			if err := f.Sync(); err != nil {
				// Lost the race with a segment roll/close (which synced for
				// us) or hit a real fault; re-mark dirty if the segment is
				// still active so the next tick retries.
				l.mu.Lock()
				if l.f == f {
					l.dirty = true
				}
				l.mu.Unlock()
				continue
			}
			walFsyncs.Inc()
			walFsyncSecs.Since(start)
		}
	}
}

// LastSeq returns the sequence of the most recent record (0 when empty).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq - 1
}

// Close syncs and closes the active segment and stops the batch flusher.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	err := l.syncLocked()
	if cerr := l.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal: %w", cerr)
	}
	l.closed = true
	l.mu.Unlock()
	if l.stop != nil {
		close(l.stop)
		<-l.done
	}
	return err
}

// ReadFrom replays every record with sequence >= from, in order. Because
// OpenLog already truncated any torn tail, an invalid record encountered
// here means real mid-log corruption (or a missing segment file): the scan
// stops and reports it. fn errors abort the replay and are returned as-is.
func (l *Log) ReadFrom(from uint64, fn func(seq uint64, payload []byte) error) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return fmt.Errorf("wal: log closed")
	}
	// Reads go through fresh read-only handles, so they never disturb the
	// append position; the segment list is copied to release the lock
	// while scanning. Appends during the scan extend the final segment:
	// the scan simply sees whatever records were durable when it got
	// there, which recovery (the only caller) makes moot by recovering
	// before serving traffic.
	segs := append([]uint64(nil), l.segments...)
	end := l.nextSeq
	if err := l.syncLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	l.mu.Unlock()

	for i, first := range segs {
		segEnd := end
		if i+1 < len(segs) {
			segEnd = segs[i+1]
		}
		if segEnd <= from && segEnd != first {
			continue // segment entirely before the requested suffix
		}
		f, err := os.Open(filepath.Join(l.dir, segName(first)))
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		_, next, err := scanRecords(f, first, func(seq uint64, payload []byte) error {
			if seq < from {
				return nil
			}
			return fn(seq, payload)
		})
		f.Close()
		if err != nil {
			return err
		}
		if next < segEnd {
			return fmt.Errorf("wal: segment %s corrupt: stops at record %d, expected %d", segName(first), next-1, segEnd-1)
		}
	}
	return nil
}

// PruneThrough deletes whole segments whose every record has sequence <=
// seq. The active segment is never deleted. Called after an exact
// checkpoint makes the prefix redundant.
func (l *Log) PruneThrough(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log closed")
	}
	kept := l.segments[:0]
	removed := 0
	for i, first := range l.segments {
		last := i == len(l.segments)-1
		if last || l.segments[i+1] > seq+1 {
			// Segment reaches past seq (its successor starts after seq+1)
			// or is active: keep it and everything after.
			kept = append(kept, l.segments[i:]...)
			break
		}
		if err := os.Remove(filepath.Join(l.dir, segName(first))); err != nil {
			return fmt.Errorf("wal: prune: %w", err)
		}
		removed++
	}
	l.segments = append([]uint64(nil), kept...)
	if removed == 0 {
		return nil // nothing deleted, nothing to make durable
	}
	return syncDir(l.dir)
}

// syncDir fsyncs a directory so renames and creates within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}
