package wal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"sheetmusiq/internal/engine"
)

func newEngine() (*engine.Engine, error) { return engine.New(nil), nil }

// applyAll drives ops through an engine the way the server does: apply,
// then log the mutating ones, checkpointing on the store cadence. It
// returns the engine.
func applyAll(t *testing.T, sl *SessionLog, ops []engine.Op) *engine.Engine {
	t.Helper()
	eng := engine.New(nil)
	for i, op := range ops {
		eff, err := eng.Apply(op)
		if err != nil {
			t.Fatalf("op %d (%s): %v", i, op.Op, err)
		}
		if !eff.Mutated {
			continue
		}
		if err := sl.AppendOp(op); err != nil {
			t.Fatalf("op %d (%s): append: %v", i, op.Op, err)
		}
		if sl.ShouldCheckpoint() {
			if err := sl.Checkpoint(eng); err != nil {
				t.Fatalf("op %d: checkpoint: %v", i, err)
			}
		}
	}
	return eng
}

// gridJSON renders the evaluated grid for bit-identical comparison.
func gridJSON(t *testing.T, eng *engine.Engine) string {
	t.Helper()
	if !eng.HasSheet() {
		return "<no sheet>"
	}
	g, err := eng.Grid(0)
	if err != nil {
		return "<eval error: " + err.Error() + ">"
	}
	raw, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// crashOps is a representative mixed sequence: data load, unary operators,
// grouping, aggregation, formula, modification, and undo/redo (the ops
// whose interaction with snapshot checkpoints is the subtle part, because
// the persist layer drops undo history).
func crashOps() []engine.Op {
	return []engine.Op{
		{Op: "demo", Table: "cars"},
		{Op: "select", Predicate: "Year >= 2003"},
		{Op: "formula", Name: "PerMile", Formula: "Price / Mileage"},
		{Op: "sort", Column: "Price", Dir: "asc"},
		{Op: "hide", Column: "ID"},
		{Op: "group", Columns: []string{"Model"}, Dir: "asc"},
		{Op: "agg", Fn: "avg", Column: "Price", Level: 2, Name: "Avg_Price"},
		{Op: "undo"},
		{Op: "redo"},
		{Op: "select", Predicate: "Price < 20000"},
		{Op: "undo"},
		{Op: "unhide", Column: "ID"},
		{Op: "explain"}, // read: must not be logged
		{Op: "order", Column: "Mileage", Dir: "desc", Level: 2},
		{Op: "modify", ID: 1, Predicate: "Year >= 2004"},
		{Op: "undo"},
		{Op: "undo"},
		{Op: "redo"},
		{Op: "agg", Fn: "count", Column: "Model", Level: 1, Name: "N"},
		{Op: "dropcol", Column: "N"},
	}
}

// TestCrashRecoveryEveryBoundary is the crash-simulation property: for a
// mixed op sequence, killing the process after every prefix k (the log is
// written but never cleanly closed or checkpointed on exit) and recovering
// must yield the same evaluated grid as an uninterrupted run of k ops —
// and continuing with the remaining ops must land on the same final grid.
func TestCrashRecoveryEveryBoundary(t *testing.T) {
	ops := crashOps()

	// References: grid after every prefix of the uninterrupted run.
	ref := make([]string, len(ops)+1)
	refEng := engine.New(nil)
	ref[0] = gridJSON(t, refEng)
	for i, op := range ops {
		if _, err := refEng.Apply(op); err != nil {
			t.Fatalf("reference op %d (%s): %v", i, op.Op, err)
		}
		ref[i+1] = gridJSON(t, refEng)
	}

	for _, every := range []int{1, 3, 1000} { // checkpoint cadences: every op, every 3rd, never
		for k := 0; k <= len(ops); k++ {
			dir := t.TempDir()
			st, err := NewStore(dir, Options{Sync: SyncNone}, every)
			if err != nil {
				t.Fatal(err)
			}
			meta := SessionMeta{ID: "s1", Created: time.Unix(0, 0)}
			sl, err := st.Open(meta)
			if err != nil {
				t.Fatal(err)
			}
			applyAll(t, sl, ops[:k])
			// Crash: no Close, no exit checkpoint. Reopen the directory
			// as a fresh process would.
			st2, err := NewStore(dir, Options{Sync: SyncNone}, every)
			if err != nil {
				t.Fatal(err)
			}
			sl2, err := st2.Open(meta)
			if err != nil {
				t.Fatal(err)
			}
			eng, stats, err := sl2.Recover(newEngine)
			if err != nil {
				t.Fatalf("every=%d k=%d: recover: %v", every, k, err)
			}
			if stats.ReplayErr != "" {
				t.Fatalf("every=%d k=%d: replay error: %s", every, k, stats.ReplayErr)
			}
			if got := gridJSON(t, eng); got != ref[k] {
				t.Fatalf("every=%d k=%d: recovered grid differs from uninterrupted run", every, k)
			}
			// The recovered session keeps working: finish the sequence.
			for i, op := range ops[k:] {
				eff, err := eng.Apply(op)
				if err != nil {
					t.Fatalf("every=%d k=%d: post-recovery op %d (%s): %v", every, k, i, op.Op, err)
				}
				if eff.Mutated {
					if err := sl2.AppendOp(op); err != nil {
						t.Fatal(err)
					}
				}
			}
			if got := gridJSON(t, eng); got != ref[len(ops)] {
				t.Fatalf("every=%d k=%d: final grid differs after recovery + remaining ops", every, k)
			}
			sl.Close(nil)
			sl2.Close(nil)
		}
	}
}

// TestCloseThenRecoverReplaysNothing pins the flush-on-shutdown contract:
// a cleanly closed session (checkpoint written on close) rehydrates from
// the checkpoint alone.
func TestCloseThenRecoverReplaysNothing(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir, Options{Sync: SyncNone}, 1000) // cadence never fires on its own
	if err != nil {
		t.Fatal(err)
	}
	meta := SessionMeta{ID: "s7", Name: "sam", Created: time.Unix(0, 0)}
	sl, err := st.Open(meta)
	if err != nil {
		t.Fatal(err)
	}
	ops := []engine.Op{
		{Op: "demo", Table: "cars"},
		{Op: "select", Predicate: "Year = 2005"},
		{Op: "sort", Column: "Price", Dir: "desc"},
	}
	eng := applyAll(t, sl, ops)
	want := gridJSON(t, eng)
	if err := sl.Close(eng); err != nil {
		t.Fatal(err)
	}

	sl2, err := st.Open(meta)
	if err != nil {
		t.Fatal(err)
	}
	defer sl2.Close(nil)
	eng2, stats, err := sl2.Recover(newEngine)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Replayed != 0 {
		t.Fatalf("clean close then recover replayed %d ops, want 0", stats.Replayed)
	}
	if stats.CheckpointSeq == 0 {
		t.Fatal("recovery did not use the close checkpoint")
	}
	if got := gridJSON(t, eng2); got != want {
		t.Fatal("recovered grid differs after clean close")
	}
	if v := eng2.Version(); v != eng.Version() {
		t.Fatalf("recovered version %d, want %d", v, eng.Version())
	}
	if h := eng2.History(); !reflect.DeepEqual(h, eng.History()) {
		t.Fatalf("recovered history %v, want %v", h, eng.History())
	}
}

// TestUndoPastCheckpointFallsBack forces the approximate-checkpoint escape
// hatch. A join replaces the base relation; undoing it leaves a redo stack
// whose entry hangs off the derived base, so the checkpoint taken there
// cannot carry its stacks (core.ErrHistoryNotPortable) and degrades to the
// approximate query-state document. Replaying the suffix — a redo — over
// that restored state fails (the restored redo stack is empty), so recovery
// must fall back to full-history replay and still reproduce the grid.
func TestUndoPastCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir, Options{Sync: SyncNone}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	meta := SessionMeta{ID: "s1", Created: time.Unix(0, 0)}
	sl, err := st.Open(meta)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(nil)
	apply := func(op engine.Op) {
		t.Helper()
		if _, err := eng.Apply(op); err != nil {
			t.Fatalf("%s: %v", op.Op, err)
		}
		if err := sl.AppendOp(op); err != nil {
			t.Fatal(err)
		}
	}
	apply(engine.Op{Op: "demo", Table: "cars"})
	apply(engine.Op{Op: "select", Predicate: "Model = 'Jetta'"})
	apply(engine.Op{Op: "save", Name: "jettas"})
	apply(engine.Op{Op: "demo", Table: "cars"})
	apply(engine.Op{Op: "join", Sheet: "jettas", On: "Model = jettas_Model"})
	apply(engine.Op{Op: "undo"}) // base back to cars; redo holds the joined base
	// Checkpoint here: base is registered again, but the redo stack is not
	// portable → approximate document.
	if err := sl.Checkpoint(eng); err != nil {
		t.Fatal(err)
	}
	// The suffix redoes past the checkpoint.
	apply(engine.Op{Op: "redo"})
	apply(engine.Op{Op: "undo"})
	apply(engine.Op{Op: "select", Predicate: "Price > 15000"})
	want := gridJSON(t, eng)

	st2, err := NewStore(dir, Options{Sync: SyncNone}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	sl2, err := st2.Open(meta)
	if err != nil {
		t.Fatal(err)
	}
	defer sl2.Close(nil)
	before := walFallbacks.Value()
	eng2, stats, err := sl2.Recover(newEngine)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReplayErr != "" {
		t.Fatalf("replay error: %s", stats.ReplayErr)
	}
	if walFallbacks.Value() == before {
		t.Fatal("expected the approximate checkpoint to be rejected")
	}
	if stats.CheckpointSeq != 0 {
		t.Fatalf("expected full-history replay, used checkpoint %d", stats.CheckpointSeq)
	}
	if got := gridJSON(t, eng2); got != want {
		t.Fatal("fallback recovery produced a different grid")
	}
}

// TestCheckpointSkipsDerivedBase: after a binary operator the sheet's base
// is a derived relation the persist layer cannot reattach, so checkpoints
// skip (wal.snapshot_skips) and recovery replays the full op history —
// including the catalog save that the join consumed.
func TestCheckpointSkipsDerivedBase(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir, Options{Sync: SyncNone}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	meta := SessionMeta{ID: "s1", Created: time.Unix(0, 0)}
	sl, err := st.Open(meta)
	if err != nil {
		t.Fatal(err)
	}
	ops := []engine.Op{
		{Op: "demo", Table: "cars"},
		{Op: "select", Predicate: "Model = 'Jetta'"},
		{Op: "save", Name: "jettas"},
		{Op: "demo", Table: "cars"}, // fresh sheet over the base table
		{Op: "join", Sheet: "jettas", On: "Model = jettas_Model"},
	}
	eng := applyAll(t, sl, ops)
	want := gridJSON(t, eng)

	skipsBefore := walSnapshotSkips.Value()
	if err := sl.Checkpoint(eng); err != nil {
		t.Fatal(err)
	}
	if walSnapshotSkips.Value() != skipsBefore+1 {
		t.Fatal("checkpoint over a derived base should be skipped")
	}

	st2, err := NewStore(dir, Options{Sync: SyncNone}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	sl2, err := st2.Open(meta)
	if err != nil {
		t.Fatal(err)
	}
	defer sl2.Close(nil)
	eng2, stats, err := sl2.Recover(newEngine)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ReplayErr != "" {
		t.Fatalf("replay error: %s", stats.ReplayErr)
	}
	if stats.Replayed != len(ops) {
		t.Fatalf("replayed %d ops, want %d (full history)", stats.Replayed, len(ops))
	}
	if got := gridJSON(t, eng2); got != want {
		t.Fatal("full replay after a join produced a different grid")
	}
}

// TestExactCheckpointPrunes: a checkpoint with empty undo/redo stacks is
// exact; it prunes redundant segments and older checkpoints.
func TestExactCheckpointPrunes(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir, Options{Sync: SyncNone, SegmentBytes: 64}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	meta := SessionMeta{ID: "s1", Created: time.Unix(0, 0)}
	sl, err := st.Open(meta)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(nil)
	seq := []engine.Op{
		{Op: "demo", Table: "cars"},
		{Op: "select", Predicate: "Year >= 2004"},
		{Op: "sort", Column: "Price", Dir: "asc"},
	}
	for _, op := range seq {
		if _, err := eng.Apply(op); err != nil {
			t.Fatal(err)
		}
		if err := sl.AppendOp(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := sl.Checkpoint(eng); err != nil { // full document → exact
		t.Fatal(err)
	}
	// A fresh demo resets the sheet; the next checkpoint is exact too and
	// supersedes both the first one and the log up to its sequence.
	if _, err := eng.Apply(engine.Op{Op: "demo", Table: "cars"}); err != nil {
		t.Fatal(err)
	}
	if err := sl.AppendOp(engine.Op{Op: "demo", Table: "cars"}); err != nil {
		t.Fatal(err)
	}
	if err := sl.Checkpoint(eng); err != nil {
		t.Fatal(err)
	}
	var segs, ckpts int
	entries, err := os.ReadDir(filepath.Join(dir, "sessions", "s1"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if _, ok := parseSegName(e.Name()); ok {
			segs++
		}
		if _, ok := parseCkptName(e.Name()); ok {
			ckpts++
		}
	}
	if ckpts != 1 {
		t.Fatalf("exact checkpoint should prune older ones: %d checkpoints left", ckpts)
	}
	if segs != 1 {
		t.Fatalf("exact checkpoint should prune covered segments: %d segments left", segs)
	}
	// And the pruned session still recovers.
	want := gridJSON(t, eng)
	sl.Close(nil)
	sl2, err := st.Open(meta)
	if err != nil {
		t.Fatal(err)
	}
	defer sl2.Close(nil)
	eng2, stats, err := sl2.Recover(newEngine)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Replayed != 0 {
		t.Fatalf("replayed %d after exact checkpoint, want 0", stats.Replayed)
	}
	if got := gridJSON(t, eng2); got != want {
		t.Fatal("grid differs after exact-checkpoint recovery")
	}
}

// TestStoreSessionsScan pins the data-dir scan used at server startup.
func TestStoreSessionsScan(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir, Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"s2", "s10", "s1"} {
		sl, err := st.Open(SessionMeta{ID: id, Name: "n-" + id, Created: time.Unix(42, 0).UTC()})
		if err != nil {
			t.Fatal(err)
		}
		sl.Close(nil)
	}
	// Junk that must be ignored: a stray file and a dir without meta.
	os.WriteFile(filepath.Join(dir, "sessions", "junk.txt"), []byte("x"), 0o644)
	os.MkdirAll(filepath.Join(dir, "sessions", "halfborn"), 0o755)

	metas, err := st.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 3 {
		t.Fatalf("scanned %d sessions, want 3", len(metas))
	}
	ids := []string{metas[0].ID, metas[1].ID, metas[2].ID}
	if !reflect.DeepEqual(ids, []string{"s1", "s10", "s2"}) {
		t.Fatalf("ids %v", ids)
	}
	if metas[0].Name != "n-s1" || !metas[0].Created.Equal(time.Unix(42, 0)) {
		t.Fatalf("meta roundtrip: %+v", metas[0])
	}
	if err := st.Remove("s10"); err != nil {
		t.Fatal(err)
	}
	metas, err = st.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 2 {
		t.Fatalf("after Remove: %d sessions, want 2", len(metas))
	}
}
