package wal

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// collect reads every record from seq 1.
func collect(t *testing.T, l *Log) [][]byte {
	t.Helper()
	var got [][]byte
	err := l.ReadFrom(1, func(seq uint64, payload []byte) error {
		if want := uint64(len(got) + 1); seq != want {
			t.Fatalf("record seq %d, want %d", seq, want)
		}
		got = append(got, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	return got
}

func payloads(n int) [][]byte {
	rng := rand.New(rand.NewSource(7))
	out := make([][]byte, n)
	for i := range out {
		p := make([]byte, 1+rng.Intn(200))
		rng.Read(p)
		out[i] = p
	}
	return out
}

func TestLogAppendReopenRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	want := payloads(50)
	for i, p := range want {
		seq, err := l.Append(p)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("append %d got seq %d", i, seq)
		}
	}
	if got := collect(t, l); len(got) != 50 {
		t.Fatalf("read %d records before close", len(got))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenLog(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastSeq() != 50 {
		t.Fatalf("LastSeq after reopen = %d, want 50", l2.LastSeq())
	}
	got := collect(t, l2)
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d mismatch", i+1)
		}
	}
	// Appends continue after the last recovered record.
	if seq, err := l2.Append([]byte("after")); err != nil || seq != 51 {
		t.Fatalf("append after reopen: seq %d err %v", seq, err)
	}
}

func TestLogSegmentRollAndPrune(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{Sync: SyncNone, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	want := payloads(40)
	for _, p := range want {
		if _, err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(l.segments); n < 3 {
		t.Fatalf("expected multiple segments, got %d", n)
	}
	// Prune everything at or below the penultimate segment's last record.
	cut := l.segments[len(l.segments)-1] - 1
	if err := l.PruneThrough(cut); err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	err = l.ReadFrom(cut+1, func(seq uint64, payload []byte) error {
		got = append(got, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if wantN := 40 - int(cut); len(got) != wantN {
		t.Fatalf("post-prune suffix has %d records, want %d", len(got), wantN)
	}
	for i, p := range got {
		if !bytes.Equal(p, want[int(cut)+i]) {
			t.Fatalf("suffix record %d mismatch", i)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen still works over the pruned log.
	l2, err := OpenLog(dir, Options{Sync: SyncNone, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastSeq() != 40 {
		t.Fatalf("LastSeq = %d after prune+reopen, want 40", l2.LastSeq())
	}
}

// lastSegment returns the path of the newest segment file in dir.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	best := ""
	var bestSeq uint64
	for _, e := range entries {
		if seq, ok := parseSegName(e.Name()); ok && seq >= bestSeq {
			best, bestSeq = filepath.Join(dir, e.Name()), seq
		}
	}
	if best == "" {
		t.Fatal("no segment files")
	}
	return best
}

func TestLogTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	want := payloads(10)
	for _, p := range want {
		if _, err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn append: garbage after the last valid record.
	seg := lastSegment(t, dir)
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	before := walTruncated.Value()
	l2, err := OpenLog(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if walTruncated.Value() != before+1 {
		t.Fatalf("wal.truncated_tails did not advance")
	}
	if l2.LastSeq() != 10 {
		t.Fatalf("LastSeq = %d, want 10", l2.LastSeq())
	}
	if got := collect(t, l2); len(got) != 10 {
		t.Fatalf("read %d records, want 10", len(got))
	}
}

func TestLogCorruptLastRecordDropped(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads(5) {
		if _, err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the final record's payload: its CRC must reject it.
	seg := lastSegment(t, dir)
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenLog(dir, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastSeq() != 4 {
		t.Fatalf("LastSeq = %d, want 4 (corrupt record dropped)", l2.LastSeq())
	}
	// The log stays appendable and the new record takes the freed seq.
	if seq, err := l2.Append([]byte("replacement")); err != nil || seq != 5 {
		t.Fatalf("append after corruption: seq %d err %v", seq, err)
	}
}

// TestLogTornTailRandomCuts hammers the decoder: a valid log cut at every
// interesting byte offset must recover exactly the records that lie fully
// before the cut, and stay appendable.
func TestLogTornTailRandomCuts(t *testing.T) {
	base := t.TempDir()
	src := filepath.Join(base, "src")
	l, err := OpenLog(src, Options{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	want := payloads(12)
	var ends []int64 // byte offset of each record's end
	off := int64(0)
	for _, p := range want {
		if _, err := l.Append(p); err != nil {
			t.Fatal(err)
		}
		off += headerSize + int64(len(p))
		ends = append(ends, off)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(lastSegment(t, src))
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(41))
	cuts := map[int64]bool{0: true, int64(len(raw)): true}
	for _, e := range ends {
		cuts[e] = true     // exactly at a boundary
		cuts[e-1] = true   // one byte short
		cuts[e-headerSize] = true
	}
	for i := 0; i < 40; i++ {
		cuts[int64(rng.Intn(len(raw) + 1))] = true
	}
	for cut := range cuts {
		if cut < 0 {
			continue
		}
		dir := filepath.Join(base, fmt.Sprintf("cut%d", cut))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, segName(1)), raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		lc, err := OpenLog(dir, Options{Sync: SyncNone})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		complete := 0
		for _, e := range ends {
			if e <= cut {
				complete++
			}
		}
		if got := int(lc.LastSeq()); got != complete {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, got, complete)
		}
		got := collect(t, lc)
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("cut %d: record %d mismatch", cut, i+1)
			}
		}
		if _, err := lc.Append([]byte("continue")); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		lc.Close()
	}
}

// FuzzScanRecords feeds arbitrary bytes to the record decoder: it must
// never panic, never report more valid bytes than it was given, and
// rescanning the valid prefix must reproduce the same records.
func FuzzScanRecords(f *testing.F) {
	// Seed with a valid two-record log plus mutations.
	dir := f.TempDir()
	l, err := OpenLog(dir, Options{Sync: SyncNone})
	if err != nil {
		f.Fatal(err)
	}
	l.Append([]byte(`{"op":"demo","table":"cars"}`))
	l.Append([]byte(`{"op":"select","predicate":"Year = 2005"}`))
	l.Close()
	raw, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add(raw[:len(raw)-3])
	f.Add([]byte{})
	mut := append([]byte(nil), raw...)
	mut[5] ^= 0x40
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		var first [][]byte
		valid, next, err := scanRecords(bytes.NewReader(data), 1, func(seq uint64, p []byte) error {
			first = append(first, append([]byte(nil), p...))
			return nil
		})
		if err != nil {
			t.Fatalf("scan returned error without fn error: %v", err)
		}
		if valid > int64(len(data)) {
			t.Fatalf("valid %d > input %d", valid, len(data))
		}
		if int(next-1) != len(first) {
			t.Fatalf("next %d but %d records", next, len(first))
		}
		var second [][]byte
		valid2, _, _ := scanRecords(bytes.NewReader(data[:valid]), 1, func(seq uint64, p []byte) error {
			second = append(second, append([]byte(nil), p...))
			return nil
		})
		if valid2 != valid || len(second) != len(first) {
			t.Fatalf("rescan of valid prefix: %d bytes/%d records, want %d/%d",
				valid2, len(second), valid, len(first))
		}
		for i := range first {
			if !bytes.Equal(first[i], second[i]) {
				t.Fatalf("record %d differs on rescan", i)
			}
		}
	})
}
