package wal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"sheetmusiq/internal/core"
	"sheetmusiq/internal/engine"
	"sheetmusiq/internal/obs"
)

// This file layers sessions on the record log: a Store manages one
// directory per session under <root>/sessions/<id>/, each holding
//
//	meta.json            session identity (id, name, created)
//	wal-<seq>.seg        the op log (log.go)
//	ckpt-<seq>.json      snapshot checkpoints
//
// A checkpoint at sequence S captures the session after applying records
// 1..S: the table-registering ops (demo/load) needed to rebuild the
// session's raw-table registry, plus the current sheet's full interaction
// state — query state and undo/redo stacks — via the core persist layer.
// Recovery restores the newest checkpoint and replays only records S+1..
// Checkpoints whose history crosses a binary operator cannot carry their
// stacks (the entries hang off a derived base relation) and degrade to
// approximate query-state-only documents; if replay then reaches below one
// (an undo past the checkpoint), recovery falls back to older checkpoints
// and finally to a full-history replay, which is always exact because the
// log holds every mutating op since the session was born.

// Session-store metrics.
var (
	walSnapshots     = obs.Default.Counter("wal.snapshot_writes")
	walSnapshotSkips = obs.Default.Counter("wal.snapshot_skips")
	walRecoveries    = obs.Default.Counter("wal.recoveries")
	walReplayedOps   = obs.Default.Counter("wal.replayed_ops")
	walReplayErrors  = obs.Default.Counter("wal.replay_errors")
	walFallbacks     = obs.Default.Counter("wal.recovery_fallbacks")
	walRecoverySecs  = obs.Default.Histogram("wal.recovery_seconds")
)

// DefaultSnapshotEvery is the checkpoint cadence when Store.SnapshotEvery
// is 0: one checkpoint per this many logged (mutating) ops. Each checkpoint
// costs up to three inline fsyncs (log, checkpoint file, directory), so the
// cadence trades op-path stalls against recovery replay length; replaying a
// few hundred algebra ops takes low milliseconds, making a sparse cadence
// the better default.
const DefaultSnapshotEvery = 256

// Store manages per-session durability under a root data directory.
type Store struct {
	root          string
	opts          Options
	snapshotEvery int
}

// NewStore opens (creating if needed) a data directory. snapshotEvery is
// the checkpoint cadence in logged ops (0 = DefaultSnapshotEvery).
func NewStore(root string, opts Options, snapshotEvery int) (*Store, error) {
	if snapshotEvery <= 0 {
		snapshotEvery = DefaultSnapshotEvery
	}
	if err := os.MkdirAll(filepath.Join(root, "sessions"), 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	return &Store{root: root, opts: opts.withDefaults(), snapshotEvery: snapshotEvery}, nil
}

// Root returns the store's data directory.
func (st *Store) Root() string { return st.root }

// SessionMeta identifies one durable session.
type SessionMeta struct {
	ID      string    `json:"id"`
	Name    string    `json:"name,omitempty"`
	Created time.Time `json:"created"`
}

// Sessions scans the data directory and returns every durable session's
// metadata, sorted by id.
func (st *Store) Sessions() ([]SessionMeta, error) {
	dir := filepath.Join(st.root, "sessions")
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var metas []SessionMeta
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(dir, e.Name(), "meta.json"))
		if err != nil {
			continue // half-created session dir; ignore
		}
		var m SessionMeta
		if err := json.Unmarshal(raw, &m); err != nil || m.ID != e.Name() {
			continue
		}
		metas = append(metas, m)
	}
	sort.Slice(metas, func(i, j int) bool { return metas[i].ID < metas[j].ID })
	return metas, nil
}

// Remove deletes a session's durable state entirely (explicit session
// deletion, as opposed to eviction, which keeps the data for rehydration).
func (st *Store) Remove(id string) error {
	if err := validID(id); err != nil {
		return err
	}
	if err := os.RemoveAll(filepath.Join(st.root, "sessions", id)); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return syncDir(filepath.Join(st.root, "sessions"))
}

// validID rejects ids that could escape the sessions directory.
func validID(id string) error {
	if id == "" || strings.ContainsAny(id, "/\\") || id == "." || id == ".." {
		return fmt.Errorf("wal: bad session id %q", id)
	}
	return nil
}

// SessionLog is one session's WAL plus its checkpoints. It is not safe for
// concurrent use: the serving layer already serialises each session behind
// its mutex, and recovery runs before the session serves traffic.
type SessionLog struct {
	store *Store
	dir   string
	log   *Log

	// dataOps is the logged subsequence of table-registering ops
	// (Op.RegistersTables); every checkpoint embeds it so recovery can
	// rebuild the raw-table registry before restoring sheet state.
	dataOps []engine.Op
	// ckptSeq is the newest checkpoint's sequence (0 = none).
	ckptSeq uint64
	// sinceCkpt counts logged ops since the newest checkpoint.
	sinceCkpt int
}

// Open opens (creating if needed) the session's log directory.
func (st *Store) Open(meta SessionMeta) (*SessionLog, error) {
	if err := validID(meta.ID); err != nil {
		return nil, err
	}
	dir := filepath.Join(st.root, "sessions", meta.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	metaPath := filepath.Join(dir, "meta.json")
	if _, err := os.Stat(metaPath); os.IsNotExist(err) {
		raw, err := json.Marshal(meta)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		if err := atomicWrite(metaPath, raw, true); err != nil {
			return nil, err
		}
	}
	log, err := OpenLog(dir, st.opts)
	if err != nil {
		return nil, err
	}
	sl := &SessionLog{store: st, dir: dir, log: log}
	if seqs := sl.checkpointSeqs(); len(seqs) > 0 {
		sl.ckptSeq = seqs[len(seqs)-1]
	}
	// A checkpoint can sit past the log tail (its write fsyncs the log
	// first, but a tampered or copied directory may disagree); treat that
	// as "nothing to replay" rather than underflowing the counter.
	if last := log.LastSeq(); last > sl.ckptSeq {
		sl.sinceCkpt = int(last - sl.ckptSeq)
	}
	return sl, nil
}

// AppendOp logs one successfully applied mutating op.
func (sl *SessionLog) AppendOp(op engine.Op) error {
	payload, err := json.Marshal(op)
	if err != nil {
		return fmt.Errorf("wal: encoding op: %w", err)
	}
	if _, err := sl.log.Append(payload); err != nil {
		return err
	}
	if op.RegistersTables() {
		sl.dataOps = append(sl.dataOps, op)
	}
	sl.sinceCkpt++
	return nil
}

// ShouldCheckpoint reports whether enough ops accumulated since the last
// checkpoint to warrant a new one.
func (sl *SessionLog) ShouldCheckpoint() bool {
	return sl.sinceCkpt >= sl.store.snapshotEvery
}

// checkpointJSON is the on-disk checkpoint layout.
type checkpointJSON struct {
	Format  int    `json:"format"`
	Seq     uint64 `json:"seq"`
	Exact   bool   `json:"exact"`
	Version int    `json:"version,omitempty"`
	// Full marks State as a core full-interaction-state document
	// (MarshalSheetFull: query state + undo/redo stacks); otherwise it is
	// the plain query-state document.
	Full    bool            `json:"full,omitempty"`
	DataOps []engine.Op     `json:"data_ops,omitempty"`
	State   json.RawMessage `json:"state,omitempty"` // core persist document; absent = no sheet
}

const checkpointFormat = 1

const ckptPrefix, ckptSuffix = "ckpt-", ".json"

func ckptName(seq uint64) string {
	return fmt.Sprintf("%s%020d%s", ckptPrefix, seq, ckptSuffix)
}

func parseCkptName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(ckptPrefix):len(name)-len(ckptSuffix)], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// checkpointSeqs lists the on-disk checkpoint sequences, ascending.
func (sl *SessionLog) checkpointSeqs() []uint64 {
	entries, err := os.ReadDir(sl.dir)
	if err != nil {
		return nil
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := parseCkptName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs
}

// Checkpoint writes a snapshot of the engine's current state at the log's
// current tail. Sessions whose sheet cannot round-trip through the persist
// layer (the base relation was replaced by a binary operator and is no
// longer a registered table) skip the snapshot — recovery for them replays
// a longer suffix instead; that is a performance loss, never a correctness
// one.
//
// The preferred document is the full interaction state (query state plus
// undo/redo stacks): restoring it reproduces the session perfectly, so the
// checkpoint is exact and the log prefix and older checkpoints become
// redundant and are pruned. When the history is not portable (it crosses a
// binary operator, so stack entries hang off a derived base relation), the
// checkpoint degrades to the plain query state and is marked approximate:
// it recovers the current grid, but a replayed or future undo can reach
// below it, so the log below is kept as ground truth and recovery falls
// back to it when the checkpoint proves insufficient.
func (sl *SessionLog) Checkpoint(e *engine.Engine) error {
	ck := checkpointJSON{
		Format:  checkpointFormat,
		Seq:     sl.log.LastSeq(),
		Exact:   true,
		DataOps: sl.dataOps,
	}
	if sheet := e.Sheet(); sheet != nil {
		// The persist document re-attaches to the base by registry lookup,
		// so the sheet's base must BE a registered relation — compared by
		// identity, because a joined base inherits the sheet's name and can
		// shadow the table it was derived from.
		if rel, ok := e.DB().Table(sheet.Base().Name); !ok || rel != sheet.Base() {
			// Binary ops replaced the base with a derived relation the
			// persist layer cannot reattach; keep replaying from the last
			// good checkpoint.
			walSnapshotSkips.Inc()
			sl.sinceCkpt = 0
			return nil
		}
		ck.Version = sheet.Version()
		switch state, err := e.MarshalSheetFull(); {
		case err == nil:
			ck.State = state
			ck.Full = true
		case errors.Is(err, core.ErrHistoryNotPortable):
			state, err := sheet.MarshalState()
			if err != nil {
				walSnapshotSkips.Inc()
				sl.sinceCkpt = 0
				return nil
			}
			ck.State = state
			ck.Exact = false // the stacks this document drops are non-empty
		default:
			walSnapshotSkips.Inc()
			sl.sinceCkpt = 0
			return nil
		}
	}
	// The checkpoint must cover every record up to its sequence, so make
	// the log durable first: a checkpoint claiming seq S while record S
	// sits unsynced could otherwise survive a power cut that the record
	// did not. SyncNone has already conceded power-loss durability, so it
	// skips the fsyncs here too (the rename still makes the checkpoint
	// atomic and kill -9-safe).
	durable := sl.store.opts.Sync != SyncNone
	if durable {
		if err := sl.log.Sync(); err != nil {
			return err
		}
	}
	raw, err := json.Marshal(&ck)
	if err != nil {
		return fmt.Errorf("wal: encoding checkpoint: %w", err)
	}
	if err := atomicWrite(filepath.Join(sl.dir, ckptName(ck.Seq)), raw, durable); err != nil {
		return err
	}
	prev := sl.checkpointSeqs()
	sl.ckptSeq = ck.Seq
	sl.sinceCkpt = 0
	walSnapshots.Inc()
	if ck.Exact {
		// The exact snapshot supersedes all history up to Seq.
		if err := sl.log.PruneThrough(ck.Seq); err != nil {
			return err
		}
		for _, seq := range prev {
			if seq < ck.Seq {
				_ = os.Remove(filepath.Join(sl.dir, ckptName(seq)))
			}
		}
	} else {
		// Keep a short fallback chain of approximate checkpoints; the
		// full log remains the ground truth below them.
		const keep = 3
		older := 0
		for i := len(prev) - 1; i >= 0; i-- {
			if prev[i] >= ck.Seq {
				continue
			}
			older++
			if older > keep {
				_ = os.Remove(filepath.Join(sl.dir, ckptName(prev[i])))
			}
		}
	}
	return nil
}

// RecoveryStats reports what recovery did.
type RecoveryStats struct {
	// CheckpointSeq is the checkpoint the session was restored from
	// (0 = full-history replay).
	CheckpointSeq uint64
	// Replayed counts log records applied on top of the checkpoint.
	Replayed int
	// Fallbacks counts checkpoints that failed to reproduce the session
	// before one succeeded (or full replay was reached).
	Fallbacks int
	// ReplayErr is set when the final replay stopped early at a failing
	// op (e.g. a binary operator whose stored-sheet operand was saved by
	// another session and is gone after restart). The session recovers to
	// the state just before the failing record.
	ReplayErr string
}

// Recover rebuilds the session's engine: newest checkpoint plus log-suffix
// replay, falling back through older checkpoints to a full-history replay.
// newEngine builds a fresh engine (seeded the same way a new session's
// would be); each recovery attempt gets its own so a failed attempt leaves
// no partial state behind.
func (sl *SessionLog) Recover(newEngine func() (*engine.Engine, error)) (*engine.Engine, RecoveryStats, error) {
	start := obs.StartTimer()
	stats := RecoveryStats{}
	seqs := sl.checkpointSeqs()
	for i := len(seqs) - 1; i >= 0; i-- {
		eng, replayed, err := sl.tryCheckpoint(seqs[i], newEngine)
		if err != nil {
			stats.Fallbacks++
			walFallbacks.Inc()
			continue
		}
		stats.CheckpointSeq = seqs[i]
		stats.Replayed = replayed
		walRecoveries.Inc()
		walRecoverySecs.Since(start)
		return eng, stats, nil
	}
	// Full-history replay: always semantically exact, because the engine
	// reproduces undo/redo stacks from the op sequence itself. A mid-log
	// op failure (lost cross-session dependency) stops the replay there;
	// the session surfaces at the state reached, and the error is
	// reported in the stats rather than failing rehydration.
	eng, err := newEngine()
	if err != nil {
		return nil, stats, err
	}
	sl.dataOps = nil
	replayed := 0
	err = sl.log.ReadFrom(1, func(seq uint64, payload []byte) error {
		op, aerr := applyRecord(eng, payload)
		if aerr != nil {
			return &replayStop{seq: seq, err: aerr}
		}
		if op.RegistersTables() {
			sl.dataOps = append(sl.dataOps, op)
		}
		replayed++
		return nil
	})
	if err != nil {
		var stop *replayStop
		if errors.As(err, &stop) {
			stats.ReplayErr = fmt.Sprintf("record %d: %v", stop.seq, stop.err)
			walReplayErrors.Inc()
		} else {
			return nil, stats, err
		}
	}
	stats.Replayed = replayed
	walReplayedOps.Add(int64(replayed))
	walRecoveries.Inc()
	walRecoverySecs.Since(start)
	return eng, stats, nil
}

// tryCheckpoint restores one checkpoint and replays the suffix after it
// into a fresh engine. Any failure — unreadable checkpoint, unrestorable
// state, or a replayed op erroring (an approximate checkpoint whose suffix
// undoes below it) — rejects the attempt so Recover can fall back.
func (sl *SessionLog) tryCheckpoint(seq uint64, newEngine func() (*engine.Engine, error)) (*engine.Engine, int, error) {
	raw, err := os.ReadFile(filepath.Join(sl.dir, ckptName(seq)))
	if err != nil {
		return nil, 0, err
	}
	var ck checkpointJSON
	if err := json.Unmarshal(raw, &ck); err != nil {
		return nil, 0, fmt.Errorf("wal: bad checkpoint: %w", err)
	}
	if ck.Format != checkpointFormat || ck.Seq != seq {
		return nil, 0, fmt.Errorf("wal: bad checkpoint %d", seq)
	}
	eng, err := newEngine()
	if err != nil {
		return nil, 0, err
	}
	dataOps := append([]engine.Op(nil), ck.DataOps...)
	for _, op := range ck.DataOps {
		if _, err := eng.Apply(op); err != nil {
			return nil, 0, fmt.Errorf("wal: checkpoint data op %q: %w", op.Op, err)
		}
	}
	switch {
	case len(ck.State) > 0 && ck.Full:
		if err := eng.RestoreSheetFull(ck.State); err != nil {
			return nil, 0, err
		}
	case len(ck.State) > 0:
		if err := eng.RestoreSheet(ck.State); err != nil {
			return nil, 0, err
		}
		if ck.Version > 0 {
			eng.Sheet().SetVersion(ck.Version)
		}
	case !ck.Exact:
		return nil, 0, fmt.Errorf("wal: checkpoint %d has no sheet but is not exact", seq)
	}
	replayed := 0
	err = sl.log.ReadFrom(seq+1, func(_ uint64, payload []byte) error {
		op, aerr := applyRecord(eng, payload)
		if aerr != nil {
			return aerr
		}
		if op.RegistersTables() {
			dataOps = append(dataOps, op)
		}
		replayed++
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	sl.dataOps = dataOps
	walReplayedOps.Add(int64(replayed))
	return eng, replayed, nil
}

// applyRecord decodes and applies one logged op.
func applyRecord(eng *engine.Engine, payload []byte) (engine.Op, error) {
	var op engine.Op
	if err := json.Unmarshal(payload, &op); err != nil {
		return op, fmt.Errorf("wal: decoding op record: %w", err)
	}
	_, err := eng.Apply(op)
	return op, err
}

// replayStop wraps an op-application failure during full replay so it can
// be told apart from log-level read failures.
type replayStop struct {
	seq uint64
	err error
}

func (r *replayStop) Error() string { return fmt.Sprintf("wal: replay stopped at record %d: %v", r.seq, r.err) }
func (r *replayStop) Unwrap() error { return r.err }

// Close checkpoints the session (so a later rehydration replays nothing)
// and closes the log. e may be nil when no engine state is available (the
// caller is abandoning the session); the log is then closed as-is and
// recovery will replay the suffix.
func (sl *SessionLog) Close(e *engine.Engine) error {
	var err error
	if e != nil && sl.sinceCkpt > 0 {
		err = sl.Checkpoint(e)
	}
	if cerr := sl.log.Close(); err == nil {
		err = cerr
	}
	return err
}

// LastSeq exposes the log's newest record sequence.
func (sl *SessionLog) LastSeq() uint64 { return sl.log.LastSeq() }

// atomicWrite writes data to path via a temp file + rename, so the file is
// either absent or complete under any crash. With sync set it also fsyncs
// the file and its directory, hardening the write against power loss.
func atomicWrite(path string, data []byte, sync bool) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if sync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return fmt.Errorf("wal: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if !sync {
		return nil
	}
	return syncDir(dir)
}
