package core

import (
	"fmt"
	"strings"

	"sheetmusiq/internal/expr"
	"sheetmusiq/internal/relation"
	"sheetmusiq/internal/value"
)

// Group is one node of the recursive grouping tree (Sec. II-A). The root is
// level 1 (the paper's grouping by {NULL}); each child level refines its
// parent by the level's relative basis. Start/End delimit the group's rows
// in Result.Table ([Start, End)).
type Group struct {
	Level    int
	Key      []value.Value // values of this level's relative basis
	Children []*Group      // nil at the finest level
	Start    int
	End      int
}

// Rows returns how many tuples the group spans.
func (g *Group) Rows() int { return g.End - g.Start }

// Result is a fully evaluated spreadsheet: the visible table in display
// order plus the group tree over it.
type Result struct {
	Table  *relation.Relation
	Root   *Group
	Levels []GroupLevel // the grouping specification the tree reflects
}

// rowEnv adapts one working row to the expression evaluator.
type rowEnv struct {
	schema relation.Schema
	row    relation.Tuple
}

func (e rowEnv) Lookup(name string) (value.Value, bool) {
	if i := e.schema.IndexOf(name); i >= 0 {
		return e.row[i], true
	}
	return value.Null, false
}

// Evaluate replays the query state against the base relation and returns
// the resulting spreadsheet view.
//
// The state is unordered, so evaluation follows the deterministic staged
// semantics of DESIGN.md §3.1: columns and predicates are stratified by
// aggregate depth; stage d first materialises aggregate columns of depth d
// over the rows surviving all shallower selections, then formula columns of
// depth d, then applies the depth-d selections (duplicate elimination runs
// at the end of stage 0). This realises the paper's "computed columns
// update when the underlying data changes" and makes the unary operators
// commute exactly as Theorem 2 states.
//
// The result is memoised until the next operator: treat it as read-only
// (copy the table before mutating it).
func (s *Spreadsheet) Evaluate() (*Result, error) {
	if s.cacheResult != nil && s.cacheVersion == s.version {
		return s.cacheResult, nil
	}
	res, err := s.evaluate()
	if err != nil {
		return nil, err
	}
	s.cacheVersion = s.version
	s.cacheResult = res
	return res, nil
}

// evaluate is the uncached evaluation.
func (s *Spreadsheet) evaluate() (*Result, error) {
	// Working schema: every base column (hidden ones still participate in
	// predicates) followed by the computed columns.
	work := relation.New(s.name, s.base.Schema)
	for _, c := range s.state.computed {
		work.Schema = append(work.Schema, relation.Column{Name: c.Name, Kind: c.ResultKind})
	}
	nBase := len(s.base.Schema)
	rows := make([]relation.Tuple, 0, s.base.Len())
	for _, t := range s.base.Rows {
		row := make(relation.Tuple, len(work.Schema))
		copy(row, t)
		for i := nBase; i < len(row); i++ {
			row[i] = value.Null
		}
		rows = append(rows, row)
	}
	work.Rows = rows

	// Stratify computed columns and selections by depth.
	maxD := 0
	colDepth := make(map[string]int, len(s.state.computed))
	for _, c := range s.state.computed {
		d, err := s.aggDepth(c.Name, map[string]bool{})
		if err != nil {
			return nil, err
		}
		colDepth[strings.ToLower(c.Name)] = d
		if d > maxD {
			maxD = d
		}
	}
	selDepth := make([]int, len(s.state.selections))
	for i, sel := range s.state.selections {
		d, err := s.exprDepth(sel.Pred)
		if err != nil {
			return nil, err
		}
		selDepth[i] = d
		if d > maxD {
			maxD = d
		}
	}

	for d := 0; d <= maxD; d++ {
		// Aggregate columns of depth d see rows surviving selections < d.
		for _, c := range s.state.computed {
			if c.Kind == KindAggregate && colDepth[strings.ToLower(c.Name)] == d {
				if err := s.fillAggregate(work, c); err != nil {
					return nil, err
				}
			}
		}
		// Formula columns of depth d, in creation order (later formulas may
		// reference earlier ones of the same depth).
		for _, c := range s.state.computed {
			if c.Kind == KindFormula && colDepth[strings.ToLower(c.Name)] == d {
				if err := fillFormula(work, c); err != nil {
					return nil, err
				}
			}
		}
		// Selections of depth d.
		for i, sel := range s.state.selections {
			if selDepth[i] != d {
				continue
			}
			kept := work.Rows[:0]
			for _, row := range work.Rows {
				ok, err := expr.EvalBool(sel.Pred, rowEnv{schema: work.Schema, row: row})
				if err != nil {
					return nil, fmt.Errorf("core: selection %s: %w", sel.Pred.SQL(), err)
				}
				if ok {
					kept = append(kept, row)
				}
			}
			work.Rows = kept
		}
		// Duplicate elimination at the end of stage 0 (DESIGN.md §3.2).
		if d == 0 && s.state.distinctOn != nil {
			idx, err := work.ColumnIndexes(s.state.distinctOn)
			if err != nil {
				return nil, fmt.Errorf("core: distinct: %w", err)
			}
			seen := make(map[string]bool, len(work.Rows))
			kept := work.Rows[:0]
			for _, row := range work.Rows {
				k := row.KeyOn(idx)
				if seen[k] {
					continue
				}
				seen[k] = true
				kept = append(kept, row)
			}
			work.Rows = kept
		}
	}

	// Presentation order: each grouping level's relative basis in the
	// level's direction, then the finest-level keys — the Sec. II-A remark
	// that any recursive grouping can be emulated by one ordering.
	var keys []relation.SortKey
	for _, g := range s.state.grouping {
		if g.By != "" {
			// OrderGroupsBy extension: groups sort by a per-group-constant
			// column, with the relative basis as the tiebreak.
			keys = append(keys, relation.SortKey{Column: g.By, Desc: g.Dir == Desc})
			for _, a := range g.Rel {
				keys = append(keys, relation.SortKey{Column: a})
			}
			continue
		}
		for _, a := range g.Rel {
			keys = append(keys, relation.SortKey{Column: a, Desc: g.Dir == Desc})
		}
	}
	for _, k := range s.state.finest {
		keys = append(keys, relation.SortKey{Column: k.Column, Desc: k.Dir == Desc})
	}
	if err := work.Sort(keys); err != nil {
		return nil, err
	}

	// Project to the visible schema.
	visible := s.VisibleSchema()
	table, err := work.Project(visible.Names())
	if err != nil {
		return nil, err
	}
	table.Name = s.name

	root, err := s.buildGroups(work)
	if err != nil {
		return nil, err
	}
	return &Result{Table: table, Root: root, Levels: s.Grouping()}, nil
}

// fillAggregate computes one η column over the current working rows,
// writing the group's value into every member row (Def. 11 / Table III).
func (s *Spreadsheet) fillAggregate(work *relation.Relation, c *ComputedColumn) error {
	out := work.Schema.IndexOf(c.Name)
	in := work.Schema.IndexOf(c.Input)
	if out < 0 || in < 0 {
		return fmt.Errorf("core: aggregate %s references missing column", c.Name)
	}
	basis := s.state.cumulativeBasis(c.Level)
	bidx, err := work.ColumnIndexes(basis)
	if err != nil {
		return err
	}
	accs := map[string]*relation.Accumulator{}
	for _, row := range work.Rows {
		k := row.KeyOn(bidx)
		acc := accs[k]
		if acc == nil {
			acc = relation.NewAccumulator(c.Agg)
			accs[k] = acc
		}
		if err := acc.Add(row[in]); err != nil {
			return fmt.Errorf("core: aggregate %s: %w", c.Name, err)
		}
	}
	for _, row := range work.Rows {
		row[out] = coerce(accs[row.KeyOn(bidx)].Result(), c.ResultKind)
	}
	return nil
}

// fillFormula computes one θ column row-locally (Def. 12).
func fillFormula(work *relation.Relation, c *ComputedColumn) error {
	out := work.Schema.IndexOf(c.Name)
	if out < 0 {
		return fmt.Errorf("core: formula %s column missing", c.Name)
	}
	for _, row := range work.Rows {
		v, err := expr.Eval(c.Formula, rowEnv{schema: work.Schema, row: row})
		if err != nil {
			return fmt.Errorf("core: formula %s: %w", c.Name, err)
		}
		row[out] = coerce(v, c.ResultKind)
	}
	return nil
}

// coerce widens an integer into a float-typed column so computed columns
// stay kind-consistent (exact integer division yields INTEGER values).
func coerce(v value.Value, kind value.Kind) value.Value {
	if kind == value.KindFloat && v.Kind() == value.KindInt {
		return value.NewFloat(float64(v.Int()))
	}
	return v
}

// buildGroups partitions the sorted working rows into the recursive group
// tree.
func (s *Spreadsheet) buildGroups(work *relation.Relation) (*Group, error) {
	root := &Group{Level: 1, Start: 0, End: len(work.Rows)}
	var build func(g *Group, levelIdx int) error
	build = func(g *Group, levelIdx int) error {
		if levelIdx >= len(s.state.grouping) {
			return nil
		}
		rel := s.state.grouping[levelIdx].Rel
		idx, err := work.ColumnIndexes(rel)
		if err != nil {
			return err
		}
		i := g.Start
		for i < g.End {
			j := i + 1
			for j < g.End && work.Rows[j].KeyOn(idx) == work.Rows[i].KeyOn(idx) {
				j++
			}
			key := make([]value.Value, len(idx))
			for k, ci := range idx {
				key[k] = work.Rows[i][ci]
			}
			child := &Group{Level: levelIdx + 2, Key: key, Start: i, End: j}
			if err := build(child, levelIdx+1); err != nil {
				return err
			}
			g.Children = append(g.Children, child)
			i = j
		}
		return nil
	}
	if err := build(root, 0); err != nil {
		return nil, err
	}
	return root, nil
}

// Render formats the result as an aligned text table; golden tests compare
// it against the paper's printed tables.
func (r *Result) Render() string { return r.Table.String() }

// RenderGrouped formats the result with one blank line between top-level
// groups, the way a grouped spreadsheet reads.
func (r *Result) RenderGrouped() string {
	if len(r.Root.Children) == 0 {
		return r.Table.String()
	}
	full := strings.Split(strings.TrimRight(r.Table.String(), "\n"), "\n")
	header, body := full[0], full[1:]
	var b strings.Builder
	b.WriteString(header)
	b.WriteByte('\n')
	for gi, g := range r.Root.Children {
		if gi > 0 {
			b.WriteByte('\n')
		}
		for i := g.Start; i < g.End && i < len(body); i++ {
			b.WriteString(body[i])
			b.WriteByte('\n')
		}
	}
	return b.String()
}
