package core

import (
	"strings"
	"time"

	"sheetmusiq/internal/expr"
	"sheetmusiq/internal/obs"
	"sheetmusiq/internal/relation"
	"sheetmusiq/internal/value"
)

// Evaluation-pipeline metrics, recorded once per (uncached) replay — per
// evaluation and per stage, never per row. evalReplayOps accumulates the
// replayed operator count (selections + computed columns + grouping +
// ordering), so evalReplayOps/evalCount is the mean replay length.
// evalMergeFallback counts aggregate passes forced sequential because
// chunked merging would not be bit-identical (relation.MergeExact) — the
// determinism contract of the parallel pipeline. The stage-cache series
// (stage_hits, stage_recomputes, snapshot_bytes) live in snapcache.go.
var (
	evalCount         = obs.Default.Counter("core.eval.count")
	evalCacheHits     = obs.Default.Counter("core.eval.cache_hits")
	evalReplayOps     = obs.Default.Counter("core.eval.replay_ops")
	evalMergeFallback = obs.Default.Counter("core.eval.merge_fallback")
	evalCompileSec    = obs.Default.Histogram("core.eval.compile_seconds")
	evalSec           = obs.Default.Histogram("core.eval.seconds")
)

// Group is one node of the recursive grouping tree (Sec. II-A). The root is
// level 1 (the paper's grouping by {NULL}); each child level refines its
// parent by the level's relative basis. Start/End delimit the group's rows
// in Result.Table ([Start, End)).
type Group struct {
	Level    int
	Key      []value.Value // values of this level's relative basis
	Children []*Group      // nil at the finest level
	Start    int
	End      int
}

// Rows returns how many tuples the group spans.
func (g *Group) Rows() int { return g.End - g.Start }

// Result is a fully evaluated spreadsheet: the visible table in display
// order plus the group tree over it.
type Result struct {
	Table  *relation.Relation
	Root   *Group
	Levels []GroupLevel // the grouping specification the tree reflects
}

// rowEnv adapts one working row to the tree-walking expression evaluator.
// It is the fallback for expressions the compiler declines; the hot paths
// run compiled programs that index the row directly.
type rowEnv struct {
	schema relation.Schema
	row    relation.Tuple
}

func (e rowEnv) Lookup(name string) (value.Value, bool) {
	if i := e.schema.IndexOf(name); i >= 0 {
		return e.row[i], true
	}
	return value.Null, false
}

// schemaResolver resolves column names to working-row positions for
// expression compilation. Resolution happens once per expression per
// evaluation instead of once per reference per row.
func schemaResolver(schema relation.Schema) expr.Resolver {
	return func(name string) (int, bool) {
		if i := schema.IndexOf(name); i >= 0 {
			return i, true
		}
		return 0, false
	}
}

// Evaluate replays the query state against the base relation and returns
// the resulting spreadsheet view.
//
// The state is unordered, so evaluation follows the deterministic staged
// semantics of DESIGN.md §3.1: columns and predicates are stratified by
// aggregate depth; stage d first materialises aggregate columns of depth d
// over the rows surviving all shallower selections, then formula columns of
// depth d, then applies the depth-d selections (duplicate elimination runs
// at the end of stage 0). This realises the paper's "computed columns
// update when the underlying data changes" and makes the unary operators
// commute exactly as Theorem 2 states.
//
// Both the result and an evaluation error are memoised until the next
// operator: direct manipulation re-renders constantly, and an erroring
// state (a cyclic computed column, a runtime type error) would otherwise
// re-run the full replay on every render. Treat the result as read-only
// (copy the table before mutating it).
func (s *Spreadsheet) Evaluate() (*Result, error) {
	if s.cacheVersion == s.version && (s.cacheResult != nil || s.cacheErr != nil) {
		evalCacheHits.Inc()
		return s.cacheResult, s.cacheErr
	}
	res, err := s.evaluate()
	s.cacheVersion = s.version
	s.cacheResult, s.cacheErr = res, err
	return res, err
}

// evaluate is the uncached evaluation: build the stage pipeline (plan.go),
// serve each stage from its cached artifact where the DAG-keyed fingerprint
// still matches and re-run the rest (stage.go), and assemble the visible
// table and group tree from the final snapshot. Stage bodies run data-parallel over contiguous row
// chunks above relation.ParallelThreshold; chunk-local results are
// concatenated (or merged) in chunk order, so the output is identical to
// the sequential scan.
func (s *Spreadsheet) evaluate() (*Result, error) {
	evalCount.Inc()
	evalReplayOps.Add(int64(len(s.state.selections) + len(s.state.computed) +
		len(s.state.hidden) + len(s.state.grouping) + len(s.state.finest)))
	evalStart := obs.StartTimer()
	defer evalSec.Since(evalStart)

	s.checkBaseGeneration()

	compileStart := obs.StartTimer()
	ev, stages, err := s.buildPipeline()
	evalCompileSec.Since(compileStart)
	if err != nil {
		s.lastPlan = nil
		return nil, err
	}

	plan := make([]StageInfo, len(stages))
	for i, st := range stages {
		plan[i] = StageInfo{ID: st.id, Name: st.name, Fingerprint: st.fp}
	}

	// Run the pipeline, probing the artifact cache per stage. Fingerprints
	// are DAG-keyed (plan.go), so a hit at stage i is independent of
	// whether earlier stages hit: editing one σ part leaves its siblings'
	// fingerprints — and artifacts — intact, and only the stages whose
	// dependency cone contains the edit recompute. firstMiss tracks what
	// the pre-graph linear chaining would have recomputed (everything from
	// the first changed stage onward) for the coarse-precision metric.
	cache := s.snaps()
	var cur *stageSnap
	firstMiss := len(stages)
	for i := range stages {
		if art := cache.get(stages[i].fp); art != nil {
			plan[i].Cached = true
			evalStageHits.Inc()
			cur = stages[i].apply(cur, art)
			plan[i].Rows = stageRows(cur, art)
			continue
		}
		if i < firstMiss {
			firstMiss = i
		}
		stageStart := time.Now()
		art, err := stages[i].run(ev, cur)
		if err != nil {
			// Linear chaining would have re-run stages firstMiss..i before
			// aborting at the same error.
			evalStageRecomputesCoarse.Add(int64(i - firstMiss + 1))
			s.lastPlan = &EvalPlan{Version: s.version, Stages: plan, Error: err.Error()}
			return nil, err
		}
		evalStageRecomputes.Inc()
		if art != nil { // σ parts report nil on a swallowed predicate error
			art.fp = stages[i].fp
			cache.put(art, stages[i].rank, stages[i].atoms)
			cur = stages[i].apply(cur, art)
			plan[i].Rows = stageRows(cur, art)
		}
		plan[i].Duration = time.Since(stageStart)
	}
	evalStageRecomputesCoarse.Add(int64(len(stages) - firstMiss))
	s.lastPlan = &EvalPlan{Version: s.version, Stages: plan}

	// Final assembly from the last snapshot: project the visible schema
	// into a fresh table (the one full copy the evaluation makes) and
	// build the group tree by adjacency over the presentation-ordered
	// view. Assembly is not snapshot-cached — the whole-Result memo above
	// covers the unchanged-version case.
	view := ev.viewOf(cur)
	visible := s.VisibleSchema()
	visPos, err := ev.positions(visible.Names())
	if err != nil {
		return nil, err
	}
	// The table may be column-built with lazy rows; row consumers
	// (rendering, paging, export) materialise tuples via TupleRows on
	// first use.
	table := relation.MaterializeView(view, visPos, s.name, visible)
	root, err := ev.buildGroups(view)
	if err != nil {
		return nil, err
	}
	return &Result{Table: table, Root: root, Levels: s.Grouping()}, nil
}

// stageRows reports the row count a stage's plan line shows: row stages own
// their survivor index, column stages inherit the running snapshot's.
func stageRows(cur *stageSnap, art *stageArtifact) int {
	if art.idx != nil {
		return len(art.idx)
	}
	if cur != nil {
		return len(cur.idx)
	}
	return 0
}

// coerce widens an integer into a float-typed column so computed columns
// stay kind-consistent (exact integer division yields INTEGER values).
func coerce(v value.Value, kind value.Kind) value.Value {
	if kind == value.KindFloat && v.Kind() == value.KindInt {
		return value.NewFloat(float64(v.Int()))
	}
	return v
}

// viewEqualOn reports whether two view rows agree on the given working
// positions — the adjacency probe group building applies to the ordered
// view. typed, when non-nil, carries the positions' column vectors and the
// probe compares raw payloads (Col.CellEqual — NULL equals NULL, multiset
// identity, exactly the sort's notion of adjacency); the boxed fallback
// compares cells through the view.
func viewEqualOn(v *relation.IndexView, a, b int, cols []int, typed []*relation.Col) bool {
	if typed != nil {
		ra, rb := int(v.Idx[a]), int(v.Idx[b])
		for _, c := range typed {
			if !c.CellEqual(ra, rb) {
				return false
			}
		}
		return true
	}
	for _, c := range cols {
		if !value.Equal(v.At(a, c), v.At(b, c)) {
			return false
		}
	}
	return true
}

// buildGroups partitions the ordered view rows into the recursive group
// tree. Each level's relative basis resolves to working positions once, up
// front; reading through the view keeps hidden basis columns addressable
// even though they are projected out of the visible table.
func (ev *evalCtx) buildGroups(view *relation.IndexView) (*Group, error) {
	levelIdx := make([][]int, len(ev.s.state.grouping))
	levelCols := make([][]*relation.Col, len(ev.s.state.grouping))
	for li, g := range ev.s.state.grouping {
		pos, err := ev.positions(g.Rel)
		if err != nil {
			return nil, err
		}
		levelIdx[li] = pos
		if view.Cols != nil {
			typed := make([]*relation.Col, len(pos))
			for k, p := range pos {
				typed[k] = view.ColAt(p)
			}
			levelCols[li] = typed
		}
	}
	root := &Group{Level: 1, Start: 0, End: view.Len()}
	var build func(g *Group, li int)
	build = func(g *Group, li int) {
		if li >= len(levelIdx) {
			return
		}
		idx := levelIdx[li]
		typed := levelCols[li]
		i := g.Start
		for i < g.End {
			j := i + 1
			for j < g.End && viewEqualOn(view, j, i, idx, typed) {
				j++
			}
			key := make([]value.Value, len(idx))
			for k, ci := range idx {
				key[k] = view.At(i, ci)
			}
			child := &Group{Level: li + 2, Key: key, Start: i, End: j}
			build(child, li+1)
			g.Children = append(g.Children, child)
			i = j
		}
	}
	build(root, 0)
	return root, nil
}

// Render formats the result as an aligned text table; golden tests compare
// it against the paper's printed tables.
func (r *Result) Render() string { return r.Table.String() }

// RenderGrouped formats the result with one blank line between top-level
// groups, the way a grouped spreadsheet reads.
func (r *Result) RenderGrouped() string {
	if len(r.Root.Children) == 0 {
		return r.Table.String()
	}
	full := strings.Split(strings.TrimRight(r.Table.String(), "\n"), "\n")
	header, body := full[0], full[1:]
	var b strings.Builder
	b.WriteString(header)
	b.WriteByte('\n')
	for gi, g := range r.Root.Children {
		if gi > 0 {
			b.WriteByte('\n')
		}
		for i := g.Start; i < g.End && i < len(body); i++ {
			b.WriteString(body[i])
			b.WriteByte('\n')
		}
	}
	return b.String()
}
