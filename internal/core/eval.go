package core

import (
	"fmt"
	"strings"

	"sheetmusiq/internal/expr"
	"sheetmusiq/internal/obs"
	"sheetmusiq/internal/relation"
	"sheetmusiq/internal/value"
)

// Evaluation-pipeline metrics, recorded once per (uncached) replay — per
// evaluation and per stage, never per row. evalReplayOps accumulates the
// replayed operator count (selections + computed columns + grouping +
// ordering), so evalReplayOps/evalCount is the mean replay length.
// evalMergeFallback counts aggregate passes forced sequential because
// chunked merging would not be bit-identical (relation.MergeExact) — the
// determinism contract of the parallel pipeline.
var (
	evalCount         = obs.Default.Counter("core.eval.count")
	evalCacheHits     = obs.Default.Counter("core.eval.cache_hits")
	evalReplayOps     = obs.Default.Counter("core.eval.replay_ops")
	evalMergeFallback = obs.Default.Counter("core.eval.merge_fallback")
	evalCompileSec    = obs.Default.Histogram("core.eval.compile_seconds")
	evalSec           = obs.Default.Histogram("core.eval.seconds")
)

// Group is one node of the recursive grouping tree (Sec. II-A). The root is
// level 1 (the paper's grouping by {NULL}); each child level refines its
// parent by the level's relative basis. Start/End delimit the group's rows
// in Result.Table ([Start, End)).
type Group struct {
	Level    int
	Key      []value.Value // values of this level's relative basis
	Children []*Group      // nil at the finest level
	Start    int
	End      int
}

// Rows returns how many tuples the group spans.
func (g *Group) Rows() int { return g.End - g.Start }

// Result is a fully evaluated spreadsheet: the visible table in display
// order plus the group tree over it.
type Result struct {
	Table  *relation.Relation
	Root   *Group
	Levels []GroupLevel // the grouping specification the tree reflects
}

// rowEnv adapts one working row to the tree-walking expression evaluator.
// It is the fallback for expressions the compiler declines; the hot paths
// run compiled programs that index the row directly.
type rowEnv struct {
	schema relation.Schema
	row    relation.Tuple
}

func (e rowEnv) Lookup(name string) (value.Value, bool) {
	if i := e.schema.IndexOf(name); i >= 0 {
		return e.row[i], true
	}
	return value.Null, false
}

// schemaResolver resolves column names to working-row positions for
// expression compilation. Resolution happens once per expression per
// evaluation instead of once per reference per row.
func schemaResolver(schema relation.Schema) expr.Resolver {
	return func(name string) (int, bool) {
		if i := schema.IndexOf(name); i >= 0 {
			return i, true
		}
		return 0, false
	}
}

// Evaluate replays the query state against the base relation and returns
// the resulting spreadsheet view.
//
// The state is unordered, so evaluation follows the deterministic staged
// semantics of DESIGN.md §3.1: columns and predicates are stratified by
// aggregate depth; stage d first materialises aggregate columns of depth d
// over the rows surviving all shallower selections, then formula columns of
// depth d, then applies the depth-d selections (duplicate elimination runs
// at the end of stage 0). This realises the paper's "computed columns
// update when the underlying data changes" and makes the unary operators
// commute exactly as Theorem 2 states.
//
// The result is memoised until the next operator: treat it as read-only
// (copy the table before mutating it).
func (s *Spreadsheet) Evaluate() (*Result, error) {
	if s.cacheResult != nil && s.cacheVersion == s.version {
		evalCacheHits.Inc()
		return s.cacheResult, nil
	}
	res, err := s.evaluate()
	if err != nil {
		return nil, err
	}
	s.cacheVersion = s.version
	s.cacheResult = res
	return res, nil
}

// evaluate is the uncached evaluation. Stage bodies — row
// materialisation, selection filtering, formula fill, aggregate
// accumulation and key computation — run data-parallel over contiguous
// row chunks above relation.ParallelThreshold; chunk-local results are
// concatenated (or merged) in chunk order, so the output is identical to
// the sequential scan.
func (s *Spreadsheet) evaluate() (*Result, error) {
	evalCount.Inc()
	evalReplayOps.Add(int64(len(s.state.selections) + len(s.state.computed) +
		len(s.state.hidden) + len(s.state.grouping) + len(s.state.finest)))
	evalStart := obs.StartTimer()
	defer evalSec.Since(evalStart)

	// Working schema: every base column (hidden ones still participate in
	// predicates) followed by the computed columns. The schema is fixed
	// for the whole evaluation, so expressions compile against it once.
	work := relation.New(s.name, s.base.Schema)
	for _, c := range s.state.computed {
		work.Schema = append(work.Schema, relation.Column{Name: c.Name, Kind: c.ResultKind})
	}
	nBase := len(s.base.Schema)
	width := len(work.Schema)
	n := s.base.Len()
	// One flat backing array instead of one allocation per row; the zero
	// Value is NULL, so computed-column cells need no explicit fill.
	flat := make([]value.Value, n*width)
	rows := make([]relation.Tuple, n)
	_ = relation.ForChunks(n, func(_, lo, hi int) error {
		for i := lo; i < hi; i++ {
			row := flat[i*width : (i+1)*width : (i+1)*width]
			copy(row[:nBase], s.base.Rows[i])
			rows[i] = row
		}
		return nil
	})
	work.Rows = rows

	// Stratify computed columns and selections by depth, keyed by position
	// so the stage loop needs no per-iteration name normalisation.
	maxD := 0
	colDepths := make([]int, len(s.state.computed))
	for ci, c := range s.state.computed {
		d, err := s.aggDepth(c.Name, map[string]bool{})
		if err != nil {
			return nil, err
		}
		colDepths[ci] = d
		if d > maxD {
			maxD = d
		}
	}
	selDepth := make([]int, len(s.state.selections))
	for i, sel := range s.state.selections {
		d, err := s.exprDepth(sel.Pred)
		if err != nil {
			return nil, err
		}
		selDepth[i] = d
		if d > maxD {
			maxD = d
		}
	}

	// Compile every selection predicate once against the working schema.
	// Compilation only declines subqueries, which the algebra rejects at
	// operator time, but keep the tree-walking fallback for safety.
	compileStart := obs.StartTimer()
	resolve := schemaResolver(work.Schema)
	selProgs := make([]*expr.Program, len(s.state.selections))
	for i, sel := range s.state.selections {
		if p, err := expr.Compile(sel.Pred, resolve); err == nil {
			selProgs[i] = p
		}
	}
	evalCompileSec.Since(compileStart)

	for d := 0; d <= maxD; d++ {
		// Aggregate columns of depth d see rows surviving selections < d.
		for ci, c := range s.state.computed {
			if c.Kind == KindAggregate && colDepths[ci] == d {
				if err := s.fillAggregate(work, c); err != nil {
					return nil, err
				}
			}
		}
		// Formula columns of depth d, in creation order (later formulas may
		// reference earlier ones of the same depth).
		for ci, c := range s.state.computed {
			if c.Kind == KindFormula && colDepths[ci] == d {
				if err := fillFormula(work, c); err != nil {
					return nil, err
				}
			}
		}
		// Selections of depth d.
		for i, sel := range s.state.selections {
			if selDepth[i] != d {
				continue
			}
			if err := applySelection(work, sel, selProgs[i]); err != nil {
				return nil, err
			}
		}
		// Duplicate elimination at the end of stage 0 (DESIGN.md §3.2).
		// Each group's first row compacts in place: first-row indexes are
		// ascending and never lag the write cursor.
		if d == 0 && s.state.distinctOn != nil {
			idx, err := work.ColumnIndexes(s.state.distinctOn)
			if err != nil {
				return nil, fmt.Errorf("core: distinct: %w", err)
			}
			gr := relation.GroupRowsOn(work.Rows, idx)
			kept := work.Rows[:0]
			for _, ri := range gr.First {
				kept = append(kept, work.Rows[ri])
			}
			work.Rows = kept
		}
	}

	// Presentation order: each grouping level's relative basis in the
	// level's direction, then the finest-level keys — the Sec. II-A remark
	// that any recursive grouping can be emulated by one ordering.
	var keys []relation.SortKey
	for _, g := range s.state.grouping {
		if g.By != "" {
			// OrderGroupsBy extension: groups sort by a per-group-constant
			// column, with the relative basis as the tiebreak.
			keys = append(keys, relation.SortKey{Column: g.By, Desc: g.Dir == Desc})
			for _, a := range g.Rel {
				keys = append(keys, relation.SortKey{Column: a})
			}
			continue
		}
		for _, a := range g.Rel {
			keys = append(keys, relation.SortKey{Column: a, Desc: g.Dir == Desc})
		}
	}
	for _, k := range s.state.finest {
		keys = append(keys, relation.SortKey{Column: k.Column, Desc: k.Dir == Desc})
	}
	if err := work.Sort(keys); err != nil {
		return nil, err
	}

	// Project to the visible schema. When nothing is hidden the visible
	// schema is the working schema itself and the copy is skipped: work is
	// materialised fresh per evaluation, so the result may alias it.
	visible := s.VisibleSchema()
	var table *relation.Relation
	if identitySchema(visible, work.Schema) {
		table = work
	} else {
		var err error
		table, err = work.Project(visible.Names())
		if err != nil {
			return nil, err
		}
	}
	table.Name = s.name

	root, err := s.buildGroups(work)
	if err != nil {
		return nil, err
	}
	return &Result{Table: table, Root: root, Levels: s.Grouping()}, nil
}

// applySelection filters the working rows by one σ predicate, in place.
// Above the parallel threshold each chunk compacts into its own prefix of
// the row slice (appends lag reads, and chunks are disjoint), and the
// chunk-local kept runs are concatenated in chunk order, so the surviving
// multiset order — and, per RunChunks, the first error — are identical to
// the sequential scan.
func applySelection(work *relation.Relation, sel Selection, prog *expr.Program) error {
	rows := work.Rows
	evalRow := func(row relation.Tuple) (bool, error) {
		if prog != nil {
			return prog.EvalBool(row)
		}
		return expr.EvalBool(sel.Pred, rowEnv{schema: work.Schema, row: row})
	}
	bounds := relation.Chunks(len(rows))
	if len(bounds) <= 1 {
		kept := rows[:0]
		for _, row := range rows {
			ok, err := evalRow(row)
			if err != nil {
				return fmt.Errorf("core: selection %s: %w", sel.Pred.SQL(), err)
			}
			if ok {
				kept = append(kept, row)
			}
		}
		work.Rows = kept
		return nil
	}
	counts := make([]int, len(bounds))
	err := relation.RunChunks(bounds, func(c, lo, hi int) error {
		kept := rows[lo:lo:hi]
		for _, row := range rows[lo:hi] {
			ok, err := evalRow(row)
			if err != nil {
				return fmt.Errorf("core: selection %s: %w", sel.Pred.SQL(), err)
			}
			if ok {
				kept = append(kept, row)
			}
		}
		counts[c] = len(kept)
		return nil
	})
	if err != nil {
		return err
	}
	w := counts[0]
	for c := 1; c < len(bounds); c++ {
		lo := bounds[c][0]
		copy(rows[w:], rows[lo:lo+counts[c]])
		w += counts[c]
	}
	work.Rows = rows[:w]
	return nil
}

// fillAggregate computes one η column over the current working rows,
// writing the group's value into every member row (Def. 11 / Table III).
// Rows map to dense group IDs once (relation.GroupRowsOn) and both the
// accumulate and write-back passes index flat per-group arrays — no string
// keys, no maps. Above the parallel threshold the accumulate pass keeps
// per-chunk partial accumulators and merges them in chunk order
// (Accumulator.Merge), so tie-breaks match the sequential scan.
func (s *Spreadsheet) fillAggregate(work *relation.Relation, c *ComputedColumn) error {
	out := work.Schema.IndexOf(c.Name)
	in := work.Schema.IndexOf(c.Input)
	if out < 0 || in < 0 {
		return fmt.Errorf("core: aggregate %s references missing column", c.Name)
	}
	basis := s.state.cumulativeBasis(c.Level)
	bidx, err := work.ColumnIndexes(basis)
	if err != nil {
		return err
	}
	rows := work.Rows
	if len(rows) == 0 {
		return nil
	}
	gr := relation.GroupRowsOn(rows, bidx)
	gids, ng := gr.IDs, gr.NumGroups()
	bounds := relation.Chunks(len(rows))
	if len(bounds) > 1 && !relation.MergeExact(c.Agg, work.Schema[in].Kind) {
		// Float-stream summing is not associative; stay sequential so the
		// result is bit-identical to the one-chunk scan.
		evalMergeFallback.Inc()
		bounds = [][2]int{{0, len(rows)}}
	}
	parts := make([][]*relation.Accumulator, len(bounds))
	err = relation.RunChunks(bounds, func(ch, lo, hi int) error {
		accs := make([]*relation.Accumulator, ng)
		for i := lo; i < hi; i++ {
			acc := accs[gids[i]]
			if acc == nil {
				acc = relation.NewAccumulator(c.Agg)
				accs[gids[i]] = acc
			}
			if err := acc.Add(rows[i][in]); err != nil {
				return fmt.Errorf("core: aggregate %s: %w", c.Name, err)
			}
		}
		parts[ch] = accs
		return nil
	})
	if err != nil {
		return err
	}
	accs := parts[0]
	for _, part := range parts[1:] {
		for g, acc := range part {
			if acc == nil {
				continue
			}
			if prev := accs[g]; prev != nil {
				prev.Merge(acc)
			} else {
				accs[g] = acc
			}
		}
	}
	// Finalise once per group, not once per row. Every group has at least
	// one row, so every merged accumulator is non-nil.
	results := make([]value.Value, ng)
	for g, acc := range accs {
		results[g] = coerce(acc.Result(), c.ResultKind)
	}
	return relation.ForChunks(len(rows), func(_, lo, hi int) error {
		for i := lo; i < hi; i++ {
			rows[i][out] = results[gids[i]]
		}
		return nil
	})
}

// fillFormula computes one θ column row-locally (Def. 12), through a
// program compiled once against the working schema, chunk-parallel above
// the threshold.
func fillFormula(work *relation.Relation, c *ComputedColumn) error {
	out := work.Schema.IndexOf(c.Name)
	if out < 0 {
		return fmt.Errorf("core: formula %s column missing", c.Name)
	}
	prog, cerr := expr.Compile(c.Formula, schemaResolver(work.Schema))
	return relation.ForChunks(len(work.Rows), func(_, lo, hi int) error {
		for _, row := range work.Rows[lo:hi] {
			var v value.Value
			var err error
			if cerr == nil {
				v, err = prog.Eval(row)
			} else {
				v, err = expr.Eval(c.Formula, rowEnv{schema: work.Schema, row: row})
			}
			if err != nil {
				return fmt.Errorf("core: formula %s: %w", c.Name, err)
			}
			row[out] = coerce(v, c.ResultKind)
		}
		return nil
	})
}

// coerce widens an integer into a float-typed column so computed columns
// stay kind-consistent (exact integer division yields INTEGER values).
func coerce(v value.Value, kind value.Kind) value.Value {
	if kind == value.KindFloat && v.Kind() == value.KindInt {
		return value.NewFloat(float64(v.Int()))
	}
	return v
}

// identitySchema reports whether the visible schema is exactly the working
// schema, making the output projection a no-op.
func identitySchema(visible, work relation.Schema) bool {
	if len(visible) != len(work) {
		return false
	}
	for i := range visible {
		if visible[i].Name != work[i].Name {
			return false
		}
	}
	return true
}

// tuplesEqualOn reports whether two rows agree on the given columns — the
// adjacency probe group building applies to the sorted working table.
// Comparing values directly (NULL equals NULL, multiset identity — exactly
// the sort's notion of adjacency) avoids building a string key per probe.
func tuplesEqualOn(a, b relation.Tuple, idx []int) bool {
	for _, ci := range idx {
		if !value.Equal(a[ci], b[ci]) {
			return false
		}
	}
	return true
}

// buildGroups partitions the sorted working rows into the recursive group
// tree. Each level's relative basis resolves to column positions once, up
// front, instead of once per sibling group at that level.
func (s *Spreadsheet) buildGroups(work *relation.Relation) (*Group, error) {
	levelIdx := make([][]int, len(s.state.grouping))
	for li, g := range s.state.grouping {
		idx, err := work.ColumnIndexes(g.Rel)
		if err != nil {
			return nil, err
		}
		levelIdx[li] = idx
	}
	root := &Group{Level: 1, Start: 0, End: len(work.Rows)}
	var build func(g *Group, li int)
	build = func(g *Group, li int) {
		if li >= len(levelIdx) {
			return
		}
		idx := levelIdx[li]
		i := g.Start
		for i < g.End {
			j := i + 1
			for j < g.End && tuplesEqualOn(work.Rows[j], work.Rows[i], idx) {
				j++
			}
			key := make([]value.Value, len(idx))
			for k, ci := range idx {
				key[k] = work.Rows[i][ci]
			}
			child := &Group{Level: li + 2, Key: key, Start: i, End: j}
			build(child, li+1)
			g.Children = append(g.Children, child)
			i = j
		}
	}
	build(root, 0)
	return root, nil
}

// Render formats the result as an aligned text table; golden tests compare
// it against the paper's printed tables.
func (r *Result) Render() string { return r.Table.String() }

// RenderGrouped formats the result with one blank line between top-level
// groups, the way a grouped spreadsheet reads.
func (r *Result) RenderGrouped() string {
	if len(r.Root.Children) == 0 {
		return r.Table.String()
	}
	full := strings.Split(strings.TrimRight(r.Table.String(), "\n"), "\n")
	header, body := full[0], full[1:]
	var b strings.Builder
	b.WriteString(header)
	b.WriteByte('\n')
	for gi, g := range r.Root.Children {
		if gi > 0 {
			b.WriteByte('\n')
		}
		for i := g.Start; i < g.End && i < len(body); i++ {
			b.WriteString(body[i])
			b.WriteByte('\n')
		}
	}
	return b.String()
}
