package core

import (
	"errors"
	"fmt"
	"strings"

	"sheetmusiq/internal/expr"
	"sheetmusiq/internal/relation"
	"sheetmusiq/internal/value"
)

// Stage bodies. Every stage consumes and produces a stageSnap and reads
// rows through a relation.IndexView — base tuples plus computed-column
// vectors behind a surviving-row index vector — instead of materialised
// working tuples. Stage bodies run data-parallel over contiguous row chunks
// above relation.ParallelThreshold with chunk-local results concatenated
// (or merged) in chunk order, so the output is bit-identical to the
// sequential scan — the same determinism contract the monolithic replay
// carried, now held per stage.

// evalCtx is the per-evaluation context stage bodies run against: the
// working schema (base columns, hidden ones included, then computed
// columns) and its derived lookups. It is rebuilt per evaluation, never
// cached — only snapshots are.
type evalCtx struct {
	s       *Spreadsheet
	work    relation.Schema
	ix      *relation.NameIndex
	cols    []*relation.Col
	nBase   int
	width   int
	resolve expr.Resolver
	// groups caches dense groupings within one evaluation, keyed on the
	// identity of the index vector and of every key column's backing
	// storage. Consecutive η stages at one level share a basis and an index
	// vector (TPC-H Q1 runs seven over the same grouping), so the hash pass
	// over millions of key cells runs once instead of once per stage.
	groups map[string]*relation.Grouping
}

// pos resolves a column name to its working-schema position, or -1, through
// the schema's cached name index.
func (ev *evalCtx) pos(name string) int { return ev.ix.IndexOf(name) }

// positions resolves a column-name list, erroring on the first unknown.
func (ev *evalCtx) positions(names []string) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		p := ev.pos(n)
		if p < 0 {
			return nil, fmt.Errorf("core: unknown column %q", n)
		}
		out[i] = p
	}
	return out, nil
}

// batchResolver exposes the view's typed columns (base vectors plus
// computed-column vectors) to the vectorized expression compiler, keyed by
// working-schema name.
func (ev *evalCtx) batchResolver(view *relation.IndexView) expr.BatchResolver {
	return func(name string) (*relation.Col, bool) {
		p := ev.pos(name)
		if p < 0 {
			return nil, false
		}
		if c := view.ColAt(p); c != nil {
			return c, true
		}
		return nil, false
	}
}

// groupCached returns the dense grouping of the view's rows by the given
// working positions, reusing the one computed by an earlier stage of this
// evaluation when both the index vector and every key column's backing
// storage are identical. Groupings are immutable once built, and stages run
// sequentially within an evaluation, so the cache needs no locking.
func (ev *evalCtx) groupCached(view *relation.IndexView, pos []int) *relation.Grouping {
	if view.Len() == 0 {
		return relation.GroupView(view, pos)
	}
	key := ev.groupKey(view, pos)
	if gr, ok := ev.groups[key]; ok {
		return gr
	}
	gr := relation.GroupView(view, pos)
	if ev.groups == nil {
		ev.groups = map[string]*relation.Grouping{}
	}
	ev.groups[key] = gr
	return gr
}

// groupKey builds the grouping-cache key for the view's index vector and
// key columns' backing storage.
func (ev *evalCtx) groupKey(view *relation.IndexView, pos []int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%p:%d", view.Idx, len(pos))
	for _, p := range pos {
		if p < view.Split {
			fmt.Fprintf(&sb, "|b%d", p)
		} else {
			// A computed column's identity is its filled column; an unfilled
			// one reads as all-NULL and is keyed by position alone.
			fmt.Fprintf(&sb, "|o%d:%p", p, view.Over[p-view.Split])
		}
	}
	return sb.String()
}

// cachedGrouping returns the grouping an earlier stage of this evaluation
// computed for exactly these keys over exactly this index vector, or nil —
// it never computes one. The ordering stage uses it to decide whether the
// grouping-rank counting sort is free to engage.
func (ev *evalCtx) cachedGrouping(view *relation.IndexView, pos []int) *relation.Grouping {
	if view.Len() == 0 || len(ev.groups) == 0 {
		return nil
	}
	return ev.groups[ev.groupKey(view, pos)]
}

// viewOf wraps a snapshot as an IndexView over the working schema. Computed
// columns not yet filled by any upstream stage read as NULL, exactly like
// the zero-Value cells of the old materialised working rows.
func (ev *evalCtx) viewOf(snap *stageSnap) *relation.IndexView {
	over := make([]*relation.Col, ev.width-ev.nBase)
	for _, c := range snap.cols {
		if p := ev.pos(c.name); p >= ev.nBase {
			over[p-ev.nBase] = c.col
		}
	}
	return &relation.IndexView{
		Rows:  ev.s.base.TupleRows(),
		Cols:  ev.cols,
		Idx:   snap.idx,
		Over:  over,
		Split: ev.nBase,
	}
}

// baseOnly reports whether the expression references base columns only —
// the fast path where compiled programs evaluate directly against the base
// tuple, with no per-row gather.
func (ev *evalCtx) baseOnly(e expr.Expr) bool {
	for _, name := range expr.Columns(e) {
		p := ev.pos(name)
		if p < 0 || p >= ev.nBase {
			return false
		}
	}
	return true
}

// runBase materialises the identity snapshot: every base row survives, no
// computed column is filled. Its only storage is the index vector.
func runBase(ev *evalCtx, _ *stageSnap) (*stageSnap, error) {
	n := ev.s.base.Len()
	idx := make([]int32, n)
	_ = relation.ForChunks(n, func(_, lo, hi int) error {
		for i := lo; i < hi; i++ {
			idx[i] = int32(i)
		}
		return nil
	})
	return &stageSnap{idx: idx, ownBytes: int64(4 * n)}, nil
}

// runAggStage computes one η column over the input snapshot's rows, writing
// the group's value into every member row's slot of a fresh column vector
// (Def. 11 / Table III). Rows map to dense group IDs once
// (relation.GroupView) and both the accumulate and write-back passes index
// flat per-group arrays. Above the parallel threshold the accumulate pass
// keeps per-chunk partial accumulators merged in chunk order
// (Accumulator.Merge); when the merge would not be bit-identical
// (relation.MergeExact declines float summing) the pass stays sequential
// and records the fallback, as before.
func runAggStage(c *ComputedColumn, outPos int) func(*evalCtx, *stageSnap) (*stageSnap, error) {
	return func(ev *evalCtx, in *stageSnap) (*stageSnap, error) {
		inPos := ev.pos(c.Input)
		if outPos < 0 || inPos < 0 {
			return nil, fmt.Errorf("core: aggregate %s references missing column", c.Name)
		}
		bpos, err := ev.positions(ev.s.state.cumulativeBasis(c.Level))
		if err != nil {
			return nil, err
		}
		snap := in.extend()
		nBase := ev.s.base.Len()
		view := ev.viewOf(in)
		n := view.Len()
		out := relation.AllNullCol()
		if n > 0 {
			gr := ev.groupCached(view, bpos)
			gids, ng := gr.IDs, gr.NumGroups()
			results, err := ev.runAggKernel(c, view, inPos, gids, ng, n)
			if err != nil {
				return nil, err
			}
			for g := range results {
				results[g] = coerce(results[g], c.ResultKind)
			}
			out = scatterGroups(results, gids, in.idx, nBase, n)
		}
		snap.cols = append(snap.cols, stageCol{name: c.Name, col: out})
		snap.ownBytes = out.MemBytes()
		return snap, nil
	}
}

// scatterGroups broadcasts per-group aggregate results into a base-row-
// indexed column vector: rows carry their group's value, rows eliminated
// upstream stay NULL holes. When every group result shares one kind the
// vector is a typed payload lane — one raw store per row; mixed-kind
// results (possible only through the boxed fallback over dynamically typed
// inputs) take the boxed vector.
func scatterGroups(results []value.Value, gids, idx []int32, nBase, n int) *relation.Col {
	kind, mixed := value.KindNull, false
	for _, v := range results {
		if v.IsNull() {
			continue
		}
		if kind == value.KindNull {
			kind = v.Kind()
		} else if kind != v.Kind() {
			mixed = true
			break
		}
	}
	if kind == value.KindNull {
		return relation.AllNullCol()
	}
	if mixed {
		vals := make([]value.Value, nBase)
		_ = relation.ForChunks(n, func(_, lo, hi int) error {
			for i := lo; i < hi; i++ {
				vals[idx[i]] = results[gids[i]]
			}
			return nil
		})
		return relation.BoxedCol(vals)
	}
	ng := len(results)
	gnull := make([]bool, ng)
	out := &relation.Col{Kind: kind}
	filled := make([]uint8, nBase)
	switch kind {
	case value.KindFloat:
		gv := make([]float64, ng)
		for g, v := range results {
			if v.IsNull() {
				gnull[g] = true
			} else {
				gv[g] = v.Float()
			}
		}
		lane := make([]float64, nBase)
		_ = relation.ForChunks(n, func(_, lo, hi int) error {
			for i := lo; i < hi; i++ {
				g := gids[i]
				if gnull[g] {
					continue
				}
				ri := idx[i]
				lane[ri] = gv[g]
				filled[ri] = 1
			}
			return nil
		})
		out.Floats = lane
	case value.KindString:
		gv := make([]string, ng)
		for g, v := range results {
			if v.IsNull() {
				gnull[g] = true
			} else {
				gv[g] = v.Str()
			}
		}
		lane := make([]string, nBase)
		_ = relation.ForChunks(n, func(_, lo, hi int) error {
			for i := lo; i < hi; i++ {
				g := gids[i]
				if gnull[g] {
					continue
				}
				ri := idx[i]
				lane[ri] = gv[g]
				filled[ri] = 1
			}
			return nil
		})
		out.Strs = lane
	default: // Int, Bool and Date share the Ints payload
		gv := make([]int64, ng)
		for g, v := range results {
			switch {
			case v.IsNull():
				gnull[g] = true
			case kind == value.KindInt:
				gv[g] = v.Int()
			case kind == value.KindDate:
				gv[g] = v.DateDays()
			default:
				if v.Bool() {
					gv[g] = 1
				}
			}
		}
		lane := make([]int64, nBase)
		_ = relation.ForChunks(n, func(_, lo, hi int) error {
			for i := lo; i < hi; i++ {
				g := gids[i]
				if gnull[g] {
					continue
				}
				ri := idx[i]
				lane[ri] = gv[g]
				filled[ri] = 1
			}
			return nil
		})
		out.Ints = lane
	}
	out.Nulls = relation.NullsFromFilled(filled)
	return out
}

// runAggKernel computes the per-group aggregate values. The typed kernel
// (relation.GroupAggregate) consumes the input column's payload arrays
// directly and chunks in parallel when the merge is bit-exact; the boxed
// per-group Accumulator loop remains as the fallback for dynamically typed
// inputs (computed-column vectors). Both paths feed cells in ascending view
// order and merge partials in chunk order, so they produce identical bits.
func (ev *evalCtx) runAggKernel(c *ComputedColumn, view *relation.IndexView, inPos int, gids []int32, ng, n int) ([]value.Value, error) {
	if in := view.ColAt(inPos); in != nil {
		results, seqFallback, err := relation.GroupAggregate(c.Agg, in, gids, view.Idx, n, ng)
		if err == nil {
			if seqFallback {
				evalMergeFallback.Inc()
			}
			return results, nil
		}
		if !errors.Is(err, relation.ErrNotVectorizable) {
			return nil, fmt.Errorf("core: aggregate %s: %w", c.Name, err)
		}
	}
	bounds := relation.Chunks(n)
	if len(bounds) > 1 && !relation.MergeExact(c.Agg, ev.work[inPos].Kind) {
		// Float-stream summing is not associative; stay sequential
		// so the result is bit-identical to the one-chunk scan.
		evalMergeFallback.Inc()
		bounds = [][2]int{{0, n}}
	}
	parts := make([][]*relation.Accumulator, len(bounds))
	err := relation.RunChunks(bounds, func(ch, lo, hi int) error {
		accs := make([]*relation.Accumulator, ng)
		for i := lo; i < hi; i++ {
			acc := accs[gids[i]]
			if acc == nil {
				acc = relation.NewAccumulator(c.Agg)
				accs[gids[i]] = acc
			}
			if err := acc.Add(view.At(i, inPos)); err != nil {
				return fmt.Errorf("core: aggregate %s: %w", c.Name, err)
			}
		}
		parts[ch] = accs
		return nil
	})
	if err != nil {
		return nil, err
	}
	accs := parts[0]
	for _, part := range parts[1:] {
		for g, acc := range part {
			if acc == nil {
				continue
			}
			if prev := accs[g]; prev != nil {
				prev.Merge(acc)
			} else {
				accs[g] = acc
			}
		}
	}
	// Finalise once per group, not once per row. Every group has at
	// least one row, so every merged accumulator is non-nil.
	results := make([]value.Value, ng)
	for g, acc := range accs {
		results[g] = acc.Result()
	}
	return results, nil
}

// runFormulaStage computes one θ column row-locally (Def. 12) into a fresh
// column vector, through a program compiled once against the working
// schema. Base-only formulas evaluate straight off the base tuples; ones
// referencing computed columns gather the full working row into a per-chunk
// scratch buffer first.
func runFormulaStage(c *ComputedColumn, outPos int) func(*evalCtx, *stageSnap) (*stageSnap, error) {
	return func(ev *evalCtx, in *stageSnap) (*stageSnap, error) {
		if outPos < 0 {
			return nil, fmt.Errorf("core: formula %s column missing", c.Name)
		}
		prog, cerr := expr.Compile(c.Formula, ev.resolve)
		fast := cerr == nil && ev.baseOnly(c.Formula)
		snap := in.extend()
		nBase := ev.s.base.Len()
		view := ev.viewOf(in)
		n := view.Len()
		// Vectorized path: a batch program fills each chunk's slots straight
		// from the typed column vectors. A chunk whose window would error
		// falls through to the row loop below, which reproduces the exact
		// error; expressions outside vectorizer coverage decline at compile
		// and every chunk runs the row path.
		var bp *expr.BatchProgram
		if cerr == nil {
			bp, _ = expr.CompileBatch(c.Formula, ev.batchResolver(view))
		}
		// First attempt: raw typed output. Every chunk writes its lanes'
		// payloads straight into the result column — nothing is boxed and
		// nothing is converted afterwards. A chunk that would error or whose
		// lanes disagree with the inferred kind aborts the attempt, and the
		// whole fill redoes through the boxed path below (rare: a runtime
		// error, or a dynamically typed result).
		if bp != nil && n > 0 {
			if out, ok := runFormulaTyped(bp, view.Idx, n, nBase, c.ResultKind); ok {
				snap.cols = append(snap.cols, stageCol{name: c.Name, col: out})
				snap.ownBytes = out.MemBytes()
				return snap, nil
			}
		}
		vals := make([]value.Value, nBase)
		err := relation.ForChunks(n, func(_, lo, hi int) error {
			if bp != nil && bp.EvalInto(view.Idx, lo, hi, c.ResultKind, vals) {
				return nil
			}
			var scratch relation.Tuple
			if !fast {
				scratch = make(relation.Tuple, ev.width)
			}
			for i := lo; i < hi; i++ {
				ri := view.Idx[i]
				var v value.Value
				var err error
				if fast {
					v, err = prog.Eval(view.Rows[ri])
				} else {
					view.GatherRow(i, scratch)
					if cerr == nil {
						v, err = prog.Eval(scratch)
					} else {
						v, err = expr.Eval(c.Formula, rowEnv{schema: ev.work, row: scratch})
					}
				}
				if err != nil {
					return fmt.Errorf("core: formula %s: %w", c.Name, err)
				}
				vals[ri] = coerce(v, c.ResultKind)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		out := typedFromVals(vals, in.idx, nBase)
		snap.cols = append(snap.cols, stageCol{name: c.Name, col: out})
		snap.ownBytes = out.MemBytes()
		return snap, nil
	}
}

// errMixedKinds aborts a typed conversion pass when a filled cell disagrees
// with the column's detected kind.
var errMixedKinds = errors.New("core: mixed cell kinds")

// errTypedFillDeclined aborts the raw-typed formula fill when a chunk
// errors or produces lanes of an unexpected kind.
var errTypedFillDeclined = errors.New("core: typed fill declined")

// runFormulaTyped fills a formula column straight from the batch program's
// typed lanes (EvalIntoCol) — no boxing, no conversion pass. ok is false
// when the inferred kind has no payload lane or any chunk declines; the
// caller then redoes the fill through the boxed path.
func runFormulaTyped(bp *expr.BatchProgram, idx []int32, n, nBase int, kind value.Kind) (*relation.Col, bool) {
	out := &relation.Col{Kind: kind}
	switch kind {
	case value.KindInt, value.KindBool, value.KindDate:
		out.Ints = make([]int64, nBase)
	case value.KindFloat:
		out.Floats = make([]float64, nBase)
	case value.KindString:
		out.Strs = make([]string, nBase)
	default:
		return nil, false
	}
	filled := make([]uint8, nBase)
	err := relation.ForChunks(n, func(_, lo, hi int) error {
		if !bp.EvalIntoCol(idx, lo, hi, out, filled) {
			return errTypedFillDeclined
		}
		return nil
	})
	if err != nil {
		return nil, false
	}
	out.Nulls = relation.NullsFromFilled(filled)
	return out, true
}

// typedFromVals converts a freshly filled base-row-indexed boxed vector into
// a typed column; idx lists the filled positions (other rows are NULL
// holes). When the filled cells carry more than one kind the boxed vector
// itself becomes the column — the dynamically typed escape hatch.
func typedFromVals(vals []value.Value, idx []int32, nBase int) *relation.Col {
	kind := value.KindNull
	for _, ri := range idx {
		if v := vals[ri]; !v.IsNull() {
			kind = v.Kind()
			break
		}
	}
	if kind == value.KindNull {
		return relation.AllNullCol()
	}
	out := &relation.Col{Kind: kind}
	filled := make([]uint8, nBase)
	var convErr error
	switch kind {
	case value.KindFloat:
		lane := make([]float64, nBase)
		convErr = relation.ForChunks(len(idx), func(_, lo, hi int) error {
			for k := lo; k < hi; k++ {
				ri := idx[k]
				v := vals[ri]
				if v.IsNull() {
					continue
				}
				if v.Kind() != kind {
					return errMixedKinds
				}
				lane[ri] = v.Float()
				filled[ri] = 1
			}
			return nil
		})
		out.Floats = lane
	case value.KindString:
		lane := make([]string, nBase)
		convErr = relation.ForChunks(len(idx), func(_, lo, hi int) error {
			for k := lo; k < hi; k++ {
				ri := idx[k]
				v := vals[ri]
				if v.IsNull() {
					continue
				}
				if v.Kind() != kind {
					return errMixedKinds
				}
				lane[ri] = v.Str()
				filled[ri] = 1
			}
			return nil
		})
		out.Strs = lane
	default: // Int, Bool and Date share the Ints payload
		lane := make([]int64, nBase)
		convErr = relation.ForChunks(len(idx), func(_, lo, hi int) error {
			for k := lo; k < hi; k++ {
				ri := idx[k]
				v := vals[ri]
				if v.IsNull() {
					continue
				}
				if v.Kind() != kind {
					return errMixedKinds
				}
				switch kind {
				case value.KindInt:
					lane[ri] = v.Int()
				case value.KindDate:
					lane[ri] = v.DateDays()
				default:
					if v.Bool() {
						lane[ri] = 1
					}
				}
				filled[ri] = 1
			}
			return nil
		})
		out.Ints = lane
	}
	if convErr != nil {
		return relation.BoxedCol(vals)
	}
	out.Nulls = relation.NullsFromFilled(filled)
	return out
}

// runWindowStage computes one ω column over the input snapshot's rows.
// Partition IDs come from the same dense grouping the η stages use
// (relation.GroupView); order keys and the argument lane are gathered
// view-aligned and handed to the columnar kernel (relation.WindowEval),
// whose per-partition results write back into the base-row-indexed column
// vector. Determinism is the kernel's contract: stable (partition, key)
// sorting and sequential per-partition accumulation make the output
// independent of the parallel split.
func runWindowStage(c *ComputedColumn, outPos int) func(*evalCtx, *stageSnap) (*stageSnap, error) {
	return func(ev *evalCtx, in *stageSnap) (*stageSnap, error) {
		w := c.Win
		if outPos < 0 || w == nil {
			return nil, fmt.Errorf("core: window %s column missing", c.Name)
		}
		ppos, err := ev.positions(w.PartitionBy)
		if err != nil {
			return nil, fmt.Errorf("core: window %s: %w", c.Name, err)
		}
		opos := make([]int, len(w.OrderBy))
		desc := make([]bool, len(w.OrderBy))
		for i, k := range w.OrderBy {
			p := ev.pos(k.Column)
			if p < 0 {
				return nil, fmt.Errorf("core: window %s: unknown column %q", c.Name, k.Column)
			}
			opos[i], desc[i] = p, k.Dir == Desc
		}
		inPos := -1
		if w.Input != "" {
			if inPos = ev.pos(w.Input); inPos < 0 {
				return nil, fmt.Errorf("core: window %s: unknown column %q", c.Name, w.Input)
			}
		}
		snap := in.extend()
		nBase := ev.s.base.Len()
		vals := make([]value.Value, nBase)
		view := ev.viewOf(in)
		n := view.Len()
		if n > 0 {
			win := relation.WindowInput{N: n, K: len(opos), Desc: desc, Rows: view.Idx}
			if len(ppos) > 0 {
				win.Parts = ev.groupCached(view, ppos)
			}
			if view.Cols != nil {
				// Typed lanes: the kernel reads order keys and the argument
				// straight off the column vectors through the index vector —
				// no boxed gather at all. ColAt never returns nil here
				// (computed columns wrap their vectors).
				if k := len(opos); k > 0 {
					win.KeyCols = make([]*relation.Col, k)
					for j, p := range opos {
						win.KeyCols[j] = view.ColAt(p)
					}
				}
				if inPos >= 0 {
					win.ArgCol = view.ColAt(inPos)
				}
				expr.NoteWindowBatch()
			} else {
				if k := len(opos); k > 0 {
					flat := make([]value.Value, n*k)
					_ = relation.ForChunks(n, func(_, lo, hi int) error {
						for i := lo; i < hi; i++ {
							view.Gather(i, opos, flat[i*k:(i+1)*k])
						}
						return nil
					})
					win.Keys = flat
				}
				if inPos >= 0 {
					arg := make([]value.Value, n)
					_ = relation.ForChunks(n, func(_, lo, hi int) error {
						for i := lo; i < hi; i++ {
							arg[i] = view.At(i, inPos)
						}
						return nil
					})
					win.Arg = arg
				}
			}
			res, werr := relation.WindowEval(relation.WindowSpec{Func: w.Func, Frame: w.Frame}, win)
			if werr != nil {
				return nil, fmt.Errorf("core: window %s: %w", c.Name, werr)
			}
			_ = relation.ForChunks(n, func(_, lo, hi int) error {
				for i := lo; i < hi; i++ {
					vals[in.idx[i]] = coerce(res[i], c.ResultKind)
				}
				return nil
			})
		}
		out := typedFromVals(vals, in.idx, nBase)
		snap.cols = append(snap.cols, stageCol{name: c.Name, col: out})
		snap.ownBytes = out.MemBytes()
		return snap, nil
	}
}

// runSelectStage filters the input snapshot's index vector by one σ
// predicate. Above the parallel threshold each chunk compacts survivors
// into its own prefix of a fresh index vector and the chunk-local kept runs
// concatenate in chunk order, so the surviving multiset order — and, per
// RunChunks, the first error — are identical to the sequential scan.
func runSelectStage(sel Selection) func(*evalCtx, *stageSnap) (*stageSnap, error) {
	return func(ev *evalCtx, in *stageSnap) (*stageSnap, error) {
		view := ev.viewOf(in)
		prog, cerr := expr.Compile(sel.Pred, ev.resolve)
		if cerr != nil {
			prog = nil
		}
		fast := prog != nil && ev.baseOnly(sel.Pred)
		n := view.Len()
		dst := make([]int32, n)
		bounds := relation.Chunks(n)
		counts := make([]int, len(bounds))
		// Vectorized path: the batch program compacts each chunk's survivors
		// into the chunk's prefix of dst directly. A chunk whose window would
		// error falls through to the row loop, which reproduces the exact
		// error in row order.
		var bp *expr.BatchProgram
		if prog != nil {
			bp, _ = expr.CompileBatch(sel.Pred, ev.batchResolver(view))
		}
		err := relation.RunChunks(bounds, func(c, lo, hi int) error {
			if bp != nil {
				if cnt, ok := bp.SelectInto(view.Idx, lo, hi, dst[lo:]); ok {
					counts[c] = cnt
					return nil
				}
			}
			w := lo
			var scratch relation.Tuple
			if !fast {
				scratch = make(relation.Tuple, ev.width)
			}
			for i := lo; i < hi; i++ {
				var ok bool
				var err error
				if fast {
					ok, err = prog.EvalBool(view.Rows[view.Idx[i]])
				} else {
					view.GatherRow(i, scratch)
					if prog != nil {
						ok, err = prog.EvalBool(scratch)
					} else {
						ok, err = expr.EvalBool(sel.Pred, rowEnv{schema: ev.work, row: scratch})
					}
				}
				if err != nil {
					return fmt.Errorf("core: selection %s: %w", sel.Pred.SQL(), err)
				}
				if ok {
					dst[w] = view.Idx[i]
					w++
				}
			}
			counts[c] = w - lo
			return nil
		})
		if err != nil {
			return nil, err
		}
		w := 0
		if len(bounds) > 0 {
			w = counts[0]
			for c := 1; c < len(bounds); c++ {
				lo := bounds[c][0]
				copy(dst[w:], dst[lo:lo+counts[c]])
				w += counts[c]
			}
		}
		snap := in.extend()
		snap.idx = dst[:w:w]
		snap.ownBytes = int64(4 * w)
		return snap, nil
	}
}

// runDistinctStage keeps the first row of each duplicate group over the
// recorded dedup column set (DESIGN.md §3.2). Group-first positions are
// ascending in view order, so the kept multiset order matches the
// sequential compaction.
func runDistinctStage(cols []string) func(*evalCtx, *stageSnap) (*stageSnap, error) {
	return func(ev *evalCtx, in *stageSnap) (*stageSnap, error) {
		pos, err := ev.positions(cols)
		if err != nil {
			return nil, fmt.Errorf("core: distinct: %w", err)
		}
		view := ev.viewOf(in)
		gr := relation.GroupView(view, pos)
		idx := make([]int32, len(gr.First))
		for g, vi := range gr.First {
			idx[g] = in.idx[vi]
		}
		snap := in.extend()
		snap.idx = idx
		snap.ownBytes = int64(4 * len(idx))
		return snap, nil
	}
}

// runOrderStage stably sorts the index vector by the presentation keys.
func runOrderStage(keys []relation.SortKey) func(*evalCtx, *stageSnap) (*stageSnap, error) {
	return func(ev *evalCtx, in *stageSnap) (*stageSnap, error) {
		pos := make([]int, len(keys))
		desc := make([]bool, len(keys))
		for i, k := range keys {
			p := ev.pos(k.Column)
			if p < 0 {
				return nil, fmt.Errorf("sort: no column %q in %s", k.Column, ev.s.name)
			}
			pos[i], desc[i] = p, k.Desc
		}
		view := ev.viewOf(in)
		idx := ev.orderedIdx(view, pos, desc)
		snap := in.extend()
		snap.idx = idx
		snap.ownBytes = int64(4 * len(idx))
		return snap, nil
	}
}

// orderedIdx sorts the view's rows by the key positions. When an earlier
// stage of this evaluation already grouped by exactly these keys — the
// standard spreadsheet shape: presentation order after grouping is the
// grouping basis itself — and every key column's compare-equal relation
// coincides with group equality, the rows counting-sort by group rank in
// O(n) instead of comparison-sorting; the result is bit-identical to the
// stable merge sort. Everything else takes relation.SortView.
func (ev *evalCtx) orderedIdx(view *relation.IndexView, pos []int, desc []bool) []int32 {
	if gr := ev.cachedGrouping(view, pos); gr != nil && len(pos) > 0 {
		kc := make([]*relation.Col, len(pos))
		ok := true
		for i, p := range pos {
			kc[i] = view.ColAt(p)
			if !relation.CountingSortable(kc[i]) {
				ok = false
				break
			}
		}
		if ok {
			return relation.SortViewByGrouping(view, kc, desc, gr)
		}
	}
	return relation.SortView(view, pos, desc)
}
