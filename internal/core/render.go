package core

import (
	"fmt"
	"strings"
)

// RenderTree formats the result as an indented group outline — the closest
// a terminal gets to the paper's grouped spreadsheet view:
//
//	▾ Model = Jetta (6 rows)
//	  ▾ Year = 2005 (3 rows)
//	      304 | 14500 | ...
//
// Group headers name the level's relative basis values; leaf rows render
// the visible non-basis columns.
func (r *Result) RenderTree() string {
	var b strings.Builder
	// Column widths over the leaf-rendered columns.
	leafCols := r.leafColumns()
	rows := r.Table.TupleRows()
	widths := make([]int, len(leafCols))
	for i, ci := range leafCols {
		widths[i] = len(r.Table.Schema[ci].Name)
		for _, row := range rows {
			if n := len(row[ci].String()); n > widths[i] {
				widths[i] = n
			}
		}
	}
	// Header line for the leaf columns.
	indentUnit := "  "
	depth := len(r.Levels)
	b.WriteString(strings.Repeat(indentUnit, depth+1))
	for i, ci := range leafCols {
		if i > 0 {
			b.WriteString(" | ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], r.Table.Schema[ci].Name)
	}
	b.WriteByte('\n')

	var walk func(g *Group)
	walk = func(g *Group) {
		if g.Level > 1 {
			b.WriteString(strings.Repeat(indentUnit, g.Level-2))
			b.WriteString("▾ ")
			rel := r.Levels[g.Level-2].Rel
			for i, a := range rel {
				if i > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "%s = %v", a, g.Key[i])
			}
			fmt.Fprintf(&b, " (%d rows)\n", g.Rows())
		}
		if len(g.Children) == 0 {
			for ri := g.Start; ri < g.End; ri++ {
				b.WriteString(strings.Repeat(indentUnit, depth+1))
				for i, ci := range leafCols {
					if i > 0 {
						b.WriteString(" | ")
					}
					fmt.Fprintf(&b, "%-*s", widths[i], rows[ri][ci].String())
				}
				b.WriteByte('\n')
			}
			return
		}
		for _, c := range g.Children {
			walk(c)
		}
	}
	walk(r.Root)
	return b.String()
}

// leafColumns returns the visible column indexes that are not grouping
// basis attributes (those appear in the group headers instead).
func (r *Result) leafColumns() []int {
	basis := map[string]bool{}
	for _, lvl := range r.Levels {
		for _, a := range lvl.Rel {
			basis[strings.ToLower(a)] = true
		}
	}
	var out []int
	for i, c := range r.Table.Schema {
		if !basis[strings.ToLower(c.Name)] {
			out = append(out, i)
		}
	}
	if len(out) == 0 {
		// Everything is grouped: fall back to all columns.
		for i := range r.Table.Schema {
			out = append(out, i)
		}
	}
	return out
}
