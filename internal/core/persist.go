package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"sheetmusiq/internal/expr"
	"sheetmusiq/internal/relation"
)

// This file persists the query state — the durable half of a spreadsheet
// session. Because the state is an unordered operator collection (Sec. V-A)
// and expressions round-trip through their SQL rendering, a session can be
// saved as a small JSON document and rebuilt against the same base relation
// later.
//
// Two documents share the machinery: MarshalState/RestoreState persist the
// current query state only (savestate/loadstate — undo/redo history is
// interaction state, not query state, and stays out of those files), while
// MarshalFull/RestoreFull additionally persist the undo/redo stacks — each
// stack entry is itself just a query state plus its history line — so a
// crash-recovery checkpoint can reproduce the complete interaction state.

// stateJSON is the serialised form. Expressions are stored as SQL text.
type stateJSON struct {
	Format     int            `json:"format"`
	Name       string         `json:"name"`
	BaseName   string         `json:"base_name"`
	BaseSchema []columnJSON   `json:"base_schema"`
	Selections []selJSON      `json:"selections,omitempty"`
	Computed   []computedJSON `json:"computed,omitempty"`
	Hidden     []string       `json:"hidden,omitempty"`
	Distinct   *[]string      `json:"distinct,omitempty"`
	Grouping   []groupJSON    `json:"grouping,omitempty"`
	Finest     []sortJSON     `json:"finest,omitempty"`
	NextSelID  int            `json:"next_sel_id"`
	Log        []string       `json:"log,omitempty"`
}

type columnJSON struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

type selJSON struct {
	ID   int    `json:"id"`
	Pred string `json:"pred"`
}

type computedJSON struct {
	Name    string `json:"name"`
	Kind    string `json:"kind"` // "aggregate", "formula" or "window"
	Agg     string `json:"agg,omitempty"`
	Input   string `json:"input,omitempty"`
	Level   int    `json:"level,omitempty"`
	Formula string `json:"formula,omitempty"`
	// Window definitions round-trip through their OVER-clause SQL rendering
	// (WindowDef.SQL → expr.Parse), like predicates and formulas.
	Window string `json:"window,omitempty"`
}

type groupJSON struct {
	Rel []string `json:"rel"`
	Dir string   `json:"dir"`
	By  string   `json:"by,omitempty"`
}

type sortJSON struct {
	Column string `json:"column"`
	Dir    string `json:"dir"`
}

// stateFormat versions the persisted layout.
const stateFormat = 1

// MarshalState serialises the current query state (not the data, not the
// undo history).
func (s *Spreadsheet) MarshalState() ([]byte, error) {
	out := s.encodeState(s.state)
	out.Log = s.log
	return json.MarshalIndent(out, "", "  ")
}

// encodeState renders one query state (the live one or an undo/redo
// snapshot's) as a stateJSON document against the spreadsheet's base. The
// history log is spreadsheet-level, not per-state, so it is NOT included
// here — top-level marshalers attach it once. (Embedding it per state made
// full-state checkpoints quadratic: every stack entry repeated the whole
// log.)
func (s *Spreadsheet) encodeState(st *queryState) stateJSON {
	out := stateJSON{
		Format:    stateFormat,
		Name:      s.name,
		BaseName:  s.base.Name,
		NextSelID: st.nextSelID,
		Hidden:    st.hidden,
	}
	for _, c := range s.base.Schema {
		out.BaseSchema = append(out.BaseSchema, columnJSON{Name: c.Name, Kind: c.Kind.String()})
	}
	for _, sel := range st.selections {
		out.Selections = append(out.Selections, selJSON{ID: sel.ID, Pred: sel.Pred.SQL()})
	}
	for _, c := range st.computed {
		cj := computedJSON{Name: c.Name}
		switch c.Kind {
		case KindAggregate:
			cj.Kind = "aggregate"
			cj.Agg = string(c.Agg)
			cj.Input = c.Input
			cj.Level = c.Level
		case KindWindow:
			cj.Kind = "window"
			cj.Window = c.Win.SQL()
		default:
			cj.Kind = "formula"
			cj.Formula = c.Formula.SQL()
		}
		out.Computed = append(out.Computed, cj)
	}
	if st.distinctOn != nil {
		d := append([]string(nil), st.distinctOn...)
		out.Distinct = &d
	}
	for _, g := range st.grouping {
		out.Grouping = append(out.Grouping, groupJSON{Rel: g.Rel, Dir: g.Dir.String(), By: g.By})
	}
	for _, k := range st.finest {
		out.Finest = append(out.Finest, sortJSON{Column: k.Column, Dir: k.Dir.String()})
	}
	return out
}

// RestoreState rebuilds a spreadsheet from serialised state against the
// given base relation, validating that the base matches the one the state
// was saved from (same relation name and column layout).
func RestoreState(base *relation.Relation, data []byte) (*Spreadsheet, error) {
	var in stateJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("core: restore: %w", err)
	}
	if in.Format != stateFormat {
		return nil, fmt.Errorf("core: restore: unsupported state format %d", in.Format)
	}
	if err := checkBase(base, in); err != nil {
		return nil, err
	}
	s := New(base)
	s.name = in.Name
	s.log = in.Log
	if err := decodeState(s, in); err != nil {
		return nil, err
	}
	s.version = len(s.log)
	return s, nil
}

// checkBase validates that a persisted state was saved over a base relation
// with this name and column layout.
func checkBase(base *relation.Relation, in stateJSON) error {
	if !strings.EqualFold(in.BaseName, base.Name) {
		return fmt.Errorf("core: restore: state was saved over relation %q, not %q", in.BaseName, base.Name)
	}
	if len(in.BaseSchema) != len(base.Schema) {
		return fmt.Errorf("core: restore: base has %d columns, state expects %d", len(base.Schema), len(in.BaseSchema))
	}
	for i, c := range in.BaseSchema {
		if !strings.EqualFold(c.Name, base.Schema[i].Name) || c.Kind != base.Schema[i].Kind.String() {
			return fmt.Errorf("core: restore: base column %d is %s %s, state expects %s %s",
				i, base.Schema[i].Name, base.Schema[i].Kind, c.Name, c.Kind)
		}
	}
	return nil
}

// decodeState fills s.state from a persisted document and validates the
// assembled state end to end against s's base relation.
func decodeState(s *Spreadsheet, in stateJSON) error {
	st := s.state
	st.nextSelID = in.NextSelID
	st.hidden = in.Hidden
	for _, sel := range in.Selections {
		e, err := expr.Parse(sel.Pred)
		if err != nil {
			return fmt.Errorf("core: restore selection #%d: %w", sel.ID, err)
		}
		st.selections = append(st.selections, Selection{ID: sel.ID, Pred: e})
	}
	for _, g := range in.Grouping {
		dir, err := ParseDir(g.Dir)
		if err != nil {
			return fmt.Errorf("core: restore grouping: %w", err)
		}
		st.grouping = append(st.grouping, GroupLevel{Rel: g.Rel, Dir: dir, By: g.By})
	}
	for _, c := range in.Computed {
		switch c.Kind {
		case "aggregate":
			fn, err := relation.ParseAggFunc(c.Agg)
			if err != nil {
				return fmt.Errorf("core: restore column %s: %w", c.Name, err)
			}
			inKind, ok := s.columnKind(c.Input)
			if !ok {
				return fmt.Errorf("core: restore column %s: input %q missing", c.Name, c.Input)
			}
			if c.Level < 1 || c.Level > st.levelCount() {
				return fmt.Errorf("core: restore column %s: level %d out of range", c.Name, c.Level)
			}
			st.computed = append(st.computed, &ComputedColumn{
				Name: c.Name, Kind: KindAggregate, Agg: fn, Input: c.Input,
				Level: c.Level, ResultKind: fn.ResultKind(inKind),
			})
		case "formula":
			e, err := expr.Parse(c.Formula)
			if err != nil {
				return fmt.Errorf("core: restore column %s: %w", c.Name, err)
			}
			kind, err := expr.Check(e, s.columnKind)
			if err != nil {
				return fmt.Errorf("core: restore column %s: %w", c.Name, err)
			}
			st.computed = append(st.computed, &ComputedColumn{
				Name: c.Name, Kind: KindFormula, Formula: e, ResultKind: kind,
			})
		case "window":
			e, err := expr.Parse(c.Window)
			if err != nil {
				return fmt.Errorf("core: restore column %s: %w", c.Name, err)
			}
			w, ok := e.(*expr.WindowCall)
			if !ok {
				return fmt.Errorf("core: restore column %s: %q is not a window expression", c.Name, c.Window)
			}
			def, err := windowDefFromCall(w)
			if err != nil {
				return fmt.Errorf("core: restore column %s: %w", c.Name, err)
			}
			kind, err := s.checkWindowDef(def)
			if err != nil {
				return fmt.Errorf("core: restore column %s: %w", c.Name, err)
			}
			st.computed = append(st.computed, &ComputedColumn{
				Name: c.Name, Kind: KindWindow, Win: def, ResultKind: kind,
			})
		default:
			return fmt.Errorf("core: restore: unknown computed kind %q", c.Kind)
		}
	}
	if in.Distinct != nil {
		st.distinctOn = *in.Distinct
		if st.distinctOn == nil {
			st.distinctOn = []string{}
		}
	}
	for _, k := range in.Finest {
		dir, err := ParseDir(k.Dir)
		if err != nil {
			return fmt.Errorf("core: restore ordering: %w", err)
		}
		st.finest = append(st.finest, SortKey{Column: k.Column, Dir: dir})
	}
	// Validate the assembled state end to end: every referenced column must
	// resolve and depths must be acyclic.
	for _, sel := range st.selections {
		if _, err := expr.Check(sel.Pred, s.columnKind); err != nil {
			return fmt.Errorf("core: restore selection #%d: %w", sel.ID, err)
		}
		if _, err := s.exprDepth(sel.Pred); err != nil {
			return fmt.Errorf("core: restore selection #%d: %w", sel.ID, err)
		}
	}
	for _, c := range st.computed {
		if _, err := s.aggDepth(c.Name, map[string]bool{}); err != nil {
			return fmt.Errorf("core: restore: %w", err)
		}
	}
	for _, g := range st.grouping {
		for _, a := range g.Rel {
			if !s.hasColumn(a) {
				return fmt.Errorf("core: restore: grouping attribute %q missing", a)
			}
		}
		if g.By != "" && !s.hasColumn(g.By) {
			return fmt.Errorf("core: restore: group-order column %q missing", g.By)
		}
	}
	for _, k := range st.finest {
		if !s.hasColumn(k.Column) {
			return fmt.Errorf("core: restore: ordering column %q missing", k.Column)
		}
	}
	return nil
}

// fullFormat versions the full-interaction-state layout (MarshalFull).
const fullFormat = 2

// ErrHistoryNotPortable reports that the undo/redo history spans a base
// change (a binary operator replaced the base relation mid-history), so the
// full interaction state cannot be re-attached to a single stored relation.
var ErrHistoryNotPortable = errors.New("core: undo/redo history spans a base change")

// histJSON is one undo/redo stack entry: the query state to restore and the
// history line of the operator it sits under.
type histJSON struct {
	State stateJSON `json:"state"`
	Entry string    `json:"entry"`
}

// fullJSON is the serialised complete interaction state.
type fullJSON struct {
	Format  int        `json:"format"`
	State   stateJSON  `json:"state"`
	Undo    []histJSON `json:"undo,omitempty"`
	Redo    []histJSON `json:"redo,omitempty"`
	Version int        `json:"version"`
}

// MarshalFull serialises the complete interaction state: the current query
// state plus the undo/redo stacks and the operator counter. Restoring it
// reproduces the session exactly — including what Undo and Redo would do —
// which is what a crash-recovery checkpoint needs. It fails with
// ErrHistoryNotPortable when any stack entry was taken over a different
// base relation (the history crosses a binary operator); callers then fall
// back to MarshalState and accept the weaker document.
func (s *Spreadsheet) MarshalFull() ([]byte, error) {
	for _, sn := range s.undo {
		if sn.base != s.base {
			return nil, ErrHistoryNotPortable
		}
	}
	for _, sn := range s.redo {
		if sn.base != s.base {
			return nil, ErrHistoryNotPortable
		}
	}
	out := fullJSON{
		Format:  fullFormat,
		State:   s.encodeState(s.state),
		Version: s.version,
	}
	out.State.Log = s.log
	for _, sn := range s.undo {
		out.Undo = append(out.Undo, histJSON{State: s.encodeState(sn.state), Entry: sn.entry})
	}
	for _, sn := range s.redo {
		out.Redo = append(out.Redo, histJSON{State: s.encodeState(sn.state), Entry: sn.entry})
	}
	// Compact, not indented: checkpoints are machine-read on recovery, and
	// a deep stack makes this the hottest marshal in the serving path.
	return json.Marshal(out)
}

// RestoreFull rebuilds a spreadsheet — current state, undo/redo stacks, and
// operator counter — from a MarshalFull document against the given base.
func RestoreFull(base *relation.Relation, data []byte) (*Spreadsheet, error) {
	var in fullJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("core: restore: %w", err)
	}
	if in.Format != fullFormat {
		return nil, fmt.Errorf("core: restore: unsupported full-state format %d", in.Format)
	}
	if err := checkBase(base, in.State); err != nil {
		return nil, err
	}
	s := New(base)
	s.name = in.State.Name
	s.log = in.State.Log
	if err := decodeState(s, in.State); err != nil {
		return nil, err
	}
	// Each stack entry decodes against its own validation context (a
	// historical state's selections may reference computed columns the
	// current state no longer has), so build it through a scratch sheet.
	decodeEntry := func(h histJSON, stack string, depth int) (*queryState, error) {
		t := New(base)
		if err := decodeState(t, h.State); err != nil {
			return nil, fmt.Errorf("core: restore %s entry %d: %w", stack, depth, err)
		}
		return t.state, nil
	}
	for i, h := range in.Undo {
		st, err := decodeEntry(h, "undo", i)
		if err != nil {
			return nil, err
		}
		s.undo = append(s.undo, snapshot{base: base, state: st, entry: h.Entry})
	}
	for i, h := range in.Redo {
		st, err := decodeEntry(h, "redo", i)
		if err != nil {
			return nil, err
		}
		s.redo = append(s.redo, snapshot{base: base, state: st, entry: h.Entry})
	}
	s.version = in.Version
	return s, nil
}

// SchemaFingerprint summarises the base schema for external integrity
// checks (e.g. pairing a state file with a CSV snapshot).
func (s *Spreadsheet) SchemaFingerprint() string {
	parts := make([]string, len(s.base.Schema))
	for i, c := range s.base.Schema {
		parts[i] = c.Name + ":" + c.Kind.String()
	}
	return strings.Join(parts, ",")
}
