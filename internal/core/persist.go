package core

import (
	"encoding/json"
	"fmt"
	"strings"

	"sheetmusiq/internal/expr"
	"sheetmusiq/internal/relation"
)

// This file persists the query state — the durable half of a spreadsheet
// session. Because the state is an unordered operator collection (Sec. V-A)
// and expressions round-trip through their SQL rendering, a session can be
// saved as a small JSON document and rebuilt against the same base relation
// later. Undo/redo history is deliberately not persisted: it is interaction
// state, not query state.

// stateJSON is the serialised form. Expressions are stored as SQL text.
type stateJSON struct {
	Format     int            `json:"format"`
	Name       string         `json:"name"`
	BaseName   string         `json:"base_name"`
	BaseSchema []columnJSON   `json:"base_schema"`
	Selections []selJSON      `json:"selections,omitempty"`
	Computed   []computedJSON `json:"computed,omitempty"`
	Hidden     []string       `json:"hidden,omitempty"`
	Distinct   *[]string      `json:"distinct,omitempty"`
	Grouping   []groupJSON    `json:"grouping,omitempty"`
	Finest     []sortJSON     `json:"finest,omitempty"`
	NextSelID  int            `json:"next_sel_id"`
	Log        []string       `json:"log,omitempty"`
}

type columnJSON struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

type selJSON struct {
	ID   int    `json:"id"`
	Pred string `json:"pred"`
}

type computedJSON struct {
	Name    string `json:"name"`
	Kind    string `json:"kind"` // "aggregate" or "formula"
	Agg     string `json:"agg,omitempty"`
	Input   string `json:"input,omitempty"`
	Level   int    `json:"level,omitempty"`
	Formula string `json:"formula,omitempty"`
}

type groupJSON struct {
	Rel []string `json:"rel"`
	Dir string   `json:"dir"`
	By  string   `json:"by,omitempty"`
}

type sortJSON struct {
	Column string `json:"column"`
	Dir    string `json:"dir"`
}

// stateFormat versions the persisted layout.
const stateFormat = 1

// MarshalState serialises the current query state (not the data, not the
// undo history).
func (s *Spreadsheet) MarshalState() ([]byte, error) {
	out := stateJSON{
		Format:    stateFormat,
		Name:      s.name,
		BaseName:  s.base.Name,
		NextSelID: s.state.nextSelID,
		Log:       s.log,
		Hidden:    s.state.hidden,
	}
	for _, c := range s.base.Schema {
		out.BaseSchema = append(out.BaseSchema, columnJSON{Name: c.Name, Kind: c.Kind.String()})
	}
	for _, sel := range s.state.selections {
		out.Selections = append(out.Selections, selJSON{ID: sel.ID, Pred: sel.Pred.SQL()})
	}
	for _, c := range s.state.computed {
		cj := computedJSON{Name: c.Name}
		if c.Kind == KindAggregate {
			cj.Kind = "aggregate"
			cj.Agg = string(c.Agg)
			cj.Input = c.Input
			cj.Level = c.Level
		} else {
			cj.Kind = "formula"
			cj.Formula = c.Formula.SQL()
		}
		out.Computed = append(out.Computed, cj)
	}
	if s.state.distinctOn != nil {
		d := append([]string(nil), s.state.distinctOn...)
		out.Distinct = &d
	}
	for _, g := range s.state.grouping {
		out.Grouping = append(out.Grouping, groupJSON{Rel: g.Rel, Dir: g.Dir.String(), By: g.By})
	}
	for _, k := range s.state.finest {
		out.Finest = append(out.Finest, sortJSON{Column: k.Column, Dir: k.Dir.String()})
	}
	return json.MarshalIndent(out, "", "  ")
}

// RestoreState rebuilds a spreadsheet from serialised state against the
// given base relation, validating that the base matches the one the state
// was saved from (same relation name and column layout).
func RestoreState(base *relation.Relation, data []byte) (*Spreadsheet, error) {
	var in stateJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("core: restore: %w", err)
	}
	if in.Format != stateFormat {
		return nil, fmt.Errorf("core: restore: unsupported state format %d", in.Format)
	}
	if !strings.EqualFold(in.BaseName, base.Name) {
		return nil, fmt.Errorf("core: restore: state was saved over relation %q, not %q", in.BaseName, base.Name)
	}
	if len(in.BaseSchema) != len(base.Schema) {
		return nil, fmt.Errorf("core: restore: base has %d columns, state expects %d", len(base.Schema), len(in.BaseSchema))
	}
	for i, c := range in.BaseSchema {
		if !strings.EqualFold(c.Name, base.Schema[i].Name) || c.Kind != base.Schema[i].Kind.String() {
			return nil, fmt.Errorf("core: restore: base column %d is %s %s, state expects %s %s",
				i, base.Schema[i].Name, base.Schema[i].Kind, c.Name, c.Kind)
		}
	}
	s := New(base)
	s.name = in.Name
	s.log = in.Log
	st := s.state
	st.nextSelID = in.NextSelID
	st.hidden = in.Hidden
	for _, sel := range in.Selections {
		e, err := expr.Parse(sel.Pred)
		if err != nil {
			return nil, fmt.Errorf("core: restore selection #%d: %w", sel.ID, err)
		}
		st.selections = append(st.selections, Selection{ID: sel.ID, Pred: e})
	}
	for _, g := range in.Grouping {
		dir, err := ParseDir(g.Dir)
		if err != nil {
			return nil, fmt.Errorf("core: restore grouping: %w", err)
		}
		st.grouping = append(st.grouping, GroupLevel{Rel: g.Rel, Dir: dir, By: g.By})
	}
	for _, c := range in.Computed {
		switch c.Kind {
		case "aggregate":
			fn, err := relation.ParseAggFunc(c.Agg)
			if err != nil {
				return nil, fmt.Errorf("core: restore column %s: %w", c.Name, err)
			}
			inKind, ok := s.columnKind(c.Input)
			if !ok {
				return nil, fmt.Errorf("core: restore column %s: input %q missing", c.Name, c.Input)
			}
			if c.Level < 1 || c.Level > st.levelCount() {
				return nil, fmt.Errorf("core: restore column %s: level %d out of range", c.Name, c.Level)
			}
			st.computed = append(st.computed, &ComputedColumn{
				Name: c.Name, Kind: KindAggregate, Agg: fn, Input: c.Input,
				Level: c.Level, ResultKind: fn.ResultKind(inKind),
			})
		case "formula":
			e, err := expr.Parse(c.Formula)
			if err != nil {
				return nil, fmt.Errorf("core: restore column %s: %w", c.Name, err)
			}
			kind, err := expr.Check(e, s.columnKind)
			if err != nil {
				return nil, fmt.Errorf("core: restore column %s: %w", c.Name, err)
			}
			st.computed = append(st.computed, &ComputedColumn{
				Name: c.Name, Kind: KindFormula, Formula: e, ResultKind: kind,
			})
		default:
			return nil, fmt.Errorf("core: restore: unknown computed kind %q", c.Kind)
		}
	}
	if in.Distinct != nil {
		st.distinctOn = *in.Distinct
		if st.distinctOn == nil {
			st.distinctOn = []string{}
		}
	}
	for _, k := range in.Finest {
		dir, err := ParseDir(k.Dir)
		if err != nil {
			return nil, fmt.Errorf("core: restore ordering: %w", err)
		}
		st.finest = append(st.finest, SortKey{Column: k.Column, Dir: dir})
	}
	// Validate the assembled state end to end: every referenced column must
	// resolve and depths must be acyclic.
	for _, sel := range st.selections {
		if _, err := expr.Check(sel.Pred, s.columnKind); err != nil {
			return nil, fmt.Errorf("core: restore selection #%d: %w", sel.ID, err)
		}
		if _, err := s.exprDepth(sel.Pred); err != nil {
			return nil, fmt.Errorf("core: restore selection #%d: %w", sel.ID, err)
		}
	}
	for _, c := range st.computed {
		if _, err := s.aggDepth(c.Name, map[string]bool{}); err != nil {
			return nil, fmt.Errorf("core: restore: %w", err)
		}
	}
	for _, g := range st.grouping {
		for _, a := range g.Rel {
			if !s.hasColumn(a) {
				return nil, fmt.Errorf("core: restore: grouping attribute %q missing", a)
			}
		}
		if g.By != "" && !s.hasColumn(g.By) {
			return nil, fmt.Errorf("core: restore: group-order column %q missing", g.By)
		}
	}
	for _, k := range st.finest {
		if !s.hasColumn(k.Column) {
			return nil, fmt.Errorf("core: restore: ordering column %q missing", k.Column)
		}
	}
	s.version = len(s.log)
	return s, nil
}

// SchemaFingerprint summarises the base schema for external integrity
// checks (e.g. pairing a state file with a CSV snapshot).
func (s *Spreadsheet) SchemaFingerprint() string {
	parts := make([]string, len(s.base.Schema))
	for i, c := range s.base.Schema {
		parts[i] = c.Name + ":" + c.Kind.String()
	}
	return strings.Join(parts, ",")
}
