package core

import (
	"testing"

	"sheetmusiq/internal/dataset"
	"sheetmusiq/internal/relation"
)

func TestOrderGroupsByAggregate(t *testing.T) {
	// Order the Model groups by their average price, descending — the
	// "ORDER BY revenue DESC" pattern the paper's workload wants.
	s := New(dataset.UsedCars())
	if err := s.GroupBy(Asc, "Model"); err != nil {
		t.Fatal(err)
	}
	if err := s.Sort("Price", Asc); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AggregateAs("AvgP", relation.AggAvg, "Price", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.OrderGroupsBy(1, "AvgP", Desc); err != nil {
		t.Fatal(err)
	}
	// Jetta avg (16333) > Civic avg (14833): Jettas first, cheapest first.
	wantIDs(t, tableIDs(t, s), 304, 872, 901, 423, 723, 725, 132, 879, 322)

	// Flip ascending: Civics first.
	if err := s.OrderGroupsBy(1, "AvgP", Asc); err != nil {
		t.Fatal(err)
	}
	wantIDs(t, tableIDs(t, s), 132, 879, 322, 304, 872, 901, 423, 723, 725)

	// Restore basis order (Model asc = Civic first too, different reason).
	if err := s.OrderGroupsBy(1, "", Asc); err != nil {
		t.Fatal(err)
	}
	if g := s.Grouping(); g[0].By != "" {
		t.Fatal("empty column should restore basis ordering")
	}
}

func TestOrderGroupsByBasisAttribute(t *testing.T) {
	// A basis attribute of a deeper level is constant within the group.
	s := paperSheet(t) // Model desc, Year asc
	if err := s.OrderGroupsBy(2, "Year", Desc); err != nil {
		t.Fatal(err)
	}
	// Within each Model, 2006 now precedes 2005.
	wantIDs(t, tableIDs(t, s), 423, 723, 725, 304, 872, 901, 879, 322, 132)
}

func TestOrderGroupsByValidation(t *testing.T) {
	s := New(dataset.UsedCars())
	if err := s.OrderGroupsBy(1, "Price", Asc); err == nil {
		t.Fatal("ungrouped sheet has no child groups to order")
	}
	if err := s.GroupBy(Asc, "Model"); err != nil {
		t.Fatal(err)
	}
	if err := s.OrderGroupsBy(1, "Price", Asc); err == nil {
		t.Fatal("Price varies within Model groups; must be rejected")
	}
	if err := s.OrderGroupsBy(1, "Nope", Asc); err == nil {
		t.Fatal("unknown column must be rejected")
	}
	if err := s.OrderGroupsBy(2, "Model", Asc); err == nil {
		t.Fatal("the finest level has no child groups")
	}
	// An aggregate at a deeper level varies within the group: reject.
	if err := s.GroupBy(Asc, "Year"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AggregateAs("AvgMY", relation.AggAvg, "Price", 3); err != nil {
		t.Fatal(err)
	}
	if err := s.OrderGroupsBy(1, "AvgMY", Asc); err == nil {
		t.Fatal("a level-3 aggregate varies within level-2 groups; must be rejected")
	}
	// But it is legal one level down.
	if err := s.OrderGroupsBy(2, "AvgMY", Desc); err != nil {
		t.Fatal(err)
	}
}

func TestOrderGroupsByBlocksAggregateRemoval(t *testing.T) {
	s := New(dataset.UsedCars())
	if err := s.GroupBy(Asc, "Model"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AggregateAs("AvgP", relation.AggAvg, "Price", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.OrderGroupsBy(1, "AvgP", Desc); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveComputed("AvgP"); err == nil {
		t.Fatal("removing an aggregate used for group ordering must fail")
	}
	if err := s.OrderGroupsBy(1, "", Asc); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveComputed("AvgP"); err != nil {
		t.Fatalf("removal after restoring basis order: %v", err)
	}
}

func TestOrderGroupsByUndoAndRename(t *testing.T) {
	s := New(dataset.UsedCars())
	if err := s.GroupBy(Asc, "Model"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AggregateAs("AvgP", relation.AggAvg, "Price", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.OrderGroupsBy(1, "AvgP", Desc); err != nil {
		t.Fatal(err)
	}
	if err := s.Rename("AvgP", "MeanPrice"); err != nil {
		t.Fatal(err)
	}
	if g := s.Grouping(); g[0].By != "MeanPrice" {
		t.Fatalf("rename did not follow the group ordering: %q", g[0].By)
	}
	if _, err := s.Undo(); err != nil { // undo rename
		t.Fatal(err)
	}
	if g := s.Grouping(); g[0].By != "AvgP" {
		t.Fatalf("undo did not restore the ordering column: %q", g[0].By)
	}
	if _, err := s.Undo(); err != nil { // undo OrderGroupsBy
		t.Fatal(err)
	}
	if g := s.Grouping(); g[0].By != "" {
		t.Fatal("undo did not clear the group ordering")
	}
}
