package core

import (
	"fmt"

	"sheetmusiq/internal/relation"
	"sheetmusiq/internal/value"
)

// This file backs the paper's contextual menu (Sec. VI): "it shows only
// options that are available for the current cell value type under current
// grouping and ordering". Suggest computes, for one column, exactly the
// operations the interface should offer.

// Menu lists the operations applicable to a column in the current state.
type Menu struct {
	Column string
	Kind   value.Kind
	// Filter operators applicable to the column's kind.
	FilterOps []string
	// Aggregates applicable to the column's kind.
	Aggregates []relation.AggFunc
	// Levels available for a new aggregate (1..current level count).
	AggregateLevels int
	// CanGroup: the column can start or extend the grouping.
	CanGroup bool
	// CanSortFinest: a header click would order the finest groups by it.
	CanSortFinest bool
	// CanHide / CanReinstate for π and its inverse.
	CanHide      bool
	CanReinstate bool
	// ExistingSelections on this column, offered for modification
	// (Sec. V-B).
	ExistingSelections []Selection
}

// Suggest builds the contextual menu for the named column.
func (s *Spreadsheet) Suggest(column string) (*Menu, error) {
	kind, ok := s.columnKind(column)
	if !ok {
		return nil, fmt.Errorf("core: unknown column %q", column)
	}
	m := &Menu{
		Column:             column,
		Kind:               kind,
		AggregateLevels:    s.state.levelCount(),
		ExistingSelections: s.Selections(column),
	}
	switch {
	case kind.Numeric(), kind == value.KindDate:
		m.FilterOps = []string{"=", "<>", "<", "<=", ">", ">=", "BETWEEN", "IN", "IS NULL"}
	case kind == value.KindString:
		m.FilterOps = []string{"=", "<>", "LIKE", "IN", "IS NULL"}
	case kind == value.KindBool:
		m.FilterOps = []string{"=", "<>", "IS NULL"}
	}
	m.Aggregates = []relation.AggFunc{relation.AggCount, relation.AggCountDistinct,
		relation.AggMin, relation.AggMax}
	if kind.Numeric() {
		m.Aggregates = append(m.Aggregates, relation.AggSum, relation.AggAvg, relation.AggStdDev)
	}
	depth, err := s.aggDepth(column, map[string]bool{})
	if err != nil {
		return nil, err
	}
	m.CanGroup = depth == 0 && !s.state.inAnyBasis(column)
	m.CanSortFinest = !s.state.inAnyBasis(column)
	isComputed := s.state.findComputed(column) != nil
	hidden := s.state.isHidden(column)
	m.CanHide = !hidden && (isComputed || len(s.VisibleSchema()) > 1)
	m.CanReinstate = hidden
	return m, nil
}
