package core

import (
	"runtime"
	"testing"

	"sheetmusiq/internal/dataset"
	"sheetmusiq/internal/relation"
)

// This file holds the sequential/parallel equivalence property test for
// the compiled, data-parallel evaluation pipeline: every query shape the
// core and commute tests exercise must render identically whether the
// stage bodies run in one chunk or in forced-parallel chunks. Run under
// -race via `make race`, it also proves the chunked stages share no state.

// equivProgram is one named operator program.
type equivProgram struct {
	name  string
	build func(s *Spreadsheet) error
}

// equivPrograms covers the operator shapes of core_test and commute_test:
// selections (comparison, IN, LIKE, BETWEEN, boolean combinations),
// grouping at several levels, finest ordering, projection, duplicate
// elimination, aggregates at every level (including HAVING-style selection
// over them), formulas, and formula-over-aggregate chains.
func equivPrograms() []equivProgram {
	sel := func(pred string) func(s *Spreadsheet) error {
		return func(s *Spreadsheet) error { _, err := s.Select(pred); return err }
	}
	seq := func(steps ...func(s *Spreadsheet) error) func(s *Spreadsheet) error {
		return func(s *Spreadsheet) error {
			for _, step := range steps {
				if err := step(s); err != nil {
					return err
				}
			}
			return nil
		}
	}
	group := func(dir Dir, attrs ...string) func(s *Spreadsheet) error {
		return func(s *Spreadsheet) error { return s.GroupBy(dir, attrs...) }
	}
	sortBy := func(col string, dir Dir) func(s *Spreadsheet) error {
		return func(s *Spreadsheet) error { return s.Sort(col, dir) }
	}
	agg := func(name string, fn relation.AggFunc, col string, level int) func(s *Spreadsheet) error {
		return func(s *Spreadsheet) error { _, err := s.AggregateAs(name, fn, col, level); return err }
	}
	formula := func(name, src string) func(s *Spreadsheet) error {
		return func(s *Spreadsheet) error { _, err := s.Formula(name, src); return err }
	}
	return []equivProgram{
		{"base", seq()},
		{"selection", sel("Price < 20000 AND Condition IN ('Good','Excellent')")},
		{"selection-like-between", sel("Model LIKE 'J%' OR Price BETWEEN 12000 AND 15000")},
		{"selection-not", sel("NOT (Year = 2005) AND Mileage >= 30000")},
		{"three-selections-grouped", seq(
			sel("Year >= 2003"), sel("Model <> 'Civic'"), sel("Mileage < 120000"),
			group(Asc, "Condition"), sortBy("Price", Asc))},
		{"grouping-two-levels", seq(group(Desc, "Model"), group(Asc, "Year"), sortBy("Price", Asc))},
		{"grouping-multi-attr", seq(group(Asc, "Model", "Condition"), sortBy("Mileage", Desc))},
		{"hide", seq(sel("Price > 10000"), func(s *Spreadsheet) error { return s.Hide("Mileage") })},
		{"distinct", seq(func(s *Spreadsheet) error { return s.Hide("ID") },
			func(s *Spreadsheet) error { return s.Hide("Price") },
			func(s *Spreadsheet) error { return s.Hide("Mileage") },
			func(s *Spreadsheet) error { return s.Distinct() })},
		{"aggregate-levels", seq(group(Desc, "Model"), group(Asc, "Year"),
			agg("AvgAll", relation.AggAvg, "Price", 1),
			agg("CntModel", relation.AggCount, "Price", 2),
			agg("MinMY", relation.AggMin, "Price", 3),
			agg("MaxMY", relation.AggMax, "Mileage", 3),
			agg("SumMY", relation.AggSum, "Price", 3),
			agg("DevModel", relation.AggStdDev, "Price", 2),
			sortBy("Price", Asc))},
		{"count-distinct", seq(group(Asc, "Model"),
			agg("Conds", relation.AggCountDistinct, "Condition", 2))},
		{"theorem2-program", seq(group(Desc, "Model"), group(Asc, "Year"), sortBy("Price", Asc),
			sel("Condition = 'Good' OR Condition = 'Excellent'"),
			agg("AvgP", relation.AggAvg, "Price", 3),
			formula("Ratio", "Price / AvgP"),
			sel("AvgP > 14000"),
			func(s *Spreadsheet) error { return s.Hide("Mileage") })},
		{"formula", formula("PerMile", "Price * 1000 / (Mileage + 1)")},
		{"formula-chain", seq(formula("Double", "Price * 2"), formula("Quad", "Double * 2"),
			sel("Quad > 50000"))},
		{"aggregate-over-formula", seq(group(Asc, "Model"),
			formula("PerMile", "Price * 1000 / (Mileage + 1)"),
			agg("AvgPM", relation.AggAvg, "PerMile", 2),
			sel("AvgPM > 100"))},
		{"ordergroups-by", seq(group(Asc, "Model"),
			agg("AvgP", relation.AggAvg, "Price", 2),
			func(s *Spreadsheet) error { return s.OrderGroupsBy(1, "AvgP", Desc) })},
	}
}

// renderAt builds the program on a fresh spreadsheet and evaluates it with
// the given parallel threshold in force. GOMAXPROCS is raised so the
// threshold-0 run splits into real chunks even on a single-core host.
func renderAt(t *testing.T, base *relation.Relation, p equivProgram, threshold int) (string, string) {
	t.Helper()
	old := relation.ParallelThreshold
	relation.ParallelThreshold = threshold
	oldProcs := runtime.GOMAXPROCS(8)
	defer func() {
		relation.ParallelThreshold = old
		runtime.GOMAXPROCS(oldProcs)
	}()
	s := New(base)
	if err := p.build(s); err != nil {
		t.Fatalf("%s: build: %v", p.name, err)
	}
	res, err := s.Evaluate()
	if err != nil {
		t.Fatalf("%s: evaluate: %v", p.name, err)
	}
	return res.Render(), res.RenderGrouped()
}

// TestParallelEquivalence forces the chunked path (threshold 0) and the
// sequential path (huge threshold) over every program shape and both the
// paper's 15-row table and a larger random table, and insists the rendered
// output — table and group structure — is identical.
func TestParallelEquivalence(t *testing.T) {
	bases := map[string]*relation.Relation{
		"usedcars": dataset.UsedCars(),
		"random3k": dataset.RandomCars(3000, 99),
	}
	const sequential = 1 << 30
	for baseName, base := range bases {
		for _, p := range equivPrograms() {
			wantR, wantG := renderAt(t, base, p, sequential)
			gotR, gotG := renderAt(t, base, p, 0)
			if gotR != wantR {
				t.Errorf("%s/%s: parallel Render diverged from sequential\n--- parallel ---\n%s\n--- sequential ---\n%s",
					baseName, p.name, clip(gotR), clip(wantR))
			}
			if gotG != wantG {
				t.Errorf("%s/%s: parallel RenderGrouped diverged from sequential", baseName, p.name)
			}
		}
	}
}

// TestParallelSelectionErrorMatchesSequential pins error parity: the
// parallel filter must surface the same first-failing-row error the
// sequential scan does.
func TestParallelSelectionErrorMatchesSequential(t *testing.T) {
	base := dataset.RandomCars(3000, 5)
	run := func(threshold int) error {
		old := relation.ParallelThreshold
		relation.ParallelThreshold = threshold
		oldProcs := runtime.GOMAXPROCS(8)
		defer func() {
			relation.ParallelThreshold = old
			runtime.GOMAXPROCS(oldProcs)
		}()
		s := New(base)
		if _, err := s.Select("Price / (Year - Year) > 1"); err != nil {
			t.Fatalf("select: %v", err)
		}
		_, err := s.Evaluate()
		return err
	}
	seqErr := run(1 << 30)
	parErr := run(0)
	if seqErr == nil || parErr == nil {
		t.Fatalf("division by zero not surfaced: sequential %v, parallel %v", seqErr, parErr)
	}
	if seqErr.Error() != parErr.Error() {
		t.Fatalf("error parity lost:\nsequential: %v\nparallel:   %v", seqErr, parErr)
	}
}

// clip keeps failure messages readable for the 3000-row base.
func clip(s string) string {
	const max = 2000
	if len(s) <= max {
		return s
	}
	return s[:max] + "…"
}
