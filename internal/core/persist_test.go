package core

import (
	"encoding/json"
	"strings"
	"testing"

	"sheetmusiq/internal/dataset"
	"sheetmusiq/internal/relation"
)

// richSheet builds a state exercising every persisted feature.
func richSheet(t *testing.T) *Spreadsheet {
	t.Helper()
	s := New(dataset.UsedCars())
	if _, err := s.Select("Condition IN ('Good', 'Excellent')"); err != nil {
		t.Fatal(err)
	}
	if err := s.GroupBy(Desc, "Model"); err != nil {
		t.Fatal(err)
	}
	if err := s.GroupBy(Asc, "Year"); err != nil {
		t.Fatal(err)
	}
	if err := s.Sort("Price", Asc); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AggregateAs("AvgP", relation.AggAvg, "Price", 3); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Formula("Delta", "Price - AvgP"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Select("Delta < 500"); err != nil {
		t.Fatal(err)
	}
	if err := s.Hide("Mileage"); err != nil {
		t.Fatal(err)
	}
	if err := s.OrderGroupsBy(1, "Model", Desc); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStateRoundTrip(t *testing.T) {
	orig := richSheet(t)
	want, err := orig.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	data, err := orig.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreState(dataset.UsedCars(), data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if got.Render() != want.Render() {
		t.Fatalf("restored state diverges:\n%s\nvs\n%s", got.Render(), want.Render())
	}
	if len(restored.History()) != len(orig.History()) {
		t.Fatal("operation log not restored")
	}
	// The restored sheet remains fully modifiable.
	sels := restored.Selections("Condition")
	if len(sels) != 1 {
		t.Fatalf("selections after restore: %v", restored.Selections(""))
	}
	if err := restored.ReplaceSelection(sels[0].ID, "Condition = 'Good'"); err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Evaluate(); err != nil {
		t.Fatal(err)
	}
}

func TestStateRoundTripDistinct(t *testing.T) {
	s := New(dataset.UsedCars())
	for _, c := range []string{"ID", "Price", "Year", "Mileage", "Condition"} {
		if err := s.Hide(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Distinct(); err != nil {
		t.Fatal(err)
	}
	data, err := s.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreState(dataset.UsedCars(), data)
	if err != nil {
		t.Fatal(err)
	}
	res, err := restored.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Len() != 2 {
		t.Fatalf("restored DE lost: %d rows", res.Table.Len())
	}
}

func TestRestoreRejectsWrongBase(t *testing.T) {
	s := richSheet(t)
	data, err := s.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	// Wrong relation name.
	other := dataset.UsedCars()
	other.Name = "trucks"
	if _, err := RestoreState(other, data); err == nil {
		t.Fatal("restore against a differently-named base must fail")
	}
	// Wrong schema.
	narrow, err := dataset.UsedCars().Project([]string{"ID", "Model"})
	if err != nil {
		t.Fatal(err)
	}
	narrow.Name = "cars"
	if _, err := RestoreState(narrow, data); err == nil {
		t.Fatal("restore against a narrower base must fail")
	}
}

func TestRestoreRejectsCorruptState(t *testing.T) {
	base := dataset.UsedCars()
	valid, err := richSheet(t).MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(mutate func(m map[string]any)) []byte {
		var m map[string]any
		if err := json.Unmarshal(valid, &m); err != nil {
			t.Fatal(err)
		}
		mutate(m)
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	cases := map[string][]byte{
		"not json":    []byte("{nope"),
		"bad format":  corrupt(func(m map[string]any) { m["format"] = 99 }),
		"bad dir":     corrupt(func(m map[string]any) { m["grouping"].([]any)[0].(map[string]any)["dir"] = "SIDEWAYS" }),
		"bad formula": corrupt(func(m map[string]any) { m["computed"].([]any)[1].(map[string]any)["formula"] = "((" }),
		"bad agg fn":  corrupt(func(m map[string]any) { m["computed"].([]any)[0].(map[string]any)["agg"] = "MEDIAN" }),
		"bad agg lvl": corrupt(func(m map[string]any) { m["computed"].([]any)[0].(map[string]any)["level"] = 9.0 }),
		"bad pred":    corrupt(func(m map[string]any) { m["selections"].([]any)[0].(map[string]any)["pred"] = "Nope = 1" }),
		"bad kind":    corrupt(func(m map[string]any) { m["computed"].([]any)[0].(map[string]any)["kind"] = "window" }),
	}
	for name, data := range cases {
		if _, err := RestoreState(base, data); err == nil {
			t.Errorf("%s: restore should fail", name)
		}
	}
}

func TestStateJSONIsReadable(t *testing.T) {
	data, err := richSheet(t).MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{`"base_name": "cars"`, `"agg": "AVG"`, `"pred"`, `"by": "Model"`} {
		if !strings.Contains(text, want) {
			t.Errorf("state JSON missing %q:\n%s", want, text)
		}
	}
}

func TestSchemaFingerprint(t *testing.T) {
	a := New(dataset.UsedCars()).SchemaFingerprint()
	if !strings.Contains(a, "Price:INTEGER") {
		t.Errorf("fingerprint = %q", a)
	}
	narrow, _ := dataset.UsedCars().Project([]string{"ID"})
	if New(narrow).SchemaFingerprint() == a {
		t.Error("different schemas must fingerprint differently")
	}
}
