package core

import (
	"testing"

	"sheetmusiq/internal/dataset"
	"sheetmusiq/internal/relation"
	"sheetmusiq/internal/value"
)

func hasAgg(m *Menu, fn relation.AggFunc) bool {
	for _, a := range m.Aggregates {
		if a == fn {
			return true
		}
	}
	return false
}

func hasOp(m *Menu, op string) bool {
	for _, o := range m.FilterOps {
		if o == op {
			return true
		}
	}
	return false
}

func TestSuggestNumericColumn(t *testing.T) {
	s := New(dataset.UsedCars())
	m, err := s.Suggest("Price")
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != value.KindInt {
		t.Fatalf("kind = %v", m.Kind)
	}
	if !hasOp(m, "BETWEEN") || !hasOp(m, "<") {
		t.Errorf("numeric filter ops = %v", m.FilterOps)
	}
	if !hasAgg(m, relation.AggAvg) || !hasAgg(m, relation.AggSum) {
		t.Errorf("numeric aggregates = %v", m.Aggregates)
	}
	if !m.CanGroup || !m.CanSortFinest || !m.CanHide || m.CanReinstate {
		t.Errorf("actions = %+v", m)
	}
	if m.AggregateLevels != 1 {
		t.Errorf("levels = %d", m.AggregateLevels)
	}
}

func TestSuggestTextColumn(t *testing.T) {
	s := New(dataset.UsedCars())
	m, err := s.Suggest("Model")
	if err != nil {
		t.Fatal(err)
	}
	if !hasOp(m, "LIKE") {
		t.Errorf("text ops = %v", m.FilterOps)
	}
	if hasOp(m, "BETWEEN") {
		t.Errorf("BETWEEN offered for text: %v", m.FilterOps)
	}
	if hasAgg(m, relation.AggAvg) {
		t.Errorf("AVG offered for text: %v", m.Aggregates)
	}
	if !hasAgg(m, relation.AggCountDistinct) || !hasAgg(m, relation.AggMin) {
		t.Errorf("text aggregates = %v", m.Aggregates)
	}
}

func TestSuggestReflectsState(t *testing.T) {
	s := New(dataset.UsedCars())
	if _, err := s.Select("Price < 16000"); err != nil {
		t.Fatal(err)
	}
	if err := s.GroupBy(Asc, "Model"); err != nil {
		t.Fatal(err)
	}
	if err := s.Hide("Mileage"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AggregateAs("AvgP", relation.AggAvg, "Price", 2); err != nil {
		t.Fatal(err)
	}

	m, err := s.Suggest("Model")
	if err != nil {
		t.Fatal(err)
	}
	if m.CanGroup {
		t.Error("already-grouped column must not offer grouping")
	}
	if m.CanSortFinest {
		t.Error("a basis attribute cannot order the finest level (Def. 4 case 3)")
	}
	if m.AggregateLevels != 2 {
		t.Errorf("levels = %d, want 2", m.AggregateLevels)
	}

	m, err = s.Suggest("Price")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.ExistingSelections) != 1 {
		t.Errorf("existing selections = %v", m.ExistingSelections)
	}

	m, err = s.Suggest("Mileage")
	if err != nil {
		t.Fatal(err)
	}
	if !m.CanReinstate || m.CanHide {
		t.Errorf("hidden column actions = %+v", m)
	}

	m, err = s.Suggest("AvgP")
	if err != nil {
		t.Fatal(err)
	}
	if m.CanGroup {
		t.Error("aggregate-derived columns cannot be grouped")
	}
	if !m.CanHide {
		t.Error("computed columns can be removed via hide")
	}

	if _, err := s.Suggest("Nope"); err == nil {
		t.Error("unknown column must fail")
	}
}
