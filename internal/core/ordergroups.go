package core

import (
	"fmt"
	"strings"
)

// This file implements an extension beyond the paper's Def. 4: ordering
// sibling groups by a computed value rather than by their grouping basis.
//
// The paper's λ can only order groups by the attributes of the grouping
// basis, yet its own evaluation workload wants "ORDER BY revenue DESC" —
// ordering the level-l groups by an aggregate computed over each group.
// OrderGroupsBy fills that gap: the sort key for the children of level
// `level` becomes the named column (which must be constant within each
// child group — an aggregate at the children's level, or a basis
// attribute), with the relative basis as the tiebreak. DESIGN.md lists
// this as an implemented extension; it maps exactly onto SQL's ORDER BY
// over an aggregate output.

// OrderGroupsBy orders the child groups of the given 1-based level by the
// named column. The column must be constant within each child group: an
// aggregate computed at level+1, or an attribute of the cumulative basis
// of level+1. Passing an empty column restores the default basis ordering.
func (s *Spreadsheet) OrderGroupsBy(level int, column string, dir Dir) error {
	n := s.state.levelCount()
	if level < 1 || level >= n {
		return fmt.Errorf("core: level %d has no child groups (levels 1..%d)", level, n-1)
	}
	g := &s.state.grouping[level-1] // children of level l
	if column == "" {
		before := s.begin()
		g.By = ""
		g.Dir = dir
		s.commit(before, fmt.Sprintf("λ* level %d restored to basis order %s", level, dir))
		s.invalidateAtoms(rankOrder, "order")
		return nil
	}
	if !s.hasColumn(column) {
		return fmt.Errorf("core: unknown column %q", column)
	}
	if !s.constantWithin(level+1, column) {
		return fmt.Errorf("core: column %q is not constant within level-%d groups; order groups by an aggregate at that level or a basis attribute", column, level+1)
	}
	before := s.begin()
	g.By = column
	g.Dir = dir
	s.commit(before, fmt.Sprintf("λ* groups at level %d by %s %s", level, column, dir))
	s.invalidateAtoms(rankOrder, "order")
	return nil
}

// constantWithin reports whether the column provably holds one value per
// group at the given level: it is in the cumulative basis, or it is an
// aggregate computed at that level or shallower.
func (s *Spreadsheet) constantWithin(level int, column string) bool {
	for _, a := range s.state.cumulativeBasis(level) {
		if strings.EqualFold(a, column) {
			return true
		}
	}
	if c := s.state.findComputed(column); c != nil && c.Kind == KindAggregate && c.Level <= level {
		return true
	}
	return false
}
