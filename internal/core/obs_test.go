package core

import (
	"fmt"
	"runtime"
	"testing"

	"sheetmusiq/internal/obs"
	"sheetmusiq/internal/relation"
	"sheetmusiq/internal/value"
)

// floatSheet builds a sheet over n rows with a string grouping column and
// a column of kind k holding numeric values.
func numericSheet(t *testing.T, n int, k value.Kind) *Spreadsheet {
	t.Helper()
	rel := relation.New("nums", relation.Schema{
		{Name: "G", Kind: value.KindString},
		{Name: "X", Kind: k},
	})
	for i := 0; i < n; i++ {
		var x value.Value
		if k == value.KindFloat {
			x = value.NewFloat(float64(i) * 1.25)
		} else {
			x = value.NewInt(int64(i))
		}
		rel.Rows = append(rel.Rows, relation.Tuple{
			value.NewString(fmt.Sprintf("g%d", i%4)),
			x,
		})
	}
	return New(rel)
}

// TestFloatSumMergeFallbackCountedOnce pins the PR 2 determinism contract
// through the metrics layer: a float-input SUM aggregation over the
// parallel threshold must abandon chunked accumulation (float addition
// re-associates under Accumulator.Merge, so relation.MergeExact declines
// it) and record the sequential fallback exactly once per replay — while
// an integer-input SUM, whose merge is exact, records none.
func TestFloatSumMergeFallbackCountedOnce(t *testing.T) {
	// Chunks consults GOMAXPROCS, so force multi-proc scheduling even on a
	// single-CPU machine — the determinism contract must hold everywhere.
	oldProcs := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(oldProcs)
	old := relation.ParallelThreshold
	relation.ParallelThreshold = 8
	defer func() { relation.ParallelThreshold = old }()

	const name = "core.eval.merge_fallback"

	s := numericSheet(t, 64, value.KindFloat)
	if err := s.GroupBy(Asc, "G"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AggregateAs("SumX", relation.AggSum, "X", 2); err != nil {
		t.Fatal(err)
	}
	before := obs.Default.CounterValue(name)
	if _, err := s.Evaluate(); err != nil {
		t.Fatal(err)
	}
	if got := obs.Default.CounterValue(name) - before; got != 1 {
		t.Fatalf("float SUM replay recorded %d merge fallbacks, want exactly 1", got)
	}

	// The memoised re-read must not replay, so the counter must hold.
	after := obs.Default.CounterValue(name)
	if _, err := s.Evaluate(); err != nil {
		t.Fatal(err)
	}
	if got := obs.Default.CounterValue(name); got != after {
		t.Fatalf("cached Evaluate moved the fallback counter: %d -> %d", after, got)
	}

	// Integer input merges exactly — the parallel path stays chunked and
	// no fallback is recorded.
	si := numericSheet(t, 64, value.KindInt)
	if err := si.GroupBy(Asc, "G"); err != nil {
		t.Fatal(err)
	}
	if _, err := si.AggregateAs("SumX", relation.AggSum, "X", 2); err != nil {
		t.Fatal(err)
	}
	before = obs.Default.CounterValue(name)
	if _, err := si.Evaluate(); err != nil {
		t.Fatal(err)
	}
	if got := obs.Default.CounterValue(name) - before; got != 0 {
		t.Fatalf("int SUM replay recorded %d merge fallbacks, want 0", got)
	}
}

// TestEvalMetricsAdvance sanity-checks the per-replay series: one uncached
// evaluation bumps the eval counter and replay-op total, and a cached
// re-read bumps only the cache-hit counter.
func TestEvalMetricsAdvance(t *testing.T) {
	s := numericSheet(t, 16, value.KindInt)
	if _, err := s.Select("X >= 2"); err != nil {
		t.Fatal(err)
	}
	if err := s.GroupBy(Asc, "G"); err != nil {
		t.Fatal(err)
	}

	evals := obs.Default.CounterValue("core.eval.count")
	replay := obs.Default.CounterValue("core.eval.replay_ops")
	hits := obs.Default.CounterValue("core.eval.cache_hits")
	if _, err := s.Evaluate(); err != nil {
		t.Fatal(err)
	}
	if d := obs.Default.CounterValue("core.eval.count") - evals; d != 1 {
		t.Fatalf("eval count delta = %d, want 1", d)
	}
	// One selection + one grouping level were replayed.
	if d := obs.Default.CounterValue("core.eval.replay_ops") - replay; d != 2 {
		t.Fatalf("replay ops delta = %d, want 2", d)
	}
	if _, err := s.Evaluate(); err != nil {
		t.Fatal(err)
	}
	if d := obs.Default.CounterValue("core.eval.cache_hits") - hits; d != 1 {
		t.Fatalf("cache hit delta = %d, want 1", d)
	}
}
