package core

import (
	"strings"
	"testing"

	"sheetmusiq/internal/expr"
	"sheetmusiq/internal/relation"
)

// colInts extracts a column of an evaluated result as int64s, in display
// order.
func colInts(t *testing.T, s *Spreadsheet, name string) []int64 {
	t.Helper()
	res, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	i := res.Table.Schema.IndexOf(name)
	if i < 0 {
		t.Fatalf("result has no column %q", name)
	}
	out := make([]int64, res.Table.Len())
	for r, row := range res.Table.TupleRows() {
		out[r] = row[i].Int()
	}
	return out
}

func wantInts(t *testing.T, got []int64, want ...int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d (%v vs %v)", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d = %d, want %d (%v vs %v)", i, got[i], want[i], got, want)
		}
	}
}

func TestWindowRankPerPartition(t *testing.T) {
	// RANK() OVER (PARTITION BY Model ORDER BY Price) on Table I. Display
	// order is untouched (ω adds a column, like η), so ranks read off in
	// base order.
	s := sheet()
	name, err := s.WindowAs("PriceRank", relation.WinRank, "",
		[]string{"Model"}, []SortKey{{Column: "Price", Dir: Asc}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if name != "PriceRank" {
		t.Fatalf("name = %q", name)
	}
	wantInts(t, colInts(t, s, "PriceRank"), 1, 2, 3, 4, 5, 6, 1, 2, 3)
	// Presentation order is unchanged.
	wantIDs(t, tableIDs(t, s), 304, 872, 901, 423, 723, 725, 132, 879, 322)
}

func TestWindowRowNumberTies(t *testing.T) {
	// Two Jettas and one Civic share Price 15000/16000; RANK gives ties the
	// same number, ROW_NUMBER breaks them by original row order, DENSE_RANK
	// leaves no gaps. Order by Year: Jetta years 2005,2005,2005,2006,2006,
	// 2006 → rank 1,1,1,4,4,4; dense 1,1,1,2,2,2; row_number 1..6 in base
	// order (stable sort keeps lane order on full ties).
	s := sheet()
	for _, w := range []struct {
		name string
		fn   relation.WindowFunc
	}{
		{"R", relation.WinRank}, {"D", relation.WinDenseRank}, {"N", relation.WinRowNumber},
	} {
		if _, err := s.WindowAs(w.name, w.fn, "",
			[]string{"Model"}, []SortKey{{Column: "Year", Dir: Asc}}, nil); err != nil {
			t.Fatal(err)
		}
	}
	wantInts(t, colInts(t, s, "R"), 1, 1, 1, 4, 4, 4, 1, 2, 2)
	wantInts(t, colInts(t, s, "D"), 1, 1, 1, 2, 2, 2, 1, 2, 2)
	wantInts(t, colInts(t, s, "N"), 1, 2, 3, 4, 5, 6, 1, 2, 3)
}

func TestWindowRunningSum(t *testing.T) {
	// SUM with ORDER BY and no frame is the SQL default: RANGE UNBOUNDED
	// PRECEDING .. CURRENT ROW — running total including the row's peers.
	s := sheet()
	if _, err := s.WindowAs("Run", relation.WinSum, "Price",
		[]string{"Model"}, []SortKey{{Column: "Price", Dir: Asc}}, nil); err != nil {
		t.Fatal(err)
	}
	wantInts(t, colInts(t, s, "Run"),
		14500, 29500, 45500, 62500, 80000, 98000, 13500, 28500, 44500)
}

func TestWindowRunningSumPeers(t *testing.T) {
	// Peers (ties on the order key) all carry the whole peer group's
	// contribution: ordering Jettas by Year, the three 2005 rows each see
	// the 2005 total.
	s := sheet()
	if _, err := s.WindowAs("Run", relation.WinSum, "Price",
		[]string{"Model"}, []SortKey{{Column: "Year", Dir: Asc}}, nil); err != nil {
		t.Fatal(err)
	}
	// Jetta 2005: 14500+15000+16000 = 45500 on all three rows; 2006 adds
	// 17000+17500+18000 → 98000. Civic 2005: 13500; 2006: 13500+15000+16000.
	wantInts(t, colInts(t, s, "Run"),
		45500, 45500, 45500, 98000, 98000, 98000, 13500, 44500, 44500)
}

func TestWindowMovingFrame(t *testing.T) {
	// ROWS BETWEEN 1 PRECEDING AND CURRENT ROW: a two-row moving sum in
	// price order within each model.
	s := sheet()
	frame := &relation.Frame{
		Lo: relation.FrameBound{Kind: relation.BoundPreceding, Offset: 1},
		Hi: relation.FrameBound{Kind: relation.BoundCurrentRow},
	}
	if _, err := s.WindowAs("Mov", relation.WinSum, "Price",
		[]string{"Model"}, []SortKey{{Column: "Price", Dir: Asc}}, frame); err != nil {
		t.Fatal(err)
	}
	wantInts(t, colInts(t, s, "Mov"),
		14500, 29500, 31000, 33000, 34500, 35500, 13500, 28500, 31000)
}

func TestWindowWholePartition(t *testing.T) {
	// No ORDER BY: the window is the whole partition, broadcast per row —
	// COUNT(*) OVER (PARTITION BY Model) is the group size.
	s := sheet()
	if _, err := s.WindowAs("N", relation.WinCount, "",
		[]string{"Model"}, nil, nil); err != nil {
		t.Fatal(err)
	}
	wantInts(t, colInts(t, s, "N"), 6, 6, 6, 6, 6, 6, 3, 3, 3)
}

func TestWindowTopKPerGroup(t *testing.T) {
	// The motivating composition: rank per partition, then select by rank.
	// The selection is deeper than the window (depth 1), so the ranks are
	// computed before the filter — "2 cheapest per model".
	s := sheet()
	if _, err := s.WindowAs("R", relation.WinRank, "",
		[]string{"Model"}, []SortKey{{Column: "Price", Dir: Asc}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Select("R <= 2"); err != nil {
		t.Fatal(err)
	}
	wantIDs(t, tableIDs(t, s), 304, 872, 132, 879)
	// A shallower (depth-0) selection re-ranks the survivors: dropping the
	// cheapest Jetta promotes the rest.
	if _, err := s.Select("Price >= 15000"); err != nil {
		t.Fatal(err)
	}
	wantIDs(t, tableIDs(t, s), 872, 901, 879, 322)
}

func TestWindowDescOrder(t *testing.T) {
	s := sheet()
	if _, err := s.WindowAs("R", relation.WinRank, "",
		[]string{"Model"}, []SortKey{{Column: "Price", Dir: Desc}}, nil); err != nil {
		t.Fatal(err)
	}
	wantInts(t, colInts(t, s, "R"), 6, 5, 4, 3, 2, 1, 3, 2, 1)
}

func TestWindowAutoName(t *testing.T) {
	s := sheet()
	n1, err := s.Window(relation.WinRank, "", nil, []SortKey{{Column: "Price"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n1 != "Rank" {
		t.Fatalf("auto name = %q, want Rank", n1)
	}
	n2, err := s.Window(relation.WinSum, "Price", nil, []SortKey{{Column: "Price"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != "Sum_Price" {
		t.Fatalf("auto name = %q, want Sum_Price", n2)
	}
	// Collision with the aggregate naming convention bumps a suffix.
	n3, err := s.Window(relation.WinSum, "Price", nil, []SortKey{{Column: "Year"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n3 != "Sum_Price_2" {
		t.Fatalf("auto name = %q, want Sum_Price_2", n3)
	}
}

func TestWindowValidation(t *testing.T) {
	frame := &relation.Frame{
		Lo: relation.FrameBound{Kind: relation.BoundPreceding, Offset: 1},
		Hi: relation.FrameBound{Kind: relation.BoundCurrentRow},
	}
	cases := []struct {
		name string
		run  func(s *Spreadsheet) error
		want string
	}{
		{"rank without order", func(s *Spreadsheet) error {
			_, err := s.Window(relation.WinRank, "", []string{"Model"}, nil, nil)
			return err
		}, "needs ORDER BY"},
		{"rank with frame", func(s *Spreadsheet) error {
			_, err := s.Window(relation.WinRank, "", nil, []SortKey{{Column: "Price"}}, frame)
			return err
		}, "takes no frame"},
		{"rank with argument", func(s *Spreadsheet) error {
			_, err := s.Window(relation.WinRank, "Price", nil, []SortKey{{Column: "Price"}}, nil)
			return err
		}, "takes no argument"},
		{"sum without argument", func(s *Spreadsheet) error {
			_, err := s.Window(relation.WinSum, "", nil, []SortKey{{Column: "Price"}}, nil)
			return err
		}, "needs an argument"},
		{"sum over string", func(s *Spreadsheet) error {
			_, err := s.Window(relation.WinSum, "Model", nil, []SortKey{{Column: "Price"}}, nil)
			return err
		}, "numeric"},
		{"frame without order", func(s *Spreadsheet) error {
			_, err := s.Window(relation.WinSum, "Price", []string{"Model"}, nil, frame)
			return err
		}, "frame needs ORDER BY"},
		{"unknown partition column", func(s *Spreadsheet) error {
			_, err := s.Window(relation.WinRank, "", []string{"Nope"}, []SortKey{{Column: "Price"}}, nil)
			return err
		}, "unknown column"},
		{"unknown order column", func(s *Spreadsheet) error {
			_, err := s.Window(relation.WinRank, "", nil, []SortKey{{Column: "Nope"}}, nil)
			return err
		}, "unknown column"},
		{"duplicate partition column", func(s *Spreadsheet) error {
			_, err := s.Window(relation.WinRank, "", []string{"Model", "model"}, []SortKey{{Column: "Price"}}, nil)
			return err
		}, "duplicate"},
		{"duplicate name", func(s *Spreadsheet) error {
			_, err := s.WindowAs("Price", relation.WinRank, "", nil, []SortKey{{Column: "Price"}}, nil)
			return err
		}, "already exists"},
		{"inverted frame", func(s *Spreadsheet) error {
			bad := &relation.Frame{
				Lo: relation.FrameBound{Kind: relation.BoundUnboundedFollowing},
				Hi: relation.FrameBound{Kind: relation.BoundCurrentRow},
			}
			_, err := s.Window(relation.WinSum, "Price", nil, []SortKey{{Column: "Price"}}, bad)
			return err
		}, "frame"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := sheet()
			err := tc.run(s)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
			// A rejected ω leaves no trace in the state.
			if len(s.state.computed) != 0 {
				t.Fatal("failed Window left a computed column behind")
			}
		})
	}
}

func TestWindowInlineRejected(t *testing.T) {
	s := sheet()
	if _, err := s.Select("RANK() OVER (ORDER BY Price) <= 2"); err == nil ||
		!strings.Contains(err.Error(), "not inline") {
		t.Fatalf("inline window in predicate: err = %v", err)
	}
	if _, err := s.Formula("F", "SUM(Price) OVER (PARTITION BY Model) / 2"); err == nil ||
		!strings.Contains(err.Error(), "not inline") {
		t.Fatalf("inline window in formula: err = %v", err)
	}
}

func TestWindowExprAs(t *testing.T) {
	s := sheet()
	e, err := expr.Parse("SUM(Price) OVER (PARTITION BY Model ORDER BY Price ROWS BETWEEN 1 PRECEDING AND CURRENT ROW)")
	if err != nil {
		t.Fatal(err)
	}
	w, ok := e.(*expr.WindowCall)
	if !ok {
		t.Fatalf("parsed %T, want *expr.WindowCall", e)
	}
	if _, err := s.WindowExprAs("Mov", w); err != nil {
		t.Fatal(err)
	}
	wantInts(t, colInts(t, s, "Mov"),
		14500, 29500, 31000, 33000, 34500, 35500, 13500, 28500, 31000)
}

func TestWindowRenameRewrites(t *testing.T) {
	s := sheet()
	if _, err := s.WindowAs("R", relation.WinSum, "Price",
		[]string{"Model"}, []SortKey{{Column: "Price", Dir: Asc}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Rename("Price", "Cost"); err != nil {
		t.Fatal(err)
	}
	c := s.state.findComputed("R")
	if c == nil || c.Win.Input != "Cost" || c.Win.OrderBy[0].Column != "Cost" {
		t.Fatalf("rename did not rewrite window definition: %+v", c.Win)
	}
	wantInts(t, colInts(t, s, "R"),
		14500, 29500, 45500, 62500, 80000, 98000, 13500, 28500, 44500)
}

func TestWindowDependentsBlockRemoval(t *testing.T) {
	s := sheet()
	if _, err := s.WindowAs("R", relation.WinRank, "",
		[]string{"Model"}, []SortKey{{Column: "Price"}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Formula("F", "R * 10"); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveComputed("R"); err == nil || !strings.Contains(err.Error(), "depended on") {
		t.Fatalf("removal with dependent formula: err = %v", err)
	}
	if err := s.RemoveComputed("F"); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveComputed("R"); err != nil {
		t.Fatal(err)
	}
	if got := len(s.state.computed); got != 0 {
		t.Fatalf("computed columns left: %d", got)
	}
}

func TestWindowUndoRedo(t *testing.T) {
	s := sheet()
	if _, err := s.WindowAs("R", relation.WinRank, "",
		[]string{"Model"}, []SortKey{{Column: "Price"}}, nil); err != nil {
		t.Fatal(err)
	}
	before := colInts(t, s, "R")
	if _, err := s.Undo(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Schema.IndexOf("R") >= 0 {
		t.Fatal("undo left the window column")
	}
	if _, err := s.Redo(); err != nil {
		t.Fatal(err)
	}
	wantInts(t, colInts(t, s, "R"), before...)
}

func TestWindowPersistRoundTrip(t *testing.T) {
	s := sheet()
	frame := &relation.Frame{
		Lo: relation.FrameBound{Kind: relation.BoundPreceding, Offset: 2},
		Hi: relation.FrameBound{Kind: relation.BoundFollowing, Offset: 1},
	}
	if _, err := s.WindowAs("Mov", relation.WinAvg, "Price",
		[]string{"Model"}, []SortKey{{Column: "Price", Dir: Asc}}, frame); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WindowAs("R", relation.WinDenseRank, "",
		nil, []SortKey{{Column: "Year", Dir: Desc}}, nil); err != nil {
		t.Fatal(err)
	}
	want, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	data, err := s.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	r, err := RestoreState(s.Base(), data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if got.Table.String() != want.Table.String() {
		t.Fatalf("restored evaluation differs:\n%s\nvs\n%s", got.Table, want.Table)
	}
}

func TestWindowExplainAndCache(t *testing.T) {
	s := sheet()
	if _, err := s.WindowAs("R", relation.WinRank, "",
		[]string{"Model"}, []SortKey{{Column: "Price"}}, nil); err != nil {
		t.Fatal(err)
	}
	plan, err := s.Plan()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, st := range plan.Stages {
		if strings.HasPrefix(st.Name, "ω R") {
			found = true
			if st.Cached {
				t.Fatal("first evaluation reported the ω stage cached")
			}
		}
	}
	if !found {
		t.Fatalf("no ω stage in plan: %+v", plan.Stages)
	}
	// An ordering change outranks the window stage, so re-evaluation reuses
	// its snapshot.
	if err := s.Sort("Mileage", Asc); err != nil {
		t.Fatal(err)
	}
	plan, err = s.Plan()
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range plan.Stages {
		if strings.HasPrefix(st.Name, "ω R") && !st.Cached {
			t.Fatal("ω stage recomputed after an order-only change")
		}
	}
	// A depth-0 selection is shallower than the window: ω must recompute.
	if _, err := s.Select("Price > 14000"); err != nil {
		t.Fatal(err)
	}
	plan, err = s.Plan()
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range plan.Stages {
		if strings.HasPrefix(st.Name, "ω R") && st.Cached {
			t.Fatal("ω stage served stale snapshot across a shallower selection")
		}
	}
	// Survivors (Price > 14000 drops the 13500 Civic) read off in Mileage
	// order; ranks were computed before the Mileage sort, per partition.
	wantInts(t, colInts(t, s, "R"), 6, 5, 3, 4, 2, 1, 2, 1)
}

func TestWindowCarriesAcrossJoin(t *testing.T) {
	// Binary operators fold history into a new base; ω definitions carry
	// over and recompute against the joined relation (Sec. IV-B).
	s := sheet()
	if _, err := s.WindowAs("R", relation.WinRank, "", []string{"Model"},
		[]SortKey{{Column: "Price", Dir: Asc}}, nil); err != nil {
		t.Fatal(err)
	}
	d := New(dealers())
	if err := s.Join(d, "Model = Specialty"); err != nil {
		t.Fatal(err)
	}
	res, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	// Every car matches exactly one dealer, so the join is row-for-row and
	// the ranks match the pre-join sheet.
	if res.Table.Len() != 9 {
		t.Fatalf("joined rows = %d, want 9", res.Table.Len())
	}
	wantInts(t, colInts(t, s, "R"), 1, 2, 3, 4, 5, 6, 1, 2, 3)
}

func TestWindowBlocksBinaryWhenColumnDropped(t *testing.T) {
	s := sheet()
	if _, err := s.WindowAs("M", relation.WinSum, "Mileage", nil,
		[]SortKey{{Column: "ID", Dir: Asc}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Hide("Mileage"); err != nil {
		t.Fatal(err)
	}
	d := New(dealers())
	err := s.Product(d)
	if err == nil || !strings.Contains(err.Error(), "Mileage") {
		t.Fatalf("product with a dropped ω input should fail, got %v", err)
	}
}
