package core

import (
	"fmt"
	"strings"
	"testing"

	"sheetmusiq/internal/dataset"
	"sheetmusiq/internal/obs"
	"sheetmusiq/internal/relation"
)

func stageCounters() (hits, recomputes int64) {
	return obs.Default.CounterValue("core.eval.stage_hits"),
		obs.Default.CounterValue("core.eval.stage_recomputes")
}

// bigSheet builds the acceptance-criteria state over a 100k-row sheet:
// base → σ Year >= 2003 → η AvgP (level 2 over Model) → λ Price. Pipeline:
// base, σ, η, λ — four stages.
func bigSheet(t testing.TB) (*Spreadsheet, int) {
	t.Helper()
	s := New(dataset.RandomCars(100_000, 42))
	id, err := s.Select("Year >= 2003")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.GroupBy(Asc, "Model"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AggregateAs("AvgP", relation.AggAvg, "Price", 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Sort("Price", Asc); err != nil {
		t.Fatal(err)
	}
	return s, id
}

// TestSingleOpModificationReusesUpstreamSnapshots pins the tentpole
// acceptance criterion: after a warm evaluation of a 100k-row sheet, a
// single-op modification that only touches the ordering stage recomputes
// exactly that one stage and serves every upstream stage from its cached
// snapshot.
func TestSingleOpModificationReusesUpstreamSnapshots(t *testing.T) {
	s, _ := bigSheet(t)
	if _, err := s.Evaluate(); err != nil {
		t.Fatal(err)
	}

	if err := s.Sort("Price", Desc); err != nil {
		t.Fatal(err)
	}
	hits0, rec0 := stageCounters()
	got, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	hits, rec := stageCounters()
	if d := rec - rec0; d != 1 {
		t.Fatalf("λ re-order recomputed %d stages, want exactly 1 (the ordering)", d)
	}
	if d := hits - hits0; d != 3 {
		t.Fatalf("λ re-order hit %d cached stages, want 3 (base, σ, η)", d)
	}

	// The incremental result is bit-identical to a cold full replay.
	want, err := s.Clone().Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if got.Render() != want.Render() || got.RenderGrouped() != want.RenderGrouped() {
		t.Fatal("incremental evaluation diverged from cold replay after λ re-order")
	}
}

// TestReplaceSelectionRecomputesSuffix checks the ReplaceSelection case of
// the paper's query-modification workflow: the base snapshot is reused, the
// σ stage and everything downstream recompute.
func TestReplaceSelectionRecomputesSuffix(t *testing.T) {
	s, id := bigSheet(t)
	if _, err := s.Evaluate(); err != nil {
		t.Fatal(err)
	}
	if err := s.ReplaceSelection(id, "Year >= 2004"); err != nil {
		t.Fatal(err)
	}
	hits0, rec0 := stageCounters()
	got, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	hits, rec := stageCounters()
	if d := hits - hits0; d != 1 {
		t.Fatalf("modified σ hit %d cached stages, want 1 (base)", d)
	}
	if d := rec - rec0; d != 3 {
		t.Fatalf("modified σ recomputed %d stages, want 3 (σ, η, λ)", d)
	}
	want, err := s.Clone().Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if got.Render() != want.Render() {
		t.Fatal("incremental evaluation diverged from cold replay after ReplaceSelection")
	}
}

// TestModificationToggleRevivesSnapshots pins the stale-revival contract of
// the snapshot cache: reverting a modification (the paper's "change Year =
// 2005 to Year = 2006" dialog, toggled back) restores the previous
// fingerprint chain, so the whole pipeline serves from cache.
func TestModificationToggleRevivesSnapshots(t *testing.T) {
	s, id := bigSheet(t)
	if _, err := s.Evaluate(); err != nil {
		t.Fatal(err)
	}
	if err := s.ReplaceSelection(id, "Year >= 2004"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Evaluate(); err != nil {
		t.Fatal(err)
	}
	// Toggle back: every stage fingerprint returns to its first value.
	if err := s.ReplaceSelection(id, "Year >= 2003"); err != nil {
		t.Fatal(err)
	}
	hits0, rec0 := stageCounters()
	got, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	hits, rec := stageCounters()
	if d := rec - rec0; d != 0 {
		t.Fatalf("toggled-back state recomputed %d stages, want 0", d)
	}
	if d := hits - hits0; d != 4 {
		t.Fatalf("toggled-back state hit %d cached stages, want all 4", d)
	}
	want, err := s.Clone().Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if got.Render() != want.Render() {
		t.Fatal("fully cached evaluation diverged from cold replay")
	}
}

// TestEvaluateErrorMemoised pins the error-memoisation satellite: an
// erroring state fails once per version, not once per render.
func TestEvaluateErrorMemoised(t *testing.T) {
	s := New(dataset.UsedCars())
	if _, err := s.Formula("Bad", "Price / (Year - 2005)"); err != nil {
		t.Fatal(err)
	}
	evals0 := obs.Default.CounterValue("core.eval.count")
	_, err1 := s.Evaluate()
	if err1 == nil {
		t.Fatal("division by zero during evaluation must error")
	}
	_, err2 := s.Evaluate()
	if err2 == nil || err2.Error() != err1.Error() {
		t.Fatalf("memoised error mismatch: %v vs %v", err1, err2)
	}
	if d := obs.Default.CounterValue("core.eval.count") - evals0; d != 1 {
		t.Fatalf("erroring state replayed %d times for two Evaluate calls, want 1", d)
	}
	// The next operator clears the memoised error.
	if err := s.RemoveComputed("Bad"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Evaluate(); err != nil {
		t.Fatal(err)
	}
}

// TestBaseReplacementClearsSnapshots: renaming a base column replaces the
// base relation pointer, which must fence off every cached snapshot (they
// index into the old base) and still evaluate correctly.
func TestBaseReplacementClearsSnapshots(t *testing.T) {
	s := New(dataset.UsedCars())
	if _, err := s.Select("Price < 17000"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Evaluate(); err != nil {
		t.Fatal(err)
	}
	if err := s.Rename("Price", "Cost"); err != nil {
		t.Fatal(err)
	}
	got, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.Clone().Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if got.Render() != want.Render() {
		t.Fatal("evaluation after base-schema rename diverged from cold replay")
	}
	if !strings.Contains(got.Render(), "Cost") {
		t.Fatalf("renamed column missing from output:\n%s", got.Render())
	}
}

// TestPlanReportsCacheStatus drives the explain surface: a warm plan marks
// every stage cached; a modification marks the recomputed suffix.
func TestPlanReportsCacheStatus(t *testing.T) {
	s, _ := bigSheet(t)
	if _, err := s.Evaluate(); err != nil {
		t.Fatal(err)
	}
	plan, err := s.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Stages) != 4 {
		t.Fatalf("plan has %d stages, want 4:\n%+v", len(plan.Stages), plan.Stages)
	}
	wantNames := []string{"base", "σ (Year >= 2003) d0", "η AvgP d1", "λ"}
	for i, st := range plan.Stages {
		if st.Name != wantNames[i] {
			t.Fatalf("stage %d named %q, want %q", i, st.Name, wantNames[i])
		}
	}
	if err := s.Sort("Price", Desc); err != nil {
		t.Fatal(err)
	}
	plan, err = s.Plan()
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range plan.Stages {
		wantCached := i < 3
		if st.Cached != wantCached {
			t.Fatalf("after λ re-order, stage %d (%s) cached=%v, want %v\nplan: %+v",
				i, st.Name, st.Cached, wantCached, plan.Stages)
		}
	}
	if plan.Stages[3].Rows == 0 {
		t.Fatal("recomputed ordering stage should report its row count")
	}
}

// TestPlanOnErroringState: the plan survives a failing stage, reporting the
// error and the stages reached.
func TestPlanOnErroringState(t *testing.T) {
	s := New(dataset.UsedCars())
	if _, err := s.Formula("Bad", "Price / (Year - 2005)"); err != nil {
		t.Fatal(err)
	}
	plan, err := s.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Error == "" {
		t.Fatal("plan of an erroring state must carry the error")
	}
	if len(plan.Stages) != 2 { // base, θ Bad
		t.Fatalf("plan has %d stages, want 2:\n%+v", len(plan.Stages), plan.Stages)
	}
}

// TestSnapshotBytesGaugeMoves sanity-checks the snapshot_bytes series: it
// rises when snapshots are cached and falls when a base replacement clears
// them.
func TestSnapshotBytesGaugeMoves(t *testing.T) {
	before := obs.Default.Gauge("core.eval.snapshot_bytes").Value()
	s := New(dataset.RandomCars(4096, 7))
	if _, err := s.Select("Year >= 2003"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Evaluate(); err != nil {
		t.Fatal(err)
	}
	mid := obs.Default.Gauge("core.eval.snapshot_bytes").Value()
	if mid <= before {
		t.Fatalf("snapshot_bytes did not rise: %d -> %d", before, mid)
	}
	// Rename a base column: the base pointer changes and the next
	// evaluation must clear this sheet's snapshots.
	if err := s.Rename("Price", "Cost"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Evaluate(); err != nil {
		t.Fatal(err)
	}
	// The cleared bytes were re-added for the new base's snapshots; the
	// gauge must stay self-consistent (never negative relative to start).
	after := obs.Default.Gauge("core.eval.snapshot_bytes").Value()
	if after <= before {
		t.Fatalf("snapshot_bytes lost accounting: %d -> %d", before, after)
	}
}

// TestStageFingerprintsDistinguishStates: different operator definitions
// must produce different final-stage fingerprints, equal states equal ones
// — otherwise the cache would serve wrong snapshots.
func TestStageFingerprintsDistinguishStates(t *testing.T) {
	build := func(pred string) uint64 {
		s := New(dataset.UsedCars())
		if _, err := s.Select(pred); err != nil {
			t.Fatal(err)
		}
		_, stages, err := s.buildPipeline()
		if err != nil {
			t.Fatal(err)
		}
		return stages[len(stages)-1].fp
	}
	a := build("Year >= 2003")
	b := build("Year >= 2004")
	c := build("Year >= 2003")
	if a == b {
		t.Fatal("different predicates produced the same stage fingerprint")
	}
	if a != c {
		t.Fatal("identical states produced different stage fingerprints")
	}
}

// TestSnapshotCacheEviction fills the cache past its cap and checks the
// sheet still evaluates correctly with bounded entries.
func TestSnapshotCacheEviction(t *testing.T) {
	s := New(dataset.RandomCars(256, 3))
	id, err := s.Select("Year >= 2000")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2*snapCacheCap; i++ {
		if err := s.ReplaceSelection(id, fmt.Sprintf("Price >= %d", 8000+i)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Evaluate(); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(s.snaps().entries); n > snapCacheCap {
		t.Fatalf("snapshot cache holds %d entries, cap is %d", n, snapCacheCap)
	}
	got, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.Clone().Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if got.Render() != want.Render() {
		t.Fatal("evaluation under cache eviction diverged from cold replay")
	}
}
