package core

import (
	"fmt"
	"sync"
	"testing"

	"sheetmusiq/internal/relation"
	"sheetmusiq/internal/value"
)

func carsFixture() *relation.Relation {
	r := relation.New("cars", relation.Schema{
		{Name: "ID", Kind: value.KindInt},
		{Name: "Model", Kind: value.KindString},
		{Name: "Price", Kind: value.KindInt},
	})
	r.MustAppend(value.NewInt(1), value.NewString("Jetta"), value.NewInt(14500))
	r.MustAppend(value.NewInt(2), value.NewString("Civic"), value.NewInt(13500))
	r.MustAppend(value.NewInt(3), value.NewString("Civic"), value.NewInt(16000))
	return r
}

func TestCatalogRename(t *testing.T) {
	c := NewCatalog()
	s := New(carsFixture())
	if err := c.Save("a", s); err != nil {
		t.Fatal(err)
	}
	if err := c.Rename("a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stored("a"); err == nil {
		t.Fatal("old name must be gone after rename")
	}
	got, err := c.Stored("b")
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != "b" {
		t.Fatalf("renamed sheet is named %q, want b", got.Name())
	}
	res, err := got.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Len() != 3 {
		t.Fatalf("renamed sheet lost rows: %d", res.Table.Len())
	}
}

func TestCatalogRenameErrors(t *testing.T) {
	c := NewCatalog()
	s := New(carsFixture())
	if err := c.Rename("missing", "x"); err == nil {
		t.Fatal("renaming a missing sheet must fail")
	}
	if err := c.Save("a", s); err != nil {
		t.Fatal(err)
	}
	if err := c.Save("b", s); err != nil {
		t.Fatal(err)
	}
	if err := c.Rename("a", "b"); err == nil {
		t.Fatal("renaming onto an existing name must fail")
	}
	if err := c.Rename("a", ""); err == nil {
		t.Fatal("renaming to the empty name must fail")
	}
	if err := c.Rename("a", "a"); err != nil {
		t.Fatalf("self-rename should be a no-op: %v", err)
	}
	if got := c.Names(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("catalog contents after failed renames: %v", got)
	}
}

// TestCatalogRenameKeepsHandlesValid pins the snapshot semantics: a sheet
// handed out before a rename keeps working under its old name.
func TestCatalogRenameKeepsHandlesValid(t *testing.T) {
	c := NewCatalog()
	if err := c.Save("a", New(carsFixture())); err != nil {
		t.Fatal(err)
	}
	handle, err := c.Stored("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Rename("a", "b"); err != nil {
		t.Fatal(err)
	}
	if handle.Name() != "a" {
		t.Fatalf("pre-rename handle changed name to %q", handle.Name())
	}
	if _, err := handle.Evaluate(); err != nil {
		t.Fatal(err)
	}
}

// TestCatalogConcurrent drives save/open/stored/rename/close interleavings
// from many goroutines; run with -race.
func TestCatalogConcurrent(t *testing.T) {
	c := NewCatalog()
	base := carsFixture()
	if err := c.Save("shared", New(base)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			mine := fmt.Sprintf("mine-%d", g)
			for i := 0; i < 50; i++ {
				s := New(base)
				if _, err := s.Select("Price < 15000"); err != nil {
					t.Error(err)
					return
				}
				if err := c.Save(mine, s); err != nil {
					t.Error(err)
					return
				}
				// Concurrent readers of the shared sheet: binary-operand
				// style Evaluate plus a working copy.
				stored, err := c.Stored("shared")
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := stored.Evaluate(); err != nil {
					t.Error(err)
					return
				}
				if _, err := c.Open("shared"); err != nil {
					t.Error(err)
					return
				}
				c.Names()
				renamed := fmt.Sprintf("renamed-%d", g)
				if err := c.Rename(mine, renamed); err != nil {
					t.Error(err)
					return
				}
				if err := c.Close(renamed); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := c.Len(); got != 1 {
		t.Fatalf("catalog should hold only the shared sheet, has %d", got)
	}
}
