package core

import (
	"fmt"
	"strings"
	"testing"

	"sheetmusiq/internal/dataset"
	"sheetmusiq/internal/expr"
	"sheetmusiq/internal/obs"
	"sheetmusiq/internal/relation"
	"sheetmusiq/internal/value"
)

// dealers returns a second relation for binary-operator tests.
func dealers() *relation.Relation {
	r := relation.New("dealers", relation.Schema{
		{Name: "Dealer", Kind: value.KindString},
		{Name: "Specialty", Kind: value.KindString},
	})
	r.MustAppend(value.NewString("AnnArborAuto"), value.NewString("Jetta"))
	r.MustAppend(value.NewString("MotorCity"), value.NewString("Civic"))
	r.MustAppend(value.NewString("LibertyCars"), value.NewString("Corolla"))
	return r
}

func TestProductCarriesGroupingAndCount(t *testing.T) {
	s := New(dataset.UsedCars())
	if err := s.GroupBy(Asc, "Model"); err != nil {
		t.Fatal(err)
	}
	d := New(dealers())
	if err := s.Product(d); err != nil {
		t.Fatal(err)
	}
	res, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Len() != 9*3 {
		t.Fatalf("product rows = %d, want 27", res.Table.Len())
	}
	if len(s.Grouping()) != 1 {
		t.Fatal("product must keep the current spreadsheet's grouping")
	}
	if !res.Table.Schema.Has("Dealer") {
		t.Fatal("product should carry the stored sheet's columns")
	}
}

func TestJoin(t *testing.T) {
	s := New(dataset.UsedCars())
	if err := s.Sort("Price", Asc); err != nil {
		t.Fatal(err)
	}
	d := New(dealers())
	if err := s.Join(d, "Model = Specialty"); err != nil {
		t.Fatal(err)
	}
	res, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Len() != 9 {
		t.Fatalf("join rows = %d, want 9 (every car has a dealer)", res.Table.Len())
	}
	di := res.Table.Schema.IndexOf("Dealer")
	mi := res.Table.Schema.IndexOf("Model")
	for _, row := range res.Table.TupleRows() {
		want := "AnnArborAuto"
		if row[mi].Str() == "Civic" {
			want = "MotorCity"
		}
		if row[di].Str() != want {
			t.Fatalf("join row %v has dealer %v", row[mi], row[di])
		}
	}
	// Ordering survived the join.
	pi := res.Table.Schema.IndexOf("Price")
	if res.Table.TupleRows()[0][pi].Int() != 13500 {
		t.Fatal("join must keep the current sheet's ordering")
	}
}

func TestJoinInvalidCondition(t *testing.T) {
	s := New(dataset.UsedCars())
	d := New(dealers())
	if err := s.Join(d, "Model = NoSuchColumn"); err == nil {
		t.Fatal("invalid join condition must be reported immediately")
	}
	if err := s.Join(d, "Price + 1"); err == nil {
		t.Fatal("non-boolean join condition must fail")
	}
	if s.Version() != 0 {
		t.Fatal("failed join must not change the spreadsheet")
	}
}

func TestJoinColumnCollisionPrefixed(t *testing.T) {
	s := New(dataset.UsedCars())
	other := New(dataset.UsedCars())
	other.SetName("cars2")
	if err := s.Join(other, "Model = cars2_Model"); err != nil {
		t.Fatal(err)
	}
	res, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Table.Schema.Has("cars2_Model") {
		t.Fatalf("collided columns should be prefixed: %v", res.Table.Schema.Names())
	}
	// Self-join on Model: 6*6 Jetta pairs + 3*3 Civic pairs.
	if res.Table.Len() != 45 {
		t.Fatalf("self-join rows = %d, want 45", res.Table.Len())
	}
}

// TestJoinEquiDispatchesToHashKernel: a conjunctive cross-relation equality
// routes through the hash-join kernel (counter advances) and produces
// exactly the rows the theta pair scan produces for the same predicate.
func TestJoinEquiDispatchesToHashKernel(t *testing.T) {
	hashBefore := obs.Default.CounterValue("relation.join.hash")

	s := New(dataset.UsedCars())
	d := New(dealers())
	if err := s.Join(d, "Model = Specialty AND Price > 14000"); err != nil {
		t.Fatal(err)
	}
	res, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if got := obs.Default.CounterValue("relation.join.hash"); got <= hashBefore {
		t.Fatal("equality condition must dispatch to the hash-join kernel")
	}

	// Reference: the same predicate wrapped so equiPairs cannot extract it
	// (OR with a false arm), forcing the theta pair scan.
	fallBefore := obs.Default.CounterValue("relation.join.fallback")
	ref := New(dataset.UsedCars())
	if err := ref.Join(d, "(Model = Specialty AND Price > 14000) OR 1 = 2"); err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if got := obs.Default.CounterValue("relation.join.fallback"); got <= fallBefore {
		t.Fatal("OR condition must fall back to the theta pair scan")
	}
	if res.Table.Len() != refRes.Table.Len() {
		t.Fatalf("hash join rows = %d, theta join rows = %d", res.Table.Len(), refRes.Table.Len())
	}
	for i := range res.Table.TupleRows() {
		for j := range res.Table.TupleRows()[i] {
			if !value.Equal(res.Table.TupleRows()[i][j], refRes.Table.TupleRows()[i][j]) {
				t.Fatalf("row %d differs between hash and theta paths", i)
			}
		}
	}
}

func TestEquiPairsExtraction(t *testing.T) {
	schema := relation.Schema{
		{Name: "a", Kind: value.KindInt},
		{Name: "b", Kind: value.KindInt},
		{Name: "x", Kind: value.KindInt},
		{Name: "y", Kind: value.KindInt},
	}
	cases := []struct {
		cond  string
		wantL []int
		wantR []int
	}{
		{"a = x", []int{0}, []int{0}},
		{"x = a", []int{0}, []int{0}},                 // orientation-insensitive
		{"a = x AND b = y", []int{0, 1}, []int{0, 1}}, // both conjuncts
		{"a = x AND b > y", []int{0}, []int{0}},       // residual theta kept out
		{"a = b", nil, nil},                           // same-side equality
		{"a = x OR b = y", nil, nil},                  // OR is not conjunctive
		{"a + 1 = x", nil, nil},                       // not a bare column ref
	}
	for _, c := range cases {
		e, err := expr.Parse(c.cond)
		if err != nil {
			t.Fatal(err)
		}
		l, r := equiPairs(e, schema, 2)
		if fmt.Sprint(l) != fmt.Sprint(c.wantL) || fmt.Sprint(r) != fmt.Sprint(c.wantR) {
			t.Fatalf("equiPairs(%q) = %v,%v want %v,%v", c.cond, l, r, c.wantL, c.wantR)
		}
	}
}

func TestUnionAndDifferenceMultiset(t *testing.T) {
	s := New(dataset.UsedCars())
	d := New(dataset.UsedCars())
	if err := s.Union(d); err != nil {
		t.Fatal(err)
	}
	res, _ := s.Evaluate()
	if res.Table.Len() != 18 {
		t.Fatalf("union rows = %d, want 18 (multiset)", res.Table.Len())
	}
	if err := s.Difference(d); err != nil {
		t.Fatal(err)
	}
	res, _ = s.Evaluate()
	if res.Table.Len() != 9 {
		t.Fatalf("difference rows = %d, want 9 ({t,t}−{t}={t})", res.Table.Len())
	}
}

func TestUnionIncompatible(t *testing.T) {
	s := New(dataset.UsedCars())
	d := New(dealers())
	if err := s.Union(d); err == nil {
		t.Fatal("union of incompatible schemas must fail")
	}
}

func TestUnionFoldsSelections(t *testing.T) {
	// Selections made before the union are folded into the materialised
	// base (point of non-commutativity) and leave the rewritable state.
	s := New(dataset.UsedCars())
	if _, err := s.Select("Model = 'Jetta'"); err != nil {
		t.Fatal(err)
	}
	d := New(dataset.UsedCars())
	if err := s.Union(d); err != nil {
		t.Fatal(err)
	}
	if len(s.Selections("")) != 0 {
		t.Fatal("selections must be folded at a point of non-commutativity")
	}
	res, _ := s.Evaluate()
	if res.Table.Len() != 6+9 {
		t.Fatalf("rows = %d, want 15 (6 Jettas ∪ all 9)", res.Table.Len())
	}
}

func TestBinaryOpRecomputesComputedColumns(t *testing.T) {
	// Def. 7: computed columns are "updated such that computation is based
	// on the product".
	s := New(dataset.UsedCars())
	if _, err := s.AggregateAs("N", relation.AggCount, "ID", 1); err != nil {
		t.Fatal(err)
	}
	d := New(dealers())
	if err := s.Product(d); err != nil {
		t.Fatal(err)
	}
	res, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	ni := res.Table.Schema.IndexOf("N")
	if got := res.Table.TupleRows()[0][ni].Int(); got != 27 {
		t.Fatalf("COUNT after product = %d, want 27", got)
	}
}

func TestBinaryOpRejectsDanglingComputed(t *testing.T) {
	// A computed column whose input is hidden cannot survive a binary op;
	// the operator must refuse rather than silently drop it.
	s := New(dataset.UsedCars())
	if _, err := s.AggregateAs("AvgP", relation.AggAvg, "Price", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Hide("Price"); err != nil {
		t.Fatal(err)
	}
	d := New(dealers())
	if err := s.Product(d); err == nil {
		t.Fatal("product must refuse when a computed column's input is not carried")
	}
}

func TestProductAsymmetry(t *testing.T) {
	// S × S_s keeps S's grouping; S_s × S keeps S_s's — results differ.
	a := New(dataset.UsedCars())
	if err := a.GroupBy(Desc, "Model"); err != nil {
		t.Fatal(err)
	}
	b := New(dealers())

	a1 := a.Clone()
	if err := a1.Product(b); err != nil {
		t.Fatal(err)
	}
	b1 := b.Clone()
	if err := b1.Product(a); err != nil {
		t.Fatal(err)
	}
	r1, err := a1.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := b1.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(r1.Table.Schema.Names(), ",") == strings.Join(r2.Table.Schema.Names(), ",") {
		t.Fatal("product should be asymmetric in presentation")
	}
}

func TestCatalogSaveOpenClose(t *testing.T) {
	cat := NewCatalog()
	s := New(dataset.UsedCars())
	if _, err := s.Select("Model = 'Jetta'"); err != nil {
		t.Fatal(err)
	}
	if err := cat.Save("jettas", s); err != nil {
		t.Fatal(err)
	}
	// Mutating the original must not affect the stored copy.
	if _, err := s.Select("Price < 15000"); err != nil {
		t.Fatal(err)
	}
	stored, err := cat.Open("jettas")
	if err != nil {
		t.Fatal(err)
	}
	res, err := stored.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Len() != 6 {
		t.Fatalf("stored sheet rows = %d, want 6", res.Table.Len())
	}
	if names := cat.Names(); len(names) != 1 || names[0] != "jettas" {
		t.Fatalf("catalog names = %v", names)
	}
	if err := cat.Close("jettas"); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Open("jettas"); err == nil {
		t.Fatal("open after close must fail")
	}
	if err := cat.Close("jettas"); err == nil {
		t.Fatal("double close must fail")
	}
	if err := cat.Save("", s); err == nil {
		t.Fatal("empty name must fail")
	}
}

func TestStoredSheetAsOperand(t *testing.T) {
	cat := NewCatalog()
	s := New(dataset.UsedCars())
	if _, err := s.Select("Condition = 'Excellent'"); err != nil {
		t.Fatal(err)
	}
	if err := cat.Save("excellent", s); err != nil {
		t.Fatal(err)
	}
	cur := New(dataset.UsedCars())
	stored, err := cat.Stored("excellent")
	if err != nil {
		t.Fatal(err)
	}
	if err := cur.Difference(stored); err != nil {
		t.Fatal(err)
	}
	res, _ := cur.Evaluate()
	if res.Table.Len() != 5 {
		t.Fatalf("all − excellent = %d rows, want 5", res.Table.Len())
	}
}

func TestUndoAcrossBinaryOp(t *testing.T) {
	s := New(dataset.UsedCars())
	d := New(dealers())
	if err := s.Join(d, "Model = Specialty"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Undo(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Schema.Has("Dealer") {
		t.Fatal("undo must restore the pre-join base")
	}
	if res.Table.Len() != 9 {
		t.Fatalf("rows after undo = %d", res.Table.Len())
	}
}
