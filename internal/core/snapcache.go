package core

import (
	"sheetmusiq/internal/expr"
	"sheetmusiq/internal/obs"
	"sheetmusiq/internal/relation"
)

// Stage-artifact cache metrics. stage_hits counts pipeline stages served
// from a cached artifact; stage_recomputes counts stages actually
// re-executed; stage_recomputes_coarse counts what the pre-graph rank-table
// scheme would have re-executed for the same evaluation (the suffix from the
// first miss — linear fingerprint chaining recomputed everything downstream
// of the first change), so recomputes ≤ recomputes_coarse is the precision
// win of graph-exact keying. invalidate.exact counts cache entries
// stale-marked because a mutation touched one of their dependency atoms;
// invalidate.coarse_saved counts entries the old rank table would have
// stale-marked but the dependency graph proved unaffected. snapshot_bytes
// gauges the resident bytes owned by cached artifacts (each artifact is
// charged only for the storage it allocated itself).
var (
	evalStageHits             = obs.Default.Counter("core.eval.stage_hits")
	evalStageRecomputes       = obs.Default.Counter("core.eval.stage_recomputes")
	evalStageRecomputesCoarse = obs.Default.Counter("core.eval.stage_recomputes_coarse")
	evalInvalidateExact       = obs.Default.Counter("core.eval.invalidate.exact")
	evalInvalidateCoarseSaved = obs.Default.Counter("core.eval.invalidate.coarse_saved")
	evalSnapshotBytes         = obs.Default.Gauge("core.eval.snapshot_bytes")
)

// stageSnap is the running state of one evaluation: the surviving base-row
// index vector in presentation (multiset) order, plus the computed-column
// vectors filled so far. Column vectors are indexed by base-row index — rows
// eliminated by upstream selections leave unread holes — so a downstream
// snapshot extends an upstream one by appending to cols without copying
// anything. Snapshots are per-evaluation scaffolding; what the cache stores
// is each stage's own stageArtifact, and apply closures (plan.go) fold
// artifacts back into the running snapshot.
type stageSnap struct {
	idx      []int32
	cols     []stageCol
	ownBytes int64
}

// stageCol is one filled computed-column vector: a typed column indexed by
// base-row index (relation.Col), so downstream stages, the vectorized
// expression kernels and the final materialisation all read raw payloads.
// Stages fall back to a Boxed column only when the fill produced cells of
// mixed kinds.
type stageCol struct {
	name string
	col  *relation.Col
}

// extend starts a downstream snapshot sharing this one's storage.
func (sn *stageSnap) extend() *stageSnap {
	return &stageSnap{idx: sn.idx, cols: sn.cols[:len(sn.cols):len(sn.cols)]}
}

// stageArtifact is the cacheable output of one pipeline stage: row stages
// (base, σ, ∧, δ, λ) own a surviving-row index vector; column stages (η, ω,
// θ) own one filled column vector. Artifacts deliberately do not carry the
// output column's *name*: the fingerprint keys the definition's content, so
// two identically defined columns under different names share one artifact,
// and the stage's apply closure supplies its own name — the keying that also
// lets artifacts be shared across sessions later.
type stageArtifact struct {
	fp       uint64
	idx      []int32       // row stages: surviving base-row indices, nil otherwise
	col      *relation.Col // column stages: the filled vector, nil otherwise
	ownBytes int64
}

const (
	// snapCacheCap bounds the per-sheet artifact cache. Eviction prefers
	// stale entries (see invalidate), then least-recently-used. Residency
	// is purely an optimisation: fingerprints key every lookup, so a miss
	// costs recomputation, never correctness.
	snapCacheCap = 64
)

// Stage ranks order pipeline positions the way the pre-graph invalidation
// scheme did (DESIGN.md §10.3): within depth d the stages run aggregate →
// window → formula → selection, duplicate elimination follows the depth-0
// selections, and the final ordering stage outranks every depth. The graph
// scheme keeps them only to *measure* its own precision: invalidate takes
// the rank the old table would have used and counts the entries it spares
// (invalidate.coarse_saved). Ranks live only in memory, so renumbering
// between releases is safe.
const rankOrder = 1 << 20

func rankBase() int         { return 0 }
func rankAgg(d int) int     { return 6*d + 1 }
func rankWindow(d int) int  { return 6*d + 2 }
func rankFormula(d int) int { return 6*d + 3 }
func rankSelect(d int) int  { return 6*d + 4 }
func rankDistinct() int     { return 5 }

// snapCache is a per-sheet fingerprint-keyed store of stage artifacts.
type snapCache struct {
	entries map[uint64]*snapEntry
	tick    int64
}

// snapEntry carries an artifact plus its invalidation metadata: the
// dependency atoms of the stage that built it (plan.go — the invalidation
// alphabet mutators speak) and the legacy rank, kept for the coarse_saved
// comparison. Atoms are advisory — staleness only biases eviction and the
// metrics; fingerprints alone guarantee correctness.
type snapEntry struct {
	art   *stageArtifact
	rank  int
	atoms []string
	used  int64
	stale bool
}

func newSnapCache() *snapCache {
	return &snapCache{entries: map[uint64]*snapEntry{}}
}

// get returns the cached artifact for fp, or nil. A hit revives a stale
// entry: the fingerprint match proves the mutation that staled it has been
// reverted (or re-applied), so the artifact is live again.
func (c *snapCache) get(fp uint64) *stageArtifact {
	e := c.entries[fp]
	if e == nil {
		return nil
	}
	c.tick++
	e.used = c.tick
	e.stale = false
	return e.art
}

// put inserts a freshly computed artifact, evicting past the cap. An entry
// already present refreshes its metadata (the same fingerprint can resurface
// with a different atom spelling after selection IDs are reassigned).
func (c *snapCache) put(art *stageArtifact, rank int, atoms []string) {
	if e := c.entries[art.fp]; e != nil {
		c.tick++
		e.used = c.tick
		e.stale = false
		e.rank = rank
		e.atoms = atoms
		return
	}
	c.tick++
	c.entries[art.fp] = &snapEntry{art: art, rank: rank, atoms: atoms, used: c.tick}
	evalSnapshotBytes.Add(art.ownBytes)
	for len(c.entries) > snapCacheCap {
		c.evictOne()
	}
}

// evictOne drops the best eviction candidate: stale entries first, then the
// least recently used.
func (c *snapCache) evictOne() {
	var victimFP uint64
	var victim *snapEntry
	for fp, e := range c.entries {
		if victim == nil ||
			(e.stale && !victim.stale) ||
			(e.stale == victim.stale && e.used < victim.used) {
			victimFP, victim = fp, e
		}
	}
	if victim != nil {
		evalSnapshotBytes.Add(-victim.art.ownBytes)
		delete(c.entries, victimFP)
	}
}

// invalidate marks as stale exactly the entries whose dependency-atom set
// intersects the mutation's atoms — the graph-reachability contract: a
// stage's atoms are the transitive closure of everything its artifact was
// derived from, so an entry holding none of the mutation's atoms provably
// cannot change and stays live. coarseRank is the rank the pre-graph table
// would have invalidated from; entries it would have staled but the atoms
// spare are counted as coarse_saved. Stale entries stay resident
// (preferentially evicted) and revive on a fingerprint hit — Theorem 3
// makes reverting a modification as common as applying one.
func (c *snapCache) invalidate(atoms []string, coarseRank int) {
	for _, e := range c.entries {
		if atomsIntersect(e.atoms, atoms) {
			e.stale = true
			evalInvalidateExact.Inc()
		} else if e.rank >= coarseRank {
			evalInvalidateCoarseSaved.Inc()
		}
	}
}

// atomsIntersect reports whether the two atom sets share an element. Sets
// are tiny (a handful of strings), so nested scanning beats allocating.
func atomsIntersect(a, b []string) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

// clear drops every artifact (the base relation was replaced).
func (c *snapCache) clear() {
	for fp, e := range c.entries {
		evalSnapshotBytes.Add(-e.art.ownBytes)
		delete(c.entries, fp)
	}
}

// snaps returns the sheet's artifact cache, creating it on first use.
func (s *Spreadsheet) snaps() *snapCache {
	if s.snapCache == nil {
		s.snapCache = newSnapCache()
	}
	return s.snapCache
}

// invalidateAtoms records that a mutation changed the definitions behind the
// given dependency atoms; coarseRank is what the pre-graph rank table would
// have invalidated from (see DESIGN.md §15 for the operator → atom table).
func (s *Spreadsheet) invalidateAtoms(coarseRank int, atoms ...string) {
	if s.snapCache != nil {
		s.snapCache.invalidate(atoms, coarseRank)
	}
}

// selRank is the coarse invalidation rank of a selection predicate: the σ
// stage of its evaluation depth. A predicate whose depth cannot be resolved
// (its columns are gone mid-mutation) conservatively ranks at the base.
func (s *Spreadsheet) selRank(e expr.Expr) int {
	d, err := s.exprDepth(e)
	if err != nil {
		return rankBase()
	}
	return rankSelect(d)
}

// computedRank is the coarse invalidation rank of a computed column's fill
// stage. Call it while the column is still present in the state (its depth
// needs the definition).
func (s *Spreadsheet) computedRank(c *ComputedColumn) int {
	d, err := s.aggDepth(c.Name, map[string]bool{})
	if err != nil {
		return rankBase()
	}
	switch c.Kind {
	case KindAggregate:
		return rankAgg(d)
	case KindWindow:
		return rankWindow(d)
	}
	return rankFormula(d)
}

// checkBaseGeneration starts a new fingerprint generation when the base
// relation pointer changed since the last evaluation — binary operators,
// base-column renames and undo across either replace the base wholesale.
// Every cached artifact indexes into the old base, so the cache clears.
func (s *Spreadsheet) checkBaseGeneration() {
	if s.baseSeen == s.base {
		return
	}
	if s.baseSeen != nil {
		s.baseGen++
	}
	s.baseSeen = s.base
	if s.snapCache != nil {
		s.snapCache.clear()
	}
}
