package core

import (
	"sheetmusiq/internal/expr"
	"sheetmusiq/internal/obs"
	"sheetmusiq/internal/relation"
)

// Stage-snapshot cache metrics. stage_hits counts pipeline stages served
// from a cached snapshot (including every stage upstream of the deepest
// hit); stage_recomputes counts stages actually re-executed. Their ratio is
// the incremental-evaluation win. snapshot_bytes gauges the resident bytes
// owned by cached snapshots (each snapshot is charged only for the storage
// it allocated itself — index vectors and column vectors shared with an
// upstream snapshot are counted once, at the stage that built them).
var (
	evalStageHits       = obs.Default.Counter("core.eval.stage_hits")
	evalStageRecomputes = obs.Default.Counter("core.eval.stage_recomputes")
	evalSnapshotBytes   = obs.Default.Gauge("core.eval.snapshot_bytes")
)

// stageSnap is the immutable output of one pipeline stage: the surviving
// base-row index vector in presentation (multiset) order, plus the
// computed-column vectors filled so far. Column vectors are indexed by
// base-row index — rows eliminated by upstream selections leave unread
// holes — so a downstream snapshot extends an upstream one by appending to
// cols without copying anything. A snapshot, once built, is never mutated;
// cols always carries a capacity clamp so appends by downstream stages
// cannot scribble into a shared backing array.
type stageSnap struct {
	fp       uint64
	idx      []int32
	cols     []stageCol
	ownBytes int64
}

// stageCol is one filled computed-column vector: a typed column indexed by
// base-row index (relation.Col), so downstream stages, the vectorized
// expression kernels and the final materialisation all read raw payloads.
// Stages fall back to a Boxed column only when the fill produced cells of
// mixed kinds.
type stageCol struct {
	name string
	col  *relation.Col
}

// extend starts a downstream snapshot sharing this one's storage.
func (sn *stageSnap) extend() *stageSnap {
	return &stageSnap{idx: sn.idx, cols: sn.cols[:len(sn.cols):len(sn.cols)]}
}

const (
	// snapCacheCap bounds the per-sheet snapshot cache. Eviction prefers
	// stale entries (see invalidate), then least-recently-used. Residency
	// is purely an optimisation: fingerprints key every lookup, so a miss
	// costs recomputation, never correctness.
	snapCacheCap = 64
)

// Stage ranks order pipeline positions for invalidation. Within depth d the
// stages run aggregate → window → formula → selection, and duplicate
// elimination follows the depth-0 selections; the final ordering stage
// outranks every depth. rankDistinct lands between rankSelect(0) and
// rankAgg(1), mirroring the replay order of DESIGN.md §3.2. Ranks live only
// in memory (fingerprints key the cache), so renumbering between releases
// is safe.
const rankOrder = 1 << 20

func rankBase() int         { return 0 }
func rankAgg(d int) int     { return 6*d + 1 }
func rankWindow(d int) int  { return 6*d + 2 }
func rankFormula(d int) int { return 6*d + 3 }
func rankSelect(d int) int  { return 6*d + 4 }
func rankDistinct() int     { return 5 }

// snapCache is a per-sheet fingerprint-keyed store of stage snapshots.
type snapCache struct {
	entries map[uint64]*snapEntry
	tick    int64
}

type snapEntry struct {
	snap  *stageSnap
	rank  int
	used  int64
	stale bool
}

func newSnapCache() *snapCache {
	return &snapCache{entries: map[uint64]*snapEntry{}}
}

// get returns the cached snapshot for fp, or nil. A hit revives a stale
// entry: the fingerprint match proves the mutation that staled it has been
// reverted (or re-applied), so the snapshot is live again.
func (c *snapCache) get(fp uint64) *stageSnap {
	e := c.entries[fp]
	if e == nil {
		return nil
	}
	c.tick++
	e.used = c.tick
	e.stale = false
	return e.snap
}

// put inserts a freshly computed snapshot, evicting past the cap.
func (c *snapCache) put(snap *stageSnap, rank int) {
	if e := c.entries[snap.fp]; e != nil {
		c.tick++
		e.used = c.tick
		e.stale = false
		return
	}
	c.tick++
	c.entries[snap.fp] = &snapEntry{snap: snap, rank: rank, used: c.tick}
	evalSnapshotBytes.Add(snap.ownBytes)
	for len(c.entries) > snapCacheCap {
		c.evictOne()
	}
}

// evictOne drops the best eviction candidate: stale entries first, then the
// least recently used.
func (c *snapCache) evictOne() {
	var victimFP uint64
	var victim *snapEntry
	for fp, e := range c.entries {
		if victim == nil ||
			(e.stale && !victim.stale) ||
			(e.stale == victim.stale && e.used < victim.used) {
			victimFP, victim = fp, e
		}
	}
	if victim != nil {
		evalSnapshotBytes.Add(-victim.snap.ownBytes)
		delete(c.entries, victimFP)
	}
}

// invalidate marks every snapshot at or downstream of rank as stale. The
// mutation that triggered it changed those stages' definitions, so their
// fingerprints will not be probed by the next evaluation — but Theorem 3
// makes reverting a modification as common as applying one, so stale
// entries stay resident (preferentially evicted) and revive on a
// fingerprint hit instead of being recomputed.
func (c *snapCache) invalidate(rank int) {
	for _, e := range c.entries {
		if e.rank >= rank {
			e.stale = true
		}
	}
}

// clear drops every snapshot (the base relation was replaced).
func (c *snapCache) clear() {
	for fp, e := range c.entries {
		evalSnapshotBytes.Add(-e.snap.ownBytes)
		delete(c.entries, fp)
	}
}

// snaps returns the sheet's snapshot cache, creating it on first use.
func (s *Spreadsheet) snaps() *snapCache {
	if s.snapCache == nil {
		s.snapCache = newSnapCache()
	}
	return s.snapCache
}

// invalidateStages records that a mutation changed the definition of the
// stage class at rank (and therefore, by fingerprint chaining, of every
// stage after it). See DESIGN.md §10.3 for the operator → rank table.
func (s *Spreadsheet) invalidateStages(rank int) {
	if s.snapCache != nil {
		s.snapCache.invalidate(rank)
	}
}

// selRank is the invalidation rank of a selection predicate: the σ stage of
// its evaluation depth. A predicate whose depth cannot be resolved (its
// columns are gone mid-mutation) conservatively invalidates everything.
func (s *Spreadsheet) selRank(e expr.Expr) int {
	d, err := s.exprDepth(e)
	if err != nil {
		return rankBase()
	}
	return rankSelect(d)
}

// computedRank is the invalidation rank of a computed column's fill stage.
// Call it while the column is still present in the state (its depth needs
// the definition).
func (s *Spreadsheet) computedRank(c *ComputedColumn) int {
	d, err := s.aggDepth(c.Name, map[string]bool{})
	if err != nil {
		return rankBase()
	}
	switch c.Kind {
	case KindAggregate:
		return rankAgg(d)
	case KindWindow:
		return rankWindow(d)
	}
	return rankFormula(d)
}

// checkBaseGeneration starts a new fingerprint generation when the base
// relation pointer changed since the last evaluation — binary operators,
// base-column renames and undo across either replace the base wholesale.
// Every cached snapshot indexes into the old base, so the cache clears.
func (s *Spreadsheet) checkBaseGeneration() {
	if s.baseSeen == s.base {
		return
	}
	if s.baseSeen != nil {
		s.baseGen++
	}
	s.baseSeen = s.base
	if s.snapCache != nil {
		s.snapCache.clear()
	}
}
